package fedroad

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/graph"
)

// TestMetricsRegistry: the federation exposes one registry; queries move its
// counters; the exposition renders.
func TestMetricsRegistry(t *testing.T) {
	f, _ := testFederation(t, 250, 21)
	reg := f.Metrics()
	if reg == nil {
		t.Fatal("Metrics() returned nil")
	}
	snap := func() map[string]float64 { return reg.Snapshot() }

	before := snap()
	if _, ok := before[`fedroad_queries_total{kind="spsp"}`]; !ok {
		t.Fatal("spsp query counter not registered at construction")
	}
	if before["fedroad_graph_vertices"] != 250 {
		t.Fatalf("fedroad_graph_vertices = %v, want 250", before["fedroad_graph_vertices"])
	}

	if _, _, err := f.ShortestPath(2, 200); err != nil {
		t.Fatal(err)
	}
	if _, _, err := f.NearestNeighbors(5, 4); err != nil {
		t.Fatal(err)
	}
	if _, _, err := f.ShortestPath(2, 200, QueryOptions{Queue: "bogus"}); err == nil {
		t.Fatal("bogus queue accepted")
	}

	after := snap()
	for _, k := range []string{
		`fedroad_queries_total{kind="spsp"}`,
		`fedroad_queries_total{kind="sssp"}`,
		`fedroad_query_errors_total{kind="spsp"}`,
		"fedroad_mpc_compares_total",
		"fedroad_mpc_rounds_total",
		"fedroad_mpc_bytes_total",
		`fedroad_query_settled_vertices_total{kind="sssp"}`,
		`fedroad_query_phase_seconds_total{kind="spsp",phase="queue"}`,
	} {
		if after[k] <= before[k] {
			t.Errorf("%s did not increase: %v -> %v", k, before[k], after[k])
		}
	}

	var b strings.Builder
	if err := reg.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	text := b.String()
	for _, frag := range []string{
		"# TYPE fedroad_queries_total counter",
		"# TYPE fedroad_query_seconds histogram",
		`fedroad_query_seconds_bucket{kind="spsp",le="+Inf"}`,
	} {
		if !strings.Contains(text, frag) {
			t.Errorf("exposition missing %q", frag)
		}
	}
}

// TestQueryValidationErrors pins the error taxonomy: every request-level
// mistake wraps ErrInvalidQuery so servers can map it to a 4xx, and none of
// them is silently tolerated.
func TestQueryValidationErrors(t *testing.T) {
	f, _ := testFederation(t, 100, 23)
	cases := []struct {
		name string
		run  func() error
	}{
		{"bad queue", func() error { _, _, err := f.ShortestPath(0, 50, QueryOptions{Queue: "bogus"}); return err }},
		{"bad estimator", func() error { _, _, err := f.ShortestPath(0, 50, QueryOptions{Estimator: "bogus"}); return err }},
		{"batched non-tm-tree", func() error {
			_, _, err := f.ShortestPath(0, 50, QueryOptions{Queue: Heap, BatchedMPC: true})
			return err
		}},
		{"src out of range", func() error { _, _, err := f.ShortestPath(-1, 50); return err }},
		{"dst out of range", func() error { _, _, err := f.ShortestPath(0, 100); return err }},
		{"knn estimator", func() error {
			_, _, err := f.NearestNeighbors(0, 3, QueryOptions{Estimator: FedAMPS})
			return err
		}},
		{"knn k<1", func() error { _, _, err := f.NearestNeighbors(0, 0); return err }},
		{"knn src out of range", func() error { _, _, err := f.NearestNeighbors(100, 3); return err }},
		{"two option structs", func() error {
			_, _, err := f.ShortestPath(0, 50, QueryOptions{}, QueryOptions{})
			return err
		}},
	}
	for _, c := range cases {
		err := c.run()
		if err == nil {
			t.Errorf("%s: accepted", c.name)
			continue
		}
		if !errors.Is(err, ErrInvalidQuery) {
			t.Errorf("%s: error %v does not wrap ErrInvalidQuery", c.name, err)
		}
	}
	// Estimator: NoEstimator is the explicit "none" spelling and stays legal
	// on kNN.
	if _, _, err := f.NearestNeighbors(0, 3, QueryOptions{Estimator: NoEstimator}); err != nil {
		t.Errorf("NoEstimator on kNN rejected: %v", err)
	}
}

// TestKNNBatchedMPCHonored pins the headline bugfix: NearestNeighbors used to
// drop opt.BatchedMPC on the floor, so batched and unbatched queries were
// byte-identical. Honored, batching collapses the TM-tree tournament
// comparisons into one protocol instance per level: same answers, strictly
// fewer MPC rounds.
func TestKNNBatchedMPCHonored(t *testing.T) {
	f, joint := testFederation(t, 260, 27)
	plainRoutes, plain, err := f.NearestNeighbors(9, 6)
	if err != nil {
		t.Fatal(err)
	}
	batchedRoutes, batched, err := f.NearestNeighbors(9, 6, QueryOptions{BatchedMPC: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(plainRoutes) != len(batchedRoutes) {
		t.Fatalf("route counts diverge: %d vs %d", len(plainRoutes), len(batchedRoutes))
	}
	full := graph.Dijkstra(f.Graph(), joint, 9)
	for i := range batchedRoutes {
		tgt := batchedRoutes[i].Path[len(batchedRoutes[i].Path)-1]
		if JointCost(batchedRoutes[i]) != full.Dist[tgt] {
			t.Fatalf("batched result %d wrong distance", i)
		}
	}
	if plain.SAC.Rounds == 0 || batched.SAC.Rounds == 0 {
		t.Fatalf("rounds unaccounted: plain %d, batched %d", plain.SAC.Rounds, batched.SAC.Rounds)
	}
	if batched.SAC.Rounds >= plain.SAC.Rounds {
		t.Fatalf("BatchedMPC did not reduce rounds: batched %d >= plain %d (option dropped?)",
			batched.SAC.Rounds, plain.SAC.Rounds)
	}
}

// TestPhaseTimingsPopulated: the per-phase trace is filled in for both query
// kinds.
func TestPhaseTimingsPopulated(t *testing.T) {
	f, _ := testFederation(t, 250, 29)
	_, spsp, err := f.ShortestPath(1, 200)
	if err != nil {
		t.Fatal(err)
	}
	if spsp.Phases.Queue <= 0 || spsp.Phases.SACWait <= 0 || spsp.Phases.Relax <= 0 {
		t.Fatalf("SPSP phases not populated: %+v", spsp.Phases)
	}
	_, sssp, err := f.NearestNeighbors(1, 5)
	if err != nil {
		t.Fatal(err)
	}
	if sssp.Phases.Queue <= 0 || sssp.Phases.SACWait <= 0 {
		t.Fatalf("SSSP phases not populated: %+v", sssp.Phases)
	}
	if spsp.HeuristicEvals == 0 {
		t.Fatal("SPSP heuristic evaluations not counted")
	}
}
