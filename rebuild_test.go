package fedroad

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/graph"
)

// These tests exercise the off-lock rebuild protocol: queries must stay
// oracle-correct while a build runs in the background, and a traffic update
// landing mid-build must yield either the typed conflict error or a
// consistent retried index — never a half-built or stale one.

// liveJoint reads the current joint weights straight off the silos. Only
// safe once all concurrent goroutines have been joined.
func liveJoint(f *Federation) Weights {
	g := f.Graph()
	joint := make(Weights, g.NumArcs())
	for p := 0; p < f.Silos(); p++ {
		for a := 0; a < g.NumArcs(); a++ {
			joint[a] += f.inner.Silo(p).Weight(Arc(a))
		}
	}
	return joint
}

// spotCheck verifies a handful of queries against plaintext Dijkstra on the
// given joint weights, with and without the index. Estimators that depend on
// precomputed landmark matrices are deliberately absent: these tests mutate
// traffic, which staleness those matrices (bounds stay safe, but here we
// want configurations whose answers are exact by construction).
func spotCheck(t *testing.T, f *Federation, joint Weights, tag string) {
	t.Helper()
	g := f.Graph()
	queries := [][2]Vertex{{0, Vertex(g.NumVertices() - 1)}, {Vertex(g.NumVertices() / 2), 1}, {3, 3}}
	for _, q := range queries {
		want, _ := graph.DijkstraTo(g, joint, q[0], q[1])
		for _, opt := range []QueryOptions{
			{NoIndex: true, Estimator: NoEstimator, Queue: Heap},
			{Estimator: FedAMPS, Queue: TMTree, BatchedMPC: true},
		} {
			route, _, err := f.ShortestPath(q[0], q[1], opt)
			if err != nil {
				t.Fatalf("%s: ShortestPath(%d,%d): %v", tag, q[0], q[1], err)
			}
			if !route.Found {
				t.Fatalf("%s: ShortestPath(%d,%d) found nothing, oracle cost %d", tag, q[0], q[1], want)
			}
			if got := JointCost(route); got != want {
				t.Fatalf("%s: ShortestPath(%d,%d) = %d, oracle %d", tag, q[0], q[1], got, want)
			}
		}
	}
}

func rebuildFederation(t *testing.T, n int, seed uint64) *Federation {
	t.Helper()
	g, w0 := GenerateRoadNetwork(n, seed)
	silos := SimulateCongestion(w0, 3, Moderate, seed+1)
	f, err := New(g, w0, silos, Config{Seed: seed + 2})
	if err != nil {
		t.Fatal(err)
	}
	return f
}

// TestRebuildQueriesDuringBuild runs oracle-checked queries from several
// goroutines while a parallel index build is in flight. The weights never
// change, so every answer — before, during, and after the swap — must match
// one fixed oracle, whichever index generation served it.
func TestRebuildQueriesDuringBuild(t *testing.T) {
	f := rebuildFederation(t, 220, 50)
	joint := liveJoint(f)

	buildDone := make(chan error, 1)
	go func() { buildDone <- f.BuildIndexWith(IndexParams{Workers: 4}) }()

	var wg sync.WaitGroup
	stop := make(chan struct{})
	errs := make(chan error, 4)
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			s := f.Session()
			defer s.Close()
			g := f.Graph()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				src := Vertex((w*31 + i) % g.NumVertices())
				dst := Vertex((w*17 + i*7) % g.NumVertices())
				want, _ := graph.DijkstraTo(g, joint, src, dst)
				route, _, err := s.ShortestPath(src, dst, QueryOptions{Estimator: FedAMPS})
				if err != nil {
					errs <- fmt.Errorf("worker %d: %v", w, err)
					return
				}
				if route.Found && JointCost(route) != want {
					errs <- fmt.Errorf("worker %d: query %d->%d cost %d, oracle %d", w, src, dst, JointCost(route), want)
					return
				}
				if !route.Found && want < graph.InfCost {
					errs <- fmt.Errorf("worker %d: query %d->%d found nothing, oracle %d", w, src, dst, want)
					return
				}
			}
		}(w)
	}

	if err := <-buildDone; err != nil {
		t.Fatalf("background build failed: %v", err)
	}
	close(stop)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if !f.HasIndex() {
		t.Fatal("build reported success but HasIndex is false")
	}
	if f.IndexBuilding() {
		t.Fatal("IndexBuilding still true after build returned")
	}
	spotCheck(t, f, joint, "after build")
}

// TestRebuildConflict lands a traffic update in the middle of a build with
// no retries configured: the build must either finish before the update (nil
// error) or surface ErrBuildConflict — and in both cases the federation must
// answer queries consistently with the live weights afterward.
func TestRebuildConflict(t *testing.T) {
	f := rebuildFederation(t, 260, 60)

	buildDone := make(chan error, 1)
	go func() { buildDone <- f.BuildIndexWith(IndexParams{Workers: 4}) }()

	// Wait until the build is observably in flight, then invalidate its
	// snapshot.
	deadline := time.Now().Add(5 * time.Second)
	for !f.IndexBuilding() && time.Now().Before(deadline) {
		time.Sleep(100 * time.Microsecond)
	}
	if _, err := f.ApplyTraffic([]TrafficUpdate{{Silo: 0, Arc: 0, TravelMs: 123}}); err != nil {
		t.Fatal(err)
	}
	raced := time.Now().After(deadline) // build finished before we saw it

	err := <-buildDone
	switch {
	case err == nil:
		// The build swapped in before the update; ApplyTraffic then refreshed
		// the index, so it must be present and consistent.
		if !f.HasIndex() {
			t.Fatal("nil build error but no index")
		}
	case errors.Is(err, ErrBuildConflict):
		if raced {
			t.Fatalf("build never became observable yet reports a conflict: %v", err)
		}
		if f.HasIndex() {
			t.Fatal("conflicted build must not leave an index installed")
		}
	default:
		t.Fatalf("build returned unexpected error: %v", err)
	}
	spotCheck(t, f, liveJoint(f), "after conflict")
}

// TestRebuildConflictRetry is the same race with RebuildOnConflict retries:
// the build must absorb the conflict, restart from fresh weights, and
// install a consistent index with a nil error.
func TestRebuildConflictRetry(t *testing.T) {
	f := rebuildFederation(t, 260, 70)

	buildDone := make(chan error, 1)
	go func() { buildDone <- f.BuildIndexWith(IndexParams{Workers: 4, RebuildOnConflict: 3}) }()

	deadline := time.Now().Add(5 * time.Second)
	for !f.IndexBuilding() && time.Now().Before(deadline) {
		time.Sleep(100 * time.Microsecond)
	}
	if _, err := f.ApplyTraffic([]TrafficUpdate{{Silo: 1, Arc: 2, TravelMs: 321}}); err != nil {
		t.Fatal(err)
	}

	if err := <-buildDone; err != nil {
		t.Fatalf("build with retries failed: %v", err)
	}
	if !f.HasIndex() {
		t.Fatal("successful retried build left no index")
	}
	spotCheck(t, f, liveJoint(f), "after retried build")

	// A further update must go through the incremental refresh path cleanly.
	if _, err := f.ApplyTraffic([]TrafficUpdate{{Silo: 2, Arc: 5, TravelMs: 777}}); err != nil {
		t.Fatal(err)
	}
	spotCheck(t, f, liveJoint(f), "after post-build update")
}
