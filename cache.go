package fedroad

import (
	"fmt"

	"repro/internal/cache"
)

// CacheOutcome classifies how a cached query call was served: CacheMiss (this
// call ran the MPC query), CacheHit (served from a stored entry) or
// CacheCoalesced (shared a concurrent leader's in-flight computation).
type CacheOutcome = cache.Outcome

// Cache outcomes (see internal/cache).
const (
	CacheMiss      = cache.Miss
	CacheHit       = cache.Hit
	CacheCoalesced = cache.Coalesced
)

// CacheStats is a point-in-time aggregate of a QueryCache's counters.
type CacheStats = cache.Stats

// QueryCache is a traffic-version-keyed result cache for SPSP and kNN
// queries: a sharded LRU with request coalescing, keyed by (kind, endpoints,
// options, traffic version). Because the version is part of the key, a
// traffic update invalidates every older entry for free — they simply become
// unreachable and age out of the LRU. The coalescing path guarantees a
// thundering herd on one OD pair runs ONE MPC query.
//
// Correctness under races: the lookup version is read before the query, and
// the version echoed with each result is the one captured under the query's
// own read lock — which can only be newer. A served result therefore never
// reflects weights older than the version the caller observed.
//
// A QueryCache is safe for concurrent use. Cached routes are shared between
// callers and must be treated as immutable.
type QueryCache struct {
	f *Federation
	c *cache.Cache
}

// NewQueryCache builds a result cache holding at most capacity entries and
// registers its hit/miss/coalesce/evict counters and entry gauge on the
// federation's metrics registry (fedroad_cache_*).
func (f *Federation) NewQueryCache(capacity int) *QueryCache {
	qc := &QueryCache{f: f, c: cache.New(capacity)}
	c := qc.c
	f.reg.CounterFunc("fedroad_cache_hits_total", "queries served from the result cache", nil,
		func() float64 { return float64(c.Stats().Hits) })
	f.reg.CounterFunc("fedroad_cache_misses_total", "queries that ran the MPC engine and populated the result cache", nil,
		func() float64 { return float64(c.Stats().Misses) })
	f.reg.CounterFunc("fedroad_cache_coalesced_total", "queries that shared a concurrent identical query's in-flight result", nil,
		func() float64 { return float64(c.Stats().Coalesced) })
	f.reg.CounterFunc("fedroad_cache_evicted_total", "result-cache entries evicted under capacity pressure while still current", nil,
		func() float64 { return float64(c.Stats().EvictedCapacity) })
	f.reg.CounterFunc("fedroad_cache_evicted_stale_total", "result-cache entries evicted after a traffic update had already made them unreachable", nil,
		func() float64 { return float64(c.Stats().EvictedStale) })
	f.reg.GaugeFunc("fedroad_cache_entries", "entries currently stored in the result cache", nil,
		func() float64 { return float64(c.Len()) })
	return qc
}

// optKey folds the option fields that change the answer's shape or cost into
// the cache key. Every field participates: two queries with different options
// are different cache lines even when their routes would coincide.
func optKey(opt QueryOptions) string {
	return fmt.Sprintf("%s|%s|%t|%t", opt.Estimator, opt.Queue, opt.NoIndex, opt.BatchedMPC)
}

// cachedRoute is the immutable stored value for one SPSP entry.
type cachedRoute struct {
	route Route
	stats Stats
}

// cachedKNN is the immutable stored value for one kNN entry.
type cachedKNN struct {
	routes []Route
	stats  Stats
}

// ShortestPath serves an SPSP query through the cache. On a miss it calls run
// — exactly once across all concurrent callers of the same key — which must
// execute the query and return the result plus the traffic version it was
// computed at (Session.ShortestPathAt). The returned version is the one the
// result was computed at; the returned stats are the computing call's (hits
// replay the original cost counters, having spent none themselves).
func (qc *QueryCache) ShortestPath(src, dst Vertex, opt QueryOptions,
	run func() (Route, Stats, uint64, error)) (Route, Stats, uint64, CacheOutcome, error) {
	cur := qc.f.TrafficVersion()
	key := fmt.Sprintf("spsp|%d|%d|%s|%d", src, dst, optKey(opt), cur)
	v, ver, out, err := qc.c.Do(key, cur, func() (any, uint64, error) {
		route, stats, ver, err := run()
		if err != nil {
			return nil, 0, err
		}
		return cachedRoute{route: route, stats: stats}, ver, nil
	})
	if err != nil {
		return Route{}, Stats{}, 0, out, err
	}
	cr := v.(cachedRoute)
	return cr.route, cr.stats, ver, out, nil
}

// NearestNeighbors serves a kNN query through the cache; see ShortestPath for
// the contract. run is Session.NearestNeighborsAt (or equivalent).
func (qc *QueryCache) NearestNeighbors(src Vertex, k int, opt QueryOptions,
	run func() ([]Route, Stats, uint64, error)) ([]Route, Stats, uint64, CacheOutcome, error) {
	cur := qc.f.TrafficVersion()
	key := fmt.Sprintf("knn|%d|%d|%s|%d", src, k, optKey(opt), cur)
	v, ver, out, err := qc.c.Do(key, cur, func() (any, uint64, error) {
		routes, stats, ver, err := run()
		if err != nil {
			return nil, 0, err
		}
		return cachedKNN{routes: routes, stats: stats}, ver, nil
	})
	if err != nil {
		return nil, Stats{}, 0, out, err
	}
	ck := v.(cachedKNN)
	return ck.routes, ck.stats, ver, out, nil
}

// Stats aggregates the cache's counters.
func (qc *QueryCache) Stats() CacheStats { return qc.c.Stats() }
