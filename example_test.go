package fedroad_test

import (
	"fmt"
	"log"

	fedroad "repro"
)

// The basic flow: assemble a federation, build the shortcut index, answer a
// secure joint shortest-path query.
func Example() {
	g, w0 := fedroad.GenerateGridNetwork(12, 12, 7)
	silos := fedroad.SimulateCongestion(w0, 3, fedroad.Moderate, 8)
	f, err := fedroad.New(g, w0, silos)
	if err != nil {
		log.Fatal(err)
	}
	if err := f.BuildIndex(); err != nil {
		log.Fatal(err)
	}
	route, _, err := f.ShortestPath(0, 143)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("found:", route.Found)
	fmt.Println("junctions on route:", len(route.Path))
	// Output:
	// found: true
	// junctions on route: 23
}

// Querying without the index runs the paper's Naive-Dijk baseline; the
// answer is identical, only the secure-comparison cost differs.
func ExampleFederation_ShortestPath() {
	g, w0 := fedroad.GenerateGridNetwork(10, 10, 3)
	silos := fedroad.SimulateCongestion(w0, 3, fedroad.Slight, 4)
	f, err := fedroad.New(g, w0, silos)
	if err != nil {
		log.Fatal(err)
	}
	if err := f.BuildIndex(); err != nil {
		log.Fatal(err)
	}
	fast, fastStats, err := f.ShortestPath(0, 99)
	if err != nil {
		log.Fatal(err)
	}
	slow, slowStats, err := f.ShortestPath(0, 99, fedroad.QueryOptions{
		NoIndex:   true,
		Estimator: fedroad.NoEstimator,
		Queue:     fedroad.Heap,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("same joint cost:", fedroad.JointCost(fast) == fedroad.JointCost(slow))
	fmt.Println("index uses fewer secure comparisons:", fastStats.SAC.Compares < slowStats.SAC.Compares)
	// Output:
	// same joint cost: true
	// index uses fewer secure comparisons: true
}

// A federated kNN query (Fed-SSSP, Alg. 1): the k nearest junctions by
// joint travel time, nearest first.
func ExampleFederation_NearestNeighbors() {
	g, w0 := fedroad.GenerateGridNetwork(8, 8, 5)
	silos := fedroad.SimulateCongestion(w0, 2, fedroad.Moderate, 6)
	f, err := fedroad.New(g, w0, silos)
	if err != nil {
		log.Fatal(err)
	}
	routes, _, err := f.NearestNeighbors(0, 4)
	if err != nil {
		log.Fatal(err)
	}
	for i, r := range routes {
		fmt.Printf("%d: junction %d\n", i, r.Path[len(r.Path)-1])
	}
	// Output:
	// 0: junction 0
	// 1: junction 8
	// 2: junction 1
	// 3: junction 16
}

// Real-time traffic: silos update their private observations and the
// federated index refreshes incrementally.
func ExampleFederation_UpdateIndex() {
	g, w0 := fedroad.GenerateGridNetwork(8, 8, 9)
	silos := fedroad.SimulateCongestion(w0, 3, fedroad.Free, 10)
	f, err := fedroad.New(g, w0, silos)
	if err != nil {
		log.Fatal(err)
	}
	if err := f.BuildIndex(); err != nil {
		log.Fatal(err)
	}
	a := g.FindArc(0, 1)
	for p := 0; p < f.Silos(); p++ {
		f.SetTraffic(p, a, w0[a]*10) // jam observed by every silo
	}
	stats, err := f.UpdateIndex([]fedroad.Arc{a})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("changed arcs:", stats.ChangedArcs)
	fmt.Println("update cheaper than rebuild:",
		stats.SAC.Compares < f.IndexStats().SAC.Compares)
	// Output:
	// changed arcs: 1
	// update cheaper than rebuild: true
}
