package fedroad

import (
	"bytes"
	"io"
	"math/rand/v2"
	"testing"

	"repro/internal/graph"
)

func testFederation(t *testing.T, n int, seed uint64) (*Federation, Weights) {
	t.Helper()
	g, w0 := GenerateRoadNetwork(n, seed)
	silos := SimulateCongestion(w0, 3, Moderate, seed+1)
	f, err := New(g, w0, silos, Config{Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	joint := make(Weights, len(w0))
	for _, s := range silos {
		for a, w := range s {
			joint[a] += w
		}
	}
	return f, joint
}

func TestQuickstartFlow(t *testing.T) {
	f, joint := testFederation(t, 300, 5)
	if f.Silos() != 3 {
		t.Fatalf("Silos = %d", f.Silos())
	}
	if err := f.BuildIndex(); err != nil {
		t.Fatal(err)
	}
	if !f.HasIndex() || f.IndexStats().Shortcuts == 0 {
		t.Fatal("index missing after BuildIndex")
	}
	route, stats, err := f.ShortestPath(3, 250)
	if err != nil {
		t.Fatal(err)
	}
	if !route.Found {
		t.Fatal("route not found")
	}
	want, _ := graph.DijkstraTo(f.Graph(), joint, 3, 250)
	if JointCost(route) != want {
		t.Fatalf("joint cost %d, want %d", JointCost(route), want)
	}
	if stats.SAC.Compares == 0 {
		t.Fatal("no secure comparisons recorded")
	}
}

func TestShortestPathOptionVariants(t *testing.T) {
	f, joint := testFederation(t, 250, 7)
	if err := f.BuildIndex(); err != nil {
		t.Fatal(err)
	}
	f.PrecomputeLandmarks()
	rng := rand.New(rand.NewPCG(2, 2))
	variants := []QueryOptions{
		{},
		{NoIndex: true},
		{Queue: Heap},
		{Queue: LeftistHeap, Estimator: NoEstimator},
		{Estimator: FedALT},
		{Estimator: FedALTMax},
		{Estimator: FedAMPS, Queue: TMTree},
	}
	for vi, opt := range variants {
		for trial := 0; trial < 4; trial++ {
			s := Vertex(rng.IntN(f.Graph().NumVertices()))
			tt := Vertex(rng.IntN(f.Graph().NumVertices()))
			route, _, err := f.ShortestPath(s, tt, opt)
			if err != nil {
				t.Fatalf("variant %d: %v", vi, err)
			}
			want, _ := graph.DijkstraTo(f.Graph(), joint, s, tt)
			if JointCost(route) != want {
				t.Fatalf("variant %d (%+v): cost %d, want %d", vi, opt, JointCost(route), want)
			}
		}
	}
}

func TestShortestPathWithoutIndex(t *testing.T) {
	f, joint := testFederation(t, 200, 9)
	route, _, err := f.ShortestPath(0, 150)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := graph.DijkstraTo(f.Graph(), joint, 0, 150)
	if JointCost(route) != want {
		t.Fatalf("flat query cost %d, want %d", JointCost(route), want)
	}
}

func TestNearestNeighbors(t *testing.T) {
	f, joint := testFederation(t, 220, 11)
	routes, stats, err := f.NearestNeighbors(14, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(routes) != 8 {
		t.Fatalf("got %d routes", len(routes))
	}
	if routes[0].Path[0] != 14 || JointCost(routes[0]) != 0 {
		t.Fatal("first result must be the source at distance 0")
	}
	full := graph.Dijkstra(f.Graph(), joint, 14)
	prev := int64(-1)
	for _, r := range routes {
		d := JointCost(r)
		if d < prev {
			t.Fatal("kNN results out of order")
		}
		prev = d
		tgt := r.Path[len(r.Path)-1]
		if d != full.Dist[tgt] {
			t.Fatalf("kNN distance %d != Dijkstra %d for %d", d, full.Dist[tgt], tgt)
		}
	}
	if stats.SettledVertices != 8 {
		t.Fatalf("settled %d, want 8", stats.SettledVertices)
	}
}

func TestTrafficUpdateFlow(t *testing.T) {
	f, _ := testFederation(t, 200, 13)
	if err := f.BuildIndex(); err != nil {
		t.Fatal(err)
	}
	if _, err := f.UpdateIndex(nil); err != nil {
		t.Fatal(err)
	}
	var changed []Arc
	rng := rand.New(rand.NewPCG(3, 3))
	for a := 0; a < f.Graph().NumArcs(); a += 17 {
		changed = append(changed, Arc(a))
		for p := 0; p < f.Silos(); p++ {
			f.SetTraffic(p, Arc(a), int64(10000+rng.IntN(50000)))
		}
	}
	stats, err := f.UpdateIndex(changed)
	if err != nil {
		t.Fatal(err)
	}
	if stats.ChangedArcs != len(changed) {
		t.Fatalf("update stats wrong: %+v", stats)
	}
	// Verify by self-consistency: after the update, the indexed default
	// stack and the flat Naive-Dijk baseline must agree on joint costs.
	for trial := 0; trial < 10; trial++ {
		s := Vertex(rng.IntN(f.Graph().NumVertices()))
		tt := Vertex(rng.IntN(f.Graph().NumVertices()))
		fast, _, err := f.ShortestPath(s, tt)
		if err != nil {
			t.Fatal(err)
		}
		slow, _, err := f.ShortestPath(s, tt, QueryOptions{NoIndex: true, Estimator: NoEstimator, Queue: Heap})
		if err != nil {
			t.Fatal(err)
		}
		if JointCost(fast) != JointCost(slow) {
			t.Fatalf("after update, indexed query %d != flat query %d", JointCost(fast), JointCost(slow))
		}
	}
}

func TestUpdateIndexWithoutBuild(t *testing.T) {
	f, _ := testFederation(t, 100, 15)
	if _, err := f.UpdateIndex([]Arc{0}); err == nil {
		t.Fatal("UpdateIndex without BuildIndex accepted")
	}
}

func TestProtocolModeFacade(t *testing.T) {
	g, w0 := GenerateGridNetwork(5, 5, 17)
	silos := SimulateCongestion(w0, 3, Moderate, 18)
	f, err := New(g, w0, silos, Config{Mode: ModeProtocol, Seed: 19})
	if err != nil {
		t.Fatal(err)
	}
	route, stats, err := f.ShortestPath(0, 24)
	if err != nil {
		t.Fatal(err)
	}
	joint := make(Weights, len(w0))
	for _, s := range silos {
		for a, w := range s {
			joint[a] += w
		}
	}
	want, _ := graph.DijkstraTo(g, joint, 0, 24)
	if JointCost(route) != want {
		t.Fatalf("protocol-mode cost %d, want %d", JointCost(route), want)
	}
	if stats.SAC.Bytes == 0 {
		t.Fatal("protocol mode reported no traffic")
	}
}

func TestGraphIORoundTripFacade(t *testing.T) {
	g, w0 := GenerateRoadNetwork(120, 21)
	var buf bytes.Buffer
	if err := SaveGraph(&buf, g, w0); err != nil {
		t.Fatal(err)
	}
	g2, w2, err := LoadGraph(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumArcs() != g.NumArcs() || w2[0] != w0[0] {
		t.Fatal("round trip mismatch")
	}
}

func TestConfigValidation(t *testing.T) {
	g, w0 := GenerateRoadNetwork(60, 23)
	silos := SimulateCongestion(w0, 2, Moderate, 24)
	if _, err := New(g, w0, silos, Config{}, Config{}); err == nil {
		t.Fatal("two configs accepted")
	}
	f, err := New(g, w0, silos)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := f.ShortestPath(0, 1, QueryOptions{}, QueryOptions{}); err == nil {
		t.Fatal("two query options accepted")
	}
	if _, _, err := f.NearestNeighbors(0, 1, QueryOptions{}, QueryOptions{}); err == nil {
		t.Fatal("two query options accepted")
	}
}

func TestCustomTopologyBuilder(t *testing.T) {
	b := NewGraphBuilder(4)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(2, 3)
	b.AddEdge(0, 3)
	g := b.Build()
	w0 := make(Weights, g.NumArcs())
	for a := range w0 {
		w0[a] = 1000
	}
	silos := []Weights{make(Weights, len(w0)), make(Weights, len(w0))}
	copy(silos[0], w0)
	copy(silos[1], w0)
	silos[0][g.FindArc(0, 3)] = 10000 // silo 0 observes congestion on 0-3
	silos[1][g.FindArc(0, 3)] = 10000
	f, err := New(g, w0, silos)
	if err != nil {
		t.Fatal(err)
	}
	route, _, err := f.ShortestPath(0, 3)
	if err != nil {
		t.Fatal(err)
	}
	// Joint weights make 0-1-2-3 (cost 6000) beat the congested 0-3 (20000).
	if len(route.Path) != 4 {
		t.Fatalf("expected detour, got path %v", route.Path)
	}
}

func TestSaveAndLoadIndex(t *testing.T) {
	f, joint := testFederation(t, 200, 25)
	if err := f.SaveIndex(&bytes.Buffer{}, nil); err == nil {
		t.Fatal("SaveIndex before BuildIndex accepted")
	}
	if err := f.BuildIndex(); err != nil {
		t.Fatal(err)
	}
	var public bytes.Buffer
	shards := make([]*bytes.Buffer, f.Silos())
	ws := make([]io.Writer, f.Silos())
	for p := range shards {
		shards[p] = &bytes.Buffer{}
		ws[p] = shards[p]
	}
	if err := f.SaveIndex(&public, ws); err != nil {
		t.Fatal(err)
	}
	// A fresh federation over the same data loads the saved index.
	g := f.Graph()
	_ = g
	f2, _ := testFederation(t, 200, 25)
	rs := make([]io.Reader, len(shards))
	for p := range shards {
		rs[p] = bytes.NewReader(shards[p].Bytes())
	}
	if err := f2.LoadSavedIndex(bytes.NewReader(public.Bytes()), rs); err != nil {
		t.Fatal(err)
	}
	if !f2.HasIndex() {
		t.Fatal("index missing after load")
	}
	rng := rand.New(rand.NewPCG(7, 7))
	for trial := 0; trial < 15; trial++ {
		s := Vertex(rng.IntN(f2.Graph().NumVertices()))
		tt := Vertex(rng.IntN(f2.Graph().NumVertices()))
		route, _, err := f2.ShortestPath(s, tt)
		if err != nil {
			t.Fatal(err)
		}
		want, _ := graph.DijkstraTo(f2.Graph(), joint, s, tt)
		if JointCost(route) != want {
			t.Fatalf("loaded-index query cost %d, want %d", JointCost(route), want)
		}
	}
}

func TestBatchedMPCFacade(t *testing.T) {
	f, joint := testFederation(t, 220, 27)
	if err := f.BuildIndex(); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(9, 9))
	for trial := 0; trial < 10; trial++ {
		s := Vertex(rng.IntN(f.Graph().NumVertices()))
		tt := Vertex(rng.IntN(f.Graph().NumVertices()))
		route, stats, err := f.ShortestPath(s, tt, QueryOptions{BatchedMPC: true})
		if err != nil {
			t.Fatal(err)
		}
		want, _ := graph.DijkstraTo(f.Graph(), joint, s, tt)
		if JointCost(route) != want {
			t.Fatalf("batched query cost %d, want %d", JointCost(route), want)
		}
		if stats.SAC.Rounds > stats.SAC.Compares*9 {
			t.Fatal("batched query paid more rounds than sequential execution would")
		}
	}
	// BatchedMPC with a non-TM-tree queue must be rejected.
	if _, _, err := f.ShortestPath(0, 1, QueryOptions{BatchedMPC: true, Queue: Heap}); err == nil {
		t.Fatal("BatchedMPC with heap accepted")
	}
}

func TestBuildIndexWithParams(t *testing.T) {
	f, joint := testFederation(t, 180, 29)
	if err := f.BuildIndexWith(IndexParams{Ordering: OrderDegree, WitnessCap: 16}); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(11, 11))
	for trial := 0; trial < 10; trial++ {
		s := Vertex(rng.IntN(f.Graph().NumVertices()))
		tt := Vertex(rng.IntN(f.Graph().NumVertices()))
		route, _, err := f.ShortestPath(s, tt)
		if err != nil {
			t.Fatal(err)
		}
		want, _ := graph.DijkstraTo(f.Graph(), joint, s, tt)
		if JointCost(route) != want {
			t.Fatalf("degree-ordered index: cost %d, want %d", JointCost(route), want)
		}
	}
	if err := f.BuildIndexWith(IndexParams{Ordering: "zzz"}); err == nil {
		t.Fatal("bad ordering accepted")
	}
}
