package fedroad

import (
	"errors"
	"math/rand/v2"
	"sync"
	"testing"
	"time"

	"repro/internal/transport"
)

// Stress and chaos coverage for the weight-customization pipeline: randomized
// interleavings of queries, traffic batches, customization passes and full
// rebuilds (run under -race in CI), plus a fault-injection variant that
// poisons a customization mid-sweep and demands the previous index keep
// serving.

// TestCustomizeStressInterleaved hammers one federation from five directions
// at once: two query workers, a traffic writer, a customization worker and a
// full-rebuild worker. Conflicts between the off-lock derivations and the
// traffic writer are expected and must surface ONLY as ErrBuildConflict —
// any other error, data race (-race), or post-quiesce oracle divergence
// fails the test.
func TestCustomizeStressInterleaved(t *testing.T) {
	f := rebuildFederation(t, 150, 90)
	if err := f.BuildSkeleton(); err != nil {
		t.Fatal(err)
	}
	if err := f.CustomizeIndex(); err != nil {
		t.Fatal(err)
	}

	const duration = 900 * time.Millisecond
	stop := make(chan struct{})
	errs := make(chan error, 8)
	var wg sync.WaitGroup
	g := f.Graph()

	// Query workers: with traffic moving underneath we cannot pin the answer
	// to one oracle, but every query must complete without error and find a
	// route (the topology never changes, and road networks stay connected).
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			s := f.Session()
			defer s.Close()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				src := Vertex((w*41 + i) % g.NumVertices())
				dst := Vertex((w*13 + i*5) % g.NumVertices())
				route, _, err := s.ShortestPath(src, dst, QueryOptions{Estimator: FedAMPS})
				if err != nil {
					errs <- err
					return
				}
				if !route.Found {
					errs <- errors.New("query found no route on a connected network")
					return
				}
			}
		}(w)
	}

	// Traffic writer: small random batches through the incremental path.
	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewPCG(91, 0x7aff1c))
		for {
			select {
			case <-stop:
				return
			default:
			}
			ups := make([]TrafficUpdate, 0, 4)
			for i := 0; i < 4; i++ {
				ups = append(ups, TrafficUpdate{
					Silo:     rng.IntN(f.Silos()),
					Arc:      Arc(rng.IntN(g.NumArcs())),
					TravelMs: int64(1 + rng.IntN(9000)),
				})
			}
			if _, err := f.ApplyTraffic(ups); err != nil {
				errs <- err
				return
			}
			time.Sleep(time.Millisecond)
		}
	}()

	// Customization worker: repeated full customization passes. A concurrent
	// traffic batch may invalidate the snapshot — that is the typed conflict,
	// nothing else.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if err := f.CustomizeIndexWith(IndexParams{Workers: 2}); err != nil && !errors.Is(err, ErrBuildConflict) {
				errs <- err
				return
			}
		}
	}()

	// Full-rebuild worker: the expensive path must coexist with everything
	// above under the same conflict semantics.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if err := f.BuildIndexWith(IndexParams{Workers: 2}); err != nil && !errors.Is(err, ErrBuildConflict) {
				errs <- err
				return
			}
			time.Sleep(5 * time.Millisecond)
		}
	}()

	time.Sleep(duration)
	close(stop)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	// Quiesced: a final customization with retries must land, and its index
	// must agree with plaintext Dijkstra on the live weights.
	if err := f.CustomizeIndexWith(IndexParams{RebuildOnConflict: 5}); err != nil {
		t.Fatalf("final customization: %v", err)
	}
	if !f.IndexStats().Customized {
		t.Fatal("final index is not customized")
	}
	spotCheck(t, f, liveJoint(f), "after stress quiesce")
}

// TestCustomizeConflictTyped reproduces rebuild_test.go's conflict protocol
// on the customization path: a traffic batch landing between the
// customization's weight snapshot and its swap must yield ErrBuildConflict
// (no retries configured) while the previous index keeps serving, and a
// retried pass must absorb the same race.
func TestCustomizeConflictTyped(t *testing.T) {
	f := rebuildFederation(t, 260, 95)
	if err := f.BuildSkeleton(); err != nil {
		t.Fatal(err)
	}
	if err := f.CustomizeIndex(); err != nil {
		t.Fatal(err)
	}
	before := f.IndexStats()

	done := make(chan error, 1)
	go func() { done <- f.CustomizeIndexWith(IndexParams{Workers: 2}) }()
	deadline := time.Now().Add(5 * time.Second)
	for !f.IndexBuilding() && time.Now().Before(deadline) {
		time.Sleep(50 * time.Microsecond)
	}
	if _, err := f.ApplyTraffic([]TrafficUpdate{{Silo: 0, Arc: 1, TravelMs: 222}}); err != nil {
		t.Fatal(err)
	}
	raced := time.Now().After(deadline)

	err := <-done
	switch {
	case err == nil:
		// The pass swapped in before the update; the update then refreshed it
		// in place. Fine.
	case errors.Is(err, ErrBuildConflict):
		if raced {
			t.Fatalf("customization never became observable yet reports a conflict: %v", err)
		}
		// The conflicted pass must not have clobbered the serving index.
		if !f.HasIndex() {
			t.Fatal("conflicted customization removed the serving index")
		}
		if got := f.IndexStats(); got.Shortcuts != before.Shortcuts || !got.Customized {
			t.Fatalf("conflicted customization disturbed the serving index: %+v", got)
		}
	default:
		t.Fatalf("customization returned unexpected error: %v", err)
	}
	spotCheck(t, f, liveJoint(f), "after customize conflict")

	// Same race, retries configured: must land with a nil error.
	done = make(chan error, 1)
	go func() { done <- f.CustomizeIndexWith(IndexParams{Workers: 2, RebuildOnConflict: 3}) }()
	deadline = time.Now().Add(5 * time.Second)
	for !f.IndexBuilding() && time.Now().Before(deadline) {
		time.Sleep(50 * time.Microsecond)
	}
	if _, err := f.ApplyTraffic([]TrafficUpdate{{Silo: 1, Arc: 3, TravelMs: 333}}); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatalf("retried customization failed: %v", err)
	}
	spotCheck(t, f, liveJoint(f), "after retried customization")
}

// TestCustomizeChaosPoisonedMidSweep arms a seeded FaultConn that kills one
// party's transport a few protocol rounds into a customization sweep: the
// pass must fail with an error — never hang or panic — the previously built
// index must keep serving correct answers, and a fresh pass after the fault
// clears must succeed.
func TestCustomizeChaosPoisonedMidSweep(t *testing.T) {
	plan := transport.FaultPlan{After: 60, Script: []transport.FaultKind{transport.FaultClose}}
	f, g, silos, armed := chaosFederation(t, plan, 1, Config{RoundTimeout: 150 * time.Millisecond})
	defer f.Close()

	if err := f.BuildSkeleton(); err != nil {
		t.Fatal(err)
	}
	if err := f.CustomizeIndexWith(IndexParams{Workers: 2}); err != nil {
		t.Fatal(err)
	}
	before := f.IndexStats()
	if !before.Customized {
		t.Fatal("initial customization not marked Customized")
	}

	// Poison the next customization mid-sweep.
	armed.Store(true)
	start := time.Now()
	err := f.CustomizeIndexWith(IndexParams{Workers: 2})
	if err == nil {
		t.Fatal("customization over a killed transport succeeded")
	}
	if errors.Is(err, ErrBuildConflict) {
		t.Fatalf("transport failure misreported as a build conflict: %v", err)
	}
	if elapsed := time.Since(start); elapsed > 15*time.Second {
		t.Fatalf("poisoned customization took %v — it must fail promptly", elapsed)
	}
	armed.Store(false)

	// The old index keeps serving, untouched.
	if !f.HasIndex() {
		t.Fatal("poisoned customization removed the serving index")
	}
	if got := f.IndexStats(); got.Shortcuts != before.Shortcuts || !got.Customized {
		t.Fatalf("poisoned customization disturbed the serving index: %+v", got)
	}
	route, _, qerr := f.ShortestPath(0, Vertex(g.NumVertices()-1))
	if qerr != nil {
		t.Fatalf("query after poisoned customization: %v", qerr)
	}
	if want := jointDijkstra(g, silos, 0, Vertex(g.NumVertices()-1)); JointCost(route) != want {
		t.Fatalf("query after poisoned customization cost %d, want %d", JointCost(route), want)
	}

	// And the pipeline recovers once the fault clears.
	if err := f.CustomizeIndexWith(IndexParams{Workers: 2}); err != nil {
		t.Fatalf("customization after fault cleared: %v", err)
	}
}
