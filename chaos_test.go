package fedroad

import (
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/graph"
	"repro/internal/transport"
)

// chaosFederation builds a small protocol-mode federation whose sessions can
// be armed to route one party's transport through a FaultConn. Arming after
// New keeps calibration clean; every session forked while armed is faulty.
func chaosFederation(t *testing.T, plan transport.FaultPlan, party int, opts Config) (*Federation, *Graph, []Weights, *atomic.Bool) {
	t.Helper()
	g, w0 := GenerateGridNetwork(5, 5, 51)
	silos := SimulateCongestion(w0, 3, Moderate, 52)
	armed := new(atomic.Bool)
	cfg := opts
	cfg.Mode = ModeProtocol
	cfg.Seed = 53
	cfg.TransportWrap = func(p int, c transport.Conn) transport.Conn {
		if !armed.Load() || p != party {
			return c
		}
		return transport.NewFaultConn(c, plan)
	}
	f, err := New(g, w0, silos, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return f, g, silos, armed
}

// jointDijkstra computes the plaintext joint-cost answer the secure query
// must reproduce.
func jointDijkstra(g *Graph, silos []Weights, src, dst Vertex) int64 {
	joint := make(Weights, g.NumArcs())
	for _, s := range silos {
		for a, w := range s {
			joint[a] += w
		}
	}
	cost, _ := graph.DijkstraTo(g, joint, src, dst)
	return cost
}

func TestChaosKilledPartyFailsQueryCleanly(t *testing.T) {
	// The acceptance scenario: one party's endpoint is killed mid-query. The
	// query must surface a wrapped transport error promptly — no hang, no
	// panic — the session must be poisoned, and a fresh session on the same
	// federation must answer correctly.
	const roundTimeout = 150 * time.Millisecond
	plan := transport.FaultPlan{After: 40, Script: []transport.FaultKind{transport.FaultClose}}
	f, g, silos, armed := chaosFederation(t, plan, 1, Config{RoundTimeout: roundTimeout})

	armed.Store(true)
	sess := f.Session()
	start := time.Now()
	_, _, err := sess.ShortestPath(0, 24)
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("query against a killed party succeeded")
	}
	if !errors.Is(err, ErrSessionPoisoned) {
		t.Fatalf("error does not wrap ErrSessionPoisoned: %v", err)
	}
	if elapsed > 10*roundTimeout+2*time.Second {
		t.Fatalf("killed-party query took %v, round timeout is %v", elapsed, roundTimeout)
	}
	if !sess.Poisoned() {
		t.Fatal("session not marked poisoned after transport failure")
	}
	// Reusing the poisoned session fails fast instead of touching the
	// desynchronized transport again.
	start = time.Now()
	if _, _, err := sess.ShortestPath(0, 24); !errors.Is(err, ErrSessionPoisoned) {
		t.Fatalf("reused poisoned session: %v", err)
	}
	if time.Since(start) > time.Second {
		t.Fatal("poisoned session did not fail fast")
	}
	sess.Close()

	// The federation itself stays healthy: a fresh session answers, and
	// answers correctly.
	armed.Store(false)
	fresh := f.Session()
	defer fresh.Close()
	route, _, err := fresh.ShortestPath(0, 24)
	if err != nil {
		t.Fatalf("fresh session after poisoning: %v", err)
	}
	if want := jointDijkstra(g, silos, 0, 24); JointCost(route) != want {
		t.Fatalf("fresh session cost %d, want %d", JointCost(route), want)
	}
}

func TestChaosSilentPartyTimesOut(t *testing.T) {
	// A party that stops sending (frames silently dropped) must not hang the
	// query: its peers' round timeouts fire and the error classifies as a
	// timeout, which the server layer maps to 504.
	const roundTimeout = 150 * time.Millisecond
	script := make([]transport.FaultKind, 4096)
	for i := range script {
		script[i] = transport.FaultDrop
	}
	plan := transport.FaultPlan{After: 30, Script: script}
	f, _, _, armed := chaosFederation(t, plan, 2, Config{RoundTimeout: roundTimeout})

	armed.Store(true)
	sess := f.Session()
	defer sess.Close()
	start := time.Now()
	_, _, err := sess.ShortestPath(0, 24)
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("query against a silent party succeeded")
	}
	if !errors.Is(err, ErrSessionPoisoned) || !IsTimeout(err) {
		t.Fatalf("silent-party error classification: %v", err)
	}
	if elapsed > 10*roundTimeout+2*time.Second {
		t.Fatalf("silent-party query took %v, round timeout is %v", elapsed, roundTimeout)
	}
}

func TestChaosRetryAbsorbsTransientFault(t *testing.T) {
	// A single transient transport fault inside a query is absorbed by the
	// configured Fed-SAC retry budget: the query succeeds with the correct
	// joint cost and the session stays healthy.
	plan := transport.FaultPlan{After: 30, Script: []transport.FaultKind{transport.FaultError}}
	f, g, silos, armed := chaosFederation(t, plan, 0, Config{
		RoundTimeout:    150 * time.Millisecond,
		SACRetries:      2,
		SACRetryBackoff: time.Millisecond,
	})

	armed.Store(true)
	sess := f.Session()
	defer sess.Close()
	route, _, err := sess.ShortestPath(0, 24)
	if err != nil {
		t.Fatalf("retry did not absorb the transient fault: %v", err)
	}
	if want := jointDijkstra(g, silos, 0, 24); JointCost(route) != want {
		t.Fatalf("faulty-but-retried query cost %d, want %d", JointCost(route), want)
	}
	if sess.Poisoned() {
		t.Fatal("session poisoned by a recovered fault")
	}
}
