package fedroad

// Benchmark harness: one benchmark per table/figure of the paper's
// evaluation (§VIII), plus micro-benchmarks of the core primitives. The
// per-figure benchmarks run the same expr harness as cmd/fedbench on
// moderately scaled instances so `go test -bench=.` finishes in minutes;
// `fedbench all` reproduces the full-scale tables (see EXPERIMENTS.md).

import (
	"fmt"
	"io"
	"math/rand/v2"
	"sync"
	"testing"

	"repro/internal/expr"
	"repro/internal/graph"
	"repro/internal/lb"
	"repro/internal/mpc"
	"repro/internal/pq"
	"repro/internal/traffic"
)

// benchHarness builds a harness on bench-scale instances (quiet output).
func benchHarness() *expr.Harness {
	return expr.New(expr.Config{
		Datasets:        []string{"CAL-S"},
		QueriesPerGroup: 5,
		NumGroups:       4,
		Landmarks:       16,
		MaxVertices:     800,
		Out:             io.Discard,
	})
}

func BenchmarkFig1TrafficVolume(b *testing.B) {
	for i := 0; i < b.N; i++ {
		h := benchHarness()
		rows, err := h.RunFig1(1000, 100)
		if err != nil {
			b.Fatal(err)
		}
		h.PrintFig1(rows)
	}
}

func BenchmarkTable1Datasets(b *testing.B) {
	for i := 0; i < b.N; i++ {
		h := benchHarness()
		rows, err := h.RunTab1()
		if err != nil {
			b.Fatal(err)
		}
		h.PrintTab1(rows)
	}
}

func BenchmarkFig7QueryTime(b *testing.B) {
	for i := 0; i < b.N; i++ {
		h := benchHarness()
		res, err := h.RunComparative()
		if err != nil {
			b.Fatal(err)
		}
		h.PrintFig7(res)
	}
}

func BenchmarkFig8Communication(b *testing.B) {
	for i := 0; i < b.N; i++ {
		h := benchHarness()
		res, err := h.RunComparative()
		if err != nil {
			b.Fatal(err)
		}
		h.PrintFig8(res)
	}
}

func BenchmarkFig9SiloScalability(b *testing.B) {
	for i := 0; i < b.N; i++ {
		h := benchHarness()
		res, err := h.RunScalability([]int{2, 4, 6, 8})
		if err != nil {
			b.Fatal(err)
		}
		h.PrintFig9(res)
	}
}

func BenchmarkTable2IndexUpdate(b *testing.B) {
	for i := 0; i < b.N; i++ {
		h := benchHarness()
		rows, err := h.RunTab2()
		if err != nil {
			b.Fatal(err)
		}
		h.PrintTab2(rows)
	}
}

func BenchmarkFig10CostCorrelation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		h := benchHarness()
		comp, err := h.RunComparative()
		if err != nil {
			b.Fatal(err)
		}
		h.PrintFig10(h.RunFig10(comp))
	}
}

func BenchmarkFig11LowerBoundAccuracy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		h := benchHarness()
		res, err := h.RunFig11(50)
		if err != nil {
			b.Fatal(err)
		}
		h.PrintFig11(res)
	}
}

func BenchmarkFig12QueueComparisons(b *testing.B) {
	for i := 0; i < b.N; i++ {
		h := benchHarness()
		res, err := h.RunFig12()
		if err != nil {
			b.Fatal(err)
		}
		h.PrintFig12(res)
	}
}

func BenchmarkAblationAlpha(b *testing.B) {
	for i := 0; i < b.N; i++ {
		h := benchHarness()
		rows, err := h.RunAlphaAblation([]int{2, 4, 8, 16})
		if err != nil {
			b.Fatal(err)
		}
		h.PrintAlphaAblation(rows)
	}
}

func BenchmarkAblationLandmarks(b *testing.B) {
	for i := 0; i < b.N; i++ {
		h := benchHarness()
		rows, err := h.RunLandmarkAblation(nil)
		if err != nil {
			b.Fatal(err)
		}
		h.PrintLandmarkAblation(rows)
	}
}

func BenchmarkAblationEstimators(b *testing.B) {
	for i := 0; i < b.N; i++ {
		h := benchHarness()
		rows, err := h.RunEstimatorAblation()
		if err != nil {
			b.Fatal(err)
		}
		h.PrintEstimatorAblation(rows)
	}
}

func BenchmarkAblationBatching(b *testing.B) {
	for i := 0; i < b.N; i++ {
		h := benchHarness()
		rows, err := h.RunBatchingAblation()
		if err != nil {
			b.Fatal(err)
		}
		h.PrintBatchingAblation(rows)
	}
}

// --- micro-benchmarks of the primitives ---

func benchEngine(b *testing.B, mode mpc.Mode, parties int) *mpc.Engine {
	b.Helper()
	e, err := mpc.NewEngine(mpc.Params{Parties: parties, Mode: mode, Seed: 7})
	if err != nil {
		b.Fatal(err)
	}
	return e
}

func BenchmarkFedSACIdeal(b *testing.B) {
	e := benchEngine(b, mpc.ModeIdeal, 3)
	diffs := []int64{100, -350, 249}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Compare(diffs); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFedSACProtocol3Parties(b *testing.B) {
	e := benchEngine(b, mpc.ModeProtocol, 3)
	diffs := []int64{100, -350, 249}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Compare(diffs); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFedSACProtocol8Parties(b *testing.B) {
	e := benchEngine(b, mpc.ModeProtocol, 8)
	diffs := []int64{100, -350, 249, 1, -2, 3, -4, 5}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Compare(diffs); err != nil {
			b.Fatal(err)
		}
	}
}

func benchFederation(b *testing.B, n int) (*Federation, *graph.Graph) {
	b.Helper()
	g, w0 := graph.GenerateRoadLike(n, 31)
	silos := traffic.SiloWeights(w0, 3, traffic.Moderate, 32)
	f, err := New(g, w0, silos, Config{Seed: 33})
	if err != nil {
		b.Fatal(err)
	}
	return f, g
}

// BenchmarkIndexBuild compares contraction worker-pool sizes. Wall-clock
// speedup needs real cores (GOMAXPROCS); the reported mpc-rounds and
// rounds-saved metrics hold on any host.
func BenchmarkIndexBuild(b *testing.B) {
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			var rounds, saved int64
			for i := 0; i < b.N; i++ {
				f, _ := benchFederation(b, 1000)
				if err := f.BuildIndexWith(IndexParams{Workers: workers}); err != nil {
					b.Fatal(err)
				}
				st := f.IndexStats()
				rounds += st.SAC.Rounds
				saved += st.RoundsSaved
			}
			b.ReportMetric(float64(rounds)/float64(b.N), "mpc-rounds/op")
			b.ReportMetric(float64(saved)/float64(b.N), "rounds-saved/op")
		})
	}
}

func benchSPSP(b *testing.B, opt QueryOptions) {
	f, g := benchFederation(b, 1200)
	if err := f.BuildIndex(); err != nil {
		b.Fatal(err)
	}
	f.PrecomputeLandmarks()
	rng := rand.New(rand.NewPCG(5, 5))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := Vertex(rng.IntN(g.NumVertices()))
		t := Vertex(rng.IntN(g.NumVertices()))
		if _, _, err := f.ShortestPath(s, t, opt); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSPSPNaiveDijk(b *testing.B) {
	benchSPSP(b, QueryOptions{NoIndex: true, Estimator: NoEstimator, Queue: Heap})
}

func BenchmarkSPSPShortcut(b *testing.B) {
	benchSPSP(b, QueryOptions{Estimator: NoEstimator, Queue: Heap})
}

func BenchmarkSPSPShortcutAMPS(b *testing.B) {
	benchSPSP(b, QueryOptions{Estimator: FedAMPS, Queue: Heap})
}

func BenchmarkSPSPFullStack(b *testing.B) {
	benchSPSP(b, QueryOptions{Estimator: FedAMPS, Queue: TMTree})
}

func BenchmarkSPSPFullStackBatched(b *testing.B) {
	benchSPSP(b, QueryOptions{Estimator: FedAMPS, Queue: TMTree, BatchedMPC: true})
}

func BenchmarkSSSPkNN(b *testing.B) {
	f, g := benchFederation(b, 1200)
	rng := rand.New(rand.NewPCG(6, 6))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := Vertex(rng.IntN(g.NumVertices()))
		if _, _, err := f.NearestNeighbors(s, 10); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkConcurrentQueries measures aggregate SPSP throughput as parallel
// query sessions are added, on CAL-S in full protocol mode with the modeled
// LAN applied as real transport delays. One benchmark iteration answers a
// fixed slate of queries split across W workers (W=1 is the serialized
// baseline), so ns/op is directly comparable across worker counts: the
// speedup comes from sessions overlapping their network waits, plus the
// preprocessing pool keeping dealer work off the critical path.
func BenchmarkConcurrentQueries(b *testing.B) {
	g, w0, _ := graph.GenerateDataset("CAL-S")
	silos := traffic.SiloWeights(w0, 3, traffic.Moderate, 32)
	f, err := New(g, w0, silos, Config{
		Mode: ModeProtocol, Seed: 33,
		PreprocessPool: 8192, PreprocessWorkers: 2,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer f.Close()
	// Build at full speed, then serve under realistic latency.
	if err := f.BuildIndex(); err != nil {
		b.Fatal(err)
	}
	f.SetRealNetworkDelay(true)

	const slate = 16
	rng := rand.New(rand.NewPCG(7, 7))
	type pair struct{ s, t Vertex }
	pairs := make([]pair, slate)
	for i := range pairs {
		pairs[i] = pair{Vertex(rng.IntN(g.NumVertices())), Vertex(rng.IntN(g.NumVertices()))}
	}
	opt := QueryOptions{Estimator: FedAMPS, Queue: TMTree, BatchedMPC: true}

	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				var wg sync.WaitGroup
				for w := 0; w < workers; w++ {
					wg.Add(1)
					go func(w int) {
						defer wg.Done()
						sess := f.Session()
						defer sess.Close()
						for q := w; q < slate; q += workers {
							if _, _, err := sess.ShortestPath(pairs[q].s, pairs[q].t, opt); err != nil {
								b.Error(err)
								return
							}
						}
					}(w)
				}
				wg.Wait()
			}
		})
	}
}

func benchQueue(b *testing.B, kind pq.Kind) {
	rng := rand.New(rand.NewPCG(9, 9))
	batches := make([][]int, 512)
	for i := range batches {
		batch := make([]int, 4+rng.IntN(8))
		for j := range batch {
			batch[j] = rng.IntN(1 << 20)
		}
		batches[i] = batch
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := pq.New[int](kind, func(a, c int) bool { return a < c }, 4)
		for _, batch := range batches {
			q.PushBatch(batch)
			q.Pop()
		}
	}
}

func BenchmarkQueueHeap(b *testing.B)    { benchQueue(b, pq.KindHeap) }
func BenchmarkQueueLeftist(b *testing.B) { benchQueue(b, pq.KindLeftist) }
func BenchmarkQueueTMTree(b *testing.B)  { benchQueue(b, pq.KindTMTree) }

func BenchmarkLandmarkPrecompute(b *testing.B) {
	g, w0 := graph.GenerateRoadLike(800, 41)
	silos := traffic.SiloWeights(w0, 3, traffic.Moderate, 42)
	for i := 0; i < b.N; i++ {
		f, err := New(g, w0, silos)
		if err != nil {
			b.Fatal(err)
		}
		_ = f
		_ = lb.FedALT
		f.PrecomputeLandmarks()
	}
}
