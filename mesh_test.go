package fedroad

import (
	"errors"
	"sync"
	"testing"
	"time"
)

// meshFederation builds a small protocol-mode federation whose MPC rounds
// run over the loopback TCP mesh (mTLS when certDir is non-empty).
func meshFederation(t *testing.T, certDir string, opts Config) (*Federation, *Graph, []Weights) {
	t.Helper()
	g, w0 := GenerateGridNetwork(5, 5, 61)
	silos := SimulateCongestion(w0, 3, Moderate, 62)
	cfg := opts
	cfg.Mode = ModeProtocol
	cfg.Seed = 63
	cfg.MeshTCP = true
	if certDir != "" {
		cfg.MeshTLS = TestCertConfig(certDir, 0)
	}
	f, err := New(g, w0, silos, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(f.Close)
	return f, g, silos
}

func TestMeshFederationMatchesOracle(t *testing.T) {
	// Protocol rounds over real mTLS sockets must reproduce the plaintext
	// joint-cost answers exactly: the wire path changes, the bits must not.
	dir := t.TempDir()
	if err := GenerateTestCerts(dir, 3); err != nil {
		t.Fatal(err)
	}
	f, g, silos := meshFederation(t, dir, Config{})

	sess := f.Session()
	defer sess.Close()
	pairs := [][2]Vertex{{0, 24}, {3, 21}, {12, 7}, {20, 4}}
	for _, p := range pairs {
		route, _, err := sess.ShortestPath(p[0], p[1])
		if err != nil {
			t.Fatalf("mesh query %v: %v", p, err)
		}
		if want := jointDijkstra(g, silos, p[0], p[1]); JointCost(route) != want {
			t.Fatalf("mesh query %v: cost %d, want %d", p, JointCost(route), want)
		}
	}
	// The traffic genuinely crossed the mesh.
	var bytes int64
	for _, st := range f.MeshStats() {
		bytes += st.BytesSent
	}
	if bytes == 0 {
		t.Fatal("mesh reports zero bytes sent after protocol queries")
	}
}

func TestMeshConcurrentSessions(t *testing.T) {
	// Concurrent session forks each get their own lane set over the shared
	// physical links; answers stay correct under interleaving.
	f, g, silos := meshFederation(t, "", Config{})
	want := jointDijkstra(g, silos, 0, 24)
	var wg sync.WaitGroup
	errs := make([]error, 8)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sess := f.Session()
			defer sess.Close()
			for q := 0; q < 3; q++ {
				route, _, err := sess.ShortestPath(0, 24)
				if err != nil {
					errs[i] = err
					return
				}
				if JointCost(route) != want {
					errs[i] = errors.New("wrong joint cost over mesh")
					return
				}
			}
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
}

func TestMeshLinkBreakPoisonsThenRecovers(t *testing.T) {
	// A mid-query link break must surface as a typed poison (no hang, no
	// wrong answer); after the automatic redial a fresh session answers
	// correctly and the reconnect counter moves.
	f, g, silos := meshFederation(t, "", Config{RoundTimeout: 500 * time.Millisecond})

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // keep breaking the 0–1 link while queries run
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			case <-time.After(10 * time.Millisecond):
				f.BreakMeshLink(0, 1)
			}
		}
	}()

	want := jointDijkstra(g, silos, 0, 24)
	sawPoison := false
	for q := 0; q < 20; q++ {
		sess := f.Session()
		route, _, err := sess.ShortestPath(0, 24)
		sess.Close()
		if err != nil {
			if !errors.Is(err, ErrSessionPoisoned) {
				t.Fatalf("query %d: untyped error under link chaos: %v", q, err)
			}
			sawPoison = true
			continue
		}
		if JointCost(route) != want {
			t.Fatalf("query %d: wrong cost %d under link chaos, want %d", q, JointCost(route), want)
		}
	}
	close(stop)
	wg.Wait()
	if !sawPoison {
		t.Log("no query was poisoned by link chaos (timing-dependent); correctness still verified")
	}

	// Chaos off: the mesh self-heals and fresh sessions answer. Allow the
	// redial loop a moment to re-establish the link.
	deadline := time.Now().Add(5 * time.Second)
	for {
		sess := f.Session()
		route, _, err := sess.ShortestPath(0, 24)
		sess.Close()
		if err == nil {
			if JointCost(route) != want {
				t.Fatalf("post-chaos cost %d, want %d", JointCost(route), want)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("mesh did not recover after link chaos: %v", err)
		}
		time.Sleep(50 * time.Millisecond)
	}
	var reconnects int64
	for _, st := range f.MeshStats() {
		reconnects += st.Reconnects
	}
	if reconnects == 0 {
		t.Fatal("no automatic reconnection recorded after repeated link breaks")
	}
}
