// Package fedroad is a from-scratch reproduction of "FedRoad: Secure and
// Efficient Road Network Queries over Traffic Data Federation" (ICDE 2025):
// a traffic data federation in which P autonomous silos share a road-network
// topology, keep their travel-time observations private, and collaboratively
// answer shortest-path queries on the imaginary weighted joint road network
// whose edge weights average the silos' observations.
//
// The only cross-silo primitive is Fed-SAC, a secret-sharing-based secure
// sum-and-compare operator: silos learn which of two joint path costs is
// smaller and nothing else. On top of it the library provides:
//
//   - Fed-SSSP / Fed-SPSP: federated Dijkstra, bidirectional and A* search
//     (paper §II);
//   - the federated shortcut index: a contraction hierarchy with consistent
//     shortcut sets and private partial shortcut weights, including dynamic
//     partial updates (§IV);
//   - federated lower bounds Fed-ALT, Fed-ALT-Max and Fed-AMPS for A*
//     pruning (§V);
//   - the TM-tree, a comparison-optimized priority queue (§VI).
//
// Quick start:
//
//	g, w0 := fedroad.GenerateRoadNetwork(2000, 42)
//	silos := fedroad.SimulateCongestion(w0, 3, fedroad.Moderate, 7)
//	f, _ := fedroad.New(g, w0, silos)
//	_ = f.BuildIndex()
//	route, stats, _ := f.ShortestPath(12, 1780)
//	fmt.Println(route.Path, stats.SAC.Compares)
//
// The packages under internal/ hold the implementation; see DESIGN.md for
// the architecture and EXPERIMENTS.md for the reproduced evaluation.
package fedroad

import (
	"errors"
	"fmt"
	"io"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/ch"
	"repro/internal/core"
	"repro/internal/fed"
	"repro/internal/graph"
	"repro/internal/lb"
	"repro/internal/metrics"
	"repro/internal/mpc"
	"repro/internal/pq"
	"repro/internal/traffic"
	"repro/internal/transport"
)

// Re-exported graph vocabulary.
type (
	// Graph is the shared road-network topology.
	Graph = graph.Graph
	// Vertex identifies a road junction.
	Vertex = graph.Vertex
	// Arc identifies a directed road segment.
	Arc = graph.Arc
	// Weights is a per-arc travel-time set (milliseconds).
	Weights = graph.Weights
	// CongestionLevel parameterizes the traffic model.
	CongestionLevel = traffic.Level
)

// The paper's congestion levels (§VIII-A).
var (
	Free     = traffic.Free
	Slight   = traffic.Slight
	Moderate = traffic.Moderate
	Heavy    = traffic.Heavy
)

// GenerateRoadNetwork produces an irregular road-like network with n
// junctions and its public free-flow weight set W0. Deterministic in seed.
func GenerateRoadNetwork(n int, seed uint64) (*Graph, Weights) {
	return graph.GenerateRoadLike(n, seed)
}

// GenerateGridNetwork produces a Manhattan-style network with a road
// hierarchy. Deterministic in seed.
func GenerateGridNetwork(rows, cols int, seed uint64) (*Graph, Weights) {
	return graph.GenerateGrid(rows, cols, seed)
}

// NewGraphBuilder starts a custom topology with n vertices.
func NewGraphBuilder(n int) *graph.Builder { return graph.NewBuilder(n) }

// LoadGraph parses a DIMACS-like road network (see graph.ReadFrom).
func LoadGraph(r io.Reader) (*Graph, Weights, error) { return graph.ReadFrom(r) }

// SaveGraph writes a road network in the same format.
func SaveGraph(w io.Writer, g *Graph, weights Weights) error {
	return graph.WriteTo(w, g, weights)
}

// LoadGraphFile loads a road network from a file, auto-detecting the binary
// snapshot format (cmd/import-dimacs output) versus the text format.
func LoadGraphFile(path string) (*Graph, Weights, error) { return graph.LoadFile(path) }

// LoadGraphBinary parses a binary graph snapshot (see graph.ReadBinary).
func LoadGraphBinary(r io.Reader) (*Graph, Weights, error) { return graph.ReadBinary(r) }

// SaveGraphBinary writes a road network as a binary snapshot — the fast,
// memory-lean load path for continent-scale networks.
func SaveGraphBinary(w io.Writer, g *Graph, weights Weights) error {
	return graph.WriteBinary(w, g, weights)
}

// SimulateCongestion derives p private silo weight sets from the static
// weights under a congestion level (the paper's evaluation traffic model).
func SimulateCongestion(w0 Weights, p int, lvl CongestionLevel, seed uint64) []Weights {
	return traffic.SiloWeights(w0, p, lvl, seed)
}

// ExecutionMode selects how Fed-SAC runs.
type ExecutionMode int

const (
	// ModeIdeal evaluates comparisons directly with exact analytic cost
	// accounting (calibrated against the real protocol) — the default for
	// experiments.
	ModeIdeal ExecutionMode = iota
	// ModeProtocol runs the full secret-sharing MPC protocol between
	// in-process party goroutines for every comparison.
	ModeProtocol
)

// Estimator names a federated lower-bound method for A* pruning.
type Estimator string

const (
	// NoEstimator disables A* pruning (plain federated Dijkstra keys).
	NoEstimator Estimator = Estimator(lb.None)
	// FedALT selects the tightest landmark bound with secure comparisons.
	FedALT Estimator = Estimator(lb.FedALT)
	// FedALTMax selects the landmark on public static weights (no MPC).
	FedALTMax Estimator = Estimator(lb.FedALTMax)
	// FedAMPS uses the mean of per-silo local shortest-path costs (the
	// paper's recommended estimator).
	FedAMPS Estimator = Estimator(lb.FedAMPS)
)

// QueueKind names a priority-queue structure.
type QueueKind string

const (
	// Heap is the classical binary heap.
	Heap QueueKind = QueueKind(pq.KindHeap)
	// LeftistHeap batches insertions via leftist-heap melding.
	LeftistHeap QueueKind = QueueKind(pq.KindLeftist)
	// TMTree is the paper's comparison-optimized Tournament Merge tree.
	TMTree QueueKind = QueueKind(pq.KindTMTree)
)

// Config tunes a federation. The zero value gives the paper's defaults.
type Config struct {
	Mode      ExecutionMode
	Seed      uint64
	Landmarks int           // landmark count for Fed-ALT(-Max); default 32
	Latency   time.Duration // modeled one-way network latency (default 0.2ms)
	Bandwidth float64       // modeled bandwidth in bytes/s (default 1 GB/s)

	// PreprocessPool, when positive, starts a background preprocessing pool
	// holding up to this many comparisons' correlated randomness, generated
	// ahead of demand so protocol-mode queries rarely pay the offline phase
	// on the critical path. Call Close to release the pool's workers.
	PreprocessPool int
	// PreprocessWorkers is the number of pool replenisher goroutines
	// (default 1; only meaningful with PreprocessPool > 0).
	PreprocessWorkers int

	// RealNetworkDelay applies the modeled latency/bandwidth as actual
	// delivery delays on the in-process transport (protocol mode), so query
	// wall times follow the paper's R·(L + S/B) cost model and concurrent
	// sessions genuinely overlap their network waits. Off by default: index
	// construction and benchmarks in analytic mode stay fast.
	RealNetworkDelay bool

	// RoundTimeout bounds how long any silo waits for a single protocol
	// frame (protocol mode; 0 = wait forever). With it set, a slow or dead
	// silo degrades a query into a clean wrapped error within roughly
	// rounds×RoundTimeout instead of hanging the session forever.
	RoundTimeout time.Duration
	// SACRetries re-runs a Fed-SAC protocol round up to this many times
	// after a transient transport failure (timeout or injected fault) before
	// declaring the session's engine unusable. Default 0: fail on first
	// error.
	SACRetries int
	// SACRetryBackoff is the sleep before the first retry, doubled per
	// retry. Zero retries immediately.
	SACRetryBackoff time.Duration

	// TransportWrap, when set, wraps every MPC transport endpoint the
	// federation and its sessions create. This is the chaos-testing hook:
	// install transport.NewFaultConn here to drive queries through dropped,
	// delayed, duplicated and killed links. Production configs leave it nil.
	TransportWrap func(party int, c transport.Conn) transport.Conn

	// MeshTCP routes every session's MPC rounds over a real loopback TCP
	// mesh with multiplexed lanes (protocol mode only): exactly P−1 physical
	// sockets per silo endpoint, one fresh lane set per session fork, with
	// heartbeat failure detection and automatic redial. This is the
	// deployment-shaped wire path — every secret share crosses an actual
	// socket — at the cost of real syscall latency per round.
	MeshTCP bool
	// MeshTLS enables mutual-auth TLS on the mesh links (requires MeshTCP).
	// See transport.TLSConfig; all three file paths must be set.
	MeshTLS *TLSConfig
}

// TLSConfig re-exports the transport layer's mutual-auth TLS configuration
// (certificate, key and federation-CA PEM paths).
type TLSConfig = transport.TLSConfig

// GenerateTestCerts writes a throwaway federation PKI (self-signed CA plus
// one certificate per silo) into dir — the self-signed quickstart for local
// mTLS meshes. Production deployments bring their own CA.
func GenerateTestCerts(dir string, silos int) error {
	return transport.GenerateTestCerts(dir, silos)
}

// TestCertConfig returns the TLSConfig for one silo under a
// GenerateTestCerts directory.
func TestCertConfig(dir string, silo int) *TLSConfig {
	return transport.TestCertConfig(dir, silo)
}

// MeshStats re-exports one mesh endpoint's per-peer link and traffic
// counters (see Federation.MeshStats).
type MeshStats = transport.MeshStats

// ErrInvalidUpdate tags traffic updates rejected by validation (a client
// mistake: silo/arc out of range, travel time outside bounds). Errors from
// ApplyTraffic and SetTraffic that do NOT wrap ErrInvalidUpdate are internal
// failures (e.g. a shortcut-index refresh error) — servers should map the
// former to 4xx and the latter to 5xx.
var ErrInvalidUpdate = errors.New("fedroad: invalid traffic update")

// ErrSessionPoisoned tags query errors from a session whose MPC engine
// suffered an unrecoverable transport failure. The session must be closed
// and replaced; the federation itself remains healthy and fresh sessions
// work. Check with errors.Is.
var ErrSessionPoisoned = mpc.ErrPoisoned

// ErrPeerDown tags transport errors caused by a dead inter-silo link (the
// mesh's heartbeat monitor declared the peer unreachable, or redial has not
// yet succeeded). It is deliberately not retryable at the protocol-round
// level — in-flight rounds on a dead link are unrecoverable — so it surfaces
// wrapped in ErrSessionPoisoned; fresh sessions transparently use the
// redialed link once the peer returns. Check with errors.Is.
var ErrPeerDown = transport.ErrPeerDown

// ErrBuildConflict tags an index build abandoned because traffic updates
// changed the silo weights after the build snapshotted them: the finished
// index would describe stale weights, so it is discarded instead of swapped
// in. Set IndexParams.RebuildOnConflict to retry from fresh weights
// automatically, or catch this error (errors.Is) and re-invoke
// BuildIndexWith when the update rate allows. A previously built index, if
// any, keeps serving queries.
var ErrBuildConflict = errors.New("fedroad: index build conflicted with a concurrent traffic update")

// ErrInvalidQuery tags query errors caused by the request itself: an unknown
// estimator or queue kind, an option combination the engine rejects (e.g.
// BatchedMPC without the TM-tree, an estimator on a kNN query), or vertices
// outside the graph. Servers should map these to 4xx; query errors NOT
// wrapping ErrInvalidQuery (or ErrSessionPoisoned / a timeout) are internal
// failures and belong in the 5xx class. Check with errors.Is.
var ErrInvalidQuery = errors.New("fedroad: invalid query")

// IsTimeout reports whether a query error stems from the configured
// per-round timeout (or a socket deadline) expiring — the signature of a
// slow or dead silo, as opposed to a bad request.
func IsTimeout(err error) bool { return transport.IsTimeout(err) }

// Federation is the top-level handle: the shared topology, the private
// silos, the MPC engine and (once built) the pre-computed structures.
//
// A Federation is safe for concurrent use. Queries (ShortestPath,
// NearestNeighbors, and every query issued through a Session) take a read
// lock and run on a private MPC engine fork, so any number of them proceed
// in parallel; mutations (SetTraffic, ApplyTraffic, UpdateIndex) take the
// write lock and therefore never interleave with a search. BuildIndex and
// PrecomputeLandmarks do their heavy work OFF the lock — they snapshot the
// silo weights under a read lock, compute unlocked, and swap the result in
// under a brief write lock — so queries and traffic updates keep flowing
// during a (re)build. See DESIGN.md, "Concurrency model" and "Parallel index
// construction".
type Federation struct {
	mu    sync.RWMutex // queries read-lock; state mutation write-locks
	inner *fed.Federation
	index *ch.Index
	skel  *ch.Skeleton // topology skeleton for weight customization (guarded by mu)
	lm    *lb.Landmarks
	cfg   Config
	pool  *mpc.Pool
	mesh  *transport.LocalMesh

	// Customization pass accounting (atomics: read by gauges and /stats
	// without taking mu).
	customizes     atomic.Int64
	lastCustMs     atomic.Int64
	lastCustRounds atomic.Int64

	// trafficVer counts silo-weight mutations (guarded by mu). Off-lock
	// builders record it at snapshot time; a changed version at swap time
	// means the build no longer describes the live weights.
	trafficVer uint64
	// building counts in-flight off-lock index builds (for IndexBuilding
	// and the build-in-progress gauge).
	building atomic.Int32

	// reg is the federation's metrics registry: MPC cost counters (fed by
	// every engine fork), per-query latency histograms and phase timings,
	// and preprocessing-pool gauges. Servers fold their own HTTP and
	// session-pool metrics into the same registry via Metrics().
	reg *metrics.Registry
	qm  map[string]*queryMetricSet
	bm  *buildMetricSet
}

// buildMetricSet instruments the index-build pipeline. The gauges read only
// atomics — a gauge callback must never take f.mu, or scraping /metrics
// while a writer holds the lock would deadlock.
type buildMetricSet struct {
	builds           *metrics.Counter
	conflicts        *metrics.Counter
	seconds          *metrics.Histogram
	rounds           *metrics.Counter
	roundsSaved      *metrics.Counter
	phaseOrdering    *metrics.Counter
	phaseContraction *metrics.Counter
	lastAvgWidth     atomic.Uint64 // math.Float64bits of the last build's AvgRoundWidth

	// Weight-customization pipeline (the contract-once / customize-per-metric
	// split; see DESIGN.md "Customizable hierarchy").
	customizes    *metrics.Counter
	custConflicts *metrics.Counter
	custSeconds   *metrics.Histogram
	custRounds    *metrics.Counter
}

// queryMetricSet is the per-query-kind ("spsp", "sssp") instrument bundle.
type queryMetricSet struct {
	total, errors *metrics.Counter
	latency       *metrics.Histogram
	settled       *metrics.Counter
	heuristics    *metrics.Counter
	phaseQueue    *metrics.Counter
	phaseSAC      *metrics.Counter
	phaseRelax    *metrics.Counter
}

// New assembles a federation of len(siloWeights) silos over the shared
// topology g with public static weights w0. Each silo keeps its weight set
// private; all cross-silo computation runs through the MPC engine.
func New(g *Graph, w0 Weights, siloWeights []Weights, cfg ...Config) (*Federation, error) {
	var c Config
	if len(cfg) > 1 {
		return nil, fmt.Errorf("fedroad: at most one Config")
	}
	if len(cfg) == 1 {
		c = cfg[0]
	}
	if c.Landmarks == 0 {
		c.Landmarks = 32
	}
	reg := metrics.NewRegistry()
	params := mpc.Params{
		Seed:         c.Seed,
		RealDelay:    c.RealNetworkDelay,
		RoundTimeout: c.RoundTimeout,
		Retry:        mpc.RetryPolicy{Attempts: c.SACRetries, Backoff: c.SACRetryBackoff},
		Wrap:         c.TransportWrap,
		Instr:        mpc.NewInstruments(reg),
	}
	if c.Mode == ModeProtocol {
		params.Mode = mpc.ModeProtocol
	}
	var mesh *transport.LocalMesh
	if c.MeshTCP {
		if c.Mode != ModeProtocol {
			return nil, fmt.Errorf("fedroad: MeshTCP requires ModeProtocol (ideal mode exchanges no messages)")
		}
		var err error
		mesh, err = transport.NewLocalMesh(len(siloWeights), transport.MeshOptions{TLS: c.MeshTLS})
		if err != nil {
			return nil, err
		}
		params.Dial = func() (mpc.ConnSet, error) {
			conns, drain := mesh.SessionConns()
			return mpc.ConnSet{Conns: conns, Drain: drain}, nil
		}
	} else if c.MeshTLS.Enabled() {
		return nil, fmt.Errorf("fedroad: MeshTLS requires MeshTCP")
	}
	if c.Latency != 0 || c.Bandwidth != 0 {
		params.Net = mpc.NetworkModel{Latency: c.Latency, Bandwidth: c.Bandwidth}
		if params.Net.Latency == 0 {
			params.Net.Latency = mpc.DefaultLAN().Latency
		}
		if params.Net.Bandwidth == 0 {
			params.Net.Bandwidth = mpc.DefaultLAN().Bandwidth
		}
	}
	inner, err := fed.New(g, w0, siloWeights, params)
	if err != nil {
		if mesh != nil {
			mesh.Close()
		}
		return nil, err
	}
	f := &Federation{inner: inner, cfg: c, reg: reg, mesh: mesh}
	f.initMetrics()
	if mesh != nil {
		f.initMeshMetrics()
	}
	if c.PreprocessPool > 0 {
		f.pool = mpc.NewPool(len(siloWeights), c.PreprocessPool, c.PreprocessWorkers, c.Seed^0x5f3759df)
		if err := inner.Engine().AttachPool(f.pool); err != nil {
			f.pool.Close()
			return nil, err
		}
		pool := f.pool
		reg.CounterFunc("fedroad_prepool_produced_total", "correlated-randomness tuple sets generated by the preprocessing pool", nil,
			func() float64 { return float64(pool.Stats().Produced) })
		reg.CounterFunc("fedroad_prepool_hits_total", "comparisons served from the preprocessing pool", nil,
			func() float64 { return float64(pool.Stats().Hits) })
		reg.CounterFunc("fedroad_prepool_misses_total", "comparisons that fell back to on-demand randomness generation", nil,
			func() float64 { return float64(pool.Stats().Misses) })
		reg.GaugeFunc("fedroad_prepool_buffered", "tuple sets currently ready in the preprocessing pool", nil,
			func() float64 { return float64(pool.Stats().Buffered) })
	}
	return f, nil
}

// Metrics returns the federation's metrics registry. The library pre-wires
// MPC cost counters (Fed-SAC compares, rounds, bytes, retries, poisonings,
// engine forks), per-query latency histograms with per-phase timing
// breakdowns, and preprocessing-pool activity; callers may register their
// own metrics (an HTTP layer, a session pool) into the same registry and
// expose everything with one WriteText call.
func (f *Federation) Metrics() *metrics.Registry { return f.reg }

// initMetrics pre-creates the per-query-kind instrument bundles and static
// topology gauges.
func (f *Federation) initMetrics() {
	f.qm = make(map[string]*queryMetricSet)
	for _, kind := range []string{"spsp", "sssp"} {
		l := metrics.Labels{"kind": kind}
		f.qm[kind] = &queryMetricSet{
			total:      f.reg.Counter("fedroad_queries_total", "queries started, by kind (spsp = shortest path, sssp = kNN)", l),
			errors:     f.reg.Counter("fedroad_query_errors_total", "queries that returned an error, by kind", l),
			latency:    f.reg.Histogram("fedroad_query_seconds", "local query wall time (excludes simulated network time unless RealNetworkDelay is on)", nil, l),
			settled:    f.reg.Counter("fedroad_query_settled_vertices_total", "vertices settled by search loops", l),
			heuristics: f.reg.Counter("fedroad_query_heuristic_evals_total", "federated lower-bound (A* potential) evaluations", l),
			phaseQueue: f.reg.Counter("fedroad_query_phase_seconds_total", "wall time by search phase", metrics.Labels{"kind": kind, "phase": "queue"}),
			phaseSAC:   f.reg.Counter("fedroad_query_phase_seconds_total", "wall time by search phase", metrics.Labels{"kind": kind, "phase": "sac_wait"}),
			phaseRelax: f.reg.Counter("fedroad_query_phase_seconds_total", "wall time by search phase", metrics.Labels{"kind": kind, "phase": "relax"}),
		}
	}
	f.bm = &buildMetricSet{
		builds:           f.reg.Counter("fedroad_index_builds_total", "shortcut-index builds that completed and were swapped in", nil),
		conflicts:        f.reg.Counter("fedroad_index_build_conflicts_total", "index builds discarded because traffic changed mid-build", nil),
		seconds:          f.reg.Histogram("fedroad_index_build_seconds", "wall time of completed index builds", nil, nil),
		rounds:           f.reg.Counter("fedroad_index_build_contraction_rounds_total", "independent-set contraction rounds executed by index builds", nil),
		roundsSaved:      f.reg.Counter("fedroad_index_build_mpc_rounds_saved_total", "MPC communication rounds avoided by batched Fed-SAC decisions during builds", nil),
		phaseOrdering:    f.reg.Counter("fedroad_index_build_phase_seconds_total", "index-build wall time by phase", metrics.Labels{"phase": "ordering"}),
		phaseContraction: f.reg.Counter("fedroad_index_build_phase_seconds_total", "index-build wall time by phase", metrics.Labels{"phase": "contraction"}),
		customizes:       f.reg.Counter("fedroad_index_customizes_total", "weight-customization passes that completed and were swapped in", nil),
		custConflicts:    f.reg.Counter("fedroad_index_customize_conflicts_total", "customization passes discarded because traffic changed mid-pass", nil),
		custSeconds:      f.reg.Histogram("fedroad_index_customize_seconds", "wall time of completed weight-customization passes", nil, nil),
		custRounds:       f.reg.Counter("fedroad_index_customize_mpc_rounds_total", "MPC communication rounds spent by weight-customization passes", nil),
	}
	bm := f.bm
	f.reg.GaugeFunc("fedroad_index_build_in_progress", "off-lock index builds currently running", nil,
		func() float64 { return float64(f.building.Load()) })
	f.reg.GaugeFunc("fedroad_index_build_parallelism", "average vertices contracted per round in the last completed build", nil,
		func() float64 { return math.Float64frombits(bm.lastAvgWidth.Load()) })
	g := f.inner.Graph()
	f.reg.GaugeFunc("fedroad_graph_vertices", "vertices in the shared road network", nil,
		func() float64 { return float64(g.NumVertices()) })
	f.reg.GaugeFunc("fedroad_graph_arcs", "arcs in the shared road network", nil,
		func() float64 { return float64(g.NumArcs()) })
	f.reg.GaugeFunc("fedroad_silos", "data silos in the federation", nil,
		func() float64 { return float64(f.inner.P()) })
}

// recordQuery folds one query's outcome into the registry. Zero-cost when
// the federation was built without a registry (tests constructing the struct
// directly).
func (f *Federation) recordQuery(kind string, stats Stats, err error) {
	m := f.qm[kind]
	if m == nil {
		return
	}
	m.total.Inc()
	if err != nil {
		m.errors.Inc()
		return
	}
	m.latency.Observe(stats.WallTime.Seconds())
	m.settled.Add(float64(stats.SettledVertices))
	m.heuristics.Add(float64(stats.HeuristicEvals))
	m.phaseQueue.Add(stats.Phases.Queue.Seconds())
	m.phaseSAC.Add(stats.Phases.SACWait.Seconds())
	m.phaseRelax.Add(stats.Phases.Relax.Seconds())
}

// Close releases background resources (the preprocessing pool's workers and
// the mesh transport's sockets and heartbeat/redial goroutines). Without a
// mesh the federation remains queryable afterwards; with one, in-flight and
// future protocol-mode queries fail with typed errors.
func (f *Federation) Close() {
	if f.pool != nil {
		f.pool.Close()
	}
	if f.mesh != nil {
		f.mesh.Close()
	}
}

// initMeshMetrics mirrors the mesh transport's counters into the registry.
// All callbacks read atomics only — no lock is shared with the data path or
// with f.mu.
func (f *Federation) initMeshMetrics() {
	mesh := f.mesh
	sum := func(pick func(transport.MeshStats) int64) float64 {
		var t int64
		for _, st := range mesh.Stats() {
			t += pick(st)
		}
		return float64(t)
	}
	f.reg.GaugeFunc("fedroad_mesh_links_up", "live physical inter-silo links (all endpoints)", nil,
		func() float64 { return sum(func(st transport.MeshStats) int64 { return int64(st.LinksUp) }) })
	f.reg.CounterFunc("fedroad_mesh_reconnects_total", "automatic inter-silo link re-establishments", nil,
		func() float64 { return sum(func(st transport.MeshStats) int64 { return st.Reconnects }) })
	f.reg.CounterFunc("fedroad_mesh_heartbeat_misses_total", "heartbeat deadline expiries that declared a link dead", nil,
		func() float64 { return sum(func(st transport.MeshStats) int64 { return st.HeartbeatMisses }) })
	f.reg.CounterFunc("fedroad_mesh_bytes_sent_total", "bytes sent over inter-silo mesh links", nil,
		func() float64 { return sum(func(st transport.MeshStats) int64 { return st.BytesSent }) })
	f.reg.CounterFunc("fedroad_mesh_messages_sent_total", "frames sent over inter-silo mesh links", nil,
		func() float64 { return sum(func(st transport.MeshStats) int64 { return st.MsgsSent }) })
}

// MeshStats reports the mesh transport's per-endpoint link and traffic
// counters (one entry per silo endpoint), or nil when the federation runs
// on the in-process transport (Config.MeshTCP unset).
func (f *Federation) MeshStats() []MeshStats {
	if f.mesh == nil {
		return nil
	}
	return f.mesh.Stats()
}

// BreakMeshLink force-closes the physical link between two silo endpoints
// (chaos hook: a mid-round disconnect). The mesh redials it automatically;
// queries in flight on the link fail with typed errors. No-op without a
// mesh.
func (f *Federation) BreakMeshLink(a, b int) {
	if f.mesh == nil {
		return
	}
	f.mesh.Mesh(a).BreakLink(b)
	f.mesh.Mesh(b).BreakLink(a)
}

// HasPool reports whether a preprocessing pool is configured — callers use it
// to distinguish "pool empty" (degraded, queries pay the offline phase
// online) from "no pool at all" (PoolStats is all zeros either way).
func (f *Federation) HasPool() bool { return f.pool != nil }

// PoolStats reports preprocessing-pool activity; the zero value when no pool
// is configured.
func (f *Federation) PoolStats() mpc.PoolStats {
	if f.pool == nil {
		return mpc.PoolStats{}
	}
	return f.pool.Stats()
}

// Graph returns the shared topology.
func (f *Federation) Graph() *Graph { return f.inner.Graph() }

// TrafficVersion returns the traffic version: a counter of silo-weight
// mutations (SetTraffic, non-empty ApplyTraffic, LoadSavedIndex/RestoreState).
// Serving tiers fold it into cache keys — a traffic update bumps the version,
// which makes every older cache entry unreachable without any explicit
// invalidation. The versioned query methods (Session.ShortestPathAt,
// Session.NearestNeighborsAt) echo the version their result was computed at.
func (f *Federation) TrafficVersion() uint64 {
	f.mu.RLock()
	defer f.mu.RUnlock()
	return f.trafficVer
}

// Silos returns the number of data silos.
func (f *Federation) Silos() int { return f.inner.P() }

// IndexParams tunes federated index construction: the public ordering
// heuristic (OrderEdgeDiff or OrderDegree), the witness-search cap, the
// contraction worker pool (Workers; 0 = GOMAXPROCS — the built index is
// identical for every worker count), batching of Fed-SAC decisions (NoBatch
// disables it, for diagnostics) and the off-lock conflict policy
// (RebuildOnConflict retries a build whose weight snapshot a concurrent
// traffic update invalidated). The zero value gives the paper's setup.
type IndexParams = ch.Params

// Ordering heuristics for IndexParams.
const (
	OrderEdgeDiff = ch.OrderEdgeDiff
	OrderDegree   = ch.OrderDegree
)

// BuildIndex constructs the federated shortcut index (§IV) with default
// parameters. Queries use it automatically once built.
func (f *Federation) BuildIndex() error {
	return f.BuildIndexWith(IndexParams{})
}

// BuildIndexWith constructs the index under explicit framework parameters,
// without blocking queries or traffic updates while it runs: the silo
// weights are snapshotted under a read lock, the whole ordering +
// contraction effort happens off-lock on forked MPC engines, and the
// finished index is swapped in under a brief write lock. No query ever
// observes a half-built index — searches use either the previous index or
// the new one.
//
// If a traffic update lands between snapshot and swap, the stale build is
// discarded: with prm.RebuildOnConflict > 0 the build restarts from fresh
// weights up to that many times, otherwise (or when retries are exhausted)
// ErrBuildConflict is returned and any previously built index stays in
// service.
func (f *Federation) BuildIndexWith(prm IndexParams) error {
	if prm.CustomizeOnly {
		return f.CustomizeIndexWith(prm)
	}
	f.building.Add(1)
	defer f.building.Add(-1)
	for attempt := 0; ; attempt++ {
		f.mu.RLock()
		ver := f.trafficVer
		b, err := ch.NewBuilder(f.inner, prm)
		f.mu.RUnlock()
		if err != nil {
			return err
		}
		idx, err := b.Run() // off-lock: queries and updates proceed
		if err != nil {
			return err
		}
		f.mu.Lock()
		if f.trafficVer == ver {
			f.index = idx
			f.mu.Unlock()
			f.recordBuild(idx.BuildStatistics())
			return nil
		}
		f.mu.Unlock()
		if f.bm != nil {
			f.bm.conflicts.Inc()
		}
		if attempt >= prm.RebuildOnConflict {
			return fmt.Errorf("%w (after %d attempt(s))", ErrBuildConflict, attempt+1)
		}
	}
}

// recordBuild folds a completed build's statistics into the registry
// (nil-safe for tests constructing the struct directly).
func (f *Federation) recordBuild(st ch.BuildStats) {
	if f.bm == nil {
		return
	}
	f.bm.builds.Inc()
	f.bm.seconds.Observe(st.WallTime.Seconds())
	f.bm.rounds.Add(float64(st.Rounds))
	f.bm.roundsSaved.Add(float64(st.RoundsSaved))
	f.bm.phaseOrdering.Add(st.OrderingTime.Seconds())
	f.bm.phaseContraction.Add(st.ContractionTime.Seconds())
	f.bm.lastAvgWidth.Store(math.Float64bits(st.AvgRoundWidth))
}

// BuildSkeleton constructs the federation's topology skeleton: the vertex
// order plus the full shortcut structure, derived once per graph from public
// information only (topology and static weights — no silo weights, no MPC).
// The skeleton is metric-independent; CustomizeIndex derives a queryable
// index from it for the CURRENT silo weights in a fraction of the MPC rounds
// a full BuildIndexWith costs. Idempotent: a second call keeps the existing
// skeleton (the topology is immutable, so it never goes stale).
func (f *Federation) BuildSkeleton(prm ...IndexParams) error {
	var p IndexParams
	if len(prm) > 1 {
		return fmt.Errorf("fedroad: at most one IndexParams")
	}
	if len(prm) == 1 {
		p = prm[0]
	}
	_, err := f.ensureSkeleton(p)
	return err
}

// ensureSkeleton returns the federation's skeleton, building it on first
// demand. The build runs entirely off-lock — it reads only the immutable
// topology and static weights — with double-checked locking so concurrent
// callers never install two skeletons.
func (f *Federation) ensureSkeleton(prm IndexParams) (*ch.Skeleton, error) {
	f.mu.RLock()
	sk := f.skel
	f.mu.RUnlock()
	if sk != nil {
		return sk, nil
	}
	built, err := ch.BuildSkeleton(f.inner.Graph(), f.inner.StaticWeights(), prm)
	if err != nil {
		return nil, err
	}
	f.mu.Lock()
	if f.skel == nil {
		f.skel = built
	}
	sk = f.skel
	f.mu.Unlock()
	return sk, nil
}

// HasSkeleton reports whether a topology skeleton is available, i.e. whether
// CustomizeIndex can run (and ApplyTraffic's RebuildIndex option will prefer
// customization over a full rebuild).
func (f *Federation) HasSkeleton() bool {
	f.mu.RLock()
	defer f.mu.RUnlock()
	return f.skel != nil
}

// SkeletonStats reports the skeleton's shortcut count and (plaintext)
// construction cost; the zero value when none has been built.
func (f *Federation) SkeletonStats() ch.SkeletonStats {
	f.mu.RLock()
	defer f.mu.RUnlock()
	if f.skel == nil {
		return ch.SkeletonStats{}
	}
	return f.skel.Stats()
}

// SaveSkeleton persists the topology skeleton (the FRSK format). The skeleton
// is weight-free public structure — it needs no per-silo shards — and also
// rides inside SaveState snapshots and WriteIndex bundles of customized
// indexes automatically; this method exists for deployments that want to ship
// the skeleton separately from any index.
func (f *Federation) SaveSkeleton(w io.Writer) error {
	f.mu.RLock()
	sk := f.skel
	f.mu.RUnlock()
	if sk == nil {
		return fmt.Errorf("fedroad: no skeleton built")
	}
	return sk.Write(w)
}

// LoadSkeleton restores a persisted topology skeleton, validating it against
// the federation's graph, so a restart can go straight to CustomizeIndex
// without re-running contraction.
func (f *Federation) LoadSkeleton(r io.Reader) error {
	sk, err := ch.ReadSkeleton(f.inner.Graph(), r)
	if err != nil {
		return err
	}
	f.mu.Lock()
	f.skel = sk
	f.mu.Unlock()
	return nil
}

// CustomizeIndex derives a fresh queryable index from the topology skeleton
// and the CURRENT silo weights with default parameters, building the
// skeleton first if none exists. See CustomizeIndexWith.
func (f *Federation) CustomizeIndex() error {
	return f.CustomizeIndexWith(IndexParams{})
}

// CustomizeIndexWith runs the weight-customization phase: a bottom-up sweep
// over the fixed skeleton that re-derives every shortcut's private partial
// weights with batched Fed-SAC group tournaments — one batch per hierarchy
// level — instead of re-running ordering, witness searches and contraction.
// The resulting index answers queries with byte-identical distances to a
// from-scratch BuildIndexWith at the same traffic version, for a small
// fraction of the MPC rounds.
//
// Like BuildIndexWith it never blocks queries or traffic updates: the sweep
// runs off-lock against a weight snapshot and the finished index swaps in
// under a brief write lock, with the same ErrBuildConflict /
// RebuildOnConflict semantics when traffic moves mid-pass.
func (f *Federation) CustomizeIndexWith(prm IndexParams) error {
	sk, err := f.ensureSkeleton(prm)
	if err != nil {
		return err
	}
	f.building.Add(1)
	defer f.building.Add(-1)
	for attempt := 0; ; attempt++ {
		f.mu.RLock()
		ver := f.trafficVer
		c, err := ch.NewCustomizer(f.inner, sk, prm)
		f.mu.RUnlock()
		if err != nil {
			return err
		}
		idx, err := c.Run() // off-lock: queries and updates proceed
		if err != nil {
			return err
		}
		f.mu.Lock()
		if f.trafficVer == ver {
			f.index = idx
			f.mu.Unlock()
			f.recordCustomize(idx.BuildStatistics())
			return nil
		}
		f.mu.Unlock()
		if f.bm != nil {
			f.bm.custConflicts.Inc()
		}
		if attempt >= prm.RebuildOnConflict {
			return fmt.Errorf("%w (after %d attempt(s))", ErrBuildConflict, attempt+1)
		}
	}
}

// recordCustomize folds a completed customization pass's statistics into the
// registry and the /stats atomics (nil-safe for tests constructing the
// struct directly).
func (f *Federation) recordCustomize(st ch.BuildStats) {
	f.customizes.Add(1)
	f.lastCustMs.Store(st.WallTime.Milliseconds())
	f.lastCustRounds.Store(st.SAC.Rounds)
	if f.bm == nil {
		return
	}
	f.bm.customizes.Inc()
	f.bm.custSeconds.Observe(st.WallTime.Seconds())
	f.bm.custRounds.Add(float64(st.SAC.Rounds))
}

// CustomizeInfo summarizes the customization pipeline for serving tiers'
// status endpoints. Reads atomics only — safe to call from metric callbacks.
type CustomizeInfo struct {
	// Customizes counts completed customization passes swapped in.
	Customizes int64
	// LastWallMs is the wall time of the most recent pass, in milliseconds.
	LastWallMs int64
	// LastMPCRounds is the Fed-SAC round count of the most recent pass.
	LastMPCRounds int64
}

// CustomizeInfo reports the customization counters (zero values before the
// first CustomizeIndex).
func (f *Federation) CustomizeInfo() CustomizeInfo {
	return CustomizeInfo{
		Customizes:    f.customizes.Load(),
		LastWallMs:    f.lastCustMs.Load(),
		LastMPCRounds: f.lastCustRounds.Load(),
	}
}

// HasIndex reports whether a shortcut index is currently serving queries.
// During an off-lock rebuild it keeps reporting the previous index (true) —
// or false if none was ever built — until the new index is swapped in; use
// IndexBuilding to observe an in-flight build.
func (f *Federation) HasIndex() bool {
	f.mu.RLock()
	defer f.mu.RUnlock()
	return f.index != nil
}

// IndexBuilding reports whether an off-lock index build is in flight.
// Queries keep running against the previous index (if any) while this is
// true.
func (f *Federation) IndexBuilding() bool { return f.building.Load() > 0 }

// IndexStats reports the shortcut count and construction cost of the index
// currently serving queries. During an off-lock rebuild these are the
// PREVIOUS index's statistics, not the in-flight build's; zero values mean
// no index has ever finished building (check IndexBuilding to distinguish
// "never built" from "first build still running").
func (f *Federation) IndexStats() ch.BuildStats {
	f.mu.RLock()
	defer f.mu.RUnlock()
	if f.index == nil {
		return ch.BuildStats{}
	}
	return f.index.BuildStatistics()
}

// SaveIndex persists the built index along the privacy boundary: the shared
// weight-free structure goes to public, and silo p's private partial weight
// shard goes to shards[p]. In a deployment each silo stores only its own
// shard.
func (f *Federation) SaveIndex(public io.Writer, shards []io.Writer) error {
	f.mu.RLock()
	defer f.mu.RUnlock()
	if f.index == nil {
		return fmt.Errorf("fedroad: no index built")
	}
	if len(shards) != f.Silos() {
		return fmt.Errorf("fedroad: %d shards for %d silos", len(shards), f.Silos())
	}
	if err := f.index.WritePublic(public); err != nil {
		return err
	}
	for p, w := range shards {
		if err := f.index.WriteSiloWeights(p, w); err != nil {
			return err
		}
	}
	return nil
}

// LoadSavedIndex restores a previously saved index instead of rebuilding.
// It also invalidates any build in flight (the loaded index is the caller's
// explicit choice; a concurrently finishing build must not clobber it).
func (f *Federation) LoadSavedIndex(public io.Reader, shards []io.Reader) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	idx, err := ch.LoadIndex(f.inner, public, shards)
	if err != nil {
		return err
	}
	f.index = idx
	f.trafficVer++
	return nil
}

// PrecomputeLandmarks prepares the landmark matrices required by the FedALT
// and FedALTMax estimators (FedAMPS needs no precomputation). Like
// BuildIndexWith it works off-lock: silo weights are snapshotted under a
// read lock, the per-landmark Dijkstras run unlocked and in parallel, and
// the matrices swap in under a brief write lock. Traffic updates landing
// mid-computation only cost bound tightness, never correctness — landmark
// bounds always go stale under traffic drift (the pre-existing semantics of
// FedALT/FedALTMax); re-run PrecomputeLandmarks to tighten them.
func (f *Federation) PrecomputeLandmarks() {
	lm := f.computeLandmarks()
	f.mu.Lock()
	f.lm = lm
	f.mu.Unlock()
}

// computeLandmarks snapshots under the read lock and computes unlocked.
func (f *Federation) computeLandmarks() *lb.Landmarks {
	f.mu.RLock()
	sets := f.inner.SnapshotWeights()
	f.mu.RUnlock()
	return f.landmarksFrom(sets)
}

// landmarksFrom clamps the configured landmark count and runs the parallel
// precomputation against an explicit weight snapshot.
func (f *Federation) landmarksFrom(sets []Weights) *lb.Landmarks {
	g := f.inner.Graph()
	w0 := f.inner.StaticWeights()
	k := f.cfg.Landmarks
	if k > g.NumVertices()/2 {
		k = g.NumVertices() / 2
	}
	if k < 1 {
		k = 1
	}
	return lb.Precompute(g, w0, sets, lb.SelectLandmarks(g, w0, k, f.cfg.Seed), 0)
}

// ensureLandmarks precomputes the landmark matrices once, on first demand by
// a landmark-based estimator, with double-checked locking so concurrent
// queries neither race nor precompute twice.
func (f *Federation) ensureLandmarks() {
	f.mu.RLock()
	have := f.lm != nil
	f.mu.RUnlock()
	if have {
		return
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.lm == nil {
		f.lm = f.landmarksFrom(f.inner.SnapshotWeights())
	}
}

// MaxTravelMs bounds every travel-time observation (exclusive); see
// graph.MaxWeight and the fixed-point discipline in DESIGN.md.
const MaxTravelMs = int64(graph.MaxWeight)

// SetTraffic updates silo p's private weight of one arc (a real-time traffic
// change) under the write lock. Call UpdateIndex afterwards — or use
// ApplyTraffic to do both atomically — so the shortcut index stays
// consistent with the silo weights.
func (f *Federation) SetTraffic(silo int, a Arc, travelTimeMs int64) error {
	if err := f.validateTraffic(silo, a, travelTimeMs); err != nil {
		return err
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	f.inner.Silo(silo).SetWeight(a, travelTimeMs)
	f.trafficVer++
	return nil
}

func (f *Federation) validateTraffic(silo int, a Arc, travelTimeMs int64) error {
	if silo < 0 || silo >= f.Silos() {
		return fmt.Errorf("%w: silo %d out of range [0,%d)", ErrInvalidUpdate, silo, f.Silos())
	}
	if int(a) < 0 || int(a) >= f.Graph().NumArcs() {
		return fmt.Errorf("%w: arc %d out of range [0,%d)", ErrInvalidUpdate, a, f.Graph().NumArcs())
	}
	if travelTimeMs <= 0 || travelTimeMs >= MaxTravelMs {
		return fmt.Errorf("%w: travel time %dms outside (0,%d)", ErrInvalidUpdate, travelTimeMs, MaxTravelMs)
	}
	return nil
}

// TrafficUpdate is one silo's new travel-time observation for one arc.
type TrafficUpdate struct {
	Silo     int
	Arc      Arc
	TravelMs int64
}

// ApplyOption tunes how ApplyTraffic refreshes the shortcut index after the
// batch lands.
type ApplyOption int

const (
	// RebuildIndex replaces the in-place incremental index refresh with a
	// fresh off-lock derivation after the batch is applied: a
	// weight-customization pass over the topology skeleton when one exists
	// (no ordering, no witness searches — a fraction of the MPC rounds), or
	// a full federated rebuild otherwise. Queries keep using the previous
	// index until the replacement swaps in; further traffic landing mid-pass
	// triggers a bounded number of retries from fresh weights before
	// ErrBuildConflict is returned.
	RebuildIndex ApplyOption = iota
)

// ApplyTraffic validates and applies a batch of traffic updates and, when
// the shortcut index is built, refreshes it — by default inside one exclusive
// critical section (the federated partial update), so no query ever observes
// silo weights that disagree with the index. Invalid updates are rejected up
// front; nothing is applied.
//
// With the RebuildIndex option the refresh instead derives a whole fresh
// index off-lock — preferring weight customization when a skeleton exists —
// and the returned UpdateStats are zero (the work is a (re)build, not a
// partial update).
func (f *Federation) ApplyTraffic(updates []TrafficUpdate, opts ...ApplyOption) (ch.UpdateStats, error) {
	rebuild := false
	for _, o := range opts {
		if o == RebuildIndex {
			rebuild = true
		}
	}
	for _, u := range updates {
		if err := f.validateTraffic(u.Silo, u.Arc, u.TravelMs); err != nil {
			return ch.UpdateStats{}, err
		}
	}
	f.mu.Lock()
	arcSet := make(map[Arc]bool, len(updates))
	for _, u := range updates {
		f.inner.Silo(u.Silo).SetWeight(u.Arc, u.TravelMs)
		arcSet[u.Arc] = true
	}
	if len(updates) > 0 {
		f.trafficVer++
	}
	if rebuild {
		hasSkel := f.skel != nil
		f.mu.Unlock()
		prm := IndexParams{RebuildOnConflict: 2}
		if hasSkel {
			return ch.UpdateStats{}, f.CustomizeIndexWith(prm)
		}
		return ch.UpdateStats{}, f.BuildIndexWith(prm)
	}
	defer f.mu.Unlock()
	if f.index == nil {
		return ch.UpdateStats{}, nil
	}
	arcs := make([]Arc, 0, len(arcSet))
	for a := range arcSet {
		arcs = append(arcs, a)
	}
	return f.index.Update(arcs)
}

// UpdateIndex runs the federated partial index update for the changed arcs
// under the write lock.
func (f *Federation) UpdateIndex(changed []Arc) (ch.UpdateStats, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.index == nil {
		return ch.UpdateStats{}, fmt.Errorf("fedroad: no index built")
	}
	return f.index.Update(changed)
}

// SetRealNetworkDelay toggles real-time simulation of the modeled network
// on the federation's transport (protocol mode). Sessions created afterwards
// inherit the setting; existing sessions keep theirs. Useful to build the
// index at full speed and then serve queries under realistic latency.
func (f *Federation) SetRealNetworkDelay(on bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.inner.Engine().SetRealDelay(on)
}

// QueryOptions tunes a single query. The zero value uses the paper's best
// stack: the shortcut index when built, Fed-AMPS pruning and the TM-tree.
type QueryOptions struct {
	Estimator Estimator
	Queue     QueueKind
	// NoIndex forces a flat search even when the index is built (the
	// paper's Naive-Dijk baseline).
	NoIndex bool
	// BatchedMPC batches the TM-tree tournament-build comparisons into
	// single protocol instances, paying communication rounds once per
	// expansion level instead of once per comparison (TM-tree queue only).
	BatchedMPC bool
}

// Route is a query answer: the joint shortest path and its per-silo partial
// costs. The joint cost is the mean of the partials; only the path itself
// and comparison outcomes ever cross silo boundaries.
type Route struct {
	Path     []Vertex
	Partials []int64
	Found    bool
}

// Stats re-exports per-query cost counters.
type Stats = core.QueryStats

// SACStats re-exports the MPC engine's accumulated cost counters (used by
// Session.Stats).
type SACStats = mpc.Stats

// ShortestPath answers a federated single-pair shortest-path query with the
// default (or given) options. Safe for concurrent use: each call runs in an
// ephemeral query session (see Session) under the federation's read lock.
// Callers issuing many queries should hold a Session to reuse its MPC
// engine fork.
func (f *Federation) ShortestPath(s, t Vertex, opts ...QueryOptions) (Route, Stats, error) {
	sess := f.Session()
	defer sess.Close()
	return sess.ShortestPath(s, t, opts...)
}

// NearestNeighbors answers a federated kNN query (Fed-SSSP, Alg. 1): the k
// nearest vertices to s on the joint road network, nearest first (the source
// itself is the first entry). Safe for concurrent use (see ShortestPath).
func (f *Federation) NearestNeighbors(s Vertex, k int, opts ...QueryOptions) ([]Route, Stats, error) {
	sess := f.Session()
	defer sess.Close()
	return sess.NearestNeighbors(s, k, opts...)
}

// JointCost sums a route's per-silo partials — the joint cost scaled by the
// silo count. This is an evaluation helper: computing it in a real
// deployment would reveal the joint cost, which FedRoad's protocols never
// do.
func JointCost(r Route) int64 {
	var s int64
	for _, p := range r.Partials {
		s += p
	}
	return s
}
