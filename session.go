package fedroad

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/fed"
	"repro/internal/lb"
	"repro/internal/pq"
)

// Session is a concurrent query context over a federation. It snapshots
// nothing and copies nothing heavyweight: the shared immutable state
// (topology, public static weights, shortcut index, landmark matrices) is
// referenced, while everything mutable per query — the MPC engine with its
// transport lanes, dealer randomness stream and cost counters — is owned by
// the session, forked from the federation's root engine. Queries on
// distinct sessions therefore run fully in parallel; the federation's
// reader/writer lock only serializes them against traffic updates and the
// brief index/landmark swap at the end of an off-lock rebuild (the heavy
// construction work runs without the lock, so queries keep flowing during
// it — see Federation.BuildIndexWith).
//
// A Session issues one query at a time (it is not itself safe for
// concurrent use); open one session per worker goroutine.
type Session struct {
	f     *Federation
	inner *fed.Federation // engine-owning fork of the root federation
}

// Session opens a query session. Sessions are cheap (no protocol
// calibration is repeated); Close releases their transport endpoints.
func (f *Federation) Session() *Session {
	f.mu.RLock()
	defer f.mu.RUnlock()
	return &Session{f: f, inner: f.inner.Fork()}
}

// Federation returns the federation the session queries.
func (s *Session) Federation() *Federation { return s.f }

// Stats returns the session's accumulated Fed-SAC cost counters across all
// its queries.
func (s *Session) Stats() SACStats { return s.inner.Engine().Stats() }

// Close releases the session's in-process transport endpoints. Optional —
// an unclosed session is garbage-collected — but good hygiene for
// long-lived servers.
func (s *Session) Close() { s.inner.Engine().Close() }

// Poisoned reports whether the session's MPC engine was disabled by an
// unrecoverable transport failure. A poisoned session fails every further
// query fast (wrapping ErrSessionPoisoned); callers must Close it and open a
// fresh session — the federation itself remains healthy.
func (s *Session) Poisoned() bool { return s.inner.Engine().Poisoned() }

// oneOpt validates the variadic options idiom shared by the query methods.
func oneOpt(opts []QueryOptions) (QueryOptions, error) {
	switch len(opts) {
	case 0:
		return QueryOptions{}, nil
	case 1:
		return opts[0], nil
	default:
		return QueryOptions{}, fmt.Errorf("%w: at most one QueryOptions", ErrInvalidQuery)
	}
}

// validateOptions classifies request-level option mistakes up front so they
// surface as ErrInvalidQuery (4xx material) instead of engine-construction
// errors indistinguishable from internal failures. knn marks the Fed-SSSP
// path, which runs on the flat network toward no fixed target: estimator
// options cannot apply there and are rejected rather than silently dropped.
func validateOptions(opt QueryOptions, knn bool) error {
	switch opt.Queue {
	case "", Heap, LeftistHeap, TMTree:
	default:
		return fmt.Errorf("%w: unknown queue %q", ErrInvalidQuery, opt.Queue)
	}
	switch opt.Estimator {
	case "", NoEstimator, FedALT, FedALTMax, FedAMPS:
	default:
		return fmt.Errorf("%w: unknown estimator %q", ErrInvalidQuery, opt.Estimator)
	}
	if knn && opt.Estimator != "" && opt.Estimator != NoEstimator {
		return fmt.Errorf("%w: estimator %q does not apply to kNN (Fed-SSSP has no fixed target to estimate toward)",
			ErrInvalidQuery, opt.Estimator)
	}
	if opt.BatchedMPC && opt.Queue != "" && opt.Queue != TMTree {
		return fmt.Errorf("%w: BatchedMPC requires the tm-tree queue, got %q", ErrInvalidQuery, opt.Queue)
	}
	return nil
}

// checkVertex range-checks a query endpoint.
func (s *Session) checkVertex(name string, v Vertex) error {
	if n := s.f.Graph().NumVertices(); int(v) < 0 || int(v) >= n {
		return fmt.Errorf("%w: %s vertex %d out of range [0,%d)", ErrInvalidQuery, name, v, n)
	}
	return nil
}

// ShortestPath answers a federated single-pair shortest-path query on this
// session, under the federation's read lock.
func (s *Session) ShortestPath(src, dst Vertex, opts ...QueryOptions) (Route, Stats, error) {
	route, stats, _, err := s.ShortestPathAt(src, dst, opts...)
	return route, stats, err
}

// ShortestPathAt is ShortestPath plus the traffic version the answer was
// computed at, captured under the same read lock as the search itself — so
// the result is exact for precisely that version. Serving tiers echo it to
// clients and key caches by it.
func (s *Session) ShortestPathAt(src, dst Vertex, opts ...QueryOptions) (Route, Stats, uint64, error) {
	opt, err := oneOpt(opts)
	if err == nil {
		err = validateOptions(opt, false)
	}
	if err == nil {
		err = s.checkVertex("source", src)
	}
	if err == nil {
		err = s.checkVertex("target", dst)
	}
	if err != nil {
		s.f.recordQuery("spsp", Stats{}, err)
		return Route{}, Stats{}, 0, err
	}
	if opt.Estimator == FedALT || opt.Estimator == FedALTMax {
		s.f.ensureLandmarks()
	}
	s.f.mu.RLock()
	defer s.f.mu.RUnlock()
	ver := s.f.trafficVer
	route, stats, err := s.shortestPathLocked(src, dst, opt)
	s.f.recordQuery("spsp", stats, err)
	return route, stats, ver, err
}

// shortestPathLocked runs the query body; the caller holds f.mu (read).
func (s *Session) shortestPathLocked(src, dst Vertex, opt QueryOptions) (Route, Stats, error) {
	e, err := s.engineLocked(opt)
	if err != nil {
		return Route{}, Stats{}, err
	}
	res, stats, err := e.SPSP(src, dst)
	if err != nil {
		return Route{}, Stats{}, fmt.Errorf("fedroad: shortest path %d->%d: %w", src, dst, err)
	}
	return Route{Path: res.Path, Partials: res.Partial, Found: res.Found}, stats, nil
}

// NearestNeighbors answers a federated kNN query on this session, under the
// federation's read lock. kNN runs Fed-SSSP on the flat network: the queue
// and BatchedMPC options apply; estimator options are rejected (there is no
// fixed target to estimate toward) and NoIndex is implied.
func (s *Session) NearestNeighbors(src Vertex, k int, opts ...QueryOptions) ([]Route, Stats, error) {
	routes, stats, _, err := s.NearestNeighborsAt(src, k, opts...)
	return routes, stats, err
}

// NearestNeighborsAt is NearestNeighbors plus the traffic version the answer
// was computed at, captured under the same read lock as the search (see
// ShortestPathAt).
func (s *Session) NearestNeighborsAt(src Vertex, k int, opts ...QueryOptions) ([]Route, Stats, uint64, error) {
	opt, err := oneOpt(opts)
	if err == nil {
		err = validateOptions(opt, true)
	}
	if err == nil {
		err = s.checkVertex("source", src)
	}
	if err == nil && k < 1 {
		err = fmt.Errorf("%w: k = %d must be positive", ErrInvalidQuery, k)
	}
	if err != nil {
		s.f.recordQuery("sssp", Stats{}, err)
		return nil, Stats{}, 0, err
	}
	s.f.mu.RLock()
	defer s.f.mu.RUnlock()
	ver := s.f.trafficVer
	routes, stats, err := s.nearestNeighborsLocked(src, k, opt)
	s.f.recordQuery("sssp", stats, err)
	return routes, stats, ver, err
}

// nearestNeighborsLocked runs the query body; the caller holds f.mu (read).
func (s *Session) nearestNeighborsLocked(src Vertex, k int, opt QueryOptions) ([]Route, Stats, error) {
	// SSSP runs on the flat network with no estimator (validateOptions has
	// already rejected estimator options); the queue choice and MPC batching
	// pass through.
	o := core.Options{BatchedMPC: opt.BatchedMPC}
	if opt.Queue == "" {
		o.Queue = pq.KindTMTree
	} else {
		o.Queue = pq.Kind(opt.Queue)
	}
	e, err := core.NewEngine(s.inner, o)
	if err != nil {
		return nil, Stats{}, err
	}
	results, stats, err := e.SSSP(src, k)
	if err != nil {
		return nil, Stats{}, fmt.Errorf("fedroad: %d-nearest from %d: %w", k, src, err)
	}
	routes := make([]Route, len(results))
	for i, r := range results {
		routes[i] = Route{Path: r.Path, Partials: r.Partial, Found: r.Found}
	}
	return routes, stats, nil
}

// engineLocked assembles the per-query search engine against the session's
// private MPC fork and the federation's shared read-locked structures.
func (s *Session) engineLocked(opt QueryOptions) (*core.Engine, error) {
	o := core.Options{}
	if opt.Queue == "" {
		o.Queue = pq.KindTMTree
	} else {
		o.Queue = pq.Kind(opt.Queue)
	}
	if opt.Estimator == "" {
		o.Estimator = lb.FedAMPS
	} else {
		o.Estimator = lb.Kind(opt.Estimator)
	}
	if o.Estimator == lb.FedALT || o.Estimator == lb.FedALTMax {
		o.Landmarks = s.f.lm
	}
	if !opt.NoIndex {
		o.Index = s.f.index
	}
	o.BatchedMPC = opt.BatchedMPC
	return core.NewEngine(s.inner, o)
}
