package fedroad

import (
	"fmt"
	"math/rand/v2"
	"sort"
	"testing"

	"repro/internal/graph"
)

// The differential oracle harness: every federated engine configuration must
// return the same joint cost as plaintext Dijkstra on the summed joint
// weights. The oracle sees all private weights at once — exactly what the
// protocols must never leak — so agreement with it is the end-to-end
// correctness statement for the whole stack (Fed-SAC, estimators, queues,
// batching, the shortcut index, and the parallel index build).

// oracleConfig is one point of the engine configuration lattice.
type oracleConfig struct {
	name string
	opt  QueryOptions
}

// spspConfigs enumerates every valid SPSP configuration: {index, no index} ×
// {no estimator, FedALT, FedALTMax, FedAMPS} × {heap, TM-tree} ×
// {unbatched, BatchedMPC} — minus the combinations validateOptions rejects
// (BatchedMPC requires the TM-tree).
func spspConfigs() []oracleConfig {
	var out []oracleConfig
	for _, noIndex := range []bool{false, true} {
		for _, est := range []Estimator{NoEstimator, FedALT, FedALTMax, FedAMPS} {
			for _, qb := range []struct {
				q QueueKind
				b bool
			}{{Heap, false}, {TMTree, false}, {TMTree, true}} {
				out = append(out, oracleConfig{
					name: fmt.Sprintf("noindex=%v/est=%s/queue=%s/batched=%v", noIndex, est, qb.q, qb.b),
					opt:  QueryOptions{Estimator: est, Queue: qb.q, NoIndex: noIndex, BatchedMPC: qb.b},
				})
			}
		}
	}
	return out
}

// knnConfigs enumerates every valid kNN configuration (estimators do not
// apply and the search is index-free by construction).
func knnConfigs() []oracleConfig {
	return []oracleConfig{
		{"queue=heap", QueryOptions{Queue: Heap}},
		{"queue=tm-tree", QueryOptions{Queue: TMTree}},
		{"queue=tm-tree/batched", QueryOptions{Queue: TMTree, BatchedMPC: true}},
	}
}

// checkAgainstOracle runs every federated configuration of the SPSP, SSSP
// and kNN paths against plaintext Dijkstra on the joint weights. The
// federation must already have its index built; landmark matrices are
// (re)computed here so they match the current weights.
func checkAgainstOracle(t *testing.T, f *Federation, joint Weights, queries [][2]Vertex) {
	t.Helper()
	g := f.Graph()
	f.PrecomputeLandmarks()

	for _, q := range queries {
		s, dst := q[0], q[1]
		want, _ := graph.DijkstraTo(g, joint, s, dst)
		for _, cfg := range spspConfigs() {
			route, _, err := f.ShortestPath(s, dst, cfg.opt)
			if err != nil {
				t.Fatalf("%s: ShortestPath(%d,%d): %v", cfg.name, s, dst, err)
			}
			if want >= graph.InfCost {
				if route.Found {
					t.Fatalf("%s: ShortestPath(%d,%d) found a route, oracle says unreachable", cfg.name, s, dst)
				}
				continue
			}
			if !route.Found {
				t.Fatalf("%s: ShortestPath(%d,%d) found nothing, oracle cost %d", cfg.name, s, dst, want)
			}
			if got := JointCost(route); got != want {
				t.Fatalf("%s: ShortestPath(%d,%d) joint cost %d, oracle %d", cfg.name, s, dst, got, want)
			}
			checkPathShape(t, g, route, s, dst, cfg.name)
		}
	}

	// kNN (the Fed-SSSP path): the k nearest joint distances must match the
	// oracle's k smallest, tie-safely — WHICH equal-cost vertex is k-th may
	// differ, the distance multiset may not.
	for _, q := range queries {
		s := q[0]
		res := graph.Dijkstra(g, joint, s)
		var oracleDists []int64
		for v := 0; v < g.NumVertices(); v++ {
			if res.Dist[v] < graph.InfCost {
				oracleDists = append(oracleDists, res.Dist[v])
			}
		}
		sort.Slice(oracleDists, func(i, j int) bool { return oracleDists[i] < oracleDists[j] })
		for _, k := range []int{1, 5, len(oracleDists)} { // k = all reachable ⇒ full SSSP
			if k > len(oracleDists) {
				continue
			}
			for _, cfg := range knnConfigs() {
				routes, _, err := f.NearestNeighbors(s, k, cfg.opt)
				if err != nil {
					t.Fatalf("kNN %s: NearestNeighbors(%d,%d): %v", cfg.name, s, k, err)
				}
				if len(routes) != k {
					t.Fatalf("kNN %s: got %d routes, want %d", cfg.name, len(routes), k)
				}
				prev := int64(-1)
				for i, r := range routes {
					c := JointCost(r)
					if c < prev {
						t.Fatalf("kNN %s: results not sorted: cost %d after %d", cfg.name, c, prev)
					}
					prev = c
					if len(r.Path) == 0 {
						t.Fatalf("kNN %s: route %d has empty path", cfg.name, i)
					}
					end := r.Path[len(r.Path)-1]
					if res.Dist[end] != c {
						t.Fatalf("kNN %s: route to %d costs %d, oracle distance %d", cfg.name, end, c, res.Dist[end])
					}
					if c != oracleDists[i] {
						t.Fatalf("kNN %s: %d-th nearest costs %d, oracle's %d-th smallest is %d",
							cfg.name, i, c, i, oracleDists[i])
					}
				}
			}
		}
	}
}

// checkPathShape verifies the returned vertex sequence is a real s→t walk in
// the topology.
func checkPathShape(t *testing.T, g *Graph, route Route, s, dst Vertex, name string) {
	t.Helper()
	if len(route.Path) == 0 || route.Path[0] != s || route.Path[len(route.Path)-1] != dst {
		t.Fatalf("%s: path %v does not run %d→%d", name, route.Path, s, dst)
	}
	for i := 0; i+1 < len(route.Path); i++ {
		if g.FindArc(route.Path[i], route.Path[i+1]) == graph.NoArc {
			t.Fatalf("%s: path hop %d→%d is not an arc", name, route.Path[i], route.Path[i+1])
		}
	}
}

// oracleFederation assembles a federation over the given topology with
// congestion-simulated silo weights, builds its index (parallel build), and
// returns the plaintext joint weight oracle.
func oracleFederation(t *testing.T, g *Graph, w0 Weights, seed uint64) (*Federation, Weights) {
	t.Helper()
	silos := SimulateCongestion(w0, 3, Moderate, seed)
	f, err := New(g, w0, silos, Config{Seed: seed, Landmarks: 8})
	if err != nil {
		t.Fatal(err)
	}
	if err := f.BuildIndex(); err != nil {
		t.Fatal(err)
	}
	joint := graph.JointWeights(silos)
	return f, joint
}

// oracleQueries picks deterministic query endpoints, including the
// degenerate s == t pair.
func oracleQueries(g *Graph, seed uint64, count int) [][2]Vertex {
	rng := rand.New(rand.NewPCG(seed, 0xfeed))
	n := g.NumVertices()
	qs := [][2]Vertex{{Vertex(int(seed) % n), Vertex(int(seed) % n)}} // s == t
	for len(qs) < count {
		qs = append(qs, [2]Vertex{Vertex(rng.IntN(n)), Vertex(rng.IntN(n))})
	}
	return qs
}

// TestOracleRoadNetwork drives the full configuration lattice on randomized
// road-like networks across seeds.
func TestOracleRoadNetwork(t *testing.T) {
	for seed := uint64(1); seed <= 5; seed++ {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			g, w0 := GenerateRoadNetwork(160, seed)
			f, joint := oracleFederation(t, g, w0, seed+100)
			checkAgainstOracle(t, f, joint, oracleQueries(g, seed, 4))
		})
	}
}

// TestOracleGridNetwork drives the same lattice on Manhattan-style grids.
func TestOracleGridNetwork(t *testing.T) {
	for seed := uint64(1); seed <= 5; seed++ {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			g, w0 := GenerateGridNetwork(6, 7, seed)
			f, joint := oracleFederation(t, g, w0, seed+200)
			checkAgainstOracle(t, f, joint, oracleQueries(g, seed, 4))
		})
	}
}

// TestOracleAfterTrafficUpdate re-checks the lattice after dynamic traffic
// updates refresh the index — the dynamic-update path must stay
// oracle-correct, not just fresh builds.
func TestOracleAfterTrafficUpdate(t *testing.T) {
	g, w0 := GenerateRoadNetwork(140, 77)
	f, _ := oracleFederation(t, g, w0, 78)
	rng := rand.New(rand.NewPCG(79, 0xbeef))
	var ups []TrafficUpdate
	for i := 0; i < 25; i++ {
		ups = append(ups, TrafficUpdate{
			Silo:     rng.IntN(f.Silos()),
			Arc:      Arc(rng.IntN(g.NumArcs())),
			TravelMs: int64(1 + rng.IntN(int(MaxTravelMs-2))),
		})
	}
	if _, err := f.ApplyTraffic(ups); err != nil {
		t.Fatal(err)
	}
	joint := make(Weights, g.NumArcs())
	for p := 0; p < f.Silos(); p++ {
		// Rebuild the oracle from the live silo weights (post-update).
		for a := 0; a < g.NumArcs(); a++ {
			joint[a] += f.inner.Silo(p).Weight(Arc(a))
		}
	}
	checkAgainstOracle(t, f, joint, oracleQueries(g, 80, 3))
}

// liveJointWeights reads the current per-silo weights into a plaintext joint
// oracle.
func liveJointWeights(f *Federation) Weights {
	g := f.Graph()
	joint := make(Weights, g.NumArcs())
	for p := 0; p < f.Silos(); p++ {
		for a := 0; a < g.NumArcs(); a++ {
			joint[a] += f.inner.Silo(p).Weight(Arc(a))
		}
	}
	return joint
}

// TestOracleCustomizeAxis is the customize axis of the oracle: an index
// derived by weight CUSTOMIZATION over the topology skeleton must be
// indistinguishable, on every engine configuration, from both plaintext
// Dijkstra and a from-scratch federated build at the same traffic version.
// Several random traffic batches advance the version between checks, each
// followed by an ApplyTraffic(..., RebuildIndex) pass (which prefers the
// customization sweep because a skeleton exists).
func TestOracleCustomizeAxis(t *testing.T) {
	const versions = 3
	g, w0 := GenerateRoadNetwork(120, 91)

	// Both federations regenerate the SAME congestion sets (deterministic in
	// the seed) so they never share mutable weight slices.
	mk := func() *Federation {
		t.Helper()
		f, err := New(g, w0, SimulateCongestion(w0, 3, Moderate, 92), Config{Seed: 92, Landmarks: 8})
		if err != nil {
			t.Fatal(err)
		}
		return f
	}

	fCust := mk()
	if err := fCust.BuildSkeleton(); err != nil {
		t.Fatal(err)
	}
	if !fCust.HasSkeleton() {
		t.Fatal("HasSkeleton false after BuildSkeleton")
	}
	if fCust.SkeletonStats().Shortcuts <= 0 {
		t.Fatal("skeleton has no shortcuts on a road network")
	}
	if err := fCust.CustomizeIndex(); err != nil {
		t.Fatal(err)
	}
	if st := fCust.IndexStats(); !st.Customized {
		t.Fatal("CustomizeIndex installed a non-customized index")
	}
	if fCust.CustomizeInfo().Customizes != 1 {
		t.Fatalf("CustomizeInfo.Customizes = %d, want 1", fCust.CustomizeInfo().Customizes)
	}

	rng := rand.New(rand.NewPCG(93, 0xabcd))
	var batches [][]TrafficUpdate
	for v := 1; v <= versions; v++ {
		var ups []TrafficUpdate
		for i := 0; i < 20; i++ {
			ups = append(ups, TrafficUpdate{
				Silo:     rng.IntN(fCust.Silos()),
				Arc:      Arc(rng.IntN(g.NumArcs())),
				TravelMs: int64(1 + rng.IntN(5000)),
			})
		}
		batches = append(batches, ups)
		if _, err := fCust.ApplyTraffic(ups, RebuildIndex); err != nil {
			t.Fatalf("version %d: ApplyTraffic(RebuildIndex): %v", v, err)
		}
		if st := fCust.IndexStats(); !st.Customized {
			t.Fatalf("version %d: RebuildIndex ran a full contraction despite the skeleton", v)
		}

		// A from-scratch federated build over the same weights at the same
		// traffic version.
		fFull := mk()
		for _, b := range batches {
			if _, err := fFull.ApplyTraffic(b); err != nil {
				t.Fatalf("version %d: replaying traffic: %v", v, err)
			}
		}
		if err := fFull.BuildIndexWith(IndexParams{}); err != nil {
			t.Fatalf("version %d: full build: %v", v, err)
		}
		if fFull.IndexStats().Customized {
			t.Fatalf("version %d: from-scratch build reported Customized", v)
		}

		joint := liveJointWeights(fCust)
		if jf := liveJointWeights(fFull); !slicesEqualI64(joint, jf) {
			t.Fatalf("version %d: the two federations diverged on silo weights", v)
		}
		queries := oracleQueries(g, 94+uint64(v), 3)

		// Full configuration lattice (SPSP + kNN) against plaintext Dijkstra.
		checkAgainstOracle(t, fCust, joint, queries)

		// Every SPSP configuration: customized and from-scratch indexes must
		// return identical distances, query by query.
		fFull.PrecomputeLandmarks()
		for _, q := range queries {
			for _, cfg := range spspConfigs() {
				rc, _, err := fCust.ShortestPath(q[0], q[1], cfg.opt)
				if err != nil {
					t.Fatalf("version %d %s: customized ShortestPath(%d,%d): %v", v, cfg.name, q[0], q[1], err)
				}
				rf, _, err := fFull.ShortestPath(q[0], q[1], cfg.opt)
				if err != nil {
					t.Fatalf("version %d %s: full-build ShortestPath(%d,%d): %v", v, cfg.name, q[0], q[1], err)
				}
				if rc.Found != rf.Found {
					t.Fatalf("version %d %s: (%d,%d) customized found=%v, full build found=%v",
						v, cfg.name, q[0], q[1], rc.Found, rf.Found)
				}
				if rc.Found && JointCost(rc) != JointCost(rf) {
					t.Fatalf("version %d %s: (%d,%d) customized cost %d, full build cost %d",
						v, cfg.name, q[0], q[1], JointCost(rc), JointCost(rf))
				}
			}
			// And every kNN configuration on the same footing.
			for _, cfg := range knnConfigs() {
				rc, _, err := fCust.NearestNeighbors(q[0], 5, cfg.opt)
				if err != nil {
					t.Fatalf("version %d kNN %s: customized: %v", v, cfg.name, err)
				}
				rf, _, err := fFull.NearestNeighbors(q[0], 5, cfg.opt)
				if err != nil {
					t.Fatalf("version %d kNN %s: full build: %v", v, cfg.name, err)
				}
				if len(rc) != len(rf) {
					t.Fatalf("version %d kNN %s: customized %d routes, full build %d", v, cfg.name, len(rc), len(rf))
				}
				for i := range rc {
					if JointCost(rc[i]) != JointCost(rf[i]) {
						t.Fatalf("version %d kNN %s: %d-th distance %d vs %d",
							v, cfg.name, i, JointCost(rc[i]), JointCost(rf[i]))
					}
				}
			}
		}
		fFull.Close()
	}
	if got := fCust.CustomizeInfo().Customizes; got != versions+1 {
		t.Fatalf("CustomizeInfo.Customizes = %d, want %d", got, versions+1)
	}
	if fCust.CustomizeInfo().LastMPCRounds <= 0 {
		t.Fatal("CustomizeInfo.LastMPCRounds not recorded")
	}
}

func slicesEqualI64(a, b []int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
