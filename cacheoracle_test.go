package fedroad

import (
	"math/rand/v2"
	"sync"
	"testing"

	"repro/internal/graph"
)

// The cached-serving staleness oracle: queries served through a QueryCache
// while traffic updates race them must NEVER be stale. Every response echoes
// the traffic version it was computed at; a shadow map records the plaintext
// joint weights at every version; each response's route must match Dijkstra
// on the joint weights of its echoed version. Run under -race this doubles
// as the data-race check for the whole serving path.

// jointAt sums the live per-silo weights into one plaintext weight vector.
// Callers must guarantee no concurrent ApplyTraffic (single-updater rule).
func jointAt(f *Federation) Weights {
	g := f.Graph()
	joint := make(Weights, g.NumArcs())
	for p := 0; p < f.Silos(); p++ {
		for a := 0; a < g.NumArcs(); a++ {
			joint[a] += f.inner.Silo(p).Weight(Arc(a))
		}
	}
	return joint
}

func TestCachedQueriesAreNeverStale(t *testing.T) {
	g, w0 := GenerateRoadNetwork(90, 301)
	silos := SimulateCongestion(w0, 3, Moderate, 302)
	f, err := New(g, w0, silos, Config{Seed: 303})
	if err != nil {
		t.Fatal(err)
	}
	if err := f.BuildIndex(); err != nil {
		t.Fatal(err)
	}
	qc := f.NewQueryCache(512)

	// Shadow oracle: traffic version → plaintext joint weights at that
	// version. A single updater goroutine is the only weight writer, so it
	// can read the silo weights back race-free right after each apply.
	oracle := map[uint64]Weights{f.TrafficVersion(): jointAt(f)}
	var oracleMu sync.Mutex

	const (
		workers = 6
		iters   = 60
		updates = 12
	)
	type observed struct {
		src, dst Vertex
		route    Route
		ver      uint64
	}
	results := make([][]observed, workers)

	// A small OD-pair pool so repeated queries actually hit the cache.
	pairs := make([][2]Vertex, 8)
	prng := rand.New(rand.NewPCG(304, 0))
	for i := range pairs {
		pairs[i] = [2]Vertex{Vertex(prng.IntN(g.NumVertices())), Vertex(prng.IntN(g.NumVertices()))}
	}

	var wg sync.WaitGroup
	start := make(chan struct{})
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			s := f.Session()
			defer s.Close()
			rng := rand.New(rand.NewPCG(uint64(w), 305))
			<-start
			for i := 0; i < iters; i++ {
				p := pairs[rng.IntN(len(pairs))]
				route, _, ver, _, err := qc.ShortestPath(p[0], p[1], QueryOptions{}, func() (Route, Stats, uint64, error) {
					return s.ShortestPathAt(p[0], p[1])
				})
				if err != nil {
					t.Errorf("worker %d: ShortestPath(%d,%d): %v", w, p[0], p[1], err)
					return
				}
				results[w] = append(results[w], observed{p[0], p[1], route, ver})
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewPCG(306, 0))
		<-start
		for i := 0; i < updates; i++ {
			ups := []TrafficUpdate{{
				Silo:     rng.IntN(3),
				Arc:      Arc(rng.IntN(g.NumArcs())),
				TravelMs: int64(1 + rng.IntN(150000)),
			}}
			if _, err := f.ApplyTraffic(ups); err != nil {
				t.Errorf("ApplyTraffic: %v", err)
				return
			}
			oracleMu.Lock()
			oracle[f.TrafficVersion()] = jointAt(f)
			oracleMu.Unlock()
		}
	}()
	close(start)
	wg.Wait()
	if t.Failed() {
		return
	}

	checked := 0
	for _, rs := range results {
		for _, o := range rs {
			joint, ok := oracle[o.ver]
			if !ok {
				t.Fatalf("response echoed traffic version %d, never recorded by the updater", o.ver)
			}
			want, _ := graph.DijkstraTo(g, joint, o.src, o.dst)
			if want >= graph.InfCost {
				if o.route.Found {
					t.Fatalf("stale serve: route %d→%d found at version %d, oracle says unreachable", o.src, o.dst, o.ver)
				}
				continue
			}
			if !o.route.Found {
				t.Fatalf("stale serve: no route %d→%d at version %d, oracle cost %d", o.src, o.dst, o.ver, want)
			}
			if got := JointCost(o.route); got != want {
				t.Fatalf("stale serve: route %d→%d joint cost %d at version %d, oracle %d", o.src, o.dst, got, o.ver, want)
			}
			checked++
		}
	}
	if checked == 0 {
		t.Fatal("oracle checked nothing")
	}
	st := qc.Stats()
	if st.Hits+st.Misses+st.Coalesced != uint64(workers*iters) {
		t.Fatalf("cache accounting: hits %d + misses %d + coalesced %d != %d calls",
			st.Hits, st.Misses, st.Coalesced, workers*iters)
	}
}

// TestQueryCacheVersionedLifecycle pins the sequential contract: repeat query
// hits, traffic update changes the key so the next call misses, and kNN rides
// the same machinery.
func TestQueryCacheVersionedLifecycle(t *testing.T) {
	g, w0 := GenerateRoadNetwork(60, 311)
	f, err := New(g, w0, SimulateCongestion(w0, 2, Moderate, 312), Config{Seed: 313})
	if err != nil {
		t.Fatal(err)
	}
	if err := f.BuildIndex(); err != nil {
		t.Fatal(err)
	}
	qc := f.NewQueryCache(64)
	s := f.Session()
	defer s.Close()
	run := func() (Route, Stats, uint64, error) { return s.ShortestPathAt(2, 40) }

	r1, _, v1, out, err := qc.ShortestPath(2, 40, QueryOptions{}, run)
	if err != nil || out != CacheMiss {
		t.Fatalf("first call: outcome %v err %v, want miss", out, err)
	}
	r2, _, v2, out, err := qc.ShortestPath(2, 40, QueryOptions{}, run)
	if err != nil || out != CacheHit {
		t.Fatalf("second call: outcome %v err %v, want hit", out, err)
	}
	if v1 != v2 || JointCost(r1) != JointCost(r2) {
		t.Fatalf("hit returned a different result: cost %d@%d vs %d@%d", JointCost(r1), v1, JointCost(r2), v2)
	}

	// Different options are a different cache line.
	if _, _, _, out, err = qc.ShortestPath(2, 40, QueryOptions{NoIndex: true}, func() (Route, Stats, uint64, error) {
		return s.ShortestPathAt(2, 40, QueryOptions{NoIndex: true})
	}); err != nil || out != CacheMiss {
		t.Fatalf("different options: outcome %v err %v, want miss", out, err)
	}

	// A traffic update bumps the version: the old entry is unreachable.
	if err := f.SetTraffic(0, 7, 222222); err != nil {
		t.Fatal(err)
	}
	r3, _, v3, out, err := qc.ShortestPath(2, 40, QueryOptions{}, run)
	if err != nil || out != CacheMiss {
		t.Fatalf("post-update call: outcome %v err %v, want miss", out, err)
	}
	if v3 != v1+1 {
		t.Fatalf("post-update version %d, want %d", v3, v1+1)
	}
	joint := jointAt(f)
	want, _ := graph.DijkstraTo(g, joint, 2, 40)
	if got := JointCost(r3); r3.Found && got != want {
		t.Fatalf("post-update cost %d, oracle %d", got, want)
	}

	// kNN path: miss then hit.
	runK := func() ([]Route, Stats, uint64, error) { return s.NearestNeighborsAt(5, 3) }
	if _, _, _, out, err = qc.NearestNeighbors(5, 3, QueryOptions{}, runK); err != nil || out != CacheMiss {
		t.Fatalf("kNN first call: outcome %v err %v, want miss", out, err)
	}
	routes, _, _, out, err := qc.NearestNeighbors(5, 3, QueryOptions{}, runK)
	if err != nil || out != CacheHit {
		t.Fatalf("kNN second call: outcome %v err %v, want hit", out, err)
	}
	if len(routes) != 3 {
		t.Fatalf("kNN hit returned %d routes, want 3", len(routes))
	}
}
