// Nearest drivers: a federated kNN query (Fed-SSSP, Alg. 1). A dispatch
// service finds the k drivers closest to a rider *by joint travel time* —
// which depends on real-time traffic that only the federation's silos
// observe — without any silo revealing its observations.
package main

import (
	"fmt"
	"log"
	"math/rand/v2"

	fedroad "repro"
)

func main() {
	g, w0 := fedroad.GenerateRoadNetwork(3000, 21)
	silos := fedroad.SimulateCongestion(w0, 3, fedroad.Moderate, 22)
	fed, err := fedroad.New(g, w0, silos)
	if err != nil {
		log.Fatal(err)
	}

	// Drivers wait at random junctions.
	rng := rand.New(rand.NewPCG(23, 23))
	drivers := map[fedroad.Vertex]string{}
	for i := 0; i < 40; i++ {
		drivers[fedroad.Vertex(rng.IntN(g.NumVertices()))] = fmt.Sprintf("driver-%02d", i)
	}

	rider := fedroad.Vertex(rng.IntN(g.NumVertices()))
	fmt.Printf("rider at junction %d; %d drivers on the map\n\n", rider, len(drivers))

	// Expand the federated SSSP until three drivers are settled. (Distances
	// here are driver→rider pickup times on the reversed trip; on this
	// symmetric network the joint costs coincide.)
	const want = 3
	found := 0
	k := 16
	for found < want && k <= g.NumVertices() {
		routes, stats, err := fed.NearestNeighbors(rider, k)
		if err != nil {
			log.Fatal(err)
		}
		found = 0
		for _, r := range routes {
			v := r.Path[len(r.Path)-1]
			if name, ok := drivers[v]; ok {
				found++
				fmt.Printf("  %-10s at junction %-5d pickup ~%.1fs away\n",
					name, v, float64(fedroad.JointCost(r))/float64(fed.Silos())/1000)
				if found == want {
					fmt.Printf("\nsearch cost: %d settled vertices, %d Fed-SAC comparisons\n",
						stats.SettledVertices, stats.SAC.Compares)
					return
				}
			}
		}
		k *= 2 // widen the kNN radius and retry
		fmt.Printf("  (only %d drivers within the %d nearest junctions; widening)\n", found, k/2)
	}
}
