// Ride-hailing: the paper's motivating scenario (Fig. 1). Each mobility
// platform alone holds a noisy, partial view of city traffic; routing on a
// single platform's data picks slower roads. The federation routes on the
// joint view without any platform revealing its observations, and the
// resulting trips are measurably faster.
package main

import (
	"fmt"
	"log"
	"math/rand/v2"

	fedroad "repro"
	"repro/internal/graph"
	"repro/internal/traffic"
)

func main() {
	// A mid-sized city grid under heavy congestion (the ground truth no one
	// fully observes).
	g, w0 := fedroad.GenerateGridNetwork(40, 40, 11)
	wTrue := traffic.GroundTruth(w0, fedroad.Heavy, 12)

	// Two platforms each drove a disjoint half of the taxi trajectories and
	// estimated edge travel times from their own observations.
	obs := traffic.Simulate(g, wTrue, w0, 4000, 0.25, 13)
	shares := obs.Split(2)
	platformW := []fedroad.Weights{obs.Estimate(shares[0]), obs.Estimate(shares[1])}

	// The federation of the two platforms.
	fed, err := fedroad.New(g, w0, platformW)
	if err != nil {
		log.Fatal(err)
	}
	if err := fed.BuildIndex(); err != nil {
		log.Fatal(err)
	}

	rng := rand.New(rand.NewPCG(14, 14))
	const trips = 120
	var soloDelay, fedDelay int64
	worse := 0
	for i := 0; i < trips; i++ {
		s := fedroad.Vertex(rng.IntN(g.NumVertices()))
		t := fedroad.Vertex(rng.IntN(g.NumVertices()))
		if s == t {
			continue
		}
		// True optimum (omniscient routing) as the reference.
		optimal, _ := graph.DijkstraTo(g, wTrue, s, t)

		// Platform 0 routing alone on its private estimate.
		_, soloRoute := graph.DijkstraTo(g, platformW[0], s, t)
		soloActual, _ := graph.PathCost(g, wTrue, soloRoute)

		// Federated routing on the joint view (secure: platform estimates
		// never leave their silos).
		route, _, err := fed.ShortestPath(s, t)
		if err != nil {
			log.Fatal(err)
		}
		fedActual, _ := graph.PathCost(g, wTrue, route.Path)

		soloDelay += soloActual - optimal
		fedDelay += fedActual - optimal
		if fedActual > soloActual {
			worse++
		}
	}
	fmt.Printf("over %d trips under heavy congestion:\n", trips)
	fmt.Printf("  platform-0-only routing: %6.1fs mean delay vs optimal\n", float64(soloDelay)/float64(trips)/1000)
	fmt.Printf("  federated routing:       %6.1fs mean delay vs optimal\n", float64(fedDelay)/float64(trips)/1000)
	fmt.Printf("  federated route slower than solo on %d/%d trips\n", worse, trips)
}
