// Quickstart: assemble a three-silo traffic federation, build the federated
// shortcut index and answer one secure joint shortest-path query.
package main

import (
	"fmt"
	"log"

	fedroad "repro"
)

func main() {
	// A shared road-network topology with public free-flow travel times.
	g, w0 := fedroad.GenerateRoadNetwork(2000, 42)

	// Three mobility platforms, each privately observing the same moderate
	// congestion with independent sensor noise.
	silos := fedroad.SimulateCongestion(w0, 3, fedroad.Moderate, 7)

	// The federation: weights stay at their silos; every cross-silo cost
	// comparison runs through the secret-sharing Fed-SAC operator.
	fed, err := fedroad.New(g, w0, silos)
	if err != nil {
		log.Fatal(err)
	}

	// Pre-compute the federated shortcut index (collaborative contraction
	// hierarchy; consistent shortcut sets, private partial weights).
	if err := fed.BuildIndex(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("index: %d shortcuts\n", fed.IndexStats().Shortcuts)

	// One secure joint shortest-path query with the paper's best stack
	// (shortcut index + Fed-AMPS pruning + TM-tree queue).
	route, stats, err := fed.ShortestPath(12, 1780)
	if err != nil {
		log.Fatal(err)
	}
	if !route.Found {
		log.Fatal("no route")
	}
	fmt.Printf("route has %d segments\n", len(route.Path)-1)
	fmt.Printf("joint travel time: %.1fs (mean over %d silos)\n",
		float64(fedroad.JointCost(route))/float64(fed.Silos())/1000, fed.Silos())
	fmt.Printf("secure cost: %d Fed-SAC comparisons, %d MPC rounds, %d bytes\n",
		stats.SAC.Compares, stats.SAC.Rounds, stats.SAC.Bytes)
}
