// TCP federation: three silos run the secure comparison protocol over real
// TCP sockets on localhost — the same wire protocol a multi-machine
// deployment would use. Each silo contributes its private partial cost of
// two candidate routes; the mesh reveals only which route is jointly
// cheaper.
package main

import (
	"fmt"
	"log"
	"net"
	"sync"
	"time"

	"repro/internal/mpc"
	"repro/internal/transport"
)

func main() {
	const parties = 3

	// Each silo's private partial costs of two candidate routes A and B
	// (milliseconds of observed travel time).
	costA := []int64{412_000, 388_500, 405_200}
	costB := []int64{399_000, 401_700, 404_100}
	jointA, jointB := int64(0), int64(0)
	for p := 0; p < parties; p++ {
		jointA += costA[p]
		jointB += costB[p]
	}

	// The preprocessing dealer distributes correlated randomness for one
	// comparison (in production this is the MPC stack's offline phase).
	dealer := mpc.NewDealer(parties, 99)
	tuples := dealer.CmpTuples()

	// Reserve localhost ports for the mesh.
	addrs := make([]string, parties)
	for i := range addrs {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			log.Fatal(err)
		}
		addrs[i] = l.Addr().String()
		l.Close()
	}
	fmt.Println("silo endpoints:")
	for i, a := range addrs {
		fmt.Printf("  silo %d: %s\n", i, a)
	}

	results := make([]bool, parties)
	var stats [parties]transport.Stats
	var wg sync.WaitGroup
	for p := 0; p < parties; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			conn, err := transport.DialMesh(p, parties, addrs, 5*time.Second)
			if err != nil {
				log.Fatalf("silo %d: %v", p, err)
			}
			defer conn.Close()
			less, err := mpc.RunCompareParty(conn, costA[p]-costB[p], &tuples[p])
			if err != nil {
				log.Fatalf("silo %d: %v", p, err)
			}
			results[p] = less
			stats[p] = conn.Stats()
		}(p)
	}
	wg.Wait()

	fmt.Printf("\neach silo learned only the comparison bit: route A < route B = %v\n", results[0])
	for p := 1; p < parties; p++ {
		if results[p] != results[0] {
			log.Fatal("silos disagree — protocol bug")
		}
	}
	var totalBytes, totalMsgs int64
	for p := 0; p < parties; p++ {
		totalBytes += stats[p].Bytes
		totalMsgs += stats[p].Messages
	}
	fmt.Printf("wire cost: %d bytes in %d TCP frames across the mesh (%d rounds)\n",
		totalBytes, totalMsgs, mpc.RoundsPerCompare)
	fmt.Printf("ground truth (never revealed on the wire): joint A = %d, joint B = %d\n", jointA, jointB)
	if results[0] != (jointA < jointB) {
		log.Fatal("comparison result wrong")
	}
	fmt.Println("result verified against the plaintext ground truth ✓")
}
