// Dynamic traffic: real-time congestion hits a corridor, every silo updates
// its private observation, and the federation's partial index update (§IV,
// Table II) refreshes the shortcut hierarchy in a fraction of the build cost
// — after which queries route around the jam.
package main

import (
	"fmt"
	"log"
	"time"

	fedroad "repro"
)

func main() {
	g, w0 := fedroad.GenerateGridNetwork(36, 36, 31)
	silos := fedroad.SimulateCongestion(w0, 3, fedroad.Slight, 32)
	fed, err := fedroad.New(g, w0, silos)
	if err != nil {
		log.Fatal(err)
	}
	start := time.Now()
	if err := fed.BuildIndex(); err != nil {
		log.Fatal(err)
	}
	buildTime := time.Since(start)
	fmt.Printf("index built: %d shortcuts in %v (%d Fed-SACs)\n",
		fed.IndexStats().Shortcuts, buildTime.Round(time.Millisecond),
		fed.IndexStats().SAC.Compares)

	s, t := fedroad.Vertex(0), fedroad.Vertex(g.NumVertices()-1)
	before, _, err := fed.ShortestPath(s, t)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nmorning route %d->%d: %d segments, %.1fs\n",
		s, t, len(before.Path)-1, meanSeconds(fed, before))

	// An accident blocks a stretch in the middle of the current route:
	// travel times on those segments jump 6x, observed by every silo.
	// ApplyTraffic applies the observations and refreshes the shortcut index
	// in one atomic step, so concurrent queries never see a half-updated
	// federation.
	var jammed []fedroad.Arc
	var updates []fedroad.TrafficUpdate
	mid := len(before.Path) / 2
	for i := mid - 3; i < mid+3 && i+1 < len(before.Path); i++ {
		a := g.FindArc(before.Path[i], before.Path[i+1])
		jammed = append(jammed, a)
		for p := 0; p < fed.Silos(); p++ {
			updates = append(updates, fedroad.TrafficUpdate{Silo: p, Arc: a, TravelMs: w0[a] * 6})
		}
	}
	start = time.Now()
	upd, err := fed.ApplyTraffic(updates)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nincident on %d segments; partial index update: %v (%d Fed-SACs, %d shortcuts recomputed, %d added)\n",
		len(jammed), time.Since(start).Round(time.Millisecond),
		upd.SAC.Compares, upd.RecomputedShortcuts, upd.AddedShortcuts)
	fmt.Printf("update used %.1f%% of the construction comparisons\n",
		100*float64(upd.SAC.Compares)/float64(fed.IndexStats().SAC.Compares))

	after, _, err := fed.ShortestPath(s, t)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nrerouted: %d segments, %.1fs (old route shares %.0f%% of its junctions)\n",
		len(after.Path)-1, meanSeconds(fed, after), 100*overlap(before.Path, after.Path))
	if meanSeconds(fed, after) > 6*meanSeconds(fed, before) {
		fmt.Println("warning: no useful detour exists around the incident")
	}
}

func meanSeconds(fed *fedroad.Federation, r fedroad.Route) float64 {
	return float64(fedroad.JointCost(r)) / float64(fed.Silos()) / 1000
}

func overlap(a, b []fedroad.Vertex) float64 {
	in := map[fedroad.Vertex]bool{}
	for _, v := range a {
		in[v] = true
	}
	common := 0
	for _, v := range b {
		if in[v] {
			common++
		}
	}
	return float64(common) / float64(len(b))
}
