package fedroad

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"repro/internal/ch"
)

// Federation state snapshots are the serving tier's restart path: a crash or
// redeploy costs one file read instead of a multi-minute MPC index rebuild.
// SaveState captures everything mutable — every silo's private weight set,
// the traffic version, and the shortcut index if built — against the
// immutable topology, which is NOT stored: the restoring process loads the
// same graph by its usual means, and a fingerprint check rejects snapshots
// taken against a different network. This is a single-process (simulation /
// fedserver) format; a real deployment persists along the privacy boundary
// with SaveIndex instead.
//
// Format (little-endian): magic, version, topology fingerprint, traffic
// version, silo count, arc count, P×m silo weights, a has-index byte, then —
// when present — the ch.WriteIndex bundle.

const (
	stateMagic   = 0x46525354 // "FRST"
	stateVersion = 1
)

// fingerprint hashes the topology and static weights (FNV-1a), so a restore
// against the wrong graph fails fast instead of producing garbage routes.
func (f *Federation) fingerprint() uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	mix := func(v uint64) {
		for i := 0; i < 8; i++ {
			h ^= v & 0xff
			h *= prime64
			v >>= 8
		}
	}
	g := f.inner.Graph()
	w0 := f.inner.StaticWeights()
	mix(uint64(g.NumVertices()))
	mix(uint64(g.NumArcs()))
	for a := 0; a < g.NumArcs(); a++ {
		mix(uint64(g.Tail(Arc(a))))
		mix(uint64(g.Head(Arc(a))))
		mix(uint64(w0[a]))
	}
	return h
}

// SaveState writes a consistent snapshot of the federation's mutable state —
// silo weights, traffic version, and the shortcut index when built — taken
// under the read lock, so it never interleaves with a traffic update.
func (f *Federation) SaveState(w io.Writer) error {
	f.mu.RLock()
	defer f.mu.RUnlock()
	bw := bufio.NewWriter(w)
	var b [8]byte
	u32 := func(v uint32) error {
		binary.LittleEndian.PutUint32(b[:4], v)
		_, err := bw.Write(b[:4])
		return err
	}
	u64 := func(v uint64) error {
		binary.LittleEndian.PutUint64(b[:], v)
		_, err := bw.Write(b[:])
		return err
	}
	m := f.inner.Graph().NumArcs()
	for _, v := range []uint32{stateMagic, stateVersion} {
		if err := u32(v); err != nil {
			return err
		}
	}
	if err := u64(f.fingerprint()); err != nil {
		return err
	}
	if err := u64(f.trafficVer); err != nil {
		return err
	}
	if err := u32(uint32(f.Silos())); err != nil {
		return err
	}
	if err := u32(uint32(m)); err != nil {
		return err
	}
	for p := 0; p < f.Silos(); p++ {
		ws := f.inner.Silo(p).Weights()
		for a := 0; a < m; a++ {
			if err := u64(uint64(ws[a])); err != nil {
				return err
			}
		}
	}
	hasIndex := byte(0)
	if f.index != nil {
		hasIndex = 1
	}
	if err := bw.WriteByte(hasIndex); err != nil {
		return err
	}
	if err := bw.Flush(); err != nil {
		return err
	}
	if f.index != nil {
		return f.index.WriteIndex(w)
	}
	return nil
}

// RestoreState loads a SaveState snapshot into the federation: silo weights,
// the shortcut index (validated exactly as LoadIndex validates it), and
// finally the snapshot's traffic version. Everything is validated before
// anything is applied; on error the federation is unchanged. Intended for
// startup (fedserver -persist) — like LoadSavedIndex it invalidates the
// weight snapshot of any index build racing it only when the restored traffic
// version differs from the current one. It returns whether the snapshot
// carried an index.
func (f *Federation) RestoreState(r io.Reader) (restoredIndex bool, err error) {
	br := bufio.NewReader(r)
	var b [8]byte
	u32 := func() (uint32, error) {
		if _, err := io.ReadFull(br, b[:4]); err != nil {
			return 0, err
		}
		return binary.LittleEndian.Uint32(b[:4]), nil
	}
	u64 := func() (uint64, error) {
		if _, err := io.ReadFull(br, b[:]); err != nil {
			return 0, err
		}
		return binary.LittleEndian.Uint64(b[:]), nil
	}
	magic, err := u32()
	if err != nil {
		return false, fmt.Errorf("fedroad: state header: %w", err)
	}
	if magic != stateMagic {
		return false, fmt.Errorf("fedroad: bad state magic %#x", magic)
	}
	ver, err := u32()
	if err != nil {
		return false, err
	}
	if ver != stateVersion {
		return false, fmt.Errorf("fedroad: unsupported state version %d", ver)
	}
	fp, err := u64()
	if err != nil {
		return false, err
	}
	if want := f.fingerprint(); fp != want {
		return false, fmt.Errorf("fedroad: state snapshot fingerprint %#x does not match the loaded network (%#x) — was it taken against a different graph?", fp, want)
	}
	trafficVer, err := u64()
	if err != nil {
		return false, err
	}
	p32, err := u32()
	if err != nil {
		return false, err
	}
	if int(p32) != f.Silos() {
		return false, fmt.Errorf("fedroad: state snapshot has %d silos, federation has %d", p32, f.Silos())
	}
	m32, err := u32()
	if err != nil {
		return false, err
	}
	m := f.inner.Graph().NumArcs()
	if int(m32) != m {
		return false, fmt.Errorf("fedroad: state snapshot covers %d arcs, graph has %d", m32, m)
	}
	weights := make([][]int64, f.Silos())
	for p := range weights {
		ws := make([]int64, m)
		for a := 0; a < m; a++ {
			v, err := u64()
			if err != nil {
				return false, fmt.Errorf("fedroad: state silo %d weights: %w", p, err)
			}
			w := int64(v)
			// fed.Silo.SetWeight enforces this with a panic; a snapshot that
			// violates it is corrupt, which must surface as an error.
			if w <= 0 || w >= MaxTravelMs {
				return false, fmt.Errorf("fedroad: state silo %d arc %d weight %d outside (0,%d)", p, a, w, MaxTravelMs)
			}
			ws[a] = w
		}
		weights[p] = ws
	}
	hasIndex, err := br.ReadByte()
	if err != nil {
		return false, err
	}
	var idx *ch.Index
	if hasIndex != 0 {
		// ReadIndex validates the bundle against the federation's topology
		// and silo count; it reads no mutable state, so no lock is needed yet.
		idx, err = ch.ReadIndex(f.inner, br)
		if err != nil {
			return false, err
		}
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	for p, ws := range weights {
		silo := f.inner.Silo(p)
		for a := 0; a < m; a++ {
			silo.SetWeight(Arc(a), ws[a])
		}
	}
	if idx != nil {
		f.index = idx
		// A customized index carries its topology skeleton inside the bundle;
		// adopt it so post-restart reindexing runs the cheap customization
		// sweep instead of re-contracting from scratch.
		if sk := idx.Skeleton(); sk != nil {
			f.skel = sk
		}
	}
	// The traffic version is restored LAST: it must describe the weights and
	// index now in place, and restoring it also keys every WAL delta replayed
	// on top (deltas with versions <= this one are already in the snapshot).
	f.trafficVer = trafficVer
	return idx != nil, nil
}
