// Package fed models the traffic data federation of the paper's §II-A: P
// autonomous silos share one road-network topology and the public static
// weight set W0, while each silo privately holds its own traffic observation
// (a weight set). The only cross-silo operation is Fed-SAC — the secure
// sum-and-compare operator — carried by the mpc package.
//
// Throughout the federated algorithms, a secret joint cost is represented as
// a partial-cost vector: element p is silo p's private partial cost, and the
// joint cost is (conceptually) the mean. Because all comparisons are scale
// invariant, the implementation compares sums instead of means (Eq. 2).
package fed

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/mpc"
)

// Partial is a per-silo partial cost vector of length P. In a real
// deployment, entry p exists only at silo p; the simulation keeps the vector
// in one process but routes every cross-silo comparison through the MPC
// engine.
type Partial = []int64

// Silo is one data owner: it holds the shared topology by reference and a
// private weight set. The weight set is unexported; algorithm code accesses
// it through methods to keep the privacy boundary visible in the code.
type Silo struct {
	id int
	w  graph.Weights
}

// ID returns the silo's index in the federation.
func (s *Silo) ID() int { return s.id }

// Weight returns the silo's private weight of arc a. Conceptually this runs
// at the silo; results must only leave the silo through Fed-SAC.
func (s *Silo) Weight(a graph.Arc) int64 { return s.w[a] }

// SetWeight updates the silo's private weight of arc a, reflecting a
// real-time traffic change. The federation must afterwards run the federated
// index update (ch.Index.Update) so pre-computed structures stay consistent.
func (s *Silo) SetWeight(a graph.Arc, w int64) {
	if w <= 0 || w >= graph.MaxWeight {
		panic(fmt.Sprintf("fed: silo %d: invalid weight %d for arc %d", s.id, w, a))
	}
	s.w[a] = w
}

// Weights exposes the silo's full private weight set for silo-local
// computation (e.g. Fed-AMPS local searches). Callers must not mix weight
// sets across silos outside the MPC engine.
func (s *Silo) Weights() graph.Weights { return s.w }

// Federation binds the shared topology, the public static weights, the P
// silos and the MPC engine executing Fed-SAC.
//
// A Federation is not safe for unsynchronized concurrent use (its MPC engine
// is single-goroutine and silo weights are mutable); Fork produces views that
// share all federation data but own an independent engine, so queries on
// different forks run concurrently. Coordinating queries against weight
// mutation is the caller's responsibility (the fedroad package does this
// with a reader/writer lock).
type Federation struct {
	g     *graph.Graph
	w0    graph.Weights
	silos []*Silo
	eng   *mpc.Engine
	root  *Federation // nil when this federation is itself the root
}

// New assembles a federation. siloWeights[p] is silo p's private weight set;
// every set must cover all arcs with positive weights.
func New(g *graph.Graph, w0 graph.Weights, siloWeights []graph.Weights, params mpc.Params) (*Federation, error) {
	if len(siloWeights) < 2 {
		return nil, fmt.Errorf("fed: need at least 2 silos, got %d", len(siloWeights))
	}
	if err := graph.ValidateWeights(g, w0); err != nil {
		return nil, fmt.Errorf("fed: static weights: %w", err)
	}
	for p, w := range siloWeights {
		if err := graph.ValidateWeights(g, w); err != nil {
			return nil, fmt.Errorf("fed: silo %d weights: %w", p, err)
		}
	}
	params.Parties = len(siloWeights)
	eng, err := mpc.NewEngine(params)
	if err != nil {
		return nil, err
	}
	f := &Federation{g: g, w0: w0, eng: eng}
	for p, w := range siloWeights {
		f.silos = append(f.silos, &Silo{id: p, w: w})
	}
	return f, nil
}

// Graph returns the shared road-network topology.
func (f *Federation) Graph() *graph.Graph { return f.g }

// StaticWeights returns the public static weight set W0 (free-flow travel
// times), shared by all silos.
func (f *Federation) StaticWeights() graph.Weights { return f.w0 }

// P returns the number of silos.
func (f *Federation) P() int { return len(f.silos) }

// Silo returns silo p.
func (f *Federation) Silo(p int) *Silo { return f.silos[p] }

// Engine exposes the MPC engine (for cost accounting).
func (f *Federation) Engine() *mpc.Engine { return f.eng }

// Root returns the federation this one was (transitively) forked from, or
// the federation itself if it is the root. Forks of one root share all
// federation data — pre-computed structures built against any member of the
// family are valid for every other member.
func (f *Federation) Root() *Federation {
	if f.root != nil {
		return f.root
	}
	return f
}

// Fork returns a federation view backed by the same topology, public
// weights and silos, with an independent MPC engine forked from this
// federation's engine. Queries on distinct forks run concurrently; each
// individual fork remains single-goroutine.
func (f *Federation) Fork() *Federation {
	return &Federation{g: f.g, w0: f.w0, silos: f.silos, eng: f.eng.Fork(), root: f.Root()}
}

// ArcPartial returns the partial-cost vector of a single arc: entry p is
// silo p's private weight of the arc.
func (f *Federation) ArcPartial(a graph.Arc) Partial {
	v := make(Partial, len(f.silos))
	for p, s := range f.silos {
		v[p] = s.w[a]
	}
	return v
}

// SnapshotWeights deep-copies every silo's private weight set. Callers that
// compute off-lock against a consistent view of the federation (landmark
// precomputation, index construction) snapshot under their read lock and
// work on the copy.
func (f *Federation) SnapshotWeights() []graph.Weights {
	sets := make([]graph.Weights, len(f.silos))
	for p, s := range f.silos {
		sets[p] = append(graph.Weights(nil), s.w...)
	}
	return sets
}

// JointWeights materializes the WJRN weight set (scaled by P). This is an
// evaluation-only helper: in a real deployment no party may compute it. The
// test suite uses it as ground truth.
func (f *Federation) JointWeights() graph.Weights {
	sets := make([]graph.Weights, len(f.silos))
	for p, s := range f.silos {
		sets[p] = s.w
	}
	return graph.JointWeights(sets)
}

// AddPartial adds b into dst element-wise.
func AddPartial(dst, b Partial) {
	for i := range dst {
		dst[i] += b[i]
	}
}

// SumPartial returns a+b as a fresh vector.
func SumPartial(a, b Partial) Partial {
	out := make(Partial, len(a))
	for i := range a {
		out[i] = a[i] + b[i]
	}
	return out
}

// ClonePartial copies a partial vector.
func ClonePartial(a Partial) Partial {
	out := make(Partial, len(a))
	copy(out, a)
	return out
}

// ZeroPartial returns a zero vector of length P.
func (f *Federation) ZeroPartial() Partial { return make(Partial, len(f.silos)) }

// SAC is the Fed-SAC operator bound to a federation, with sticky error
// handling: search loops call Less freely and check Err once at the end.
// Every Less call is one secure comparison.
type SAC struct {
	eng *mpc.Engine
	err error
}

// NewSAC creates a Fed-SAC handle on the federation's MPC engine.
func (f *Federation) NewSAC() *SAC { return &SAC{eng: f.eng} }

// Less reports whether the joint cost of a is strictly smaller than the
// joint cost of b, via one secure comparison. After an engine error it
// returns false; check Err.
func (s *SAC) Less(a, b Partial) bool {
	if s.err != nil {
		return false
	}
	r, err := s.eng.CompareSums(a, b)
	if err != nil {
		s.err = err
		return false
	}
	return r
}

// LessBatch runs len(pairs) independent secure comparisons in one batched
// protocol instance (one set of communication rounds for the whole batch).
// result[i] reports whether the joint cost of pairs[i][0] is strictly
// smaller than the joint cost of pairs[i][1].
func (s *SAC) LessBatch(pairs [][2]Partial) []bool {
	out := make([]bool, len(pairs))
	if s.err != nil || len(pairs) == 0 {
		return out
	}
	diffs := make([][]int64, len(pairs))
	for i, pr := range pairs {
		d := make([]int64, len(pr[0]))
		for p := range d {
			d[p] = pr[0][p] - pr[1][p]
		}
		diffs[i] = d
	}
	res, err := s.eng.CompareBatch(diffs)
	if err != nil {
		s.err = err
		return out
	}
	return res
}

// Err returns the first engine error encountered, if any.
func (s *SAC) Err() error { return s.err }

// Stats returns the engine's accumulated comparison statistics.
func (s *SAC) Stats() mpc.Stats { return s.eng.Stats() }
