package fed

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/mpc"
	"repro/internal/traffic"
)

func testFederation(t *testing.T, p int, mode mpc.Mode) *Federation {
	t.Helper()
	g, w0 := graph.GenerateGrid(8, 8, 11)
	sets := traffic.SiloWeights(w0, p, traffic.Moderate, 5)
	f, err := New(g, w0, sets, mpc.Params{Mode: mode, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestFederationBasics(t *testing.T) {
	f := testFederation(t, 3, mpc.ModeIdeal)
	if f.P() != 3 {
		t.Fatalf("P = %d", f.P())
	}
	if f.Silo(1).ID() != 1 {
		t.Fatal("silo id wrong")
	}
	if f.Graph().NumVertices() != 64 {
		t.Fatal("graph lost")
	}
	if len(f.StaticWeights()) != f.Graph().NumArcs() {
		t.Fatal("static weights lost")
	}
}

func TestArcPartialAndJointWeights(t *testing.T) {
	f := testFederation(t, 3, mpc.ModeIdeal)
	joint := f.JointWeights()
	for a := 0; a < f.Graph().NumArcs(); a += 7 {
		part := f.ArcPartial(graph.Arc(a))
		var sum int64
		for p := 0; p < f.P(); p++ {
			if part[p] != f.Silo(p).Weight(graph.Arc(a)) {
				t.Fatalf("partial[%d] != silo weight at arc %d", p, a)
			}
			sum += part[p]
		}
		if sum != joint[a] {
			t.Fatalf("joint weight mismatch at arc %d: %d != %d", a, sum, joint[a])
		}
	}
}

func TestSACMatchesPlaintext(t *testing.T) {
	for _, mode := range []mpc.Mode{mpc.ModeIdeal, mpc.ModeProtocol} {
		f := testFederation(t, 3, mode)
		sac := f.NewSAC()
		a := Partial{100, 200, 300} // joint 600
		b := Partial{250, 250, 101} // joint 601
		if !sac.Less(a, b) {
			t.Fatalf("mode %v: 600 < 601 failed", mode)
		}
		if sac.Less(b, a) {
			t.Fatalf("mode %v: 601 < 600 claimed", mode)
		}
		if sac.Less(a, a) {
			t.Fatalf("mode %v: strict less of equal values", mode)
		}
		if sac.Err() != nil {
			t.Fatal(sac.Err())
		}
		if sac.Stats().Compares != 3 {
			t.Fatalf("mode %v: %d comparisons counted", mode, sac.Stats().Compares)
		}
	}
}

func TestPartialHelpers(t *testing.T) {
	a := Partial{1, 2, 3}
	b := Partial{10, 20, 30}
	s := SumPartial(a, b)
	if s[0] != 11 || s[2] != 33 {
		t.Fatalf("SumPartial = %v", s)
	}
	c := ClonePartial(a)
	c[0] = 99
	if a[0] != 1 {
		t.Fatal("ClonePartial aliased")
	}
	AddPartial(a, b)
	if a[0] != 11 || a[1] != 22 {
		t.Fatalf("AddPartial = %v", a)
	}
	f := testFederation(t, 4, mpc.ModeIdeal)
	z := f.ZeroPartial()
	if len(z) != 4 || z[0] != 0 {
		t.Fatalf("ZeroPartial = %v", z)
	}
}

func TestNewRejectsBadInput(t *testing.T) {
	g, w0 := graph.GenerateGrid(4, 4, 1)
	if _, err := New(g, w0, []graph.Weights{w0}, mpc.Params{}); err == nil {
		t.Fatal("single silo accepted")
	}
	bad := make(graph.Weights, g.NumArcs())
	if _, err := New(g, w0, []graph.Weights{w0, bad}, mpc.Params{}); err == nil {
		t.Fatal("zero-weight silo accepted")
	}
	if _, err := New(g, bad, []graph.Weights{w0, w0}, mpc.Params{}); err == nil {
		t.Fatal("bad static weights accepted")
	}
}
