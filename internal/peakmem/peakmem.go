// Package peakmem tracks the peak live-heap size over a region of code by
// sampling runtime.ReadMemStats from a background goroutine. It exists to
// verify the ingestion memory budget (import peak ≤ ~2× final CSR size):
// allocation-site accounting can't see transient peaks, but a sampler at a
// few-millisecond cadence catches any phase that holds large arrays.
//
// ReadMemStats briefly stops the world, so the sampler is for benches and
// one-shot tools, not steady-state servers (those use expvar counters).
package peakmem

import (
	"runtime"
	"sync"
	"time"
)

// Tracker samples the live heap until Stop is called.
type Tracker struct {
	interval time.Duration
	mu       sync.Mutex
	peak     uint64
	stop     chan struct{}
	done     chan struct{}
}

// Start begins sampling at the given interval (≤0 selects 5ms). The first
// sample is taken synchronously so even an instantly-stopped tracker
// reports the current heap.
func Start(interval time.Duration) *Tracker {
	if interval <= 0 {
		interval = 5 * time.Millisecond
	}
	t := &Tracker{
		interval: interval,
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	t.sample()
	go t.loop()
	return t
}

func (t *Tracker) loop() {
	defer close(t.done)
	tick := time.NewTicker(t.interval)
	defer tick.Stop()
	for {
		select {
		case <-t.stop:
			return
		case <-tick.C:
			t.sample()
		}
	}
}

func (t *Tracker) sample() {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	t.mu.Lock()
	if ms.HeapAlloc > t.peak {
		t.peak = ms.HeapAlloc
	}
	t.mu.Unlock()
}

// Peak returns the largest observed live-heap size so far, in bytes.
func (t *Tracker) Peak() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.peak
}

// Stop takes a final sample, halts the sampler, and returns the peak.
// Stop is idempotent only in the sense that it must be called once.
func (t *Tracker) Stop() uint64 {
	t.sample()
	close(t.stop)
	<-t.done
	return t.Peak()
}
