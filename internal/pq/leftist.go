package pq

// Leftist implements a leftist heap [Crane 1972], the paper's "L-heap"
// baseline: batch insertion first builds a sub-heap bottom-up in O(n)
// comparisons, then merges it into the global heap in O(log |Q|).
type Leftist[T any] struct {
	less   LessFunc[T]
	root   *lnode[T]
	size   int
	counts Counts
	// phase routes merge comparisons to the right counter while a pop or
	// build is in progress.
	phase *int64
}

type lnode[T any] struct {
	item        T
	left, right *lnode[T]
	s           int32 // null-path length
}

// NewLeftist creates an empty leftist heap.
func NewLeftist[T any](less LessFunc[T]) *Leftist[T] {
	l := &Leftist[T]{less: less}
	l.phase = &l.counts.Merge
	return l
}

func npl[T any](n *lnode[T]) int32 {
	if n == nil {
		return 0
	}
	return n.s
}

// merge combines two leftist heaps; each recursion level costs one root
// comparison, charged to the current phase counter.
func (l *Leftist[T]) merge(a, b *lnode[T]) *lnode[T] {
	if a == nil {
		return b
	}
	if b == nil {
		return a
	}
	*l.phase++
	if l.less(b.item, a.item) {
		a, b = b, a
	}
	a.right = l.merge(a.right, b)
	if npl(a.left) < npl(a.right) {
		a.left, a.right = a.right, a.left
	}
	a.s = npl(a.right) + 1
	return a
}

// Push inserts one item.
func (l *Leftist[T]) Push(item T) {
	l.counts.Pushes++
	l.phase = &l.counts.Merge
	l.root = l.merge(l.root, &lnode[T]{item: item, s: 1})
	l.size++
}

// PushBatch builds a sub-heap from the batch by pairwise merging (O(n)
// comparisons, Build phase) and merges it into the global heap (Merge
// phase).
func (l *Leftist[T]) PushBatch(items []T) {
	if len(items) == 0 {
		return
	}
	l.counts.Pushes += int64(len(items))
	if len(items) == 1 {
		l.phase = &l.counts.Merge
		l.root = l.merge(l.root, &lnode[T]{item: items[0], s: 1})
		l.size++
		return
	}
	// Bottom-up build: round-robin pairwise merges, O(n) total comparisons.
	queue := make([]*lnode[T], len(items))
	for i, it := range items {
		queue[i] = &lnode[T]{item: it, s: 1}
	}
	l.phase = &l.counts.Build
	for len(queue) > 1 {
		var next []*lnode[T]
		for i := 0; i+1 < len(queue); i += 2 {
			next = append(next, l.merge(queue[i], queue[i+1]))
		}
		if len(queue)%2 == 1 {
			next = append(next, queue[len(queue)-1])
		}
		queue = next
	}
	l.phase = &l.counts.Merge
	l.root = l.merge(l.root, queue[0])
	l.size += len(items)
}

// Pop removes the minimum; the children merge is charged to the Pop phase.
func (l *Leftist[T]) Pop() (T, bool) {
	var zero T
	if l.root == nil {
		return zero, false
	}
	top := l.root.item
	l.phase = &l.counts.Pop
	l.root = l.merge(l.root.left, l.root.right)
	l.phase = &l.counts.Merge
	l.size--
	return top, true
}

// Len reports the number of items.
func (l *Leftist[T]) Len() int { return l.size }

// Counts reports comparison usage.
func (l *Leftist[T]) Counts() Counts { return l.counts }
