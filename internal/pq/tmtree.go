package pq

// TMTree is the Tournament Merge tree of §VI: a priority queue dedicated to
// minimizing (secure) comparisons in road-network search.
//
//   - Batch pushing builds a tournament (winner) tree over the n pushed items
//     with the information-theoretic minimum of n−1 comparisons, then merges
//     it into the global structure with one comparison per merge.
//   - Scale-balanced merging maintains a list of sub-tournament-trees of
//     geometrically decreasing sizes (factor alpha); a new sub-tree merges
//     only with similarly sized sub-trees, bounding the overall height by
//     O(log |Q|) and hence the pop cost.
//   - A winner chain across the sub-trees tracks the global champion; chain
//     updates stop as soon as a competition leaves the winner unchanged.
type TMTree[T any] struct {
	less      LessFunc[T]
	alpha     int
	roots     []*tnode[T] // sub-tournament trees, size-descending
	chain     []*tnode[T] // chain[i] = winning leaf among roots[i:]
	size      int
	counts    Counts
	phase     *int64
	batchLess BatchLessFunc[T]
}

type tnode[T any] struct {
	item   T // valid at leaves
	left   *tnode[T]
	right  *tnode[T]
	winner *tnode[T] // winning leaf of the subtree (self for leaves)
	size   int
}

// NewTMTree creates an empty TM-tree with balance factor alpha (the paper
// uses alpha = 4). alpha must be > 1.
func NewTMTree[T any](less LessFunc[T], alpha int) *TMTree[T] {
	if alpha <= 1 {
		panic("pq: TM-tree balance factor must exceed 1")
	}
	t := &TMTree[T]{less: less, alpha: alpha}
	t.phase = &t.counts.Merge
	return t
}

// BatchLessFunc compares many independent pairs at once: result[i] reports
// whether pairs[i][0] has strictly higher priority than pairs[i][1]. Backed
// by Fed-SAC, this executes the whole set in one MPC protocol instance.
type BatchLessFunc[T any] func(pairs [][2]T) []bool

// SetBatchLess enables batched comparisons for the tournament build: the
// comparisons of one tournament level are independent, so a push batch of n
// items costs its n−1 comparisons in only ⌈log₂ n⌉ protocol round-trips.
// Merging and popping remain sequential (their comparisons are dependent).
func (q *TMTree[T]) SetBatchLess(f BatchLessFunc[T]) { q.batchLess = f }

// winnerLeaf decides the higher-priority of two leaves, charging one
// comparison to the current phase.
func (q *TMTree[T]) winnerLeaf(a, b *tnode[T]) *tnode[T] {
	*q.phase++
	if q.less(b.item, a.item) {
		return b
	}
	return a
}

// mergeNodes joins two tournament trees under a new winner node with exactly
// one comparison.
func (q *TMTree[T]) mergeNodes(a, b *tnode[T]) *tnode[T] {
	return &tnode[T]{
		left:   a,
		right:  b,
		winner: q.winnerLeaf(a.winner, b.winner),
		size:   a.size + b.size,
	}
}

// Push inserts a single item (a batch of one).
func (q *TMTree[T]) Push(item T) {
	q.PushBatch([]T{item})
}

// PushBatch inserts a group of items: tournament build (Build phase,
// len(items)−1 comparisons), then scale-balanced merging into the global
// list (Merge phase).
func (q *TMTree[T]) PushBatch(items []T) {
	if len(items) == 0 {
		return
	}
	q.counts.Pushes += int64(len(items))

	// Step 1 — build a sub-tournament-tree with the minimum comparisons.
	// With a batch comparator, each level's independent competitions run in
	// one batched protocol instance.
	level := make([]*tnode[T], len(items))
	for i, it := range items {
		leaf := &tnode[T]{item: it, size: 1}
		leaf.winner = leaf
		level[i] = leaf
	}
	q.phase = &q.counts.Build
	for len(level) > 1 {
		var next []*tnode[T]
		if q.batchLess != nil && len(level) >= 4 {
			pairs := make([][2]T, 0, len(level)/2)
			for i := 0; i+1 < len(level); i += 2 {
				pairs = append(pairs, [2]T{level[i+1].winner.item, level[i].winner.item})
			}
			res := q.batchLess(pairs)
			q.counts.Build += int64(len(pairs))
			for i := 0; i+1 < len(level); i += 2 {
				a, b := level[i], level[i+1]
				winner := a.winner
				if res[i/2] {
					winner = b.winner
				}
				next = append(next, &tnode[T]{left: a, right: b, winner: winner, size: a.size + b.size})
			}
		} else {
			for i := 0; i+1 < len(level); i += 2 {
				next = append(next, q.mergeNodes(level[i], level[i+1]))
			}
		}
		if len(level)%2 == 1 {
			next = append(next, level[len(level)-1])
		}
		level = next
	}
	t := level[0]

	// Step 2 — scale-balanced merging: repeatedly merge with the
	// closest-sized similar sub-tree, then slot into the size-descending
	// list.
	q.phase = &q.counts.Merge
	for {
		best, bestDiff := -1, 0
		for i, r := range q.roots {
			if t.size <= q.alpha*r.size && r.size <= q.alpha*t.size {
				diff := t.size - r.size
				if diff < 0 {
					diff = -diff
				}
				if best == -1 || diff < bestDiff {
					best, bestDiff = i, diff
				}
			}
		}
		if best == -1 {
			break
		}
		t = q.mergeNodes(t, q.roots[best])
		q.roots = append(q.roots[:best], q.roots[best+1:]...)
		q.chain = append(q.chain[:best], q.chain[best+1:]...)
	}
	pos := len(q.roots)
	for i, r := range q.roots {
		if r.size < t.size {
			pos = i
			break
		}
	}
	q.roots = append(q.roots, nil)
	copy(q.roots[pos+1:], q.roots[pos:])
	q.roots[pos] = t
	q.chain = append(q.chain, nil)
	copy(q.chain[pos+1:], q.chain[pos:])
	q.chain[pos] = nil

	// Step 3 — update the winner chain leftward from the insertion point,
	// stopping once a competition leaves the winner unchanged.
	q.updateChainFrom(pos)
	q.size += len(items)
}

// updateChainFrom recomputes chain[i], chain[i-1], ..., charging the current
// phase, with early termination when a chain value does not change.
func (q *TMTree[T]) updateChainFrom(i int) {
	for j := i; j >= 0; j-- {
		var nw *tnode[T]
		if j == len(q.roots)-1 {
			nw = q.roots[j].winner // rightmost: no competition needed
		} else {
			nw = q.winnerLeaf(q.roots[j].winner, q.chain[j+1])
		}
		old := q.chain[j]
		q.chain[j] = nw
		if j != i && nw == old {
			return
		}
	}
}

// removeWinner deletes the winning leaf from a tournament tree, replaying
// the competitions along the leaf-to-root path (one comparison per level).
// It returns the remaining tree, or nil when the tree had one leaf.
func (q *TMTree[T]) removeWinner(n *tnode[T]) *tnode[T] {
	if n.left == nil { // leaf
		return nil
	}
	child, sibling := n.left, n.right
	if n.right.winner == n.winner {
		child, sibling = n.right, n.left
	}
	rest := q.removeWinner(child)
	if rest == nil {
		return sibling // the sibling subtree is promoted, no comparison
	}
	n.left, n.right = rest, sibling
	n.size--
	n.winner = q.winnerLeaf(rest.winner, sibling.winner)
	return n
}

// Pop removes the global champion: locate its sub-tree (pointer equality,
// no comparisons), replay the path inside that sub-tree, then update the
// winner chain.
func (q *TMTree[T]) Pop() (T, bool) {
	var zero T
	if q.size == 0 {
		return zero, false
	}
	champion := q.chain[0]
	idx := -1
	for i, r := range q.roots {
		if r.winner == champion {
			idx = i
			break
		}
	}
	if idx == -1 {
		panic("pq: TM-tree winner chain corrupted")
	}
	q.phase = &q.counts.Pop
	rest := q.removeWinner(q.roots[idx])
	if rest == nil {
		q.roots = append(q.roots[:idx], q.roots[idx+1:]...)
		q.chain = append(q.chain[:idx], q.chain[idx+1:]...)
		idx--
	} else {
		q.roots[idx] = rest
	}
	// After removing the leftmost root (idx < 0) the shifted chain is already
	// correct: chain[j] still summarizes roots[j:]. Otherwise recompute from
	// the affected position leftward.
	if idx >= 0 && len(q.roots) > 0 {
		q.updateChainFrom(idx)
	}
	q.phase = &q.counts.Merge
	q.size--
	return champion.item, true
}

// Len reports the number of items.
func (q *TMTree[T]) Len() int { return q.size }

// Counts reports comparison usage.
func (q *TMTree[T]) Counts() Counts { return q.counts }

// NumSubTrees reports how many sub-tournament-trees the global list holds
// (bounded by O(log_alpha |Q|)); exposed for the balance tests.
func (q *TMTree[T]) NumSubTrees() int { return len(q.roots) }

// Height reports the maximum node depth over all sub-trees plus the chain
// length — the bound on pop comparisons. Exposed for the balance tests.
func (q *TMTree[T]) Height() int {
	max := 0
	for _, r := range q.roots {
		if h := treeHeight(r); h > max {
			max = h
		}
	}
	return max + len(q.roots)
}

func treeHeight[T any](n *tnode[T]) int {
	if n == nil || n.left == nil {
		return 0
	}
	lh, rh := treeHeight(n.left), treeHeight(n.right)
	if lh > rh {
		return lh + 1
	}
	return rh + 1
}
