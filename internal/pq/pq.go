// Package pq provides the priority queues compared in the paper's §VI and
// Fig. 12: a binary Heap (the classical baseline), a Leftist heap (batch
// insertion baseline), and the Tournament Merge tree (TM-tree) — the paper's
// comparison-optimized structure.
//
// All queues work over an opaque item type and a caller-supplied LessFunc;
// in federated search the LessFunc runs a Fed-SAC secure comparison, which is
// the dominant cost. Every queue therefore counts its comparisons, broken
// down by the phases Fig. 12 reports: building a sub-queue from a push batch,
// merging it into the global queue, and popping.
package pq

// LessFunc reports whether a has strictly higher priority (smaller cost)
// than b. It may execute an MPC protocol underneath.
type LessFunc[T any] func(a, b T) bool

// Counts breaks down comparison usage by operation phase, matching Fig. 12:
// Build (constructing a sub-queue from a batch), Merge (inserting the
// sub-queue into the global queue; for the plain heap, every push counts as
// a merge, as in the paper), and Pop. Pushes counts items pushed — the
// paper's lower bound line for the total comparisons.
type Counts struct {
	Build  int64
	Merge  int64
	Pop    int64
	Pushes int64
}

// Total returns all comparisons.
func (c Counts) Total() int64 { return c.Build + c.Merge + c.Pop }

// Add accumulates other into c.
func (c *Counts) Add(other Counts) {
	c.Build += other.Build
	c.Merge += other.Merge
	c.Pop += other.Pop
	c.Pushes += other.Pushes
}

// Queue is a min-priority queue with batch insertion.
type Queue[T any] interface {
	// Push inserts a single item.
	Push(item T)
	// PushBatch inserts a group of items (a vertex expansion's neighbors).
	PushBatch(items []T)
	// Pop removes and returns the highest-priority item. ok is false when
	// the queue is empty.
	Pop() (item T, ok bool)
	// Len reports the number of items in the queue.
	Len() int
	// Counts reports the comparison usage so far.
	Counts() Counts
}

// Kind names a queue implementation, for harness configuration.
type Kind string

const (
	KindHeap    Kind = "heap"
	KindLeftist Kind = "l-heap"
	KindTMTree  Kind = "tm-tree"
)

// New constructs a queue of the given kind. alpha is the TM-tree balance
// factor (ignored by the other kinds); the paper's experiments use alpha=4.
func New[T any](kind Kind, less LessFunc[T], alpha int) Queue[T] {
	switch kind {
	case KindHeap:
		return NewHeap(less)
	case KindLeftist:
		return NewLeftist(less)
	case KindTMTree:
		return NewTMTree(less, alpha)
	default:
		panic("pq: unknown queue kind " + string(kind))
	}
}
