package pq

import (
	"math/bits"
	"math/rand/v2"
	"sort"
	"testing"
	"testing/quick"
)

func intLess(a, b int) bool { return a < b }

var allKinds = []Kind{KindHeap, KindLeftist, KindTMTree}

func newQueue(kind Kind) Queue[int] { return New[int](kind, intLess, 4) }

func drain(q Queue[int]) []int {
	var out []int
	for {
		v, ok := q.Pop()
		if !ok {
			return out
		}
		out = append(out, v)
	}
}

func TestPopOrderSimple(t *testing.T) {
	for _, kind := range allKinds {
		q := newQueue(kind)
		q.PushBatch([]int{5, 1, 4, 2, 3})
		got := drain(q)
		want := []int{1, 2, 3, 4, 5}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%s: drained %v", kind, got)
			}
		}
		if q.Len() != 0 {
			t.Fatalf("%s: Len after drain = %d", kind, q.Len())
		}
	}
}

func TestEmptyPop(t *testing.T) {
	for _, kind := range allKinds {
		q := newQueue(kind)
		if _, ok := q.Pop(); ok {
			t.Fatalf("%s: pop on empty returned ok", kind)
		}
		q.Push(7)
		if v, ok := q.Pop(); !ok || v != 7 {
			t.Fatalf("%s: single push/pop got %d/%v", kind, v, ok)
		}
		if _, ok := q.Pop(); ok {
			t.Fatalf("%s: pop after drain returned ok", kind)
		}
	}
}

func TestPushBatchEmpty(t *testing.T) {
	for _, kind := range allKinds {
		q := newQueue(kind)
		q.PushBatch(nil)
		if q.Len() != 0 {
			t.Fatalf("%s: empty batch changed length", kind)
		}
	}
}

func TestDuplicatesAndNegatives(t *testing.T) {
	in := []int{3, -1, 3, 0, -1, 3, 2, 0}
	want := append([]int(nil), in...)
	sort.Ints(want)
	for _, kind := range allKinds {
		q := newQueue(kind)
		q.PushBatch(in)
		got := drain(q)
		if len(got) != len(want) {
			t.Fatalf("%s: drained %d items, want %d", kind, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%s: drained %v, want %v", kind, got, want)
			}
		}
	}
}

func TestRandomDrainMatchesSort(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 1))
	for _, kind := range allKinds {
		for trial := 0; trial < 20; trial++ {
			n := 1 + rng.IntN(300)
			in := make([]int, n)
			for i := range in {
				in[i] = rng.IntN(100)
			}
			q := newQueue(kind)
			// Push in random-sized batches, as road-network search does.
			for i := 0; i < n; {
				sz := 1 + rng.IntN(12)
				if i+sz > n {
					sz = n - i
				}
				q.PushBatch(in[i : i+sz])
				i += sz
			}
			got := drain(q)
			want := append([]int(nil), in...)
			sort.Ints(want)
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("%s trial %d: position %d: got %d want %d", kind, trial, i, got[i], want[i])
				}
			}
		}
	}
}

func TestInterleavedAgainstModel(t *testing.T) {
	rng := rand.New(rand.NewPCG(2, 2))
	for _, kind := range allKinds {
		q := newQueue(kind)
		var model []int // kept sorted
		for op := 0; op < 3000; op++ {
			if len(model) == 0 || rng.IntN(3) != 0 {
				sz := 1 + rng.IntN(8)
				batch := make([]int, sz)
				for i := range batch {
					batch[i] = rng.IntN(1000)
				}
				q.PushBatch(batch)
				model = append(model, batch...)
				sort.Ints(model)
			} else {
				v, ok := q.Pop()
				if !ok {
					t.Fatalf("%s: queue empty but model has %d items", kind, len(model))
				}
				if v != model[0] {
					t.Fatalf("%s op %d: popped %d, model says %d", kind, op, v, model[0])
				}
				model = model[1:]
			}
			if q.Len() != len(model) {
				t.Fatalf("%s: Len=%d, model=%d", kind, q.Len(), len(model))
			}
		}
	}
}

func TestQuickPropertyPopSorted(t *testing.T) {
	for _, kind := range allKinds {
		kind := kind
		f := func(in []int16) bool {
			q := newQueue(kind)
			for _, v := range in {
				q.Push(int(v))
			}
			prev := int(-1 << 30)
			for {
				v, ok := q.Pop()
				if !ok {
					break
				}
				if v < prev {
					return false
				}
				prev = v
			}
			return q.Len() == 0
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
	}
}

func TestHeapCountsAccounting(t *testing.T) {
	q := NewHeap(intLess)
	q.PushBatch([]int{9, 8, 7, 6, 5})
	c := q.Counts()
	if c.Pushes != 5 {
		t.Fatalf("pushes = %d", c.Pushes)
	}
	if c.Build != 0 {
		t.Fatal("heap must not use the Build phase")
	}
	if c.Merge == 0 {
		t.Fatal("heap pushes must be charged to Merge")
	}
	drain(q)
	if q.Counts().Pop == 0 {
		t.Fatal("heap pops must be charged to Pop")
	}
}

func TestLeftistBatchBuildIsLinear(t *testing.T) {
	// Build-phase comparisons for a batch of n must be < 2n (paper: the
	// bottom-up constant "can be up to 2").
	q := NewLeftist(intLess)
	rng := rand.New(rand.NewPCG(3, 3))
	batch := make([]int, 500)
	for i := range batch {
		batch[i] = rng.IntN(1000)
	}
	q.PushBatch(batch)
	c := q.Counts()
	if c.Build >= 2*int64(len(batch)) {
		t.Fatalf("leftist build used %d comparisons for %d items", c.Build, len(batch))
	}
	if c.Build == 0 {
		t.Fatal("leftist batch build must be charged to Build")
	}
}

func TestTMTreeBuildUsesMinimumComparisons(t *testing.T) {
	q := NewTMTree(intLess, 4)
	batches := [][]int{{4, 2, 7}, {1}, {9, 9, 3, 5, 0, 2}, {8, 6}}
	wantBuild := int64(0)
	for _, b := range batches {
		q.PushBatch(b)
		wantBuild += int64(len(b) - 1)
	}
	if c := q.Counts(); c.Build != wantBuild {
		t.Fatalf("tournament build used %d comparisons, minimum is %d", c.Build, wantBuild)
	}
}

func TestTMTreeAmortizedPushNearOne(t *testing.T) {
	// The headline property of Fig. 12: with batched pushes (neighbors of an
	// expanded vertex), total push-side comparisons approach #pushes while
	// the heap needs far more.
	rng := rand.New(rand.NewPCG(4, 4))
	tm := NewTMTree(intLess, 4)
	heap := NewHeap(intLess)
	for round := 0; round < 800; round++ {
		sz := 4 + rng.IntN(8)
		batch := make([]int, sz)
		for i := range batch {
			batch[i] = rng.IntN(1 << 20)
		}
		tm.PushBatch(batch)
		heap.PushBatch(batch)
		if round%3 == 0 {
			tm.Pop()
			heap.Pop()
		}
	}
	tc, hc := tm.Counts(), heap.Counts()
	tmPerPush := float64(tc.Build+tc.Merge) / float64(tc.Pushes)
	heapPerPush := float64(hc.Build+hc.Merge) / float64(hc.Pushes)
	if tmPerPush > 1.6 {
		t.Fatalf("TM-tree amortized push comparisons = %.2f, want near 1", tmPerPush)
	}
	if heapPerPush < 2*tmPerPush {
		t.Fatalf("heap (%.2f) should cost much more per push than TM-tree (%.2f)", heapPerPush, tmPerPush)
	}
}

func TestTMTreeBalanceInvariants(t *testing.T) {
	rng := rand.New(rand.NewPCG(5, 5))
	q := NewTMTree(intLess, 4)
	total := 0
	for round := 0; round < 500; round++ {
		sz := 1 + rng.IntN(10)
		batch := make([]int, sz)
		for i := range batch {
			batch[i] = rng.IntN(1 << 20)
		}
		q.PushBatch(batch)
		total += sz
		if round%4 == 0 {
			if _, ok := q.Pop(); ok {
				total--
			}
		}
	}
	if q.Len() != total {
		t.Fatalf("size drifted: %d vs %d", q.Len(), total)
	}
	logQ := bits.Len(uint(q.Len()))
	if st := q.NumSubTrees(); st > 4*logQ {
		t.Fatalf("sub-tree count %d exceeds O(log |Q|) = %d", st, logQ)
	}
	if h := q.Height(); h > 8*logQ {
		t.Fatalf("height %d exceeds O(log |Q|) bound (log=%d)", h, logQ)
	}
}

func TestTMTreePopCostLogarithmic(t *testing.T) {
	rng := rand.New(rand.NewPCG(6, 6))
	q := NewTMTree(intLess, 4)
	const n = 4096
	for i := 0; i < n/8; i++ {
		batch := make([]int, 8)
		for j := range batch {
			batch[j] = rng.IntN(1 << 20)
		}
		q.PushBatch(batch)
	}
	before := q.Counts().Pop
	const pops = 512
	for i := 0; i < pops; i++ {
		q.Pop()
	}
	perPop := float64(q.Counts().Pop-before) / pops
	if perPop > 3*float64(bits.Len(n)) {
		t.Fatalf("TM-tree pop used %.1f comparisons on average for |Q|=%d", perPop, n)
	}
}

func TestCountsTotalAndAdd(t *testing.T) {
	c := Counts{Build: 1, Merge: 2, Pop: 3, Pushes: 4}
	if c.Total() != 6 {
		t.Fatalf("Total = %d", c.Total())
	}
	var acc Counts
	acc.Add(c)
	acc.Add(c)
	if acc.Build != 2 || acc.Pushes != 8 {
		t.Fatalf("Add wrong: %+v", acc)
	}
}

func TestFactory(t *testing.T) {
	for _, kind := range allKinds {
		q := New[int](kind, intLess, 4)
		q.Push(1)
		if v, ok := q.Pop(); !ok || v != 1 {
			t.Fatalf("%s: factory queue broken", kind)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("unknown kind must panic")
		}
	}()
	New[int](Kind("nope"), intLess, 4)
}

func TestTMTreeRejectsBadAlpha(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("alpha=1 must panic")
		}
	}()
	NewTMTree(intLess, 1)
}

func TestAllQueuesCountPushes(t *testing.T) {
	for _, kind := range allKinds {
		q := newQueue(kind)
		q.PushBatch([]int{1, 2, 3})
		q.Push(4)
		if c := q.Counts(); c.Pushes != 4 {
			t.Fatalf("%s: pushes = %d, want 4", kind, c.Pushes)
		}
	}
}
