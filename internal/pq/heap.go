package pq

// Heap is a classical binary min-heap. Items are inserted one at a time with
// sift-up; following the paper's Fig. 12 accounting, push comparisons are
// counted in the Merge phase ("considering every push in the Heap as a
// merge") and pop comparisons in the Pop phase.
type Heap[T any] struct {
	less   LessFunc[T]
	items  []T
	counts Counts
}

// NewHeap creates an empty binary heap.
func NewHeap[T any](less LessFunc[T]) *Heap[T] {
	return &Heap[T]{less: less}
}

// Push inserts one item with sift-up.
func (h *Heap[T]) Push(item T) {
	h.counts.Pushes++
	h.items = append(h.items, item)
	i := len(h.items) - 1
	for i > 0 {
		parent := (i - 1) / 2
		h.counts.Merge++
		if !h.less(h.items[i], h.items[parent]) {
			break
		}
		h.items[i], h.items[parent] = h.items[parent], h.items[i]
		i = parent
	}
}

// PushBatch inserts items one by one (the heap has no batch mechanism).
func (h *Heap[T]) PushBatch(items []T) {
	for _, it := range items {
		h.Push(it)
	}
}

// Pop removes the minimum with sift-down.
func (h *Heap[T]) Pop() (T, bool) {
	var zero T
	if len(h.items) == 0 {
		return zero, false
	}
	top := h.items[0]
	n := len(h.items) - 1
	h.items[0] = h.items[n]
	h.items[n] = zero
	h.items = h.items[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		if l >= n {
			break
		}
		child := l
		if r < n {
			h.counts.Pop++
			if h.less(h.items[r], h.items[l]) {
				child = r
			}
		}
		h.counts.Pop++
		if !h.less(h.items[child], h.items[i]) {
			break
		}
		h.items[i], h.items[child] = h.items[child], h.items[i]
		i = child
	}
	return top, true
}

// Len reports the number of items.
func (h *Heap[T]) Len() int { return len(h.items) }

// Counts reports comparison usage.
func (h *Heap[T]) Counts() Counts { return h.counts }
