package pq

import (
	"math/rand/v2"
	"testing"
)

// batchedPair returns two TM-trees over the same comparator, one with the
// batched tournament build enabled. Both count comparisons identically, so
// any divergence in winners or Build counts is a batching bug.
func batchedPair() (seq, bat *TMTree[int]) {
	seq = NewTMTree[int](intLess, 4)
	bat = NewTMTree[int](intLess, 4)
	bat.SetBatchLess(func(pairs [][2]int) []bool {
		res := make([]bool, len(pairs))
		for i, p := range pairs {
			res[i] = intLess(p[0], p[1])
		}
		return res
	})
	return seq, bat
}

func TestTMTreeBatchedBuildEquivalence(t *testing.T) {
	// Randomized batch sizes with plenty of duplicates, interleaved with
	// pops: the batched tournament build must produce the same winners (same
	// pop sequence) and charge the same Build comparisons as the sequential
	// build it replaces.
	rng := rand.New(rand.NewPCG(41, 0))
	seq, bat := batchedPair()
	live := 0
	for step := 0; step < 120; step++ {
		if live > 0 && rng.IntN(3) == 0 {
			pops := 1 + rng.IntN(live)
			for i := 0; i < pops; i++ {
				a, aok := seq.Pop()
				b, bok := bat.Pop()
				if aok != bok || a != b {
					t.Fatalf("step %d pop %d: sequential %d/%v vs batched %d/%v",
						step, i, a, aok, b, bok)
				}
			}
			live -= pops
			continue
		}
		k := 1 + rng.IntN(50)
		batch := make([]int, k)
		for i := range batch {
			batch[i] = rng.IntN(40) // small range: duplicates are common
		}
		seq.PushBatch(batch)
		bat.PushBatch(batch)
		live += k
		if sc, bc := seq.Counts().Build, bat.Counts().Build; sc != bc {
			t.Fatalf("step %d: Build comparisons diverged: sequential %d, batched %d", step, sc, bc)
		}
		if seq.Len() != bat.Len() {
			t.Fatalf("step %d: Len %d vs %d", step, seq.Len(), bat.Len())
		}
	}

	// Drain both and compare the full remaining order.
	for {
		a, aok := seq.Pop()
		b, bok := bat.Pop()
		if aok != bok || a != b {
			t.Fatalf("drain: sequential %d/%v vs batched %d/%v", a, aok, b, bok)
		}
		if !aok {
			break
		}
	}
	if seq.Counts().Build != bat.Counts().Build {
		t.Fatalf("final Build comparisons: sequential %d, batched %d",
			seq.Counts().Build, bat.Counts().Build)
	}
}

func TestTMTreeBatchedBuildMinimalComparisons(t *testing.T) {
	// One batch of k items must cost exactly k-1 Build comparisons on both
	// paths (the batched path must not pad odd levels with extra pairs).
	for _, k := range []int{1, 2, 3, 4, 5, 7, 8, 15, 16, 33, 100} {
		seq, bat := batchedPair()
		batch := make([]int, k)
		for i := range batch {
			batch[i] = (i * 137) % 29
		}
		seq.PushBatch(batch)
		bat.PushBatch(batch)
		want := int64(k - 1)
		if got := seq.Counts().Build; got != want {
			t.Fatalf("k=%d: sequential Build = %d, want %d", k, got, want)
		}
		if got := bat.Counts().Build; got != want {
			t.Fatalf("k=%d: batched Build = %d, want %d", k, got, want)
		}
		if a, aok := seq.Pop(); aok {
			if b, bok := bat.Pop(); !bok || a != b {
				t.Fatalf("k=%d: champions differ: %d vs %d", k, a, b)
			}
		}
	}
}
