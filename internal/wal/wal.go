// Package wal is a minimal crash-tolerant write-ahead log plus an atomic
// snapshot writer — the durability layer under fedserver's -persist mode. A
// crash today costs a multi-minute MPC index rebuild; with a snapshot and a
// delta log it costs a file read and a handful of partial index updates.
//
// The log is a flat sequence of length-and-CRC framed records:
//
//	[u32 payload length][u32 CRC-32 (IEEE) of payload][payload bytes]
//
// Replay trusts exactly the prefix that frames and checksums correctly: a
// record cut off mid-write by a crash (short header, short payload, or a CRC
// mismatch) ends the replay cleanly at the last good offset instead of
// failing it — the torn tail is the expected crash artifact, and callers
// truncate to the good offset before appending again. Anything the framing
// accepts but the caller's decoder rejects is real corruption and does fail.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
)

// MaxRecord bounds a single record's payload. A corrupt length prefix must
// not become a multi-gigabyte allocation; any plausible traffic-delta batch
// is far below this.
const MaxRecord = 64 << 20

// WAL is an append-only log handle. Appends are synchronous (fsync per
// record): a record that Append returned nil for survives a crash.
type WAL struct {
	f *os.File
}

// Open opens (creating if absent) the log at path for appending. The caller
// must have replayed and truncated any torn tail first — see Replay — or the
// new records would land after garbage.
func Open(path string) (*WAL, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	return &WAL{f: f}, nil
}

// Append durably writes one record.
func (w *WAL) Append(payload []byte) error {
	if len(payload) > MaxRecord {
		return fmt.Errorf("wal: record of %d bytes exceeds MaxRecord", len(payload))
	}
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.ChecksumIEEE(payload))
	// A single Write keeps the header and payload in one syscall; a crash
	// mid-write leaves a short tail, which Replay discards.
	buf := append(hdr[:], payload...)
	if _, err := w.f.Write(buf); err != nil {
		return fmt.Errorf("wal: append: %w", err)
	}
	if err := w.f.Sync(); err != nil {
		return fmt.Errorf("wal: sync: %w", err)
	}
	return nil
}

// Reset empties the log — called right after a snapshot supersedes every
// logged delta.
func (w *WAL) Reset() error {
	if err := w.f.Truncate(0); err != nil {
		return fmt.Errorf("wal: reset: %w", err)
	}
	if _, err := w.f.Seek(0, io.SeekStart); err != nil {
		return fmt.Errorf("wal: reset: %w", err)
	}
	return w.f.Sync()
}

// Close closes the log file.
func (w *WAL) Close() error { return w.f.Close() }

// Replay streams every intact record of the log at path through fn, in
// order. It returns the record count, the byte offset just past the last
// intact record, and whether a torn tail was discarded (truncated=true means
// the file holds bytes past goodOffset that do not frame or checksum — the
// normal artifact of a crash mid-append; callers should os.Truncate the
// file to goodOffset before reopening it for appends). A missing file is an
// empty log. An error from fn aborts the replay and is returned as a hard
// error: framing-valid records that fail to decode are corruption, not a
// crash artifact.
func Replay(path string, fn func(payload []byte) error) (n int, goodOffset int64, truncated bool, err error) {
	f, err := os.Open(path)
	if errors.Is(err, os.ErrNotExist) {
		return 0, 0, false, nil
	}
	if err != nil {
		return 0, 0, false, fmt.Errorf("wal: %w", err)
	}
	defer f.Close()
	var off int64
	var hdr [8]byte
	for {
		if _, rerr := io.ReadFull(f, hdr[:]); rerr != nil {
			// Clean EOF at a record boundary ends the log; a partial header
			// is a torn tail.
			return n, off, !errors.Is(rerr, io.EOF), nil
		}
		length := binary.LittleEndian.Uint32(hdr[0:4])
		sum := binary.LittleEndian.Uint32(hdr[4:8])
		if length > MaxRecord {
			// A length the writer could never have produced: treat as a torn
			// tail rather than allocating by it.
			return n, off, true, nil
		}
		payload := make([]byte, length)
		if _, rerr := io.ReadFull(f, payload); rerr != nil {
			return n, off, true, nil
		}
		if crc32.ChecksumIEEE(payload) != sum {
			return n, off, true, nil
		}
		if ferr := fn(payload); ferr != nil {
			return n, off, false, fmt.Errorf("wal: record %d: %w", n, ferr)
		}
		n++
		off += int64(8 + len(payload))
	}
}

// WriteFileAtomic writes a file via write-to-temp, fsync, rename — the
// snapshot discipline: readers only ever observe the previous complete file
// or the new complete file, never a half-written one.
func WriteFileAtomic(path string, write func(io.Writer) error) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return fmt.Errorf("wal: atomic write: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if err := write(tmp); err != nil {
		tmp.Close()
		return fmt.Errorf("wal: atomic write: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("wal: atomic write: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("wal: atomic write: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("wal: atomic write: %w", err)
	}
	// Make the rename itself durable.
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
	return nil
}
