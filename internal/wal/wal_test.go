package wal

import (
	"bytes"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"testing"
)

func replayAll(t *testing.T, path string) (recs [][]byte, goodOff int64, truncated bool) {
	t.Helper()
	n, off, trunc, err := Replay(path, func(p []byte) error {
		recs = append(recs, append([]byte(nil), p...))
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if n != len(recs) {
		t.Fatalf("Replay reported %d records, delivered %d", n, len(recs))
	}
	return recs, off, trunc
}

func TestAppendReplayRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "t.wal")
	w, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	want := [][]byte{[]byte("one"), []byte(""), bytes.Repeat([]byte{0xab}, 4096)}
	for _, p := range want {
		if err := w.Append(p); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	got, _, truncated := replayAll(t, path)
	if truncated {
		t.Fatal("clean log reported truncated")
	}
	if len(got) != len(want) {
		t.Fatalf("%d records, want %d", len(got), len(want))
	}
	for i := range want {
		if !bytes.Equal(got[i], want[i]) {
			t.Fatalf("record %d mismatch", i)
		}
	}
}

func TestReplayMissingFileIsEmpty(t *testing.T) {
	recs, off, truncated := replayAll(t, filepath.Join(t.TempDir(), "absent.wal"))
	if len(recs) != 0 || off != 0 || truncated {
		t.Fatalf("missing file: %d recs, off %d, truncated %v", len(recs), off, truncated)
	}
}

// TestTornTail simulates a crash mid-append at every possible cut point of
// the final record: replay must return exactly the intact prefix with
// truncated=true, and truncating to goodOffset must let appends resume.
func TestTornTail(t *testing.T) {
	dir := t.TempDir()
	full := filepath.Join(dir, "full.wal")
	w, err := Open(full)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append([]byte("first record")); err != nil {
		t.Fatal(err)
	}
	goodLen := int64(8 + len("first record"))
	if err := w.Append([]byte("second record, to be torn")); err != nil {
		t.Fatal(err)
	}
	w.Close()
	data, err := os.ReadFile(full)
	if err != nil {
		t.Fatal(err)
	}
	for cut := goodLen + 1; cut < int64(len(data)); cut++ {
		path := filepath.Join(dir, fmt.Sprintf("cut%d.wal", cut))
		if err := os.WriteFile(path, data[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		recs, off, truncated := replayAll(t, path)
		if len(recs) != 1 || string(recs[0]) != "first record" {
			t.Fatalf("cut %d: got %d records", cut, len(recs))
		}
		if !truncated {
			t.Fatalf("cut %d: torn tail not reported", cut)
		}
		if off != goodLen {
			t.Fatalf("cut %d: goodOffset %d, want %d", cut, off, goodLen)
		}
		// Recovery: truncate and append again.
		if err := os.Truncate(path, off); err != nil {
			t.Fatal(err)
		}
		w2, err := Open(path)
		if err != nil {
			t.Fatal(err)
		}
		if err := w2.Append([]byte("recovered")); err != nil {
			t.Fatal(err)
		}
		w2.Close()
		recs, _, truncated = replayAll(t, path)
		if truncated || len(recs) != 2 || string(recs[1]) != "recovered" {
			t.Fatalf("cut %d after recovery: %d records, truncated %v", cut, len(recs), truncated)
		}
	}
}

func TestCorruptCRCStopsReplay(t *testing.T) {
	path := filepath.Join(t.TempDir(), "t.wal")
	w, _ := Open(path)
	w.Append([]byte("good"))
	w.Append([]byte("flipped"))
	w.Close()
	data, _ := os.ReadFile(path)
	data[len(data)-1] ^= 0xff // corrupt last payload byte
	os.WriteFile(path, data, 0o644)
	recs, off, truncated := replayAll(t, path)
	if len(recs) != 1 || !truncated {
		t.Fatalf("%d records, truncated %v", len(recs), truncated)
	}
	if off != int64(8+len("good")) {
		t.Fatalf("goodOffset %d", off)
	}
}

func TestImplausibleLengthIsTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "t.wal")
	w, _ := Open(path)
	w.Append([]byte("ok"))
	w.Close()
	f, _ := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	// Header claiming a 3GiB record: must end replay, not allocate.
	f.Write([]byte{0xff, 0xff, 0xff, 0xbf, 0, 0, 0, 0})
	f.Close()
	recs, _, truncated := replayAll(t, path)
	if len(recs) != 1 || !truncated {
		t.Fatalf("%d records, truncated %v", len(recs), truncated)
	}
}

func TestDecoderErrorIsHard(t *testing.T) {
	path := filepath.Join(t.TempDir(), "t.wal")
	w, _ := Open(path)
	w.Append([]byte("valid framing, broken content"))
	w.Close()
	_, _, _, err := Replay(path, func([]byte) error { return fmt.Errorf("decode failed") })
	if err == nil {
		t.Fatal("decoder error swallowed — framing-valid garbage must fail replay")
	}
}

func TestAppendRejectsOversizedRecord(t *testing.T) {
	path := filepath.Join(t.TempDir(), "t.wal")
	w, _ := Open(path)
	defer w.Close()
	if err := w.Append(make([]byte, MaxRecord+1)); err == nil {
		t.Fatal("oversized record accepted")
	}
}

func TestReset(t *testing.T) {
	path := filepath.Join(t.TempDir(), "t.wal")
	w, _ := Open(path)
	w.Append([]byte("pre-snapshot"))
	if err := w.Reset(); err != nil {
		t.Fatal(err)
	}
	w.Append([]byte("post-snapshot"))
	w.Close()
	recs, _, _ := replayAll(t, path)
	if len(recs) != 1 || string(recs[0]) != "post-snapshot" {
		t.Fatalf("after reset: %q", recs)
	}
}

func TestWriteFileAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "snap")
	if err := WriteFileAtomic(path, func(w io.Writer) error {
		_, err := w.Write([]byte("v1"))
		return err
	}); err != nil {
		t.Fatal(err)
	}
	// A failed write must leave the previous file untouched and no temp
	// droppings behind.
	if err := WriteFileAtomic(path, func(w io.Writer) error {
		w.Write([]byte("half"))
		return fmt.Errorf("simulated crash")
	}); err == nil {
		t.Fatal("write error swallowed")
	}
	data, err := os.ReadFile(path)
	if err != nil || string(data) != "v1" {
		t.Fatalf("previous file damaged: %q, %v", data, err)
	}
	entries, _ := os.ReadDir(dir)
	if len(entries) != 1 {
		t.Fatalf("temp files left behind: %v", entries)
	}
}
