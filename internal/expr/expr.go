// Package expr is the experiment harness: it regenerates every table and
// figure of the paper's evaluation (§VIII) — Fig. 1 (traffic data volume),
// Table I (datasets), Fig. 7/8 (query time and communication vs hops),
// Fig. 9 (silo scalability), Table II (index construction & update),
// Fig. 10 (cost ∝ Fed-SAC), Fig. 11 (lower-bound accuracy) and Fig. 12
// (priority-queue comparisons).
//
// Each experiment has a Run method returning typed rows plus a Print method
// producing the table the paper reports. The Config lets tests run the same
// code on tiny instances while cmd/fedbench runs the full scale.
package expr

import (
	"fmt"
	"io"
	"math"
	"math/rand/v2"
	"os"
	"text/tabwriter"
	"time"

	"repro/internal/ch"
	"repro/internal/core"
	"repro/internal/fed"
	"repro/internal/graph"
	"repro/internal/lb"
	"repro/internal/mpc"
	"repro/internal/traffic"
)

// Config scales the harness. Zero values select the paper's defaults.
type Config struct {
	Datasets        []string      // nil = CAL-S, BJ-S, FLA-S
	Silos           int           // default 3 (paper's default federation)
	Level           traffic.Level // default Moderate
	QueriesPerGroup int           // default 20
	NumGroups       int           // default 5
	Landmarks       int           // default 32
	Seed            uint64        // default 1
	Mode            mpc.Mode      // default ModeIdeal (exact cost accounting)
	Net             mpc.NetworkModel
	MaxVertices     int              // 0 = full scale; tests pass a small cap
	External        *ExternalDataset // pre-loaded network injected under its own name
	Out             io.Writer        // default os.Stdout
}

// ExternalDataset injects a pre-loaded road network — typically a DIMACS
// import loaded from a binary snapshot — into the harness under the given
// name, so imported networks bench alongside the synthetic datasets. The
// graph is used as-is: MaxVertices does not apply to it.
type ExternalDataset struct {
	Name string
	G    *graph.Graph
	W0   graph.Weights
}

func (c Config) withDefaults() Config {
	if c.Datasets == nil {
		c.Datasets = []string{"CAL-S", "BJ-S", "FLA-S"}
	}
	if c.Silos == 0 {
		c.Silos = 3
	}
	if c.Level.Name == "" {
		c.Level = traffic.Moderate
	}
	if c.QueriesPerGroup == 0 {
		c.QueriesPerGroup = 20
	}
	if c.NumGroups == 0 {
		c.NumGroups = 5
	}
	if c.Landmarks == 0 {
		c.Landmarks = 32
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Net.Bandwidth == 0 {
		c.Net = mpc.DefaultLAN()
	}
	if c.Out == nil {
		c.Out = os.Stdout
	}
	return c
}

// Harness caches per-dataset environments across experiments.
type Harness struct {
	cfg  Config
	envs map[string]*Env
}

// New creates a harness.
func New(cfg Config) *Harness {
	return &Harness{cfg: cfg.withDefaults(), envs: make(map[string]*Env)}
}

// Config returns the effective (defaulted) configuration.
func (h *Harness) Config() Config { return h.cfg }

// Env is a fully materialized evaluation environment for one dataset: the
// federation, the WJRN ground truth, the federated shortcut index and the
// landmark matrices.
type Env struct {
	Spec      graph.DatasetSpec
	G         *graph.Graph
	W0        graph.Weights
	Fed       *fed.Federation
	Joint     graph.Weights
	Index     *ch.Index
	LM        *lb.Landmarks
	BuildTime time.Duration
}

// generate materializes a dataset topology, honoring the MaxVertices cap.
func (h *Harness) generate(name string) (*graph.Graph, graph.Weights, graph.DatasetSpec) {
	if ext := h.cfg.External; ext != nil && ext.Name == name {
		spec := graph.DatasetSpec{
			Name:      name,
			Region:    "external",
			Vertices:  ext.G.NumVertices(),
			Generator: "external",
			Seed:      1,
		}
		return ext.G, ext.W0, spec
	}
	spec := specFor(name)
	if h.cfg.MaxVertices > 0 && spec.Vertices > h.cfg.MaxVertices {
		spec.Vertices = h.cfg.MaxVertices
	}
	var g *graph.Graph
	var w0 graph.Weights
	switch spec.Generator {
	case "grid":
		side := int(math.Round(math.Sqrt(float64(spec.Vertices))))
		g, w0 = graph.GenerateGrid(side, side, spec.Seed)
	default:
		g, w0 = graph.GenerateRoadLike(spec.Vertices, spec.Seed)
	}
	return g, w0, spec
}

func specFor(name string) graph.DatasetSpec {
	for _, s := range graph.Datasets() {
		if s.Name == name {
			return s
		}
	}
	panic(fmt.Sprintf("expr: unknown dataset %q", name))
}

// Env returns (building on first use) the environment for a dataset at the
// configured silo count.
func (h *Harness) Env(name string) (*Env, error) {
	return h.envFor(name, h.cfg.Silos, "")
}

// envFor builds an environment keyed by dataset, silo count and an arbitrary
// tag (experiments that mutate the environment use their own tag).
func (h *Harness) envFor(name string, silos int, tag string) (*Env, error) {
	key := fmt.Sprintf("%s/%d/%s", name, silos, tag)
	if env, ok := h.envs[key]; ok {
		return env, nil
	}
	g, w0, spec := h.generate(name)
	sets := traffic.SiloWeights(w0, silos, h.cfg.Level, h.cfg.Seed+spec.Seed)
	f, err := fed.New(g, w0, sets, mpc.Params{Mode: h.cfg.Mode, Seed: h.cfg.Seed, Net: h.cfg.Net})
	if err != nil {
		return nil, err
	}
	start := time.Now()
	idx, err := ch.Build(f)
	if err != nil {
		return nil, err
	}
	env := &Env{
		Spec:      spec,
		G:         g,
		W0:        w0,
		Fed:       f,
		Joint:     f.JointWeights(),
		Index:     idx,
		BuildTime: time.Since(start),
	}
	k := h.cfg.Landmarks
	if k > g.NumVertices()/2 {
		k = g.NumVertices() / 2
	}
	env.LM = lb.PrecomputeLandmarks(f, lb.SelectLandmarks(g, w0, k, h.cfg.Seed), 0)
	h.envs[key] = env
	return env, nil
}

// Query is one SPSP query with its hop count on the static graph G0.
type Query struct {
	S, T graph.Vertex
	Hops int
}

// HopGroup is a set of queries whose static shortest paths have hop counts
// within [Lo, Hi) — the paper's query-scale grouping.
type HopGroup struct {
	Lo, Hi  int
	Queries []Query
}

// Label renders the group's hop interval.
func (g HopGroup) Label() string { return fmt.Sprintf("%d-%d", g.Lo, g.Hi) }

// QueryGroups samples queries grouped by hop count, as §VIII-A describes:
// random vertex pairs divided into NumGroups intervals of the number of road
// segments on the static shortest path. Interval boundaries derive from the
// dataset's hop diameter so the same code covers every scale.
func (h *Harness) QueryGroups(env *Env) []HopGroup {
	rng := rand.New(rand.NewPCG(h.cfg.Seed*77, env.Spec.Seed))
	n := env.G.NumVertices()

	// Estimate the hop diameter from a few random sources.
	maxDepth := 0
	for i := 0; i < 4; i++ {
		s := graph.Vertex(rng.IntN(n))
		depth := hopDepths(env.G, env.W0, s)
		for _, d := range depth {
			if d > maxDepth && d < 1<<30 {
				maxDepth = d
			}
		}
	}
	hi := maxDepth * 8 / 10
	if hi < h.cfg.NumGroups {
		hi = h.cfg.NumGroups
	}
	step := hi / h.cfg.NumGroups
	if step < 1 {
		step = 1
	}
	groups := make([]HopGroup, h.cfg.NumGroups)
	for i := range groups {
		groups[i] = HopGroup{Lo: i * step, Hi: (i + 1) * step}
	}

	need := h.cfg.QueriesPerGroup
	for attempts := 0; attempts < 200; attempts++ {
		full := true
		for _, g := range groups {
			if len(g.Queries) < need {
				full = false
			}
		}
		if full {
			break
		}
		s := graph.Vertex(rng.IntN(n))
		depth := hopDepths(env.G, env.W0, s)
		// Bucket targets per group and draw one per unfilled group.
		for gi := range groups {
			if len(groups[gi].Queries) >= need {
				continue
			}
			var cands []graph.Vertex
			for v, d := range depth {
				if graph.Vertex(v) != s && d >= groups[gi].Lo && d < groups[gi].Hi {
					cands = append(cands, graph.Vertex(v))
				}
			}
			if len(cands) > 0 {
				t := cands[rng.IntN(len(cands))]
				groups[gi].Queries = append(groups[gi].Queries, Query{S: s, T: t, Hops: depth[t]})
			}
		}
	}
	return groups
}

// hopDepths returns per-vertex hop counts of static shortest paths from s.
func hopDepths(g *graph.Graph, w0 graph.Weights, s graph.Vertex) []int {
	res := graph.Dijkstra(g, w0, s)
	depth := make([]int, g.NumVertices())
	order := make([]graph.Vertex, g.NumVertices())
	for v := range order {
		order[v] = graph.Vertex(v)
		depth[v] = 1 << 30
	}
	// Vertices in ascending distance: parents resolved before children.
	sortByDist(order, res.Dist)
	depth[s] = 0
	for _, v := range order {
		if v == s || res.Dist[v] >= graph.InfCost {
			continue
		}
		depth[v] = depth[res.Parent[v]] + 1
	}
	return depth
}

func sortByDist(order []graph.Vertex, dist []int64) {
	// Simple sort; n log n on vertex count.
	quickSortVerts(order, dist, 0, len(order)-1)
}

func quickSortVerts(order []graph.Vertex, dist []int64, lo, hi int) {
	for lo < hi {
		p := dist[order[(lo+hi)/2]]
		i, j := lo, hi
		for i <= j {
			for dist[order[i]] < p {
				i++
			}
			for dist[order[j]] > p {
				j--
			}
			if i <= j {
				order[i], order[j] = order[j], order[i]
				i++
				j--
			}
		}
		if j-lo < hi-i {
			quickSortVerts(order, dist, lo, j)
			lo = i
		} else {
			quickSortVerts(order, dist, i, hi)
			hi = j
		}
	}
}

// Method is one of the comparative baselines of §VIII-B.
type Method struct {
	Name    string
	Options func(env *Env) core.Options
}

// Methods returns the paper's six baselines in its order.
func Methods() []Method {
	return []Method{
		{"Naive-Dijk", func(env *Env) core.Options {
			return core.Options{}
		}},
		{"+Fed-Shortcut", func(env *Env) core.Options {
			return core.Options{Index: env.Index}
		}},
		{"+Fed-ALT-Max", func(env *Env) core.Options {
			return core.Options{Index: env.Index, Estimator: lb.FedALTMax, Landmarks: env.LM}
		}},
		{"+Fed-AMPS", func(env *Env) core.Options {
			return core.Options{Index: env.Index, Estimator: lb.FedAMPS}
		}},
		{"+TM-tree", func(env *Env) core.Options {
			return core.Options{Index: env.Index, Estimator: lb.FedAMPS, Queue: "tm-tree"}
		}},
		{"Naive-Dijk+TM-tree", func(env *Env) core.Options {
			return core.Options{Queue: "tm-tree"}
		}},
	}
}

// tab returns a tabwriter on the configured output.
func (h *Harness) tab() *tabwriter.Writer {
	return tabwriter.NewWriter(h.cfg.Out, 2, 4, 2, ' ', 0)
}

func (h *Harness) printf(format string, args ...interface{}) {
	fmt.Fprintf(h.cfg.Out, format, args...)
}

// fmtDuration renders durations compactly for tables.
func fmtDuration(d time.Duration) string {
	switch {
	case d >= time.Second:
		return fmt.Sprintf("%.2fs", d.Seconds())
	case d >= time.Millisecond:
		return fmt.Sprintf("%.1fms", float64(d.Microseconds())/1000)
	default:
		return fmt.Sprintf("%dµs", d.Microseconds())
	}
}

// fmtBytes renders byte counts compactly.
func fmtBytes(b int64) string {
	switch {
	case b >= 1<<20:
		return fmt.Sprintf("%.1fMB", float64(b)/(1<<20))
	case b >= 1<<10:
		return fmt.Sprintf("%.1fKB", float64(b)/(1<<10))
	default:
		return fmt.Sprintf("%dB", b)
	}
}
