package expr

import (
	"math/rand/v2"
	"strconv"
	"time"

	"repro/internal/graph"
	"repro/internal/traffic"
)

// Tab1Row describes one dataset (paper Table I, extended with this repo's
// scaled stand-in sizes).
type Tab1Row struct {
	Name      string
	Region    string
	PaperV    int
	PaperE    int
	Vertices  int
	Arcs      int
	Shortcuts int
}

// RunTab1 materializes the configured datasets and reports their sizes.
func (h *Harness) RunTab1() ([]Tab1Row, error) {
	var rows []Tab1Row
	for _, ds := range h.cfg.Datasets {
		env, err := h.Env(ds)
		if err != nil {
			return nil, err
		}
		rows = append(rows, Tab1Row{
			Name:      env.Spec.Name,
			Region:    env.Spec.Region,
			PaperV:    env.Spec.PaperV,
			PaperE:    env.Spec.PaperE,
			Vertices:  env.G.NumVertices(),
			Arcs:      env.G.NumArcs(),
			Shortcuts: env.Index.NumShortcuts(),
		})
	}
	return rows, nil
}

// PrintTab1 renders the dataset table.
func (h *Harness) PrintTab1(rows []Tab1Row) {
	h.printf("\n== Table I: datasets (scaled stand-ins for the paper's networks) ==\n")
	w := h.tab()
	w.Write([]byte("dataset\tregion\tpaper #V\tpaper #E\tours #V\tours #arcs\tshortcuts\n"))
	for _, r := range rows {
		w.Write([]byte(r.Name + "\t" + r.Region + "\t" +
			strconv.Itoa(r.PaperV) + "\t" + strconv.Itoa(r.PaperE) + "\t" +
			strconv.Itoa(r.Vertices) + "\t" + strconv.Itoa(r.Arcs) + "\t" +
			strconv.Itoa(r.Shortcuts) + "\n"))
	}
	w.Flush()
}

// Tab2Row is one dataset row of Table II: construction time plus update
// times for several changed-edge percentages. Times combine measured local
// computation with the simulated MPC network time of the secure comparisons
// consumed.
type Tab2Row struct {
	Dataset      string
	Construction time.Duration
	Updates      map[float64]time.Duration // percentage -> time
	UpdateSAC    map[float64]int64         // percentage -> Fed-SAC count
}

// Tab2Percentages are the paper's changed-edge percentages.
var Tab2Percentages = []float64{0.1, 1, 10}

// RunTab2 measures federated index construction and dynamic partial update
// times (paper Table II). Each percentage runs against a fresh environment
// so update costs are independent.
func (h *Harness) RunTab2() ([]Tab2Row, error) {
	var rows []Tab2Row
	for _, ds := range h.cfg.Datasets {
		row := Tab2Row{
			Dataset:   ds,
			Updates:   make(map[float64]time.Duration),
			UpdateSAC: make(map[float64]int64),
		}
		for i, pct := range Tab2Percentages {
			env, err := h.envFor(ds, h.cfg.Silos, "tab2-"+strconv.Itoa(i))
			if err != nil {
				return nil, err
			}
			if i == 0 {
				row.Construction = env.BuildTime + env.Index.BuildStatistics().SAC.SimNet
			}
			rng := rand.New(rand.NewPCG(h.cfg.Seed*999, uint64(i)))
			num := int(pct / 100 * float64(env.G.NumArcs()))
			if num < 1 {
				num = 1
			}
			changed := make([]graph.Arc, 0, num)
			for _, ai := range rng.Perm(env.G.NumArcs())[:num] {
				a := graph.Arc(ai)
				changed = append(changed, a)
				// Re-sample the congestion of these arcs at every silo.
				for p := 0; p < env.Fed.P(); p++ {
					theta := rng.Float64() * h.cfg.Level.ThetaMax
					nw := int64(float64(env.W0[a]) * (1 + theta))
					if nw < 1 {
						nw = 1
					}
					env.Fed.Silo(p).SetWeight(a, nw)
				}
			}
			stats, err := env.Index.Update(changed)
			if err != nil {
				return nil, err
			}
			row.Updates[pct] = stats.WallTime + stats.SAC.SimNet
			row.UpdateSAC[pct] = stats.SAC.Compares
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// PrintTab2 renders the construction/update table.
func (h *Harness) PrintTab2(rows []Tab2Row) {
	h.printf("\n== Table II: federated shortcut index construction & update time ==\n")
	w := h.tab()
	w.Write([]byte("dataset"))
	for _, pct := range Tab2Percentages {
		w.Write([]byte("\tupd " + strconv.FormatFloat(pct, 'g', -1, 64) + "%"))
	}
	w.Write([]byte("\tconstruction\n"))
	for _, r := range rows {
		w.Write([]byte(r.Dataset))
		for _, pct := range Tab2Percentages {
			w.Write([]byte("\t" + fmtDuration(r.Updates[pct])))
		}
		w.Write([]byte("\t" + fmtDuration(r.Construction) + "\n"))
	}
	w.Flush()
}

// Fig1Row is one traffic-data setting of Fig. 1: the share of queries whose
// route, computed on that setting's estimated weights, is delayed beyond
// each threshold relative to the true optimum.
type Fig1Row struct {
	Setting   string
	DelayedGT map[int]float64 // minutes threshold -> fraction of queries
	MeanDelay time.Duration
}

// Fig1Thresholds are the delay thresholds (minutes) reported.
var Fig1Thresholds = []int{1, 3, 5}

// RunFig1 reproduces the motivating experiment: platforms holding 0.25×,
// 0.5× and 1× of the trajectory pool route on their own weight estimates;
// the "Aggregated" setting averages the estimates of disjoint platform
// shares (the federation's joint view). Delays are measured against the
// ground-truth optimum.
func (h *Harness) RunFig1(numTrajectories, numQueries int) ([]Fig1Row, error) {
	if numTrajectories == 0 {
		numTrajectories = 3000
	}
	if numQueries == 0 {
		numQueries = 200
	}
	// The paper runs Fig. 1 on Beijing; we use the grid dataset (BJ-S) when
	// configured, else the first dataset.
	ds := h.cfg.Datasets[0]
	for _, d := range h.cfg.Datasets {
		if d == "BJ-S" {
			ds = d
		}
	}
	g, w0, _ := h.generate(ds)
	wTrue := traffic.GroundTruth(w0, traffic.Heavy, h.cfg.Seed+11)
	obs := traffic.Simulate(g, wTrue, w0, numTrajectories, 0.25, h.cfg.Seed+12)

	type setting struct {
		name string
		w    graph.Weights
	}
	shares := obs.Split(2)
	est0 := obs.Estimate(shares[0])
	est1 := obs.Estimate(shares[1])
	agg := make(graph.Weights, len(est0))
	for a := range agg {
		agg[a] = (est0[a] + est1[a]) / 2
	}
	settings := []setting{
		{"0.25x traffic", obs.Estimate(obs.Fraction(0.25))},
		{"0.5x traffic", obs.Estimate(obs.Fraction(0.5))},
		{"1x traffic", obs.Estimate(obs.Fraction(1.0))},
		{"Aggregated (2x0.5)", agg},
	}

	rng := rand.New(rand.NewPCG(h.cfg.Seed+13, 13))
	type qp struct{ s, t graph.Vertex }
	var queries []qp
	for len(queries) < numQueries {
		s := graph.Vertex(rng.IntN(g.NumVertices()))
		t := graph.Vertex(rng.IntN(g.NumVertices()))
		if s != t {
			queries = append(queries, qp{s, t})
		}
	}

	var rows []Fig1Row
	for _, st := range settings {
		row := Fig1Row{Setting: st.name, DelayedGT: make(map[int]float64)}
		delayed := make(map[int]int)
		var total time.Duration
		for _, q := range queries {
			optimal, _ := graph.DijkstraTo(g, wTrue, q.s, q.t)
			_, route := graph.DijkstraTo(g, st.w, q.s, q.t)
			actual, err := graph.PathCost(g, wTrue, route)
			if err != nil {
				return nil, err
			}
			delayMs := actual - optimal
			total += time.Duration(delayMs) * time.Millisecond
			for _, th := range Fig1Thresholds {
				if delayMs > int64(th)*60_000 {
					delayed[th]++
				}
			}
		}
		for _, th := range Fig1Thresholds {
			row.DelayedGT[th] = float64(delayed[th]) / float64(len(queries))
		}
		row.MeanDelay = total / time.Duration(len(queries))
		rows = append(rows, row)
	}
	return rows, nil
}

// PrintFig1 renders the delay table.
func (h *Harness) PrintFig1(rows []Fig1Row) {
	h.printf("\n== Fig. 1: routing delay vs volume of traffic data ==\n")
	w := h.tab()
	w.Write([]byte("traffic data"))
	for _, th := range Fig1Thresholds {
		w.Write([]byte("\t>" + strconv.Itoa(th) + "min"))
	}
	w.Write([]byte("\tmean delay\n"))
	for _, r := range rows {
		w.Write([]byte(r.Setting))
		for _, th := range Fig1Thresholds {
			w.Write([]byte("\t" + strconv.FormatFloat(r.DelayedGT[th]*100, 'f', 1, 64) + "%"))
		}
		w.Write([]byte("\t" + fmtDuration(r.MeanDelay) + "\n"))
	}
	w.Flush()
}
