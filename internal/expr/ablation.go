package expr

import (
	"math/rand/v2"
	"strconv"

	"repro/internal/fed"
	"repro/internal/graph"
	"repro/internal/lb"
	"repro/internal/mpc"
	"repro/internal/pq"
	"repro/internal/traffic"
)

// Fig11Row is one estimator's mean relative error per congestion level.
type Fig11Row struct {
	Method string
	Errors map[string]float64 // congestion level name -> mean relative error
}

// Fig11Result backs Fig. 11 (accuracy of federated lower-bound estimators).
type Fig11Result struct {
	Dataset string
	Levels  []string
	Rows    []Fig11Row
}

// LandmarkSizes are the landmark-set sizes swept by Fig. 11.
var LandmarkSizes = []int{16, 32, 64}

// RunFig11 measures the mean relative estimation error of every lower-bound
// method across congestion levels on the first dataset (the paper uses CAL):
// static ALT with the largest landmark set, Fed-ALT and Fed-ALT-Max at each
// landmark-set size, and Fed-AMPS.
func (h *Harness) RunFig11(numQueries int) (*Fig11Result, error) {
	if numQueries == 0 {
		numQueries = 100
	}
	ds := h.cfg.Datasets[0]
	g, w0, _ := h.generate(ds)
	sizes := append([]int(nil), LandmarkSizes...)
	for i, s := range sizes {
		if s > g.NumVertices()/4 {
			sizes[i] = g.NumVertices() / 4
		}
	}
	maxSize := sizes[len(sizes)-1]

	res := &Fig11Result{Dataset: ds}
	rowIdx := map[string]int{}
	addErr := func(method, level string, err float64) {
		i, ok := rowIdx[method]
		if !ok {
			i = len(res.Rows)
			rowIdx[method] = i
			res.Rows = append(res.Rows, Fig11Row{Method: method, Errors: map[string]float64{}})
		}
		res.Rows[i].Errors[level] = err
	}

	for _, lvl := range traffic.Levels() {
		res.Levels = append(res.Levels, lvl.Name)
		sets := traffic.SiloWeights(w0, h.cfg.Silos, lvl, h.cfg.Seed+101)
		f, err := fed.New(g, w0, sets, mpc.Params{Mode: h.cfg.Mode, Seed: h.cfg.Seed, Net: h.cfg.Net})
		if err != nil {
			return nil, err
		}
		joint := f.JointWeights()

		lms := make(map[int]*lb.Landmarks)
		for _, size := range sizes {
			lms[size] = lb.PrecomputeLandmarks(f, lb.SelectLandmarks(g, w0, size, h.cfg.Seed), 0)
		}

		rng := rand.New(rand.NewPCG(h.cfg.Seed+103, 7))
		type qp struct {
			s, t graph.Vertex
			dist int64
		}
		var queries []qp
		for len(queries) < numQueries {
			s := graph.Vertex(rng.IntN(g.NumVertices()))
			t := graph.Vertex(rng.IntN(g.NumVertices()))
			if s == t {
				continue
			}
			d, _ := graph.DijkstraTo(g, joint, s, t)
			if d > 0 && d < graph.InfCost {
				queries = append(queries, qp{s, t, d})
			}
		}

		meanErr := func(bound func(s, t graph.Vertex) int64) float64 {
			var sum float64
			for _, q := range queries {
				b := bound(q.s, q.t)
				if b < 0 {
					b = 0
				}
				sum += float64(q.dist-b) / float64(q.dist)
			}
			return sum / float64(len(queries))
		}
		sumOf := func(p fed.Partial) int64 {
			var s int64
			for _, v := range p {
				s += v
			}
			return s
		}

		// Static ALT (largest landmark set) — the non-federated baseline.
		addErr("ALT-"+strconv.Itoa(maxSize), lvl.Name, meanErr(func(s, t graph.Vertex) int64 {
			return lms[maxSize].StaticALTBound(s, t, f.P())
		}))
		// Fed-ALT and Fed-ALT-Max at each landmark-set size.
		for _, size := range sizes {
			lm := lms[size]
			for _, kind := range []lb.Kind{lb.FedALT, lb.FedALTMax} {
				name := string(kind) + "-" + strconv.Itoa(size)
				addErr(name, lvl.Name, meanErr(func(s, t graph.Vertex) int64 {
					sac := f.NewSAC()
					fw, _, err := lb.NewPair(kind, f, lm, sac, s, t)
					if err != nil {
						return 0
					}
					return sumOf(fw.Potential(s))
				}))
			}
		}
		// Fed-AMPS.
		addErr(string(lb.FedAMPS), lvl.Name, meanErr(func(s, t graph.Vertex) int64 {
			fw, _, err := lb.NewPair(lb.FedAMPS, f, nil, nil, s, t)
			if err != nil {
				return 0
			}
			return sumOf(fw.Potential(s))
		}))
	}
	return res, nil
}

// PrintFig11 renders the estimator-accuracy table.
func (h *Harness) PrintFig11(res *Fig11Result) {
	h.printf("\n== Fig. 11: mean relative error of lower-bound estimation (%s) ==\n", res.Dataset)
	w := h.tab()
	w.Write([]byte("method"))
	for _, l := range res.Levels {
		w.Write([]byte("\t" + l))
	}
	w.Write([]byte("\n"))
	for _, r := range res.Rows {
		w.Write([]byte(r.Method))
		for _, l := range res.Levels {
			w.Write([]byte("\t" + strconv.FormatFloat(r.Errors[l]*100, 'f', 2, 64) + "%"))
		}
		w.Write([]byte("\n"))
	}
	w.Flush()
}

// Fig12Row is one priority queue's comparison breakdown over a query batch.
type Fig12Row struct {
	Queue  pq.Kind
	Counts pq.Counts
}

// Fig12Result backs Fig. 12 (queue comparison usage).
type Fig12Result struct {
	Dataset string
	Rows    []Fig12Row
	Pushes  int64 // the lower-bound line of Fig. 12
}

// RunFig12 runs the configured query groups under Fed-Shortcut + Fed-AMPS
// with each priority-queue structure and reports the Fed-SAC comparisons
// consumed by queue building, merging and popping (paper Fig. 12; the paper
// uses BJ).
func (h *Harness) RunFig12() (*Fig12Result, error) {
	ds := h.cfg.Datasets[0]
	for _, d := range h.cfg.Datasets {
		if d == "BJ-S" {
			ds = d
		}
	}
	env, err := h.Env(ds)
	if err != nil {
		return nil, err
	}
	groups := h.QueryGroups(env)
	res := &Fig12Result{Dataset: ds}
	for _, kind := range []pq.Kind{pq.KindHeap, pq.KindLeftist, pq.KindTMTree} {
		opt := Methods()[4].Options(env) // +TM-tree stack: shortcut + Fed-AMPS
		opt.Queue = kind
		var total pq.Counts
		for _, grp := range groups {
			ms, err := h.runQueries(env, opt, grp.Queries)
			if err != nil {
				return nil, err
			}
			for _, m := range ms {
				total.Add(m.Queue)
			}
		}
		res.Rows = append(res.Rows, Fig12Row{Queue: kind, Counts: total})
		res.Pushes = total.Pushes
	}
	return res, nil
}

// PrintFig12 renders the queue comparison table.
func (h *Harness) PrintFig12(res *Fig12Result) {
	h.printf("\n== Fig. 12: Fed-SAC comparisons by priority-queue structure (%s) ==\n", res.Dataset)
	w := h.tab()
	w.Write([]byte("queue\tbuild\tmerge\tpop\ttotal\n"))
	for _, r := range res.Rows {
		w.Write([]byte(string(r.Queue) + "\t" +
			strconv.FormatInt(r.Counts.Build, 10) + "\t" +
			strconv.FormatInt(r.Counts.Merge, 10) + "\t" +
			strconv.FormatInt(r.Counts.Pop, 10) + "\t" +
			strconv.FormatInt(r.Counts.Total(), 10) + "\n"))
	}
	w.Flush()
	h.printf("#push operations (comparison lower bound): %d\n", res.Pushes)
}
