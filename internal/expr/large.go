package expr

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand/v2"
	"os"
	"runtime"
	"text/tabwriter"
	"time"

	"repro/internal/graph"
	"repro/internal/lb"
	"repro/internal/peakmem"
	"repro/internal/traffic"
)

// The large-graph bench tier characterizes the ingestion-and-scale layer on
// continent-sized networks (≥10^6 vertices): snapshot load time and peak
// memory against the resident CSR size, landmark precompute at workers=1
// versus parallel, and plaintext point-to-point query throughput. It is
// deliberately federation-free — MPC index construction at this scale is a
// different (open) work item — so the numbers isolate the load path.

// LargeBenchConfig configures RunLargeBench. Zero values select defaults.
type LargeBenchConfig struct {
	Path      string        // graph file (binary snapshot or text format); required
	Silos     int           // default 3
	Landmarks int           // default 8
	Queries   int           // default 10
	Workers   int           // parallel precompute workers; default GOMAXPROCS
	Seed      uint64        // default 1
	Level     traffic.Level // default Moderate
	Out       io.Writer     // default os.Stdout
}

// LargeBenchReport is the BENCH_large.json document, one per graph.
type LargeBenchReport struct {
	Experiment string `json:"experiment"` // "large"
	Graph      string `json:"graph"`
	Vertices   int    `json:"vertices"`
	Arcs       int    `json:"arcs"`

	// Load path: wall time, resident CSR footprint (adjacency + reverse +
	// weights + coordinates) and the peak live heap while loading. The
	// ratio is the ingestion memory budget the importer promises (~≤2×).
	LoadMs        float64 `json:"load_ms"`
	CSRBytes      int64   `json:"csr_bytes"`
	LoadPeakBytes int64   `json:"load_peak_bytes"`
	LoadPeakRatio float64 `json:"load_peak_ratio"`

	// Landmark precompute: sequential vs parallel over the same landmark
	// set and silo weights.
	Landmarks         int     `json:"landmarks"`
	Silos             int     `json:"silos"`
	SelectMs          float64 `json:"select_ms"`
	PrecomputeW1Ms    float64 `json:"precompute_w1_ms"`
	PrecomputeWnMs    float64 `json:"precompute_wn_ms"`
	PrecomputeWorkers int     `json:"precompute_workers"`
	ParallelSpeedup   float64 `json:"parallel_speedup"`

	// Plaintext query throughput on the joint weights.
	Queries       int     `json:"queries"`
	QueryMeanMs   float64 `json:"query_mean_ms"`
	QueriesPerSec float64 `json:"queries_per_sec"`
}

func (c LargeBenchConfig) withDefaults() LargeBenchConfig {
	if c.Silos == 0 {
		c.Silos = 3
	}
	if c.Landmarks == 0 {
		c.Landmarks = 8
	}
	if c.Queries == 0 {
		c.Queries = 10
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Level.Name == "" {
		c.Level = traffic.Moderate
	}
	if c.Out == nil {
		c.Out = os.Stdout
	}
	return c
}

// RunLargeBench loads the graph at cfg.Path and measures the scale tier.
func RunLargeBench(cfg LargeBenchConfig) (*LargeBenchReport, error) {
	cfg = cfg.withDefaults()
	if cfg.Path == "" {
		return nil, fmt.Errorf("expr: large bench needs a -graph file")
	}
	rep := &LargeBenchReport{
		Experiment: "large",
		Graph:      cfg.Path,
		Landmarks:  cfg.Landmarks,
		Silos:      cfg.Silos,
		Queries:    cfg.Queries,
	}

	// Load under a peak-heap sampler. The GC settles the pre-load heap so
	// the peak is attributable to the load itself.
	runtime.GC()
	tracker := peakmem.Start(0)
	start := time.Now()
	g, w, err := graph.LoadFile(cfg.Path)
	if err != nil {
		return nil, err
	}
	rep.LoadMs = float64(time.Since(start).Microseconds()) / 1000
	rep.LoadPeakBytes = int64(tracker.Stop())
	if w == nil {
		// Weightless snapshot: fall back to unit weights (after the peak
		// sample — they are not part of the load).
		w = make(graph.Weights, g.NumArcs())
		for a := range w {
			w[a] = 1
		}
	}
	rep.Vertices, rep.Arcs = g.NumVertices(), g.NumArcs()
	rep.CSRBytes = g.MemoryFootprint() + int64(8*len(w))
	if rep.CSRBytes > 0 {
		rep.LoadPeakRatio = float64(rep.LoadPeakBytes) / float64(rep.CSRBytes)
	}

	k := cfg.Landmarks
	if k > g.NumVertices()/2 {
		k = g.NumVertices() / 2
		if k < 1 {
			k = 1
		}
		rep.Landmarks = k
	}
	start = time.Now()
	landmarks := lb.SelectLandmarks(g, w, k, cfg.Seed)
	rep.SelectMs = float64(time.Since(start).Microseconds()) / 1000

	sets := traffic.SiloWeights(w, cfg.Silos, cfg.Level, cfg.Seed)
	start = time.Now()
	lb.Precompute(g, w, sets, landmarks, 1)
	rep.PrecomputeW1Ms = float64(time.Since(start).Microseconds()) / 1000
	runtime.GC() // drop the sequential result before the parallel run
	rep.PrecomputeWorkers = cfg.Workers
	start = time.Now()
	lb.Precompute(g, w, sets, landmarks, cfg.Workers)
	rep.PrecomputeWnMs = float64(time.Since(start).Microseconds()) / 1000
	if rep.PrecomputeWnMs > 0 {
		rep.ParallelSpeedup = rep.PrecomputeW1Ms / rep.PrecomputeWnMs
	}
	runtime.GC()

	// Plaintext point-to-point queries on the joint weights.
	joint := graph.JointWeights(sets)
	rng := rand.New(rand.NewPCG(cfg.Seed*31, cfg.Seed^0xa076_1d64_78bd_642f))
	n := g.NumVertices()
	var total time.Duration
	for q := 0; q < cfg.Queries; q++ {
		s := graph.Vertex(rng.IntN(n))
		t := graph.Vertex(rng.IntN(n))
		start = time.Now()
		graph.DijkstraTo(g, joint, s, t)
		total += time.Since(start)
	}
	if cfg.Queries > 0 {
		rep.QueryMeanMs = float64(total.Microseconds()) / 1000 / float64(cfg.Queries)
		if total > 0 {
			rep.QueriesPerSec = float64(cfg.Queries) / total.Seconds()
		}
	}
	return rep, nil
}

// Print renders the report as the human-readable table.
func (r *LargeBenchReport) Print(out io.Writer) {
	fmt.Fprintf(out, "Large-graph bench — %s\n\n", r.Graph)
	tw := tabwriter.NewWriter(out, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "vertices\t%d\n", r.Vertices)
	fmt.Fprintf(tw, "arcs\t%d\n", r.Arcs)
	fmt.Fprintf(tw, "load\t%s\n", fmtDuration(time.Duration(r.LoadMs*float64(time.Millisecond))))
	fmt.Fprintf(tw, "CSR bytes\t%s\n", fmtBytes(r.CSRBytes))
	fmt.Fprintf(tw, "load peak heap\t%s (%.2fx CSR)\n", fmtBytes(r.LoadPeakBytes), r.LoadPeakRatio)
	fmt.Fprintf(tw, "landmark select (k=%d)\t%s\n", r.Landmarks, fmtDuration(time.Duration(r.SelectMs*float64(time.Millisecond))))
	fmt.Fprintf(tw, "precompute workers=1\t%s\n", fmtDuration(time.Duration(r.PrecomputeW1Ms*float64(time.Millisecond))))
	fmt.Fprintf(tw, "precompute workers=%d\t%s (%.2fx speedup)\n", r.PrecomputeWorkers,
		fmtDuration(time.Duration(r.PrecomputeWnMs*float64(time.Millisecond))), r.ParallelSpeedup)
	fmt.Fprintf(tw, "queries (plaintext)\t%d, mean %s, %.2f/s\n", r.Queries,
		fmtDuration(time.Duration(r.QueryMeanMs*float64(time.Millisecond))), r.QueriesPerSec)
	tw.Flush()
}

// WriteJSON renders the report as indented JSON.
func (r *LargeBenchReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// WriteFile writes the report to path.
func (r *LargeBenchReport) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("expr: large bench report: %w", err)
	}
	if err := r.WriteJSON(f); err != nil {
		f.Close()
		return fmt.Errorf("expr: large bench report: %w", err)
	}
	return f.Close()
}
