package expr

import "fmt"

// RunAll executes every experiment in the paper's order and prints each
// table as it completes.
func (h *Harness) RunAll() error {
	rows1, err := h.RunFig1(0, 0)
	if err != nil {
		return fmt.Errorf("fig1: %w", err)
	}
	h.PrintFig1(rows1)

	t1, err := h.RunTab1()
	if err != nil {
		return fmt.Errorf("tab1: %w", err)
	}
	h.PrintTab1(t1)

	comp, err := h.RunComparative()
	if err != nil {
		return fmt.Errorf("comparative: %w", err)
	}
	h.PrintFig7(comp)
	h.PrintFig8(comp)

	scal, err := h.RunScalability(nil)
	if err != nil {
		return fmt.Errorf("fig9: %w", err)
	}
	h.PrintFig9(scal)

	t2, err := h.RunTab2()
	if err != nil {
		return fmt.Errorf("tab2: %w", err)
	}
	h.PrintTab2(t2)

	h.PrintFig10(h.RunFig10(comp))

	f11, err := h.RunFig11(0)
	if err != nil {
		return fmt.Errorf("fig11: %w", err)
	}
	h.PrintFig11(f11)

	f12, err := h.RunFig12()
	if err != nil {
		return fmt.Errorf("fig12: %w", err)
	}
	h.PrintFig12(f12)
	return nil
}
