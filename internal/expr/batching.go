package expr

import (
	"strconv"
	"time"

	"repro/internal/ch"
	"repro/internal/core"
	"repro/internal/fed"
	"repro/internal/lb"
	"repro/internal/mpc"
	"repro/internal/pq"
	"repro/internal/traffic"
)

// BatchRow compares the sequential and batched execution of one method.
type BatchRow struct {
	Mode string
	Avg  QueryMetrics
}

// RunBatchingAblation measures the effect of batched Fed-SAC on the full
// stack (extension beyond the paper: the TM-tree's tournament-build
// comparisons are independent per level, so they can share one protocol
// instance's communication rounds — on latency-bound networks this is a
// direct query-time win).
func (h *Harness) RunBatchingAblation() ([]BatchRow, error) {
	env, err := h.Env(h.cfg.Datasets[0])
	if err != nil {
		return nil, err
	}
	groups := h.QueryGroups(env)
	var rows []BatchRow
	for _, batched := range []bool{false, true} {
		opt := core.Options{Index: env.Index, Estimator: lb.FedAMPS, Queue: pq.KindTMTree, BatchedMPC: batched}
		var all []QueryMetrics
		for _, grp := range groups {
			ms, err := h.runQueries(env, opt, grp.Queries)
			if err != nil {
				return nil, err
			}
			all = append(all, ms...)
		}
		name := "sequential Fed-SAC"
		if batched {
			name = "batched Fed-SAC"
		}
		rows = append(rows, BatchRow{Mode: name, Avg: average(all)})
	}
	return rows, nil
}

// PrintBatchingAblation renders the batching comparison.
func (h *Harness) PrintBatchingAblation(rows []BatchRow) {
	h.printf("\n== Extension: batched Fed-SAC for TM-tree tournament builds ==\n")
	w := h.tab()
	w.Write([]byte("execution\tavg #Fed-SAC\tavg MPC rounds\tavg bytes\tavg query time\n"))
	for _, r := range rows {
		w.Write([]byte(r.Mode + "\t" +
			strconv.FormatInt(r.Avg.Compares, 10) + "\t" +
			strconv.FormatInt(r.Avg.Rounds, 10) + "\t" +
			fmtBytes(r.Avg.Bytes) + "\t" +
			fmtDuration(r.Avg.Time) + "\n"))
	}
	w.Flush()
}

// IndexRow compares index-construction strategies (the §IV framework knobs).
type IndexRow struct {
	Ordering   string
	WitnessCap int
	Shortcuts  int
	BuildSACs  int64
	BuildTime  string
	QueryAvg   QueryMetrics
}

// RunIndexAblation builds the federated shortcut index under different
// framework parameters — ordering heuristic and witness-search cap — and
// measures index size, construction cost and resulting query cost.
func (h *Harness) RunIndexAblation() ([]IndexRow, error) {
	ds := h.cfg.Datasets[0]
	g, w0, _ := h.generate(ds)
	variants := []ch.Params{
		{Ordering: ch.OrderEdgeDiff},
		{Ordering: ch.OrderDegree},
		{Ordering: ch.OrderEdgeDiff, WitnessCap: 8},
	}
	var rows []IndexRow
	for _, prm := range variants {
		sets := traffic.SiloWeights(w0, h.cfg.Silos, h.cfg.Level, h.cfg.Seed+5)
		f, err := fed.New(g, w0, sets, mpc.Params{Mode: h.cfg.Mode, Seed: h.cfg.Seed, Net: h.cfg.Net})
		if err != nil {
			return nil, err
		}
		start := time.Now()
		idx, err := ch.BuildWith(f, prm)
		if err != nil {
			return nil, err
		}
		buildTime := time.Since(start)
		env := &Env{Spec: specFor(ds), G: g, W0: w0, Fed: f, Joint: f.JointWeights(), Index: idx}
		groups := h.QueryGroups(env)
		opt := core.Options{Index: idx, Estimator: lb.FedAMPS, Queue: pq.KindTMTree}
		var all []QueryMetrics
		for _, grp := range groups {
			ms, err := h.runQueries(env, opt, grp.Queries)
			if err != nil {
				return nil, err
			}
			all = append(all, ms...)
		}
		cap := prm.WitnessCap
		if cap == 0 {
			cap = ch.DefaultWitnessCap
		}
		rows = append(rows, IndexRow{
			Ordering:   string(prm.Ordering),
			WitnessCap: cap,
			Shortcuts:  idx.NumShortcuts(),
			BuildSACs:  idx.BuildStatistics().SAC.Compares,
			BuildTime:  fmtDuration(buildTime + idx.BuildStatistics().SAC.SimNet),
			QueryAvg:   average(all),
		})
	}
	return rows, nil
}

// PrintIndexAblation renders the construction-strategy comparison.
func (h *Harness) PrintIndexAblation(rows []IndexRow) {
	h.printf("\n== Ablation: federated shortcut index construction strategies ==\n")
	w := h.tab()
	w.Write([]byte("ordering\twitness cap\tshortcuts\tbuild #Fed-SAC\tbuild time\tavg query #Fed-SAC\tavg query time\n"))
	for _, r := range rows {
		w.Write([]byte(r.Ordering + "\t" +
			strconv.Itoa(r.WitnessCap) + "\t" +
			strconv.Itoa(r.Shortcuts) + "\t" +
			strconv.FormatInt(r.BuildSACs, 10) + "\t" +
			r.BuildTime + "\t" +
			strconv.FormatInt(r.QueryAvg.Compares, 10) + "\t" +
			fmtDuration(r.QueryAvg.Time) + "\n"))
	}
	w.Flush()
}
