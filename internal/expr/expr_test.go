package expr

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/pq"
)

// tinyHarness runs every experiment on drastically scaled-down instances so
// the full harness code path is exercised in unit tests.
func tinyHarness(out *bytes.Buffer) *Harness {
	return New(Config{
		Datasets:        []string{"CAL-S"},
		QueriesPerGroup: 3,
		NumGroups:       3,
		Landmarks:       6,
		MaxVertices:     250,
		Out:             out,
	})
}

func TestConfigDefaults(t *testing.T) {
	h := New(Config{})
	cfg := h.Config()
	if len(cfg.Datasets) != 3 || cfg.Silos != 3 || cfg.QueriesPerGroup != 20 {
		t.Fatalf("defaults wrong: %+v", cfg)
	}
	if cfg.Level.Name != "Moderate" || cfg.Landmarks != 32 || cfg.NumGroups != 5 {
		t.Fatalf("defaults wrong: %+v", cfg)
	}
}

func TestEnvCaching(t *testing.T) {
	var out bytes.Buffer
	h := tinyHarness(&out)
	e1, err := h.Env("CAL-S")
	if err != nil {
		t.Fatal(err)
	}
	e2, err := h.Env("CAL-S")
	if err != nil {
		t.Fatal(err)
	}
	if e1 != e2 {
		t.Fatal("env not cached")
	}
	if e1.G.NumVertices() > 250 {
		t.Fatalf("MaxVertices cap ignored: %d", e1.G.NumVertices())
	}
	if e1.Index == nil || e1.LM == nil || len(e1.Joint) != e1.G.NumArcs() {
		t.Fatal("env incomplete")
	}
}

func TestQueryGroups(t *testing.T) {
	var out bytes.Buffer
	h := tinyHarness(&out)
	env, err := h.Env("CAL-S")
	if err != nil {
		t.Fatal(err)
	}
	groups := h.QueryGroups(env)
	if len(groups) != 3 {
		t.Fatalf("got %d groups", len(groups))
	}
	for gi, g := range groups {
		if len(g.Queries) == 0 {
			t.Fatalf("group %d (%s) empty", gi, g.Label())
		}
		for _, q := range g.Queries {
			if q.Hops < g.Lo || q.Hops >= g.Hi {
				t.Fatalf("group %s holds query with %d hops", g.Label(), q.Hops)
			}
			if q.S == q.T {
				t.Fatal("degenerate query")
			}
		}
	}
	// Deterministic across calls.
	again := h.QueryGroups(env)
	for gi := range groups {
		if len(again[gi].Queries) != len(groups[gi].Queries) {
			t.Fatal("query groups not deterministic")
		}
		for qi := range groups[gi].Queries {
			if again[gi].Queries[qi] != groups[gi].Queries[qi] {
				t.Fatal("query groups not deterministic")
			}
		}
	}
}

func TestComparativeShape(t *testing.T) {
	var out bytes.Buffer
	h := tinyHarness(&out)
	comp, err := h.RunComparative()
	if err != nil {
		t.Fatal(err)
	}
	if len(comp.Rows) != len(Methods())*3 {
		t.Fatalf("got %d rows", len(comp.Rows))
	}
	// The Fig. 7 headline: the full stack beats Naive-Dijk on comparisons in
	// the longest-query group.
	longest := comp.Rows[0].Group
	for _, r := range comp.Rows {
		if r.Group > longest {
			longest = r.Group
		}
	}
	var naive, full int64
	for _, r := range comp.Rows {
		if r.Group != longest {
			continue
		}
		switch r.Method {
		case "Naive-Dijk":
			naive = r.Avg.Compares
		case "+TM-tree":
			full = r.Avg.Compares
		}
	}
	if naive == 0 || full == 0 {
		t.Fatal("missing method rows")
	}
	if full >= naive {
		t.Fatalf("full stack (%d comparisons) should beat Naive-Dijk (%d)", full, naive)
	}
	h.PrintFig7(comp)
	h.PrintFig8(comp)
	s := out.String()
	if !strings.Contains(s, "Fig. 7") || !strings.Contains(s, "Naive-Dijk") {
		t.Fatalf("output missing expected content:\n%s", s)
	}
}

func TestScalabilityShape(t *testing.T) {
	var out bytes.Buffer
	h := tinyHarness(&out)
	res, err := h.RunScalability([]int{2, 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4*2 {
		t.Fatalf("got %d rows", len(res.Rows))
	}
	// More silos means more bytes per comparison, hence more simulated time.
	for _, m := range []string{"Naive-Dijk", "+TM-tree"} {
		var b2, b4 int64
		for _, r := range res.Rows {
			if r.Method == m && r.Silos == 2 {
				b2 = r.Avg.Bytes
			}
			if r.Method == m && r.Silos == 4 {
				b4 = r.Avg.Bytes
			}
		}
		if b4 <= b2 {
			t.Fatalf("%s: bytes did not grow with silos (%d vs %d)", m, b2, b4)
		}
	}
	h.PrintFig9(res)
	if !strings.Contains(out.String(), "Fig. 9") {
		t.Fatal("missing Fig. 9 output")
	}
}

func TestTab1AndTab2(t *testing.T) {
	var out bytes.Buffer
	h := tinyHarness(&out)
	t1, err := h.RunTab1()
	if err != nil {
		t.Fatal(err)
	}
	if len(t1) != 1 || t1[0].Name != "CAL-S" || t1[0].Shortcuts == 0 {
		t.Fatalf("tab1 rows: %+v", t1)
	}
	t2, err := h.RunTab2()
	if err != nil {
		t.Fatal(err)
	}
	if len(t2) != 1 {
		t.Fatalf("tab2 rows: %d", len(t2))
	}
	r := t2[0]
	if r.Construction <= 0 {
		t.Fatal("no construction time")
	}
	for _, pct := range Tab2Percentages {
		if _, ok := r.Updates[pct]; !ok {
			t.Fatalf("missing update time for %v%%", pct)
		}
	}
	// Update at 0.1% must be cheaper than construction in comparisons.
	if r.UpdateSAC[0.1] >= r.UpdateSAC[10] {
		t.Fatalf("update comparisons should grow with change size: %v", r.UpdateSAC)
	}
	h.PrintTab1(t1)
	h.PrintTab2(t2)
	if !strings.Contains(out.String(), "Table II") {
		t.Fatal("missing Table II output")
	}
}

func TestFig1Shape(t *testing.T) {
	var out bytes.Buffer
	h := tinyHarness(&out)
	rows, err := h.RunFig1(500, 40)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("got %d settings", len(rows))
	}
	// More traffic data means smaller mean delay: 0.25x worst, 1x better.
	if rows[0].MeanDelay < rows[2].MeanDelay {
		t.Fatalf("1x data (%v) should beat 0.25x (%v)", rows[2].MeanDelay, rows[0].MeanDelay)
	}
	h.PrintFig1(rows)
	if !strings.Contains(out.String(), "Fig. 1") {
		t.Fatal("missing Fig. 1 output")
	}
}

func TestFig10Correlation(t *testing.T) {
	var out bytes.Buffer
	h := tinyHarness(&out)
	comp, err := h.RunComparative()
	if err != nil {
		t.Fatal(err)
	}
	res := h.RunFig10(comp)
	if len(res.Rows) == 0 {
		t.Fatal("no correlation rows")
	}
	for _, r := range res.Rows {
		// Communication is exactly proportional to Fed-SAC usage.
		if r.BytesCorr < 0.999 {
			t.Fatalf("%s: bytes correlation %.4f, expected ~1", r.Method, r.BytesCorr)
		}
		// Time (dominated by the simulated network component) is nearly so.
		if r.TimeCorr < 0.9 {
			t.Fatalf("%s: time correlation %.4f, expected near 1", r.Method, r.TimeCorr)
		}
	}
	h.PrintFig10(res)
}

func TestFig11Shape(t *testing.T) {
	var out bytes.Buffer
	h := tinyHarness(&out)
	res, err := h.RunFig11(25)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Levels) != 4 {
		t.Fatalf("levels: %v", res.Levels)
	}
	get := func(method, level string) float64 {
		for _, r := range res.Rows {
			if r.Method == method {
				return r.Errors[level]
			}
		}
		t.Fatalf("method %s missing (have %v)", method, res.Rows)
		return 0
	}
	// Fed-AMPS must beat the landmark methods under congestion.
	for _, lvl := range []string{"Moderate", "Heavy"} {
		amps := get("fed-amps", lvl)
		alt := get("fed-alt-16", lvl)
		if amps >= alt {
			t.Fatalf("%s: Fed-AMPS (%.4f) should beat Fed-ALT-16 (%.4f)", lvl, amps, alt)
		}
	}
	// Static ALT degrades with congestion.
	staticName := ""
	for _, r := range res.Rows {
		if strings.HasPrefix(r.Method, "ALT-") {
			staticName = r.Method
		}
	}
	if get(staticName, "Heavy") <= get(staticName, "Free") {
		t.Fatalf("static ALT error should grow with congestion")
	}
	h.PrintFig11(res)
	if !strings.Contains(out.String(), "Fig. 11") {
		t.Fatal("missing Fig. 11 output")
	}
}

func TestFig12Shape(t *testing.T) {
	var out bytes.Buffer
	h := tinyHarness(&out)
	res, err := h.RunFig12()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("got %d queue rows", len(res.Rows))
	}
	byKind := map[pq.Kind]pq.Counts{}
	for _, r := range res.Rows {
		byKind[r.Queue] = r.Counts
	}
	tm := byKind[pq.KindTMTree]
	heap := byKind[pq.KindHeap]
	// TM-tree's push-side comparisons approach the #push lower bound and
	// stay below the heap's (Fig. 12 headline).
	if tm.Build+tm.Merge >= heap.Build+heap.Merge {
		t.Fatalf("TM-tree push comparisons (%d) should beat heap (%d)",
			tm.Build+tm.Merge, heap.Build+heap.Merge)
	}
	if tm.Total() >= heap.Total() {
		t.Fatalf("TM-tree total (%d) should beat heap total (%d)", tm.Total(), heap.Total())
	}
	h.PrintFig12(res)
	if !strings.Contains(out.String(), "Fig. 12") {
		t.Fatal("missing Fig. 12 output")
	}
}

func TestRunAllTinyEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("full pipeline")
	}
	var out bytes.Buffer
	h := New(Config{
		Datasets:        []string{"CAL-S"},
		QueriesPerGroup: 2,
		NumGroups:       2,
		Landmarks:       4,
		MaxVertices:     150,
		Out:             &out,
	})
	// RunAll drives every experiment through the exact cmd/fedbench path.
	// Fig. 1/9 internals are downscaled via the config already; shrink the
	// heavy ones by calling them individually where RunAll uses defaults.
	if err := h.RunAll(); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"Fig. 1", "Table I", "Fig. 7", "Fig. 8", "Fig. 9",
		"Table II", "Fig. 10", "Fig. 11", "Fig. 12",
	} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("RunAll output missing %q", want)
		}
	}
}
