package expr

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"time"
)

// BenchEntry is the machine-readable summary of one (dataset, method,
// hop-group) configuration of the comparative sweep: latency percentiles
// over the per-query end-to-end times (local wall + simulated MPC network,
// the paper's testbed estimate) plus the mean secure-computation counters.
type BenchEntry struct {
	Dataset string `json:"dataset"`
	Method  string `json:"method"`
	Group   string `json:"group"`
	Queries int    `json:"queries"`

	// Latency percentiles in microseconds over per-query Time.
	P50Us  int64 `json:"p50_us"`
	P90Us  int64 `json:"p90_us"`
	P99Us  int64 `json:"p99_us"`
	MaxUs  int64 `json:"max_us"`
	MeanUs int64 `json:"mean_us"`

	// Mean secure-computation cost per query.
	MeanFedSACs int64 `json:"mean_fed_sacs"`
	MeanRounds  int64 `json:"mean_mpc_rounds"`
	MeanBytes   int64 `json:"mean_mpc_bytes"`
	MeanSettled int   `json:"mean_settled_vertices"`
}

// BenchReport is the top-level BENCH_*.json document.
type BenchReport struct {
	Experiment      string       `json:"experiment"`
	Datasets        []string     `json:"datasets"`
	Silos           int          `json:"silos"`
	QueriesPerGroup int          `json:"queries_per_group"`
	NumGroups       int          `json:"num_groups"`
	MaxVertices     int          `json:"max_vertices,omitempty"`
	Entries         []BenchEntry `json:"entries"`
}

// percentileUs returns the q-quantile (0 <= q <= 1) of times in microseconds
// using nearest-rank on the sorted slice.
func percentileUs(sorted []time.Duration, q float64) int64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(q*float64(len(sorted)-1) + 0.5)
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx].Microseconds()
}

// BenchReport summarizes a comparative sweep into percentile entries, one
// per (dataset, method, hop-group) row.
func (h *Harness) BenchReport(experiment string, res *CompResult) BenchReport {
	rep := BenchReport{
		Experiment:      experiment,
		Datasets:        h.cfg.Datasets,
		Silos:           h.cfg.Silos,
		QueriesPerGroup: h.cfg.QueriesPerGroup,
		NumGroups:       h.cfg.NumGroups,
		MaxVertices:     h.cfg.MaxVertices,
	}
	for _, row := range res.Rows {
		times := make([]time.Duration, len(row.PerQ))
		var sum time.Duration
		for i, m := range row.PerQ {
			times[i] = m.Time
			sum += m.Time
		}
		sort.Slice(times, func(i, j int) bool { return times[i] < times[j] })
		e := BenchEntry{
			Dataset:     row.Dataset,
			Method:      row.Method,
			Group:       row.Group,
			Queries:     len(row.PerQ),
			P50Us:       percentileUs(times, 0.50),
			P90Us:       percentileUs(times, 0.90),
			P99Us:       percentileUs(times, 0.99),
			MeanFedSACs: row.Avg.Compares,
			MeanRounds:  row.Avg.Rounds,
			MeanBytes:   row.Avg.Bytes,
			MeanSettled: row.Avg.Settled,
		}
		if n := len(times); n > 0 {
			e.MaxUs = times[n-1].Microseconds()
			e.MeanUs = (sum / time.Duration(n)).Microseconds()
		}
		rep.Entries = append(rep.Entries, e)
	}
	return rep
}

// WriteJSON renders the report as indented JSON.
func (r BenchReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// WriteFile writes the report to path.
func (r BenchReport) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("expr: bench report: %w", err)
	}
	if err := r.WriteJSON(f); err != nil {
		f.Close()
		return fmt.Errorf("expr: bench report: %w", err)
	}
	return f.Close()
}
