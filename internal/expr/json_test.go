package expr

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"
)

func TestBenchReport(t *testing.T) {
	h := New(Config{
		Datasets:        []string{"X"},
		Silos:           3,
		QueriesPerGroup: 4,
		NumGroups:       1,
	})
	perQ := []QueryMetrics{
		{Time: 1 * time.Millisecond, Compares: 10, Rounds: 20, Bytes: 300, Settled: 5},
		{Time: 2 * time.Millisecond, Compares: 12, Rounds: 24, Bytes: 360, Settled: 6},
		{Time: 3 * time.Millisecond, Compares: 14, Rounds: 28, Bytes: 420, Settled: 7},
		{Time: 4 * time.Millisecond, Compares: 16, Rounds: 32, Bytes: 480, Settled: 8},
	}
	res := &CompResult{Rows: []CompRow{{
		Dataset: "X", Method: "FedRoad", Group: "G1",
		Avg:  average(perQ),
		PerQ: perQ,
	}}}

	rep := h.BenchReport("bench", res)
	if len(rep.Entries) != 1 {
		t.Fatalf("entries = %d, want 1", len(rep.Entries))
	}
	e := rep.Entries[0]
	if e.Queries != 4 {
		t.Errorf("Queries = %d, want 4", e.Queries)
	}
	if e.MaxUs != 4000 {
		t.Errorf("MaxUs = %d, want 4000", e.MaxUs)
	}
	if e.MeanUs != 2500 {
		t.Errorf("MeanUs = %d, want 2500", e.MeanUs)
	}
	// Nearest-rank on 4 samples: p50 → index round(0.5*3)=2 → 3ms.
	if e.P50Us != 3000 {
		t.Errorf("P50Us = %d, want 3000", e.P50Us)
	}
	if e.P99Us != 4000 {
		t.Errorf("P99Us = %d, want 4000", e.P99Us)
	}
	if e.MeanFedSACs != 13 || e.MeanRounds != 26 || e.MeanBytes != 390 || e.MeanSettled != 6 {
		t.Errorf("means = (%d,%d,%d,%d), want (13,26,390,6)",
			e.MeanFedSACs, e.MeanRounds, e.MeanBytes, e.MeanSettled)
	}

	// The report must round-trip through JSON.
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	var back BenchReport
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if len(back.Entries) != 1 || back.Entries[0] != e {
		t.Errorf("round-trip mismatch: %+v", back.Entries)
	}
}

func TestPercentileUsEmpty(t *testing.T) {
	if got := percentileUs(nil, 0.5); got != 0 {
		t.Errorf("percentileUs(nil) = %d, want 0", got)
	}
}
