package expr

import (
	"strconv"

	"repro/internal/core"
	"repro/internal/lb"
	"repro/internal/pq"
)

// AlphaRow is one TM-tree balance factor's cost over the query mix.
type AlphaRow struct {
	Alpha  int
	Counts pq.Counts
	Avg    QueryMetrics
}

// RunAlphaAblation sweeps the TM-tree balance factor α (the paper fixes
// α = 4; this ablation justifies the choice): smaller α merges more
// aggressively (flatter list, cheaper pops, pricier merges), larger α the
// reverse.
func (h *Harness) RunAlphaAblation(alphas []int) ([]AlphaRow, error) {
	if alphas == nil {
		alphas = []int{2, 4, 8, 16}
	}
	env, err := h.Env(h.cfg.Datasets[0])
	if err != nil {
		return nil, err
	}
	groups := h.QueryGroups(env)
	var rows []AlphaRow
	for _, alpha := range alphas {
		opt := core.Options{Index: env.Index, Estimator: lb.FedAMPS, Queue: pq.KindTMTree, Alpha: alpha}
		var total pq.Counts
		var all []QueryMetrics
		for _, grp := range groups {
			ms, err := h.runQueries(env, opt, grp.Queries)
			if err != nil {
				return nil, err
			}
			for _, m := range ms {
				total.Add(m.Queue)
			}
			all = append(all, ms...)
		}
		rows = append(rows, AlphaRow{Alpha: alpha, Counts: total, Avg: average(all)})
	}
	return rows, nil
}

// PrintAlphaAblation renders the α sweep.
func (h *Harness) PrintAlphaAblation(rows []AlphaRow) {
	h.printf("\n== Ablation: TM-tree balance factor α (paper uses α=4) ==\n")
	w := h.tab()
	w.Write([]byte("alpha\tbuild\tmerge\tpop\ttotal cmps\tavg query time\n"))
	for _, r := range rows {
		w.Write([]byte(strconv.Itoa(r.Alpha) + "\t" +
			strconv.FormatInt(r.Counts.Build, 10) + "\t" +
			strconv.FormatInt(r.Counts.Merge, 10) + "\t" +
			strconv.FormatInt(r.Counts.Pop, 10) + "\t" +
			strconv.FormatInt(r.Counts.Total(), 10) + "\t" +
			fmtDuration(r.Avg.Time) + "\n"))
	}
	w.Flush()
}

// LandmarkRow is one landmark-set size's end-to-end Fed-ALT-Max cost.
type LandmarkRow struct {
	Landmarks int
	Avg       QueryMetrics
	MatrixKB  int64 // per-silo Φ storage
}

// RunLandmarkAblation sweeps the landmark count for Fed-ALT-Max end-to-end:
// more landmarks tighten the bound (fewer iterations) but grow the
// pre-computed matrices — the space/efficiency trade-off of §V.
func (h *Harness) RunLandmarkAblation(sizes []int) ([]LandmarkRow, error) {
	if sizes == nil {
		sizes = []int{8, 16, 32, 64}
	}
	env, err := h.Env(h.cfg.Datasets[0])
	if err != nil {
		return nil, err
	}
	groups := h.QueryGroups(env)
	var rows []LandmarkRow
	for _, k := range sizes {
		if k > env.G.NumVertices()/2 {
			k = env.G.NumVertices() / 2
		}
		lm := lb.PrecomputeLandmarks(env.Fed, lb.SelectLandmarks(env.G, env.W0, k, h.cfg.Seed), 0)
		opt := core.Options{Index: env.Index, Estimator: lb.FedALTMax, Landmarks: lm, Queue: pq.KindTMTree}
		var all []QueryMetrics
		for _, grp := range groups {
			ms, err := h.runQueries(env, opt, grp.Queries)
			if err != nil {
				return nil, err
			}
			all = append(all, ms...)
		}
		rows = append(rows, LandmarkRow{
			Landmarks: k,
			Avg:       average(all),
			MatrixKB:  int64(k) * int64(env.G.NumVertices()) * 8 / 1024,
		})
	}
	return rows, nil
}

// PrintLandmarkAblation renders the landmark sweep.
func (h *Harness) PrintLandmarkAblation(rows []LandmarkRow) {
	h.printf("\n== Ablation: landmark count for Fed-ALT-Max (space vs pruning) ==\n")
	w := h.tab()
	w.Write([]byte("|L|\tavg #Fed-SAC\tavg settled\tavg query time\tΦ per silo\n"))
	for _, r := range rows {
		w.Write([]byte(strconv.Itoa(r.Landmarks) + "\t" +
			strconv.FormatInt(r.Avg.Compares, 10) + "\t" +
			strconv.Itoa(r.Avg.Settled) + "\t" +
			fmtDuration(r.Avg.Time) + "\t" +
			strconv.FormatInt(r.MatrixKB, 10) + "KB\n"))
	}
	w.Flush()
}

// EstimatorRow is one estimator's end-to-end query cost.
type EstimatorRow struct {
	Estimator string
	Avg       QueryMetrics
}

// RunEstimatorAblation measures *end-to-end* query cost per lower-bound
// method over the shortcut index (completing Fig. 11's accuracy story with
// the communication dimension of the trade-off: Fed-ALT's per-estimation
// secure comparisons wipe out its accuracy advantage, which is exactly why
// the paper proposes Fed-ALT-Max and Fed-AMPS).
func (h *Harness) RunEstimatorAblation() ([]EstimatorRow, error) {
	env, err := h.Env(h.cfg.Datasets[0])
	if err != nil {
		return nil, err
	}
	groups := h.QueryGroups(env)
	var rows []EstimatorRow
	for _, kind := range []lb.Kind{lb.None, lb.FedALT, lb.FedALTMax, lb.FedAMPS} {
		opt := core.Options{Index: env.Index, Estimator: kind, Queue: pq.KindTMTree}
		if kind == lb.FedALT || kind == lb.FedALTMax {
			opt.Landmarks = env.LM
		}
		var all []QueryMetrics
		for _, grp := range groups {
			ms, err := h.runQueries(env, opt, grp.Queries)
			if err != nil {
				return nil, err
			}
			all = append(all, ms...)
		}
		rows = append(rows, EstimatorRow{Estimator: string(kind), Avg: average(all)})
	}
	return rows, nil
}

// PrintEstimatorAblation renders the estimator sweep.
func (h *Harness) PrintEstimatorAblation(rows []EstimatorRow) {
	h.printf("\n== Ablation: end-to-end query cost per lower-bound estimator ==\n")
	w := h.tab()
	w.Write([]byte("estimator\tavg #Fed-SAC\tavg settled\tavg bytes\tavg query time\n"))
	for _, r := range rows {
		w.Write([]byte(r.Estimator + "\t" +
			strconv.FormatInt(r.Avg.Compares, 10) + "\t" +
			strconv.Itoa(r.Avg.Settled) + "\t" +
			fmtBytes(r.Avg.Bytes) + "\t" +
			fmtDuration(r.Avg.Time) + "\n"))
	}
	w.Flush()
}
