package expr

import (
	"bytes"
	"strings"
	"testing"
)

func TestAlphaAblation(t *testing.T) {
	var out bytes.Buffer
	h := tinyHarness(&out)
	rows, err := h.RunAlphaAblation([]int{2, 4, 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("got %d rows", len(rows))
	}
	for _, r := range rows {
		if r.Counts.Total() == 0 || r.Avg.Compares == 0 {
			t.Fatalf("alpha %d: empty metrics", r.Alpha)
		}
	}
	h.PrintAlphaAblation(rows)
	if !strings.Contains(out.String(), "balance factor") {
		t.Fatal("missing output")
	}
}

func TestLandmarkAblation(t *testing.T) {
	var out bytes.Buffer
	h := tinyHarness(&out)
	rows, err := h.RunLandmarkAblation([]int{4, 16})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("got %d rows", len(rows))
	}
	if rows[1].MatrixKB <= rows[0].MatrixKB {
		t.Fatal("matrix size should grow with landmark count")
	}
	// More landmarks = tighter bound = no more settled vertices on average.
	if rows[1].Avg.Settled > rows[0].Avg.Settled+2 {
		t.Fatalf("more landmarks settled more vertices: %d vs %d",
			rows[1].Avg.Settled, rows[0].Avg.Settled)
	}
	h.PrintLandmarkAblation(rows)
}

func TestEstimatorAblation(t *testing.T) {
	var out bytes.Buffer
	h := tinyHarness(&out)
	rows, err := h.RunEstimatorAblation()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("got %d rows", len(rows))
	}
	get := func(name string) QueryMetrics {
		for _, r := range rows {
			if r.Estimator == name {
				return r.Avg
			}
		}
		t.Fatalf("estimator %s missing", name)
		return QueryMetrics{}
	}
	// Fed-ALT spends |L|-1 comparisons per estimation: it must cost more
	// secure comparisons end-to-end than Fed-ALT-Max (the paper's point).
	if get("fed-alt").Compares <= get("fed-alt-max").Compares {
		t.Fatalf("fed-alt (%d) should cost more comparisons than fed-alt-max (%d)",
			get("fed-alt").Compares, get("fed-alt-max").Compares)
	}
	// Fed-AMPS must beat the no-estimator baseline.
	if get("fed-amps").Compares >= get("none").Compares {
		t.Fatalf("fed-amps (%d) should beat no estimator (%d)",
			get("fed-amps").Compares, get("none").Compares)
	}
	h.PrintEstimatorAblation(rows)
	if !strings.Contains(out.String(), "estimator") {
		t.Fatal("missing output")
	}
}

func TestBatchingAblation(t *testing.T) {
	var out bytes.Buffer
	h := tinyHarness(&out)
	rows, err := h.RunBatchingAblation()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("got %d rows", len(rows))
	}
	seq, bat := rows[0].Avg, rows[1].Avg
	if bat.Rounds >= seq.Rounds {
		t.Fatalf("batched rounds %d not below sequential %d", bat.Rounds, seq.Rounds)
	}
	h.PrintBatchingAblation(rows)
	if !strings.Contains(out.String(), "batched Fed-SAC") {
		t.Fatal("missing output")
	}
}

func TestIndexAblation(t *testing.T) {
	var out bytes.Buffer
	h := tinyHarness(&out)
	rows, err := h.RunIndexAblation()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("got %d rows", len(rows))
	}
	// The tiny witness cap builds cheaper but with more shortcuts than the
	// default edge-difference variant.
	if rows[2].Shortcuts <= rows[0].Shortcuts {
		t.Fatalf("tiny cap should add shortcuts: %d vs %d", rows[2].Shortcuts, rows[0].Shortcuts)
	}
	if rows[2].BuildSACs >= rows[0].BuildSACs {
		t.Fatalf("tiny cap should cut build comparisons: %d vs %d", rows[2].BuildSACs, rows[0].BuildSACs)
	}
	h.PrintIndexAblation(rows)
	if !strings.Contains(out.String(), "construction strategies") {
		t.Fatal("missing output")
	}
}
