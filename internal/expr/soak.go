package expr

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// SoakReport is the BENCH_soak.json document: the mixed-workload serving-tier
// soak (queries racing traffic updates racing index rebuilds, all through the
// admission gate and the result cache) plus the warm-cache throughput
// comparison. The schema lives here — away from the soak driver — so report
// consumers (benchgate, CI scripts) can decode it without linking the
// federation. cmd/benchgate skips any report whose experiment is not
// "index-build", so a committed BENCH_soak.json never trips the perf gate.
type SoakReport struct {
	Experiment string `json:"experiment"` // always "soak"
	Vertices   int    `json:"vertices"`
	Silos      int    `json:"silos"`
	DurationMs int64  `json:"duration_ms"`

	// Mixed phase: everything raced everything for DurationMs.
	Queries        int64 `json:"queries"`
	TrafficBatches int64 `json:"traffic_batches"`
	Rebuilds       int64 `json:"rebuilds"`
	BuildConflicts int64 `json:"build_conflicts"`

	// Staleness oracle: every response replayed against plaintext Dijkstra at
	// the traffic version it echoed. Any violation fails CI.
	OracleChecks     int64 `json:"oracle_checks"`
	OracleViolations int64 `json:"oracle_violations"`

	// Admission accounting: Admitted+Shed must equal every admission attempt.
	Admitted     int64 `json:"admitted"`
	Shed         int64 `json:"shed"`
	AccountingOK bool  `json:"accounting_ok"`

	CacheHits      int64 `json:"cache_hits"`
	CacheMisses    int64 `json:"cache_misses"`
	CacheCoalesced int64 `json:"cache_coalesced"`

	// Throughput phase: repeated-OD queries, warm cache vs no cache.
	WarmCacheQPS float64 `json:"warm_cache_qps"`
	UncachedQPS  float64 `json:"uncached_qps"`
	CacheSpeedup float64 `json:"cache_speedup"`
}

// Violations reports whether the soak uncovered a correctness failure (stale
// serve or broken shed accounting) — the condition CI fails on.
func (r SoakReport) Violations() []string {
	var v []string
	if r.OracleViolations > 0 {
		v = append(v, fmt.Sprintf("%d stale-serve oracle violations", r.OracleViolations))
	}
	if !r.AccountingOK {
		v = append(v, fmt.Sprintf("admission accounting broken: admitted %d + shed %d != attempts", r.Admitted, r.Shed))
	}
	if r.OracleChecks == 0 {
		v = append(v, "oracle checked nothing")
	}
	return v
}

// Print renders the human-readable summary.
func (r SoakReport) Print(w io.Writer) {
	fmt.Fprintf(w, "soak: %d vertices, %d silos, %dms mixed phase\n", r.Vertices, r.Silos, r.DurationMs)
	fmt.Fprintf(w, "  queries %d  traffic batches %d  rebuilds %d (%d conflicts)\n",
		r.Queries, r.TrafficBatches, r.Rebuilds, r.BuildConflicts)
	fmt.Fprintf(w, "  oracle: %d checks, %d violations\n", r.OracleChecks, r.OracleViolations)
	fmt.Fprintf(w, "  admission: %d admitted, %d shed, accounting ok: %v\n", r.Admitted, r.Shed, r.AccountingOK)
	fmt.Fprintf(w, "  cache: %d hits, %d misses, %d coalesced\n", r.CacheHits, r.CacheMisses, r.CacheCoalesced)
	fmt.Fprintf(w, "  throughput (repeated OD): warm cache %.0f qps vs uncached %.0f qps (%.1fx)\n",
		r.WarmCacheQPS, r.UncachedQPS, r.CacheSpeedup)
}

// WriteJSON renders the report as indented JSON.
func (r SoakReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// WriteFile writes the report to path.
func (r SoakReport) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("expr: soak report: %w", err)
	}
	if err := r.WriteJSON(f); err != nil {
		f.Close()
		return fmt.Errorf("expr: soak report: %w", err)
	}
	return f.Close()
}
