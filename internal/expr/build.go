package expr

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"time"

	"repro/internal/ch"
	"repro/internal/fed"
	"repro/internal/mpc"
	"repro/internal/traffic"
)

// BuildBenchRow measures one index-construction configuration on one
// dataset: sequential vs parallel contraction, batched vs per-pair Fed-SAC.
type BuildBenchRow struct {
	Dataset  string `json:"dataset"`
	Vertices int    `json:"vertices"`
	Arcs     int    `json:"arcs"`
	Workers  int    `json:"workers"`
	Batched  bool   `json:"batched"`
	// Customize marks the weight-customization variant: the topology skeleton
	// is contracted once in plaintext and only the per-level batched Fed-SAC
	// weight sweep runs — the MPC cost of refreshing the index after a
	// traffic batch. Its MPCRounds must stay far below the full-build rows'
	// (benchgate enforces < 25%).
	Customize bool `json:"customize,omitempty"`

	WallMs        float64 `json:"wall_ms"`
	OrderingMs    float64 `json:"ordering_ms"`
	ContractionMs float64 `json:"contraction_ms"`
	// SimNetMs is the simulated MPC network time (rounds × modeled RTT plus
	// serialization); TimeMs = WallMs + SimNetMs is the estimated end-to-end
	// build time on the paper's testbed, the same convention the query
	// benches use. Round batching shows up here: fewer rounds, less SimNet.
	SimNetMs float64 `json:"sim_net_ms"`
	TimeMs   float64 `json:"time_ms"`

	Shortcuts         int     `json:"shortcuts"`
	Compares          int64   `json:"fed_sacs"`
	MPCRounds         int64   `json:"mpc_rounds"`
	RoundsSaved       int64   `json:"mpc_rounds_saved"`
	ContractionRounds int     `json:"contraction_rounds"`
	AvgParallelism    float64 `json:"avg_parallelism"`

	// SpeedupVsSeq is this row's local wall-time speedup over the sequential
	// batched build of the same dataset (1.0 for that reference row itself).
	// Wall time, not TimeMs: SimNet sums every worker's network wait even
	// though concurrent contractions overlap theirs, so end-to-end ratios
	// would understate parallelism.
	SpeedupVsSeq float64 `json:"speedup_vs_seq"`
}

// BuildBenchReport is the BENCH_build.json document.
type BuildBenchReport struct {
	Experiment string          `json:"experiment"`
	Silos      int             `json:"silos"`
	Rows       []BuildBenchRow `json:"rows"`
}

// WriteJSON renders the report as indented JSON.
func (r BuildBenchReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// WriteFile writes the report to path.
func (r BuildBenchReport) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("expr: build bench report: %w", err)
	}
	if err := r.WriteJSON(f); err != nil {
		f.Close()
		return fmt.Errorf("expr: build bench report: %w", err)
	}
	return f.Close()
}

// RunIndexBuildBench benchmarks index construction across the configured
// datasets under three regimes: sequential unbatched (the naive baseline),
// sequential batched, and parallel batched at min(8, GOMAXPROCS overridable)
// workers. Every variant rebuilds from an identical fresh federation; the
// row set records wall time, phase split, and the Fed-SAC round economics.
func (h *Harness) RunIndexBuildBench() (*BuildBenchReport, error) {
	rep := &BuildBenchReport{Experiment: "index-build", Silos: h.cfg.Silos}
	variants := []ch.Params{
		{Workers: 1, NoBatch: true},
		{Workers: 1},
		{Workers: 8},
	}
	for _, name := range h.cfg.Datasets {
		g, w0, spec := h.generate(name)
		first := len(rep.Rows)
		var seqWall time.Duration
		var seqShortcuts int
		for vi, prm := range variants {
			sets := traffic.SiloWeights(w0, h.cfg.Silos, h.cfg.Level, h.cfg.Seed+spec.Seed)
			f, err := fed.New(g, w0, sets, mpc.Params{Mode: h.cfg.Mode, Seed: h.cfg.Seed, Net: h.cfg.Net})
			if err != nil {
				return nil, err
			}
			x, err := ch.BuildWith(f, prm)
			if err != nil {
				return nil, fmt.Errorf("expr: build bench %s workers=%d: %w", name, prm.Workers, err)
			}
			st := x.BuildStatistics()
			row := BuildBenchRow{
				Dataset:           name,
				Vertices:          g.NumVertices(),
				Arcs:              g.NumArcs(),
				Workers:           st.Workers,
				Batched:           !prm.NoBatch,
				WallMs:            float64(st.WallTime.Microseconds()) / 1e3,
				OrderingMs:        float64(st.OrderingTime.Microseconds()) / 1e3,
				ContractionMs:     float64(st.ContractionTime.Microseconds()) / 1e3,
				SimNetMs:          float64(st.SAC.SimNet.Microseconds()) / 1e3,
				TimeMs:            float64((st.WallTime + st.SAC.SimNet).Microseconds()) / 1e3,
				Shortcuts:         st.Shortcuts,
				Compares:          st.SAC.Compares,
				MPCRounds:         st.SAC.Rounds,
				RoundsSaved:       st.RoundsSaved,
				ContractionRounds: st.Rounds,
				AvgParallelism:    st.AvgRoundWidth,
			}
			if vi == 1 { // the sequential batched reference row
				seqWall, seqShortcuts = st.WallTime, st.Shortcuts
			}
			if vi == 2 && st.Shortcuts != seqShortcuts {
				return nil, fmt.Errorf("expr: build bench %s: parallel build produced %d shortcuts, sequential %d",
					name, st.Shortcuts, seqShortcuts)
			}
			rep.Rows = append(rep.Rows, row)
		}
		// The customization variant: contract the topology skeleton once in
		// plaintext, then run only the batched per-level weight sweep. This is
		// the recurring cost of refreshing the index per traffic version; the
		// full-build rows above are the one-off cost it replaces.
		{
			sets := traffic.SiloWeights(w0, h.cfg.Silos, h.cfg.Level, h.cfg.Seed+spec.Seed)
			f, err := fed.New(g, w0, sets, mpc.Params{Mode: h.cfg.Mode, Seed: h.cfg.Seed, Net: h.cfg.Net})
			if err != nil {
				return nil, err
			}
			sk, err := ch.BuildSkeleton(g, w0, ch.Params{})
			if err != nil {
				return nil, fmt.Errorf("expr: build bench %s skeleton: %w", name, err)
			}
			x, err := ch.CustomizeWith(f, sk, ch.Params{Workers: 8})
			if err != nil {
				return nil, fmt.Errorf("expr: build bench %s customize: %w", name, err)
			}
			st := x.BuildStatistics()
			rep.Rows = append(rep.Rows, BuildBenchRow{
				Dataset:           name,
				Vertices:          g.NumVertices(),
				Arcs:              g.NumArcs(),
				Workers:           st.Workers,
				Batched:           true,
				Customize:         true,
				WallMs:            float64(st.WallTime.Microseconds()) / 1e3,
				SimNetMs:          float64(st.SAC.SimNet.Microseconds()) / 1e3,
				TimeMs:            float64((st.WallTime + st.SAC.SimNet).Microseconds()) / 1e3,
				Shortcuts:         st.Shortcuts,
				Compares:          st.SAC.Compares,
				MPCRounds:         st.SAC.Rounds,
				RoundsSaved:       st.RoundsSaved,
				ContractionRounds: st.Rounds,
				AvgParallelism:    st.AvgRoundWidth,
			})
		}
		// Normalize every row of this dataset against the sequential batched
		// reference, which is exactly 1.0 — including the unbatched row, which
		// used to report a bogus 0.
		for i := first; i < len(rep.Rows); i++ {
			if rep.Rows[i].WallMs > 0 {
				rep.Rows[i].SpeedupVsSeq = float64(seqWall.Microseconds()) / 1e3 / rep.Rows[i].WallMs
			}
		}
	}
	return rep, nil
}

// PrintIndexBuildBench renders the Table II-style construction comparison.
func (h *Harness) PrintIndexBuildBench(rep *BuildBenchReport) {
	h.printf("Index construction: sequential vs parallel (%d silos, GOMAXPROCS=%d)\n",
		rep.Silos, runtime.GOMAXPROCS(0))
	w := h.tab()
	fmt.Fprintln(w, "dataset\tworkers\tbatched\tmode\ttime\twall\tsimnet\tshortcuts\tFed-SACs\tMPC rounds\trounds saved\tavg ∥\tspeedup")
	for _, r := range rep.Rows {
		speed := "-"
		if r.SpeedupVsSeq > 0 {
			speed = fmt.Sprintf("%.2fx", r.SpeedupVsSeq)
		}
		mode := "build"
		if r.Customize {
			mode = "customize"
		}
		fmt.Fprintf(w, "%s\t%d\t%v\t%s\t%s\t%s\t%s\t%d\t%d\t%d\t%d\t%.1f\t%s\n",
			r.Dataset, r.Workers, r.Batched, mode,
			fmtDuration(time.Duration(r.TimeMs*1e6)),
			fmtDuration(time.Duration(r.WallMs*1e6)),
			fmtDuration(time.Duration(r.SimNetMs*1e6)),
			r.Shortcuts, r.Compares, r.MPCRounds, r.RoundsSaved, r.AvgParallelism, speed)
	}
	w.Flush()
	h.printf("\n")
}
