package expr

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"time"

	"repro/internal/ch"
	"repro/internal/fed"
	"repro/internal/mpc"
	"repro/internal/traffic"
)

// BuildBenchRow measures one index-construction configuration on one
// dataset: sequential vs parallel contraction, batched vs per-pair Fed-SAC.
type BuildBenchRow struct {
	Dataset  string `json:"dataset"`
	Vertices int    `json:"vertices"`
	Arcs     int    `json:"arcs"`
	Workers  int    `json:"workers"`
	Batched  bool   `json:"batched"`

	WallMs        float64 `json:"wall_ms"`
	OrderingMs    float64 `json:"ordering_ms"`
	ContractionMs float64 `json:"contraction_ms"`

	Shortcuts         int     `json:"shortcuts"`
	Compares          int64   `json:"fed_sacs"`
	MPCRounds         int64   `json:"mpc_rounds"`
	RoundsSaved       int64   `json:"mpc_rounds_saved"`
	ContractionRounds int     `json:"contraction_rounds"`
	AvgParallelism    float64 `json:"avg_parallelism"`

	// SpeedupVsSeq is this row's wall-time speedup over the sequential
	// batched build of the same dataset (1.0 for that baseline itself).
	SpeedupVsSeq float64 `json:"speedup_vs_seq"`
}

// BuildBenchReport is the BENCH_build.json document.
type BuildBenchReport struct {
	Experiment string          `json:"experiment"`
	Silos      int             `json:"silos"`
	Rows       []BuildBenchRow `json:"rows"`
}

// WriteJSON renders the report as indented JSON.
func (r BuildBenchReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// WriteFile writes the report to path.
func (r BuildBenchReport) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("expr: build bench report: %w", err)
	}
	if err := r.WriteJSON(f); err != nil {
		f.Close()
		return fmt.Errorf("expr: build bench report: %w", err)
	}
	return f.Close()
}

// RunIndexBuildBench benchmarks index construction across the configured
// datasets under three regimes: sequential unbatched (the naive baseline),
// sequential batched, and parallel batched at min(8, GOMAXPROCS overridable)
// workers. Every variant rebuilds from an identical fresh federation; the
// row set records wall time, phase split, and the Fed-SAC round economics.
func (h *Harness) RunIndexBuildBench() (*BuildBenchReport, error) {
	rep := &BuildBenchReport{Experiment: "index-build", Silos: h.cfg.Silos}
	variants := []ch.Params{
		{Workers: 1, NoBatch: true},
		{Workers: 1},
		{Workers: 8},
	}
	for _, name := range h.cfg.Datasets {
		g, w0, spec := h.generate(name)
		var seqWall time.Duration
		var seqShortcuts int
		for vi, prm := range variants {
			sets := traffic.SiloWeights(w0, h.cfg.Silos, h.cfg.Level, h.cfg.Seed+spec.Seed)
			f, err := fed.New(g, w0, sets, mpc.Params{Mode: h.cfg.Mode, Seed: h.cfg.Seed, Net: h.cfg.Net})
			if err != nil {
				return nil, err
			}
			x, err := ch.BuildWith(f, prm)
			if err != nil {
				return nil, fmt.Errorf("expr: build bench %s workers=%d: %w", name, prm.Workers, err)
			}
			st := x.BuildStatistics()
			row := BuildBenchRow{
				Dataset:           name,
				Vertices:          g.NumVertices(),
				Arcs:              g.NumArcs(),
				Workers:           st.Workers,
				Batched:           !prm.NoBatch,
				WallMs:            float64(st.WallTime.Microseconds()) / 1e3,
				OrderingMs:        float64(st.OrderingTime.Microseconds()) / 1e3,
				ContractionMs:     float64(st.ContractionTime.Microseconds()) / 1e3,
				Shortcuts:         st.Shortcuts,
				Compares:          st.SAC.Compares,
				MPCRounds:         st.SAC.Rounds,
				RoundsSaved:       st.RoundsSaved,
				ContractionRounds: st.Rounds,
				AvgParallelism:    st.AvgRoundWidth,
			}
			switch vi {
			case 1: // the sequential batched baseline
				seqWall, seqShortcuts = st.WallTime, st.Shortcuts
				row.SpeedupVsSeq = 1.0
			case 2:
				if st.Shortcuts != seqShortcuts {
					return nil, fmt.Errorf("expr: build bench %s: parallel build produced %d shortcuts, sequential %d",
						name, st.Shortcuts, seqShortcuts)
				}
				if st.WallTime > 0 {
					row.SpeedupVsSeq = float64(seqWall) / float64(st.WallTime)
				}
			}
			rep.Rows = append(rep.Rows, row)
		}
	}
	return rep, nil
}

// PrintIndexBuildBench renders the Table II-style construction comparison.
func (h *Harness) PrintIndexBuildBench(rep *BuildBenchReport) {
	h.printf("Index construction: sequential vs parallel (%d silos, GOMAXPROCS=%d)\n",
		rep.Silos, runtime.GOMAXPROCS(0))
	w := h.tab()
	fmt.Fprintln(w, "dataset\tworkers\tbatched\twall\tordering\tcontraction\tshortcuts\tFed-SACs\tMPC rounds\trounds saved\tavg ∥\tspeedup")
	for _, r := range rep.Rows {
		speed := "-"
		if r.SpeedupVsSeq > 0 {
			speed = fmt.Sprintf("%.2fx", r.SpeedupVsSeq)
		}
		fmt.Fprintf(w, "%s\t%d\t%v\t%s\t%s\t%s\t%d\t%d\t%d\t%d\t%.1f\t%s\n",
			r.Dataset, r.Workers, r.Batched,
			fmtDuration(time.Duration(r.WallMs*1e6)),
			fmtDuration(time.Duration(r.OrderingMs*1e6)),
			fmtDuration(time.Duration(r.ContractionMs*1e6)),
			r.Shortcuts, r.Compares, r.MPCRounds, r.RoundsSaved, r.AvgParallelism, speed)
	}
	w.Flush()
	h.printf("\n")
}
