package expr

import (
	"math"
	"strconv"
	"time"

	"repro/internal/core"
	"repro/internal/pq"
)

// QueryMetrics is the cost of one query (or an average over a group).
type QueryMetrics struct {
	Time     time.Duration // Wall + SimNet: estimated end-to-end time on the paper's testbed
	Wall     time.Duration // local computation measured in-process
	SimNet   time.Duration // simulated MPC network time, R·(L+S/B) per comparison
	Compares int64         // Fed-SAC invocations
	Bytes    int64         // MPC bytes across all silos
	Rounds   int64         // MPC communication rounds
	Settled  int           // search iterations
	Queue    pq.Counts     // priority-queue comparison breakdown (Fig. 12)
}

func metricsOf(stats core.QueryStats) QueryMetrics {
	return QueryMetrics{
		Time:     stats.WallTime + stats.SAC.SimNet,
		Wall:     stats.WallTime,
		SimNet:   stats.SAC.SimNet,
		Compares: stats.SAC.Compares,
		Bytes:    stats.SAC.Bytes,
		Rounds:   stats.SAC.Rounds,
		Settled:  stats.SettledVertices,
		Queue:    stats.Queue,
	}
}

func average(ms []QueryMetrics) QueryMetrics {
	if len(ms) == 0 {
		return QueryMetrics{}
	}
	var out QueryMetrics
	for _, m := range ms {
		out.Time += m.Time
		out.Wall += m.Wall
		out.SimNet += m.SimNet
		out.Compares += m.Compares
		out.Bytes += m.Bytes
		out.Rounds += m.Rounds
		out.Settled += m.Settled
	}
	n := time.Duration(len(ms))
	out.Time /= n
	out.Wall /= n
	out.SimNet /= n
	out.Compares /= int64(len(ms))
	out.Bytes /= int64(len(ms))
	out.Rounds /= int64(len(ms))
	out.Settled /= len(ms)
	return out
}

// CompRow is one (dataset, method, hop-group) cell of Fig. 7/8.
type CompRow struct {
	Dataset string
	Method  string
	Group   string
	Avg     QueryMetrics
	PerQ    []QueryMetrics // retained for the Fig. 10 correlation analysis
}

// CompResult carries the comparative sweep backing Fig. 7, Fig. 8 and
// Fig. 10.
type CompResult struct {
	Rows []CompRow
}

// runQueries executes a query set under the given engine options.
func (h *Harness) runQueries(env *Env, opt core.Options, qs []Query) ([]QueryMetrics, error) {
	e, err := core.NewEngine(env.Fed, opt)
	if err != nil {
		return nil, err
	}
	out := make([]QueryMetrics, 0, len(qs))
	for _, q := range qs {
		_, stats, err := e.SPSP(q.S, q.T)
		if err != nil {
			return nil, err
		}
		out = append(out, metricsOf(stats))
	}
	return out, nil
}

// RunComparative sweeps all datasets × methods × hop groups (the runs behind
// Fig. 7 and Fig. 8).
func (h *Harness) RunComparative() (*CompResult, error) {
	res := &CompResult{}
	for _, ds := range h.cfg.Datasets {
		env, err := h.Env(ds)
		if err != nil {
			return nil, err
		}
		groups := h.QueryGroups(env)
		for _, m := range Methods() {
			for _, grp := range groups {
				ms, err := h.runQueries(env, m.Options(env), grp.Queries)
				if err != nil {
					return nil, err
				}
				res.Rows = append(res.Rows, CompRow{
					Dataset: ds,
					Method:  m.Name,
					Group:   grp.Label(),
					Avg:     average(ms),
					PerQ:    ms,
				})
			}
		}
	}
	return res, nil
}

// PrintFig7 renders average query times per hop group (paper Fig. 7).
func (h *Harness) PrintFig7(res *CompResult) {
	h.printf("\n== Fig. 7: federated SPSP query time vs query scale (hops) ==\n")
	h.printComp(res, func(m QueryMetrics) string { return fmtDuration(m.Time) })
}

// PrintFig8 renders average communication sizes per hop group (paper
// Fig. 8).
func (h *Harness) PrintFig8(res *CompResult) {
	h.printf("\n== Fig. 8: federated SPSP communication size vs query scale (hops) ==\n")
	h.printComp(res, func(m QueryMetrics) string { return fmtBytes(m.Bytes) })
}

// printComp renders one dataset block per table: methods as rows, hop groups
// as columns.
func (h *Harness) printComp(res *CompResult, cell func(QueryMetrics) string) {
	for _, ds := range h.cfg.Datasets {
		groups := []string{}
		seen := map[string]bool{}
		for _, r := range res.Rows {
			if r.Dataset == ds && !seen[r.Group] {
				seen[r.Group] = true
				groups = append(groups, r.Group)
			}
		}
		if len(groups) == 0 {
			continue
		}
		h.printf("--- %s ---\n", ds)
		w := h.tab()
		w.Write([]byte("method"))
		for _, g := range groups {
			w.Write([]byte("\t" + g))
		}
		w.Write([]byte("\n"))
		for _, m := range Methods() {
			w.Write([]byte(m.Name))
			for _, g := range groups {
				for _, r := range res.Rows {
					if r.Dataset == ds && r.Method == m.Name && r.Group == g {
						w.Write([]byte("\t" + cell(r.Avg)))
					}
				}
			}
			w.Write([]byte("\n"))
		}
		w.Flush()
	}
}

// ScalRow is one (dataset, method, silo-count) cell of Fig. 9.
type ScalRow struct {
	Dataset string
	Method  string
	Silos   int
	Avg     QueryMetrics
}

// ScalResult backs Fig. 9.
type ScalResult struct {
	Rows     []ScalRow
	SiloAxis []int
}

// RunScalability measures query time of the four proposed methods for 2–8
// silos on the first hop group of each dataset (paper Fig. 9).
func (h *Harness) RunScalability(siloCounts []int) (*ScalResult, error) {
	if siloCounts == nil {
		siloCounts = []int{2, 3, 4, 5, 6, 7, 8}
	}
	methods := Methods()
	picked := []Method{methods[0], methods[1], methods[3], methods[4]}
	res := &ScalResult{SiloAxis: siloCounts}
	for _, ds := range h.cfg.Datasets {
		for _, p := range siloCounts {
			env, err := h.envFor(ds, p, "fig9")
			if err != nil {
				return nil, err
			}
			groups := h.QueryGroups(env)
			qs := groups[0].Queries
			for _, m := range picked {
				ms, err := h.runQueries(env, m.Options(env), qs)
				if err != nil {
					return nil, err
				}
				res.Rows = append(res.Rows, ScalRow{Dataset: ds, Method: m.Name, Silos: p, Avg: average(ms)})
			}
		}
	}
	return res, nil
}

// PrintFig9 renders query time vs silo count.
func (h *Harness) PrintFig9(res *ScalResult) {
	h.printf("\n== Fig. 9: federated SPSP query time vs number of silos ==\n")
	for _, ds := range h.cfg.Datasets {
		h.printf("--- %s (first hop group) ---\n", ds)
		w := h.tab()
		w.Write([]byte("method"))
		for _, p := range res.SiloAxis {
			w.Write([]byte("\t" + strconv.Itoa(p) + " silos"))
		}
		w.Write([]byte("\n"))
		names := []string{}
		seen := map[string]bool{}
		for _, r := range res.Rows {
			if r.Dataset == ds && !seen[r.Method] {
				seen[r.Method] = true
				names = append(names, r.Method)
			}
		}
		for _, name := range names {
			w.Write([]byte(name))
			for _, p := range res.SiloAxis {
				for _, r := range res.Rows {
					if r.Dataset == ds && r.Method == name && r.Silos == p {
						w.Write([]byte("\t" + fmtDuration(r.Avg.Time)))
					}
				}
			}
			w.Write([]byte("\n"))
		}
		w.Flush()
	}
}

// CorrRow is one method's Fig. 10 correlation between Fed-SAC usage and
// query costs.
type CorrRow struct {
	Method       string
	TimeCorr     float64 // Pearson r between #Fed-SAC and query time
	BytesCorr    float64 // Pearson r between #Fed-SAC and bytes
	MeanCompares float64
}

// Fig10Result backs Fig. 10 (query costs ∝ Fed-SAC usage).
type Fig10Result struct {
	Dataset string
	Rows    []CorrRow
}

// RunFig10 correlates per-query Fed-SAC counts with per-query time and
// communication, over all methods and scales on the first dataset (the
// paper uses CAL).
func (h *Harness) RunFig10(comp *CompResult) *Fig10Result {
	ds := h.cfg.Datasets[0]
	res := &Fig10Result{Dataset: ds}
	for _, m := range Methods() {
		var xs, ts, bs []float64
		for _, r := range comp.Rows {
			if r.Dataset != ds || r.Method != m.Name {
				continue
			}
			for _, q := range r.PerQ {
				xs = append(xs, float64(q.Compares))
				ts = append(ts, float64(q.Time))
				bs = append(bs, float64(q.Bytes))
			}
		}
		if len(xs) < 3 {
			continue
		}
		res.Rows = append(res.Rows, CorrRow{
			Method:       m.Name,
			TimeCorr:     pearson(xs, ts),
			BytesCorr:    pearson(xs, bs),
			MeanCompares: mean(xs),
		})
	}
	return res
}

// PrintFig10 renders the correlation table.
func (h *Harness) PrintFig10(res *Fig10Result) {
	h.printf("\n== Fig. 10: query costs are proportional to Fed-SAC usage (%s) ==\n", res.Dataset)
	w := h.tab()
	w.Write([]byte("method\tcorr(#Fed-SAC, time)\tcorr(#Fed-SAC, bytes)\tmean #Fed-SAC\n"))
	for _, r := range res.Rows {
		w.Write([]byte(r.Method + "\t" + fmtF(r.TimeCorr) + "\t" + fmtF(r.BytesCorr) + "\t" + fmtF(r.MeanCompares) + "\n"))
	}
	w.Flush()
}

func fmtF(f float64) string {
	if math.Abs(f) >= 1000 {
		return strconv.Itoa(int(math.Round(f)))
	}
	return strconv.FormatFloat(f, 'f', 3, 64)
}

func mean(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

func pearson(xs, ys []float64) float64 {
	mx, my := mean(xs), mean(ys)
	var num, dx, dy float64
	for i := range xs {
		a, b := xs[i]-mx, ys[i]-my
		num += a * b
		dx += a * a
		dy += b * b
	}
	if dx == 0 || dy == 0 {
		return 0
	}
	return num / math.Sqrt(dx*dy)
}
