package traffic

import (
	"math"
	"testing"

	"repro/internal/graph"
)

func TestSiloWeightsRespectCongestionModel(t *testing.T) {
	g, w0 := graph.GenerateGrid(10, 10, 2)
	const p = 3
	sets := SiloWeights(w0, p, Moderate, 7)
	if len(sets) != p {
		t.Fatalf("got %d silos", len(sets))
	}
	congestedArcs := 0
	for a := 0; a < g.NumArcs(); a++ {
		anyChanged := false
		for _, w := range sets {
			if err := graph.ValidateWeights(g, w); err != nil {
				t.Fatal(err)
			}
			if w[a] < w0[a] {
				t.Fatalf("arc %d: congestion decreased weight %d -> %d", a, w0[a], w[a])
			}
			if float64(w[a]) > float64(w0[a])*(1+Moderate.ThetaMax)+1 {
				t.Fatalf("arc %d: weight %d exceeds (1+θmax)·w0 = %.0f", a, w[a], float64(w0[a])*1.5)
			}
			if w[a] != w0[a] {
				anyChanged = true
			}
		}
		if anyChanged {
			congestedArcs++
		}
	}
	want := Moderate.Beta * float64(g.NumArcs())
	if math.Abs(float64(congestedArcs)-want) > want*0.3+5 {
		t.Fatalf("congested arcs = %d, expected about %.0f", congestedArcs, want)
	}
}

func TestSiloWeightsIndependentAcrossSilos(t *testing.T) {
	_, w0 := graph.GenerateGrid(10, 10, 2)
	sets := SiloWeights(w0, 2, Heavy, 9)
	same := true
	for a := range w0 {
		if sets[0][a] != sets[1][a] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("silos observed identical congestion noise")
	}
}

func TestFreeLevelKeepsStaticWeights(t *testing.T) {
	_, w0 := graph.GenerateGrid(6, 6, 3)
	sets := SiloWeights(w0, 2, Free, 1)
	for a := range w0 {
		if sets[0][a] != w0[a] || sets[1][a] != w0[a] {
			t.Fatalf("free traffic changed arc %d", a)
		}
	}
}

func TestSiloWeightsDeterministic(t *testing.T) {
	_, w0 := graph.GenerateGrid(6, 6, 3)
	a := SiloWeights(w0, 3, Moderate, 42)
	b := SiloWeights(w0, 3, Moderate, 42)
	for p := range a {
		for i := range a[p] {
			if a[p][i] != b[p][i] {
				t.Fatal("same seed produced different weights")
			}
		}
	}
}

func TestLevelsOrdering(t *testing.T) {
	ls := Levels()
	if len(ls) != 4 || ls[0].Name != "Free" || ls[3].Name != "Heavy" {
		t.Fatalf("levels = %v", ls)
	}
	for i := 1; i < len(ls); i++ {
		if ls[i].Beta < ls[i-1].Beta || ls[i].ThetaMax < ls[i-1].ThetaMax {
			t.Fatal("levels not increasing in severity")
		}
	}
}

func TestSimulateAndEstimate(t *testing.T) {
	g, w0 := graph.GenerateGrid(12, 12, 4)
	wTrue := GroundTruth(w0, Heavy, 8)
	obs := Simulate(g, wTrue, w0, 600, 0.2, 10)
	if obs.NumTrajectories() == 0 {
		t.Fatal("no trajectories recorded")
	}

	full := obs.Estimate(obs.Fraction(1.0))
	quarter := obs.Estimate(obs.Fraction(0.25))
	if err := graph.ValidateWeights(g, full); err != nil {
		t.Fatal(err)
	}
	if err := graph.ValidateWeights(g, quarter); err != nil {
		t.Fatal(err)
	}

	// More data means a better estimate of the true weights on average.
	errFor := func(w graph.Weights) float64 {
		var sum float64
		for a := range w {
			sum += math.Abs(float64(w[a]-wTrue[a])) / float64(wTrue[a])
		}
		return sum / float64(len(w))
	}
	if errFor(full) >= errFor(quarter) {
		t.Fatalf("full data error %.4f not better than quarter data error %.4f",
			errFor(full), errFor(quarter))
	}
}

func TestEstimateFallsBackToStatic(t *testing.T) {
	g, w0 := graph.GenerateGrid(8, 8, 5)
	wTrue := GroundTruth(w0, Heavy, 6)
	obs := Simulate(g, wTrue, w0, 3, 0.1, 7) // almost no coverage
	w := obs.Estimate(obs.Fraction(1.0))
	fallbacks := 0
	for a := range w {
		if w[a] == w0[a] {
			fallbacks++
		}
	}
	if fallbacks == 0 {
		t.Fatal("expected unobserved arcs to fall back to w0")
	}
}

func TestSplitDisjointCoversAll(t *testing.T) {
	g, w0 := graph.GenerateGrid(8, 8, 5)
	wTrue := GroundTruth(w0, Moderate, 6)
	obs := Simulate(g, wTrue, w0, 100, 0.1, 7)
	shares := obs.Split(3)
	seen := map[int]bool{}
	total := 0
	for _, sh := range shares {
		for _, idx := range sh {
			if seen[idx] {
				t.Fatalf("trajectory %d in two shares", idx)
			}
			seen[idx] = true
			total++
		}
	}
	if total != obs.NumTrajectories() {
		t.Fatalf("split covers %d of %d trajectories", total, obs.NumTrajectories())
	}
}
