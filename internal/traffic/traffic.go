// Package traffic generates the federation's traffic observations: the
// paper's congestion model (§VIII-A) for per-silo weight sets, and a taxi
// trajectory simulator reproducing the data-volume experiment of Fig. 1.
package traffic

import (
	"math"
	"math/rand/v2"

	"repro/internal/graph"
)

// Level is a congestion level: a fraction Beta of road segments is congested,
// and each congested segment's weight is increased by a factor (1+θ) with
// θ ~ U(0, ThetaMax), sampled independently per silo (the silos observe the
// same congestion with independent noise).
type Level struct {
	Name     string
	Beta     float64
	ThetaMax float64
}

// The paper's four congestion levels.
var (
	Free     = Level{Name: "Free", Beta: 0, ThetaMax: 0}
	Slight   = Level{Name: "Slight", Beta: 0.10, ThetaMax: 0.30}
	Moderate = Level{Name: "Moderate", Beta: 0.20, ThetaMax: 0.50}
	Heavy    = Level{Name: "Heavy", Beta: 0.50, ThetaMax: 1.00}
)

// Levels lists the paper's congestion levels in increasing severity.
func Levels() []Level { return []Level{Free, Slight, Moderate, Heavy} }

// SiloWeights generates P private weight sets from the static weights w0
// under the given congestion level, following §VIII-A: one shared congested
// subset E_c (|E_c| = Beta·|E|), then P×|E_c| independent θ samples.
//
// Determinism contract (v2): the output is a pure function of
// (w0, p, lvl, seed). The congested subset is drawn by selection sampling
// (Knuth's Algorithm S) in O(1) extra memory — a USA-scale rng.Perm here
// cost ~450 MB of transient garbage — which changed the seed→subset
// mapping relative to v1; committed baselines were regenerated.
func SiloWeights(w0 graph.Weights, p int, lvl Level, seed uint64) []graph.Weights {
	rng := rand.New(rand.NewPCG(seed, seed^0x7ed558ccdf1eb5a1))
	m := len(w0)
	congested := make([]bool, m)
	numC := int(math.Round(lvl.Beta * float64(m)))
	// Selection sampling: arc a is congested with probability
	// need/(m-a), which yields exactly numC arcs, uniformly.
	need := numC
	for a := 0; a < m && need > 0; a++ {
		if int(rng.Int64N(int64(m-a))) < need {
			congested[a] = true
			need--
		}
	}
	sets := make([]graph.Weights, p)
	for s := range sets {
		w := make(graph.Weights, m)
		copy(w, w0)
		for a := 0; a < m; a++ {
			if congested[a] {
				theta := rng.Float64() * lvl.ThetaMax
				w[a] = int64(math.Round(float64(w0[a]) * (1 + theta)))
			}
		}
		sets[s] = w
	}
	return sets
}

// GroundTruth generates the "true" congested weight set used by the
// trajectory simulator: the same congestion process with a single sample.
func GroundTruth(w0 graph.Weights, lvl Level, seed uint64) graph.Weights {
	return SiloWeights(w0, 1, lvl, seed)[0]
}

// Observations holds simulated vehicle trajectories over a road network:
// every trajectory is a driven route whose traversal yields one noisy travel
// time observation per traversed arc. A platform holding a subset of
// trajectories estimates edge weights from its observations — the fewer
// trajectories, the noisier the picture (the mechanism behind Fig. 1).
type Observations struct {
	g        *graph.Graph
	w0       graph.Weights
	trajArcs [][]graph.Arc
	trajObs  [][]int64
}

// Simulate drives numTraj vehicles between random endpoints. Each driver
// routes on an individually perturbed view of the true weights (real drivers
// differ in preference and knowledge, so trajectories spread over many roads
// instead of piling onto one optimal corridor); each arc traversal then
// observes the true travel time perturbed by multiplicative noise
// U(1−noise, 1+noise). Deterministic in seed.
func Simulate(g *graph.Graph, wTrue, w0 graph.Weights, numTraj int, noise float64, seed uint64) *Observations {
	rng := rand.New(rand.NewPCG(seed, seed^0x94d049bb133111eb))
	o := &Observations{g: g, w0: w0}
	n := g.NumVertices()
	perceived := make(graph.Weights, len(wTrue))
	for t := 0; t < numTraj; t++ {
		s := graph.Vertex(rng.IntN(n))
		d := graph.Vertex(rng.IntN(n))
		if s == d {
			d = graph.Vertex((int(d) + 1 + rng.IntN(n-1)) % n)
		}
		const routeSpread = 0.5 // driver heterogeneity
		for a := range perceived {
			f := 1 + (rng.Float64()*2-1)*routeSpread
			perceived[a] = int64(float64(wTrue[a]) * f)
			if perceived[a] < 1 {
				perceived[a] = 1
			}
		}
		_, path := graph.DijkstraTo(g, perceived, s, d)
		if len(path) < 2 {
			continue
		}
		var arcs []graph.Arc
		var obs []int64
		for i := 0; i+1 < len(path); i++ {
			a := g.FindArc(path[i], path[i+1])
			factor := 1 + (rng.Float64()*2-1)*noise
			v := int64(math.Round(float64(wTrue[a]) * factor))
			if v < 1 {
				v = 1
			}
			arcs = append(arcs, a)
			obs = append(obs, v)
		}
		o.trajArcs = append(o.trajArcs, arcs)
		o.trajObs = append(o.trajObs, obs)
	}
	return o
}

// NumTrajectories reports how many trajectories were recorded.
func (o *Observations) NumTrajectories() int { return len(o.trajArcs) }

// Estimate builds a platform's weight set from the given trajectory indices:
// the mean observation per arc, falling back to the free-flow weight w0 for
// unobserved arcs (a platform has no better prior for roads it never drove).
func (o *Observations) Estimate(trajIdx []int) graph.Weights {
	m := o.g.NumArcs()
	sum := make([]int64, m)
	cnt := make([]int64, m)
	for _, t := range trajIdx {
		for i, a := range o.trajArcs[t] {
			sum[a] += o.trajObs[t][i]
			cnt[a]++
		}
	}
	w := make(graph.Weights, m)
	for a := 0; a < m; a++ {
		if cnt[a] > 0 {
			w[a] = (sum[a] + cnt[a]/2) / cnt[a]
			if w[a] < 1 {
				w[a] = 1
			}
		} else {
			w[a] = o.w0[a]
		}
	}
	return w
}

// Fraction returns the first fraction·N trajectory indices, modelling a
// platform that holds that share of the full trajectory pool.
func (o *Observations) Fraction(fraction float64) []int {
	n := int(math.Round(fraction * float64(len(o.trajArcs))))
	if n > len(o.trajArcs) {
		n = len(o.trajArcs)
	}
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	return idx
}

// Split partitions all trajectories into p disjoint shares (round-robin),
// modelling p platforms that each observed a different slice of the traffic.
func (o *Observations) Split(p int) [][]int {
	shares := make([][]int, p)
	for t := range o.trajArcs {
		shares[t%p] = append(shares[t%p], t)
	}
	return shares
}
