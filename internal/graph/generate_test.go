package graph

import (
	"bytes"
	"testing"
)

func TestGenerateGridProperties(t *testing.T) {
	g, w0 := GenerateGrid(12, 15, 3)
	if g.NumVertices() != 12*15 {
		t.Fatalf("vertices = %d, want %d", g.NumVertices(), 12*15)
	}
	if !g.StronglyConnected() {
		t.Fatal("grid must be strongly connected")
	}
	if err := ValidateWeights(g, w0); err != nil {
		t.Fatalf("invalid static weights: %v", err)
	}
	if !g.HasCoordinates() {
		t.Fatal("grid must carry coordinates")
	}
	// Every road appears in both directions.
	for a := 0; a < g.NumArcs(); a++ {
		if g.FindArc(g.Head(Arc(a)), g.Tail(Arc(a))) == NoArc {
			t.Fatalf("arc %d has no reverse", a)
		}
	}
}

func TestGenerateGridDeterministic(t *testing.T) {
	g1, w1 := GenerateGrid(10, 10, 77)
	g2, w2 := GenerateGrid(10, 10, 77)
	if g1.NumArcs() != g2.NumArcs() {
		t.Fatalf("arc counts differ: %d vs %d", g1.NumArcs(), g2.NumArcs())
	}
	for a := 0; a < g1.NumArcs(); a++ {
		if g1.Tail(Arc(a)) != g2.Tail(Arc(a)) || g1.Head(Arc(a)) != g2.Head(Arc(a)) || w1[a] != w2[a] {
			t.Fatalf("arc %d differs between runs", a)
		}
	}
	g3, _ := GenerateGrid(10, 10, 78)
	same := g1.NumArcs() == g3.NumArcs()
	if same {
		for a := 0; a < g1.NumArcs(); a++ {
			if g1.Head(Arc(a)) != g3.Head(Arc(a)) {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical grids")
	}
}

func TestGenerateRoadLikeProperties(t *testing.T) {
	g, w0 := GenerateRoadLike(500, 9)
	if g.NumVertices() != 500 {
		t.Fatalf("vertices = %d, want 500", g.NumVertices())
	}
	if !g.StronglyConnected() {
		t.Fatal("road-like network must be strongly connected")
	}
	if err := ValidateWeights(g, w0); err != nil {
		t.Fatalf("invalid static weights: %v", err)
	}
	// Road networks are sparse: average degree well under 8.
	if avg := float64(g.NumArcs()) / float64(g.NumVertices()); avg > 8 {
		t.Fatalf("average out-degree %.1f too high for a road network", avg)
	}
}

func TestGenerateRoadLikeDeterministic(t *testing.T) {
	g1, w1 := GenerateRoadLike(300, 4)
	g2, w2 := GenerateRoadLike(300, 4)
	if g1.NumArcs() != g2.NumArcs() {
		t.Fatalf("arc counts differ")
	}
	for a := 0; a < g1.NumArcs(); a++ {
		if g1.Head(Arc(a)) != g2.Head(Arc(a)) || w1[a] != w2[a] {
			t.Fatalf("arc %d differs between runs", a)
		}
	}
}

func TestGenerateRandomDirectedStronglyConnected(t *testing.T) {
	g, w := GenerateRandomDirected(40, 100, 25, 6)
	if !g.StronglyConnected() {
		t.Fatal("random directed graph must be strongly connected")
	}
	if err := ValidateWeights(g, w); err != nil {
		t.Fatal(err)
	}
}

func TestDatasetRegistry(t *testing.T) {
	specs := Datasets()
	if len(specs) != 3 {
		t.Fatalf("want 3 datasets, got %d", len(specs))
	}
	// CAL-S is small enough to materialize in a unit test.
	g, w0, spec := GenerateDataset("CAL-S")
	if spec.Name != "CAL-S" {
		t.Fatalf("spec name %q", spec.Name)
	}
	if g.NumVertices() != spec.Vertices {
		t.Fatalf("vertices = %d, want %d", g.NumVertices(), spec.Vertices)
	}
	if !g.StronglyConnected() {
		t.Fatal("CAL-S must be strongly connected")
	}
	if err := ValidateWeights(g, w0); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("unknown dataset must panic")
		}
	}()
	GenerateDataset("NOPE")
}

func TestIORoundTrip(t *testing.T) {
	g, w := GenerateRoadLike(120, 13)
	var buf bytes.Buffer
	if err := WriteTo(&buf, g, w); err != nil {
		t.Fatal(err)
	}
	g2, w2, err := ReadFrom(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumVertices() != g.NumVertices() || g2.NumArcs() != g.NumArcs() {
		t.Fatalf("size mismatch after round trip")
	}
	for a := 0; a < g.NumArcs(); a++ {
		if g.Tail(Arc(a)) != g2.Tail(Arc(a)) || g.Head(Arc(a)) != g2.Head(Arc(a)) {
			t.Fatalf("arc %d endpoints changed", a)
		}
		if w[a] != w2[a] {
			t.Fatalf("arc %d weight changed: %d -> %d", a, w[a], w2[a])
		}
	}
	if !g2.HasCoordinates() {
		t.Fatal("coordinates lost in round trip")
	}
	for v := Vertex(0); int(v) < g.NumVertices(); v++ {
		if g.X(v) != g2.X(v) || g.Y(v) != g2.Y(v) {
			t.Fatalf("coordinates of %d changed", v)
		}
	}
}

func TestReadFromRejectsGarbage(t *testing.T) {
	cases := []string{
		"a 0 1 5\n",              // no problem line
		"p sp 2 1\nz nonsense\n", // unknown record
		"p sp 2 2\na 0 1 5\n",    // arc count mismatch
		"p sp 2 1\nv 9 0 0\n",    // vertex id out of range
		"p sp x y\n",             // malformed problem line
		"p sp 2 1\na 0 one 5\n",  // malformed arc
		"p sp 2 1\nv 0 a b\n",    // malformed vertex
	}
	for _, c := range cases {
		if _, _, err := ReadFrom(bytes.NewBufferString(c)); err == nil {
			t.Fatalf("input %q accepted", c)
		}
	}
}

func TestReadFromIgnoresComments(t *testing.T) {
	in := "c generated\np sp 2 1\nc mid comment\na 0 1 7\n"
	g, w, err := ReadFrom(bytes.NewBufferString(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumArcs() != 1 || w[0] != 7 {
		t.Fatalf("parsed %d arcs, w=%v", g.NumArcs(), w)
	}
}
