package graph

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"
)

// Binary graph snapshot ("FRGB"): a versioned little-endian serialization of
// the CSR arrays, written contiguously and 8-byte aligned so a loader may
// mmap the file and use the sections in place. Layout:
//
//	offset  size      field
//	0       8         magic "FEDROADG"
//	8       4         version (uint32, currently 1)
//	12      4         flags (uint32: bit 0 = weights, bit 1 = coordinates)
//	16      8         numVertices (uint64)
//	24      8         numArcs (uint64)
//	32      4(n+1)    off    — CSR out-adjacency offsets (int32)
//	        pad to 8
//	        4m        dst    — arc heads in arc-ID order (int32)
//	        pad to 8
//	        8m        w      — arc weights (int64), if flag bit 0
//	        8n        x      — coordinates (float64), if flag bit 1
//	        8n        y
//
// Tails and the reverse adjacency are derived from off/dst on load, so the
// file stores each arc once. The text format (WriteTo/ReadFrom) remains the
// human-readable interchange; this is the load path for continent-scale
// networks, where parsing tens of millions of text records dominates
// startup time.
const (
	binaryMagic   = "FEDROADG"
	binaryVersion = 1

	flagWeights = 1 << 0
	flagCoords  = 1 << 1
)

// binaryChunk is the scratch-buffer size used to stream array sections.
const binaryChunk = 1 << 18

// WriteBinary serializes the graph and an optional weight set as a binary
// snapshot readable by ReadBinary.
func WriteBinary(wr io.Writer, g *Graph, w Weights) error {
	if w != nil && len(w) != g.NumArcs() {
		return fmt.Errorf("graph: weight set has %d entries, graph has %d arcs", len(w), g.NumArcs())
	}
	bw := bufio.NewWriterSize(wr, binaryChunk)
	var flags uint32
	if w != nil {
		flags |= flagWeights
	}
	if g.HasCoordinates() {
		flags |= flagCoords
	}
	var hdr [32]byte
	copy(hdr[:8], binaryMagic)
	binary.LittleEndian.PutUint32(hdr[8:12], binaryVersion)
	binary.LittleEndian.PutUint32(hdr[12:16], flags)
	binary.LittleEndian.PutUint64(hdr[16:24], uint64(g.NumVertices()))
	binary.LittleEndian.PutUint64(hdr[24:32], uint64(g.NumArcs()))
	if _, err := bw.Write(hdr[:]); err != nil {
		return err
	}
	written := int64(len(hdr))
	pad := func() error {
		for written%8 != 0 {
			if err := bw.WriteByte(0); err != nil {
				return err
			}
			written++
		}
		return nil
	}
	buf := make([]byte, binaryChunk)
	put32 := func(vals []int32) error {
		for len(vals) > 0 {
			k := len(buf) / 4
			if k > len(vals) {
				k = len(vals)
			}
			for i := 0; i < k; i++ {
				binary.LittleEndian.PutUint32(buf[i*4:], uint32(vals[i]))
			}
			if _, err := bw.Write(buf[:k*4]); err != nil {
				return err
			}
			written += int64(k * 4)
			vals = vals[k:]
		}
		return nil
	}
	put64 := func(vals []uint64) error {
		for len(vals) > 0 {
			k := len(buf) / 8
			if k > len(vals) {
				k = len(vals)
			}
			for i := 0; i < k; i++ {
				binary.LittleEndian.PutUint64(buf[i*8:], vals[i])
			}
			if _, err := bw.Write(buf[:k*8]); err != nil {
				return err
			}
			written += int64(k * 8)
			vals = vals[k:]
		}
		return nil
	}
	if err := put32(g.off); err != nil {
		return err
	}
	if err := pad(); err != nil {
		return err
	}
	// g.dst is []Vertex (int32 underlying); reinterpret element-wise.
	if err := put32VertexSlice(put32, g.dst); err != nil {
		return err
	}
	if err := pad(); err != nil {
		return err
	}
	if w != nil {
		vals := make([]uint64, 0, binaryChunk/8)
		for i := 0; i < len(w); {
			vals = vals[:0]
			for ; i < len(w) && len(vals) < cap(vals); i++ {
				vals = append(vals, uint64(w[i]))
			}
			if err := put64(vals); err != nil {
				return err
			}
		}
	}
	if g.HasCoordinates() {
		for _, coords := range [][]float64{g.x, g.y} {
			vals := make([]uint64, 0, binaryChunk/8)
			for i := 0; i < len(coords); {
				vals = vals[:0]
				for ; i < len(coords) && len(vals) < cap(vals); i++ {
					vals = append(vals, math.Float64bits(coords[i]))
				}
				if err := put64(vals); err != nil {
					return err
				}
			}
		}
	}
	return bw.Flush()
}

func put32VertexSlice(put32 func([]int32) error, vs []Vertex) error {
	// Convert in bounded chunks to avoid a full-size copy.
	buf := make([]int32, 0, binaryChunk/4)
	for i := 0; i < len(vs); {
		buf = buf[:0]
		for ; i < len(vs) && len(buf) < cap(buf); i++ {
			buf = append(buf, int32(vs[i]))
		}
		if err := put32(buf); err != nil {
			return err
		}
	}
	return nil
}

// IsBinarySnapshot reports whether the byte prefix identifies a binary
// graph snapshot (at least 8 bytes of the magic are required).
func IsBinarySnapshot(prefix []byte) bool {
	return len(prefix) >= len(binaryMagic) && string(prefix[:len(binaryMagic)]) == binaryMagic
}

// ReadBinary parses a snapshot written by WriteBinary, validating the
// header and the structural invariants of the CSR arrays (monotone offsets
// covering exactly the declared arc count, heads in range). The returned
// weight set is nil when the snapshot carries none. Corrupt or truncated
// input yields an error, never a panic or a structurally invalid graph.
func ReadBinary(rd io.Reader) (*Graph, Weights, error) {
	br := bufio.NewReaderSize(rd, binaryChunk)
	var hdr [32]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, nil, fmt.Errorf("graph: binary snapshot header: %w", err)
	}
	if string(hdr[:8]) != binaryMagic {
		return nil, nil, fmt.Errorf("graph: not a binary graph snapshot (bad magic)")
	}
	version := binary.LittleEndian.Uint32(hdr[8:12])
	if version != binaryVersion {
		return nil, nil, fmt.Errorf("graph: unsupported snapshot version %d (want %d)", version, binaryVersion)
	}
	flags := binary.LittleEndian.Uint32(hdr[12:16])
	if flags&^uint32(flagWeights|flagCoords) != 0 {
		return nil, nil, fmt.Errorf("graph: unknown snapshot flags %#x", flags)
	}
	n64 := binary.LittleEndian.Uint64(hdr[16:24])
	m64 := binary.LittleEndian.Uint64(hdr[24:32])
	// Same plausibility bounds as the text parser (comfortably above the
	// USA DIMACS network); they also keep a forged header from triggering
	// a multi-GiB allocation before the first read fails.
	if n64 > 1<<28 || m64 > 1<<30 {
		return nil, nil, fmt.Errorf("graph: implausible snapshot dimensions n=%d m=%d", n64, m64)
	}
	n, m := int(n64), int(m64)

	read := int64(len(hdr))
	buf := make([]byte, binaryChunk)
	get32 := func(out []int32) error {
		for len(out) > 0 {
			k := len(buf) / 4
			if k > len(out) {
				k = len(out)
			}
			if _, err := io.ReadFull(br, buf[:k*4]); err != nil {
				return err
			}
			for i := 0; i < k; i++ {
				out[i] = int32(binary.LittleEndian.Uint32(buf[i*4:]))
			}
			read += int64(k * 4)
			out = out[k:]
		}
		return nil
	}
	// get64 decodes a little-endian uint64 section directly into exactly one
	// of an int64 or float64 destination, chunk by chunk without staging.
	get64 := func(ints []int64, floats []float64) error {
		total := len(ints) + len(floats)
		for at := 0; at < total; {
			k := len(buf) / 8
			if k > total-at {
				k = total - at
			}
			if _, err := io.ReadFull(br, buf[:k*8]); err != nil {
				return err
			}
			for i := 0; i < k; i++ {
				v := binary.LittleEndian.Uint64(buf[i*8:])
				if ints != nil {
					ints[at+i] = int64(v)
				} else {
					floats[at+i] = math.Float64frombits(v)
				}
			}
			read += int64(k * 8)
			at += k
		}
		return nil
	}
	skipPad := func() error {
		for read%8 != 0 {
			if _, err := br.ReadByte(); err != nil {
				return err
			}
			read++
		}
		return nil
	}

	off := make([]int32, n+1)
	if err := get32(off); err != nil {
		return nil, nil, fmt.Errorf("graph: snapshot offsets: %w", err)
	}
	if err := skipPad(); err != nil {
		return nil, nil, fmt.Errorf("graph: snapshot offsets: %w", err)
	}
	if off[0] != 0 || int(off[n]) != m {
		return nil, nil, fmt.Errorf("graph: snapshot offsets do not cover %d arcs", m)
	}
	for v := 0; v < n; v++ {
		if off[v+1] < off[v] {
			return nil, nil, fmt.Errorf("graph: snapshot offsets not monotone at vertex %d", v)
		}
	}

	// Decode heads chunk-by-chunk straight into the final array, validating
	// inline — no staging copy.
	dst := make([]Vertex, m)
	for a := 0; a < m; {
		k := len(buf) / 4
		if k > m-a {
			k = m - a
		}
		if _, err := io.ReadFull(br, buf[:k*4]); err != nil {
			return nil, nil, fmt.Errorf("graph: snapshot heads: %w", err)
		}
		for i := 0; i < k; i++ {
			h := int32(binary.LittleEndian.Uint32(buf[i*4:]))
			if h < 0 || int(h) >= n {
				return nil, nil, fmt.Errorf("graph: snapshot arc %d head %d out of range [0,%d)", a+i, h, n)
			}
			dst[a+i] = Vertex(h)
		}
		read += int64(k * 4)
		a += k
	}
	if err := skipPad(); err != nil {
		return nil, nil, fmt.Errorf("graph: snapshot heads: %w", err)
	}
	var w Weights
	if flags&flagWeights != 0 {
		w = make(Weights, m)
		if err := get64(w, nil); err != nil {
			return nil, nil, fmt.Errorf("graph: snapshot weights: %w", err)
		}
	}
	var xs, ys []float64
	if flags&flagCoords != 0 {
		xs = make([]float64, n)
		ys = make([]float64, n)
		if err := get64(nil, xs); err != nil {
			return nil, nil, fmt.Errorf("graph: snapshot coordinates: %w", err)
		}
		if err := get64(nil, ys); err != nil {
			return nil, nil, fmt.Errorf("graph: snapshot coordinates: %w", err)
		}
	}

	tail := make([]Vertex, m)
	for v := 0; v < n; v++ {
		for i := off[v]; i < off[v+1]; i++ {
			tail[i] = Vertex(v)
		}
	}
	g := &Graph{numV: n, off: off, dst: dst, tail: tail, x: xs, y: ys}
	g.buildReverse()
	return g, w, nil
}

// LoadFile loads a road network from path, auto-detecting the binary
// snapshot format (WriteBinary) versus the DIMACS-like text format
// (WriteTo) by sniffing the magic bytes.
func LoadFile(path string) (*Graph, Weights, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	br := bufio.NewReaderSize(f, binaryChunk)
	prefix, err := br.Peek(len(binaryMagic))
	if err != nil && err != io.EOF {
		return nil, nil, err
	}
	if IsBinarySnapshot(prefix) {
		return ReadBinary(br)
	}
	return ReadFrom(br)
}
