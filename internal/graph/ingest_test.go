package graph

import (
	"bytes"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// --- ReadFrom base handling and validation -------------------------------

func TestReadFromOneBased(t *testing.T) {
	// 1-based input: ids 1..3 with n=3; id n present marks the base.
	in := "p sp 3 3\na 1 2 10\na 2 3 20\na 3 1 30\n"
	g, w, err := ReadFrom(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 3 || g.NumArcs() != 3 {
		t.Fatalf("got n=%d m=%d", g.NumVertices(), g.NumArcs())
	}
	a := g.FindArc(0, 1)
	if a == NoArc || w[a] != 10 {
		t.Fatalf("arc 0->1 missing or wrong weight")
	}
	if g.FindArc(2, 0) == NoArc {
		t.Fatalf("arc 2->0 (1-based 3->1) missing")
	}
}

func TestReadFromZeroBasedRoundTrip(t *testing.T) {
	g0, w0 := GenerateRandomDirected(30, 120, 1000, 7)
	var buf bytes.Buffer
	if err := WriteTo(&buf, g0, w0); err != nil {
		t.Fatal(err)
	}
	g1, w1, err := ReadFrom(&buf)
	if err != nil {
		t.Fatal(err)
	}
	assertSameGraph(t, g0, w0, g1, w1)
}

func TestReadFromMixedBase(t *testing.T) {
	in := "p sp 3 2\na 0 1 5\na 2 3 5\n"
	if _, _, err := ReadFrom(strings.NewReader(in)); err == nil {
		t.Fatal("accepted input referencing both vertex 0 and vertex n")
	}
}

func TestReadFromKindValidation(t *testing.T) {
	if _, _, err := ReadFrom(strings.NewReader("p max 2 1\na 0 1 5\n")); err == nil {
		t.Fatal("accepted problem kind other than sp")
	}
}

// --- CSRBuilder vs the sort-based Builder --------------------------------

func TestCSRBuilderMatchesBuilder(t *testing.T) {
	gRef, wRef := GenerateRandomDirected(60, 400, 1000, 99)
	csr := NewCSRBuilder(gRef.NumVertices())
	for a := 0; a < gRef.NumArcs(); a++ {
		csr.Count(gRef.Tail(Arc(a)))
	}
	csr.FinishCount()
	for a := 0; a < gRef.NumArcs(); a++ {
		csr.Place(gRef.Tail(Arc(a)), gRef.Head(Arc(a)), wRef[a])
	}
	g, w, err := csr.Finish()
	if err != nil {
		t.Fatal(err)
	}
	assertSameGraph(t, gRef, wRef, g, w)
}

// --- DIMACS fixture import ------------------------------------------------

func openFixture(t *testing.T, name string) func() (io.ReadCloser, error) {
	t.Helper()
	path := filepath.Join("testdata", name)
	return func() (io.ReadCloser, error) { return os.Open(path) }
}

func TestImportDIMACSFixture(t *testing.T) {
	co, err := os.Open(filepath.Join("testdata", "tiny.co"))
	if err != nil {
		t.Fatal(err)
	}
	defer co.Close()
	g, w, stats, err := ImportDIMACS(openFixture(t, "tiny.gr"), co, ImportOptions{ClampMinWeight: 1})
	if err != nil {
		t.Fatal(err)
	}
	if stats.RawVertices != 6 || stats.RawArcs != 9 {
		t.Fatalf("raw counts: %+v", stats)
	}
	if !stats.OneBased {
		t.Fatalf("fixture should import 1-based")
	}
	if stats.Clamped != 1 {
		t.Fatalf("expected 1 clamped weight, got %d", stats.Clamped)
	}
	if stats.Components != 3 {
		t.Fatalf("expected 3 SCCs, got %d", stats.Components)
	}
	// Largest SCC is 1-based {1,2,3,4} with the 7 arcs among them.
	if g.NumVertices() != 4 || g.NumArcs() != 7 {
		t.Fatalf("after SCC extraction: n=%d m=%d", g.NumVertices(), g.NumArcs())
	}
	if !g.StronglyConnected() {
		t.Fatal("extracted component is not strongly connected")
	}
	// The zero-weight arc 2->3 (0-based 1->2) must be clamped to 1.
	a := g.FindArc(1, 2)
	if a == NoArc || w[a] != 1 {
		t.Fatalf("clamped arc: idx=%d w=%v", a, w)
	}
	if b := g.FindArc(0, 1); b == NoArc || w[b] != 3 {
		t.Fatalf("arc 1->2 weight: %v", w)
	}
	// Coordinates must survive the SCC remap: vertex 0 is 1-based vertex 1.
	if !g.HasCoordinates() {
		t.Fatal("coordinates lost")
	}
	if g.X(0) != -122419400 || g.Y(0) != 37774900 {
		t.Fatalf("vertex 0 coordinates (%g,%g)", g.X(0), g.Y(0))
	}
	if g.X(3) != -122416500 || g.Y(3) != 37775800 {
		t.Fatalf("vertex 3 coordinates (%g,%g)", g.X(3), g.Y(3))
	}
}

func TestImportDIMACSKeepAll(t *testing.T) {
	g, _, stats, err := ImportDIMACS(openFixture(t, "tiny.gr"), nil, ImportOptions{KeepAll: true, ClampMinWeight: 1})
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 6 || g.NumArcs() != 9 {
		t.Fatalf("KeepAll: n=%d m=%d", g.NumVertices(), g.NumArcs())
	}
	if stats.Components != 0 {
		t.Fatalf("KeepAll should skip SCC labeling, got %d components", stats.Components)
	}
}

func TestImportDIMACSCaps(t *testing.T) {
	// Cap to the first 4 vertices: arcs touching 5 or 6 are dropped before
	// SCC extraction, leaving exactly the 4-vertex component.
	g, _, stats, err := ImportDIMACS(openFixture(t, "tiny.gr"), nil, ImportOptions{MaxVertices: 4, ClampMinWeight: 1})
	if err != nil {
		t.Fatal(err)
	}
	if stats.KeptVertices != 4 || stats.KeptArcs != 7 {
		t.Fatalf("caps: %+v", stats)
	}
	if g.NumVertices() != 4 || g.NumArcs() != 7 {
		t.Fatalf("capped graph: n=%d m=%d", g.NumVertices(), g.NumArcs())
	}
	// Arc cap: keep only the first 3 arcs in file order.
	_, _, stats, err = ImportDIMACS(openFixture(t, "tiny.gr"), nil, ImportOptions{MaxArcs: 3, KeepAll: true})
	if err != nil {
		t.Fatal(err)
	}
	if stats.KeptArcs != 3 {
		t.Fatalf("arc cap: %+v", stats)
	}
}

// --- SCC primitives -------------------------------------------------------

func TestLargestSCC(t *testing.T) {
	g, w := GenerateGrid(5, 5, 3)
	keep := LargestSCC(g)
	if len(keep) != g.NumVertices() {
		t.Fatalf("grid is strongly connected, SCC kept %d of %d", len(keep), g.NumVertices())
	}
	sub, wSub, remap := InducedSubgraph(g, w, keep)
	assertSameGraph(t, g, w, sub, wSub)
	for v, nv := range remap {
		if nv != Vertex(v) {
			t.Fatalf("identity remap expected, got %d->%d", v, nv)
		}
	}
}

func TestLargestSCCEmpty(t *testing.T) {
	g := NewBuilder(0).Build()
	if keep := LargestSCC(g); keep != nil {
		t.Fatalf("empty graph: %v", keep)
	}
}

// --- Binary snapshot codec ------------------------------------------------

func TestBinaryRoundTrip(t *testing.T) {
	g0, w0 := GenerateRoadLike(200, 11)
	var buf bytes.Buffer
	if err := WriteBinary(&buf, g0, w0); err != nil {
		t.Fatal(err)
	}
	if !IsBinarySnapshot(buf.Bytes()) {
		t.Fatal("snapshot not recognized by magic sniff")
	}
	g1, w1, err := ReadBinary(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	assertSameGraph(t, g0, w0, g1, w1)
	if g0.HasCoordinates() != g1.HasCoordinates() {
		t.Fatal("coordinate flag lost")
	}
	if g1.HasCoordinates() {
		for v := 0; v < g1.NumVertices(); v++ {
			if g0.X(Vertex(v)) != g1.X(Vertex(v)) || g0.Y(Vertex(v)) != g1.Y(Vertex(v)) {
				t.Fatalf("vertex %d coordinates differ", v)
			}
		}
	}
	// Semantics check: a shortest-path run agrees bit-for-bit.
	d0 := Dijkstra(g0, w0, 0).Dist
	d1 := Dijkstra(g1, w1, 0).Dist
	for v := range d0 {
		if d0[v] != d1[v] {
			t.Fatalf("distances diverge at %d", v)
		}
	}
}

func TestBinaryRoundTripNoWeightsNoCoords(t *testing.T) {
	g0, _ := GenerateRandomDirected(40, 160, 1000, 5)
	var buf bytes.Buffer
	if err := WriteBinary(&buf, g0, nil); err != nil {
		t.Fatal(err)
	}
	g1, w1, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if w1 != nil {
		t.Fatal("weights materialized from a weightless snapshot")
	}
	if g1.HasCoordinates() {
		t.Fatal("coordinates materialized from a coordinate-free snapshot")
	}
	assertSameGraph(t, g0, nil, g1, nil)
}

func TestBinaryCorruptInputs(t *testing.T) {
	g, w := GenerateRandomDirected(20, 80, 1000, 9)
	var buf bytes.Buffer
	if err := WriteBinary(&buf, g, w); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	corrupt := func(name string, mutate func(b []byte) []byte) {
		b := append([]byte(nil), good...)
		b = mutate(b)
		if _, _, err := ReadBinary(bytes.NewReader(b)); err == nil {
			t.Errorf("%s: accepted corrupt snapshot", name)
		}
	}
	corrupt("bad magic", func(b []byte) []byte { b[0] = 'X'; return b })
	corrupt("bad version", func(b []byte) []byte { b[8] = 99; return b })
	corrupt("unknown flags", func(b []byte) []byte { b[12] |= 0x80; return b })
	corrupt("implausible n", func(b []byte) []byte {
		for i := 16; i < 24; i++ {
			b[i] = 0xff
		}
		return b
	})
	corrupt("truncated header", func(b []byte) []byte { return b[:16] })
	corrupt("truncated offsets", func(b []byte) []byte { return b[:40] })
	corrupt("truncated body", func(b []byte) []byte { return b[:len(b)-8] })
	corrupt("head out of range", func(b []byte) []byte {
		// First dst entry sits after the header and the (n+1) offsets,
		// padded to 8 bytes.
		off := 32 + 4*(g.NumVertices()+1)
		off = (off + 7) &^ 7
		for i := 0; i < 4; i++ {
			b[off+i] = 0xff
		}
		return b
	})
	corrupt("non-monotone offsets", func(b []byte) []byte {
		// Swap off[1] up past off[2] by maxing it.
		b[36], b[37] = 0xff, 0x7f
		return b
	})
}

func TestLoadFileBothFormats(t *testing.T) {
	g0, w0 := GenerateRoadLike(100, 21)
	dir := t.TempDir()

	binPath := filepath.Join(dir, "g.frgb")
	fb, err := os.Create(binPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := WriteBinary(fb, g0, w0); err != nil {
		t.Fatal(err)
	}
	fb.Close()

	txtPath := filepath.Join(dir, "g.txt")
	ft, err := os.Create(txtPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := WriteTo(ft, g0, w0); err != nil {
		t.Fatal(err)
	}
	ft.Close()

	for _, path := range []string{binPath, txtPath} {
		g1, w1, err := LoadFile(path)
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		assertSameGraph(t, g0, w0, g1, w1)
	}
}

// assertSameGraph compares structure, arc order, and weights.
func assertSameGraph(t *testing.T, g0 *Graph, w0 Weights, g1 *Graph, w1 Weights) {
	t.Helper()
	if g0.NumVertices() != g1.NumVertices() || g0.NumArcs() != g1.NumArcs() {
		t.Fatalf("shape differs: (%d,%d) vs (%d,%d)",
			g0.NumVertices(), g0.NumArcs(), g1.NumVertices(), g1.NumArcs())
	}
	for a := 0; a < g0.NumArcs(); a++ {
		if g0.Tail(Arc(a)) != g1.Tail(Arc(a)) || g0.Head(Arc(a)) != g1.Head(Arc(a)) {
			t.Fatalf("arc %d differs: %d->%d vs %d->%d", a,
				g0.Tail(Arc(a)), g0.Head(Arc(a)), g1.Tail(Arc(a)), g1.Head(Arc(a)))
		}
		if w0 != nil && w1 != nil && w0[a] != w1[a] {
			t.Fatalf("weight %d differs: %d vs %d", a, w0[a], w1[a])
		}
	}
}
