package graph

import (
	"testing"
)

// diamond builds the small undirected example used throughout:
//
//	0 --- 1
//	|     |
//	2 --- 3 --- 4
func diamond(t *testing.T) *Graph {
	t.Helper()
	b := NewBuilder(5)
	b.AddEdge(0, 1)
	b.AddEdge(0, 2)
	b.AddEdge(1, 3)
	b.AddEdge(2, 3)
	b.AddEdge(3, 4)
	return b.Build()
}

func TestBuilderBasics(t *testing.T) {
	g := diamond(t)
	if got := g.NumVertices(); got != 5 {
		t.Fatalf("NumVertices = %d, want 5", got)
	}
	if got := g.NumArcs(); got != 10 {
		t.Fatalf("NumArcs = %d, want 10", got)
	}
	if got := g.OutDegree(3); got != 3 {
		t.Fatalf("OutDegree(3) = %d, want 3", got)
	}
	if got := g.InDegree(3); got != 3 {
		t.Fatalf("InDegree(3) = %d, want 3", got)
	}
	if got := g.OutDegree(4); got != 1 {
		t.Fatalf("OutDegree(4) = %d, want 1", got)
	}
}

func TestArcSlotInvariant(t *testing.T) {
	// Arc IDs must equal out-adjacency slots: Tail/Head derived from the slot
	// must agree with adjacency iteration.
	g := diamond(t)
	for v := Vertex(0); int(v) < g.NumVertices(); v++ {
		first := g.FirstOut(v)
		for i, u := range g.OutNeighbors(v) {
			a := first + Arc(i)
			if g.Tail(a) != v {
				t.Fatalf("Tail(%d) = %d, want %d", a, g.Tail(a), v)
			}
			if g.Head(a) != u {
				t.Fatalf("Head(%d) = %d, want %d", a, g.Head(a), u)
			}
		}
	}
}

func TestInAdjacencyMatchesOut(t *testing.T) {
	g, _ := GenerateRandomDirected(50, 200, 100, 7)
	// Every arc must appear exactly once in the in-adjacency of its head.
	counts := make(map[Arc]int)
	for v := Vertex(0); int(v) < g.NumVertices(); v++ {
		in, arcs := g.InNeighbors(v)
		for i, u := range in {
			a := arcs[i]
			if g.Tail(a) != u || g.Head(a) != v {
				t.Fatalf("in-adjacency arc %d claims (%d,%d), graph says (%d,%d)",
					a, u, v, g.Tail(a), g.Head(a))
			}
			counts[a]++
		}
	}
	if len(counts) != g.NumArcs() {
		t.Fatalf("in-adjacency covers %d arcs, want %d", len(counts), g.NumArcs())
	}
	for a, c := range counts {
		if c != 1 {
			t.Fatalf("arc %d appears %d times in in-adjacency", a, c)
		}
	}
}

func TestFindArc(t *testing.T) {
	g := diamond(t)
	if a := g.FindArc(0, 1); a == NoArc || g.Head(a) != 1 || g.Tail(a) != 0 {
		t.Fatalf("FindArc(0,1) = %d", a)
	}
	if a := g.FindArc(0, 4); a != NoArc {
		t.Fatalf("FindArc(0,4) = %d, want NoArc", a)
	}
}

func TestConnectivity(t *testing.T) {
	g := diamond(t)
	if !g.Connected() {
		t.Fatal("diamond should be connected")
	}
	if !g.StronglyConnected() {
		t.Fatal("diamond (bidirectional) should be strongly connected")
	}
	b := NewBuilder(4)
	b.AddEdge(0, 1)
	b.AddEdge(2, 3)
	if b.Build().Connected() {
		t.Fatal("two components reported connected")
	}
	// One-way arc only: weakly but not strongly connected.
	b2 := NewBuilder(2)
	b2.AddArc(0, 1)
	g2 := b2.Build()
	if !g2.Connected() {
		t.Fatal("single arc should be weakly connected")
	}
	if g2.StronglyConnected() {
		t.Fatal("single arc should not be strongly connected")
	}
}

func TestBuilderPanicsOnOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on out-of-range arc")
		}
	}()
	NewBuilder(2).AddArc(0, 5)
}

func TestValidateWeights(t *testing.T) {
	g := diamond(t)
	w := make(Weights, g.NumArcs())
	for i := range w {
		w[i] = 10
	}
	if err := ValidateWeights(g, w); err != nil {
		t.Fatalf("valid weights rejected: %v", err)
	}
	w[3] = 0
	if err := ValidateWeights(g, w); err == nil {
		t.Fatal("zero weight accepted")
	}
	w[3] = MaxWeight
	if err := ValidateWeights(g, w); err == nil {
		t.Fatal("oversized weight accepted")
	}
	if err := ValidateWeights(g, w[:3]); err == nil {
		t.Fatal("short weight set accepted")
	}
}

func TestJointWeights(t *testing.T) {
	w1 := Weights{2, 4, 6}
	w2 := Weights{4, 4, 2}
	joint := JointWeights([]Weights{w1, w2})
	want := Weights{6, 8, 8} // sums (means scaled by P), per Eq. 1 note
	for i := range want {
		if joint[i] != want[i] {
			t.Fatalf("joint[%d] = %d, want %d", i, joint[i], want[i])
		}
	}
	if JointWeights(nil) != nil {
		t.Fatal("JointWeights(nil) should be nil")
	}
}

func TestPathCost(t *testing.T) {
	g := diamond(t)
	w := make(Weights, g.NumArcs())
	for i := range w {
		w[i] = int64(i + 1)
	}
	got, err := PathCost(g, w, []Vertex{0, 1, 3, 4})
	if err != nil {
		t.Fatal(err)
	}
	want := w[g.FindArc(0, 1)] + w[g.FindArc(1, 3)] + w[g.FindArc(3, 4)]
	if got != want {
		t.Fatalf("PathCost = %d, want %d", got, want)
	}
	if _, err := PathCost(g, w, []Vertex{0, 4}); err == nil {
		t.Fatal("disconnected path accepted")
	}
	if c, err := PathCost(g, w, []Vertex{2}); err != nil || c != 0 {
		t.Fatalf("single-vertex path: cost %d err %v", c, err)
	}
}
