// Package graph provides the road-network substrate for FedRoad: a compact
// CSR-encoded directed graph with per-arc weights kept in external weight
// sets, plaintext reference shortest-path algorithms (Dijkstra, A*,
// bidirectional), deterministic road-network generators, and simple
// serialization.
//
// The graph itself carries only topology and coordinates. Weights live in
// separate []int64 slices indexed by Arc so that every federation silo can
// hold its own private weight set over the one shared topology, exactly as in
// the paper's problem statement (§II-A).
package graph

import (
	"fmt"
	"math"
	"sort"
)

// Vertex identifies a road junction. Vertices are dense integers in [0, n).
type Vertex int32

// Arc identifies a directed road segment. Arcs are dense integers in [0, m).
// An undirected road is represented by two arcs, one per direction, each with
// its own weight (the paper's networks carry "a positive weight in both
// directions").
type Arc int32

// NoVertex marks an absent vertex (e.g. no parent in a shortest-path tree).
const NoVertex Vertex = -1

// NoArc marks an absent arc.
const NoArc Arc = -1

// Graph is an immutable directed graph in CSR form with both out- and
// in-adjacency, plus planar coordinates used for landmark selection and
// geometric lower bounds.
type Graph struct {
	numV int

	// Out-adjacency. Arc IDs equal out-adjacency slot positions, so
	// out[off[v]+i] describes arc Arc(off[v]+i).
	off []int32
	dst []Vertex

	// In-adjacency, referencing the same arc IDs.
	roff []int32
	rsrc []Vertex
	rarc []Arc

	tail []Vertex // per arc
	// head is dst re-used: head(a) == dst[a].

	x, y []float64
}

// NumVertices reports the number of vertices.
func (g *Graph) NumVertices() int { return g.numV }

// NumArcs reports the number of directed arcs.
func (g *Graph) NumArcs() int { return len(g.dst) }

// Tail returns the source vertex of arc a.
func (g *Graph) Tail(a Arc) Vertex { return g.tail[a] }

// Head returns the destination vertex of arc a.
func (g *Graph) Head(a Arc) Vertex { return g.dst[a] }

// OutDegree reports the number of outgoing arcs of v.
func (g *Graph) OutDegree(v Vertex) int { return int(g.off[v+1] - g.off[v]) }

// InDegree reports the number of incoming arcs of v.
func (g *Graph) InDegree(v Vertex) int { return int(g.roff[v+1] - g.roff[v]) }

// FirstOut returns the first out-arc ID of v; out-arcs of v are the
// contiguous range [FirstOut(v), FirstOut(v)+OutDegree(v)).
func (g *Graph) FirstOut(v Vertex) Arc { return Arc(g.off[v]) }

// OutNeighbors returns the heads of v's outgoing arcs. The slice aliases
// internal storage and must not be modified.
func (g *Graph) OutNeighbors(v Vertex) []Vertex { return g.dst[g.off[v]:g.off[v+1]] }

// InNeighbors returns the tails of v's incoming arcs together with the arc
// IDs. The slices alias internal storage and must not be modified.
func (g *Graph) InNeighbors(v Vertex) ([]Vertex, []Arc) {
	return g.rsrc[g.roff[v]:g.roff[v+1]], g.rarc[g.roff[v]:g.roff[v+1]]
}

// X returns the x-coordinate (longitude-like) of v.
func (g *Graph) X(v Vertex) float64 { return g.x[v] }

// Y returns the y-coordinate (latitude-like) of v.
func (g *Graph) Y(v Vertex) float64 { return g.y[v] }

// HasCoordinates reports whether the graph carries vertex coordinates.
func (g *Graph) HasCoordinates() bool { return len(g.x) == g.numV }

// EuclideanDistance returns the straight-line distance between u and v in
// coordinate units. It panics if the graph has no coordinates.
func (g *Graph) EuclideanDistance(u, v Vertex) float64 {
	dx := g.x[u] - g.x[v]
	dy := g.y[u] - g.y[v]
	return math.Sqrt(dx*dx + dy*dy)
}

// FindArc returns the ID of an arc from u to v, or NoArc if none exists.
// With parallel arcs, the one with the smallest ID is returned.
func (g *Graph) FindArc(u, v Vertex) Arc {
	for i := g.off[u]; i < g.off[u+1]; i++ {
		if g.dst[i] == v {
			return Arc(i)
		}
	}
	return NoArc
}

// Builder accumulates arcs and produces an immutable Graph.
//
// Arc IDs assigned by Build follow the CSR layout (sorted by tail, stable
// within a tail), not insertion order; callers must assign weights after
// Build, via the returned graph's arc IDs.
type Builder struct {
	n     int
	tails []Vertex
	heads []Vertex
	x, y  []float64
}

// NewBuilder returns a builder for a graph with n vertices.
func NewBuilder(n int) *Builder {
	return &Builder{n: n}
}

// SetCoordinates records planar coordinates for all vertices. len(x) and
// len(y) must equal the vertex count.
func (b *Builder) SetCoordinates(x, y []float64) {
	if len(x) != b.n || len(y) != b.n {
		panic(fmt.Sprintf("graph: coordinates length %d,%d != vertex count %d", len(x), len(y), b.n))
	}
	b.x, b.y = x, y
}

// AddArc adds a directed arc from u to v.
func (b *Builder) AddArc(u, v Vertex) {
	if u < 0 || int(u) >= b.n || v < 0 || int(v) >= b.n {
		panic(fmt.Sprintf("graph: arc (%d,%d) out of range [0,%d)", u, v, b.n))
	}
	b.tails = append(b.tails, u)
	b.heads = append(b.heads, v)
}

// AddEdge adds an undirected road segment as two directed arcs.
func (b *Builder) AddEdge(u, v Vertex) {
	b.AddArc(u, v)
	b.AddArc(v, u)
}

// NumArcs reports the number of arcs added so far.
func (b *Builder) NumArcs() int { return len(b.tails) }

// Build produces the immutable graph. The builder may be reused afterwards,
// but arcs already added remain.
func (b *Builder) Build() *Graph {
	m := len(b.tails)
	order := make([]int, m)
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(i, j int) bool { return b.tails[order[i]] < b.tails[order[j]] })

	g := &Graph{
		numV: b.n,
		off:  make([]int32, b.n+1),
		dst:  make([]Vertex, m),
		tail: make([]Vertex, m),
		x:    b.x,
		y:    b.y,
	}
	for _, idx := range order {
		g.off[b.tails[idx]+1]++
	}
	for v := 0; v < b.n; v++ {
		g.off[v+1] += g.off[v]
	}
	pos := make([]int32, b.n)
	copy(pos, g.off[:b.n])
	for _, idx := range order {
		t := b.tails[idx]
		slot := pos[t]
		pos[t]++
		g.dst[slot] = b.heads[idx]
		g.tail[slot] = t
	}
	g.buildReverse()
	return g
}

// CSRBuilder assembles a Graph directly in its final CSR layout with two
// passes — count out-degrees, then place arcs — so peak memory during bulk
// construction is the finished arrays themselves plus one cursor slice.
// Builder stays the convenient API for small or incremental topologies;
// CSRBuilder is the ingestion path (DIMACS import, binary snapshots) where
// Builder's staging copies and sort would triple the footprint.
//
// Usage: NewCSRBuilder(n) → Count(u) once per arc → FinishCount() →
// Place(u, v, w) once per arc → Finish(). Arcs with the same tail receive
// IDs in Place order, matching Builder's stable-within-tail rule, so a
// Count/Place sequence in file order reproduces Builder.Build exactly.
type CSRBuilder struct {
	n       int
	off     []int32
	dst     []Vertex
	tail    []Vertex
	w       []int64
	pos     []int32
	counted int
	placed  int
	x, y    []float64
}

// NewCSRBuilder starts a two-pass build for a graph with n vertices.
func NewCSRBuilder(n int) *CSRBuilder {
	if n < 0 {
		panic(fmt.Sprintf("graph: negative vertex count %d", n))
	}
	return &CSRBuilder{n: n, off: make([]int32, n+1)}
}

// Count registers one arc with tail u (pass one).
func (b *CSRBuilder) Count(u Vertex) {
	if u < 0 || int(u) >= b.n {
		panic(fmt.Sprintf("graph: tail %d out of range [0,%d)", u, b.n))
	}
	b.off[u+1]++
	b.counted++
}

// FinishCount turns the degree counts into CSR offsets and allocates the
// arc arrays. Call exactly once, after the counting pass.
func (b *CSRBuilder) FinishCount() {
	if b.dst != nil {
		panic("graph: FinishCount called twice")
	}
	for v := 0; v < b.n; v++ {
		b.off[v+1] += b.off[v]
	}
	m := b.counted
	b.dst = make([]Vertex, m)
	b.tail = make([]Vertex, m)
	b.w = make([]int64, m)
	b.pos = make([]int32, b.n)
	copy(b.pos, b.off[:b.n])
}

// Place stores one arc u→v with weight wt into its CSR slot (pass two).
// Every arc counted in pass one must be placed exactly once.
func (b *CSRBuilder) Place(u, v Vertex, wt int64) {
	if u < 0 || int(u) >= b.n || v < 0 || int(v) >= b.n {
		panic(fmt.Sprintf("graph: arc (%d,%d) out of range [0,%d)", u, v, b.n))
	}
	slot := b.pos[u]
	if slot >= b.off[u+1] {
		panic(fmt.Sprintf("graph: more arcs placed for tail %d than counted", u))
	}
	b.pos[u] = slot + 1
	b.dst[slot] = v
	b.tail[slot] = u
	b.w[slot] = wt
	b.placed++
}

// SetCoordinates records planar coordinates for all vertices; len(x) and
// len(y) must equal the vertex count.
func (b *CSRBuilder) SetCoordinates(x, y []float64) {
	if len(x) != b.n || len(y) != b.n {
		panic(fmt.Sprintf("graph: coordinates length %d,%d != vertex count %d", len(x), len(y), b.n))
	}
	b.x, b.y = x, y
}

// Finish validates the two passes matched and produces the immutable graph
// plus the weight set aligned to its arc IDs. The builder must not be
// reused afterwards.
func (b *CSRBuilder) Finish() (*Graph, Weights, error) {
	if b.dst == nil {
		return nil, nil, fmt.Errorf("graph: Finish before FinishCount")
	}
	if b.placed != b.counted {
		return nil, nil, fmt.Errorf("graph: counted %d arcs but placed %d", b.counted, b.placed)
	}
	b.pos = nil // release cursors before the reverse arrays allocate
	g := &Graph{
		numV: b.n,
		off:  b.off,
		dst:  b.dst,
		tail: b.tail,
		x:    b.x,
		y:    b.y,
	}
	g.buildReverse()
	return g, b.w, nil
}

// MemoryFootprint reports the resident bytes of the graph's CSR arrays
// (forward and reverse adjacency plus coordinates). Weight sets are
// external and cost 8 bytes per arc each on top of this.
func (g *Graph) MemoryFootprint() int64 {
	b := int64(len(g.off))*4 + int64(len(g.dst))*4 + int64(len(g.tail))*4
	b += int64(len(g.roff))*4 + int64(len(g.rsrc))*4 + int64(len(g.rarc))*4
	b += int64(len(g.x))*8 + int64(len(g.y))*8
	return b
}

func (g *Graph) buildReverse() {
	m := len(g.dst)
	g.roff = make([]int32, g.numV+1)
	g.rsrc = make([]Vertex, m)
	g.rarc = make([]Arc, m)
	for _, h := range g.dst {
		g.roff[h+1]++
	}
	for v := 0; v < g.numV; v++ {
		g.roff[v+1] += g.roff[v]
	}
	pos := make([]int32, g.numV)
	copy(pos, g.roff[:g.numV])
	for a := 0; a < m; a++ {
		h := g.dst[a]
		slot := pos[h]
		pos[h]++
		g.rsrc[slot] = g.tail[a]
		g.rarc[slot] = Arc(a)
	}
}

// Connected reports whether the graph is weakly connected (used by
// generators to validate topology).
func (g *Graph) Connected() bool {
	if g.numV == 0 {
		return true
	}
	seen := make([]bool, g.numV)
	stack := []Vertex{0}
	seen[0] = true
	count := 1
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, w := range g.OutNeighbors(v) {
			if !seen[w] {
				seen[w] = true
				count++
				stack = append(stack, w)
			}
		}
		in, _ := g.InNeighbors(v)
		for _, w := range in {
			if !seen[w] {
				seen[w] = true
				count++
				stack = append(stack, w)
			}
		}
	}
	return count == g.numV
}

// StronglyConnected reports whether every vertex can reach every other vertex
// following arc directions. Generators producing two arcs per road always
// yield strongly connected graphs when weakly connected.
func (g *Graph) StronglyConnected() bool {
	if g.numV == 0 {
		return true
	}
	reach := func(forward bool) int {
		seen := make([]bool, g.numV)
		stack := []Vertex{0}
		seen[0] = true
		count := 1
		for len(stack) > 0 {
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			var nbrs []Vertex
			if forward {
				nbrs = g.OutNeighbors(v)
			} else {
				nbrs, _ = g.InNeighbors(v)
			}
			for _, w := range nbrs {
				if !seen[w] {
					seen[w] = true
					count++
					stack = append(stack, w)
				}
			}
		}
		return count
	}
	return reach(true) == g.numV && reach(false) == g.numV
}
