package graph

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"
)

// FuzzReadFrom hardens the road-network parser: arbitrary input must either
// parse into a graph consistent with what it declares or fail cleanly —
// never panic.
func FuzzReadFrom(f *testing.F) {
	f.Add("p sp 2 1\na 0 1 7\n")
	f.Add("c comment\np sp 3 2\nv 0 1.5 2.5\na 0 1 10\na 1 2 20\n")
	f.Add("p sp 0 0\n")
	f.Add("a 0 1 5\n")
	f.Add("p sp 2 1\nv 0 nan inf\na 0 1 -5\n")
	f.Add(strings.Repeat("p sp 1 0\n", 3))
	f.Fuzz(func(t *testing.T, input string) {
		g, w, err := ReadFrom(bytes.NewBufferString(input))
		if err != nil {
			return
		}
		if g.NumArcs() != len(w) {
			t.Fatalf("parsed %d arcs but %d weights", g.NumArcs(), len(w))
		}
		for a := 0; a < g.NumArcs(); a++ {
			u, v := g.Tail(Arc(a)), g.Head(Arc(a))
			if int(u) >= g.NumVertices() || int(v) >= g.NumVertices() || u < 0 || v < 0 {
				t.Fatalf("arc %d endpoints out of range", a)
			}
		}
		// A parsed graph must survive a write/read round trip.
		var buf bytes.Buffer
		if err := WriteTo(&buf, g, w); err != nil {
			t.Fatal(err)
		}
		if _, _, err := ReadFrom(&buf); err != nil {
			t.Fatalf("round trip of accepted input failed: %v", err)
		}
	})
}

// TestDijkstraTriangleInequality property-checks the metric structure of
// shortest-path distances on random graphs: dist(s,t) ≤ dist(s,m)+dist(m,t).
func TestDijkstraTriangleInequality(t *testing.T) {
	g, w := GenerateRandomDirected(50, 200, 1000, 12345)
	dists := make([][]int64, g.NumVertices())
	for v := 0; v < g.NumVertices(); v++ {
		dists[v] = Dijkstra(g, w, Vertex(v)).Dist
	}
	f := func(sRaw, mRaw, tRaw uint8) bool {
		n := g.NumVertices()
		s, m, tt := int(sRaw)%n, int(mRaw)%n, int(tRaw)%n
		dst := dists[s][tt]
		via := dists[s][m] + dists[m][tt]
		if dists[s][m] >= InfCost || dists[m][tt] >= InfCost {
			return true
		}
		return dst <= via
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// TestDijkstraPathCostsAgree property-checks that every extracted path's
// cost equals the reported distance.
func TestDijkstraPathCostsAgree(t *testing.T) {
	g, w := GenerateRoadLike(200, 999)
	res := Dijkstra(g, w, 0)
	f := func(tRaw uint8) bool {
		tt := Vertex(int(tRaw) % g.NumVertices())
		if res.Dist[tt] >= InfCost {
			return true
		}
		path := res.Path(tt)
		c, err := PathCost(g, w, path)
		return err == nil && c == res.Dist[tt]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestJointWeightsLinearity property-checks Eq. 1/2: the joint cost of any
// path equals the sum of the per-silo partial costs.
func TestJointWeightsLinearity(t *testing.T) {
	g, w0 := GenerateGrid(8, 8, 77)
	sets := make([]Weights, 3)
	for p := range sets {
		sets[p] = make(Weights, len(w0))
		for a := range w0 {
			sets[p][a] = w0[a] + int64(p*100+a%7)
		}
	}
	joint := JointWeights(sets)
	res := Dijkstra(g, joint, 0)
	f := func(tRaw uint8) bool {
		tt := Vertex(int(tRaw) % g.NumVertices())
		path := res.Path(tt)
		if path == nil {
			return true
		}
		var sum int64
		for p := range sets {
			c, err := PathCost(g, sets[p], path)
			if err != nil {
				return false
			}
			sum += c
		}
		jc, err := PathCost(g, joint, path)
		return err == nil && sum == jc
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// FuzzReadBinary hardens the binary snapshot decoder: arbitrary bytes must
// either decode into a structurally valid graph that survives a re-encode
// round trip, or fail cleanly — never panic, never over-allocate from a
// forged header (dimension plausibility is checked before allocation).
func FuzzReadBinary(f *testing.F) {
	seed := func(g *Graph, w Weights) {
		var buf bytes.Buffer
		if err := WriteBinary(&buf, g, w); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
	}
	g, w := GenerateRandomDirected(12, 40, 1000, 4)
	seed(g, w)
	seed(g, nil)
	gc, wc := GenerateRoadLike(30, 8)
	seed(gc, wc)
	f.Add([]byte("FEDROADG"))
	f.Add([]byte("not a snapshot"))
	f.Fuzz(func(t *testing.T, input []byte) {
		g, w, err := ReadBinary(bytes.NewReader(input))
		if err != nil {
			return
		}
		if w != nil && len(w) != g.NumArcs() {
			t.Fatalf("parsed %d arcs but %d weights", g.NumArcs(), len(w))
		}
		for a := 0; a < g.NumArcs(); a++ {
			u, v := g.Tail(Arc(a)), g.Head(Arc(a))
			if u < 0 || int(u) >= g.NumVertices() || v < 0 || int(v) >= g.NumVertices() {
				t.Fatalf("arc %d endpoints out of range", a)
			}
		}
		var buf bytes.Buffer
		if err := WriteBinary(&buf, g, w); err != nil {
			t.Fatal(err)
		}
		g2, w2, err := ReadBinary(&buf)
		if err != nil {
			t.Fatalf("round trip of accepted snapshot failed: %v", err)
		}
		if g2.NumVertices() != g.NumVertices() || g2.NumArcs() != g.NumArcs() {
			t.Fatalf("round trip changed shape")
		}
		for a := 0; a < g.NumArcs(); a++ {
			if g2.Tail(Arc(a)) != g.Tail(Arc(a)) || g2.Head(Arc(a)) != g.Head(Arc(a)) {
				t.Fatalf("round trip changed arc %d", a)
			}
			if w != nil && w2[a] != w[a] {
				t.Fatalf("round trip changed weight %d", a)
			}
		}
	})
}
