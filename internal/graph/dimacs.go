package graph

import (
	"bufio"
	"fmt"
	"io"
)

// Streaming importer for standard 9th-DIMACS-challenge road networks
// (http://www.diag.uniroma1.it/challenge9/). A .gr file declares
// "p sp n m" and lists arcs as "a u v w" with 1-based vertex IDs; the
// companion .co file lists coordinates as "v id x y". The importer makes
// two passes over the arc file — count degrees, then place into CSR slots
// — so peak memory is the final CSR arrays plus O(1) scratch, never a
// buffered arc list.

// ImportOptions configures ImportDIMACS.
type ImportOptions struct {
	// MaxVertices caps the imported vertex count: vertices with a
	// (0-based) ID ≥ MaxVertices and all arcs touching them are dropped.
	// 0 means unlimited.
	MaxVertices int
	// MaxArcs caps the number of imported arcs; arcs past the cap are
	// dropped in file order. 0 means unlimited.
	MaxArcs int
	// ZeroBased marks the input's vertex IDs as 0-based (this repo's
	// WriteTo output). Default false: the DIMACS convention, 1-based.
	ZeroBased bool
	// ClampMinWeight raises every arc weight below it to this floor.
	// DIMACS graphs contain zero-length arcs (coincident junction nodes)
	// that violate the positive-weight assumption of the query engines;
	// the importer default is 1. Negative disables clamping.
	ClampMinWeight int64
	// KeepAll skips largest-SCC extraction and keeps the graph as parsed.
	KeepAll bool
	// Progress, when non-nil, receives coarse progress callbacks:
	// stage is one of "count", "place", "coords", "scc"; done/total count
	// records within the stage (total may be 0 when unknown).
	Progress func(stage string, done, total int64)
}

// ImportStats reports what ImportDIMACS did.
type ImportStats struct {
	RawVertices  int   // vertex count declared by the problem line
	RawArcs      int   // arc count declared by the problem line
	KeptVertices int   // after caps, before SCC extraction
	KeptArcs     int   // after caps, before SCC extraction
	Clamped      int   // arc weights raised to ClampMinWeight
	Components   int32 // strongly connected components (0 when KeepAll)
	SCCVertices  int   // final vertex count after SCC extraction
	SCCArcs      int   // final arc count after SCC extraction
	OneBased     bool  // the ID base the import used
}

const progressStride = 1 << 20 // records between Progress callbacks

// ImportDIMACS ingests a DIMACS .gr arc file (via open, called once per
// pass) and an optional .co coordinate reader. It applies the vertex/arc
// caps and the weight floor from opt, then — unless opt.KeepAll — extracts
// the largest strongly connected component so the result satisfies the
// mutual-reachability assumption of the query engines. The returned
// weights hold the .gr travel times, arc-aligned with the graph.
func ImportDIMACS(open func() (io.ReadCloser, error), co io.Reader, opt ImportOptions) (*Graph, Weights, ImportStats, error) {
	var stats ImportStats
	stats.OneBased = !opt.ZeroBased
	base := int64(1)
	if opt.ZeroBased {
		base = 0
	}
	clamp := opt.ClampMinWeight
	progress := opt.Progress
	if progress == nil {
		progress = func(string, int64, int64) {}
	}

	// Pass 1: parse the problem line, count kept arcs per tail.
	rc, err := open()
	if err != nil {
		return nil, nil, stats, err
	}
	var csr *CSRBuilder
	n, m := -1, int64(-1)
	keptV := 0
	// keep reports whether an arc with raw endpoints u, v survives the
	// caps; both passes must agree, and they do because the decision
	// depends only on the (deterministic) endpoints and the running count
	// of kept arcs, which both passes compute identically in file order.
	kept := int64(0)
	keep := func(u, v int64) bool {
		if int(u) >= keptV || int(v) >= keptV {
			return false
		}
		if opt.MaxArcs > 0 && kept >= int64(opt.MaxArcs) {
			return false
		}
		return true
	}
	err = scanGR(rc, func(pn, pm int64) error {
		if pn > 1<<31-2 || pm > 1<<31-2 {
			return fmt.Errorf("graph: implausible problem line n=%d m=%d", pn, pm)
		}
		n, m = int(pn), pm
		keptV = n
		if opt.MaxVertices > 0 && opt.MaxVertices < keptV {
			keptV = opt.MaxVertices
		}
		csr = NewCSRBuilder(keptV)
		return nil
	}, func(u, v, _ int64, line int64) error {
		u -= base
		v -= base
		if u < 0 || int(u) >= n || v < 0 || int(v) >= n {
			return fmt.Errorf("graph: arc (%d,%d) out of range (base %d, n %d)", u+base, v+base, base, n)
		}
		if keep(u, v) {
			csr.Count(Vertex(u))
			kept++
		}
		if line%progressStride == 0 {
			progress("count", line, m)
		}
		return nil
	}, nil)
	rc.Close()
	if err != nil {
		return nil, nil, stats, err
	}
	if csr == nil {
		return nil, nil, stats, fmt.Errorf("graph: missing problem line")
	}
	stats.RawVertices, stats.RawArcs = n, int(m)
	stats.KeptVertices, stats.KeptArcs = keptV, int(kept)
	csr.FinishCount()

	// Pass 2: place arcs into their CSR slots, clamping weights. Inline
	// "v" coordinate records (this repo's text format) are collected here
	// unless a separate .co file was given — the DIMACS convention wins.
	var xs, ys []float64
	onV := func(id int64, x, y float64) error {
		id -= base
		if id < 0 || id >= int64(n) {
			return fmt.Errorf("graph: vertex id %d out of range", id+base)
		}
		if xs == nil {
			xs = make([]float64, keptV)
			ys = make([]float64, keptV)
		}
		if int(id) < keptV {
			xs[id], ys[id] = x, y
		}
		return nil
	}
	if co != nil {
		onV = nil
	}
	rc, err = open()
	if err != nil {
		return nil, nil, stats, err
	}
	kept = 0
	err = scanGR(rc, func(pn, pm int64) error {
		if int(pn) != n || pm != m {
			return fmt.Errorf("graph: file changed between passes (p %d %d, want %d %d)", pn, pm, n, m)
		}
		return nil
	}, func(u, v, w int64, line int64) error {
		u -= base
		v -= base
		if u < 0 || int(u) >= n || v < 0 || int(v) >= n {
			return fmt.Errorf("graph: arc (%d,%d) out of range (base %d, n %d)", u+base, v+base, base, n)
		}
		if keep(u, v) {
			if w < clamp {
				w = clamp
				stats.Clamped++
			}
			csr.Place(Vertex(u), Vertex(v), w)
			kept++
		}
		if line%progressStride == 0 {
			progress("place", line, m)
		}
		return nil
	}, onV)
	rc.Close()
	if err != nil {
		return nil, nil, stats, err
	}

	// Coordinates, applied before SCC extraction so they are remapped
	// alongside the vertices.
	if co != nil {
		xs = make([]float64, keptV)
		ys = make([]float64, keptV)
		if err := scanCO(co, base, int64(n), func(id int64, x, y float64, line int64) {
			if int(id) < keptV {
				xs[id], ys[id] = x, y
			}
			if line%progressStride == 0 {
				progress("coords", line, int64(n))
			}
		}); err != nil {
			return nil, nil, stats, err
		}
	}
	if xs != nil {
		csr.SetCoordinates(xs, ys)
	}

	g, w, err := csr.Finish()
	if err != nil {
		return nil, nil, stats, err
	}
	stats.SCCVertices, stats.SCCArcs = g.NumVertices(), g.NumArcs()
	if opt.KeepAll {
		return g, w, stats, nil
	}

	progress("scc", 0, int64(g.NumVertices()))
	comp, best, count := sccLabels(g)
	stats.Components = count
	if count > 1 {
		var keepVs []Vertex
		for v := 0; v < g.NumVertices(); v++ {
			if comp[v] == best {
				keepVs = append(keepVs, Vertex(v))
			}
		}
		g, w, _ = InducedSubgraph(g, w, keepVs)
	}
	stats.SCCVertices, stats.SCCArcs = g.NumVertices(), g.NumArcs()
	progress("scc", int64(g.NumVertices()), int64(g.NumVertices()))
	return g, w, stats, nil
}

// scanGR streams a .gr file, invoking onP for the problem line and onA
// for each arc record. "v" records (inline coordinates, this repo's text
// format — standard DIMACS keeps them in a separate .co file) go to onV
// when non-nil and are skipped otherwise. Parsing is manual ([]byte field
// splitting) — at tens of millions of lines, fmt.Sscanf dominates import
// time.
func scanGR(rd io.Reader, onP func(n, m int64) error, onA func(u, v, w, line int64) error, onV func(id int64, x, y float64) error) error {
	sc := bufio.NewScanner(rd)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	havep := false
	var arcs int64
	for sc.Scan() {
		b := sc.Bytes()
		if len(b) == 0 {
			continue
		}
		switch b[0] {
		case 'c':
			continue
		case 'p':
			// "p sp <n> <m>"
			f1, rest := nextField(b[1:])
			if string(f1) != "sp" {
				return fmt.Errorf("graph: problem kind %q, want \"sp\"", f1)
			}
			f2, rest := nextField(rest)
			f3, _ := nextField(rest)
			n, err1 := parseInt(f2)
			m, err2 := parseInt(f3)
			if err1 != nil || err2 != nil || n < 0 || m < 0 {
				return fmt.Errorf("graph: bad problem line %q", b)
			}
			if havep {
				return fmt.Errorf("graph: duplicate problem line")
			}
			havep = true
			if err := onP(n, m); err != nil {
				return err
			}
		case 'a':
			if !havep {
				return fmt.Errorf("graph: arc before problem line")
			}
			f1, rest := nextField(b[1:])
			f2, rest := nextField(rest)
			f3, _ := nextField(rest)
			u, err1 := parseInt(f1)
			v, err2 := parseInt(f2)
			w, err3 := parseInt(f3)
			if err1 != nil || err2 != nil || err3 != nil {
				return fmt.Errorf("graph: bad arc line %q", b)
			}
			arcs++
			if err := onA(u, v, w, arcs); err != nil {
				return err
			}
		case 'v':
			if onV == nil {
				continue
			}
			if !havep {
				return fmt.Errorf("graph: vertex before problem line")
			}
			f1, rest := nextField(b[1:])
			f2, rest := nextField(rest)
			f3, _ := nextField(rest)
			id, err1 := parseInt(f1)
			x, err2 := parseFloat(f2)
			y, err3 := parseFloat(f3)
			if err1 != nil || err2 != nil || err3 != nil {
				return fmt.Errorf("graph: bad vertex line %q", b)
			}
			if err := onV(id, x, y); err != nil {
				return err
			}
		default:
			return fmt.Errorf("graph: unknown record %q", b)
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if !havep {
		return fmt.Errorf("graph: missing problem line")
	}
	return nil
}

// scanCO streams a .co coordinate file ("v id x y"), reporting each entry
// with a base-shifted 0-based id. DIMACS coordinates are integers
// (longitude/latitude ×10^6) but float forms are accepted too.
func scanCO(rd io.Reader, base, n int64, onV func(id int64, x, y float64, line int64)) error {
	sc := bufio.NewScanner(rd)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var lines int64
	for sc.Scan() {
		b := sc.Bytes()
		if len(b) == 0 || b[0] == 'c' || b[0] == 'p' {
			continue
		}
		if b[0] != 'v' {
			return fmt.Errorf("graph: unknown coordinate record %q", b)
		}
		f1, rest := nextField(b[1:])
		f2, rest := nextField(rest)
		f3, _ := nextField(rest)
		id, err := parseInt(f1)
		if err != nil {
			return fmt.Errorf("graph: bad coordinate line %q", b)
		}
		x, err1 := parseFloat(f2)
		y, err2 := parseFloat(f3)
		if err1 != nil || err2 != nil {
			return fmt.Errorf("graph: bad coordinate line %q", b)
		}
		id -= base
		if id < 0 || id >= n {
			return fmt.Errorf("graph: coordinate vertex id %d out of range", id+base)
		}
		lines++
		onV(id, x, y, lines)
	}
	return sc.Err()
}

// nextField returns the next whitespace-delimited field and the remainder.
func nextField(b []byte) (field, rest []byte) {
	i := 0
	for i < len(b) && (b[i] == ' ' || b[i] == '\t' || b[i] == '\r') {
		i++
	}
	j := i
	for j < len(b) && b[j] != ' ' && b[j] != '\t' && b[j] != '\r' {
		j++
	}
	return b[i:j], b[j:]
}

// parseInt parses a decimal integer (optional leading minus) from b.
func parseInt(b []byte) (int64, error) {
	if len(b) == 0 {
		return 0, fmt.Errorf("empty field")
	}
	neg := false
	if b[0] == '-' {
		neg = true
		b = b[1:]
		if len(b) == 0 {
			return 0, fmt.Errorf("bare minus")
		}
	}
	var v int64
	for _, c := range b {
		if c < '0' || c > '9' {
			return 0, fmt.Errorf("bad digit %q", c)
		}
		v = v*10 + int64(c-'0')
		if v < 0 {
			return 0, fmt.Errorf("overflow")
		}
	}
	if neg {
		v = -v
	}
	return v, nil
}

// parseFloat parses a float; the integer fast path covers DIMACS .co files.
func parseFloat(b []byte) (float64, error) {
	if v, err := parseInt(b); err == nil {
		return float64(v), nil
	}
	var f float64
	if _, err := fmt.Sscanf(string(b), "%g", &f); err != nil {
		return 0, err
	}
	return f, nil
}
