package graph

// Strongly connected components for ingestion-scale graphs. Real DIMACS
// road networks are not strongly connected (one-way ramps and clipped
// boundary roads leave thousands of satellite components); queries and CH
// contraction assume mutual reachability, so the importer extracts the
// largest SCC. The implementation is an iterative Kosaraju over the CSR
// arrays — explicit stacks, no recursion — so it handles 10^7-vertex
// graphs without growing goroutine stacks.

// LargestSCC returns the vertices of the largest strongly connected
// component in ascending order. Ties break toward the component whose
// root finishes first, deterministically. An empty graph yields nil.
func LargestSCC(g *Graph) []Vertex {
	comp, best, _ := sccLabels(g)
	if best < 0 {
		return nil
	}
	var keep []Vertex
	for v := 0; v < g.numV; v++ {
		if comp[v] == best {
			keep = append(keep, Vertex(v))
		}
	}
	return keep
}

// sccLabels runs Kosaraju and returns per-vertex component labels, the
// label of the largest component (-1 when the graph is empty) and the
// component count.
func sccLabels(g *Graph) (comp []int32, best int32, count int32) {
	n := g.numV
	if n == 0 {
		return nil, -1, 0
	}
	// Pass 1: finishing order via iterative DFS on out-adjacency.
	order := make([]Vertex, 0, n)
	state := make([]int32, n) // next out-arc index to explore; -1 = unvisited marker via visited bitmap
	visited := make([]bool, n)
	stack := make([]Vertex, 0, 64)
	for s := 0; s < n; s++ {
		if visited[s] {
			continue
		}
		visited[s] = true
		stack = append(stack, Vertex(s))
		for len(stack) > 0 {
			v := stack[len(stack)-1]
			outs := g.OutNeighbors(v)
			advanced := false
			for state[v] < int32(len(outs)) {
				w := outs[state[v]]
				state[v]++
				if !visited[w] {
					visited[w] = true
					stack = append(stack, w)
					advanced = true
					break
				}
			}
			if !advanced && state[v] >= int32(len(outs)) {
				order = append(order, v)
				stack = stack[:len(stack)-1]
			}
		}
	}
	// Pass 2: sweep the finishing order backwards, flooding on in-adjacency.
	comp = make([]int32, n)
	for i := range comp {
		comp[i] = -1
	}
	var bestSize int32
	best = -1
	for i := n - 1; i >= 0; i-- {
		root := order[i]
		if comp[root] >= 0 {
			continue
		}
		label := count
		count++
		var size int32
		comp[root] = label
		stack = append(stack[:0], root)
		for len(stack) > 0 {
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			size++
			ins, _ := g.InNeighbors(v)
			for _, u := range ins {
				if comp[u] < 0 {
					comp[u] = label
					stack = append(stack, u)
				}
			}
		}
		if size > bestSize {
			bestSize, best = size, label
		}
	}
	return comp, best, count
}

// InducedSubgraph extracts the subgraph induced by keep (ascending, no
// duplicates): kept vertices are renumbered densely in keep order, arcs
// between kept vertices retain their relative order (so arc IDs stay
// CSR-stable), and weights and coordinates are remapped alongside. w may
// be nil. The old→new vertex mapping is returned with NoVertex marking
// dropped vertices.
func InducedSubgraph(g *Graph, w Weights, keep []Vertex) (*Graph, Weights, []Vertex) {
	remap := make([]Vertex, g.numV)
	for i := range remap {
		remap[i] = NoVertex
	}
	for i, v := range keep {
		remap[v] = Vertex(i)
	}
	csr := NewCSRBuilder(len(keep))
	for _, v := range keep {
		for _, h := range g.OutNeighbors(v) {
			if remap[h] != NoVertex {
				csr.Count(remap[v])
			}
		}
	}
	csr.FinishCount()
	for _, v := range keep {
		for i := g.off[v]; i < g.off[v+1]; i++ {
			h := g.dst[i]
			if remap[h] == NoVertex {
				continue
			}
			var wt int64
			if w != nil {
				wt = w[i]
			}
			csr.Place(remap[v], remap[h], wt)
		}
	}
	if g.HasCoordinates() {
		xs := make([]float64, len(keep))
		ys := make([]float64, len(keep))
		for i, v := range keep {
			xs[i], ys[i] = g.x[v], g.y[v]
		}
		csr.SetCoordinates(xs, ys)
	}
	sub, wts, err := csr.Finish()
	if err != nil {
		// Count and Place iterate the same arcs; a mismatch is impossible.
		panic(err)
	}
	if w == nil {
		wts = nil
	}
	return sub, wts, remap
}
