package graph

import (
	"math/rand/v2"
	"testing"
)

// bellmanFord is an independent O(VE) reference used to cross-check Dijkstra.
func bellmanFord(g *Graph, w Weights, s Vertex) []int64 {
	n := g.NumVertices()
	dist := make([]int64, n)
	for i := range dist {
		dist[i] = InfCost
	}
	dist[s] = 0
	for iter := 0; iter < n; iter++ {
		changed := false
		for a := 0; a < g.NumArcs(); a++ {
			u, v := g.Tail(Arc(a)), g.Head(Arc(a))
			if dist[u] < InfCost && dist[u]+w[a] < dist[v] {
				dist[v] = dist[u] + w[a]
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	return dist
}

func TestDijkstraMatchesBellmanFord(t *testing.T) {
	for seed := uint64(1); seed <= 8; seed++ {
		g, w := GenerateRandomDirected(60, 240, 50, seed)
		want := bellmanFord(g, w, 0)
		got := Dijkstra(g, w, 0)
		for v := 0; v < g.NumVertices(); v++ {
			if got.Dist[v] != want[v] {
				t.Fatalf("seed %d: dist[%d] = %d, want %d", seed, v, got.Dist[v], want[v])
			}
		}
	}
}

func TestDijkstraTreeIsConsistent(t *testing.T) {
	g, w := GenerateRandomDirected(80, 320, 50, 42)
	res := Dijkstra(g, w, 3)
	for v := Vertex(0); int(v) < g.NumVertices(); v++ {
		if v == 3 {
			if res.Parent[v] != NoVertex || res.Dist[v] != 0 {
				t.Fatal("source must have no parent and zero distance")
			}
			continue
		}
		if res.Dist[v] >= InfCost {
			continue
		}
		p, a := res.Parent[v], res.PArc[v]
		if g.Tail(a) != p || g.Head(a) != v {
			t.Fatalf("tree arc %d does not connect %d->%d", a, p, v)
		}
		if res.Dist[p]+w[a] != res.Dist[v] {
			t.Fatalf("tree not tight at %d: %d + %d != %d", v, res.Dist[p], w[a], res.Dist[v])
		}
	}
	// Path extraction ends at source and is connected.
	path := res.Path(17)
	if len(path) == 0 || path[0] != 3 || path[len(path)-1] != 17 {
		t.Fatalf("bad path endpoints: %v", path)
	}
	cost, err := PathCost(g, w, path)
	if err != nil {
		t.Fatal(err)
	}
	if cost != res.Dist[17] {
		t.Fatalf("path cost %d != dist %d", cost, res.Dist[17])
	}
}

func TestDijkstraToMatchesFull(t *testing.T) {
	g, w := GenerateRandomDirected(70, 280, 90, 5)
	full := Dijkstra(g, w, 10)
	rng := rand.New(rand.NewPCG(9, 9))
	for i := 0; i < 25; i++ {
		tgt := Vertex(rng.IntN(g.NumVertices()))
		d, path := DijkstraTo(g, w, 10, tgt)
		if d != full.Dist[tgt] {
			t.Fatalf("DijkstraTo(10,%d) = %d, want %d", tgt, d, full.Dist[tgt])
		}
		if d < InfCost {
			c, err := PathCost(g, w, path)
			if err != nil || c != d {
				t.Fatalf("path invalid: cost=%d err=%v want=%d", c, err, d)
			}
		}
	}
}

func TestBidirectionalMatchesDijkstra(t *testing.T) {
	for seed := uint64(1); seed <= 5; seed++ {
		g, w := GenerateRandomDirected(90, 400, 70, seed+100)
		rng := rand.New(rand.NewPCG(seed, 77))
		for i := 0; i < 20; i++ {
			s := Vertex(rng.IntN(g.NumVertices()))
			tt := Vertex(rng.IntN(g.NumVertices()))
			want, _ := DijkstraTo(g, w, s, tt)
			got, path := BidirectionalDijkstra(g, w, s, tt)
			if got != want {
				t.Fatalf("seed %d: bidi(%d,%d) = %d, want %d", seed, s, tt, got, want)
			}
			if got < InfCost {
				c, err := PathCost(g, w, path)
				if err != nil || c != got {
					t.Fatalf("seed %d: bidi path invalid: cost=%d err=%v want=%d", seed, c, err, got)
				}
				if path[0] != s || path[len(path)-1] != tt {
					t.Fatalf("bad endpoints %v for (%d,%d)", path, s, tt)
				}
			}
		}
	}
}

func TestBidirectionalSameSourceTarget(t *testing.T) {
	g, w := GenerateRandomDirected(20, 60, 10, 3)
	d, path := BidirectionalDijkstra(g, w, 7, 7)
	if d != 0 || len(path) != 1 || path[0] != 7 {
		t.Fatalf("self query: d=%d path=%v", d, path)
	}
}

func TestAStarWithZeroPotentialMatchesDijkstra(t *testing.T) {
	g, w := GenerateRandomDirected(80, 320, 60, 11)
	zero := func(Vertex) int64 { return 0 }
	rng := rand.New(rand.NewPCG(2, 2))
	for i := 0; i < 15; i++ {
		s := Vertex(rng.IntN(g.NumVertices()))
		tt := Vertex(rng.IntN(g.NumVertices()))
		want, _ := DijkstraTo(g, w, s, tt)
		got, path, _ := AStar(g, w, s, tt, zero)
		if got != want {
			t.Fatalf("A*(%d,%d) = %d, want %d", s, tt, got, want)
		}
		if got < InfCost {
			if c, err := PathCost(g, w, path); err != nil || c != got {
				t.Fatalf("A* path invalid: %v (%v)", path, err)
			}
		}
	}
}

func TestAStarWithExactPotentialSettlesFewer(t *testing.T) {
	// With the perfect potential pi(v) = dist(v,t), A* walks straight down
	// the shortest path.
	g, w0 := GenerateGrid(20, 20, 99)
	s, tt := Vertex(0), Vertex(g.NumVertices()-1)
	// Exact distances to target via backward search.
	lazy := NewLazySSSP(g, w0, tt, true)
	pi := func(v Vertex) int64 { return lazy.DistTo(v) }
	dExact, _, nExact := AStar(g, w0, s, tt, pi)
	dZero, _, nZero := AStar(g, w0, s, tt, func(Vertex) int64 { return 0 })
	if dExact != dZero {
		t.Fatalf("exact-potential A* distance %d != %d", dExact, dZero)
	}
	if nExact >= nZero {
		t.Fatalf("exact potential should settle fewer vertices: %d vs %d", nExact, nZero)
	}
}

func TestLazySSSPMatchesFullBothDirections(t *testing.T) {
	g, w := GenerateRandomDirected(60, 240, 40, 21)
	root := Vertex(5)
	full := Dijkstra(g, w, root)
	lazy := NewLazySSSP(g, w, root, false)
	rng := rand.New(rand.NewPCG(4, 4))
	for i := 0; i < 30; i++ {
		v := Vertex(rng.IntN(g.NumVertices()))
		if got := lazy.DistTo(v); got != full.Dist[v] {
			t.Fatalf("lazy forward DistTo(%d) = %d, want %d", v, got, full.Dist[v])
		}
	}
	// Backward: dist from v to root equals forward Dijkstra from v evaluated at root.
	lazyB := NewLazySSSP(g, w, root, true)
	for i := 0; i < 15; i++ {
		v := Vertex(rng.IntN(g.NumVertices()))
		want, _ := DijkstraTo(g, w, v, root)
		if got := lazyB.DistTo(v); got != want {
			t.Fatalf("lazy backward DistTo(%d) = %d, want %d", v, got, want)
		}
	}
	if lazyB.SettledCount() == 0 {
		t.Fatal("backward lazy search settled nothing")
	}
}

func TestLazySSSPIsIncremental(t *testing.T) {
	g, w0 := GenerateGrid(15, 15, 5)
	lazy := NewLazySSSP(g, w0, 0, false)
	lazy.DistTo(1)
	early := lazy.SettledCount()
	lazy.DistTo(Vertex(g.NumVertices() - 1))
	late := lazy.SettledCount()
	if early >= late {
		t.Fatalf("lazy search did not grow: %d then %d", early, late)
	}
	if early > g.NumVertices()/2 {
		t.Fatalf("querying a neighbor settled %d of %d vertices", early, g.NumVertices())
	}
}
