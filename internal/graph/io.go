package graph

import (
	"bufio"
	"fmt"
	"io"
	"strings"
)

// WriteTo serializes the graph and an optional weight set in a DIMACS-like
// text format:
//
//	p sp <numVertices> <numArcs>
//	v <id> <x> <y>          (one per vertex, only when coordinates exist)
//	a <tail> <head> <weight> (one per arc, in arc-ID order; weight 0 if w nil)
//
// Vertex IDs are written 0-based (ReadFrom accepts both 0- and 1-based).
func WriteTo(wr io.Writer, g *Graph, w Weights) error {
	bw := bufio.NewWriter(wr)
	if _, err := fmt.Fprintf(bw, "p sp %d %d\n", g.NumVertices(), g.NumArcs()); err != nil {
		return err
	}
	if g.HasCoordinates() {
		for v := 0; v < g.NumVertices(); v++ {
			if _, err := fmt.Fprintf(bw, "v %d %g %g\n", v, g.x[v], g.y[v]); err != nil {
				return err
			}
		}
	}
	for a := 0; a < g.NumArcs(); a++ {
		var wt int64
		if w != nil {
			wt = w[a]
		}
		if _, err := fmt.Fprintf(bw, "a %d %d %d\n", g.Tail(Arc(a)), g.Head(Arc(a)), wt); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadFrom parses the format written by WriteTo as well as standard
// 9th-DIMACS-challenge .gr files. Arc IDs in the returned graph match line
// order of the "a" records, so the returned weight set is aligned.
//
// The problem-line kind must be "sp". Comment lines starting with "c" are
// ignored. Vertex IDs may be 0-based (this repo's format) or 1-based (the
// DIMACS convention); the base is auto-detected: any reference to id n
// (with n the declared vertex count) marks the input 1-based, referencing
// both 0 and n is an error, and inputs touching neither extreme parse as
// 0-based for round-trip compatibility with WriteTo.
//
// The parse is memory-lean: arcs stream into exact-size columnar staging
// (the problem line declares the count) and the CSR arrays are built with a
// counting two-pass instead of a sort, so peak memory is O(final CSR)
// rather than the ~3× of a buffer-and-sort path.
func ReadFrom(rd io.Reader) (*Graph, Weights, error) {
	sc := bufio.NewScanner(rd)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	n, m := -1, -1
	var havep bool
	var tails, heads []int32 // raw (unshifted) endpoint ids, exact-size
	var wts []int64
	var xs, ys []float64 // raw-id indexed, length n+1 to admit 1-based ids
	var haveCoord bool
	narcs := 0
	minID, maxID := int32(1<<30), int32(-1)
	seen := func(id int32) {
		if id < minID {
			minID = id
		}
		if id > maxID {
			maxID = id
		}
	}
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "c") {
			continue
		}
		switch line[0] {
		case 'p':
			var kind string
			if _, err := fmt.Sscanf(line, "p %s %d %d", &kind, &n, &m); err != nil {
				return nil, nil, fmt.Errorf("graph: bad problem line %q: %w", line, err)
			}
			if kind != "sp" {
				return nil, nil, fmt.Errorf("graph: problem kind %q, want \"sp\"", kind)
			}
			if n < 0 || m < 0 || n > 1<<28 || m > 1<<30 {
				return nil, nil, fmt.Errorf("graph: implausible problem line %q", line)
			}
			if havep {
				return nil, nil, fmt.Errorf("graph: duplicate problem line")
			}
			havep = true
			tails = make([]int32, m)
			heads = make([]int32, m)
			wts = make([]int64, m)
			xs = make([]float64, n+1)
			ys = make([]float64, n+1)
		case 'v':
			var id int
			var x, y float64
			if _, err := fmt.Sscanf(line, "v %d %g %g", &id, &x, &y); err != nil {
				return nil, nil, fmt.Errorf("graph: bad vertex line %q: %w", line, err)
			}
			if !havep {
				return nil, nil, fmt.Errorf("graph: vertex before problem line")
			}
			if id < 0 || id > n {
				return nil, nil, fmt.Errorf("graph: vertex id %d out of range", id)
			}
			seen(int32(id))
			xs[id], ys[id] = x, y
			haveCoord = true
		case 'a':
			var u, v int
			var wt int64
			if _, err := fmt.Sscanf(line, "a %d %d %d", &u, &v, &wt); err != nil {
				return nil, nil, fmt.Errorf("graph: bad arc line %q: %w", line, err)
			}
			if !havep {
				return nil, nil, fmt.Errorf("graph: arc before problem line")
			}
			if u < 0 || u > n || v < 0 || v > n {
				return nil, nil, fmt.Errorf("graph: arc (%d,%d) out of range", u, v)
			}
			if narcs >= m {
				return nil, nil, fmt.Errorf("graph: problem line declares %d arcs, found more", m)
			}
			seen(int32(u))
			seen(int32(v))
			tails[narcs] = int32(u)
			heads[narcs] = int32(v)
			wts[narcs] = wt
			narcs++
		default:
			return nil, nil, fmt.Errorf("graph: unknown record %q", line)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, nil, err
	}
	if !havep {
		return nil, nil, fmt.Errorf("graph: missing problem line")
	}
	if narcs != m {
		return nil, nil, fmt.Errorf("graph: problem line declares %d arcs, found %d", m, narcs)
	}

	// Decide the ID base. An id equal to n can only occur 1-based; an id 0
	// can only occur 0-based; both at once is malformed input.
	base := int32(0)
	if maxID >= 0 && int(maxID) == n {
		if minID == 0 {
			return nil, nil, fmt.Errorf("graph: input references both vertex 0 and vertex %d — mixed 0- and 1-based ids", n)
		}
		base = 1
	}
	// With a 0-based input, id n-1 is the maximum; the scan admitted up to n
	// to defer base detection, so re-check now that the base is known.
	if base == 0 && n > 0 && int(maxID) >= n {
		return nil, nil, fmt.Errorf("graph: vertex id %d out of range [0,%d)", maxID, n)
	}

	csr := NewCSRBuilder(n)
	for i := 0; i < m; i++ {
		csr.Count(Vertex(tails[i] - base))
	}
	csr.FinishCount()
	for i := 0; i < m; i++ {
		csr.Place(Vertex(tails[i]-base), Vertex(heads[i]-base), wts[i])
	}
	tails, heads, wts = nil, nil, nil // release staging before the reverse arrays allocate
	if haveCoord {
		csr.SetCoordinates(xs[base:int32(n)+base], ys[base:int32(n)+base])
	}
	return csr.Finish()
}
