package graph

import (
	"bufio"
	"fmt"
	"io"
	"strings"
)

// WriteTo serializes the graph and an optional weight set in a DIMACS-like
// text format:
//
//	p sp <numVertices> <numArcs>
//	v <id> <x> <y>          (one per vertex, only when coordinates exist)
//	a <tail> <head> <weight> (one per arc, in arc-ID order; weight 0 if w nil)
func WriteTo(wr io.Writer, g *Graph, w Weights) error {
	bw := bufio.NewWriter(wr)
	if _, err := fmt.Fprintf(bw, "p sp %d %d\n", g.NumVertices(), g.NumArcs()); err != nil {
		return err
	}
	if g.HasCoordinates() {
		for v := 0; v < g.NumVertices(); v++ {
			if _, err := fmt.Fprintf(bw, "v %d %g %g\n", v, g.x[v], g.y[v]); err != nil {
				return err
			}
		}
	}
	for a := 0; a < g.NumArcs(); a++ {
		var wt int64
		if w != nil {
			wt = w[a]
		}
		if _, err := fmt.Fprintf(bw, "a %d %d %d\n", g.Tail(Arc(a)), g.Head(Arc(a)), wt); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadFrom parses the format written by WriteTo. Arc IDs in the returned
// graph match line order of the "a" records, so the returned weight set is
// aligned. Comment lines starting with "c" are ignored, making standard
// DIMACS .gr files loadable (with 0-based vertex IDs).
func ReadFrom(rd io.Reader) (*Graph, Weights, error) {
	sc := bufio.NewScanner(rd)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var b *Builder
	var xs, ys []float64
	var haveCoord bool
	type rec struct {
		u, v Vertex
		w    int64
	}
	var arcs []rec
	n, m := -1, -1
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "c") {
			continue
		}
		switch line[0] {
		case 'p':
			var kind string
			if _, err := fmt.Sscanf(line, "p %s %d %d", &kind, &n, &m); err != nil {
				return nil, nil, fmt.Errorf("graph: bad problem line %q: %w", line, err)
			}
			if n < 0 || m < 0 || n > 1<<28 {
				return nil, nil, fmt.Errorf("graph: implausible problem line %q", line)
			}
			if b != nil {
				return nil, nil, fmt.Errorf("graph: duplicate problem line")
			}
			b = NewBuilder(n)
			xs = make([]float64, n)
			ys = make([]float64, n)
		case 'v':
			var id int
			var x, y float64
			if _, err := fmt.Sscanf(line, "v %d %g %g", &id, &x, &y); err != nil {
				return nil, nil, fmt.Errorf("graph: bad vertex line %q: %w", line, err)
			}
			if b == nil {
				return nil, nil, fmt.Errorf("graph: vertex before problem line")
			}
			if id < 0 || id >= n {
				return nil, nil, fmt.Errorf("graph: vertex id %d out of range", id)
			}
			xs[id], ys[id] = x, y
			haveCoord = true
		case 'a':
			var u, v int
			var wt int64
			if _, err := fmt.Sscanf(line, "a %d %d %d", &u, &v, &wt); err != nil {
				return nil, nil, fmt.Errorf("graph: bad arc line %q: %w", line, err)
			}
			if b == nil {
				return nil, nil, fmt.Errorf("graph: arc before problem line")
			}
			if u < 0 || u >= n || v < 0 || v >= n {
				return nil, nil, fmt.Errorf("graph: arc (%d,%d) out of range [0,%d)", u, v, n)
			}
			arcs = append(arcs, rec{Vertex(u), Vertex(v), wt})
		default:
			return nil, nil, fmt.Errorf("graph: unknown record %q", line)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, nil, err
	}
	if b == nil {
		return nil, nil, fmt.Errorf("graph: missing problem line")
	}
	if m >= 0 && len(arcs) != m {
		return nil, nil, fmt.Errorf("graph: problem line declares %d arcs, found %d", m, len(arcs))
	}
	if haveCoord {
		b.SetCoordinates(xs, ys)
	}
	for _, r := range arcs {
		b.AddArc(r.u, r.v)
	}
	g := b.Build()
	// Builder may permute arcs into CSR order; re-derive weights by matching
	// tails/heads in order. Because AddArc order is stable within a tail, the
	// i-th arc with tail t in file order maps to the i-th CSR slot of t.
	w := make(Weights, len(arcs))
	next := make(map[Vertex]Arc, g.NumVertices())
	for _, r := range arcs {
		a, ok := next[r.u]
		if !ok {
			a = g.FirstOut(r.u)
		}
		w[a] = r.w
		next[r.u] = a + 1
	}
	return g, w, nil
}
