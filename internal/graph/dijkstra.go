package graph

import "fmt"

// InfCost is the sentinel "unreachable" cost. It is far below overflow range
// so that InfCost+weight never wraps.
const InfCost int64 = 1 << 60

// MaxWeight bounds every edge weight, and MaxPathCost bounds every path cost
// representable by the federation (see DESIGN.md, fixed-point discipline).
// The MPC comparison circuit relies on |joint cost difference| < 2^41.
const (
	MaxWeight   int64 = 1 << 32
	MaxPathCost int64 = 1 << 40
)

// Weights is a per-arc weight set: Weights[a] is the travel time of arc a in
// milliseconds. A silo's private traffic observation is one Weights value.
type Weights = []int64

// ValidateWeights checks that w covers every arc of g with a positive weight
// below MaxWeight.
func ValidateWeights(g *Graph, w Weights) error {
	if len(w) != g.NumArcs() {
		return fmt.Errorf("graph: weight set has %d entries, graph has %d arcs", len(w), g.NumArcs())
	}
	for a, wt := range w {
		if wt <= 0 {
			return fmt.Errorf("graph: arc %d has non-positive weight %d", a, wt)
		}
		if wt >= MaxWeight {
			return fmt.Errorf("graph: arc %d weight %d exceeds MaxWeight", a, wt)
		}
	}
	return nil
}

// JointWeights materializes the weighted joint road network's weight set: the
// per-arc average of the silos' weight sets (paper Eq. 1). To stay in integer
// arithmetic the average is computed in fixed point: the returned weights are
// scaled by len(sets), i.e. joint[a] = Σ_p sets[p][a]. Scaling by a constant
// factor P preserves shortest paths and all cost comparisons, which is also
// why Fed-SAC can compare sums instead of means.
func JointWeights(sets []Weights) Weights {
	if len(sets) == 0 {
		return nil
	}
	joint := make(Weights, len(sets[0]))
	for _, w := range sets {
		if len(w) != len(joint) {
			panic("graph: inconsistent weight set sizes")
		}
		for a, wt := range w {
			joint[a] += wt
		}
	}
	return joint
}

// PathCost sums the weights of a path given as a vertex sequence. It returns
// an error if the sequence is not a connected path in g.
func PathCost(g *Graph, w Weights, path []Vertex) (int64, error) {
	var total int64
	for i := 0; i+1 < len(path); i++ {
		a := g.FindArc(path[i], path[i+1])
		if a == NoArc {
			return 0, fmt.Errorf("graph: no arc from %d to %d", path[i], path[i+1])
		}
		total += w[a]
	}
	return total, nil
}

// intHeap is a minimal indexed binary min-heap on (vertex, key) pairs used by
// the plaintext reference algorithms. It supports decrease-key via lazy
// insertion with a settled check at pop.
type intHeap struct {
	vs   []Vertex
	keys []int64
}

func (h *intHeap) push(v Vertex, k int64) {
	h.vs = append(h.vs, v)
	h.keys = append(h.keys, k)
	i := len(h.vs) - 1
	for i > 0 {
		p := (i - 1) / 2
		if h.keys[p] <= h.keys[i] {
			break
		}
		h.vs[p], h.vs[i] = h.vs[i], h.vs[p]
		h.keys[p], h.keys[i] = h.keys[i], h.keys[p]
		i = p
	}
}

func (h *intHeap) pop() (Vertex, int64) {
	v, k := h.vs[0], h.keys[0]
	n := len(h.vs) - 1
	h.vs[0], h.keys[0] = h.vs[n], h.keys[n]
	h.vs, h.keys = h.vs[:n], h.keys[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		s := i
		if l < n && h.keys[l] < h.keys[s] {
			s = l
		}
		if r < n && h.keys[r] < h.keys[s] {
			s = r
		}
		if s == i {
			break
		}
		h.vs[s], h.vs[i] = h.vs[i], h.vs[s]
		h.keys[s], h.keys[i] = h.keys[i], h.keys[s]
		i = s
	}
	return v, k
}

func (h *intHeap) empty() bool { return len(h.vs) == 0 }

// SSSPResult holds a full single-source shortest-path tree.
type SSSPResult struct {
	Dist   []int64  // Dist[v] = shortest distance from source; InfCost if unreachable
	Parent []Vertex // Parent[v] = predecessor on a shortest path; NoVertex at source/unreachable
	PArc   []Arc    // PArc[v] = arc into v on the tree; NoArc at source/unreachable
}

// Dijkstra computes shortest paths from s to all vertices under weight set w.
func Dijkstra(g *Graph, w Weights, s Vertex) *SSSPResult {
	n := g.NumVertices()
	res := &SSSPResult{
		Dist:   make([]int64, n),
		Parent: make([]Vertex, n),
		PArc:   make([]Arc, n),
	}
	for i := range res.Dist {
		res.Dist[i] = InfCost
		res.Parent[i] = NoVertex
		res.PArc[i] = NoArc
	}
	res.Dist[s] = 0
	h := &intHeap{}
	h.push(s, 0)
	settled := make([]bool, n)
	for !h.empty() {
		v, dv := h.pop()
		if settled[v] {
			continue
		}
		settled[v] = true
		first := g.FirstOut(v)
		for i, u := range g.OutNeighbors(v) {
			a := first + Arc(i)
			if nd := dv + w[a]; nd < res.Dist[u] {
				res.Dist[u] = nd
				res.Parent[u] = v
				res.PArc[u] = a
				h.push(u, nd)
			}
		}
	}
	return res
}

// DijkstraBackward computes shortest paths from every vertex *to* root by
// searching over reversed arcs: Dist[v] = dist(v → root). Parent[v] is the
// successor of v on a shortest v→root path and PArc[v] the arc from v to it.
func DijkstraBackward(g *Graph, w Weights, root Vertex) *SSSPResult {
	n := g.NumVertices()
	res := &SSSPResult{
		Dist:   make([]int64, n),
		Parent: make([]Vertex, n),
		PArc:   make([]Arc, n),
	}
	for i := range res.Dist {
		res.Dist[i] = InfCost
		res.Parent[i] = NoVertex
		res.PArc[i] = NoArc
	}
	res.Dist[root] = 0
	h := &intHeap{}
	h.push(root, 0)
	settled := make([]bool, n)
	for !h.empty() {
		v, dv := h.pop()
		if settled[v] {
			continue
		}
		settled[v] = true
		in, arcs := g.InNeighbors(v)
		for i, u := range in {
			a := arcs[i]
			if nd := dv + w[a]; nd < res.Dist[u] {
				res.Dist[u] = nd
				res.Parent[u] = v
				res.PArc[u] = a
				h.push(u, nd)
			}
		}
	}
	return res
}

// Path extracts the shortest path from the tree's source to t as a vertex
// sequence, or nil if t is unreachable.
func (r *SSSPResult) Path(t Vertex) []Vertex {
	if r.Dist[t] >= InfCost {
		return nil
	}
	var rev []Vertex
	for v := t; v != NoVertex; v = r.Parent[v] {
		rev = append(rev, v)
	}
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev
}

// DijkstraTo computes the shortest distance and path from s to t, stopping as
// soon as t is settled. The path is nil when t is unreachable.
func DijkstraTo(g *Graph, w Weights, s, t Vertex) (int64, []Vertex) {
	n := g.NumVertices()
	dist := make([]int64, n)
	parent := make([]Vertex, n)
	for i := range dist {
		dist[i] = InfCost
		parent[i] = NoVertex
	}
	dist[s] = 0
	h := &intHeap{}
	h.push(s, 0)
	settled := make([]bool, n)
	for !h.empty() {
		v, dv := h.pop()
		if settled[v] {
			continue
		}
		settled[v] = true
		if v == t {
			var rev []Vertex
			for u := t; u != NoVertex; u = parent[u] {
				rev = append(rev, u)
			}
			for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
				rev[i], rev[j] = rev[j], rev[i]
			}
			return dv, rev
		}
		first := g.FirstOut(v)
		for i, u := range g.OutNeighbors(v) {
			a := first + Arc(i)
			if nd := dv + w[a]; nd < dist[u] {
				dist[u] = nd
				parent[u] = v
				h.push(u, nd)
			}
		}
	}
	return InfCost, nil
}

// AStar computes the shortest distance and path from s to t using the
// admissible, consistent potential pi (estimated remaining distance to t).
// It returns the number of settled vertices alongside the result, which the
// lower-bound experiments use to compare pruning power.
func AStar(g *Graph, w Weights, s, t Vertex, pi func(Vertex) int64) (dist int64, path []Vertex, settledCount int) {
	n := g.NumVertices()
	d := make([]int64, n)
	parent := make([]Vertex, n)
	for i := range d {
		d[i] = InfCost
		parent[i] = NoVertex
	}
	d[s] = 0
	h := &intHeap{}
	h.push(s, pi(s))
	settled := make([]bool, n)
	for !h.empty() {
		v, _ := h.pop()
		if settled[v] {
			continue
		}
		settled[v] = true
		settledCount++
		if v == t {
			var rev []Vertex
			for u := t; u != NoVertex; u = parent[u] {
				rev = append(rev, u)
			}
			for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
				rev[i], rev[j] = rev[j], rev[i]
			}
			return d[t], rev, settledCount
		}
		first := g.FirstOut(v)
		for i, u := range g.OutNeighbors(v) {
			a := first + Arc(i)
			if nd := d[v] + w[a]; nd < d[u] {
				d[u] = nd
				parent[u] = v
				h.push(u, nd+pi(u))
			}
		}
	}
	return InfCost, nil, settledCount
}

// BidirectionalDijkstra computes the shortest distance and path from s to t
// by searching simultaneously from both endpoints. It is the plaintext
// counterpart of the paper's Naive-Dijk baseline.
func BidirectionalDijkstra(g *Graph, w Weights, s, t Vertex) (int64, []Vertex) {
	if s == t {
		return 0, []Vertex{s}
	}
	n := g.NumVertices()
	df := make([]int64, n)
	db := make([]int64, n)
	pf := make([]Vertex, n)
	pb := make([]Vertex, n)
	for i := 0; i < n; i++ {
		df[i], db[i] = InfCost, InfCost
		pf[i], pb[i] = NoVertex, NoVertex
	}
	df[s], db[t] = 0, 0
	hf, hb := &intHeap{}, &intHeap{}
	hf.push(s, 0)
	hb.push(t, 0)
	setf := make([]bool, n)
	setb := make([]bool, n)
	best := InfCost
	var meet Vertex = NoVertex

	relaxF := func(v Vertex, dv int64) {
		first := g.FirstOut(v)
		for i, u := range g.OutNeighbors(v) {
			a := first + Arc(i)
			if nd := dv + w[a]; nd < df[u] {
				df[u] = nd
				pf[u] = v
				hf.push(u, nd)
				if db[u] < InfCost && nd+db[u] < best {
					best = nd + db[u]
					meet = u
				}
			}
		}
	}
	relaxB := func(v Vertex, dv int64) {
		in, arcs := g.InNeighbors(v)
		for i, u := range in {
			a := arcs[i]
			if nd := dv + w[a]; nd < db[u] {
				db[u] = nd
				pb[u] = v
				hb.push(u, nd)
				if df[u] < InfCost && nd+df[u] < best {
					best = nd + df[u]
					meet = u
				}
			}
		}
	}
	// Also consider the initial endpoints as potential meeting points.
	if s == t {
		best, meet = 0, s
	}
	for !hf.empty() || !hb.empty() {
		var topf, topb int64 = InfCost, InfCost
		if !hf.empty() {
			topf = hf.keys[0]
		}
		if !hb.empty() {
			topb = hb.keys[0]
		}
		if topf+topb >= best {
			break
		}
		if topf <= topb {
			v, dv := hf.pop()
			if setf[v] {
				continue
			}
			setf[v] = true
			relaxF(v, dv)
		} else {
			v, dv := hb.pop()
			if setb[v] {
				continue
			}
			setb[v] = true
			relaxB(v, dv)
		}
	}
	if meet == NoVertex {
		return InfCost, nil
	}
	var fwd []Vertex
	for v := meet; v != NoVertex; v = pf[v] {
		fwd = append(fwd, v)
	}
	for i, j := 0, len(fwd)-1; i < j; i, j = i+1, j-1 {
		fwd[i], fwd[j] = fwd[j], fwd[i]
	}
	for v := pb[meet]; v != NoVertex; v = pb[v] {
		fwd = append(fwd, v)
	}
	return best, fwd
}

// LazySSSP incrementally settles vertices of a Dijkstra search from a fixed
// root, answering DistTo queries on demand. Direction Backward searches over
// reversed arcs, giving distances *to* the root. Fed-AMPS uses one LazySSSP
// per silo per query direction so that repeated estimations amortize to a
// single local Dijkstra (paper §V: local computation traded for accuracy).
type LazySSSP struct {
	g        *Graph
	w        Weights
	backward bool
	dist     []int64
	settled  []bool
	h        *intHeap
}

// NewLazySSSP creates a lazy search from root. If backward is true, DistTo(v)
// returns the distance from v to root (search over incoming arcs).
func NewLazySSSP(g *Graph, w Weights, root Vertex, backward bool) *LazySSSP {
	n := g.NumVertices()
	l := &LazySSSP{
		g:        g,
		w:        w,
		backward: backward,
		dist:     make([]int64, n),
		settled:  make([]bool, n),
		h:        &intHeap{},
	}
	for i := range l.dist {
		l.dist[i] = InfCost
	}
	l.dist[root] = 0
	l.h.push(root, 0)
	return l
}

// DistTo settles vertices until v is settled (or the search exhausts) and
// returns the shortest distance between root and v in the configured
// direction. Unreachable vertices report InfCost.
func (l *LazySSSP) DistTo(v Vertex) int64 {
	for !l.settled[v] && !l.h.empty() {
		u, du := l.h.pop()
		if l.settled[u] {
			continue
		}
		l.settled[u] = true
		if l.backward {
			in, arcs := l.g.InNeighbors(u)
			for i, x := range in {
				a := arcs[i]
				if nd := du + l.w[a]; nd < l.dist[x] {
					l.dist[x] = nd
					l.h.push(x, nd)
				}
			}
		} else {
			first := l.g.FirstOut(u)
			for i, x := range l.g.OutNeighbors(u) {
				a := first + Arc(i)
				if nd := du + l.w[a]; nd < l.dist[x] {
					l.dist[x] = nd
					l.h.push(x, nd)
				}
			}
		}
	}
	return l.dist[v]
}

// SettledCount reports how many vertices have been settled so far, a proxy
// for the local computation spent by Fed-AMPS.
func (l *LazySSSP) SettledCount() int {
	c := 0
	for _, s := range l.settled {
		if s {
			c++
		}
	}
	return c
}
