package graph

import (
	"fmt"
	"math"
	"math/rand/v2"
	"sort"
)

// Road classes mirror the hierarchy of real road networks (local streets,
// arterials, highways). Free-flow speed rises with class, which gives
// contraction hierarchies the "important vertex" structure they exploit.
type roadClass int

const (
	classLocal roadClass = iota
	classArterial
	classHighway
)

func (c roadClass) speed() float64 { // meters per second, free flow
	switch c {
	case classHighway:
		return 30
	case classArterial:
		return 17
	default:
		return 9
	}
}

// staticWeight converts a segment length in meters and a road class to a
// free-flow travel time in milliseconds — the public static weight set W0.
func staticWeight(lengthM float64, c roadClass) int64 {
	w := int64(math.Round(lengthM / c.speed() * 1000))
	if w < 1 {
		w = 1
	}
	return w
}

type unionFind struct{ parent, rank []int32 }

func newUnionFind(n int) *unionFind {
	uf := &unionFind{parent: make([]int32, n), rank: make([]int32, n)}
	for i := range uf.parent {
		uf.parent[i] = int32(i)
	}
	return uf
}

func (u *unionFind) find(x int32) int32 {
	for u.parent[x] != x {
		u.parent[x] = u.parent[u.parent[x]]
		x = u.parent[x]
	}
	return x
}

func (u *unionFind) union(a, b int32) bool {
	ra, rb := u.find(a), u.find(b)
	if ra == rb {
		return false
	}
	if u.rank[ra] < u.rank[rb] {
		ra, rb = rb, ra
	}
	u.parent[rb] = ra
	if u.rank[ra] == u.rank[rb] {
		u.rank[ra]++
	}
	return true
}

// GenerateGrid produces a rows×cols Manhattan-style road network with jittered
// junction positions, a hierarchy of arterials and highways on periodic grid
// lines, and a fraction of missing segments to break regularity while staying
// connected. It returns the graph and the public static weight set W0
// (free-flow travel times in ms). Deterministic in seed.
func GenerateGrid(rows, cols int, seed uint64) (*Graph, Weights) {
	if rows < 2 || cols < 2 {
		panic("graph: grid needs at least 2x2")
	}
	rng := rand.New(rand.NewPCG(seed, seed^0x9e3779b97f4a7c15))
	n := rows * cols
	const spacing = 400.0 // meters between junctions
	x := make([]float64, n)
	y := make([]float64, n)
	id := func(r, c int) Vertex { return Vertex(r*cols + c) }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			v := id(r, c)
			x[v] = (float64(c) + 0.3*(rng.Float64()-0.5)) * spacing
			y[v] = (float64(r) + 0.3*(rng.Float64()-0.5)) * spacing
		}
	}

	type cand struct {
		u, v Vertex
		cls  roadClass
	}
	classOf := func(line int) roadClass {
		switch {
		case line%24 == 0:
			return classHighway
		case line%6 == 0:
			return classArterial
		default:
			return classLocal
		}
	}
	var cands []cand
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				cands = append(cands, cand{id(r, c), id(r, c+1), classOf(r)})
			}
			if r+1 < rows {
				cands = append(cands, cand{id(r, c), id(r+1, c), classOf(c)})
			}
		}
	}
	rng.Shuffle(len(cands), func(i, j int) { cands[i], cands[j] = cands[j], cands[i] })

	uf := newUnionFind(n)
	b := NewBuilder(n)
	b.SetCoordinates(x, y)
	type kept struct {
		u, v Vertex
		cls  roadClass
	}
	var keptEdges []kept
	const dropProb = 0.18 // fraction of non-tree segments removed
	for _, e := range cands {
		if uf.union(int32(e.u), int32(e.v)) {
			keptEdges = append(keptEdges, kept{e.u, e.v, e.cls})
		} else if e.cls != classLocal || rng.Float64() >= dropProb {
			keptEdges = append(keptEdges, kept{e.u, e.v, e.cls})
		}
	}
	// Sort for deterministic arc IDs independent of shuffle order.
	sort.Slice(keptEdges, func(i, j int) bool {
		if keptEdges[i].u != keptEdges[j].u {
			return keptEdges[i].u < keptEdges[j].u
		}
		return keptEdges[i].v < keptEdges[j].v
	})
	for _, e := range keptEdges {
		b.AddEdge(e.u, e.v)
	}
	g := b.Build()

	w0 := make(Weights, g.NumArcs())
	// Recover class per arc from the kept list: both directions of an edge
	// share the class; look up via a map keyed by endpoints.
	cls := make(map[[2]Vertex]roadClass, len(keptEdges))
	for _, e := range keptEdges {
		cls[[2]Vertex{e.u, e.v}] = e.cls
		cls[[2]Vertex{e.v, e.u}] = e.cls
	}
	for a := 0; a < g.NumArcs(); a++ {
		u, v := g.Tail(Arc(a)), g.Head(Arc(a))
		w0[a] = staticWeight(g.EuclideanDistance(u, v), cls[[2]Vertex{u, v}])
	}
	return g, w0
}

// GenerateRoadLike produces an irregular planar-ish road network: n junctions
// placed uniformly in a square region, connected by k-nearest-neighbor
// segments plus whatever is needed for connectivity. A random subset of long
// segments is upgraded to arterial/highway class. Deterministic in seed.
func GenerateRoadLike(n int, seed uint64) (*Graph, Weights) {
	if n < 2 {
		panic("graph: road-like network needs at least 2 vertices")
	}
	rng := rand.New(rand.NewPCG(seed, seed^0xdeadbeefcafef00d))
	// Region side scales with sqrt(n) to keep junction density constant.
	side := math.Sqrt(float64(n)) * 400.0
	x := make([]float64, n)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		x[i] = rng.Float64() * side
		y[i] = rng.Float64() * side
	}

	// Bucket grid for neighbor queries.
	cell := side / math.Sqrt(float64(n)) * 1.5
	cols := int(side/cell) + 1
	buckets := make(map[int][]Vertex)
	bidx := func(px, py float64) int {
		return int(py/cell)*cols + int(px/cell)
	}
	for i := 0; i < n; i++ {
		k := bidx(x[i], y[i])
		buckets[k] = append(buckets[k], Vertex(i))
	}
	dist2 := func(a, b Vertex) float64 {
		dx, dy := x[a]-x[b], y[a]-y[b]
		return dx*dx + dy*dy
	}
	nearest := func(v Vertex, k int) []Vertex {
		type cd struct {
			u Vertex
			d float64
		}
		var found []cd
		cx, cy := int(x[v]/cell), int(y[v]/cell)
		for ring := 1; ring <= 6; ring++ {
			found = found[:0]
			for dy := -ring; dy <= ring; dy++ {
				for dx := -ring; dx <= ring; dx++ {
					bx, by := cx+dx, cy+dy
					if bx < 0 || by < 0 || bx >= cols {
						continue
					}
					for _, u := range buckets[by*cols+bx] {
						if u != v {
							found = append(found, cd{u, dist2(v, u)})
						}
					}
				}
			}
			if len(found) >= k {
				break
			}
		}
		sort.Slice(found, func(i, j int) bool { return found[i].d < found[j].d })
		if len(found) > k {
			found = found[:k]
		}
		out := make([]Vertex, len(found))
		for i, c := range found {
			out[i] = c.u
		}
		return out
	}

	type edge struct{ u, v Vertex }
	seen := make(map[edge]bool)
	var edges []edge
	addEdge := func(u, v Vertex) {
		if u == v {
			return
		}
		if u > v {
			u, v = v, u
		}
		e := edge{u, v}
		if !seen[e] {
			seen[e] = true
			edges = append(edges, e)
		}
	}
	const kNN = 3
	for v := Vertex(0); int(v) < n; v++ {
		for _, u := range nearest(v, kNN) {
			addEdge(v, u)
		}
	}

	// Connect remaining components: link each non-root component's random
	// vertex to the nearest vertex in a different component.
	uf := newUnionFind(n)
	for _, e := range edges {
		uf.union(int32(e.u), int32(e.v))
	}
	for {
		comps := make(map[int32][]Vertex)
		for i := 0; i < n; i++ {
			r := uf.find(int32(i))
			comps[r] = append(comps[r], Vertex(i))
		}
		if len(comps) == 1 {
			break
		}
		// Pick the smallest component and link its closest vertex pair to the
		// rest of the graph (scan is fine: few, small components in practice).
		var smallRoot int32 = -1
		for r, vs := range comps {
			if smallRoot == -1 || len(vs) < len(comps[smallRoot]) {
				smallRoot = r
			}
		}
		bestD := math.Inf(1)
		var bu, bv Vertex = NoVertex, NoVertex
		for _, u := range comps[smallRoot] {
			for i := 0; i < n; i++ {
				if uf.find(int32(i)) == smallRoot {
					continue
				}
				if d := dist2(u, Vertex(i)); d < bestD {
					bestD, bu, bv = d, u, Vertex(i)
				}
			}
		}
		addEdge(bu, bv)
		uf.union(int32(bu), int32(bv))
	}

	sort.Slice(edges, func(i, j int) bool {
		if edges[i].u != edges[j].u {
			return edges[i].u < edges[j].u
		}
		return edges[i].v < edges[j].v
	})
	b := NewBuilder(n)
	b.SetCoordinates(x, y)
	for _, e := range edges {
		b.AddEdge(e.u, e.v)
	}
	g := b.Build()

	// Road classes: ~8% arterial, ~2% highway, chosen per undirected edge.
	cls := make(map[edge]roadClass, len(edges))
	for _, e := range edges {
		r := rng.Float64()
		switch {
		case r < 0.02:
			cls[e] = classHighway
		case r < 0.10:
			cls[e] = classArterial
		default:
			cls[e] = classLocal
		}
	}
	w0 := make(Weights, g.NumArcs())
	for a := 0; a < g.NumArcs(); a++ {
		u, v := g.Tail(Arc(a)), g.Head(Arc(a))
		e := edge{u, v}
		if e.u > e.v {
			e.u, e.v = e.v, e.u
		}
		w0[a] = staticWeight(g.EuclideanDistance(u, v), cls[e])
	}
	return g, w0
}

// GenerateRandomDirected produces a strongly connected random directed graph
// with n vertices and roughly m arcs plus a Hamiltonian cycle guaranteeing
// strong connectivity, with uniform random weights in [1, maxW]. It exists
// for tests and micro-benchmarks that need adversarial (non-road-like)
// topologies. Deterministic in seed.
func GenerateRandomDirected(n, m int, maxW int64, seed uint64) (*Graph, Weights) {
	rng := rand.New(rand.NewPCG(seed, seed^0x5bf0a8b1451519fc))
	perm := rng.Perm(n)
	b := NewBuilder(n)
	type edge struct{ u, v Vertex }
	seen := make(map[edge]bool)
	add := func(u, v Vertex) {
		if u == v || seen[edge{u, v}] {
			return
		}
		seen[edge{u, v}] = true
		b.AddArc(u, v)
	}
	for i := 0; i < n; i++ {
		add(Vertex(perm[i]), Vertex(perm[(i+1)%n]))
	}
	for len(seen) < n+m {
		add(Vertex(rng.IntN(n)), Vertex(rng.IntN(n)))
	}
	g := b.Build()
	w := make(Weights, g.NumArcs())
	for a := range w {
		w[a] = 1 + rng.Int64N(maxW)
	}
	return g, w
}

// DatasetSpec describes one of the scaled evaluation datasets standing in for
// the paper's real road networks (Table I). Scale factors are documented in
// DESIGN.md.
type DatasetSpec struct {
	Name      string
	Region    string // region the paper's original covers
	PaperV    int    // vertex count in the paper's dataset
	PaperE    int    // edge count in the paper's dataset
	Vertices  int    // this repo's scaled vertex target
	Generator string // "grid" or "roadlike"
	Seed      uint64
}

// Datasets lists the scaled stand-ins for the paper's CAL, BJ and FLA
// networks, in the paper's order.
func Datasets() []DatasetSpec {
	return []DatasetSpec{
		{Name: "CAL-S", Region: "California", PaperV: 21048, PaperE: 43386, Vertices: 2048, Generator: "roadlike", Seed: 1001},
		{Name: "BJ-S", Region: "Beijing", PaperV: 338024, PaperE: 881050, Vertices: 8100, Generator: "grid", Seed: 1002},
		{Name: "FLA-S", Region: "Florida", PaperV: 1070376, PaperE: 2687902, Vertices: 20000, Generator: "roadlike", Seed: 1003},
	}
}

// FindDataset looks up a named dataset spec without materializing it — the
// non-panicking existence check for callers handling user-supplied names.
func FindDataset(name string) (DatasetSpec, bool) {
	for _, spec := range Datasets() {
		if spec.Name == name {
			return spec, true
		}
	}
	return DatasetSpec{}, false
}

// GenerateDataset materializes a named dataset. It panics on unknown names;
// callers taking names from user input should check FindDataset first.
func GenerateDataset(name string) (*Graph, Weights, DatasetSpec) {
	for _, spec := range Datasets() {
		if spec.Name != name {
			continue
		}
		var g *Graph
		var w0 Weights
		switch spec.Generator {
		case "grid":
			side := int(math.Round(math.Sqrt(float64(spec.Vertices))))
			g, w0 = GenerateGrid(side, side, spec.Seed)
		case "roadlike":
			g, w0 = GenerateRoadLike(spec.Vertices, spec.Seed)
		default:
			panic("graph: unknown generator " + spec.Generator)
		}
		return g, w0, spec
	}
	panic(fmt.Sprintf("graph: unknown dataset %q", name))
}
