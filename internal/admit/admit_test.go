package admit

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
)

func TestBound(t *testing.T) {
	g := New(2, nil)
	if err := g.Acquire(); err != nil {
		t.Fatal(err)
	}
	if err := g.Acquire(); err != nil {
		t.Fatal(err)
	}
	if err := g.Acquire(); !errors.Is(err, ErrShed) {
		t.Fatalf("third acquire: %v, want ErrShed", err)
	}
	g.Release()
	if err := g.Acquire(); err != nil {
		t.Fatalf("after release: %v", err)
	}
	st := g.Stats()
	if st.Admitted != 3 || st.Shed != 1 || st.Depth != 2 {
		t.Fatalf("stats %+v", st)
	}
}

func TestUnlimitedOnlyCounts(t *testing.T) {
	g := New(0, nil)
	for i := 0; i < 100; i++ {
		if err := g.Acquire(); err != nil {
			t.Fatal(err)
		}
	}
	st := g.Stats()
	if st.Admitted != 100 || st.Shed != 0 || st.Depth != 100 {
		t.Fatalf("stats %+v", st)
	}
}

func TestDryPoolHalvesLimit(t *testing.T) {
	depth := 10
	g := New(10, func() int { return depth })
	for i := 0; i < 10; i++ {
		if err := g.Acquire(); err != nil {
			t.Fatalf("acquire %d with full pool: %v", i, err)
		}
	}
	for i := 0; i < 10; i++ {
		g.Release()
	}
	depth = 0 // pool runs dry: effective limit (10+1)/2 = 5
	for i := 0; i < 5; i++ {
		if err := g.Acquire(); err != nil {
			t.Fatalf("acquire %d with dry pool: %v", i, err)
		}
	}
	if err := g.Acquire(); !errors.Is(err, ErrShed) {
		t.Fatal("dry pool did not halve the limit")
	}
}

// TestAccountingInvariant is the soak bench's invariant under -race: across
// any concurrency, Admitted + Shed equals Acquire calls, and depth returns to
// zero when every admitted request releases.
func TestAccountingInvariant(t *testing.T) {
	g := New(4, nil)
	var calls atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				calls.Add(1)
				if err := g.Acquire(); err == nil {
					g.Release()
				}
			}
		}()
	}
	wg.Wait()
	st := g.Stats()
	if st.Admitted+st.Shed != calls.Load() {
		t.Fatalf("admitted %d + shed %d != acquires %d", st.Admitted, st.Shed, calls.Load())
	}
	if st.Depth != 0 {
		t.Fatalf("depth %d after all releases", st.Depth)
	}
}
