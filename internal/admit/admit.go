// Package admit is the serving tier's admission gate. When queries arrive
// faster than the MPC layer can answer them, letting them queue without bound
// does not increase throughput — it only stretches every response time until
// the whole tier looks down. The gate bounds the number of requests in the
// system (running plus queued) and sheds the excess immediately, so admitted
// requests keep their latency and shed ones get an honest "retry later"
// instead of a timeout.
//
// The bound is prepool-aware: when the preprocessing pool that feeds
// protocol-mode comparisons runs dry, every admitted query is slower (it pays
// the offline phase online), so the same queue length represents more wall
// time. The gate halves its effective limit while the pool is empty,
// shedding earlier exactly when queries are at their slowest.
package admit

import (
	"errors"
	"sync/atomic"
)

// ErrShed is returned by Acquire when the request is refused. HTTP servers
// map it to 429 Too Many Requests with a Retry-After hint.
var ErrShed = errors.New("admit: overloaded, request shed")

// Gate bounds in-system requests. The zero value is not usable; call New.
type Gate struct {
	limit     int64      // max in-system (running + queued); <= 0 = unlimited
	poolDepth func() int // correlated-randomness prepool depth; nil = no prepool
	depth     atomic.Int64
	admitted  atomic.Int64
	shed      atomic.Int64
}

// Stats is a point-in-time view of the gate's accounting. Admitted + Shed
// equals the number of Acquire calls ever made — the invariant the soak
// bench checks.
type Stats struct {
	Admitted int64
	Shed     int64
	Depth    int64 // requests currently in the system
	Limit    int64 // configured bound (0 = unlimited)
}

// New builds a gate admitting at most limit concurrent requests (<= 0 means
// unlimited — the gate only counts). poolDepth, when non-nil, reports the
// preprocessing pool's buffered tuple count; a dry pool halves the effective
// limit.
func New(limit int, poolDepth func() int) *Gate {
	return &Gate{limit: int64(limit), poolDepth: poolDepth}
}

// Acquire admits the request or sheds it with ErrShed. Every admitted
// request must Release exactly once.
func (g *Gate) Acquire() error {
	lim := g.limit
	if lim > 0 && g.poolDepth != nil && g.poolDepth() == 0 {
		if lim = (lim + 1) / 2; lim < 1 {
			lim = 1
		}
	}
	for {
		d := g.depth.Load()
		if lim > 0 && d >= lim {
			g.shed.Add(1)
			return ErrShed
		}
		if g.depth.CompareAndSwap(d, d+1) {
			g.admitted.Add(1)
			return nil
		}
	}
}

// Release returns an admitted request's slot.
func (g *Gate) Release() { g.depth.Add(-1) }

// Stats reports the gate's accounting.
func (g *Gate) Stats() Stats {
	return Stats{
		Admitted: g.admitted.Load(),
		Shed:     g.shed.Load(),
		Depth:    g.depth.Load(),
		Limit:    g.limit,
	}
}
