package ch

import (
	"container/heap"
	"sort"

	"repro/internal/graph"
)

// DefaultWitnessCap bounds the number of vertices a (plaintext or federated)
// witness search settles. When the cap is hit before a target settles, the
// shortcut is added conservatively — extra shortcuts never hurt correctness,
// they only grow the index.
const DefaultWitnessCap = 80

// Ordering selects the vertex-importance heuristic for the public ordering
// phase. The paper's framework supports "various underlying algorithms"
// (§IV); both orderings are deterministic functions of public data, so every
// silo derives the same contraction order.
type Ordering string

const (
	// OrderEdgeDiff is the classic lazy-updated edge-difference heuristic
	// (contraction-hierarchy quality; the default).
	OrderEdgeDiff Ordering = "edge-diff"
	// OrderDegree contracts vertices in ascending degree, the simple
	// "importance" example the paper mentions — cheaper ordering phase,
	// larger index.
	OrderDegree Ordering = "degree"
)

// computeOrderDegree orders vertices by ascending current degree with lazy
// updates (degree grows as shortcuts attach to neighbors of contracted
// vertices). Purely topological — no weights at all.
func computeOrderDegree(g *graph.Graph) []graph.Vertex {
	n := g.NumVertices()
	deg := make([]int32, n)
	for v := 0; v < n; v++ {
		deg[v] = int32(g.OutDegree(graph.Vertex(v)) + g.InDegree(graph.Vertex(v)))
	}
	contracted := make([]bool, n)
	h := &prioHeap{}
	for v := 0; v < n; v++ {
		heap.Push(h, prioItem{graph.Vertex(v), deg[v]})
	}
	order := make([]graph.Vertex, 0, n)
	for h.Len() > 0 {
		top := heap.Pop(h).(prioItem)
		if contracted[top.v] {
			continue
		}
		if deg[top.v] > top.p {
			heap.Push(h, prioItem{top.v, deg[top.v]})
			continue
		}
		contracted[top.v] = true
		order = append(order, top.v)
		// Contracting v can add shortcuts among its neighbors: approximate
		// the degree growth by bumping each uncontracted neighbor.
		for _, u := range g.OutNeighbors(top.v) {
			if !contracted[u] {
				deg[u]++
			}
		}
	}
	return order
}

// computeOrder derives the contraction order (ascending importance) from the
// public static weights W0 with the classic lazy-update heuristic:
// priority(v) = 2·edgeDifference(v) + contractedNeighbors(v). Because W0 is
// shared and the procedure is deterministic, every silo computes the same
// order — the paper's requirement that shortcut *selection* be independent of
// the private weights.
func computeOrder(g *graph.Graph, w0 graph.Weights) []graph.Vertex {
	n := g.NumVertices()
	// Working adjacency with min weight per vertex pair.
	out := make([]map[graph.Vertex]int64, n)
	in := make([]map[graph.Vertex]int64, n)
	for v := 0; v < n; v++ {
		out[v] = make(map[graph.Vertex]int64, 4)
		in[v] = make(map[graph.Vertex]int64, 4)
	}
	for a := 0; a < g.NumArcs(); a++ {
		u, w := g.Tail(graph.Arc(a)), g.Head(graph.Arc(a))
		if u == w {
			continue
		}
		if old, ok := out[u][w]; !ok || w0[a] < old {
			out[u][w] = w0[a]
			in[w][u] = w0[a]
		}
	}
	contracted := make([]bool, n)
	deleted := make([]int32, n)

	// witnessPlain runs a capped Dijkstra from u, skipping v, and reports
	// the settled distances of the requested targets.
	witnessCap := DefaultWitnessCap
	witnessPlain := func(u, v graph.Vertex, targets map[graph.Vertex]int64) map[graph.Vertex]int64 {
		maxVia := int64(0)
		for _, c := range targets {
			if c > maxVia {
				maxVia = c
			}
		}
		dist := map[graph.Vertex]int64{u: 0}
		settledD := make(map[graph.Vertex]int64, len(targets))
		h := &pairHeap{}
		h.push(u, 0)
		settles, found := 0, 0
		settled := map[graph.Vertex]bool{}
		for h.Len() > 0 && settles < witnessCap && found < len(targets) {
			y, dy := h.pop()
			if settled[y] || dy > maxVia {
				if dy > maxVia {
					break
				}
				continue
			}
			settled[y] = true
			settles++
			settledD[y] = dy
			if _, isTarget := targets[y]; isTarget {
				found++
			}
			// Relax in sorted neighbor order: under the settle cap, the
			// heap's tie order decides WHICH vertices settle, so map
			// iteration order must not leak into the result — the ordering
			// (and with it the whole build) must be reproducible run to run.
			nbrs := make([]graph.Vertex, 0, len(out[y]))
			for z := range out[y] {
				nbrs = append(nbrs, z)
			}
			sort.Slice(nbrs, func(i, j int) bool { return nbrs[i] < nbrs[j] })
			for _, z := range nbrs {
				if z == v || contracted[z] {
					continue
				}
				if nd := dy + out[y][z]; !settled[z] {
					if old, ok := dist[z]; !ok || nd < old {
						dist[z] = nd
						h.push(z, nd)
					}
				}
			}
		}
		return settledD
	}

	// simulate counts how many shortcuts contracting v would add right now.
	simulate := func(v graph.Vertex) (needed int, pairs [][2]graph.Vertex) {
		for u := range in[v] {
			if contracted[u] {
				continue
			}
			targets := make(map[graph.Vertex]int64)
			for w := range out[v] {
				if w != u && !contracted[w] {
					targets[w] = in[v][u] + out[v][w]
				}
			}
			if len(targets) == 0 {
				continue
			}
			settledD := witnessPlain(u, v, targets)
			for w, via := range targets {
				// A witness skips the shortcut only when STRICTLY shorter,
				// mirroring the federated contraction's tie rule (see
				// Index.propose).
				d, ok := settledD[w]
				if !ok || via <= d {
					needed++
					pairs = append(pairs, [2]graph.Vertex{u, w})
				}
			}
		}
		return needed, pairs
	}

	degree := func(v graph.Vertex) int {
		d := 0
		for u := range in[v] {
			if !contracted[u] {
				d++
			}
		}
		for w := range out[v] {
			if !contracted[w] {
				d++
			}
		}
		return d
	}
	priority := func(v graph.Vertex) int32 {
		needed, _ := simulate(v)
		return int32(2*(needed-degree(v))) + deleted[v]
	}

	// Lazy-update contraction loop.
	h := &prioHeap{}
	for v := 0; v < n; v++ {
		heap.Push(h, prioItem{graph.Vertex(v), priority(graph.Vertex(v))})
	}
	order := make([]graph.Vertex, 0, n)
	for h.Len() > 0 {
		top := (*h)[0]
		np := priority(top.v)
		if np > top.p && h.Len() > 1 {
			(*h)[0].p = np
			heap.Fix(h, 0)
			continue
		}
		heap.Pop(h)
		v := top.v
		// Contract v in the working graph.
		_, pairs := simulate(v)
		for _, pr := range pairs {
			u, w := pr[0], pr[1]
			via := in[v][u] + out[v][w]
			if old, ok := out[u][w]; !ok || via < old {
				out[u][w] = via
				in[w][u] = via
			}
		}
		for u := range in[v] {
			delete(out[u], v)
			if !contracted[u] {
				deleted[u]++
			}
		}
		for w := range out[v] {
			delete(in[w], v)
			if !contracted[w] {
				deleted[w]++
			}
		}
		contracted[v] = true
		order = append(order, v)
	}
	return order
}

// pairHeap is a small (vertex, key) min-heap for plaintext witness searches.
type pairHeap struct {
	vs   []graph.Vertex
	keys []int64
}

func (h *pairHeap) Len() int { return len(h.vs) }

func (h *pairHeap) push(v graph.Vertex, k int64) {
	h.vs = append(h.vs, v)
	h.keys = append(h.keys, k)
	i := len(h.vs) - 1
	for i > 0 {
		p := (i - 1) / 2
		if h.keys[p] <= h.keys[i] {
			break
		}
		h.vs[p], h.vs[i] = h.vs[i], h.vs[p]
		h.keys[p], h.keys[i] = h.keys[i], h.keys[p]
		i = p
	}
}

func (h *pairHeap) pop() (graph.Vertex, int64) {
	v, k := h.vs[0], h.keys[0]
	n := len(h.vs) - 1
	h.vs[0], h.keys[0] = h.vs[n], h.keys[n]
	h.vs, h.keys = h.vs[:n], h.keys[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		s := i
		if l < n && h.keys[l] < h.keys[s] {
			s = l
		}
		if r < n && h.keys[r] < h.keys[s] {
			s = r
		}
		if s == i {
			break
		}
		h.vs[s], h.vs[i] = h.vs[i], h.vs[s]
		h.keys[s], h.keys[i] = h.keys[i], h.keys[s]
		i = s
	}
	return v, k
}

// prioHeap implements container/heap for the lazy ordering queue.
type prioItem struct {
	v graph.Vertex
	p int32
}

type prioHeap []prioItem

func (h prioHeap) Len() int            { return len(h) }
func (h prioHeap) Less(i, j int) bool  { return h[i].p < h[j].p }
func (h prioHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *prioHeap) Push(x interface{}) { *h = append(*h, x.(prioItem)) }
func (h *prioHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}
