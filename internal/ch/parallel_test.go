package ch

import (
	"bytes"
	"testing"

	"repro/internal/fed"
	"repro/internal/graph"
	"repro/internal/mpc"
	"repro/internal/traffic"
)

// serializeAll captures everything observable about an index: the public
// structure bytes and every silo's weight shard.
func serializeAll(t *testing.T, x *Index) [][]byte {
	t.Helper()
	var pub bytes.Buffer
	if err := x.WritePublic(&pub); err != nil {
		t.Fatal(err)
	}
	out := [][]byte{pub.Bytes()}
	for p := 0; p < len(x.siloW); p++ {
		var b bytes.Buffer
		if err := x.WriteSiloWeights(p, &b); err != nil {
			t.Fatal(err)
		}
		out = append(out, b.Bytes())
	}
	return out
}

func buildVariant(t *testing.T, g *graph.Graph, w0 graph.Weights, sets []graph.Weights, seed uint64, prm Params) *Index {
	t.Helper()
	f, err := fed.New(g, w0, sets, mpc.Params{Mode: mpc.ModeIdeal, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	x, err := BuildWith(f, prm)
	if err != nil {
		t.Fatal(err)
	}
	return x
}

// TestParallelBuildEquivalence is the determinism contract of the parallel
// builder: for any worker count, batched or not, the built index — ordering,
// shortcut set, skip records, every silo's partial weights — is byte-for-byte
// the sequential build's.
func TestParallelBuildEquivalence(t *testing.T) {
	type network struct {
		name string
		g    *graph.Graph
		w0   graph.Weights
	}
	gr, wr := graph.GenerateRoadLike(180, 21)
	gg, wg := graph.GenerateGrid(7, 8, 33)
	for _, net := range []network{{"road", gr, wr}, {"grid", gg, wg}} {
		t.Run(net.name, func(t *testing.T) {
			for _, seed := range []uint64{1, 2, 3} {
				sets := traffic.SiloWeights(net.w0, 3, traffic.Moderate, seed)
				ref := buildVariant(t, net.g, net.w0, sets, seed, Params{Workers: 1})
				refBytes := serializeAll(t, ref)
				for _, prm := range []Params{
					{Workers: 8},
					{Workers: 3},
					{Workers: 1, NoBatch: true},
					{Workers: 8, NoBatch: true},
				} {
					x := buildVariant(t, net.g, net.w0, sets, seed, prm)
					if got, want := x.NumShortcuts(), ref.NumShortcuts(); got != want {
						t.Fatalf("seed %d workers=%d noBatch=%v: %d shortcuts, sequential build has %d",
							seed, prm.Workers, prm.NoBatch, got, want)
					}
					for v := 0; v < net.g.NumVertices(); v++ {
						if x.Rank(graph.Vertex(v)) != ref.Rank(graph.Vertex(v)) {
							t.Fatalf("seed %d workers=%d: rank of vertex %d differs", seed, prm.Workers, v)
						}
					}
					for i, b := range serializeAll(t, x) {
						if !bytes.Equal(b, refBytes[i]) {
							part := "public structure"
							if i > 0 {
								part = "silo weight shard"
							}
							t.Fatalf("seed %d workers=%d noBatch=%v: %s differs from sequential build",
								seed, prm.Workers, prm.NoBatch, part)
						}
					}
				}
			}
		})
	}
}

// TestParallelBuildRepeatable: two runs with identical inputs and the same
// worker count produce identical bytes (no map-iteration or scheduling order
// leaks into the result).
func TestParallelBuildRepeatable(t *testing.T) {
	g, w0 := graph.GenerateRoadLike(150, 7)
	sets := traffic.SiloWeights(w0, 4, traffic.Heavy, 9)
	a := serializeAll(t, buildVariant(t, g, w0, sets, 5, Params{Workers: 6}))
	b := serializeAll(t, buildVariant(t, g, w0, sets, 5, Params{Workers: 6}))
	for i := range a {
		if !bytes.Equal(a[i], b[i]) {
			t.Fatalf("part %d differs between two identical parallel builds", i)
		}
	}
}

// TestParallelBuildStats sanity-checks the new pipeline statistics: multiple
// vertices per round, and batching accounted as saved MPC rounds.
func TestParallelBuildStats(t *testing.T) {
	g, w0 := graph.GenerateRoadLike(200, 11)
	sets := traffic.SiloWeights(w0, 3, traffic.Moderate, 12)
	x := buildVariant(t, g, w0, sets, 13, Params{Workers: 4})
	st := x.BuildStatistics()
	if st.Workers != 4 {
		t.Fatalf("Workers = %d, want 4", st.Workers)
	}
	if st.Rounds <= 0 || st.Rounds >= g.NumVertices() {
		t.Fatalf("Rounds = %d, want within (0,%d): independent sets should batch vertices", st.Rounds, g.NumVertices())
	}
	if st.MaxRoundWidth < 2 {
		t.Fatalf("MaxRoundWidth = %d, want >= 2", st.MaxRoundWidth)
	}
	if st.AvgRoundWidth <= 1 {
		t.Fatalf("AvgRoundWidth = %v, want > 1", st.AvgRoundWidth)
	}
	if st.RoundsSaved <= 0 {
		t.Fatalf("RoundsSaved = %d, want > 0 with batching on", st.RoundsSaved)
	}
	if st.SAC.Rounds+st.RoundsSaved != st.SAC.Compares*int64(mpc.RoundsPerCompare) {
		t.Fatalf("round accounting inconsistent: %d rounds + %d saved != %d compares × %d",
			st.SAC.Rounds, st.RoundsSaved, st.SAC.Compares, mpc.RoundsPerCompare)
	}

	noBatch := buildVariant(t, g, w0, sets, 13, Params{Workers: 4, NoBatch: true})
	if s := noBatch.BuildStatistics().RoundsSaved; s != 0 {
		t.Fatalf("NoBatch build reports %d rounds saved, want 0", s)
	}
	if noBatch.BuildStatistics().SAC.Rounds <= st.SAC.Rounds {
		t.Fatalf("batched build should pay fewer MPC rounds: batched %d, unbatched %d",
			st.SAC.Rounds, noBatch.BuildStatistics().SAC.Rounds)
	}
}
