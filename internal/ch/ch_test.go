package ch

import (
	"math/rand/v2"
	"testing"

	"repro/internal/fed"
	"repro/internal/graph"
	"repro/internal/mpc"
	"repro/internal/traffic"
)

func buildTestIndex(t *testing.T, rows, cols int, seed uint64) (*fed.Federation, *Index) {
	t.Helper()
	g, w0 := graph.GenerateGrid(rows, cols, seed)
	sets := traffic.SiloWeights(w0, 3, traffic.Moderate, seed+1)
	f, err := fed.New(g, w0, sets, mpc.Params{Mode: mpc.ModeIdeal, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	x, err := Build(f)
	if err != nil {
		t.Fatal(err)
	}
	return f, x
}

// chQueryJoint runs a plaintext bidirectional upward search on the overlay
// using the (evaluation-only) joint weights — the reference CH query the
// federated search must agree with.
func chQueryJoint(x *Index, s, t graph.Vertex) int64 {
	type side struct {
		dist map[graph.Vertex]int64
		h    *pairHeap
	}
	mk := func(root graph.Vertex) *side {
		sd := &side{dist: map[graph.Vertex]int64{root: 0}, h: &pairHeap{}}
		sd.h.push(root, 0)
		return sd
	}
	fwd, bwd := mk(s), mk(t)
	run := func(sd *side, forward bool) {
		settled := map[graph.Vertex]bool{}
		for sd.h.Len() > 0 {
			v, dv := sd.h.pop()
			if settled[v] {
				continue
			}
			settled[v] = true
			var arcs []int32
			if forward {
				arcs = x.UpOut(v)
			} else {
				arcs = x.DownIn(v)
			}
			for _, a := range arcs {
				var z graph.Vertex
				if forward {
					z = x.Head(a)
				} else {
					z = x.Tail(a)
				}
				nd := dv + x.JointWeight(a)
				if old, ok := sd.dist[z]; !ok || nd < old {
					sd.dist[z] = nd
					sd.h.push(z, nd)
				}
			}
		}
	}
	run(fwd, true)
	run(bwd, false)
	best := graph.InfCost
	for v, df := range fwd.dist {
		if db, ok := bwd.dist[v]; ok && df+db < best {
			best = df + db
		}
	}
	return best
}

func checkShortcutInvariants(t *testing.T, f *fed.Federation, x *Index) {
	t.Helper()
	g := f.Graph()
	for a := int32(x.numBase); a < int32(x.NumArcs()); a++ {
		arcs := x.UnpackArcs(a)
		// Continuity of the unpacked base path.
		if g.Tail(graph.Arc(arcs[0])) != x.Tail(a) || g.Head(graph.Arc(arcs[len(arcs)-1])) != x.Head(a) {
			t.Fatalf("shortcut %d endpoints do not match its unpacked path", a)
		}
		for i := 0; i+1 < len(arcs); i++ {
			if g.Head(graph.Arc(arcs[i])) != g.Tail(graph.Arc(arcs[i+1])) {
				t.Fatalf("shortcut %d unpacks to a disconnected arc sequence", a)
			}
		}
		// Each silo's partial shortcut weight equals its private cost of the
		// shared witness path — the paper's consistency requirement.
		for p := 0; p < f.P(); p++ {
			var sum int64
			for _, ba := range arcs {
				sum += f.Silo(p).Weight(graph.Arc(ba))
			}
			if sum != x.SiloWeight(p, a) {
				t.Fatalf("shortcut %d silo %d: partial weight %d != witness path cost %d",
					a, p, x.SiloWeight(p, a), sum)
			}
		}
	}
}

func TestBuildProducesValidHierarchy(t *testing.T) {
	f, x := buildTestIndex(t, 9, 9, 31)
	if x.NumShortcuts() == 0 {
		t.Fatal("no shortcuts added")
	}
	// Ranks are a permutation of 0..n-1.
	n := f.Graph().NumVertices()
	seen := make([]bool, n)
	for v := 0; v < n; v++ {
		r := x.Rank(graph.Vertex(v))
		if r < 0 || int(r) >= n || seen[r] {
			t.Fatalf("rank %d of vertex %d invalid or duplicated", r, v)
		}
		seen[r] = true
	}
	// Every shortcut's via vertex ranks below both endpoints.
	for a := int32(x.numBase); a < int32(x.NumArcs()); a++ {
		v := x.Via(a)
		if x.Rank(v) >= x.Rank(x.Tail(a)) || x.Rank(v) >= x.Rank(x.Head(a)) {
			t.Fatalf("shortcut %d: via rank %d not below endpoints", a, x.Rank(v))
		}
	}
	checkShortcutInvariants(t, f, x)
	st := x.BuildStatistics()
	if st.SAC.Compares == 0 {
		t.Fatal("construction used no secure comparisons")
	}
	if st.Shortcuts != x.NumShortcuts() {
		t.Fatal("stats shortcut count mismatch")
	}
}

func TestCHQueryMatchesWJRNDijkstra(t *testing.T) {
	f, x := buildTestIndex(t, 10, 10, 37)
	g := f.Graph()
	joint := f.JointWeights()
	rng := rand.New(rand.NewPCG(7, 7))
	for trial := 0; trial < 60; trial++ {
		s := graph.Vertex(rng.IntN(g.NumVertices()))
		tt := graph.Vertex(rng.IntN(g.NumVertices()))
		want, _ := graph.DijkstraTo(g, joint, s, tt)
		got := chQueryJoint(x, s, tt)
		if got != want {
			t.Fatalf("trial %d: CH dist(%d,%d) = %d, want %d", trial, s, tt, got, want)
		}
	}
}

func TestCHOnRoadLikeNetwork(t *testing.T) {
	g, w0 := graph.GenerateRoadLike(400, 5)
	sets := traffic.SiloWeights(w0, 3, traffic.Heavy, 6)
	f, err := fed.New(g, w0, sets, mpc.Params{Mode: mpc.ModeIdeal, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	x, err := Build(f)
	if err != nil {
		t.Fatal(err)
	}
	joint := f.JointWeights()
	rng := rand.New(rand.NewPCG(9, 9))
	for trial := 0; trial < 40; trial++ {
		s := graph.Vertex(rng.IntN(g.NumVertices()))
		tt := graph.Vertex(rng.IntN(g.NumVertices()))
		want, _ := graph.DijkstraTo(g, joint, s, tt)
		if got := chQueryJoint(x, s, tt); got != want {
			t.Fatalf("trial %d: CH dist(%d,%d) = %d, want %d", trial, s, tt, got, want)
		}
	}
	checkShortcutInvariants(t, f, x)
}

func TestUpdateKeepsQueriesCorrect(t *testing.T) {
	f, x := buildTestIndex(t, 9, 9, 41)
	g := f.Graph()
	rng := rand.New(rand.NewPCG(11, 11))

	for round := 0; round < 3; round++ {
		// Re-sample weights of a random subset of arcs on every silo: some
		// rise, some fall back toward free flow.
		numChange := g.NumArcs() / 10
		changed := make([]graph.Arc, 0, numChange)
		for _, ai := range rng.Perm(g.NumArcs())[:numChange] {
			a := graph.Arc(ai)
			changed = append(changed, a)
			for p := 0; p < f.P(); p++ {
				factor := 0.8 + rng.Float64()*1.2
				nw := int64(float64(f.StaticWeights()[a]) * factor)
				if nw < 1 {
					nw = 1
				}
				f.Silo(p).SetWeight(a, nw)
			}
		}
		stats, err := x.Update(changed)
		if err != nil {
			t.Fatal(err)
		}
		if stats.ChangedArcs != len(changed) {
			t.Fatalf("stats.ChangedArcs = %d", stats.ChangedArcs)
		}
		joint := f.JointWeights()
		for trial := 0; trial < 40; trial++ {
			s := graph.Vertex(rng.IntN(g.NumVertices()))
			tt := graph.Vertex(rng.IntN(g.NumVertices()))
			want, _ := graph.DijkstraTo(g, joint, s, tt)
			if got := chQueryJoint(x, s, tt); got != want {
				t.Fatalf("round %d trial %d: after update, CH dist(%d,%d) = %d, want %d",
					round, trial, s, tt, got, want)
			}
		}
		checkShortcutInvariants(t, f, x)
	}
}

func TestUpdateNoChangesIsCheap(t *testing.T) {
	f, x := buildTestIndex(t, 8, 8, 43)
	_ = f
	stats, err := x.Update(nil)
	if err != nil {
		t.Fatal(err)
	}
	if stats.RecomputedShortcuts != 0 || stats.ReverifiedVertices != 0 || stats.AddedShortcuts != 0 {
		t.Fatalf("no-op update did work: %+v", stats)
	}
}

func TestUpdateCostScalesWithChangeSize(t *testing.T) {
	f, x := buildTestIndex(t, 10, 10, 47)
	g := f.Graph()
	rng := rand.New(rand.NewPCG(13, 13))
	change := func(frac float64) UpdateStats {
		num := int(frac * float64(g.NumArcs()))
		changed := make([]graph.Arc, 0, num)
		for _, ai := range rng.Perm(g.NumArcs())[:num] {
			a := graph.Arc(ai)
			changed = append(changed, a)
			for p := 0; p < f.P(); p++ {
				f.Silo(p).SetWeight(a, f.StaticWeights()[a]+int64(rng.IntN(10000))+1)
			}
		}
		st, err := x.Update(changed)
		if err != nil {
			t.Fatal(err)
		}
		return st
	}
	small := change(0.01)
	large := change(0.20)
	if large.SAC.Compares <= small.SAC.Compares {
		t.Fatalf("larger change should cost more comparisons: %d vs %d",
			large.SAC.Compares, small.SAC.Compares)
	}
	if small.SAC.Compares >= x.BuildStatistics().SAC.Compares {
		t.Fatalf("a 1%% update (%d comparisons) should be cheaper than construction (%d)",
			small.SAC.Compares, x.BuildStatistics().SAC.Compares)
	}
}

func TestDegreeOrderingBuildsCorrectIndex(t *testing.T) {
	g, w0 := graph.GenerateGrid(8, 8, 97)
	sets := traffic.SiloWeights(w0, 3, traffic.Moderate, 98)
	f, err := fed.New(g, w0, sets, mpc.Params{Mode: mpc.ModeIdeal, Seed: 99})
	if err != nil {
		t.Fatal(err)
	}
	x, err := BuildWith(f, Params{Ordering: OrderDegree})
	if err != nil {
		t.Fatal(err)
	}
	joint := f.JointWeights()
	rng := rand.New(rand.NewPCG(17, 17))
	for trial := 0; trial < 40; trial++ {
		s := graph.Vertex(rng.IntN(g.NumVertices()))
		tt := graph.Vertex(rng.IntN(g.NumVertices()))
		want, _ := graph.DijkstraTo(g, joint, s, tt)
		if got := chQueryJoint(x, s, tt); got != want {
			t.Fatalf("degree ordering: dist(%d,%d) = %d, want %d", s, tt, got, want)
		}
	}
	checkShortcutInvariants(t, f, x)
}

func TestWitnessCapTradeoff(t *testing.T) {
	// A tiny witness cap adds conservative shortcuts: the index grows but
	// queries must remain exact.
	g, w0 := graph.GenerateGrid(7, 7, 103)
	sets := traffic.SiloWeights(w0, 3, traffic.Moderate, 104)
	mk := func(cap int) (*fed.Federation, *Index) {
		f, err := fed.New(g, w0, sets, mpc.Params{Mode: mpc.ModeIdeal, Seed: 105})
		if err != nil {
			t.Fatal(err)
		}
		x, err := BuildWith(f, Params{WitnessCap: cap})
		if err != nil {
			t.Fatal(err)
		}
		return f, x
	}
	fTiny, tiny := mk(2)
	_, normal := mk(0) // default cap
	if tiny.NumShortcuts() <= normal.NumShortcuts() {
		t.Fatalf("tiny cap (%d shortcuts) should exceed default (%d)",
			tiny.NumShortcuts(), normal.NumShortcuts())
	}
	joint := fTiny.JointWeights()
	rng := rand.New(rand.NewPCG(19, 19))
	for trial := 0; trial < 30; trial++ {
		s := graph.Vertex(rng.IntN(g.NumVertices()))
		tt := graph.Vertex(rng.IntN(g.NumVertices()))
		want, _ := graph.DijkstraTo(g, joint, s, tt)
		if got := chQueryJoint(tiny, s, tt); got != want {
			t.Fatalf("tiny witness cap: dist(%d,%d) = %d, want %d", s, tt, got, want)
		}
	}
}

func TestBuildWithRejectsUnknownOrdering(t *testing.T) {
	g, w0 := graph.GenerateGrid(4, 4, 107)
	sets := traffic.SiloWeights(w0, 2, traffic.Moderate, 108)
	f, err := fed.New(g, w0, sets, mpc.Params{Mode: mpc.ModeIdeal, Seed: 109})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := BuildWith(f, Params{Ordering: Ordering("bogus")}); err == nil {
		t.Fatal("unknown ordering accepted")
	}
}
