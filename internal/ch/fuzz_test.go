package ch

import (
	"bytes"
	"io"
	"sync"
	"testing"

	"repro/internal/fed"
	"repro/internal/graph"
	"repro/internal/mpc"
	"repro/internal/traffic"
)

// fuzzEnv builds one small valid index and serializes it, shared across all
// fuzz executions (the corpus mutates the bytes, not the build).
type fuzzEnv struct {
	f        *fed.Federation
	public   []byte
	shards   [][]byte
	skeleton []byte // serialized topology skeleton of the same graph
}

var (
	fuzzOnce sync.Once
	fuzzed   *fuzzEnv
)

func getFuzzEnv(tb testing.TB) *fuzzEnv {
	fuzzOnce.Do(func() {
		g, w0 := graph.GenerateGrid(4, 5, 17)
		sets := traffic.SiloWeights(w0, 2, traffic.Moderate, 18)
		f, err := fed.New(g, w0, sets, mpc.Params{Mode: mpc.ModeIdeal, Seed: 19})
		if err != nil {
			tb.Fatal(err)
		}
		x, err := Build(f)
		if err != nil {
			tb.Fatal(err)
		}
		var pub bytes.Buffer
		if err := x.WritePublic(&pub); err != nil {
			tb.Fatal(err)
		}
		env := &fuzzEnv{f: f, public: pub.Bytes()}
		for p := 0; p < f.P(); p++ {
			var b bytes.Buffer
			if err := x.WriteSiloWeights(p, &b); err != nil {
				tb.Fatal(err)
			}
			env.shards = append(env.shards, b.Bytes())
		}
		sk, err := BuildSkeleton(g, w0, Params{})
		if err != nil {
			tb.Fatal(err)
		}
		var skb bytes.Buffer
		if err := sk.Write(&skb); err != nil {
			tb.Fatal(err)
		}
		env.skeleton = skb.Bytes()
		fuzzed = env
	})
	return fuzzed
}

// FuzzLoadIndexPublic feeds mutated public-structure bytes (alongside valid
// shards) into LoadIndex: it must either load a structurally valid index or
// return an error — never panic, hang, or hand back an index that violates
// the hierarchy invariants queries rely on.
func FuzzLoadIndexPublic(f *testing.F) {
	env := getFuzzEnv(f)
	f.Add(env.public)                     // the valid encoding
	f.Add(env.public[:len(env.public)/2]) // truncation
	f.Add([]byte{})                       // empty
	// A few targeted corruptions: header fields, arc table, skip records.
	for _, off := range []int{0, 4, 8, 12, 16, 20, 24, len(env.public) - 4} {
		if off >= 0 && off+4 <= len(env.public) {
			mut := append([]byte(nil), env.public...)
			mut[off] ^= 0xff
			f.Add(mut)
		}
	}
	f.Fuzz(func(t *testing.T, public []byte) {
		env := getFuzzEnv(t)
		shards := make([]io.Reader, len(env.shards))
		for p := range shards {
			shards[p] = bytes.NewReader(env.shards[p])
		}
		x, err := LoadIndex(env.f, bytes.NewReader(public), shards)
		if err != nil {
			return // clean rejection is the expected outcome for corrupt input
		}
		// Whatever loaded must satisfy the invariants LoadIndex validates;
		// spot-check the ones queries and updates depend on.
		g := env.f.Graph()
		n := g.NumVertices()
		for a := int32(0); a < int32(x.NumArcs()); a++ {
			if int(x.Tail(a)) < 0 || int(x.Tail(a)) >= n || int(x.Head(a)) < 0 || int(x.Head(a)) >= n {
				t.Fatalf("loaded index has arc %d with out-of-range endpoints", a)
			}
			if v := x.Via(a); v != NoShortcut {
				if x.Rank(v) >= x.Rank(x.Tail(a)) || v == x.Tail(a) || v == x.Head(a) {
					t.Fatalf("loaded index has shortcut %d violating the via-rank invariant", a)
				}
				// Unpack must terminate and stay within simple-path length.
				if l := len(x.Unpack(a)); l > n+1 {
					t.Fatalf("shortcut %d unpacks to %d vertices (max %d)", a, l, n+1)
				}
			}
		}
	})
}

// FuzzReadIndex feeds mutated WriteIndex bundles into ReadIndex: the bundle
// framing plus LoadIndex's validation must reject corruption cleanly — never
// panic, hang, over-allocate, or load an index violating query invariants.
func FuzzReadIndex(f *testing.F) {
	env := getFuzzEnv(f)
	x, err := LoadIndex(env.f, bytes.NewReader(env.public), func() []io.Reader {
		rs := make([]io.Reader, len(env.shards))
		for p := range rs {
			rs[p] = bytes.NewReader(env.shards[p])
		}
		return rs
	}())
	if err != nil {
		f.Fatal(err)
	}
	var bundle bytes.Buffer
	if err := x.WriteIndex(&bundle); err != nil {
		f.Fatal(err)
	}
	valid := bundle.Bytes()
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add(valid[:13]) // header + truncated section length
	f.Add([]byte{})
	for _, off := range []int{0, 4, 8, 12, 16, 20, len(valid) / 2, len(valid) - 8} {
		if off >= 0 && off+4 <= len(valid) {
			mut := append([]byte(nil), valid...)
			mut[off] ^= 0xff
			f.Add(mut)
		}
	}
	f.Fuzz(func(t *testing.T, bundle []byte) {
		env := getFuzzEnv(t)
		x, err := ReadIndex(env.f, bytes.NewReader(bundle))
		if err != nil {
			return // clean rejection is the expected outcome for corrupt input
		}
		n := env.f.Graph().NumVertices()
		for a := int32(0); a < int32(x.NumArcs()); a++ {
			if int(x.Tail(a)) < 0 || int(x.Tail(a)) >= n || int(x.Head(a)) < 0 || int(x.Head(a)) >= n {
				t.Fatalf("loaded index has arc %d with out-of-range endpoints", a)
			}
			for p := 0; p < env.f.P(); p++ {
				if x.SiloWeight(p, a) <= 0 {
					t.Fatalf("loaded index has non-positive weight (silo %d, arc %d)", p, a)
				}
			}
		}
	})
}

// FuzzLoadSkeleton feeds mutated FRSK bytes into ReadSkeleton: a persisted
// skeleton is the topology a restart re-customizes over, so a corrupt one
// must fail validation — never panic, over-allocate, or load a skeleton that
// would later produce wrong routes. Anything that loads must decode to the
// exact topology that was written (the checksum makes weaker outcomes
// impossible).
func FuzzLoadSkeleton(f *testing.F) {
	env := getFuzzEnv(f)
	valid := env.skeleton
	f.Add(valid)
	f.Add(valid[:len(valid)/2]) // truncation mid-arc-table
	f.Add(valid[:19])           // truncated header
	f.Add(valid[:len(valid)-2]) // missing checksum tail
	f.Add([]byte{})
	for _, off := range []int{0, 4, 8, 12, 16, 20, 24, len(valid) / 2, len(valid) - 5} {
		if off >= 0 && off+4 <= len(valid) {
			mut := append([]byte(nil), valid...)
			mut[off] ^= 0xff
			f.Add(mut)
		}
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		env := getFuzzEnv(t)
		g := env.f.Graph()
		sk, err := ReadSkeleton(g, bytes.NewReader(data))
		if err != nil {
			return // clean rejection is the expected outcome for corrupt input
		}
		// Accepted input must round-trip to the identical byte stream: the
		// trailing checksum covers every field, so an accepted skeleton can
		// only be the one that was written (possibly with trailing garbage
		// after the checksum, which the reader never consumes).
		var out bytes.Buffer
		if err := sk.Write(&out); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(out.Bytes(), valid) {
			t.Fatal("accepted skeleton differs from the one written")
		}
		// And its customization plan must be derivable without panics.
		if sk.Levels() < 0 {
			t.Fatal("negative level depth")
		}
	})
}

// FuzzLoadIndexShard mutates one weight shard while keeping the public part
// valid: weights must be validated (positive, complete) or rejected cleanly.
func FuzzLoadIndexShard(f *testing.F) {
	env := getFuzzEnv(f)
	f.Add(env.shards[0])
	f.Add(env.shards[0][:8])
	f.Add([]byte{})
	for _, off := range []int{0, 4, 8, 12, 16, 24} {
		if off+4 <= len(env.shards[0]) {
			mut := append([]byte(nil), env.shards[0]...)
			mut[off] ^= 0xff
			f.Add(mut)
		}
	}
	f.Fuzz(func(t *testing.T, shard0 []byte) {
		env := getFuzzEnv(t)
		shards := make([]io.Reader, len(env.shards))
		shards[0] = bytes.NewReader(shard0)
		for p := 1; p < len(env.shards); p++ {
			shards[p] = bytes.NewReader(env.shards[p])
		}
		x, err := LoadIndex(env.f, bytes.NewReader(env.public), shards)
		if err != nil {
			return
		}
		for a := int32(0); a < int32(x.NumArcs()); a++ {
			for p := 0; p < env.f.P(); p++ {
				if x.SiloWeight(p, a) <= 0 {
					t.Fatalf("loaded index has non-positive weight (silo %d, arc %d)", p, a)
				}
			}
		}
	})
}
