package ch

import (
	"math/rand/v2"
	"testing"

	"repro/internal/fed"
	"repro/internal/graph"
	"repro/internal/mpc"
	"repro/internal/traffic"
)

// federationFor wraps a topology in a 3-silo moderate-congestion federation.
func federationFor(t *testing.T, g *graph.Graph, w0 graph.Weights) *fed.Federation {
	t.Helper()
	sets := traffic.SiloWeights(w0, 3, traffic.Moderate, 91)
	f, err := fed.New(g, w0, sets, mpc.Params{Mode: mpc.ModeIdeal, Seed: 92})
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestUpdateOnlyIncreases(t *testing.T) {
	f, x := buildTestIndex(t, 8, 8, 81)
	g := f.Graph()
	rng := rand.New(rand.NewPCG(21, 21))
	var changed []graph.Arc
	for _, ai := range rng.Perm(g.NumArcs())[:g.NumArcs()/8] {
		a := graph.Arc(ai)
		changed = append(changed, a)
		for p := 0; p < f.P(); p++ {
			f.Silo(p).SetWeight(a, f.Silo(p).Weight(a)*3)
		}
	}
	if _, err := x.Update(changed); err != nil {
		t.Fatal(err)
	}
	joint := f.JointWeights()
	for trial := 0; trial < 40; trial++ {
		s := graph.Vertex(rng.IntN(g.NumVertices()))
		tt := graph.Vertex(rng.IntN(g.NumVertices()))
		want, _ := graph.DijkstraTo(g, joint, s, tt)
		if got := chQueryJoint(x, s, tt); got != want {
			t.Fatalf("increase-only update: dist(%d,%d) = %d, want %d", s, tt, got, want)
		}
	}
	checkShortcutInvariants(t, f, x)
}

func TestUpdateOnlyDecreases(t *testing.T) {
	// Weights fall back toward free flow: skipped shortcuts may become
	// needed via cheaper via paths (via arcs changed) — the other flip
	// direction.
	f, x := buildTestIndex(t, 8, 8, 83)
	g := f.Graph()
	rng := rand.New(rand.NewPCG(23, 23))
	var changed []graph.Arc
	for _, ai := range rng.Perm(g.NumArcs())[:g.NumArcs()/8] {
		a := graph.Arc(ai)
		changed = append(changed, a)
		for p := 0; p < f.P(); p++ {
			nw := f.Silo(p).Weight(a) / 3
			if nw < 1 {
				nw = 1
			}
			f.Silo(p).SetWeight(a, nw)
		}
	}
	if _, err := x.Update(changed); err != nil {
		t.Fatal(err)
	}
	joint := f.JointWeights()
	for trial := 0; trial < 40; trial++ {
		s := graph.Vertex(rng.IntN(g.NumVertices()))
		tt := graph.Vertex(rng.IntN(g.NumVertices()))
		want, _ := graph.DijkstraTo(g, joint, s, tt)
		if got := chQueryJoint(x, s, tt); got != want {
			t.Fatalf("decrease-only update: dist(%d,%d) = %d, want %d", s, tt, got, want)
		}
	}
}

func TestUpdateExtremeSingleArc(t *testing.T) {
	// One arc swings by 1000x in both directions across repeated updates;
	// queries crossing it must track exactly.
	f, x := buildTestIndex(t, 7, 7, 85)
	g := f.Graph()
	a := g.FindArc(24, 25) // central arc on the grid
	if a == graph.NoArc {
		a = 0
	}
	rng := rand.New(rand.NewPCG(25, 25))
	for round := 0; round < 6; round++ {
		factor := int64(1000)
		if round%2 == 1 {
			factor = 1
		}
		for p := 0; p < f.P(); p++ {
			f.Silo(p).SetWeight(a, f.StaticWeights()[a]*factor)
		}
		if _, err := x.Update([]graph.Arc{a}); err != nil {
			t.Fatal(err)
		}
		joint := f.JointWeights()
		for trial := 0; trial < 15; trial++ {
			s := graph.Vertex(rng.IntN(g.NumVertices()))
			tt := graph.Vertex(rng.IntN(g.NumVertices()))
			want, _ := graph.DijkstraTo(g, joint, s, tt)
			if got := chQueryJoint(x, s, tt); got != want {
				t.Fatalf("round %d: dist(%d,%d) = %d, want %d", round, s, tt, got, want)
			}
		}
	}
}

func TestUpdateConvergesAcrossManyRounds(t *testing.T) {
	// Ten successive random re-congestions: the index may only grow, and
	// every round must remain exact. Guards against drift/corruption in the
	// incremental maintenance state (skip records, parents, via index).
	f, x := buildTestIndex(t, 8, 8, 87)
	g := f.Graph()
	rng := rand.New(rand.NewPCG(27, 27))
	prevArcs := x.NumArcs()
	for round := 0; round < 10; round++ {
		var changed []graph.Arc
		for _, ai := range rng.Perm(g.NumArcs())[:g.NumArcs()/20] {
			a := graph.Arc(ai)
			changed = append(changed, a)
			for p := 0; p < f.P(); p++ {
				f.Silo(p).SetWeight(a, f.StaticWeights()[a]+rng.Int64N(40000)+1)
			}
		}
		if _, err := x.Update(changed); err != nil {
			t.Fatal(err)
		}
		if x.NumArcs() < prevArcs {
			t.Fatal("overlay shrank")
		}
		prevArcs = x.NumArcs()
		joint := f.JointWeights()
		for trial := 0; trial < 12; trial++ {
			s := graph.Vertex(rng.IntN(g.NumVertices()))
			tt := graph.Vertex(rng.IntN(g.NumVertices()))
			want, _ := graph.DijkstraTo(g, joint, s, tt)
			if got := chQueryJoint(x, s, tt); got != want {
				t.Fatalf("round %d: dist(%d,%d) = %d, want %d", round, s, tt, got, want)
			}
		}
	}
	checkShortcutInvariants(t, f, x)
}

// TestCustomizedUpdateNeverGrows is the regression test for the customized
// dynamic-update path: a witness-built index may legitimately grow higher-ID
// arcs when traffic flips witness decisions, but a CUSTOMIZED index has an
// immutable topology — Update must refresh the skeleton's weight slots in
// place and never append an arc, across many rounds of heavy re-congestion,
// while staying exactly Dijkstra-correct.
func TestCustomizedUpdateNeverGrows(t *testing.T) {
	g, w0 := graph.GenerateRoadLike(260, 93)
	f := federationFor(t, g, w0)
	sk, err := BuildSkeleton(g, w0, Params{})
	if err != nil {
		t.Fatal(err)
	}
	x, err := Customize(f, sk)
	if err != nil {
		t.Fatal(err)
	}
	arcs0 := x.NumArcs()
	rng := rand.New(rand.NewPCG(31, 31))
	for round := 0; round < 15; round++ {
		var changed []graph.Arc
		for _, ai := range rng.Perm(g.NumArcs())[:g.NumArcs()/12] {
			a := graph.Arc(ai)
			changed = append(changed, a)
			for p := 0; p < f.P(); p++ {
				f.Silo(p).SetWeight(a, w0[a]+rng.Int64N(60000)+1)
			}
		}
		st, err := x.Update(changed)
		if err != nil {
			t.Fatal(err)
		}
		if st.AddedShortcuts != 0 {
			t.Fatalf("round %d: customized update added %d shortcuts", round, st.AddedShortcuts)
		}
		if x.NumArcs() != arcs0 {
			t.Fatalf("round %d: overlay changed size %d -> %d (topology is immutable)", round, arcs0, x.NumArcs())
		}
		joint := f.JointWeights()
		for trial := 0; trial < 12; trial++ {
			s := graph.Vertex(rng.IntN(g.NumVertices()))
			tt := graph.Vertex(rng.IntN(g.NumVertices()))
			want, _ := graph.DijkstraTo(g, joint, s, tt)
			if got := chQueryJoint(x, s, tt); got != want {
				t.Fatalf("round %d: dist(%d,%d) = %d, want %d", round, s, tt, got, want)
			}
		}
	}
}

func TestUpdateOnRoadLikeTopology(t *testing.T) {
	g, w0 := graph.GenerateRoadLike(300, 89)
	f := federationFor(t, g, w0)
	x, err := Build(f)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(29, 29))
	var changed []graph.Arc
	for _, ai := range rng.Perm(g.NumArcs())[:g.NumArcs()/10] {
		a := graph.Arc(ai)
		changed = append(changed, a)
		for p := 0; p < f.P(); p++ {
			f.Silo(p).SetWeight(a, w0[a]*2+rng.Int64N(10000))
		}
	}
	if _, err := x.Update(changed); err != nil {
		t.Fatal(err)
	}
	joint := f.JointWeights()
	for trial := 0; trial < 40; trial++ {
		s := graph.Vertex(rng.IntN(g.NumVertices()))
		tt := graph.Vertex(rng.IntN(g.NumVertices()))
		want, _ := graph.DijkstraTo(g, joint, s, tt)
		if got := chQueryJoint(x, s, tt); got != want {
			t.Fatalf("road-like update: dist(%d,%d) = %d, want %d", s, tt, got, want)
		}
	}
}
