package ch

import (
	"container/heap"
	"time"

	"repro/internal/graph"
	"repro/internal/mpc"
)

// UpdateStats reports the cost of one dynamic index update.
type UpdateStats struct {
	ChangedArcs         int
	RecomputedShortcuts int // shortcut weights refreshed by propagation
	ReverifiedVertices  int // contraction decisions re-examined
	AddedShortcuts      int // shortcuts added by re-verification
	SAC                 mpc.Stats
	WallTime            time.Duration
}

// Update refreshes the index after the silos changed their private weights
// of the given base arcs (§IV, Federated Index Updating). Three steps:
//
//  1. refresh the partial weights of the changed base arcs from the silos;
//  2. propagate weight recomputation bottom-up through the shortcuts whose
//     via paths depend on an affected arc (pure local computation: each
//     silo recomputes its own partial sums);
//  3. re-verify the contraction decisions whose inputs changed — the via
//     arcs incident to a re-weighted arc's lower-ranked endpoint, and the
//     recorded witness paths that used an affected arc — adding any newly
//     required shortcuts (with federated witness searches through Fed-SAC)
//     and cascading to higher ranks.
//
// Shortcuts are never removed: a now-redundant shortcut still carries the
// exact cost of a real path, so query correctness is unaffected; the index
// merely stays slightly larger than a fresh rebuild would be.
//
// Cost: for the paper's workload — small random fractions of edges
// re-weighted (Table II) — an update is far cheaper than reconstruction.
// Adversarial changes that re-weight an entire top-of-hierarchy corridor can
// invalidate so many witness decisions that re-verification exceeds a
// rebuild; callers can compare UpdateStats.SAC against BuildStatistics().SAC
// and rebuild when updates trend that way.
func (x *Index) Update(changed []graph.Arc) (UpdateStats, error) {
	// A customized index has an immutable topology: updates refresh the
	// skeleton's weight slots in place instead of growing the overlay.
	if x.skel != nil {
		return x.updateCustomized(changed)
	}
	start := time.Now()
	before := x.f.Engine().Stats()
	stats := UpdateStats{ChangedArcs: len(changed)}
	p := x.f.P()

	// Step 1 — refresh base arc partials.
	affected := make(map[int32]bool)
	for _, a := range changed {
		ai := int32(a)
		for s := 0; s < p; s++ {
			nw := x.f.Silo(s).Weight(a)
			if x.siloW[s][ai] != nw {
				x.siloW[s][ai] = nw
				affected[ai] = true
			}
		}
	}

	// Step 2 — bottom-up propagation. Children always have smaller overlay
	// arc IDs than the shortcuts built on them, so one ascending scan
	// suffices.
	for a := int32(x.numBase); a < int32(len(x.tail)); a++ {
		if !affected[x.childA[a]] && !affected[x.childB[a]] {
			continue
		}
		changedHere := false
		for s := 0; s < p; s++ {
			nw := x.siloW[s][x.childA[a]] + x.siloW[s][x.childB[a]]
			if x.siloW[s][a] != nw {
				x.siloW[s][a] = nw
				changedHere = true
			}
		}
		if changedHere {
			affected[a] = true
			stats.RecomputedShortcuts++
		}
	}

	// Step 3 — re-verification, cascading upward in rank order.
	witOwners := x.witnessOwnerIndex()
	queue := &vertexRankHeap{x: x}
	enqueued := make(map[graph.Vertex]bool)
	push := func(v graph.Vertex) {
		if !enqueued[v] {
			enqueued[v] = true
			heap.Push(queue, v)
		}
	}
	seed := func(a int32) {
		u, w := x.tail[a], x.head[a]
		if x.rank[u] < x.rank[w] {
			push(u)
		} else {
			push(w)
		}
		for _, owner := range witOwners[a] {
			push(owner)
		}
	}
	for a := range affected {
		seed(a)
	}

	sac := x.f.NewSAC()
	done := make(map[graph.Vertex]bool)
	for queue.Len() > 0 {
		v := heap.Pop(queue).(graph.Vertex)
		if done[v] {
			continue
		}
		done[v] = true
		stats.ReverifiedVertices++
		// Snapshot the weights of v's shortcuts so only genuinely changed
		// arcs feed the cascade (re-seeding unchanged shortcuts would
		// balloon re-verification far past a rebuild).
		beforeW := make(map[int32][]int64)
		for _, a := range x.hs.viaIndex[v] {
			ws := make([]int64, p)
			for s := 0; s < p; s++ {
				ws[s] = x.siloW[s][a]
			}
			beforeW[a] = ws
		}
		added := x.contract(sac, v, updateEligibility(x, x.rank[v]))
		if err := sac.Err(); err != nil {
			return stats, err
		}
		stats.AddedShortcuts += len(added)
		// Newly added arcs and weight-changed refreshed shortcuts cascade.
		newAffected := append([]int32{}, added...)
		for _, a := range x.hs.viaIndex[v] {
			old, ok := beforeW[a]
			changed := !ok
			for s := 0; !changed && s < p; s++ {
				changed = old[s] != x.siloW[s][a]
			}
			if changed {
				newAffected = append(newAffected, a)
			}
		}
		for _, na := range newAffected {
			// Propagate weight changes through dependents of na.
			frontier := []int32{na}
			for len(frontier) > 0 {
				cur := frontier[0]
				frontier = frontier[1:]
				if !affected[cur] {
					affected[cur] = true
					seed(cur)
				}
				for _, parent := range x.hs.parents[cur] {
					ch := false
					for s := 0; s < p; s++ {
						nw := x.siloW[s][x.childA[parent]] + x.siloW[s][x.childB[parent]]
						if x.siloW[s][parent] != nw {
							x.siloW[s][parent] = nw
							ch = true
						}
					}
					if ch && !affected[parent] {
						stats.RecomputedShortcuts++
						frontier = append(frontier, parent)
					}
				}
			}
		}
		for _, a := range added {
			x.addArcToQueryLists(a)
		}
	}

	stats.SAC = x.f.Engine().Stats().Sub(before)
	stats.WallTime = time.Since(start)
	x.buildStats.Shortcuts = x.NumShortcuts()
	return stats, nil
}

// witnessOwnerIndex maps each overlay arc to the contracted vertices whose
// skip decision relied on it as part of a witness path.
func (x *Index) witnessOwnerIndex() map[int32][]graph.Vertex {
	idx := make(map[int32][]graph.Vertex)
	for v, recs := range x.hs.skips {
		for _, r := range recs {
			for _, a := range r.witnessArcs {
				idx[a] = append(idx[a], graph.Vertex(v))
			}
		}
	}
	return idx
}

// vertexRankHeap orders vertices by contraction rank (ascending) so that
// re-verification cascades strictly upward.
type vertexRankHeap struct {
	x  *Index
	vs []graph.Vertex
}

func (h *vertexRankHeap) Len() int { return len(h.vs) }
func (h *vertexRankHeap) Less(i, j int) bool {
	return h.x.rank[h.vs[i]] < h.x.rank[h.vs[j]]
}
func (h *vertexRankHeap) Swap(i, j int)      { h.vs[i], h.vs[j] = h.vs[j], h.vs[i] }
func (h *vertexRankHeap) Push(v interface{}) { h.vs = append(h.vs, v.(graph.Vertex)) }
func (h *vertexRankHeap) Pop() interface{} {
	n := len(h.vs)
	v := h.vs[n-1]
	h.vs = h.vs[:n-1]
	return v
}
