package ch

import (
	"bufio"
	"bytes"
	"container/heap"
	"encoding/binary"
	"fmt"
	"io"
	"sort"
	"sync"
	"time"

	"repro/internal/graph"
)

// Skeleton is the metric-independent half of a customizable contraction
// hierarchy: the contraction order plus the full shortcut topology, with no
// weights and therefore no MPC. It is a pure function of the public graph
// topology, so every silo derives the identical skeleton locally and it
// never changes under traffic.
//
// Unlike the witness-pruned hierarchy of Build, the skeleton adds a shortcut
// for EVERY lower triangle: a witness found under one traffic metric proves
// nothing about the next one, so pruning here would be unsound. The price is
// a larger overlay; the payoff is that a traffic change costs one
// weight-customization sweep (Customize) instead of a full federated
// rebuild.
type Skeleton struct {
	g       *graph.Graph
	rank    []int32 // contraction position per vertex
	numBase int

	// Per overlay arc; shortcut via vertices are non-decreasing in rank
	// across arc IDs (shortcuts are created in contraction order), which is
	// what lets one ascending pass derive the customization plan.
	tail, head []graph.Vertex
	via        []graph.Vertex // NoShortcut for base arcs

	stats SkeletonStats

	planOnce sync.Once
	plan     *custPlan
}

// SkeletonStats reports the (plaintext, MPC-free) skeleton construction
// cost. Ordering is interleaved with contraction (the greedy score tracks
// the live overlay), so there is no separate ordering phase to report.
type SkeletonStats struct {
	Shortcuts int
	WallTime  time.Duration
}

// maxSkelArcs caps the overlay so arc IDs stay inside int32 (the ID width
// everywhere in the index); hitting it means the ordering degenerated on
// this topology and the skeleton must fail cleanly, not wrap around.
const maxSkelArcs = 1<<31 - 1

// BuildSkeleton contracts the graph on topology alone: every (in-neighbor,
// out-neighbor) pair alive at a contraction gains a shortcut unconditionally
// — no witness search, no weights, no federation. The result can be
// customized for any traffic metric with Customize.
//
// Because nothing is witness-pruned, the contraction order decides the
// overlay size outright, and a static order computed on the input graph
// degenerates badly: without pruning, late vertices accumulate huge live
// neighborhoods (on an 8k-vertex grid the fill-in overflows 2^31 arcs). The
// order is therefore chosen dynamically — always contract the vertex whose
// *live* overlay neighborhood is currently cheapest (greedy min fill-in for
// OrderEdgeDiff, min live degree for OrderDegree), ties broken by vertex ID
// — which is the standard customizable-CH discipline and keeps the skeleton
// near-linear on road-like topologies. The order is a deterministic function
// of the public topology alone, so every silo still derives the identical
// skeleton locally.
func BuildSkeleton(g *graph.Graph, w0 graph.Weights, prm Params) (*Skeleton, error) {
	switch prm.Ordering {
	case "":
		prm.Ordering = OrderEdgeDiff
	case OrderEdgeDiff, OrderDegree:
	default:
		return nil, fmt.Errorf("ch: unknown ordering %q", prm.Ordering)
	}
	start := time.Now()
	n := g.NumVertices()
	sk := &Skeleton{g: g, numBase: g.NumArcs(), rank: make([]int32, n)}

	// Live overlay adjacency as neighbor *sets*: parallel overlay arcs (many
	// triangles over one (u,w) pair) collapse to a single entry, which is all
	// the ordering scores and the pair enumeration need. Sets only ever hold
	// uncontracted vertices — a contraction removes itself from its
	// neighbors' sets on the way out.
	outAdj := make([]map[graph.Vertex]struct{}, n)
	inAdj := make([]map[graph.Vertex]struct{}, n)
	for v := 0; v < n; v++ {
		outAdj[v] = make(map[graph.Vertex]struct{})
		inAdj[v] = make(map[graph.Vertex]struct{})
	}
	for a := 0; a < g.NumArcs(); a++ {
		u, w := g.Tail(graph.Arc(a)), g.Head(graph.Arc(a))
		sk.tail = append(sk.tail, u)
		sk.head = append(sk.head, w)
		sk.via = append(sk.via, NoShortcut)
		if u != w {
			outAdj[u][w] = struct{}{}
			inAdj[w][u] = struct{}{}
		}
	}

	score := func(v graph.Vertex) int64 {
		ins, outs := int64(len(inAdj[v])), int64(len(outAdj[v]))
		if prm.Ordering == OrderDegree {
			return ins + outs
		}
		return ins*outs - (ins + outs) // new triangles minus retired arcs
	}

	// Lazy-update heap: entries may be stale (a neighbor contracted since
	// the push), so every pop re-scores; a stale entry is replaced by a
	// current one and duplicates are skipped once the vertex is contracted.
	// Selection is deterministic: (score, vertex ID) ordering, and map
	// iteration never decides anything.
	h := make(skelHeap, 0, n)
	for v := 0; v < n; v++ {
		h = append(h, skelCand{graph.Vertex(v), score(graph.Vertex(v))})
	}
	heap.Init(&h)

	contracted := make([]bool, n)
	pos := 0
	for h.Len() > 0 {
		c := heap.Pop(&h).(skelCand)
		v := c.v
		if contracted[v] {
			continue
		}
		if s := score(v); s != c.score {
			heap.Push(&h, skelCand{v, s})
			continue
		}
		sk.rank[v] = int32(pos)
		pos++
		ins := sortedNeighbors(inAdj[v])
		outs := sortedNeighbors(outAdj[v])
		for _, u := range ins {
			for _, w := range outs {
				if u == w {
					continue
				}
				if len(sk.tail) >= maxSkelArcs {
					return nil, fmt.Errorf("ch: skeleton overlay exceeds %d arcs — ordering degenerated on this topology", maxSkelArcs)
				}
				sk.tail = append(sk.tail, u)
				sk.head = append(sk.head, w)
				sk.via = append(sk.via, v)
				outAdj[u][w] = struct{}{}
				inAdj[w][u] = struct{}{}
			}
		}
		for _, u := range ins {
			delete(outAdj[u], v)
		}
		for _, w := range outs {
			delete(inAdj[w], v)
		}
		contracted[v] = true
		// Eagerly refresh the scores of everything this contraction touched,
		// so the greedy choice tracks the live overlay instead of waiting for
		// a stale entry to surface.
		for _, u := range ins {
			heap.Push(&h, skelCand{u, score(u)})
		}
		for _, w := range outs {
			heap.Push(&h, skelCand{w, score(w)})
		}
	}
	sk.stats = SkeletonStats{
		Shortcuts: sk.NumShortcuts(),
		WallTime:  time.Since(start),
	}
	return sk, nil
}

// sortedNeighbors materializes a neighbor set ascending by vertex ID so
// skeleton arc IDs are deterministic.
func sortedNeighbors(set map[graph.Vertex]struct{}) []graph.Vertex {
	out := make([]graph.Vertex, 0, len(set))
	for v := range set {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// skelCand / skelHeap implement the lazy ordering queue of BuildSkeleton.
type skelCand struct {
	v     graph.Vertex
	score int64
}

type skelHeap []skelCand

func (h skelHeap) Len() int { return len(h) }
func (h skelHeap) Less(i, j int) bool {
	if h[i].score != h[j].score {
		return h[i].score < h[j].score
	}
	return h[i].v < h[j].v
}
func (h skelHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *skelHeap) Push(x any)   { *h = append(*h, x.(skelCand)) }
func (h *skelHeap) Pop() any {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// Graph returns the graph the skeleton was contracted from.
func (sk *Skeleton) Graph() *graph.Graph { return sk.g }

// NumArcs reports the overlay arc count (base arcs + skeleton shortcuts).
func (sk *Skeleton) NumArcs() int { return len(sk.tail) }

// NumShortcuts reports how many topology shortcuts the skeleton holds.
func (sk *Skeleton) NumShortcuts() int { return len(sk.tail) - sk.numBase }

// Rank returns the contraction rank of v.
func (sk *Skeleton) Rank(v graph.Vertex) int32 { return sk.rank[v] }

// Stats reports the skeleton construction cost.
func (sk *Skeleton) Stats() SkeletonStats { return sk.stats }

// Levels reports the customization sweep depth (the hierarchy level of the
// deepest shortcut).
func (sk *Skeleton) Levels() int { return sk.Plan().maxLvl }

// custPlan is the metric-independent customization schedule derived once per
// skeleton and shared by every Customize run and in-place customized update.
//
// Overlay arcs with the same (tail, head) form a "pair group"; the merged-
// CCH weight of the ordered pair is the joint minimum over the group. Every
// group member is created strictly before any shortcut that consumes the
// group (an arc into/out of a vertex z always predates z's contraction), so
// arc IDs give a valid evaluation order, and the level function below slices
// it into sweeps whose Fed-SAC tournaments can run as one batch per level:
//
//	lvl(base arc) = 0
//	lvl(shortcut) = 1 + max lvl over both child groups' members
//
// A shortcut at level L reads only group winners decided at levels < L, and
// a group is decided (its tournament runs) at the level of its deepest
// member.
type custPlan struct {
	groupOf  []int32   // overlay arc -> pair group
	groups   [][]int32 // pair group -> member arc IDs, ascending
	groupLvl []int32   // pair group -> level its winner is decided at
	gA, gB   []int32   // per shortcut (ID - numBase): child pair groups

	maxLvl      int
	shortcutsAt [][]int32 // level -> shortcut arc IDs weighted there (1..maxLvl)
	groupsAt    [][]int32 // level -> multi-member groups whose tournament runs there
}

// Plan returns the skeleton's customization schedule, computing it on first
// use.
func (sk *Skeleton) Plan() *custPlan {
	sk.planOnce.Do(func() { sk.plan = sk.computePlan() })
	return sk.plan
}

func (sk *Skeleton) computePlan() *custPlan {
	m := len(sk.tail)
	pl := &custPlan{
		groupOf: make([]int32, m),
		gA:      make([]int32, m-sk.numBase),
		gB:      make([]int32, m-sk.numBase),
	}
	lvl := make([]int32, m)
	groupIDs := make(map[[2]graph.Vertex]int32)
	groupID := func(u, w graph.Vertex) int32 {
		key := [2]graph.Vertex{u, w}
		id, ok := groupIDs[key]
		if !ok {
			id = int32(len(pl.groups))
			groupIDs[key] = id
			pl.groups = append(pl.groups, nil)
			pl.groupLvl = append(pl.groupLvl, 0)
		}
		return id
	}
	for a := 0; a < m; a++ {
		ai := int32(a)
		if a >= sk.numBase {
			// Both child groups are complete by now: every member of
			// (tail, via) and (via, head) predates via's contraction and
			// hence this shortcut.
			i := a - sk.numBase
			ga := groupID(sk.tail[a], sk.via[a])
			gb := groupID(sk.via[a], sk.head[a])
			pl.gA[i], pl.gB[i] = ga, gb
			l := pl.groupLvl[ga]
			if pl.groupLvl[gb] > l {
				l = pl.groupLvl[gb]
			}
			lvl[ai] = l + 1
		}
		g := groupID(sk.tail[a], sk.head[a])
		pl.groupOf[ai] = g
		pl.groups[g] = append(pl.groups[g], ai)
		if lvl[ai] > pl.groupLvl[g] {
			pl.groupLvl[g] = lvl[ai]
		}
		if int(lvl[ai]) > pl.maxLvl {
			pl.maxLvl = int(lvl[ai])
		}
	}
	pl.shortcutsAt = make([][]int32, pl.maxLvl+1)
	for a := sk.numBase; a < m; a++ {
		pl.shortcutsAt[lvl[a]] = append(pl.shortcutsAt[lvl[a]], int32(a))
	}
	pl.groupsAt = make([][]int32, pl.maxLvl+1)
	for g := range pl.groups {
		if len(pl.groups[g]) > 1 {
			l := pl.groupLvl[g]
			pl.groupsAt[l] = append(pl.groupsAt[l], int32(g))
		}
	}
	return pl
}

// Skeleton persistence (FRSK): the weight-free topology a restart reuses so
// recovery costs one customization sweep instead of a re-contraction. Format
// is little-endian u32s: magic, version, n, m, numBase, rank[n], then per
// overlay arc (tail, head, via) with via = 0xffffffff marking base arcs,
// terminated by an FNV-1a checksum over everything before it. Structural
// validation alone cannot catch a bit flip that relocates a shortcut onto
// another legal pair — and a skeleton missing even one lower triangle loses
// query exactness — so integrity is checked byte-for-byte.
const (
	skeletonMagic   = 0x4652534b // "FRSK"
	skeletonVersion = 1
	skelNoVia       = 0xffffffff
)

// fnv1a32 is the same hash the FRST state snapshot uses for its topology
// fingerprint.
func fnv1a32(data []byte) uint32 {
	h := uint32(2166136261)
	for _, b := range data {
		h ^= uint32(b)
		h *= 16777619
	}
	return h
}

// Write serializes the skeleton.
func (sk *Skeleton) Write(w io.Writer) error {
	var buf bytes.Buffer
	cw := &binWriter{w: bufio.NewWriter(&buf)}
	hdr := []uint32{skeletonMagic, skeletonVersion,
		uint32(len(sk.rank)), uint32(len(sk.tail)), uint32(sk.numBase)}
	for _, v := range hdr {
		if err := cw.u32(v); err != nil {
			return err
		}
	}
	for _, r := range sk.rank {
		if err := cw.u32(uint32(r)); err != nil {
			return err
		}
	}
	for a := range sk.tail {
		via := uint32(skelNoVia)
		if sk.via[a] != NoShortcut {
			via = uint32(sk.via[a])
		}
		for _, v := range []uint32{uint32(sk.tail[a]), uint32(sk.head[a]), via} {
			if err := cw.u32(v); err != nil {
				return err
			}
		}
	}
	if err := cw.w.Flush(); err != nil {
		return err
	}
	var sum [4]byte
	binary.LittleEndian.PutUint32(sum[:], fnv1a32(buf.Bytes()))
	if _, err := w.Write(buf.Bytes()); err != nil {
		return err
	}
	_, err := w.Write(sum[:])
	return err
}

// ReadSkeleton deserializes and validates a skeleton against the graph it
// claims to contract. Validation is strict enough that any accepted skeleton
// yields a sound customization plan — in particular the creation-order
// invariant (shortcut via ranks non-decreasing across arc IDs, and both legs
// of every shortcut already present among earlier arcs) is enforced, so
// group members always precede their consumers and a corrupt file fails here
// instead of producing wrong routes after customization.
func ReadSkeleton(g *graph.Graph, r io.Reader) (*Skeleton, error) {
	br := bufio.NewReader(r)
	var hdrBytes [20]byte
	if _, err := io.ReadFull(br, hdrBytes[:]); err != nil {
		return nil, fmt.Errorf("ch: skeleton header: %w", err)
	}
	var hdr [5]uint32
	for i := range hdr {
		hdr[i] = binary.LittleEndian.Uint32(hdrBytes[4*i:])
	}
	if hdr[0] != skeletonMagic {
		return nil, fmt.Errorf("ch: skeleton bad magic %#x", hdr[0])
	}
	if hdr[1] != skeletonVersion {
		return nil, fmt.Errorf("ch: skeleton unsupported version %d", hdr[1])
	}
	n, m, numBase := int(hdr[2]), int(hdr[3]), int(hdr[4])
	if n != g.NumVertices() || numBase != g.NumArcs() || m < numBase {
		return nil, fmt.Errorf("ch: skeleton shape (%d vertices, %d base arcs, %d overlay) does not fit the graph (%d, %d)",
			n, numBase, m, g.NumVertices(), g.NumArcs())
	}
	// One shortcut per (u, via, w) triple bounds any genuine skeleton by
	// numBase + n³; reject a lying header before allocating by it.
	if uint64(m) > uint64(numBase)+uint64(n)*uint64(n)*uint64(n) {
		return nil, fmt.Errorf("ch: implausible skeleton arc count %d for %d vertices", m, n)
	}
	// Verify integrity before trusting a single field: read the exact
	// payload (ReadAll grows with bytes that actually arrive, so a lying
	// header on a truncated stream errors instead of allocating by it),
	// then check the trailing FNV-1a over header + payload.
	payloadLen := int64(n+3*m) * 4
	payload, err := io.ReadAll(io.LimitReader(br, payloadLen))
	if err != nil {
		return nil, err
	}
	if int64(len(payload)) != payloadLen {
		return nil, fmt.Errorf("ch: skeleton truncated (%d of %d payload bytes)", len(payload), payloadLen)
	}
	var sumBytes [4]byte
	if _, err := io.ReadFull(br, sumBytes[:]); err != nil {
		return nil, fmt.Errorf("ch: skeleton checksum: %w", err)
	}
	want := binary.LittleEndian.Uint32(sumBytes[:])
	got := fnv1a32(append(append([]byte(nil), hdrBytes[:]...), payload...))
	if got != want {
		return nil, fmt.Errorf("ch: skeleton checksum mismatch (%#x != %#x)", got, want)
	}
	rd := &reader{r: bufio.NewReader(bytes.NewReader(payload))}
	sk := &Skeleton{
		g:       g,
		numBase: numBase,
		rank:    make([]int32, n),
		tail:    make([]graph.Vertex, m),
		head:    make([]graph.Vertex, m),
		via:     make([]graph.Vertex, m),
	}
	seenRank := make([]bool, n)
	for v := 0; v < n; v++ {
		r, err := rd.u32()
		if err != nil {
			return nil, err
		}
		if r >= uint32(n) || seenRank[r] {
			return nil, fmt.Errorf("ch: skeleton rank table is not a permutation of [0,%d)", n)
		}
		seenRank[r] = true
		sk.rank[v] = int32(r)
	}
	seenPair := make(map[[2]graph.Vertex]bool, m)
	lastViaRank := int32(-1)
	for a := 0; a < m; a++ {
		var vals [3]uint32
		for i := range vals {
			v, err := rd.u32()
			if err != nil {
				return nil, err
			}
			vals[i] = v
		}
		u, w := graph.Vertex(vals[0]), graph.Vertex(vals[1])
		if int(u) < 0 || int(u) >= n || int(w) < 0 || int(w) >= n {
			return nil, fmt.Errorf("ch: skeleton arc %d endpoints out of range", a)
		}
		sk.tail[a], sk.head[a] = u, w
		if a < numBase {
			if vals[2] != skelNoVia {
				return nil, fmt.Errorf("ch: skeleton base arc %d marked as shortcut", a)
			}
			sk.via[a] = NoShortcut
			if u != g.Tail(graph.Arc(a)) || w != g.Head(graph.Arc(a)) {
				return nil, fmt.Errorf("ch: skeleton base arc %d does not match the graph", a)
			}
		} else {
			if vals[2] == skelNoVia {
				return nil, fmt.Errorf("ch: skeleton arc %d beyond the base range is not a shortcut", a)
			}
			z := graph.Vertex(vals[2])
			if int(z) < 0 || int(z) >= n {
				return nil, fmt.Errorf("ch: skeleton shortcut %d via vertex out of range", a)
			}
			sk.via[a] = z
			if sk.rank[z] >= sk.rank[u] || sk.rank[z] >= sk.rank[w] {
				return nil, fmt.Errorf("ch: skeleton shortcut %d via vertex does not rank below its endpoints", a)
			}
			// Creation order: shortcuts appear in contraction order, and both
			// legs of a lower triangle must already exist. Together these
			// guarantee every pair group is complete before any consumer.
			if sk.rank[z] < lastViaRank {
				return nil, fmt.Errorf("ch: skeleton shortcut %d breaks via-rank creation order", a)
			}
			lastViaRank = sk.rank[z]
			if !seenPair[[2]graph.Vertex{u, z}] || !seenPair[[2]graph.Vertex{z, w}] {
				return nil, fmt.Errorf("ch: skeleton shortcut %d has a leg with no underlying arc", a)
			}
		}
		seenPair[[2]graph.Vertex{u, w}] = true
	}
	sk.stats = SkeletonStats{Shortcuts: sk.NumShortcuts()}
	return sk, nil
}
