// Package ch implements the federated shortcut index of §IV: a contraction
// hierarchy whose shortcuts are selected collaboratively so that every silo
// holds exactly the same shortcut set, while each silo keeps only its private
// partial shortcut weights (the partial cost of the shared joint witness
// path).
//
// Construction has two phases:
//
//  1. a public ordering phase on the static weights W0 (plain text — W0 is
//     shared, so every silo derives the identical contraction order, the
//     paper's weight-independent "importance" selection);
//  2. a federated contraction phase (Alg. 3): witness searches run as a
//     hop-bounded, lane-synchronous frontier sweep with all cost comparisons
//     through batched Fed-SAC, so the add-or-skip decision for every
//     potential shortcut is made on *joint* weights and is identical at
//     every silo.
//
// The index also supports the dynamic partial update of Table II: after a
// subset of edge weights change, affected shortcut weights are recomputed
// and the contraction decisions of affected vertices re-verified, without a
// full rebuild.
package ch

import (
	"time"

	"repro/internal/fed"
	"repro/internal/graph"
	"repro/internal/mpc"
)

// NoShortcut marks the absence of a via vertex (original arcs).
const NoShortcut = graph.NoVertex

// Index is the federated shortcut index over a federation's road network.
// Overlay arcs 0..numBase-1 mirror the base graph's arcs; higher IDs are
// shortcuts.
type Index struct {
	f    *fed.Federation
	rank []int32 // contraction position per vertex (0 = contracted first)

	// Per overlay arc:
	tail, head []graph.Vertex
	via        []graph.Vertex // shortcut's contracted middle vertex, NoShortcut for base arcs
	childA     []int32        // overlay arc IDs forming the via path (shortcuts only)
	childB     []int32
	siloW      [][]int64 // [p][arc] private partial weights

	numBase int

	// Query-time adjacency: upOut[v] holds out-arcs to higher-ranked heads,
	// downIn[v] holds in-arcs from higher-ranked tails. Each arc lives in
	// exactly one of the two lists.
	upOut  [][]int32
	downIn [][]int32

	hs          *hierarchyState
	witnessCap  int
	witnessHops int
	noBatch     bool // resolve Fed-SAC decisions one-by-one (diagnostics)
	buildStats  BuildStats

	// Customized indexes only: the immutable topology skeleton this index
	// was customized from, and the current winner (joint-minimum overlay
	// arc) of every pair group — the metric-dependent half of the
	// customization state. custWinner is rebuilt lazily from childA/childB
	// after deserialization.
	skel       *Skeleton
	custWinner []int32
}

// BuildStats reports the construction cost of the index.
type BuildStats struct {
	Shortcuts int
	SAC       mpc.Stats // secure-comparison usage during construction
	WallTime  time.Duration

	// Parallel-build pipeline statistics.
	Workers       int     // contraction worker pool size
	Rounds        int     // independent-set contraction rounds
	MaxRoundWidth int     // largest set contracted in one round
	AvgRoundWidth float64 // vertices contracted per round on average
	// RoundsSaved counts the MPC communication rounds avoided by resolving
	// independent decisions through batched Fed-SAC: each batch of k
	// comparisons pays RoundsPerCompare rounds once instead of k times.
	RoundsSaved     int64
	OrderingTime    time.Duration // public plaintext ordering phase
	ContractionTime time.Duration // federated contraction phase

	// Customization statistics (customizable-contraction indexes only).
	Customized bool // index came from Customize over a skeleton, not Build
	Levels     int  // customization sweep depth (deepest shortcut level)
}

// Federation returns the federation this index belongs to.
func (x *Index) Federation() *fed.Federation { return x.f }

// Rank returns the contraction rank of v (higher = more important).
func (x *Index) Rank(v graph.Vertex) int32 { return x.rank[v] }

// NumArcs reports the overlay arc count (base arcs + shortcuts).
func (x *Index) NumArcs() int { return len(x.tail) }

// NumShortcuts reports how many shortcuts the index holds.
func (x *Index) NumShortcuts() int { return len(x.tail) - x.numBase }

// BuildStatistics reports the construction cost.
func (x *Index) BuildStatistics() BuildStats { return x.buildStats }

// Customized reports whether this index was derived from a topology skeleton
// by weight customization (as opposed to a witness-pruned federated build).
func (x *Index) Customized() bool { return x.skel != nil }

// Skeleton returns the topology skeleton a customized index was derived
// from, or nil for a witness-built index.
func (x *Index) Skeleton() *Skeleton { return x.skel }

// Tail returns the overlay arc's source vertex.
func (x *Index) Tail(a int32) graph.Vertex { return x.tail[a] }

// Head returns the overlay arc's destination vertex.
func (x *Index) Head(a int32) graph.Vertex { return x.head[a] }

// Via returns the shortcut's contracted middle vertex, or NoShortcut for a
// base arc.
func (x *Index) Via(a int32) graph.Vertex { return x.via[a] }

// UpOut returns v's out-arcs toward higher-ranked vertices.
func (x *Index) UpOut(v graph.Vertex) []int32 { return x.upOut[v] }

// DownIn returns v's in-arcs from higher-ranked vertices.
func (x *Index) DownIn(v graph.Vertex) []int32 { return x.downIn[v] }

// Partial returns the per-silo partial weight vector of an overlay arc.
func (x *Index) Partial(a int32) fed.Partial {
	out := make(fed.Partial, len(x.siloW))
	for p := range x.siloW {
		out[p] = x.siloW[p][a]
	}
	return out
}

// SiloWeight returns silo p's private partial weight of an overlay arc.
func (x *Index) SiloWeight(p int, a int32) int64 { return x.siloW[p][a] }

// JointWeight sums the partial weights of an overlay arc — evaluation-only,
// used by the test suite as ground truth.
func (x *Index) JointWeight(a int32) int64 {
	var s int64
	for p := range x.siloW {
		s += x.siloW[p][a]
	}
	return s
}

// Unpack expands an overlay arc into the base-graph vertex sequence it
// represents, from its tail to its head inclusive.
func (x *Index) Unpack(a int32) []graph.Vertex {
	if x.via[a] == NoShortcut {
		return []graph.Vertex{x.tail[a], x.head[a]}
	}
	left := x.Unpack(x.childA[a])
	right := x.Unpack(x.childB[a])
	return append(left, right[1:]...)
}

// UnpackArcs expands an overlay arc into the sequence of base-graph arc IDs
// it represents.
func (x *Index) UnpackArcs(a int32) []int32 {
	if x.via[a] == NoShortcut {
		return []int32{a}
	}
	return append(x.UnpackArcs(x.childA[a]), x.UnpackArcs(x.childB[a])...)
}

// addArcToQueryLists routes an overlay arc into upOut or downIn.
func (x *Index) addArcToQueryLists(a int32) {
	u, w := x.tail[a], x.head[a]
	if x.rank[w] > x.rank[u] {
		x.upOut[u] = append(x.upOut[u], a)
	} else {
		x.downIn[w] = append(x.downIn[w], a)
	}
}
