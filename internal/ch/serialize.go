package ch

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"repro/internal/fed"
	"repro/internal/graph"
)

// Index serialization splits along the privacy boundary, so a deployment can
// persist and ship the index without moving private data:
//
//   - WritePublic stores the shared structure: ranks, shortcut arcs (tails,
//     heads, via vertices, children) and the witness skip records. This part
//     is identical at every silo — it contains no weights.
//   - WriteSiloWeights stores ONE silo's private partial weight shard; each
//     silo persists only its own.
//   - LoadIndex reassembles an index from the public part plus all shards
//     (the simulation holds all shards in one process; a real deployment
//     would load one per silo).
//
// The format is little-endian binary with a magic header and version.

const (
	indexMagic   = 0x46524f41 // "FROA"
	indexVersion = 1
	shardMagic   = 0x46525348 // "FRSH"
)

type binWriter struct {
	w *bufio.Writer
}

func (cw *binWriter) u32(v uint32) error {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], v)
	_, err := cw.w.Write(b[:])
	return err
}

func (cw *binWriter) i64(v int64) error {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], uint64(v))
	_, err := cw.w.Write(b[:])
	return err
}

type reader struct {
	r *bufio.Reader
}

func (rd *reader) u32() (uint32, error) {
	var b [4]byte
	if _, err := io.ReadFull(rd.r, b[:]); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint32(b[:]), nil
}

func (rd *reader) i64() (int64, error) {
	var b [8]byte
	if _, err := io.ReadFull(rd.r, b[:]); err != nil {
		return 0, err
	}
	return int64(binary.LittleEndian.Uint64(b[:])), nil
}

// WritePublic serializes the weight-free shared structure of the index.
func (x *Index) WritePublic(w io.Writer) error {
	cw := &binWriter{w: bufio.NewWriter(w)}
	n := len(x.rank)
	m := len(x.tail)
	hdr := []uint32{indexMagic, indexVersion, uint32(n), uint32(m), uint32(x.numBase)}
	for _, v := range hdr {
		if err := cw.u32(v); err != nil {
			return err
		}
	}
	for _, r := range x.rank {
		if err := cw.u32(uint32(r)); err != nil {
			return err
		}
	}
	for a := 0; a < m; a++ {
		for _, v := range []uint32{
			uint32(x.tail[a]), uint32(x.head[a]), uint32(int32(x.via[a])),
			uint32(x.childA[a]), uint32(x.childB[a]),
		} {
			if err := cw.u32(v); err != nil {
				return err
			}
		}
	}
	// Skip records (needed to keep dynamic updates working after reload).
	for v := 0; v < n; v++ {
		recs := x.hs.skips[v]
		if err := cw.u32(uint32(len(recs))); err != nil {
			return err
		}
		for _, r := range recs {
			if err := cw.u32(uint32(r.u)); err != nil {
				return err
			}
			if err := cw.u32(uint32(r.w)); err != nil {
				return err
			}
			if err := cw.u32(uint32(len(r.witnessArcs))); err != nil {
				return err
			}
			for _, a := range r.witnessArcs {
				if err := cw.u32(uint32(a)); err != nil {
					return err
				}
			}
		}
	}
	return cw.w.Flush()
}

// WriteSiloWeights serializes silo p's private partial weight shard.
func (x *Index) WriteSiloWeights(p int, w io.Writer) error {
	if p < 0 || p >= len(x.siloW) {
		return fmt.Errorf("ch: silo %d out of range", p)
	}
	cw := &binWriter{w: bufio.NewWriter(w)}
	for _, v := range []uint32{shardMagic, indexVersion, uint32(p), uint32(len(x.siloW[p]))} {
		if err := cw.u32(v); err != nil {
			return err
		}
	}
	for _, wt := range x.siloW[p] {
		if err := cw.i64(wt); err != nil {
			return err
		}
	}
	return cw.w.Flush()
}

// LoadIndex reassembles an index for a federation from its public structure
// and one weight shard per silo (shards[p] must be silo p's).
func LoadIndex(f *fed.Federation, public io.Reader, shards []io.Reader) (*Index, error) {
	if len(shards) != f.P() {
		return nil, fmt.Errorf("ch: %d shards for %d silos", len(shards), f.P())
	}
	rd := &reader{r: bufio.NewReader(public)}
	var hdr [5]uint32
	for i := range hdr {
		v, err := rd.u32()
		if err != nil {
			return nil, fmt.Errorf("ch: public header: %w", err)
		}
		hdr[i] = v
	}
	if hdr[0] != indexMagic {
		return nil, fmt.Errorf("ch: bad magic %#x", hdr[0])
	}
	if hdr[1] != indexVersion {
		return nil, fmt.Errorf("ch: unsupported version %d", hdr[1])
	}
	n, m, numBase := int(hdr[2]), int(hdr[3]), int(hdr[4])
	if n != f.Graph().NumVertices() {
		return nil, fmt.Errorf("ch: index has %d vertices, federation graph has %d", n, f.Graph().NumVertices())
	}
	if numBase != f.Graph().NumArcs() || m < numBase {
		return nil, fmt.Errorf("ch: arc counts inconsistent (%d base, %d overlay, graph %d)", numBase, m, f.Graph().NumArcs())
	}
	x := &Index{
		f:          f,
		rank:       make([]int32, n),
		tail:       make([]graph.Vertex, m),
		head:       make([]graph.Vertex, m),
		via:        make([]graph.Vertex, m),
		childA:     make([]int32, m),
		childB:     make([]int32, m),
		numBase:    numBase,
		witnessCap: DefaultWitnessCap,
	}
	for v := 0; v < n; v++ {
		r, err := rd.u32()
		if err != nil {
			return nil, err
		}
		x.rank[v] = int32(r)
	}
	x.hs = &hierarchyState{
		outAll:   make([][]int32, n),
		inAll:    make([][]int32, n),
		skips:    make([][]skipRec, n),
		viaIndex: make(map[graph.Vertex][]int32),
		parents:  make(map[int32][]int32),
	}
	for a := 0; a < m; a++ {
		vals := make([]uint32, 5)
		for i := range vals {
			v, err := rd.u32()
			if err != nil {
				return nil, err
			}
			vals[i] = v
		}
		x.tail[a] = graph.Vertex(vals[0])
		x.head[a] = graph.Vertex(vals[1])
		x.via[a] = graph.Vertex(int32(vals[2]))
		x.childA[a] = int32(vals[3])
		x.childB[a] = int32(vals[4])
		if int(x.tail[a]) >= n || int(x.head[a]) >= n {
			return nil, fmt.Errorf("ch: arc %d endpoints out of range", a)
		}
		ai := int32(a)
		x.hs.outAll[x.tail[a]] = append(x.hs.outAll[x.tail[a]], ai)
		x.hs.inAll[x.head[a]] = append(x.hs.inAll[x.head[a]], ai)
		if x.via[a] != NoShortcut {
			if x.childA[a] < 0 || x.childA[a] >= ai || x.childB[a] < 0 || x.childB[a] >= ai {
				return nil, fmt.Errorf("ch: shortcut %d has invalid children", a)
			}
			x.hs.viaIndex[x.via[a]] = append(x.hs.viaIndex[x.via[a]], ai)
			x.hs.parents[x.childA[a]] = append(x.hs.parents[x.childA[a]], ai)
			x.hs.parents[x.childB[a]] = append(x.hs.parents[x.childB[a]], ai)
		}
	}
	for v := 0; v < n; v++ {
		cnt, err := rd.u32()
		if err != nil {
			return nil, err
		}
		recs := make([]skipRec, cnt)
		for i := range recs {
			u, err := rd.u32()
			if err != nil {
				return nil, err
			}
			wv, err := rd.u32()
			if err != nil {
				return nil, err
			}
			na, err := rd.u32()
			if err != nil {
				return nil, err
			}
			if na > uint32(m) {
				return nil, fmt.Errorf("ch: skip record with %d witness arcs", na)
			}
			arcs := make([]int32, na)
			for j := range arcs {
				av, err := rd.u32()
				if err != nil {
					return nil, err
				}
				if av >= uint32(m) {
					return nil, fmt.Errorf("ch: witness arc %d out of range", av)
				}
				arcs[j] = int32(av)
			}
			recs[i] = skipRec{u: graph.Vertex(u), w: graph.Vertex(wv), witnessArcs: arcs}
		}
		x.hs.skips[v] = recs
	}

	// Shards.
	x.siloW = make([][]int64, f.P())
	for p := 0; p < f.P(); p++ {
		srd := &reader{r: bufio.NewReader(shards[p])}
		var shdr [4]uint32
		for i := range shdr {
			v, err := srd.u32()
			if err != nil {
				return nil, fmt.Errorf("ch: shard %d header: %w", p, err)
			}
			shdr[i] = v
		}
		if shdr[0] != shardMagic || shdr[1] != indexVersion {
			return nil, fmt.Errorf("ch: shard %d bad magic/version", p)
		}
		if int(shdr[2]) != p {
			return nil, fmt.Errorf("ch: shard for silo %d supplied at position %d", shdr[2], p)
		}
		if int(shdr[3]) != m {
			return nil, fmt.Errorf("ch: shard %d covers %d arcs, index has %d", p, shdr[3], m)
		}
		ws := make([]int64, m)
		for a := range ws {
			v, err := srd.i64()
			if err != nil {
				return nil, err
			}
			ws[a] = v
		}
		x.siloW[p] = ws
	}

	x.upOut = make([][]int32, n)
	x.downIn = make([][]int32, n)
	for a := int32(0); a < int32(m); a++ {
		x.addArcToQueryLists(a)
	}
	x.buildStats = BuildStats{Shortcuts: x.NumShortcuts()}
	return x, nil
}
