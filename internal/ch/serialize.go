package ch

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"io"

	"repro/internal/fed"
	"repro/internal/graph"
)

// Index serialization splits along the privacy boundary, so a deployment can
// persist and ship the index without moving private data:
//
//   - WritePublic stores the shared structure: ranks, shortcut arcs (tails,
//     heads, via vertices, children) and the witness skip records. This part
//     is identical at every silo — it contains no weights.
//   - WriteSiloWeights stores ONE silo's private partial weight shard; each
//     silo persists only its own.
//   - LoadIndex reassembles an index from the public part plus all shards
//     (the simulation holds all shards in one process; a real deployment
//     would load one per silo).
//
// The format is little-endian binary with a magic header and version.

const (
	indexMagic   = 0x46524f41 // "FROA"
	indexVersion = 1
	shardMagic   = 0x46525348 // "FRSH"
	bundleMagic  = 0x46524958 // "FRIX" — WriteIndex/ReadIndex single-stream bundle
	// Bundle v2 appends an optional skeleton section (FRSK) after the weight
	// shards, so a restart of a customized index re-customizes instead of
	// re-contracting. v1 bundles (no skeleton) still load.
	bundleVersion = 2
)

type binWriter struct {
	w *bufio.Writer
}

func (cw *binWriter) u32(v uint32) error {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], v)
	_, err := cw.w.Write(b[:])
	return err
}

func (cw *binWriter) i64(v int64) error {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], uint64(v))
	_, err := cw.w.Write(b[:])
	return err
}

type reader struct {
	r *bufio.Reader
}

func (rd *reader) u32() (uint32, error) {
	var b [4]byte
	if _, err := io.ReadFull(rd.r, b[:]); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint32(b[:]), nil
}

func (rd *reader) i64() (int64, error) {
	var b [8]byte
	if _, err := io.ReadFull(rd.r, b[:]); err != nil {
		return 0, err
	}
	return int64(binary.LittleEndian.Uint64(b[:])), nil
}

// WritePublic serializes the weight-free shared structure of the index.
func (x *Index) WritePublic(w io.Writer) error {
	cw := &binWriter{w: bufio.NewWriter(w)}
	n := len(x.rank)
	m := len(x.tail)
	hdr := []uint32{indexMagic, indexVersion, uint32(n), uint32(m), uint32(x.numBase)}
	for _, v := range hdr {
		if err := cw.u32(v); err != nil {
			return err
		}
	}
	for _, r := range x.rank {
		if err := cw.u32(uint32(r)); err != nil {
			return err
		}
	}
	for a := 0; a < m; a++ {
		for _, v := range []uint32{
			uint32(x.tail[a]), uint32(x.head[a]), uint32(int32(x.via[a])),
			uint32(x.childA[a]), uint32(x.childB[a]),
		} {
			if err := cw.u32(v); err != nil {
				return err
			}
		}
	}
	// Skip records (needed to keep dynamic updates working after reload).
	for v := 0; v < n; v++ {
		recs := x.hs.skips[v]
		if err := cw.u32(uint32(len(recs))); err != nil {
			return err
		}
		for _, r := range recs {
			if err := cw.u32(uint32(r.u)); err != nil {
				return err
			}
			if err := cw.u32(uint32(r.w)); err != nil {
				return err
			}
			if err := cw.u32(uint32(len(r.witnessArcs))); err != nil {
				return err
			}
			for _, a := range r.witnessArcs {
				if err := cw.u32(uint32(a)); err != nil {
					return err
				}
			}
		}
	}
	return cw.w.Flush()
}

// WriteSiloWeights serializes silo p's private partial weight shard.
func (x *Index) WriteSiloWeights(p int, w io.Writer) error {
	if p < 0 || p >= len(x.siloW) {
		return fmt.Errorf("ch: silo %d out of range", p)
	}
	cw := &binWriter{w: bufio.NewWriter(w)}
	for _, v := range []uint32{shardMagic, indexVersion, uint32(p), uint32(len(x.siloW[p]))} {
		if err := cw.u32(v); err != nil {
			return err
		}
	}
	for _, wt := range x.siloW[p] {
		if err := cw.i64(wt); err != nil {
			return err
		}
	}
	return cw.w.Flush()
}

// LoadIndex reassembles an index for a federation from its public structure
// and one weight shard per silo (shards[p] must be silo p's).
func LoadIndex(f *fed.Federation, public io.Reader, shards []io.Reader) (*Index, error) {
	if len(shards) != f.P() {
		return nil, fmt.Errorf("ch: %d shards for %d silos", len(shards), f.P())
	}
	rd := &reader{r: bufio.NewReader(public)}
	var hdr [5]uint32
	for i := range hdr {
		v, err := rd.u32()
		if err != nil {
			return nil, fmt.Errorf("ch: public header: %w", err)
		}
		hdr[i] = v
	}
	if hdr[0] != indexMagic {
		return nil, fmt.Errorf("ch: bad magic %#x", hdr[0])
	}
	if hdr[1] != indexVersion {
		return nil, fmt.Errorf("ch: unsupported version %d", hdr[1])
	}
	n, m, numBase := int(hdr[2]), int(hdr[3]), int(hdr[4])
	if n != f.Graph().NumVertices() {
		return nil, fmt.Errorf("ch: index has %d vertices, federation graph has %d", n, f.Graph().NumVertices())
	}
	if numBase != f.Graph().NumArcs() || m < numBase {
		return nil, fmt.Errorf("ch: arc counts inconsistent (%d base, %d overlay, graph %d)", numBase, m, f.Graph().NumArcs())
	}
	// The builder adds at most one shortcut per (u, via, w) triple, so any
	// genuine index satisfies m ≤ numBase + n³. A corrupt header can claim up
	// to 2³²−1 arcs; reject before allocating by it (uint64 math — n³ may
	// overflow int on 32-bit).
	if uint64(m) > uint64(numBase)+uint64(n)*uint64(n)*uint64(n) {
		return nil, fmt.Errorf("ch: implausible overlay arc count %d for %d vertices", m, n)
	}
	x := &Index{
		f:           f,
		rank:        make([]int32, n),
		tail:        make([]graph.Vertex, m),
		head:        make([]graph.Vertex, m),
		via:         make([]graph.Vertex, m),
		childA:      make([]int32, m),
		childB:      make([]int32, m),
		numBase:     numBase,
		witnessCap:  DefaultWitnessCap,
		witnessHops: DefaultWitnessHops,
	}
	seenRank := make([]bool, n)
	for v := 0; v < n; v++ {
		r, err := rd.u32()
		if err != nil {
			return nil, err
		}
		if r >= uint32(n) || seenRank[r] {
			return nil, fmt.Errorf("ch: rank table is not a permutation of [0,%d)", n)
		}
		seenRank[r] = true
		x.rank[v] = int32(r)
	}
	x.hs = &hierarchyState{
		outAll:   make([][]int32, n),
		inAll:    make([][]int32, n),
		skips:    make([][]skipRec, n),
		viaIndex: make(map[graph.Vertex][]int32),
		parents:  make(map[int32][]int32),
	}
	for a := 0; a < m; a++ {
		vals := make([]uint32, 5)
		for i := range vals {
			v, err := rd.u32()
			if err != nil {
				return nil, err
			}
			vals[i] = v
		}
		x.tail[a] = graph.Vertex(vals[0])
		x.head[a] = graph.Vertex(vals[1])
		x.via[a] = graph.Vertex(int32(vals[2]))
		x.childA[a] = int32(vals[3])
		x.childB[a] = int32(vals[4])
		// Casting uint32 to the int32-backed Vertex can produce negatives:
		// check both ends of the range before any slice indexing.
		if int(x.tail[a]) < 0 || int(x.tail[a]) >= n || int(x.head[a]) < 0 || int(x.head[a]) >= n {
			return nil, fmt.Errorf("ch: arc %d endpoints out of range", a)
		}
		ai := int32(a)
		if a < numBase {
			if x.via[a] != NoShortcut {
				return nil, fmt.Errorf("ch: base arc %d marked as shortcut", a)
			}
			if x.tail[a] != f.Graph().Tail(graph.Arc(a)) || x.head[a] != f.Graph().Head(graph.Arc(a)) {
				return nil, fmt.Errorf("ch: base arc %d does not match the federation graph", a)
			}
		} else if x.via[a] == NoShortcut {
			return nil, fmt.Errorf("ch: overlay arc %d beyond the base range is not a shortcut", a)
		}
		x.hs.outAll[x.tail[a]] = append(x.hs.outAll[x.tail[a]], ai)
		x.hs.inAll[x.head[a]] = append(x.hs.inAll[x.head[a]], ai)
		if x.via[a] != NoShortcut {
			v := x.via[a]
			if int(v) < 0 || int(v) >= n {
				return nil, fmt.Errorf("ch: shortcut %d via vertex out of range", a)
			}
			ca, cb := x.childA[a], x.childB[a]
			// Children may carry LARGER arc IDs than their parent: a dynamic
			// update that refreshes an existing shortcut rewires it onto the
			// newest minimum arcs between the same endpoints. Only the range
			// is checkable while streaming; structural checks run below, once
			// every arc is in memory.
			if ca < 0 || int(ca) >= m || cb < 0 || int(cb) >= m {
				return nil, fmt.Errorf("ch: shortcut %d has invalid children", a)
			}
		}
	}
	for a := 0; a < m; a++ {
		if x.via[a] == NoShortcut {
			continue
		}
		ai := int32(a)
		v := x.via[a]
		ca, cb := x.childA[a], x.childB[a]
		// A shortcut must actually compose its children around its via
		// vertex, and the via vertex must have been contracted before
		// both endpoints — the invariants every query and dynamic update
		// relies on. They also make the child relation acyclic: a child
		// shortcut's via vertex is an endpoint of the parent's via vertex's
		// arcs, so its rank is strictly below the parent's via rank.
		if x.tail[ca] != x.tail[a] || x.head[cb] != x.head[a] ||
			x.head[ca] != v || x.tail[cb] != v {
			return nil, fmt.Errorf("ch: shortcut %d children do not compose via vertex %d", a, v)
		}
		if x.rank[v] >= x.rank[x.tail[a]] || x.rank[v] >= x.rank[x.head[a]] {
			return nil, fmt.Errorf("ch: shortcut %d via vertex does not rank below its endpoints", a)
		}
		x.hs.viaIndex[v] = append(x.hs.viaIndex[v], ai)
		x.hs.parents[ca] = append(x.hs.parents[ca], ai)
		x.hs.parents[cb] = append(x.hs.parents[cb], ai)
	}
	// Reject shortcut trees that unpack into longer walks than any simple
	// path admits (a corrupt file could share children Fibonacci-style and
	// make Unpack explode exponentially). Children do not necessarily precede
	// parents in arc order (see above), so walk the child DAG with
	// memoization; the via-rank check just validated bounds the recursion
	// depth by n, and rules out cycles.
	pathLen := make([]int64, m)
	var unpackLen func(a int32) int64
	unpackLen = func(a int32) int64 {
		if pathLen[a] != 0 {
			return pathLen[a]
		}
		if x.via[a] == NoShortcut {
			pathLen[a] = 1
			return 1
		}
		l := unpackLen(x.childA[a]) + unpackLen(x.childB[a])
		if l > int64(n) {
			l = int64(n) + 1 // clamp; rejected below
		}
		pathLen[a] = l
		return l
	}
	for a := int32(0); a < int32(m); a++ {
		if unpackLen(a) > int64(n) {
			return nil, fmt.Errorf("ch: shortcut %d unpacks to more than %d arcs", a, n)
		}
	}
	for v := 0; v < n; v++ {
		cnt, err := rd.u32()
		if err != nil {
			return nil, err
		}
		// One contraction records at most one skip per (u,w) pair.
		if uint64(cnt) > uint64(n)*uint64(n) {
			return nil, fmt.Errorf("ch: implausible skip record count %d for vertex %d", cnt, v)
		}
		recs := make([]skipRec, cnt)
		for i := range recs {
			u, err := rd.u32()
			if err != nil {
				return nil, err
			}
			wv, err := rd.u32()
			if err != nil {
				return nil, err
			}
			if u >= uint32(n) || wv >= uint32(n) {
				return nil, fmt.Errorf("ch: skip record endpoints out of range for vertex %d", v)
			}
			na, err := rd.u32()
			if err != nil {
				return nil, err
			}
			if na > uint32(m) {
				return nil, fmt.Errorf("ch: skip record with %d witness arcs", na)
			}
			arcs := make([]int32, na)
			for j := range arcs {
				av, err := rd.u32()
				if err != nil {
					return nil, err
				}
				if av >= uint32(m) {
					return nil, fmt.Errorf("ch: witness arc %d out of range", av)
				}
				arcs[j] = int32(av)
			}
			recs[i] = skipRec{u: graph.Vertex(u), w: graph.Vertex(wv), witnessArcs: arcs}
		}
		x.hs.skips[v] = recs
	}

	// Shards.
	x.siloW = make([][]int64, f.P())
	for p := 0; p < f.P(); p++ {
		srd := &reader{r: bufio.NewReader(shards[p])}
		var shdr [4]uint32
		for i := range shdr {
			v, err := srd.u32()
			if err != nil {
				return nil, fmt.Errorf("ch: shard %d header: %w", p, err)
			}
			shdr[i] = v
		}
		if shdr[0] != shardMagic || shdr[1] != indexVersion {
			return nil, fmt.Errorf("ch: shard %d bad magic/version", p)
		}
		if int(shdr[2]) != p {
			return nil, fmt.Errorf("ch: shard for silo %d supplied at position %d", shdr[2], p)
		}
		if int(shdr[3]) != m {
			return nil, fmt.Errorf("ch: shard %d covers %d arcs, index has %d", p, shdr[3], m)
		}
		ws := make([]int64, m)
		for a := range ws {
			v, err := srd.i64()
			if err != nil {
				return nil, err
			}
			// Silo weights are strictly positive (fed.Silo.SetWeight enforces
			// it) and shortcut partials are sums of them; a non-positive
			// entry means corruption and would break every search invariant.
			if v <= 0 {
				return nil, fmt.Errorf("ch: shard %d has non-positive weight for arc %d", p, a)
			}
			ws[a] = v
		}
		x.siloW[p] = ws
	}

	x.upOut = make([][]int32, n)
	x.downIn = make([][]int32, n)
	for a := int32(0); a < int32(m); a++ {
		x.addArcToQueryLists(a)
	}
	x.buildStats = BuildStats{Shortcuts: x.NumShortcuts()}
	return x, nil
}

// maxBundleSection bounds one section of a WriteIndex bundle on the read
// path, so a corrupt length prefix cannot demand a pathological allocation
// before LoadIndex's own validation ever runs.
const maxBundleSection = 1 << 31

// WriteIndex serializes the complete index — the public structure plus every
// silo's private weight shard — as one versioned stream of length-prefixed
// sections. This is the single-process serving-tier format (fedserver
// -persist): the simulation holds all shards anyway, and bundling them lets
// a restart restore the index with one file read instead of an MPC rebuild.
// A real multi-silo deployment persists along the privacy boundary with
// WritePublic/WriteSiloWeights instead.
func (x *Index) WriteIndex(w io.Writer) error {
	cw := &binWriter{w: bufio.NewWriter(w)}
	for _, v := range []uint32{bundleMagic, bundleVersion, uint32(len(x.siloW))} {
		if err := cw.u32(v); err != nil {
			return err
		}
	}
	section := func(write func(io.Writer) error) error {
		// Sections are buffered once to learn their length; the public part
		// and each shard are a fraction of the in-memory index, so the peak
		// is bounded by the largest single section, not the bundle.
		var buf bytes.Buffer
		if err := write(&buf); err != nil {
			return err
		}
		if err := cw.i64(int64(buf.Len())); err != nil {
			return err
		}
		_, err := cw.w.Write(buf.Bytes())
		return err
	}
	if err := section(x.WritePublic); err != nil {
		return err
	}
	for p := range x.siloW {
		p := p
		if err := section(func(w io.Writer) error { return x.WriteSiloWeights(p, w) }); err != nil {
			return err
		}
	}
	hasSkel := uint32(0)
	if x.skel != nil {
		hasSkel = 1
	}
	if err := cw.u32(hasSkel); err != nil {
		return err
	}
	if x.skel != nil {
		if err := section(x.skel.Write); err != nil {
			return err
		}
	}
	return cw.w.Flush()
}

// ReadIndex reassembles an index from a WriteIndex bundle. All structural
// validation — rank permutation, shortcut composition, path-length bounds,
// shard weight positivity — is exactly LoadIndex's: the bundle framing only
// splits the stream back into the public part and the per-silo shards.
func ReadIndex(f *fed.Federation, r io.Reader) (*Index, error) {
	rd := &reader{r: bufio.NewReader(r)}
	var hdr [3]uint32
	for i := range hdr {
		v, err := rd.u32()
		if err != nil {
			return nil, fmt.Errorf("ch: bundle header: %w", err)
		}
		hdr[i] = v
	}
	if hdr[0] != bundleMagic {
		return nil, fmt.Errorf("ch: bundle bad magic %#x", hdr[0])
	}
	if hdr[1] != 1 && hdr[1] != bundleVersion {
		return nil, fmt.Errorf("ch: bundle unsupported version %d", hdr[1])
	}
	if int(hdr[2]) != f.P() {
		return nil, fmt.Errorf("ch: bundle carries %d shards, federation has %d silos", hdr[2], f.P())
	}
	section := func() (*bytes.Reader, error) {
		n, err := rd.i64()
		if err != nil {
			return nil, err
		}
		if n < 0 || n > maxBundleSection {
			return nil, fmt.Errorf("ch: implausible bundle section length %d", n)
		}
		// ReadAll grows with the bytes that actually arrive, so a lying
		// length on a truncated stream errors instead of allocating n.
		data, err := io.ReadAll(io.LimitReader(rd.r, n))
		if err != nil {
			return nil, err
		}
		if int64(len(data)) != n {
			return nil, fmt.Errorf("ch: bundle section truncated (%d of %d bytes)", len(data), n)
		}
		return bytes.NewReader(data), nil
	}
	public, err := section()
	if err != nil {
		return nil, fmt.Errorf("ch: bundle public section: %w", err)
	}
	shards := make([]io.Reader, f.P())
	for p := range shards {
		sr, err := section()
		if err != nil {
			return nil, fmt.Errorf("ch: bundle shard %d: %w", p, err)
		}
		shards[p] = sr
	}
	x, err := LoadIndex(f, public, shards)
	if err != nil {
		return nil, err
	}
	if hdr[1] >= bundleVersion {
		hasSkel, err := rd.u32()
		if err != nil {
			return nil, fmt.Errorf("ch: bundle skeleton flag: %w", err)
		}
		if hasSkel > 1 {
			return nil, fmt.Errorf("ch: bundle skeleton flag %d invalid", hasSkel)
		}
		if hasSkel == 1 {
			sr, err := section()
			if err != nil {
				return nil, fmt.Errorf("ch: bundle skeleton section: %w", err)
			}
			sk, err := ReadSkeleton(f.Graph(), sr)
			if err != nil {
				return nil, err
			}
			if err := attachSkeleton(x, sk); err != nil {
				return nil, err
			}
		}
	}
	return x, nil
}

// attachSkeleton cross-validates a bundled skeleton against the index loaded
// from the same bundle — a customized index must mirror its skeleton's
// topology arc for arc — and marks the index customized. The per-group
// winner table is rebuilt lazily from the recorded children on the first
// dynamic update.
func attachSkeleton(x *Index, sk *Skeleton) error {
	if len(sk.tail) != len(x.tail) || sk.numBase != x.numBase {
		return fmt.Errorf("ch: bundle skeleton has %d arcs, index has %d", len(sk.tail), len(x.tail))
	}
	for v := range sk.rank {
		if sk.rank[v] != x.rank[v] {
			return fmt.Errorf("ch: bundle skeleton rank of vertex %d disagrees with the index", v)
		}
	}
	for a := range sk.tail {
		if sk.tail[a] != x.tail[a] || sk.head[a] != x.head[a] || sk.via[a] != x.via[a] {
			return fmt.Errorf("ch: bundle skeleton arc %d disagrees with the index", a)
		}
	}
	x.skel = sk
	x.buildStats.Customized = true
	return nil
}
