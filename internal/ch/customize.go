package ch

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"time"

	"repro/internal/fed"
	"repro/internal/graph"
	"repro/internal/mpc"
)

// Customize derives a query-ready index from a topology skeleton under the
// federation's CURRENT traffic weights with the default parameters.
func Customize(f *fed.Federation, sk *Skeleton) (*Index, error) {
	return CustomizeWith(f, sk, Params{})
}

// CustomizeWith is Customize with explicit parameters (Workers, NoBatch).
// Equivalent to NewCustomizer followed by Run.
func CustomizeWith(f *fed.Federation, sk *Skeleton, prm Params) (*Index, error) {
	c, err := NewCustomizer(f, sk, prm)
	if err != nil {
		return nil, err
	}
	return c.Run()
}

// Customizer splits weight customization into a snapshot phase and a work
// phase, mirroring Builder: NewCustomizer copies the silos' private base
// weights (the only read of mutable federation state) and forks one MPC
// engine per worker; Run performs the entire bottom-up sweep against that
// snapshot with no lock held. The fedroad layer customizes without blocking
// queries exactly the way it rebuilds.
type Customizer struct {
	f       *fed.Federation
	sk      *Skeleton
	prm     Params
	x       *Index
	workers []*fed.Federation
	sacs    []*fed.SAC
	ran     bool
}

// NewCustomizer validates that the skeleton fits the federation's graph and
// snapshots the base-arc partial weights.
func NewCustomizer(f *fed.Federation, sk *Skeleton, prm Params) (*Customizer, error) {
	if sk == nil {
		return nil, fmt.Errorf("ch: customize without a skeleton")
	}
	g := f.Graph()
	if len(sk.rank) != g.NumVertices() || sk.numBase != g.NumArcs() {
		return nil, fmt.Errorf("ch: skeleton contracted a %d-vertex/%d-arc graph, federation serves %d/%d",
			len(sk.rank), sk.numBase, g.NumVertices(), g.NumArcs())
	}
	if prm.WitnessCap == 0 {
		prm.WitnessCap = DefaultWitnessCap
	}
	if prm.WitnessHops == 0 {
		prm.WitnessHops = DefaultWitnessHops
	}
	if prm.Workers <= 0 {
		prm.Workers = runtime.GOMAXPROCS(0)
	}
	m := len(sk.tail)
	p := f.P()
	x := &Index{
		f:    f,
		rank: sk.rank,
		// The topology arrays are shared with the skeleton: both are
		// immutable for a customized index (updates rebind children and
		// refresh weights in place, never append arcs).
		tail:        sk.tail,
		head:        sk.head,
		via:         sk.via,
		childA:      make([]int32, m),
		childB:      make([]int32, m),
		numBase:     sk.numBase,
		witnessCap:  prm.WitnessCap,
		witnessHops: prm.WitnessHops,
		noBatch:     prm.NoBatch,
		skel:        sk,
	}
	for a := range x.childA {
		x.childA[a], x.childB[a] = -1, -1
	}
	x.siloW = make([][]int64, p)
	for s := 0; s < p; s++ {
		ws := make([]int64, m)
		for a := 0; a < sk.numBase; a++ {
			ws[a] = f.Silo(s).Weight(graph.Arc(a))
		}
		x.siloW[s] = ws
	}
	c := &Customizer{f: f, sk: sk, prm: prm, x: x}
	for i := 0; i < prm.Workers; i++ {
		wf := f.Fork()
		c.workers = append(c.workers, wf)
		c.sacs = append(c.sacs, wf.NewSAC())
	}
	return c, nil
}

// Run executes the bottom-up customization sweep: per hierarchy level, first
// every shortcut at that level takes its weight from the already-decided
// winners of its two child pair groups (a pure local per-silo sum — no MPC),
// then the tournaments of every pair group decided at that level run as
// batched Fed-SAC instances, partitioned across the forked worker engines.
// Group tournaments are independent and bracket-shape invariant, so the
// resulting index is identical for every worker count and batching mode —
// and query-equivalent to a witness-pruned Build at the same weights.
func (c *Customizer) Run() (*Index, error) {
	if c.ran {
		return nil, fmt.Errorf("ch: Customizer.Run called twice")
	}
	c.ran = true
	defer func() {
		for _, wf := range c.workers {
			wf.Engine().Close()
		}
	}()

	start := time.Now()
	x, sk := c.x, c.sk
	pl := sk.Plan()
	p := c.f.P()

	win := make([]int32, len(pl.groups))
	for g := range pl.groups {
		win[g] = pl.groups[g][0]
	}
	for lvl := 0; lvl <= pl.maxLvl; lvl++ {
		if lvl > 0 {
			for _, a := range pl.shortcutsAt[lvl] {
				i := a - int32(x.numBase)
				ca, cb := win[pl.gA[i]], win[pl.gB[i]]
				x.childA[a], x.childB[a] = ca, cb
				for s := 0; s < p; s++ {
					x.siloW[s][a] = x.siloW[s][ca] + x.siloW[s][cb]
				}
			}
		}
		if err := c.tournaments(pl.groupsAt[lvl], win); err != nil {
			return nil, err
		}
	}

	x.custWinner = win
	n := len(sk.rank)
	x.hs = &hierarchyState{
		outAll:   make([][]int32, n),
		inAll:    make([][]int32, n),
		skips:    make([][]skipRec, n),
		viaIndex: make(map[graph.Vertex][]int32),
		parents:  make(map[int32][]int32),
	}
	x.upOut = make([][]int32, n)
	x.downIn = make([][]int32, n)
	for a := int32(0); a < int32(len(x.tail)); a++ {
		x.hs.outAll[x.tail[a]] = append(x.hs.outAll[x.tail[a]], a)
		x.hs.inAll[x.head[a]] = append(x.hs.inAll[x.head[a]], a)
		if x.via[a] != NoShortcut {
			x.hs.viaIndex[x.via[a]] = append(x.hs.viaIndex[x.via[a]], a)
			x.hs.parents[x.childA[a]] = append(x.hs.parents[x.childA[a]], a)
			x.hs.parents[x.childB[a]] = append(x.hs.parents[x.childB[a]], a)
		}
		x.addArcToQueryLists(a)
	}

	var sacStats mpc.Stats
	for _, wf := range c.workers {
		sacStats.Add(wf.Engine().Stats())
	}
	x.buildStats = BuildStats{
		Shortcuts:   x.NumShortcuts(),
		SAC:         sacStats,
		WallTime:    time.Since(start),
		Workers:     len(c.workers),
		Rounds:      pl.maxLvl + 1,
		RoundsSaved: sacStats.Compares*int64(mpc.RoundsPerCompare) - sacStats.Rounds,
		Customized:  true,
		Levels:      pl.maxLvl,
	}
	return x, nil
}

// tournaments resolves the winners of the given multi-member pair groups,
// split into contiguous chunks across the worker engines. Each group's
// tournament is self-contained, so the partition affects wall time only.
func (c *Customizer) tournaments(duel []int32, win []int32) error {
	if len(duel) == 0 {
		return nil
	}
	x, pl := c.x, c.sk.Plan()
	nw := len(c.sacs)
	if nw > len(duel) {
		nw = len(duel)
	}
	chunk := (len(duel) + nw - 1) / nw
	var wg sync.WaitGroup
	for wi := 0; wi < nw; wi++ {
		lo := wi * chunk
		hi := lo + chunk
		if hi > len(duel) {
			hi = len(duel)
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(sac *fed.SAC, part []int32) {
			defer wg.Done()
			slates := make([][]fed.Partial, len(part))
			for i, g := range part {
				members := pl.groups[g]
				slate := make([]fed.Partial, len(members))
				for j, a := range members {
					slate[j] = x.Partial(a)
				}
				slates[i] = slate
			}
			for i, w := range x.earliestMinGroups(sac, slates) {
				win[part[i]] = pl.groups[part[i]][w]
			}
		}(c.sacs[wi], duel[lo:hi])
	}
	wg.Wait()
	for _, sac := range c.sacs {
		if err := sac.Err(); err != nil {
			return err
		}
	}
	return nil
}

// updateCustomized is the dynamic-update path for customized indexes: the
// topology is immutable, so a traffic change refreshes the skeleton's weight
// slots in place — re-weight the shortcuts whose child groups' winners
// changed, re-run the tournaments of pair groups with changed members (one
// batch per level), and propagate only while a winner's identity or partial
// weights actually moved. No arcs are ever added (AddedShortcuts is always
// zero); UpdateStats.ReverifiedVertices counts re-run group tournaments
// here.
func (x *Index) updateCustomized(changed []graph.Arc) (UpdateStats, error) {
	start := time.Now()
	before := x.f.Engine().Stats()
	stats := UpdateStats{ChangedArcs: len(changed)}
	p := x.f.P()
	pl := x.skel.Plan()
	x.ensureWinners(pl)

	// Step 1 — refresh base partials; a group is dirty when a member's
	// partial vector changed (per-silo: equal joint costs can hide a
	// redistribution consumers must still inherit).
	changedArc := make(map[int32]bool)
	dirtyMember := make(map[int32]bool)
	dirtyWinner := make(map[int32]bool)
	for _, a := range changed {
		ai := int32(a)
		for s := 0; s < p; s++ {
			nw := x.f.Silo(s).Weight(a)
			if x.siloW[s][ai] != nw {
				x.siloW[s][ai] = nw
				changedArc[ai] = true
			}
		}
		if changedArc[ai] {
			dirtyMember[pl.groupOf[ai]] = true
		}
	}
	if len(changedArc) == 0 {
		stats.WallTime = time.Since(start)
		return stats, nil
	}

	sac := x.f.NewSAC()
	for lvl := 0; lvl <= pl.maxLvl; lvl++ {
		// Step 2 — re-weight the level's shortcuts whose child winners moved.
		if lvl > 0 {
			for _, a := range pl.shortcutsAt[lvl] {
				i := a - int32(x.numBase)
				ga, gb := pl.gA[i], pl.gB[i]
				if !dirtyWinner[ga] && !dirtyWinner[gb] {
					continue
				}
				ca, cb := x.custWinner[ga], x.custWinner[gb]
				x.childA[a], x.childB[a] = ca, cb
				chgd := false
				for s := 0; s < p; s++ {
					nw := x.siloW[s][ca] + x.siloW[s][cb]
					if x.siloW[s][a] != nw {
						x.siloW[s][a] = nw
						chgd = true
					}
				}
				if chgd {
					changedArc[a] = true
					dirtyMember[pl.groupOf[a]] = true
					stats.RecomputedShortcuts++
				}
			}
		}
		// Step 3 — re-decide the dirty groups settled at this level.
		var duel []int32
		for g := range dirtyMember {
			if pl.groupLvl[g] != int32(lvl) {
				continue
			}
			if len(pl.groups[g]) == 1 {
				dirtyWinner[g] = true // sole member IS the winner; its value moved
			} else {
				duel = append(duel, g)
			}
		}
		if len(duel) == 0 {
			continue
		}
		sort.Slice(duel, func(i, j int) bool { return duel[i] < duel[j] })
		slates := make([][]fed.Partial, len(duel))
		for i, g := range duel {
			members := pl.groups[g]
			slate := make([]fed.Partial, len(members))
			for j, a := range members {
				slate[j] = x.Partial(a)
			}
			slates[i] = slate
		}
		winners := x.earliestMinGroups(sac, slates)
		if err := sac.Err(); err != nil {
			return stats, err
		}
		for i, g := range duel {
			nw := pl.groups[g][winners[i]]
			if nw != x.custWinner[g] || changedArc[nw] {
				x.custWinner[g] = nw
				dirtyWinner[g] = true
			}
			stats.ReverifiedVertices++
		}
	}

	stats.SAC = x.f.Engine().Stats().Sub(before)
	stats.WallTime = time.Since(start)
	return stats, nil
}

// ensureWinners rebuilds the per-group winner table after deserialization:
// every shortcut's recorded children ARE the winners of its child groups at
// customization time, and groups consumed by no shortcut have no observable
// winner.
func (x *Index) ensureWinners(pl *custPlan) {
	if x.custWinner != nil {
		return
	}
	win := make([]int32, len(pl.groups))
	for g := range pl.groups {
		win[g] = pl.groups[g][0]
	}
	for a := int32(x.numBase); a < int32(len(x.tail)); a++ {
		i := a - int32(x.numBase)
		win[pl.gA[i]] = x.childA[a]
		win[pl.gB[i]] = x.childB[a]
	}
	x.custWinner = win
}
