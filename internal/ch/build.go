package ch

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/fed"
	"repro/internal/graph"
	"repro/internal/mpc"
)

// skipRec records a shortcut pair that was *not* added because a witness path
// strictly shorter than the via path existed at decision time. The witness's
// arc set is kept so dynamic updates know when the decision must be
// re-examined.
type skipRec struct {
	u, w        graph.Vertex
	witnessArcs []int32
}

// hierarchyState is the bookkeeping shared by construction and dynamic
// update: the full overlay adjacency and the per-vertex skip records.
type hierarchyState struct {
	outAll   [][]int32 // all overlay arcs per tail
	inAll    [][]int32 // all overlay arcs per head
	skips    [][]skipRec
	viaIndex map[graph.Vertex][]int32 // shortcuts grouped by via vertex
	parents  map[int32][]int32        // child overlay arc -> shortcuts built on it
}

// Params tunes index construction. The zero value gives the paper's setup:
// edge-difference ordering, the default witness-search cap, one contraction
// worker per CPU and batched Fed-SAC decisions.
type Params struct {
	// Ordering selects the public importance heuristic (default
	// OrderEdgeDiff).
	Ordering Ordering
	// WitnessCap bounds witness-search settles (default DefaultWitnessCap).
	// Smaller caps build faster but add more conservative shortcuts.
	WitnessCap int
	// Workers sets the contraction worker pool for the independent-set
	// rounds (0 = GOMAXPROCS, 1 = sequential). The built index is
	// byte-identical for every worker count; Workers trades wall time only.
	Workers int
	// NoBatch resolves every witness decision and min-arc match with an
	// individual Fed-SAC comparison instead of per-contraction CompareBatch
	// instances. Diagnostics only: it isolates the MPC-round saving of
	// batching (BuildStats.RoundsSaved) without changing the result.
	NoBatch bool
	// RebuildOnConflict is consumed by the fedroad layer's non-blocking
	// BuildIndexWith: when a concurrent traffic update invalidates the
	// weight snapshot mid-build, the build is retried from fresh weights up
	// to this many times before ErrBuildConflict is returned.
	RebuildOnConflict int
}

// Build constructs the federated shortcut index with the default parameters.
func Build(f *fed.Federation) (*Index, error) {
	return BuildWith(f, Params{})
}

// BuildWith constructs the federated shortcut index for a federation
// (Alg. 3): a public ordering pass fixes the contraction order; the
// contraction pass then decides every shortcut on *joint* weights via
// Fed-SAC, so all silos end with identical shortcut sets while each keeps
// only its partial shortcut weights. Equivalent to NewBuilder followed by
// Run; callers that must not hold a lock during construction use the two
// phases directly.
func BuildWith(f *fed.Federation, prm Params) (*Index, error) {
	b, err := NewBuilder(f, prm)
	if err != nil {
		return nil, err
	}
	return b.Run()
}

// Builder splits index construction into a snapshot phase and a work phase so
// callers can keep their own locking brief: NewBuilder copies the silos'
// private weights (the only read of mutable federation state), and Run
// performs the entire ordering + contraction effort against that snapshot.
// The fedroad layer builds without blocking queries this way — snapshot under
// a read lock, Run with no lock held, swap the finished index in under a
// brief write lock.
type Builder struct {
	f       *fed.Federation
	prm     Params
	x       *Index
	workers []*fed.Federation // one forked engine per contraction worker
	sacs    []*fed.SAC
	ran     bool
}

// NewBuilder validates the parameters and snapshots the federation: base
// overlay arcs, per-silo partial weights and one forked MPC engine per
// contraction worker. The root engine is never used by the build, so the
// caller may keep using it (e.g. for dynamic updates of a previous index)
// while Run executes.
func NewBuilder(f *fed.Federation, prm Params) (*Builder, error) {
	switch prm.Ordering {
	case "":
		prm.Ordering = OrderEdgeDiff
	case OrderEdgeDiff, OrderDegree:
	default:
		return nil, fmt.Errorf("ch: unknown ordering %q", prm.Ordering)
	}
	if prm.WitnessCap == 0 {
		prm.WitnessCap = DefaultWitnessCap
	}
	g := f.Graph()
	n := g.NumVertices()
	p := f.P()
	if prm.Workers <= 0 {
		prm.Workers = runtime.GOMAXPROCS(0)
	}
	if n > 0 && prm.Workers > n {
		prm.Workers = n
	}

	x := &Index{
		f:          f,
		rank:       make([]int32, n),
		numBase:    g.NumArcs(),
		witnessCap: prm.WitnessCap,
		noBatch:    prm.NoBatch,
	}
	for v := range x.rank {
		x.rank[v] = -1
	}
	x.hs = &hierarchyState{
		outAll:   make([][]int32, n),
		inAll:    make([][]int32, n),
		skips:    make([][]skipRec, n),
		viaIndex: make(map[graph.Vertex][]int32),
		parents:  make(map[int32][]int32),
	}
	x.siloW = make([][]int64, p)
	for s := 0; s < p; s++ {
		x.siloW[s] = make([]int64, 0, 2*g.NumArcs())
	}
	for a := 0; a < g.NumArcs(); a++ {
		u, w := g.Tail(graph.Arc(a)), g.Head(graph.Arc(a))
		x.tail = append(x.tail, u)
		x.head = append(x.head, w)
		x.via = append(x.via, NoShortcut)
		x.childA = append(x.childA, -1)
		x.childB = append(x.childB, -1)
		for s := 0; s < p; s++ {
			x.siloW[s] = append(x.siloW[s], f.Silo(s).Weight(graph.Arc(a)))
		}
		x.hs.outAll[u] = append(x.hs.outAll[u], int32(a))
		x.hs.inAll[w] = append(x.hs.inAll[w], int32(a))
	}

	b := &Builder{f: f, prm: prm, x: x}
	for i := 0; i < prm.Workers; i++ {
		wf := f.Fork()
		b.workers = append(b.workers, wf)
		b.sacs = append(b.sacs, wf.NewSAC())
	}
	return b, nil
}

// Run executes the ordering and contraction phases against the snapshot taken
// by NewBuilder and returns the finished index. It reads no mutable
// federation state, so it needs no external synchronization. Run may be
// called once.
func (b *Builder) Run() (*Index, error) {
	if b.ran {
		return nil, fmt.Errorf("ch: Builder.Run called twice")
	}
	b.ran = true
	defer func() {
		for _, wf := range b.workers {
			wf.Engine().Close()
		}
	}()

	start := time.Now()
	x := b.x
	g := b.f.Graph()
	n := g.NumVertices()

	var order []graph.Vertex
	switch b.prm.Ordering {
	case OrderEdgeDiff:
		order = computeOrder(g, b.f.StaticWeights())
	case OrderDegree:
		order = computeOrderDegree(g)
	}
	orderingTime := time.Since(start)

	// Contraction proceeds in rounds: each round greedily selects, following
	// the contraction order, a maximal set of vertices pairwise non-adjacent
	// in the current overlay; their contractions read disjoint arc
	// neighborhoods and are proposed concurrently against the round-start
	// snapshot, then merged (and ranked) in order — so the result is
	// byte-identical to the Workers=1 run. See DESIGN.md, "Parallel index
	// construction" for the soundness argument.
	el := buildEligibility(x)
	inSet := make([]bool, n)
	pos, rounds, maxWidth := 0, 0, 0
	for pos < n {
		var set []graph.Vertex
		for _, v := range order {
			if x.rank[v] >= 0 || x.adjacentToSet(v, inSet, el) {
				continue
			}
			inSet[v] = true
			set = append(set, v)
		}
		props := make([]*proposal, len(set))
		if len(b.workers) == 1 || len(set) == 1 {
			for i, v := range set {
				props[i] = x.propose(b.sacs[0], v, el)
			}
		} else {
			var next atomic.Int64
			var wg sync.WaitGroup
			nw := len(b.workers)
			if nw > len(set) {
				nw = len(set)
			}
			for wi := 0; wi < nw; wi++ {
				wg.Add(1)
				go func(sac *fed.SAC) {
					defer wg.Done()
					for {
						i := int(next.Add(1)) - 1
						if i >= len(set) {
							return
						}
						props[i] = x.propose(sac, set[i], el)
					}
				}(b.sacs[wi])
			}
			wg.Wait()
		}
		for _, sac := range b.sacs {
			if err := sac.Err(); err != nil {
				return nil, err
			}
		}
		for i, v := range set {
			x.apply(props[i])
			x.rank[v] = int32(pos)
			pos++
			inSet[v] = false
		}
		rounds++
		if len(set) > maxWidth {
			maxWidth = len(set)
		}
	}

	// Route every overlay arc into the query-time up/down lists.
	x.upOut = make([][]int32, n)
	x.downIn = make([][]int32, n)
	for a := int32(0); a < int32(len(x.tail)); a++ {
		x.addArcToQueryLists(a)
	}

	var sacStats mpc.Stats
	for _, wf := range b.workers {
		sacStats.Add(wf.Engine().Stats())
	}
	avgWidth := 0.0
	if rounds > 0 {
		avgWidth = float64(n) / float64(rounds)
	}
	x.buildStats = BuildStats{
		Shortcuts:       x.NumShortcuts(),
		SAC:             sacStats,
		WallTime:        time.Since(start),
		Workers:         len(b.workers),
		Rounds:          rounds,
		MaxRoundWidth:   maxWidth,
		AvgRoundWidth:   avgWidth,
		RoundsSaved:     sacStats.Compares*int64(mpc.RoundsPerCompare) - sacStats.Rounds,
		OrderingTime:    orderingTime,
		ContractionTime: time.Since(start) - orderingTime,
	}
	return x, nil
}

// adjacentToSet reports whether v shares an eligible overlay arc with a
// vertex already selected for the current contraction round.
func (x *Index) adjacentToSet(v graph.Vertex, inSet []bool, el eligibility) bool {
	for _, a := range x.hs.inAll[v] {
		if el.arcOK(a) && inSet[x.tail[a]] {
			return true
		}
	}
	for _, a := range x.hs.outAll[v] {
		if el.arcOK(a) && inSet[x.head[a]] {
			return true
		}
	}
	return false
}

// eligibility tells the contraction machinery which overlay arcs and
// vertices exist in the remaining graph at the current step.
type eligibility struct {
	arcOK func(a int32) bool
	vtxOK func(v graph.Vertex) bool
}

// buildEligibility: during initial construction a vertex is present until it
// has been assigned a rank, and every overlay arc created so far is present.
func buildEligibility(x *Index) eligibility {
	return eligibility{
		arcOK: func(int32) bool { return true },
		vtxOK: func(v graph.Vertex) bool { return x.rank[v] < 0 },
	}
}

// updateEligibility reconstructs the remaining graph at contraction step k:
// vertices with rank > k, and arcs that existed before step k (base arcs or
// shortcuts whose via vertex was contracted earlier).
func updateEligibility(x *Index, k int32) eligibility {
	return eligibility{
		arcOK: func(a int32) bool {
			return x.via[a] == NoShortcut || x.rank[x.via[a]] < k
		},
		vtxOK: func(v graph.Vertex) bool { return x.rank[v] > k },
	}
}

// proposal is the read-only outcome of contracting one vertex against a
// fixed overlay snapshot. All mutations are deferred to apply, so proposals
// computed concurrently for non-adjacent vertices of the same round merge
// deterministically.
type proposal struct {
	v         graph.Vertex
	shortcuts []propShortcut
	refresh   []refreshRec
	skips     []skipRec
}

// propShortcut is a new shortcut tail(ca) → v → head(cb).
type propShortcut struct{ ca, cb int32 }

// refreshRec re-binds an existing shortcut a (via v) to the via arcs (ca,cb)
// and partial weights decided by the latest re-contraction.
type refreshRec struct {
	a, ca, cb int32
	via       fed.Partial
}

// propose computes the (re-)contraction of v without mutating the overlay:
// for every in-neighbor u and out-neighbor w present in the remaining graph,
// the joint via cost is compared against a federated witness search. The
// independent Fed-SAC decisions of the contraction — the parallel-arc
// tournament matches and the final witness-vs-via comparisons — run as
// CompareBatch instances instead of one comparison each (unless noBatch).
//
// A shortcut is skipped only when the witness is STRICTLY shorter than the
// via path; ties add the shortcut. Strictness is what keeps simultaneous
// same-round contractions sound: with a tie-skip rule, two vertices
// contracted from the same snapshot could each cite the other's equal-cost
// path as witness and both drop it.
func (x *Index) propose(sac *fed.SAC, v graph.Vertex, el eligibility) *proposal {
	p := x.f.P()
	prop := &proposal{v: v}
	groups := x.minArcGroups(x.hs.inAll[v], true, v, el)
	nIn := len(groups)
	groups = append(groups, x.minArcGroups(x.hs.outAll[v], false, v, el)...)
	x.reduceMinArcs(sac, groups)
	minIn, minOut := groups[:nIn], groups[nIn:]
	if len(minIn) == 0 || len(minOut) == 0 {
		return prop
	}

	type candidate struct {
		u, w         graph.Vertex
		arcUV, arcVW int32
		via, wit     fed.Partial // wit nil when no witness settled
		witArcs      []int32
	}
	var cands []candidate
	for _, gu := range minIn {
		u, arcUV := gu.other, gu.arcs[0]
		targets := make(map[graph.Vertex]fed.Partial, len(minOut))
		for _, gw := range minOut {
			if gw.other == u {
				continue
			}
			via := make(fed.Partial, p)
			for s := 0; s < p; s++ {
				via[s] = x.siloW[s][arcUV] + x.siloW[s][gw.arcs[0]]
			}
			targets[gw.other] = via
		}
		if len(targets) == 0 {
			continue
		}
		dists, witArcs := x.witnessSearch(sac, u, v, targets, el)
		for _, gw := range minOut {
			via, ok := targets[gw.other]
			if !ok {
				continue
			}
			c := candidate{u: u, w: gw.other, arcUV: arcUV, arcVW: gw.arcs[0], via: via}
			if d, ok := dists[gw.other]; ok {
				c.wit, c.witArcs = d, witArcs[gw.other]
			}
			cands = append(cands, c)
		}
	}

	skip := make([]bool, len(cands))
	if x.noBatch {
		for i, c := range cands {
			if c.wit != nil {
				skip[i] = sac.Less(c.wit, c.via)
			}
		}
	} else {
		var pairs [][2]fed.Partial
		var refs []int
		for i, c := range cands {
			if c.wit != nil {
				pairs = append(pairs, [2]fed.Partial{c.wit, c.via})
				refs = append(refs, i)
			}
		}
		for j, less := range sac.LessBatch(pairs) {
			skip[refs[j]] = less
		}
	}

	existing := make(map[[2]graph.Vertex]int32, len(x.hs.viaIndex[v]))
	for _, a := range x.hs.viaIndex[v] {
		existing[[2]graph.Vertex{x.tail[a], x.head[a]}] = a
	}
	for i, c := range cands {
		if skip[i] {
			prop.skips = append(prop.skips, skipRec{u: c.u, w: c.w, witnessArcs: c.witArcs})
			continue
		}
		if a, ok := existing[[2]graph.Vertex{c.u, c.w}]; ok {
			prop.refresh = append(prop.refresh, refreshRec{a: a, ca: c.arcUV, cb: c.arcVW, via: c.via})
		} else {
			prop.shortcuts = append(prop.shortcuts, propShortcut{ca: c.arcUV, cb: c.arcVW})
		}
	}
	return prop
}

// apply materializes a proposal: refreshed shortcut bindings, new shortcut
// arcs (IDs assigned here, in the proposal's deterministic neighbor-sorted
// order) and the vertex's skip records. Returns the newly added shortcut IDs.
func (x *Index) apply(prop *proposal) []int32 {
	for _, r := range prop.refresh {
		if x.childA[r.a] != r.ca || x.childB[r.a] != r.cb {
			x.childA[r.a], x.childB[r.a] = r.ca, r.cb
			x.hs.parents[r.ca] = append(x.hs.parents[r.ca], r.a)
			x.hs.parents[r.cb] = append(x.hs.parents[r.cb], r.a)
		}
		for s := range x.siloW {
			x.siloW[s][r.a] = r.via[s]
		}
	}
	var added []int32
	for _, sc := range prop.shortcuts {
		added = append(added, x.addShortcut(prop.v, sc.ca, sc.cb))
	}
	x.hs.skips[prop.v] = prop.skips
	return added
}

// contract runs the (re-)contraction of v synchronously — propose against
// the current overlay, then apply. Used by the sequential paths (dynamic
// update re-verification). Returns the IDs of newly added shortcut arcs.
func (x *Index) contract(sac *fed.SAC, v graph.Vertex, el eligibility) []int32 {
	return x.apply(x.propose(sac, v, el))
}

// neighborGroup gathers the eligible parallel arcs between the contracted
// vertex and one neighbor. After reduceMinArcs, arcs[0] is the joint-minimum
// arc.
type neighborGroup struct {
	other graph.Vertex
	arcs  []int32
}

// minArcGroups buckets the eligible overlay arcs incident to v by neighbor,
// in deterministic neighbor-sorted order (map iteration order must never
// leak into shortcut IDs or skip records — builds are byte-reproducible).
func (x *Index) minArcGroups(arcs []int32, incoming bool, v graph.Vertex, el eligibility) []neighborGroup {
	byOther := make(map[graph.Vertex][]int32)
	for _, a := range arcs {
		if !el.arcOK(a) {
			continue
		}
		other := x.head[a]
		if incoming {
			other = x.tail[a]
		}
		if other == v || !el.vtxOK(other) {
			continue
		}
		byOther[other] = append(byOther[other], a)
	}
	others := make([]graph.Vertex, 0, len(byOther))
	for o := range byOther {
		others = append(others, o)
	}
	sort.Slice(others, func(i, j int) bool { return others[i] < others[j] })
	groups := make([]neighborGroup, len(others))
	for i, o := range others {
		groups[i] = neighborGroup{other: o, arcs: byOther[o]}
	}
	return groups
}

// reduceMinArcs reduces every group to its joint-minimum arc by a tournament
// whose per-level matches — independent across pairs and groups — run in one
// batched Fed-SAC instance per level. A later arc wins its match only when
// strictly smaller, so each group's winner is its earliest joint minimum,
// exactly the arc a sequential left-to-right fold selects.
func (x *Index) reduceMinArcs(sac *fed.SAC, groups []neighborGroup) {
	for {
		var pairs [][2]fed.Partial
		type matchRef struct{ gi, pi int }
		var refs []matchRef
		for gi := range groups {
			as := groups[gi].arcs
			for pi := 0; pi+1 < len(as); pi += 2 {
				pairs = append(pairs, [2]fed.Partial{x.Partial(as[pi+1]), x.Partial(as[pi])})
				refs = append(refs, matchRef{gi, pi})
			}
		}
		if len(pairs) == 0 {
			return
		}
		var res []bool
		if x.noBatch {
			res = make([]bool, len(pairs))
			for i, pr := range pairs {
				res[i] = sac.Less(pr[0], pr[1])
			}
		} else {
			res = sac.LessBatch(pairs)
		}
		next := make([][]int32, len(groups))
		for gi, g := range groups {
			if len(g.arcs) > 1 {
				next[gi] = make([]int32, 0, (len(g.arcs)+1)/2)
			}
		}
		for mi, r := range refs {
			as := groups[r.gi].arcs
			win := as[r.pi]
			if res[mi] {
				win = as[r.pi+1]
			}
			next[r.gi] = append(next[r.gi], win)
		}
		for gi := range groups {
			if next[gi] == nil {
				continue
			}
			if len(groups[gi].arcs)%2 == 1 {
				next[gi] = append(next[gi], groups[gi].arcs[len(groups[gi].arcs)-1])
			}
			groups[gi].arcs = next[gi]
		}
	}
}

// addShortcut appends a new shortcut arc composed of two existing overlay
// arcs (tail(ca) → v → head(cb)) and routes it into the hierarchy adjacency.
func (x *Index) addShortcut(v graph.Vertex, ca, cb int32) int32 {
	a := int32(len(x.tail))
	u, w := x.tail[ca], x.head[cb]
	x.tail = append(x.tail, u)
	x.head = append(x.head, w)
	x.via = append(x.via, v)
	x.childA = append(x.childA, ca)
	x.childB = append(x.childB, cb)
	for s := range x.siloW {
		x.siloW[s] = append(x.siloW[s], x.siloW[s][ca]+x.siloW[s][cb])
	}
	x.hs.outAll[u] = append(x.hs.outAll[u], a)
	x.hs.inAll[w] = append(x.hs.inAll[w], a)
	x.hs.viaIndex[v] = append(x.hs.viaIndex[v], a)
	x.hs.parents[ca] = append(x.hs.parents[ca], a)
	x.hs.parents[cb] = append(x.hs.parents[cb], a)
	return a
}

// witItem is one frontier entry of a federated witness search.
type witItem struct {
	vtx  graph.Vertex
	part fed.Partial
	par  graph.Vertex
	parc int32
}

// witHeap is a binary min-heap over witItems ordered by Fed-SAC.
type witHeap struct {
	sac   *fed.SAC
	items []witItem
}

func (h *witHeap) Len() int { return len(h.items) }

func (h *witHeap) push(it witItem) {
	h.items = append(h.items, it)
	i := len(h.items) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !h.sac.Less(h.items[i].part, h.items[p].part) {
			break
		}
		h.items[p], h.items[i] = h.items[i], h.items[p]
		i = p
	}
}

func (h *witHeap) pop() witItem {
	top := h.items[0]
	n := len(h.items) - 1
	h.items[0] = h.items[n]
	h.items = h.items[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		s := i
		if l < n && h.sac.Less(h.items[l].part, h.items[s].part) {
			s = l
		}
		if r < n && h.sac.Less(h.items[r].part, h.items[s].part) {
			s = r
		}
		if s == i {
			break
		}
		h.items[s], h.items[i] = h.items[i], h.items[s]
		i = s
	}
	return top
}

// witnessSearch runs a capped federated Dijkstra from u over the remaining
// graph (excluding v), with every comparison through Fed-SAC. It returns the
// settled partial distances and, per settled target, the arcs of the found
// witness path (for skip records).
func (x *Index) witnessSearch(sac *fed.SAC, u, v graph.Vertex, targets map[graph.Vertex]fed.Partial, el eligibility) (map[graph.Vertex]fed.Partial, map[graph.Vertex][]int32) {
	h := &witHeap{sac: sac}
	h.push(witItem{vtx: u, part: x.f.ZeroPartial(), par: graph.NoVertex, parc: -1})
	settled := make(map[graph.Vertex]fed.Partial)
	parent := make(map[graph.Vertex]graph.Vertex)
	parArc := make(map[graph.Vertex]int32)
	found, settles := 0, 0
	for h.Len() > 0 && settles < x.witnessCap && found < len(targets) {
		it := h.pop()
		if _, done := settled[it.vtx]; done {
			continue
		}
		settled[it.vtx] = it.part
		parent[it.vtx] = it.par
		parArc[it.vtx] = it.parc
		settles++
		if _, isT := targets[it.vtx]; isT {
			found++
		}
		for _, a := range x.hs.outAll[it.vtx] {
			if !el.arcOK(a) {
				continue
			}
			z := x.head[a]
			if z == v || z == it.vtx || !el.vtxOK(z) {
				continue
			}
			if _, done := settled[z]; done {
				continue
			}
			np := make(fed.Partial, len(it.part))
			for s := range np {
				np[s] = it.part[s] + x.siloW[s][a]
			}
			h.push(witItem{vtx: z, part: np, par: it.vtx, parc: a})
		}
	}
	witArcs := make(map[graph.Vertex][]int32)
	for w := range targets {
		if _, ok := settled[w]; !ok {
			continue
		}
		var arcs []int32
		for y := w; parent[y] != graph.NoVertex; y = parent[y] {
			arcs = append(arcs, parArc[y])
		}
		witArcs[w] = arcs
	}
	return settled, witArcs
}
