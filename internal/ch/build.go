package ch

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/fed"
	"repro/internal/graph"
	"repro/internal/mpc"
)

// skipRec records a shortcut pair that was *not* added because a witness path
// strictly shorter than the via path existed at decision time. The witness's
// arc set is kept so dynamic updates know when the decision must be
// re-examined.
type skipRec struct {
	u, w        graph.Vertex
	witnessArcs []int32
}

// hierarchyState is the bookkeeping shared by construction and dynamic
// update: the full overlay adjacency and the per-vertex skip records.
type hierarchyState struct {
	outAll   [][]int32 // all overlay arcs per tail
	inAll    [][]int32 // all overlay arcs per head
	skips    [][]skipRec
	viaIndex map[graph.Vertex][]int32 // shortcuts grouped by via vertex
	parents  map[int32][]int32        // child overlay arc -> shortcuts built on it
}

// DefaultWitnessHops bounds the frontier depth of the federated witness
// search: a witness path may use at most this many arcs. Deeper searches
// find more witnesses (fewer shortcuts) but pay more wide Fed-SAC rounds
// per contraction.
const DefaultWitnessHops = 8

// Params tunes index construction. The zero value gives the paper's setup:
// edge-difference ordering, the default witness-search cap, one contraction
// worker per CPU and batched Fed-SAC decisions.
type Params struct {
	// Ordering selects the public importance heuristic (default
	// OrderEdgeDiff).
	Ordering Ordering
	// WitnessCap bounds witness-search frontier expansions per source
	// (default DefaultWitnessCap). Smaller caps build faster but add more
	// conservative shortcuts.
	WitnessCap int
	// WitnessHops bounds the arc count of witness paths (default
	// DefaultWitnessHops).
	WitnessHops int
	// Workers sets the contraction worker pool for the independent-set
	// rounds (0 = GOMAXPROCS, 1 = sequential). The built index is
	// byte-identical for every worker count; Workers trades wall time only.
	Workers int
	// NoBatch resolves every witness decision and min-arc match with an
	// individual Fed-SAC comparison instead of per-contraction CompareBatch
	// instances. Diagnostics only: it isolates the MPC-round saving of
	// batching (BuildStats.RoundsSaved) without changing the result.
	NoBatch bool
	// RebuildOnConflict is consumed by the fedroad layer's non-blocking
	// BuildIndexWith: when a concurrent traffic update invalidates the
	// weight snapshot mid-build, the build is retried from fresh weights up
	// to this many times before ErrBuildConflict is returned.
	RebuildOnConflict int
	// CustomizeOnly is consumed by the fedroad layer's BuildIndexWith: the
	// index is derived by weight customization over the federation's
	// topology skeleton (building the skeleton first if none exists)
	// instead of a witness-pruned federated contraction.
	CustomizeOnly bool
}

// Build constructs the federated shortcut index with the default parameters.
func Build(f *fed.Federation) (*Index, error) {
	return BuildWith(f, Params{})
}

// BuildWith constructs the federated shortcut index for a federation
// (Alg. 3): a public ordering pass fixes the contraction order; the
// contraction pass then decides every shortcut on *joint* weights via
// Fed-SAC, so all silos end with identical shortcut sets while each keeps
// only its partial shortcut weights. Equivalent to NewBuilder followed by
// Run; callers that must not hold a lock during construction use the two
// phases directly.
func BuildWith(f *fed.Federation, prm Params) (*Index, error) {
	b, err := NewBuilder(f, prm)
	if err != nil {
		return nil, err
	}
	return b.Run()
}

// Builder splits index construction into a snapshot phase and a work phase so
// callers can keep their own locking brief: NewBuilder copies the silos'
// private weights (the only read of mutable federation state), and Run
// performs the entire ordering + contraction effort against that snapshot.
// The fedroad layer builds without blocking queries this way — snapshot under
// a read lock, Run with no lock held, swap the finished index in under a
// brief write lock.
type Builder struct {
	f       *fed.Federation
	prm     Params
	x       *Index
	workers []*fed.Federation // one forked engine per contraction worker
	sacs    []*fed.SAC
	ran     bool
}

// NewBuilder validates the parameters and snapshots the federation: base
// overlay arcs, per-silo partial weights and one forked MPC engine per
// contraction worker. The root engine is never used by the build, so the
// caller may keep using it (e.g. for dynamic updates of a previous index)
// while Run executes.
func NewBuilder(f *fed.Federation, prm Params) (*Builder, error) {
	switch prm.Ordering {
	case "":
		prm.Ordering = OrderEdgeDiff
	case OrderEdgeDiff, OrderDegree:
	default:
		return nil, fmt.Errorf("ch: unknown ordering %q", prm.Ordering)
	}
	if prm.WitnessCap == 0 {
		prm.WitnessCap = DefaultWitnessCap
	}
	if prm.WitnessHops == 0 {
		prm.WitnessHops = DefaultWitnessHops
	}
	g := f.Graph()
	n := g.NumVertices()
	p := f.P()
	if prm.Workers <= 0 {
		prm.Workers = runtime.GOMAXPROCS(0)
	}
	if n > 0 && prm.Workers > n {
		prm.Workers = n
	}

	x := &Index{
		f:           f,
		rank:        make([]int32, n),
		numBase:     g.NumArcs(),
		witnessCap:  prm.WitnessCap,
		witnessHops: prm.WitnessHops,
		noBatch:     prm.NoBatch,
	}
	for v := range x.rank {
		x.rank[v] = -1
	}
	x.hs = &hierarchyState{
		outAll:   make([][]int32, n),
		inAll:    make([][]int32, n),
		skips:    make([][]skipRec, n),
		viaIndex: make(map[graph.Vertex][]int32),
		parents:  make(map[int32][]int32),
	}
	x.siloW = make([][]int64, p)
	for s := 0; s < p; s++ {
		x.siloW[s] = make([]int64, 0, 2*g.NumArcs())
	}
	for a := 0; a < g.NumArcs(); a++ {
		u, w := g.Tail(graph.Arc(a)), g.Head(graph.Arc(a))
		x.tail = append(x.tail, u)
		x.head = append(x.head, w)
		x.via = append(x.via, NoShortcut)
		x.childA = append(x.childA, -1)
		x.childB = append(x.childB, -1)
		for s := 0; s < p; s++ {
			x.siloW[s] = append(x.siloW[s], f.Silo(s).Weight(graph.Arc(a)))
		}
		x.hs.outAll[u] = append(x.hs.outAll[u], int32(a))
		x.hs.inAll[w] = append(x.hs.inAll[w], int32(a))
	}

	b := &Builder{f: f, prm: prm, x: x}
	for i := 0; i < prm.Workers; i++ {
		wf := f.Fork()
		b.workers = append(b.workers, wf)
		b.sacs = append(b.sacs, wf.NewSAC())
	}
	return b, nil
}

// Run executes the ordering and contraction phases against the snapshot taken
// by NewBuilder and returns the finished index. It reads no mutable
// federation state, so it needs no external synchronization. Run may be
// called once.
func (b *Builder) Run() (*Index, error) {
	if b.ran {
		return nil, fmt.Errorf("ch: Builder.Run called twice")
	}
	b.ran = true
	defer func() {
		for _, wf := range b.workers {
			wf.Engine().Close()
		}
	}()

	start := time.Now()
	x := b.x
	g := b.f.Graph()
	n := g.NumVertices()

	var order []graph.Vertex
	switch b.prm.Ordering {
	case OrderEdgeDiff:
		order = computeOrder(g, b.f.StaticWeights())
	case OrderDegree:
		order = computeOrderDegree(g)
	}
	orderingTime := time.Since(start)

	// Contraction proceeds in rounds: each round greedily selects, following
	// the contraction order, a maximal set of vertices pairwise non-adjacent
	// in the current overlay; their contractions read disjoint arc
	// neighborhoods and are proposed concurrently against the round-start
	// snapshot, then merged (and ranked) in order — so the result is
	// byte-identical to the Workers=1 run. See DESIGN.md, "Parallel index
	// construction" for the soundness argument.
	el := buildEligibility(x)
	inSet := make([]bool, n)
	pos, rounds, maxWidth := 0, 0, 0
	for pos < n {
		var set []graph.Vertex
		for _, v := range order {
			if x.rank[v] >= 0 || x.adjacentToSet(v, inSet, el) {
				continue
			}
			inSet[v] = true
			set = append(set, v)
		}
		props := make([]*proposal, len(set))
		if len(b.workers) == 1 || len(set) == 1 {
			for i, v := range set {
				props[i] = x.propose(b.sacs[0], v, el)
			}
		} else {
			var next atomic.Int64
			var wg sync.WaitGroup
			nw := len(b.workers)
			if nw > len(set) {
				nw = len(set)
			}
			for wi := 0; wi < nw; wi++ {
				wg.Add(1)
				go func(sac *fed.SAC) {
					defer wg.Done()
					for {
						i := int(next.Add(1)) - 1
						if i >= len(set) {
							return
						}
						props[i] = x.propose(sac, set[i], el)
					}
				}(b.sacs[wi])
			}
			wg.Wait()
		}
		for _, sac := range b.sacs {
			if err := sac.Err(); err != nil {
				return nil, err
			}
		}
		for i, v := range set {
			x.apply(props[i])
			x.rank[v] = int32(pos)
			pos++
			inSet[v] = false
		}
		rounds++
		if len(set) > maxWidth {
			maxWidth = len(set)
		}
	}

	// Route every overlay arc into the query-time up/down lists.
	x.upOut = make([][]int32, n)
	x.downIn = make([][]int32, n)
	for a := int32(0); a < int32(len(x.tail)); a++ {
		x.addArcToQueryLists(a)
	}

	var sacStats mpc.Stats
	for _, wf := range b.workers {
		sacStats.Add(wf.Engine().Stats())
	}
	avgWidth := 0.0
	if rounds > 0 {
		avgWidth = float64(n) / float64(rounds)
	}
	x.buildStats = BuildStats{
		Shortcuts:       x.NumShortcuts(),
		SAC:             sacStats,
		WallTime:        time.Since(start),
		Workers:         len(b.workers),
		Rounds:          rounds,
		MaxRoundWidth:   maxWidth,
		AvgRoundWidth:   avgWidth,
		RoundsSaved:     sacStats.Compares*int64(mpc.RoundsPerCompare) - sacStats.Rounds,
		OrderingTime:    orderingTime,
		ContractionTime: time.Since(start) - orderingTime,
	}
	return x, nil
}

// adjacentToSet reports whether v shares an eligible overlay arc with a
// vertex already selected for the current contraction round.
func (x *Index) adjacentToSet(v graph.Vertex, inSet []bool, el eligibility) bool {
	for _, a := range x.hs.inAll[v] {
		if el.arcOK(a) && inSet[x.tail[a]] {
			return true
		}
	}
	for _, a := range x.hs.outAll[v] {
		if el.arcOK(a) && inSet[x.head[a]] {
			return true
		}
	}
	return false
}

// eligibility tells the contraction machinery which overlay arcs and
// vertices exist in the remaining graph at the current step.
type eligibility struct {
	arcOK func(a int32) bool
	vtxOK func(v graph.Vertex) bool
}

// buildEligibility: during initial construction a vertex is present until it
// has been assigned a rank, and every overlay arc created so far is present.
func buildEligibility(x *Index) eligibility {
	return eligibility{
		arcOK: func(int32) bool { return true },
		vtxOK: func(v graph.Vertex) bool { return x.rank[v] < 0 },
	}
}

// updateEligibility reconstructs the remaining graph at contraction step k:
// vertices with rank > k, and arcs that existed before step k (base arcs or
// shortcuts whose via vertex was contracted earlier).
func updateEligibility(x *Index, k int32) eligibility {
	return eligibility{
		arcOK: func(a int32) bool {
			return x.via[a] == NoShortcut || x.rank[x.via[a]] < k
		},
		vtxOK: func(v graph.Vertex) bool { return x.rank[v] > k },
	}
}

// proposal is the read-only outcome of contracting one vertex against a
// fixed overlay snapshot. All mutations are deferred to apply, so proposals
// computed concurrently for non-adjacent vertices of the same round merge
// deterministically.
type proposal struct {
	v         graph.Vertex
	shortcuts []propShortcut
	refresh   []refreshRec
	skips     []skipRec
}

// propShortcut is a new shortcut tail(ca) → v → head(cb).
type propShortcut struct{ ca, cb int32 }

// refreshRec re-binds an existing shortcut a (via v) to the via arcs (ca,cb)
// and partial weights decided by the latest re-contraction.
type refreshRec struct {
	a, ca, cb int32
	via       fed.Partial
}

// propose computes the (re-)contraction of v without mutating the overlay:
// for every in-neighbor u and out-neighbor w present in the remaining graph,
// the joint via cost is compared against a federated witness search. The
// independent Fed-SAC decisions of the contraction — the parallel-arc
// tournament matches and the final witness-vs-via comparisons — run as
// CompareBatch instances instead of one comparison each (unless noBatch).
//
// A shortcut is skipped only when the witness is STRICTLY shorter than the
// via path; ties add the shortcut. Strictness is what keeps simultaneous
// same-round contractions sound: with a tie-skip rule, two vertices
// contracted from the same snapshot could each cite the other's equal-cost
// path as witness and both drop it.
func (x *Index) propose(sac *fed.SAC, v graph.Vertex, el eligibility) *proposal {
	p := x.f.P()
	prop := &proposal{v: v}
	groups := x.minArcGroups(x.hs.inAll[v], true, v, el)
	nIn := len(groups)
	groups = append(groups, x.minArcGroups(x.hs.outAll[v], false, v, el)...)
	x.reduceMinArcs(sac, groups)
	minIn, minOut := groups[:nIn], groups[nIn:]
	if len(minIn) == 0 || len(minOut) == 0 {
		return prop
	}

	// All witness searches of this contraction — one per minimal in-neighbor
	// with at least one target — run as one lane-synchronous frontier sweep,
	// so every hop costs a handful of wide Fed-SAC rounds for the whole
	// neighborhood instead of a round per heap operation per source.
	srcs := make([]graph.Vertex, 0, len(minIn))
	srcOf := make([]int, len(minIn)) // minIn index -> search index, -1 if none
	for ui, gu := range minIn {
		srcOf[ui] = -1
		for _, gw := range minOut {
			if gw.other != gu.other {
				srcOf[ui] = len(srcs)
				srcs = append(srcs, gu.other)
				break
			}
		}
	}
	wit := x.witnessSearchAll(sac, srcs, v, el)

	type candidate struct {
		u, w         graph.Vertex
		arcUV, arcVW int32
		via, wit     fed.Partial // wit nil when no witness path was found
		witArcs      []int32
	}
	var cands []candidate
	for ui, gu := range minIn {
		if srcOf[ui] < 0 {
			continue
		}
		u, arcUV := gu.other, gu.arcs[0]
		labels := wit[srcOf[ui]]
		for _, gw := range minOut {
			if gw.other == u {
				continue
			}
			via := make(fed.Partial, p)
			for s := 0; s < p; s++ {
				via[s] = x.siloW[s][arcUV] + x.siloW[s][gw.arcs[0]]
			}
			c := candidate{u: u, w: gw.other, arcUV: arcUV, arcVW: gw.arcs[0], via: via}
			if lbl := labels[gw.other]; lbl != nil {
				c.wit, c.witArcs = lbl.part, witPath(labels, gw.other)
			}
			cands = append(cands, c)
		}
	}

	skip := make([]bool, len(cands))
	var pairs [][2]fed.Partial
	var refs []int
	for i, c := range cands {
		if c.wit != nil {
			pairs = append(pairs, [2]fed.Partial{c.wit, c.via})
			refs = append(refs, i)
		}
	}
	for j, less := range x.lessAll(sac, pairs) {
		skip[refs[j]] = less
	}

	existing := make(map[[2]graph.Vertex]int32, len(x.hs.viaIndex[v]))
	for _, a := range x.hs.viaIndex[v] {
		existing[[2]graph.Vertex{x.tail[a], x.head[a]}] = a
	}
	for i, c := range cands {
		if skip[i] {
			prop.skips = append(prop.skips, skipRec{u: c.u, w: c.w, witnessArcs: c.witArcs})
			continue
		}
		if a, ok := existing[[2]graph.Vertex{c.u, c.w}]; ok {
			prop.refresh = append(prop.refresh, refreshRec{a: a, ca: c.arcUV, cb: c.arcVW, via: c.via})
		} else {
			prop.shortcuts = append(prop.shortcuts, propShortcut{ca: c.arcUV, cb: c.arcVW})
		}
	}
	return prop
}

// apply materializes a proposal: refreshed shortcut bindings, new shortcut
// arcs (IDs assigned here, in the proposal's deterministic neighbor-sorted
// order) and the vertex's skip records. Returns the newly added shortcut IDs.
func (x *Index) apply(prop *proposal) []int32 {
	for _, r := range prop.refresh {
		if x.childA[r.a] != r.ca || x.childB[r.a] != r.cb {
			x.childA[r.a], x.childB[r.a] = r.ca, r.cb
			x.hs.parents[r.ca] = append(x.hs.parents[r.ca], r.a)
			x.hs.parents[r.cb] = append(x.hs.parents[r.cb], r.a)
		}
		for s := range x.siloW {
			x.siloW[s][r.a] = r.via[s]
		}
	}
	var added []int32
	for _, sc := range prop.shortcuts {
		added = append(added, x.addShortcut(prop.v, sc.ca, sc.cb))
	}
	x.hs.skips[prop.v] = prop.skips
	return added
}

// contract runs the (re-)contraction of v synchronously — propose against
// the current overlay, then apply. Used by the sequential paths (dynamic
// update re-verification). Returns the IDs of newly added shortcut arcs.
func (x *Index) contract(sac *fed.SAC, v graph.Vertex, el eligibility) []int32 {
	return x.apply(x.propose(sac, v, el))
}

// neighborGroup gathers the eligible parallel arcs between the contracted
// vertex and one neighbor. After reduceMinArcs, arcs[0] is the joint-minimum
// arc.
type neighborGroup struct {
	other graph.Vertex
	arcs  []int32
}

// minArcGroups buckets the eligible overlay arcs incident to v by neighbor,
// in deterministic neighbor-sorted order (map iteration order must never
// leak into shortcut IDs or skip records — builds are byte-reproducible).
func (x *Index) minArcGroups(arcs []int32, incoming bool, v graph.Vertex, el eligibility) []neighborGroup {
	byOther := make(map[graph.Vertex][]int32)
	for _, a := range arcs {
		if !el.arcOK(a) {
			continue
		}
		other := x.head[a]
		if incoming {
			other = x.tail[a]
		}
		if other == v || !el.vtxOK(other) {
			continue
		}
		byOther[other] = append(byOther[other], a)
	}
	others := make([]graph.Vertex, 0, len(byOther))
	for o := range byOther {
		others = append(others, o)
	}
	sort.Slice(others, func(i, j int) bool { return others[i] < others[j] })
	groups := make([]neighborGroup, len(others))
	for i, o := range others {
		groups[i] = neighborGroup{other: o, arcs: byOther[o]}
	}
	return groups
}

// lessAll answers one round of independent strict-less questions: a single
// CompareBatch-backed Fed-SAC instance when batching is on, or the same
// comparisons one by one — in the same order — under noBatch. The two modes
// make identical decisions, so builds stay byte-identical across them.
func (x *Index) lessAll(sac *fed.SAC, pairs [][2]fed.Partial) []bool {
	if !x.noBatch {
		return sac.LessBatch(pairs)
	}
	res := make([]bool, len(pairs))
	for i, pr := range pairs {
		res[i] = sac.Less(pr[0], pr[1])
	}
	return res
}

// earliestMinGroups reduces every slate of joint values to the index of its
// earliest minimum. Matches are level-synchronized tournaments: every pair
// of every slate at one level resolves through a single lessAll round, and
// a later entry wins its match only when strictly smaller. Under that rule
// the bracket winner equals the left-to-right fold minimum regardless of
// bracket shape — the identity both the min-arc reduction and the
// lane-synchronous witness search rely on for build determinism.
func (x *Index) earliestMinGroups(sac *fed.SAC, slates [][]fed.Partial) []int {
	idx := make([][]int, len(slates))
	for si, slate := range slates {
		idx[si] = make([]int, len(slate))
		for i := range slate {
			idx[si][i] = i
		}
	}
	for {
		var pairs [][2]fed.Partial
		type matchRef struct{ si, pi int }
		var refs []matchRef
		for si := range idx {
			for pi := 0; pi+1 < len(idx[si]); pi += 2 {
				pairs = append(pairs, [2]fed.Partial{slates[si][idx[si][pi+1]], slates[si][idx[si][pi]]})
				refs = append(refs, matchRef{si, pi})
			}
		}
		if len(pairs) == 0 {
			break
		}
		res := x.lessAll(sac, pairs)
		next := make([][]int, len(idx))
		for si := range idx {
			if len(idx[si]) > 1 {
				next[si] = make([]int, 0, (len(idx[si])+1)/2)
			}
		}
		for mi, r := range refs {
			win := idx[r.si][r.pi]
			if res[mi] {
				win = idx[r.si][r.pi+1]
			}
			next[r.si] = append(next[r.si], win)
		}
		for si := range idx {
			if next[si] == nil {
				continue
			}
			if len(idx[si])%2 == 1 {
				next[si] = append(next[si], idx[si][len(idx[si])-1])
			}
			idx[si] = next[si]
		}
	}
	out := make([]int, len(slates))
	for si := range idx {
		if len(idx[si]) > 0 {
			out[si] = idx[si][0]
		}
	}
	return out
}

// reduceMinArcs reduces every group to its joint-minimum arc (swapped into
// arcs[0]) via earliestMinGroups — the per-level matches of all groups run
// in one batched Fed-SAC instance per level.
func (x *Index) reduceMinArcs(sac *fed.SAC, groups []neighborGroup) {
	slates := make([][]fed.Partial, len(groups))
	for gi, g := range groups {
		slate := make([]fed.Partial, len(g.arcs))
		for i, a := range g.arcs {
			slate[i] = x.Partial(a)
		}
		slates[gi] = slate
	}
	for gi, win := range x.earliestMinGroups(sac, slates) {
		groups[gi].arcs[0] = groups[gi].arcs[win]
	}
}

// addShortcut appends a new shortcut arc composed of two existing overlay
// arcs (tail(ca) → v → head(cb)) and routes it into the hierarchy adjacency.
func (x *Index) addShortcut(v graph.Vertex, ca, cb int32) int32 {
	a := int32(len(x.tail))
	u, w := x.tail[ca], x.head[cb]
	x.tail = append(x.tail, u)
	x.head = append(x.head, w)
	x.via = append(x.via, v)
	x.childA = append(x.childA, ca)
	x.childB = append(x.childB, cb)
	for s := range x.siloW {
		x.siloW[s] = append(x.siloW[s], x.siloW[s][ca]+x.siloW[s][cb])
	}
	x.hs.outAll[u] = append(x.hs.outAll[u], a)
	x.hs.inAll[w] = append(x.hs.inAll[w], a)
	x.hs.viaIndex[v] = append(x.hs.viaIndex[v], a)
	x.hs.parents[ca] = append(x.hs.parents[ca], a)
	x.hs.parents[cb] = append(x.hs.parents[cb], a)
	return a
}

// witLabel is the best hop-bounded reach one witness search knows for a
// vertex, with the parent link that reconstructs the path's arcs.
type witLabel struct {
	part fed.Partial
	par  graph.Vertex
	parc int32
}

// witSearch is the per-source state of the lane-synchronous witness sweep.
type witSearch struct {
	src      graph.Vertex
	labels   map[graph.Vertex]*witLabel
	frontier []graph.Vertex
	budget   int
}

// witnessSearchAll runs all witness searches of one contraction — one per
// minimal in-neighbor, each over the remaining graph excluding v — as a
// single hop-bounded, lane-synchronous Bellman-Ford sweep. Per hop, every
// search expands its whole frontier (in vertex order, spending its
// witnessCap expansion budget deterministically), and the label tournaments
// of ALL touched (search, vertex) slots — the existing label plus every new
// relaxation, in arrival order — resolve together through earliestMinGroups.
// Each tournament level is therefore one wide Fed-SAC batch for the entire
// neighborhood, where the old per-source Dijkstra paid a comparison round
// per heap operation.
//
// Correctness does not need the search to be exhaustive: every label is the
// exact joint cost of a real path from its source (labels only ever
// decrease, and a label's recorded parent chain always costs no more than
// the label itself), so a label strictly below a via cost proves a witness
// exists. Hop and budget truncation only make contraction more conservative
// (extra shortcuts, never a wrong skip). Results are identical across
// worker counts, batching and wire layouts: candidate order is
// deterministic and the earliest-min tournament is bracket-shape
// independent.
func (x *Index) witnessSearchAll(sac *fed.SAC, srcs []graph.Vertex, v graph.Vertex, el eligibility) []map[graph.Vertex]*witLabel {
	searches := make([]*witSearch, len(srcs))
	for si, u := range srcs {
		searches[si] = &witSearch{
			src:      u,
			labels:   map[graph.Vertex]*witLabel{u: {part: x.f.ZeroPartial(), par: graph.NoVertex, parc: -1}},
			frontier: []graph.Vertex{u},
			budget:   x.witnessCap,
		}
	}
	type slotKey struct {
		si int
		z  graph.Vertex
	}
	type relaxCand struct {
		part fed.Partial
		par  graph.Vertex
		parc int32
	}
	for hop := 0; hop < x.witnessHops; hop++ {
		var keys []slotKey
		cands := make(map[slotKey][]relaxCand)
		for si, s := range searches {
			if len(s.frontier) == 0 {
				continue
			}
			sort.Slice(s.frontier, func(i, j int) bool { return s.frontier[i] < s.frontier[j] })
			for _, y := range s.frontier {
				if s.budget <= 0 {
					break
				}
				s.budget--
				yl := s.labels[y]
				for _, a := range x.hs.outAll[y] {
					if !el.arcOK(a) {
						continue
					}
					z := x.head[a]
					if z == v || z == y || z == s.src || !el.vtxOK(z) {
						continue
					}
					np := make(fed.Partial, len(yl.part))
					for sl := range np {
						np[sl] = yl.part[sl] + x.siloW[sl][a]
					}
					key := slotKey{si, z}
					if _, seen := cands[key]; !seen {
						keys = append(keys, key)
					}
					cands[key] = append(cands[key], relaxCand{part: np, par: y, parc: a})
				}
			}
			s.frontier = s.frontier[:0]
		}
		if len(keys) == 0 {
			break
		}
		slates := make([][]fed.Partial, len(keys))
		for ki, key := range keys {
			cs := cands[key]
			slate := make([]fed.Partial, 0, len(cs)+1)
			if lbl := searches[key.si].labels[key.z]; lbl != nil {
				slate = append(slate, lbl.part)
			}
			for _, c := range cs {
				slate = append(slate, c.part)
			}
			slates[ki] = slate
		}
		winners := x.earliestMinGroups(sac, slates)
		for ki, key := range keys {
			s := searches[key.si]
			win := winners[ki]
			if s.labels[key.z] != nil {
				if win == 0 {
					continue // existing label already wins (ties included)
				}
				win--
			}
			c := cands[key][win]
			s.labels[key.z] = &witLabel{part: c.part, par: c.par, parc: c.parc}
			s.frontier = append(s.frontier, key.z)
		}
	}
	out := make([]map[graph.Vertex]*witLabel, len(searches))
	for si, s := range searches {
		out[si] = s.labels
	}
	return out
}

// witPath reconstructs the arcs of the found witness path to w by walking
// the parent chain. The chain is acyclic with positive joint weights (cost
// strictly decreases toward the source); the walk is capped defensively
// regardless.
func witPath(labels map[graph.Vertex]*witLabel, w graph.Vertex) []int32 {
	var arcs []int32
	for y := w; len(arcs) <= len(labels); {
		lbl := labels[y]
		if lbl == nil || lbl.par == graph.NoVertex {
			break
		}
		arcs = append(arcs, lbl.parc)
		y = lbl.par
	}
	return arcs
}
