package ch

import (
	"fmt"
	"time"

	"repro/internal/fed"
	"repro/internal/graph"
)

// skipRec records a shortcut pair that was *not* added because a witness path
// no longer than the via path existed at decision time. The witness's arc set
// is kept so dynamic updates know when the decision must be re-examined.
type skipRec struct {
	u, w        graph.Vertex
	witnessArcs []int32
}

// hierarchyState is the bookkeeping shared by construction and dynamic
// update: the full overlay adjacency and the per-vertex skip records.
type hierarchyState struct {
	outAll   [][]int32 // all overlay arcs per tail
	inAll    [][]int32 // all overlay arcs per head
	skips    [][]skipRec
	viaIndex map[graph.Vertex][]int32 // shortcuts grouped by via vertex
	parents  map[int32][]int32        // child overlay arc -> shortcuts built on it
}

// Params tunes index construction. The zero value gives the paper's setup:
// edge-difference ordering and the default witness-search cap.
type Params struct {
	// Ordering selects the public importance heuristic (default
	// OrderEdgeDiff).
	Ordering Ordering
	// WitnessCap bounds witness-search settles (default DefaultWitnessCap).
	// Smaller caps build faster but add more conservative shortcuts.
	WitnessCap int
}

// Build constructs the federated shortcut index with the default parameters.
func Build(f *fed.Federation) (*Index, error) {
	return BuildWith(f, Params{})
}

// BuildWith constructs the federated shortcut index for a federation
// (Alg. 3): a public ordering pass fixes the contraction order; the
// contraction pass then decides every shortcut on *joint* weights via
// Fed-SAC, so all silos end with identical shortcut sets while each keeps
// only its partial shortcut weights.
func BuildWith(f *fed.Federation, prm Params) (*Index, error) {
	start := time.Now()
	g := f.Graph()
	n := g.NumVertices()
	p := f.P()
	if prm.WitnessCap == 0 {
		prm.WitnessCap = DefaultWitnessCap
	}
	if prm.Ordering == "" {
		prm.Ordering = OrderEdgeDiff
	}

	var order []graph.Vertex
	switch prm.Ordering {
	case OrderEdgeDiff:
		order = computeOrder(g, f.StaticWeights())
	case OrderDegree:
		order = computeOrderDegree(g)
	default:
		return nil, fmt.Errorf("ch: unknown ordering %q", prm.Ordering)
	}

	x := &Index{
		f:          f,
		rank:       make([]int32, n),
		numBase:    g.NumArcs(),
		witnessCap: prm.WitnessCap,
	}
	for v := range x.rank {
		x.rank[v] = -1
	}
	x.hs = &hierarchyState{
		outAll:   make([][]int32, n),
		inAll:    make([][]int32, n),
		skips:    make([][]skipRec, n),
		viaIndex: make(map[graph.Vertex][]int32),
		parents:  make(map[int32][]int32),
	}
	x.siloW = make([][]int64, p)
	for s := 0; s < p; s++ {
		x.siloW[s] = make([]int64, 0, 2*g.NumArcs())
	}
	for a := 0; a < g.NumArcs(); a++ {
		u, w := g.Tail(graph.Arc(a)), g.Head(graph.Arc(a))
		x.tail = append(x.tail, u)
		x.head = append(x.head, w)
		x.via = append(x.via, NoShortcut)
		x.childA = append(x.childA, -1)
		x.childB = append(x.childB, -1)
		for s := 0; s < p; s++ {
			x.siloW[s] = append(x.siloW[s], f.Silo(s).Weight(graph.Arc(a)))
		}
		x.hs.outAll[u] = append(x.hs.outAll[u], int32(a))
		x.hs.inAll[w] = append(x.hs.inAll[w], int32(a))
	}

	sac := f.NewSAC()
	before := f.Engine().Stats()

	for k, v := range order {
		x.contract(sac, v, buildEligibility(x))
		x.rank[v] = int32(k)
		if err := sac.Err(); err != nil {
			return nil, err
		}
	}

	// Route every overlay arc into the query-time up/down lists.
	x.upOut = make([][]int32, n)
	x.downIn = make([][]int32, n)
	for a := int32(0); a < int32(len(x.tail)); a++ {
		x.addArcToQueryLists(a)
	}

	x.buildStats = BuildStats{
		Shortcuts: x.NumShortcuts(),
		SAC:       f.Engine().Stats().Sub(before),
		WallTime:  time.Since(start),
	}
	return x, nil
}

// eligibility tells the contraction machinery which overlay arcs and
// vertices exist in the remaining graph at the current step.
type eligibility struct {
	arcOK func(a int32) bool
	vtxOK func(v graph.Vertex) bool
}

// buildEligibility: during initial construction a vertex is present until it
// has been assigned a rank, and every overlay arc created so far is present.
func buildEligibility(x *Index) eligibility {
	return eligibility{
		arcOK: func(int32) bool { return true },
		vtxOK: func(v graph.Vertex) bool { return x.rank[v] < 0 },
	}
}

// updateEligibility reconstructs the remaining graph at contraction step k:
// vertices with rank > k, and arcs that existed before step k (base arcs or
// shortcuts whose via vertex was contracted earlier).
func updateEligibility(x *Index, k int32) eligibility {
	return eligibility{
		arcOK: func(a int32) bool {
			return x.via[a] == NoShortcut || x.rank[x.via[a]] < k
		},
		vtxOK: func(v graph.Vertex) bool { return x.rank[v] > k },
	}
}

// contract runs the (re-)contraction of v: for every in-neighbor u and
// out-neighbor w present in the remaining graph, compare the joint via cost
// against a federated witness search and add the shortcut when the via path
// wins. Decisions already materialized (an existing shortcut with via v) are
// refreshed rather than duplicated. Returns the IDs of newly added shortcut
// arcs.
func (x *Index) contract(sac *fed.SAC, v graph.Vertex, el eligibility) []int32 {
	p := x.f.P()
	minIn := x.minArcPerNeighbor(sac, x.hs.inAll[v], true, v, el)
	minOut := x.minArcPerNeighbor(sac, x.hs.outAll[v], false, v, el)
	if len(minIn) == 0 || len(minOut) == 0 {
		x.hs.skips[v] = nil
		return nil
	}
	existing := make(map[[2]graph.Vertex]int32)
	for _, a := range x.hs.viaIndex[v] {
		existing[[2]graph.Vertex{x.tail[a], x.head[a]}] = a
	}

	var added []int32
	var skips []skipRec
	for u, arcUV := range minIn {
		targets := make(map[graph.Vertex]fed.Partial)
		viaArcs := make(map[graph.Vertex][2]int32)
		for w, arcVW := range minOut {
			if w == u {
				continue
			}
			via := make(fed.Partial, p)
			for s := 0; s < p; s++ {
				via[s] = x.siloW[s][arcUV] + x.siloW[s][arcVW]
			}
			targets[w] = via
			viaArcs[w] = [2]int32{arcUV, arcVW}
		}
		if len(targets) == 0 {
			continue
		}
		dists, witArcs := x.witnessSearch(sac, u, v, targets, el)
		for w, via := range targets {
			needShortcut := true
			if d, ok := dists[w]; ok {
				// Shortest u→w path runs through v only if via is strictly
				// shorter than the best path avoiding v.
				needShortcut = sac.Less(via, d)
			}
			if needShortcut {
				ca, cb := viaArcs[w][0], viaArcs[w][1]
				if a, ok := existing[[2]graph.Vertex{u, w}]; ok {
					if x.childA[a] != ca || x.childB[a] != cb {
						x.childA[a], x.childB[a] = ca, cb
						x.hs.parents[ca] = append(x.hs.parents[ca], a)
						x.hs.parents[cb] = append(x.hs.parents[cb], a)
					}
					for s := 0; s < p; s++ {
						x.siloW[s][a] = via[s]
					}
				} else {
					added = append(added, x.addShortcut(v, ca, cb))
				}
			} else {
				skips = append(skips, skipRec{u: u, w: w, witnessArcs: witArcs[w]})
			}
		}
	}
	x.hs.skips[v] = skips
	return added
}

// minArcPerNeighbor reduces parallel arcs between v and each neighbor to the
// joint-minimum arc, using one Fed-SAC per extra parallel.
func (x *Index) minArcPerNeighbor(sac *fed.SAC, arcs []int32, incoming bool, v graph.Vertex, el eligibility) map[graph.Vertex]int32 {
	best := make(map[graph.Vertex]int32)
	for _, a := range arcs {
		if !el.arcOK(a) {
			continue
		}
		other := x.head[a]
		if incoming {
			other = x.tail[a]
		}
		if other == v || !el.vtxOK(other) {
			continue
		}
		if cur, ok := best[other]; !ok || sac.Less(x.Partial(a), x.Partial(cur)) {
			best[other] = a
		}
	}
	return best
}

// addShortcut appends a new shortcut arc composed of two existing overlay
// arcs (tail(ca) → v → head(cb)) and routes it into the hierarchy adjacency.
func (x *Index) addShortcut(v graph.Vertex, ca, cb int32) int32 {
	a := int32(len(x.tail))
	u, w := x.tail[ca], x.head[cb]
	x.tail = append(x.tail, u)
	x.head = append(x.head, w)
	x.via = append(x.via, v)
	x.childA = append(x.childA, ca)
	x.childB = append(x.childB, cb)
	for s := range x.siloW {
		x.siloW[s] = append(x.siloW[s], x.siloW[s][ca]+x.siloW[s][cb])
	}
	x.hs.outAll[u] = append(x.hs.outAll[u], a)
	x.hs.inAll[w] = append(x.hs.inAll[w], a)
	x.hs.viaIndex[v] = append(x.hs.viaIndex[v], a)
	x.hs.parents[ca] = append(x.hs.parents[ca], a)
	x.hs.parents[cb] = append(x.hs.parents[cb], a)
	return a
}

// witItem is one frontier entry of a federated witness search.
type witItem struct {
	vtx  graph.Vertex
	part fed.Partial
	par  graph.Vertex
	parc int32
}

// witHeap is a binary min-heap over witItems ordered by Fed-SAC.
type witHeap struct {
	sac   *fed.SAC
	items []witItem
}

func (h *witHeap) Len() int { return len(h.items) }

func (h *witHeap) push(it witItem) {
	h.items = append(h.items, it)
	i := len(h.items) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !h.sac.Less(h.items[i].part, h.items[p].part) {
			break
		}
		h.items[p], h.items[i] = h.items[i], h.items[p]
		i = p
	}
}

func (h *witHeap) pop() witItem {
	top := h.items[0]
	n := len(h.items) - 1
	h.items[0] = h.items[n]
	h.items = h.items[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		s := i
		if l < n && h.sac.Less(h.items[l].part, h.items[s].part) {
			s = l
		}
		if r < n && h.sac.Less(h.items[r].part, h.items[s].part) {
			s = r
		}
		if s == i {
			break
		}
		h.items[s], h.items[i] = h.items[i], h.items[s]
		i = s
	}
	return top
}

// witnessSearch runs a capped federated Dijkstra from u over the remaining
// graph (excluding v), with every comparison through Fed-SAC. It returns the
// settled partial distances and, per settled target, the arcs of the found
// witness path (for skip records).
func (x *Index) witnessSearch(sac *fed.SAC, u, v graph.Vertex, targets map[graph.Vertex]fed.Partial, el eligibility) (map[graph.Vertex]fed.Partial, map[graph.Vertex][]int32) {
	h := &witHeap{sac: sac}
	h.push(witItem{vtx: u, part: x.f.ZeroPartial(), par: graph.NoVertex, parc: -1})
	settled := make(map[graph.Vertex]fed.Partial)
	parent := make(map[graph.Vertex]graph.Vertex)
	parArc := make(map[graph.Vertex]int32)
	found, settles := 0, 0
	for h.Len() > 0 && settles < x.witnessCap && found < len(targets) {
		it := h.pop()
		if _, done := settled[it.vtx]; done {
			continue
		}
		settled[it.vtx] = it.part
		parent[it.vtx] = it.par
		parArc[it.vtx] = it.parc
		settles++
		if _, isT := targets[it.vtx]; isT {
			found++
		}
		for _, a := range x.hs.outAll[it.vtx] {
			if !el.arcOK(a) {
				continue
			}
			z := x.head[a]
			if z == v || z == it.vtx || !el.vtxOK(z) {
				continue
			}
			if _, done := settled[z]; done {
				continue
			}
			np := make(fed.Partial, len(it.part))
			for s := range np {
				np[s] = it.part[s] + x.siloW[s][a]
			}
			h.push(witItem{vtx: z, part: np, par: it.vtx, parc: a})
		}
	}
	witArcs := make(map[graph.Vertex][]int32)
	for w := range targets {
		if _, ok := settled[w]; !ok {
			continue
		}
		var arcs []int32
		for y := w; parent[y] != graph.NoVertex; y = parent[y] {
			arcs = append(arcs, parArc[y])
		}
		witArcs[w] = arcs
	}
	return settled, witArcs
}
