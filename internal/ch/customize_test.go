package ch

import (
	"bytes"
	"math/rand/v2"
	"testing"

	"repro/internal/fed"
	"repro/internal/graph"
	"repro/internal/mpc"
	"repro/internal/traffic"
)

func customizeFederation(t *testing.T, g *graph.Graph, w0 graph.Weights, seed uint64) *fed.Federation {
	t.Helper()
	sets := traffic.SiloWeights(w0, 3, traffic.Moderate, seed)
	f, err := fed.New(g, w0, sets, mpc.Params{Mode: mpc.ModeIdeal, Seed: seed + 1})
	if err != nil {
		t.Fatal(err)
	}
	return f
}

// jiggleWeights re-samples the silo weights of a random arc subset,
// returning the changed arcs.
func jiggleWeights(f *fed.Federation, rng *rand.Rand, frac float64) []graph.Arc {
	g := f.Graph()
	num := int(frac * float64(g.NumArcs()))
	if num < 1 {
		num = 1
	}
	changed := make([]graph.Arc, 0, num)
	for _, ai := range rng.Perm(g.NumArcs())[:num] {
		a := graph.Arc(ai)
		changed = append(changed, a)
		for p := 0; p < f.P(); p++ {
			factor := 0.6 + rng.Float64()*1.8
			nw := int64(float64(f.StaticWeights()[a]) * factor)
			if nw < 1 {
				nw = 1
			}
			f.Silo(p).SetWeight(a, nw)
		}
	}
	return changed
}

func checkExactDistances(t *testing.T, f *fed.Federation, x *Index, trials int, seed uint64, tag string) {
	t.Helper()
	g := f.Graph()
	joint := f.JointWeights()
	rng := rand.New(rand.NewPCG(seed, seed))
	for trial := 0; trial < trials; trial++ {
		s := graph.Vertex(rng.IntN(g.NumVertices()))
		tt := graph.Vertex(rng.IntN(g.NumVertices()))
		want, _ := graph.DijkstraTo(g, joint, s, tt)
		if got := chQueryJoint(x, s, tt); got != want {
			t.Fatalf("%s: trial %d: dist(%d,%d) = %d, want %d", tag, trial, s, tt, got, want)
		}
	}
}

func TestCustomizeMatchesDijkstra(t *testing.T) {
	g, w0 := graph.GenerateGrid(9, 9, 51)
	f := customizeFederation(t, g, w0, 52)
	sk, err := BuildSkeleton(g, w0, Params{})
	if err != nil {
		t.Fatal(err)
	}
	if sk.NumShortcuts() == 0 {
		t.Fatal("skeleton has no shortcuts")
	}
	x, err := Customize(f, sk)
	if err != nil {
		t.Fatal(err)
	}
	if !x.Customized() || x.Skeleton() != sk {
		t.Fatal("customized index does not report its skeleton")
	}
	st := x.BuildStatistics()
	if !st.Customized || st.Levels <= 0 {
		t.Fatalf("customize stats not populated: %+v", st)
	}
	checkExactDistances(t, f, x, 60, 53, "grid customize")
	checkShortcutInvariants(t, f, x)
}

func TestCustomizeOnRoadLikeNetwork(t *testing.T) {
	g, w0 := graph.GenerateRoadLike(350, 55)
	f := customizeFederation(t, g, w0, 56)
	sk, err := BuildSkeleton(g, w0, Params{})
	if err != nil {
		t.Fatal(err)
	}
	x, err := Customize(f, sk)
	if err != nil {
		t.Fatal(err)
	}
	checkExactDistances(t, f, x, 40, 57, "roadlike customize")
	checkShortcutInvariants(t, f, x)
}

func TestCustomizeDegreeOrdering(t *testing.T) {
	g, w0 := graph.GenerateGrid(7, 7, 58)
	f := customizeFederation(t, g, w0, 59)
	sk, err := BuildSkeleton(g, w0, Params{Ordering: OrderDegree})
	if err != nil {
		t.Fatal(err)
	}
	x, err := Customize(f, sk)
	if err != nil {
		t.Fatal(err)
	}
	checkExactDistances(t, f, x, 40, 60, "degree customize")
}

func TestBuildSkeletonRejectsUnknownOrdering(t *testing.T) {
	g, w0 := graph.GenerateGrid(4, 4, 61)
	if _, err := BuildSkeleton(g, w0, Params{Ordering: Ordering("bogus")}); err == nil {
		t.Fatal("unknown ordering accepted")
	}
}

// TestCustomizeDeterministicAcrossWorkersAndBatching: the customized index
// must be identical — winners, children, every partial weight — for every
// worker count and batching mode.
func TestCustomizeDeterministicAcrossWorkersAndBatching(t *testing.T) {
	g, w0 := graph.GenerateGrid(8, 8, 62)
	sk, err := BuildSkeleton(g, w0, Params{})
	if err != nil {
		t.Fatal(err)
	}
	variants := []Params{
		{Workers: 1},
		{Workers: 4},
		{Workers: 3, NoBatch: true},
	}
	var ref *Index
	for vi, prm := range variants {
		f := customizeFederation(t, g, w0, 63) // same seed -> same silo weights
		x, err := CustomizeWith(f, sk, prm)
		if err != nil {
			t.Fatal(err)
		}
		if vi == 0 {
			ref = x
			continue
		}
		if len(x.childA) != len(ref.childA) {
			t.Fatalf("variant %d: arc count differs", vi)
		}
		for a := range x.childA {
			if x.childA[a] != ref.childA[a] || x.childB[a] != ref.childB[a] {
				t.Fatalf("variant %d: children of arc %d differ", vi, a)
			}
		}
		for p := range x.siloW {
			for a := range x.siloW[p] {
				if x.siloW[p][a] != ref.siloW[p][a] {
					t.Fatalf("variant %d: silo %d weight of arc %d differs", vi, p, a)
				}
			}
		}
		for gi := range x.custWinner {
			if x.custWinner[gi] != ref.custWinner[gi] {
				t.Fatalf("variant %d: winner of group %d differs", vi, gi)
			}
		}
	}
}

// TestCustomizeAgreesWithFullBuild: distances through a customized index and
// through a from-scratch witness-pruned build at the same weights must be
// byte-identical.
func TestCustomizeAgreesWithFullBuild(t *testing.T) {
	g, w0 := graph.GenerateGrid(8, 8, 64)
	f := customizeFederation(t, g, w0, 65)
	sk, err := BuildSkeleton(g, w0, Params{})
	if err != nil {
		t.Fatal(err)
	}
	cust, err := Customize(f, sk)
	if err != nil {
		t.Fatal(err)
	}
	f2 := customizeFederation(t, g, w0, 65)
	built, err := Build(f2)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(66, 66))
	for trial := 0; trial < 80; trial++ {
		s := graph.Vertex(rng.IntN(g.NumVertices()))
		tt := graph.Vertex(rng.IntN(g.NumVertices()))
		if a, b := chQueryJoint(cust, s, tt), chQueryJoint(built, s, tt); a != b {
			t.Fatalf("dist(%d,%d): customized %d != built %d", s, tt, a, b)
		}
	}
}

// TestCustomizeRoundFrugality: re-customizing after a traffic change must
// cost well under a quarter of the full build's MPC rounds — the whole point
// of the topology/weight split (benchgate enforces the same bound on CAL-S).
func TestCustomizeRoundFrugality(t *testing.T) {
	g, w0 := graph.GenerateGrid(10, 10, 67)
	f := customizeFederation(t, g, w0, 68)
	built, err := Build(f)
	if err != nil {
		t.Fatal(err)
	}
	buildRounds := built.BuildStatistics().SAC.Rounds
	sk, err := BuildSkeleton(g, w0, Params{})
	if err != nil {
		t.Fatal(err)
	}
	f2 := customizeFederation(t, g, w0, 68)
	cust, err := Customize(f2, sk)
	if err != nil {
		t.Fatal(err)
	}
	custRounds := cust.BuildStatistics().SAC.Rounds
	if custRounds <= 0 {
		t.Fatal("customization used no MPC rounds")
	}
	if 4*custRounds >= buildRounds {
		t.Fatalf("customize rounds %d not under 25%% of build rounds %d", custRounds, buildRounds)
	}
}

// TestCustomizedUpdateInPlace: dynamic updates on a customized index refresh
// weight slots in place — the overlay never grows, children always compose,
// and queries stay exact across many rounds of churn.
func TestCustomizedUpdateInPlace(t *testing.T) {
	g, w0 := graph.GenerateGrid(9, 9, 69)
	f := customizeFederation(t, g, w0, 70)
	sk, err := BuildSkeleton(g, w0, Params{})
	if err != nil {
		t.Fatal(err)
	}
	x, err := Customize(f, sk)
	if err != nil {
		t.Fatal(err)
	}
	arcsBefore := x.NumArcs()
	rng := rand.New(rand.NewPCG(71, 71))
	for round := 0; round < 6; round++ {
		changed := jiggleWeights(f, rng, 0.12)
		st, err := x.Update(changed)
		if err != nil {
			t.Fatal(err)
		}
		if st.AddedShortcuts != 0 {
			t.Fatalf("round %d: customized update added %d shortcuts", round, st.AddedShortcuts)
		}
		if x.NumArcs() != arcsBefore {
			t.Fatalf("round %d: overlay grew from %d to %d arcs", round, arcsBefore, x.NumArcs())
		}
		checkExactDistances(t, f, x, 30, 72+uint64(round), "customized update")
		checkShortcutInvariants(t, f, x)
	}
}

func TestCustomizedUpdateNoChangesIsFree(t *testing.T) {
	g, w0 := graph.GenerateGrid(6, 6, 73)
	f := customizeFederation(t, g, w0, 74)
	sk, err := BuildSkeleton(g, w0, Params{})
	if err != nil {
		t.Fatal(err)
	}
	x, err := Customize(f, sk)
	if err != nil {
		t.Fatal(err)
	}
	st, err := x.Update(nil)
	if err != nil {
		t.Fatal(err)
	}
	if st.RecomputedShortcuts != 0 || st.ReverifiedVertices != 0 || st.SAC.Compares != 0 {
		t.Fatalf("no-op customized update did work: %+v", st)
	}
}

// TestSkeletonRoundTrip: FRSK serialization preserves the skeleton exactly,
// and a customization over the reloaded skeleton matches one over the
// original.
func TestSkeletonRoundTrip(t *testing.T) {
	g, w0 := graph.GenerateGrid(7, 8, 75)
	sk, err := BuildSkeleton(g, w0, Params{})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := sk.Write(&buf); err != nil {
		t.Fatal(err)
	}
	sk2, err := ReadSkeleton(g, bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if sk2.NumArcs() != sk.NumArcs() || sk2.NumShortcuts() != sk.NumShortcuts() {
		t.Fatalf("round trip changed shape: %d/%d vs %d/%d",
			sk2.NumArcs(), sk2.NumShortcuts(), sk.NumArcs(), sk.NumShortcuts())
	}
	for a := range sk.tail {
		if sk.tail[a] != sk2.tail[a] || sk.head[a] != sk2.head[a] || sk.via[a] != sk2.via[a] {
			t.Fatalf("round trip changed arc %d", a)
		}
	}
	f := customizeFederation(t, g, w0, 76)
	x, err := Customize(f, sk2)
	if err != nil {
		t.Fatal(err)
	}
	checkExactDistances(t, f, x, 40, 77, "reloaded skeleton")
}

// TestReadSkeletonRejectsCorruption: structural corruptions must fail
// validation, never load.
func TestReadSkeletonRejectsCorruption(t *testing.T) {
	g, w0 := graph.GenerateGrid(5, 5, 78)
	sk, err := BuildSkeleton(g, w0, Params{})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := sk.Write(&buf); err != nil {
		t.Fatal(err)
	}
	valid := buf.Bytes()
	if _, err := ReadSkeleton(g, bytes.NewReader(valid)); err != nil {
		t.Fatalf("pristine skeleton rejected: %v", err)
	}
	// Truncations at every section boundary and a few odd offsets.
	for _, cut := range []int{0, 3, 4, 8, 19, len(valid) / 2, len(valid) - 1} {
		if cut >= len(valid) {
			continue
		}
		if _, err := ReadSkeleton(g, bytes.NewReader(valid[:cut])); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
	// Single-word corruptions across the stream: every mutation must either
	// be rejected or (never) silently load a different topology.
	rng := rand.New(rand.NewPCG(79, 79))
	for trial := 0; trial < 200; trial++ {
		mut := append([]byte(nil), valid...)
		off := 4 * rng.IntN(len(valid)/4)
		mut[off] ^= byte(1 << rng.IntN(8))
		sk2, err := ReadSkeleton(g, bytes.NewReader(mut))
		if err != nil {
			continue
		}
		// The corrupted word may be benign only if the decoded topology is
		// identical (e.g. flipping an ignored high bit is impossible here,
		// so require full equality).
		if sk2.NumArcs() != sk.NumArcs() {
			t.Fatalf("corruption at %d loaded with different shape", off)
		}
		same := true
		for a := range sk.tail {
			if sk.tail[a] != sk2.tail[a] || sk.head[a] != sk2.head[a] || sk.via[a] != sk2.via[a] {
				same = false
				break
			}
		}
		for v := range sk.rank {
			if sk.rank[v] != sk2.rank[v] {
				same = false
				break
			}
		}
		if !same {
			t.Fatalf("corruption at %d silently loaded a different skeleton", off)
		}
	}
}

// TestBundleRoundTripCustomized: a WriteIndex/ReadIndex cycle preserves the
// customized index including its skeleton, and in-place updates keep working
// after reload (the winner table is rebuilt lazily).
func TestBundleRoundTripCustomized(t *testing.T) {
	g, w0 := graph.GenerateGrid(8, 7, 80)
	f := customizeFederation(t, g, w0, 81)
	sk, err := BuildSkeleton(g, w0, Params{})
	if err != nil {
		t.Fatal(err)
	}
	x, err := Customize(f, sk)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := x.WriteIndex(&buf); err != nil {
		t.Fatal(err)
	}
	x2, err := ReadIndex(f, bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !x2.Customized() {
		t.Fatal("reloaded bundle lost its skeleton")
	}
	arcsBefore := x2.NumArcs()
	rng := rand.New(rand.NewPCG(82, 82))
	for round := 0; round < 3; round++ {
		changed := jiggleWeights(f, rng, 0.1)
		st, err := x2.Update(changed)
		if err != nil {
			t.Fatal(err)
		}
		if st.AddedShortcuts != 0 || x2.NumArcs() != arcsBefore {
			t.Fatalf("round %d: reloaded customized index grew", round)
		}
		checkExactDistances(t, f, x2, 25, 83+uint64(round), "reloaded customized update")
	}
}

// TestBundleV1StillLoads: a version-1 bundle (pre-skeleton) must keep
// loading.
func TestBundleV1StillLoads(t *testing.T) {
	f, x := buildTestIndex(t, 5, 5, 84)
	var buf bytes.Buffer
	if err := x.WriteIndex(&buf); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	if b[4] != bundleVersion {
		t.Fatalf("bundle version byte = %d", b[4])
	}
	// Rewrite the header version to 1 and drop the trailing skeleton flag
	// (a witness-built index writes hasSkeleton=0, i.e. 4 trailing bytes).
	b[4] = 1
	v1 := b[:len(b)-4]
	x2, err := ReadIndex(f, bytes.NewReader(v1))
	if err != nil {
		t.Fatalf("v1 bundle rejected: %v", err)
	}
	if x2.Customized() {
		t.Fatal("v1 bundle claims a skeleton")
	}
	if x2.NumShortcuts() != x.NumShortcuts() {
		t.Fatal("v1 bundle shape mismatch")
	}
}
