package ch

import (
	"bytes"
	"io"
	"math/rand/v2"
	"testing"

	"repro/internal/graph"
)

func TestIndexSerializationRoundTrip(t *testing.T) {
	f, x := buildTestIndex(t, 8, 8, 61)

	var public bytes.Buffer
	if err := x.WritePublic(&public); err != nil {
		t.Fatal(err)
	}
	shards := make([]bytes.Buffer, f.P())
	for p := 0; p < f.P(); p++ {
		if err := x.WriteSiloWeights(p, &shards[p]); err != nil {
			t.Fatal(err)
		}
	}
	readers := make([]io.Reader, f.P())
	for p := range readers {
		readers[p] = &shards[p]
	}
	loaded, err := LoadIndex(f, &public, readers)
	if err != nil {
		t.Fatal(err)
	}

	if loaded.NumArcs() != x.NumArcs() || loaded.NumShortcuts() != x.NumShortcuts() {
		t.Fatalf("size mismatch after reload: %d/%d arcs, %d/%d shortcuts",
			loaded.NumArcs(), x.NumArcs(), loaded.NumShortcuts(), x.NumShortcuts())
	}
	for a := int32(0); a < int32(x.NumArcs()); a++ {
		if x.Tail(a) != loaded.Tail(a) || x.Head(a) != loaded.Head(a) || x.Via(a) != loaded.Via(a) {
			t.Fatalf("arc %d structure changed", a)
		}
		for p := 0; p < f.P(); p++ {
			if x.SiloWeight(p, a) != loaded.SiloWeight(p, a) {
				t.Fatalf("arc %d silo %d weight changed", a, p)
			}
		}
	}
	for v := graph.Vertex(0); int(v) < f.Graph().NumVertices(); v++ {
		if x.Rank(v) != loaded.Rank(v) {
			t.Fatalf("rank of %d changed", v)
		}
	}

	// Queries on the reloaded index stay exact.
	joint := f.JointWeights()
	rng := rand.New(rand.NewPCG(2, 2))
	for trial := 0; trial < 30; trial++ {
		s := graph.Vertex(rng.IntN(f.Graph().NumVertices()))
		tt := graph.Vertex(rng.IntN(f.Graph().NumVertices()))
		want, _ := graph.DijkstraTo(f.Graph(), joint, s, tt)
		if got := chQueryJoint(loaded, s, tt); got != want {
			t.Fatalf("reloaded index: dist(%d,%d) = %d, want %d", s, tt, got, want)
		}
	}
}

func TestReloadedIndexSupportsUpdates(t *testing.T) {
	f, x := buildTestIndex(t, 7, 7, 67)
	var public bytes.Buffer
	if err := x.WritePublic(&public); err != nil {
		t.Fatal(err)
	}
	shards := make([]io.Reader, f.P())
	for p := 0; p < f.P(); p++ {
		var b bytes.Buffer
		if err := x.WriteSiloWeights(p, &b); err != nil {
			t.Fatal(err)
		}
		shards[p] = &b
	}
	loaded, err := LoadIndex(f, &public, shards)
	if err != nil {
		t.Fatal(err)
	}

	// Dynamic update on the reloaded index: change weights, update, verify.
	g := f.Graph()
	rng := rand.New(rand.NewPCG(3, 3))
	var changed []graph.Arc
	for _, ai := range rng.Perm(g.NumArcs())[:g.NumArcs()/10] {
		a := graph.Arc(ai)
		changed = append(changed, a)
		for p := 0; p < f.P(); p++ {
			f.Silo(p).SetWeight(a, f.StaticWeights()[a]+int64(rng.IntN(20000))+1)
		}
	}
	if _, err := loaded.Update(changed); err != nil {
		t.Fatal(err)
	}
	joint := f.JointWeights()
	for trial := 0; trial < 25; trial++ {
		s := graph.Vertex(rng.IntN(g.NumVertices()))
		tt := graph.Vertex(rng.IntN(g.NumVertices()))
		want, _ := graph.DijkstraTo(g, joint, s, tt)
		if got := chQueryJoint(loaded, s, tt); got != want {
			t.Fatalf("post-update reloaded index: dist(%d,%d) = %d, want %d", s, tt, got, want)
		}
	}
}

func TestLoadIndexRejectsCorruptInput(t *testing.T) {
	f, x := buildTestIndex(t, 6, 6, 71)
	var public bytes.Buffer
	if err := x.WritePublic(&public); err != nil {
		t.Fatal(err)
	}
	goodPublic := public.Bytes()

	shard := func(p int) []byte {
		var b bytes.Buffer
		if err := x.WriteSiloWeights(p, &b); err != nil {
			t.Fatal(err)
		}
		return b.Bytes()
	}
	goodShards := [][]byte{shard(0), shard(1), shard(2)}
	load := func(pub []byte, sh [][]byte) error {
		rs := make([]io.Reader, len(sh))
		for i := range sh {
			rs[i] = bytes.NewReader(sh[i])
		}
		_, err := LoadIndex(f, bytes.NewReader(pub), rs)
		return err
	}

	if err := load(goodPublic, goodShards); err != nil {
		t.Fatalf("good input rejected: %v", err)
	}
	if err := load(goodPublic[:8], goodShards); err == nil {
		t.Fatal("truncated public part accepted")
	}
	bad := append([]byte{}, goodPublic...)
	bad[0] ^= 0xff // corrupt magic
	if err := load(bad, goodShards); err == nil {
		t.Fatal("corrupt magic accepted")
	}
	if err := load(goodPublic, [][]byte{goodShards[0], goodShards[1]}); err == nil {
		t.Fatal("missing shard accepted")
	}
	// Shards in the wrong order carry the wrong silo IDs.
	if err := load(goodPublic, [][]byte{goodShards[1], goodShards[0], goodShards[2]}); err == nil {
		t.Fatal("swapped shards accepted")
	}
	if err := load(goodPublic, [][]byte{goodShards[0], goodShards[1], goodShards[2][:10]}); err == nil {
		t.Fatal("truncated shard accepted")
	}
}

func TestIndexBundleRoundTrip(t *testing.T) {
	f, x := buildTestIndex(t, 8, 8, 79)
	var bundle bytes.Buffer
	if err := x.WriteIndex(&bundle); err != nil {
		t.Fatal(err)
	}
	loaded, err := ReadIndex(f, &bundle)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.NumArcs() != x.NumArcs() || loaded.NumShortcuts() != x.NumShortcuts() {
		t.Fatalf("size mismatch after bundle reload: %d/%d arcs, %d/%d shortcuts",
			loaded.NumArcs(), x.NumArcs(), loaded.NumShortcuts(), x.NumShortcuts())
	}
	for a := int32(0); a < int32(x.NumArcs()); a++ {
		if x.Tail(a) != loaded.Tail(a) || x.Head(a) != loaded.Head(a) || x.Via(a) != loaded.Via(a) {
			t.Fatalf("arc %d structure changed", a)
		}
		for p := 0; p < f.P(); p++ {
			if x.SiloWeight(p, a) != loaded.SiloWeight(p, a) {
				t.Fatalf("arc %d silo %d weight changed", a, p)
			}
		}
	}
	joint := f.JointWeights()
	rng := rand.New(rand.NewPCG(5, 5))
	for trial := 0; trial < 30; trial++ {
		s := graph.Vertex(rng.IntN(f.Graph().NumVertices()))
		tt := graph.Vertex(rng.IntN(f.Graph().NumVertices()))
		want, _ := graph.DijkstraTo(f.Graph(), joint, s, tt)
		if got := chQueryJoint(loaded, s, tt); got != want {
			t.Fatalf("bundle-reloaded index: dist(%d,%d) = %d, want %d", s, tt, got, want)
		}
	}
}

func TestReadIndexRejectsCorruptBundle(t *testing.T) {
	f, x := buildTestIndex(t, 6, 6, 83)
	var bundle bytes.Buffer
	if err := x.WriteIndex(&bundle); err != nil {
		t.Fatal(err)
	}
	good := bundle.Bytes()

	if _, err := ReadIndex(f, bytes.NewReader(good)); err != nil {
		t.Fatalf("good bundle rejected: %v", err)
	}
	if _, err := ReadIndex(f, bytes.NewReader(nil)); err == nil {
		t.Fatal("empty bundle accepted")
	}
	bad := append([]byte{}, good...)
	bad[0] ^= 0xff
	if _, err := ReadIndex(f, bytes.NewReader(bad)); err == nil {
		t.Fatal("corrupt magic accepted")
	}
	for _, frac := range []int{4, 2, 1} { // truncations at various depths
		cut := len(good) * (frac - 1) / frac
		if cut >= len(good) {
			cut = len(good) - 1
		}
		if _, err := ReadIndex(f, bytes.NewReader(good[:cut])); err == nil {
			t.Fatalf("bundle truncated to %d/%d bytes accepted", cut, len(good))
		}
	}
	// A lying section length on a truncated stream must error, not allocate.
	lying := append([]byte{}, good[:12]...)
	lying = append(lying, []byte{0xff, 0xff, 0xff, 0x7f, 0, 0, 0, 0}...) // section "length" 2^31-1
	if _, err := ReadIndex(f, bytes.NewReader(lying)); err == nil {
		t.Fatal("lying section length accepted")
	}
}

func TestWriteSiloWeightsRange(t *testing.T) {
	_, x := buildTestIndex(t, 5, 5, 73)
	var b bytes.Buffer
	if err := x.WriteSiloWeights(99, &b); err == nil {
		t.Fatal("out-of-range silo accepted")
	}
}
