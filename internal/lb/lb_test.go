package lb

import (
	"math/rand/v2"
	"testing"

	"repro/internal/fed"
	"repro/internal/graph"
	"repro/internal/mpc"
	"repro/internal/traffic"
)

func testFed(t *testing.T, lvl traffic.Level, seed uint64) *fed.Federation {
	t.Helper()
	g, w0 := graph.GenerateGrid(14, 14, seed)
	sets := traffic.SiloWeights(w0, 3, lvl, seed+1)
	f, err := fed.New(g, w0, sets, mpc.Params{Mode: mpc.ModeIdeal, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func jointSum(p fed.Partial) int64 {
	var s int64
	for _, v := range p {
		s += v
	}
	return s
}

func TestSelectLandmarksBasics(t *testing.T) {
	g, w0 := graph.GenerateGrid(10, 10, 3)
	L := SelectLandmarks(g, w0, 8, 5)
	if len(L) != 8 {
		t.Fatalf("got %d landmarks", len(L))
	}
	seen := map[graph.Vertex]bool{}
	for _, l := range L {
		if seen[l] {
			t.Fatalf("duplicate landmark %d", l)
		}
		seen[l] = true
	}
	L2 := SelectLandmarks(g, w0, 8, 5)
	for i := range L {
		if L[i] != L2[i] {
			t.Fatal("landmark selection not deterministic")
		}
	}
}

func TestPrecomputePartialSumsMatchJoint(t *testing.T) {
	f := testFed(t, traffic.Moderate, 7)
	g := f.Graph()
	L := SelectLandmarks(g, f.StaticWeights(), 4, 2)
	lm := PrecomputeLandmarks(f, L, 0)
	joint := f.JointWeights()
	for li, l := range L {
		want := graph.DijkstraBackward(g, joint, l)
		for v := 0; v < g.NumVertices(); v++ {
			var sum int64
			for p := 0; p < f.P(); p++ {
				sum += lm.Phi[p][li][v]
			}
			if want.Dist[v] >= graph.InfCost {
				continue
			}
			if sum != want.Dist[v] {
				t.Fatalf("landmark %d vertex %d: partial sum %d != joint dist %d",
					l, v, sum, want.Dist[v])
			}
		}
		// Static matrix matches a plain backward Dijkstra under W0.
		want0 := graph.DijkstraBackward(g, f.StaticWeights(), l)
		for v := 0; v < g.NumVertices(); v++ {
			if lm.Phi0[li][v] != want0.Dist[v] {
				t.Fatalf("static matrix wrong at landmark %d vertex %d", l, v)
			}
		}
	}
}

// admissible checks that for random pairs the estimator's joint bound never
// exceeds the true joint distance, in both search directions.
func admissible(t *testing.T, kind Kind, lvl traffic.Level) (meanRelErr float64) {
	t.Helper()
	f := testFed(t, lvl, 11)
	g := f.Graph()
	joint := f.JointWeights()
	var lm *Landmarks
	if kind == FedALT || kind == FedALTMax {
		lm = PrecomputeLandmarks(f, SelectLandmarks(g, f.StaticWeights(), 8, 3), 0)
	}
	rng := rand.New(rand.NewPCG(13, 13))
	var errSum float64
	var count int
	for trial := 0; trial < 40; trial++ {
		s := graph.Vertex(rng.IntN(g.NumVertices()))
		tt := graph.Vertex(rng.IntN(g.NumVertices()))
		if s == tt {
			continue
		}
		sac := f.NewSAC()
		fw, bw, err := NewPair(kind, f, lm, sac, s, tt)
		if err != nil {
			t.Fatal(err)
		}
		trueDist, _ := graph.DijkstraTo(g, joint, s, tt)
		if trueDist >= graph.InfCost {
			continue
		}
		// Forward potential at several vertices v bounds dist(v→t).
		for probe := 0; probe < 5; probe++ {
			v := graph.Vertex(rng.IntN(g.NumVertices()))
			bound := jointSum(fw.Potential(v))
			dv, _ := graph.DijkstraTo(g, joint, v, tt)
			if dv < graph.InfCost && bound > dv {
				t.Fatalf("%s/%s: forward bound %d exceeds dist(%d,%d)=%d",
					kind, lvl.Name, bound, v, tt, dv)
			}
			bBound := jointSum(bw.Potential(v))
			dsv, _ := graph.DijkstraTo(g, joint, s, v)
			if dsv < graph.InfCost && bBound > dsv {
				t.Fatalf("%s/%s: backward bound %d exceeds dist(%d,%d)=%d",
					kind, lvl.Name, bBound, s, v, dsv)
			}
		}
		// Accuracy at the source: bound on dist(s→t).
		bound := jointSum(fw.Potential(s))
		if bound < 0 {
			bound = 0
		}
		errSum += float64(trueDist-bound) / float64(trueDist)
		count++
		if err := sac.Err(); err != nil {
			t.Fatal(err)
		}
	}
	return errSum / float64(count)
}

func TestAdmissibilityAllKindsAllLevels(t *testing.T) {
	for _, kind := range []Kind{None, FedALT, FedALTMax, FedAMPS} {
		for _, lvl := range traffic.Levels() {
			admissible(t, kind, lvl)
		}
	}
}

func TestAMPSTighterThanALT(t *testing.T) {
	// The Fig. 11 headline: Fed-AMPS beats the landmark methods, and
	// Fed-ALT-Max is close to Fed-ALT.
	altErr := admissible(t, FedALT, traffic.Moderate)
	altMaxErr := admissible(t, FedALTMax, traffic.Moderate)
	ampsErr := admissible(t, FedAMPS, traffic.Moderate)
	if ampsErr >= altErr {
		t.Fatalf("Fed-AMPS error %.4f not better than Fed-ALT %.4f", ampsErr, altErr)
	}
	if ampsErr > 0.01 {
		t.Fatalf("Fed-AMPS mean relative error %.4f, paper reports under 1%%", ampsErr)
	}
	if altMaxErr < altErr {
		t.Fatalf("Fed-ALT-Max (%.4f) cannot beat Fed-ALT (%.4f)", altMaxErr, altErr)
	}
	if altMaxErr > altErr*2+0.05 {
		t.Fatalf("Fed-ALT-Max (%.4f) should be close to Fed-ALT (%.4f)", altMaxErr, altErr)
	}
}

func TestFedALTUsesSecureComparisons(t *testing.T) {
	f := testFed(t, traffic.Moderate, 17)
	lm := PrecomputeLandmarks(f, SelectLandmarks(f.Graph(), f.StaticWeights(), 8, 3), 0)
	sac := f.NewSAC()
	fw, _, err := NewPair(FedALT, f, lm, sac, 0, 20)
	if err != nil {
		t.Fatal(err)
	}
	before := sac.Stats().Compares
	fw.Potential(5)
	used := sac.Stats().Compares - before
	if used != int64(len(lm.L)-1) {
		t.Fatalf("Fed-ALT used %d comparisons per estimation, want |L|-1 = %d", used, len(lm.L)-1)
	}
	// Fed-ALT-Max must use none.
	fwMax, _, err := NewPair(FedALTMax, f, lm, sac, 0, 20)
	if err != nil {
		t.Fatal(err)
	}
	before = sac.Stats().Compares
	fwMax.Potential(5)
	if sac.Stats().Compares != before {
		t.Fatal("Fed-ALT-Max performed secure comparisons")
	}
}

func TestStaticALTLoosensUnderCongestion(t *testing.T) {
	// Fig. 11 observation (1): static ALT's relative error grows with
	// congestion while federated estimators stay stable.
	relErr := func(lvl traffic.Level) float64 {
		f := testFed(t, lvl, 23)
		g := f.Graph()
		lm := PrecomputeLandmarks(f, SelectLandmarks(g, f.StaticWeights(), 8, 3), 0)
		joint := f.JointWeights()
		rng := rand.New(rand.NewPCG(3, 3))
		var sum float64
		var cnt int
		for i := 0; i < 30; i++ {
			s := graph.Vertex(rng.IntN(g.NumVertices()))
			tt := graph.Vertex(rng.IntN(g.NumVertices()))
			if s == tt {
				continue
			}
			d, _ := graph.DijkstraTo(g, joint, s, tt)
			if d >= graph.InfCost || d == 0 {
				continue
			}
			b := lm.StaticALTBound(s, tt, f.P())
			if b > d {
				t.Fatalf("static ALT bound %d exceeds true %d under %s (weights only grow)", b, d, lvl.Name)
			}
			sum += float64(d-b) / float64(d)
			cnt++
		}
		return sum / float64(cnt)
	}
	if free, heavy := relErr(traffic.Free), relErr(traffic.Heavy); heavy <= free {
		t.Fatalf("static ALT error should grow with congestion: free %.4f, heavy %.4f", free, heavy)
	}
}

func TestNewPairErrors(t *testing.T) {
	f := testFed(t, traffic.Moderate, 29)
	if _, _, err := NewPair(FedALT, f, nil, f.NewSAC(), 0, 1); err == nil {
		t.Fatal("Fed-ALT without landmarks accepted")
	}
	if _, _, err := NewPair(FedALTMax, f, nil, nil, 0, 1); err == nil {
		t.Fatal("Fed-ALT-Max without landmarks accepted")
	}
	lm := PrecomputeLandmarks(f, SelectLandmarks(f.Graph(), f.StaticWeights(), 2, 1), 0)
	if _, _, err := NewPair(FedALT, f, lm, nil, 0, 1); err == nil {
		t.Fatal("Fed-ALT without SAC accepted")
	}
	if _, _, err := NewPair(Kind("bogus"), f, lm, nil, 0, 1); err == nil {
		t.Fatal("unknown kind accepted")
	}
}

func TestZeroEstimator(t *testing.T) {
	f := testFed(t, traffic.Moderate, 31)
	fw, bw, err := NewPair(None, f, nil, nil, 0, 5)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range []Estimator{fw, bw} {
		p := e.Potential(3)
		if len(p) != f.P() {
			t.Fatalf("potential length %d", len(p))
		}
		for _, v := range p {
			if v != 0 {
				t.Fatal("zero estimator returned non-zero")
			}
		}
	}
}
