// Package lb implements the federated lower-bound estimators of §V, used as
// A* potentials by the federated SPSP search:
//
//   - Fed-ALT: landmark bounds with the tightest landmark selected by |L|−1
//     secure comparisons per estimation (accurate, communication-heavy).
//   - Fed-ALT-Max: the landmark is selected in plain text on the public
//     static weights W0, then only that landmark's private partial bound is
//     used — zero secure comparisons per estimation, slightly looser.
//   - Fed-AMPS: the mean of the per-silo *local* shortest-path costs, a
//     provably admissible joint lower bound (Eq. 3) obtained with pure local
//     computation (one lazily grown Dijkstra per silo per direction).
//
// A plain static-weight ALT baseline is included for the accuracy ablation
// (Fig. 11).
package lb

import (
	"cmp"
	"fmt"
	"slices"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/fed"
	"repro/internal/graph"
)

// Kind names a lower-bound estimation method.
type Kind string

const (
	None      Kind = "none"
	FedALT    Kind = "fed-alt"
	FedALTMax Kind = "fed-alt-max"
	FedAMPS   Kind = "fed-amps"
)

// Estimator produces, for each explored vertex, a per-silo partial vector
// whose joint value lower-bounds the remaining joint distance of the search
// direction it was built for.
type Estimator interface {
	Potential(v graph.Vertex) fed.Partial
}

// Landmarks carries the pre-computed landmark distance matrices: the public
// static matrix Φ0 and the per-silo partial matrices Φ_p of the *joint*
// vertex→landmark distances (paper §V). All matrices store distances from
// every vertex TO each landmark, matching the paper's bound
// max_l { φ̄(v_s,l) − φ̄(v_t,l) }.
type Landmarks struct {
	L    []graph.Vertex
	Phi0 [][]int64   // [l][v] static dist(v → L[l]) under W0
	Phi  [][][]int64 // [p][l][v] silo p's partial cost of the joint shortest path v → L[l]
}

// SelectLandmarks picks k landmarks with the farthest-point heuristic on the
// public static weights (deterministic, so every silo selects the same set,
// as the paper requires).
func SelectLandmarks(g *graph.Graph, w0 graph.Weights, k int, seed uint64) []graph.Vertex {
	if k < 1 || k > g.NumVertices() {
		panic(fmt.Sprintf("lb: landmark count %d out of range", k))
	}
	n := g.NumVertices()
	minDist := make([]int64, n)
	for i := range minDist {
		minDist[i] = graph.InfCost
	}
	first := graph.Vertex(seed % uint64(n))
	landmarks := []graph.Vertex{first}
	update := func(l graph.Vertex) {
		res := graph.Dijkstra(g, w0, l)
		for v := 0; v < n; v++ {
			if res.Dist[v] < minDist[v] {
				minDist[v] = res.Dist[v]
			}
		}
	}
	update(first)
	for len(landmarks) < k {
		var far graph.Vertex
		best := int64(-1)
		for v := 0; v < n; v++ {
			if minDist[v] > best && minDist[v] < graph.InfCost {
				best = minDist[v]
				far = graph.Vertex(v)
			}
		}
		landmarks = append(landmarks, far)
		update(far)
	}
	sort.Slice(landmarks, func(i, j int) bool { return landmarks[i] < landmarks[j] })
	return landmarks
}

// PrecomputeLandmarks builds the landmark matrices for a federation. The
// joint vertex→landmark shortest paths are computed collaboratively — this
// implementation evaluates the ideal functionality of the federated SSSP
// (identical outputs; the equivalence is asserted by the core package's
// tests) and derives each silo's partial cost along the joint tree, exactly
// as the paper's pre-processing records φ_p(ρ*).
//
// It reads the silos' live weight sets, so the caller must hold whatever
// lock guards them for the whole call. For precomputing without blocking
// traffic updates, snapshot the weights first and use Precompute.
//
// workers bounds the parallelism of the per-landmark computation; ≤ 0
// selects one worker per landmark. The result is identical for every
// worker count.
func PrecomputeLandmarks(f *fed.Federation, landmarks []graph.Vertex, workers int) *Landmarks {
	sets := make([]graph.Weights, f.P())
	for p := range sets {
		sets[p] = f.Silo(p).Weights()
	}
	return Precompute(f.Graph(), f.StaticWeights(), sets, landmarks, workers)
}

// Precompute builds the landmark matrices from an explicit weight snapshot
// (siloWeights[p] is silo p's weight set), independent of any live
// federation state. Landmarks are independent of each other — per-silo local
// Dijkstras plus a tree walk — so with workers > 1 they are computed in
// parallel (workers ≤ 0 means one worker per landmark). The result is
// identical for every worker count.
func Precompute(g *graph.Graph, w0 graph.Weights, siloWeights []graph.Weights, landmarks []graph.Vertex, workers int) *Landmarks {
	n := g.NumVertices()
	p := len(siloWeights)
	lm := &Landmarks{L: landmarks}
	joint := graph.JointWeights(siloWeights) // ideal functionality of the collaborative SSSP
	lm.Phi0 = make([][]int64, len(landmarks))
	lm.Phi = make([][][]int64, p)
	for s := 0; s < p; s++ {
		lm.Phi[s] = make([][]int64, len(landmarks))
	}
	// one computes one landmark's rows. order is per-worker scratch: at
	// continent scale an n-element slice per landmark is real garbage, so
	// each worker reuses a single slice across its landmarks.
	one := func(li int, l graph.Vertex, order []graph.Vertex) {
		lm.Phi0[li] = graph.DijkstraBackward(g, w0, l).Dist
		res := graph.DijkstraBackward(g, joint, l)
		// Partial costs along the joint tree: process vertices in order of
		// increasing joint distance so successors are resolved first.
		for v := range order {
			order[v] = graph.Vertex(v)
		}
		slices.SortFunc(order, func(a, b graph.Vertex) int { return cmp.Compare(res.Dist[a], res.Dist[b]) })
		parts := make([][]int64, p)
		for s := 0; s < p; s++ {
			parts[s] = make([]int64, n)
			for v := range parts[s] {
				parts[s][v] = graph.InfCost
			}
			parts[s][l] = 0
		}
		for _, v := range order {
			if v == l || res.Dist[v] >= graph.InfCost {
				continue
			}
			succ, arc := res.Parent[v], res.PArc[v]
			for s := 0; s < p; s++ {
				parts[s][v] = parts[s][succ] + siloWeights[s][arc]
			}
		}
		for s := 0; s < p; s++ {
			lm.Phi[s][li] = parts[s]
		}
	}
	if workers <= 0 || workers > len(landmarks) {
		workers = len(landmarks)
	}
	if workers <= 1 {
		order := make([]graph.Vertex, n)
		for li, l := range landmarks {
			one(li, l, order)
		}
		return lm
	}
	// Each landmark writes only its own Phi0[li] / Phi[s][li] rows, so the
	// fan-out is race-free by construction.
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			order := make([]graph.Vertex, n)
			for {
				li := int(next.Add(1)) - 1
				if li >= len(landmarks) {
					return
				}
				one(li, landmarks[li], order)
			}
		}()
	}
	wg.Wait()
	return lm
}

// staticBound returns the best static landmark index for the pair (from, to)
// and its Φ0 bound value.
func (lm *Landmarks) staticBound(from, to graph.Vertex) (best int, bound int64) {
	bound = -graph.InfCost
	for li := range lm.L {
		dF, dT := lm.Phi0[li][from], lm.Phi0[li][to]
		if dF >= graph.InfCost || dT >= graph.InfCost {
			continue
		}
		if b := dF - dT; b > bound {
			bound, best = b, li
		}
	}
	return best, bound
}

// partialBound fills out with the per-silo partial bound of landmark li for
// the ordered pair (from, to): Φ_p[li][from] − Φ_p[li][to].
func (lm *Landmarks) partialBound(li int, from, to graph.Vertex, out fed.Partial) bool {
	for p := range out {
		dF, dT := lm.Phi[p][li][from], lm.Phi[p][li][to]
		if dF >= graph.InfCost || dT >= graph.InfCost {
			return false
		}
		out[p] = dF - dT
	}
	return true
}

// StaticALTBound estimates the joint distance s→t from the static matrix
// alone, scaled into joint-sum space (×P). It is the Fig. 11 "ALT" baseline:
// under congestion the true joint distances grow while this estimate stays
// static, so its relative error grows.
func (lm *Landmarks) StaticALTBound(s, t graph.Vertex, p int) int64 {
	_, b := lm.staticBound(s, t)
	if b < 0 {
		b = 0
	}
	return b * int64(p)
}

// zeroEstimator returns an all-zero potential (plain Dijkstra ordering).
type zeroEstimator struct{ p int }

func (z zeroEstimator) Potential(graph.Vertex) fed.Partial { return make(fed.Partial, z.p) }

// altMaxEstimator is Fed-ALT-Max: per estimation, the landmark maximizing
// the public static bound is chosen in plain text; only that landmark's
// private partial bound is returned. Zero Fed-SAC calls.
type altMaxEstimator struct {
	lm       *Landmarks
	p        int
	fixed    graph.Vertex // target (forward search) or source (backward)
	backward bool
}

func (e *altMaxEstimator) Potential(v graph.Vertex) fed.Partial {
	out := make(fed.Partial, e.p)
	from, to := v, e.fixed
	if e.backward {
		// Bound dist(s, v) ≥ φ(s,l) − φ(v,l).
		from, to = e.fixed, v
	}
	li, b := e.lm.staticBound(from, to)
	if b <= -graph.InfCost {
		return out
	}
	if !e.lm.partialBound(li, from, to, out) {
		for i := range out {
			out[i] = 0
		}
	}
	return out
}

// altEstimator is Fed-ALT: the tightest joint bound is selected with |L|−1
// secure comparisons per estimation (paper Alg. 4, lines 1–5).
type altEstimator struct {
	lm       *Landmarks
	p        int
	fixed    graph.Vertex
	backward bool
	sac      *fed.SAC
}

func (e *altEstimator) Potential(v graph.Vertex) fed.Partial {
	from, to := v, e.fixed
	if e.backward {
		from, to = e.fixed, v
	}
	best := make(fed.Partial, e.p)
	haveBest := e.lm.partialBound(0, from, to, best)
	cand := make(fed.Partial, e.p)
	for li := 1; li < len(e.lm.L); li++ {
		if !e.lm.partialBound(li, from, to, cand) {
			continue
		}
		if !haveBest {
			copy(best, cand)
			haveBest = true
			continue
		}
		if e.sac.Less(best, cand) { // secure: is the candidate tighter?
			copy(best, cand)
		}
	}
	if !haveBest {
		for i := range best {
			best[i] = 0
		}
	}
	return best
}

// ampsEstimator is Fed-AMPS: each silo lazily grows a local Dijkstra toward
// (or from) the query endpoint; the per-silo local shortest-path costs form
// the partial lower-bound vector (Eq. 3). Pure local computation.
type ampsEstimator struct {
	lazies []*graph.LazySSSP
}

func (e *ampsEstimator) Potential(v graph.Vertex) fed.Partial {
	out := make(fed.Partial, len(e.lazies))
	for p, lz := range e.lazies {
		d := lz.DistTo(v)
		if d > graph.MaxPathCost {
			// Unreachable in the shared topology ⇒ unreachable jointly; the
			// clamp keeps MPC magnitudes sound and is irrelevant for
			// admissibility (such vertices are never on an s→t path).
			d = graph.MaxPathCost
		}
		out[p] = d
	}
	return out
}

// NewPair builds the forward estimator (bounding dist(v→t)) and the backward
// estimator (bounding dist(s→v)) for one SPSP query. Fed-ALT needs the sac
// handle; landmark-based kinds need precomputed Landmarks.
func NewPair(kind Kind, f *fed.Federation, lm *Landmarks, sac *fed.SAC, s, t graph.Vertex) (forward, backward Estimator, err error) {
	switch kind {
	case None:
		z := zeroEstimator{p: f.P()}
		return z, z, nil
	case FedALTMax:
		if lm == nil {
			return nil, nil, fmt.Errorf("lb: %s requires precomputed landmarks", kind)
		}
		return &altMaxEstimator{lm: lm, p: f.P(), fixed: t},
			&altMaxEstimator{lm: lm, p: f.P(), fixed: s, backward: true}, nil
	case FedALT:
		if lm == nil {
			return nil, nil, fmt.Errorf("lb: %s requires precomputed landmarks", kind)
		}
		if sac == nil {
			return nil, nil, fmt.Errorf("lb: %s requires a Fed-SAC handle", kind)
		}
		return &altEstimator{lm: lm, p: f.P(), fixed: t, sac: sac},
			&altEstimator{lm: lm, p: f.P(), fixed: s, backward: true, sac: sac}, nil
	case FedAMPS:
		fw := &ampsEstimator{}
		bw := &ampsEstimator{}
		for p := 0; p < f.P(); p++ {
			w := f.Silo(p).Weights()
			fw.lazies = append(fw.lazies, graph.NewLazySSSP(f.Graph(), w, t, true))
			bw.lazies = append(bw.lazies, graph.NewLazySSSP(f.Graph(), w, s, false))
		}
		return fw, bw, nil
	default:
		return nil, nil, fmt.Errorf("lb: unknown estimator kind %q", kind)
	}
}
