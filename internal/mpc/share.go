// Package mpc implements the secure multi-party computation substrate behind
// FedRoad's Fed-SAC operator: additive secret sharing over the ring Z_2^64
// and a semi-honest n-party secure comparison in the preprocessing model.
//
// The paper implements Fed-SAC on MP-SPDZ with the "Temi" protocol and the
// edaBits optimization. This package substitutes a from-scratch protocol with
// the same online structure (see DESIGN.md):
//
//  1. the sum D of the parties' input differences — which already form an
//     additive sharing of D — is opened masked as C = D + R for a random
//     ring element R whose bit decomposition is XOR-shared among the
//     parties (1 round; each party broadcasts d_p + r_p),
//  2. the borrow of the subtraction C − R is evaluated with a log-depth
//     binary tree of carry-combine gates over the shared bits, each level
//     batching its AND gates through Beaver bit triples (log₂(k) rounds),
//  3. the resulting comparison bit — and nothing else — is opened (1 round).
//
// The batched variant (CompareBatch) additionally word-packs the circuits of
// up to 64 comparison instances into shared machine-word lanes (see pack.go),
// so one frame carries a whole frontier's worth of masked bits per round.
//
// The correlated randomness (R, its bit shares, and the bit triples) comes
// from a preprocessing Dealer, modelling MP-SPDZ's offline phase. Inputs and
// all intermediate values stay secret; the transcripts contain only uniformly
// masked openings and the final comparison bit.
package mpc

import (
	"encoding/binary"
	"math/rand/v2"
)

// K is the ring bit width. All arithmetic is mod 2^K with K = 64 so that
// values map directly onto uint64 two's-complement.
const K = 64

// NumLeaves is the number of borrow-circuit leaves: bits 0..K-2 feed the
// borrow into the sign bit K-1.
const NumLeaves = K - 1

// MaxMagnitude bounds |input difference| for a sound comparison: the sign bit
// of D = Σ diffs must be meaningful, so |D| must stay below 2^(K-1). FedRoad
// path costs are < 2^40 and silo counts ≤ 64, leaving huge headroom.
const MaxMagnitude = int64(1) << 50

// Bit is a single XOR-share of a secret bit; only the low bit is meaningful.
type Bit = byte

// BitTriple is one party's share of a Beaver bit triple (a, b, c) with
// c = a AND b jointly.
type BitTriple struct {
	A, B, C Bit
}

// ShareAdditive splits secret into n uniformly random additive shares over
// Z_2^64 using the given source of randomness.
func ShareAdditive(rng *rand.Rand, secret uint64, n int) []uint64 {
	shares := make([]uint64, n)
	var sum uint64
	for i := 1; i < n; i++ {
		shares[i] = rng.Uint64()
		sum += shares[i]
	}
	shares[0] = secret - sum
	return shares
}

// ReconstructAdditive recombines additive shares.
func ReconstructAdditive(shares []uint64) uint64 {
	var sum uint64
	for _, s := range shares {
		sum += s
	}
	return sum
}

// ShareBit splits a secret bit into n XOR shares.
func ShareBit(rng *rand.Rand, secret Bit, n int) []Bit {
	shares := make([]Bit, n)
	var acc Bit
	for i := 1; i < n; i++ {
		shares[i] = Bit(rng.Uint64() & 1)
		acc ^= shares[i]
	}
	shares[0] = (secret & 1) ^ acc
	return shares
}

// ReconstructBit recombines XOR shares of a bit.
func ReconstructBit(shares []Bit) Bit {
	var acc Bit
	for _, s := range shares {
		acc ^= s
	}
	return acc & 1
}

// packBits stores bits (low bit of each byte) into dst, little-endian within
// bytes. dst must have length ≥ ceil(len(bits)/8).
func packBits(dst []byte, bits []Bit) {
	for i := range dst {
		dst[i] = 0
	}
	for i, b := range bits {
		dst[i>>3] |= (b & 1) << (i & 7)
	}
}

// unpackBit extracts bit i from a packed buffer.
func unpackBit(src []byte, i int) Bit {
	return (src[i>>3] >> (i & 7)) & 1
}

func putU64(dst []byte, v uint64) { binary.LittleEndian.PutUint64(dst, v) }
func getU64(src []byte) uint64    { return binary.LittleEndian.Uint64(src) }
