package mpc

import "testing"

// FuzzCompareProtocol cross-checks the full MPC protocol against plaintext
// on fuzzed inputs (within the documented magnitude bound).
func FuzzCompareProtocol(f *testing.F) {
	f.Add(int64(0), int64(0), int64(0))
	f.Add(int64(-1), int64(0), int64(0))
	f.Add(int64(1<<40), int64(-(1 << 40)), int64(1))
	f.Add(int64(-123456789), int64(987654321), int64(-864197532))
	eng, err := NewEngine(Params{Parties: 3, Mode: ModeProtocol, Seed: 5})
	if err != nil {
		f.Fatal(err)
	}
	clamp := func(v int64) int64 {
		const bound = MaxMagnitude / 4
		if v > bound {
			return bound
		}
		if v < -bound {
			return -bound
		}
		return v
	}
	f.Fuzz(func(t *testing.T, a, b, c int64) {
		diffs := []int64{clamp(a), clamp(b), clamp(c)}
		var sum int64
		for _, d := range diffs {
			sum += d
		}
		got, err := eng.Compare(diffs)
		if err != nil {
			t.Fatal(err)
		}
		if got != (sum < 0) {
			t.Fatalf("Compare(%v) = %v, plaintext %v", diffs, got, sum < 0)
		}
	})
}

// FuzzShareAdditive checks reconstruction for arbitrary secrets and party
// counts.
func FuzzShareAdditive(f *testing.F) {
	f.Add(uint64(0), uint8(2))
	f.Add(^uint64(0), uint8(7))
	f.Fuzz(func(t *testing.T, secret uint64, nRaw uint8) {
		n := 2 + int(nRaw%15)
		rng := testRNG(uint64(nRaw) + 1)
		shares := ShareAdditive(rng, secret, n)
		if ReconstructAdditive(shares) != secret {
			t.Fatalf("reconstruction failed for %d/%d", secret, n)
		}
	})
}
