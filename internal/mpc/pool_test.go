package mpc

import (
	"sync"
	"testing"
	"time"
)

// waitForBuffer polls until the pool has buffered at least want tuple sets.
func waitForBuffer(t *testing.T, p *Pool, want int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for p.Stats().Buffered < want {
		if time.Now().After(deadline) {
			t.Fatalf("pool never buffered %d tuple sets (stats %+v)", want, p.Stats())
		}
		time.Sleep(time.Millisecond)
	}
}

func TestPoolReplenishes(t *testing.T) {
	p := NewPool(3, 16, 2, 11)
	defer p.Close()
	waitForBuffer(t, p, 16)
	st := p.Stats()
	if st.Produced < 16 {
		t.Fatalf("produced %d, want >= 16", st.Produced)
	}
	if st.Buffered != 16 {
		t.Fatalf("buffered %d, want 16 (channel full)", st.Buffered)
	}
}

func TestPoolTupleConsistency(t *testing.T) {
	// Pool-dealt tuples must satisfy the same dealer invariants as on-demand
	// ones: r reconstructs from the bit shares, and the Beaver triples hold.
	p := NewPool(3, 4, 1, 12)
	defer p.Close()
	waitForBuffer(t, p, 1)
	tuples := p.TakeTuples()
	if tuples == nil {
		t.Fatal("TakeTuples returned nil on a non-empty pool")
	}
	if len(tuples) != 3 {
		t.Fatalf("tuple set for %d parties, want 3", len(tuples))
	}
	var r uint64
	for _, tp := range tuples {
		r += tp.RShare
	}
	for i := 0; i < K; i++ {
		var bit Bit
		for _, tp := range tuples {
			bit ^= tp.RBits[i]
		}
		if bit != Bit(r>>uint(i))&1 {
			t.Fatalf("R bit %d inconsistent with additive sharing", i)
		}
	}
	for idx := 0; idx < TriplesPerCompare; idx++ {
		var a, b, c Bit
		for _, tp := range tuples {
			a ^= tp.Triples[idx].A
			b ^= tp.Triples[idx].B
			c ^= tp.Triples[idx].C
		}
		if c != a&b {
			t.Fatalf("triple %d violated: a=%d b=%d c=%d", idx, a, b, c)
		}
	}
}

func TestPoolHitsAndMisses(t *testing.T) {
	p := NewPool(2, 2, 1, 13)
	defer p.Close()
	waitForBuffer(t, p, 2)

	if tuples := p.TakeTuples(); tuples == nil {
		t.Fatal("expected a pool hit")
	}
	if st := p.Stats(); st.Hits != 1 {
		t.Fatalf("hits %d, want 1", st.Hits)
	}

	// Drain faster than one worker can refill: eventually a miss.
	sawMiss := false
	for i := 0; i < 10000 && !sawMiss; i++ {
		sawMiss = p.TakeTuples() == nil
	}
	if !sawMiss {
		t.Fatal("pool never reported a miss under a hard drain")
	}
	if st := p.Stats(); st.Misses < 1 {
		t.Fatalf("misses %d, want >= 1", st.Misses)
	}
}

func TestPoolCloseIdempotent(t *testing.T) {
	p := NewPool(3, 4, 2, 14)
	p.Close()
	p.Close() // must not panic or deadlock
	// Buffered tuples stay takeable after Close.
	if p.Stats().Buffered > 0 && p.TakeTuples() == nil {
		t.Fatal("buffered tuples lost on Close")
	}
}

func TestPoolConcurrentTake(t *testing.T) {
	p := NewPool(3, 64, 2, 15)
	defer p.Close()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				if tuples := p.TakeTuples(); tuples != nil && len(tuples) != 3 {
					t.Errorf("tuple set of size %d", len(tuples))
					return
				}
			}
		}()
	}
	wg.Wait()
	st := p.Stats()
	if st.Hits+st.Misses != 8*200 {
		t.Fatalf("hits+misses = %d, want %d", st.Hits+st.Misses, 8*200)
	}
}

func TestEngineWithPoolCorrect(t *testing.T) {
	// Protocol-mode comparisons must stay correct when their correlated
	// randomness comes from the pool instead of the engine's own dealer.
	p := NewPool(3, 32, 1, 16)
	defer p.Close()
	e, err := NewEngine(Params{Parties: 3, Mode: ModeProtocol, Seed: 17})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.AttachPool(p); err != nil {
		t.Fatal(err)
	}
	waitForBuffer(t, p, 8)
	cases := []struct {
		diffs []int64
		want  bool
	}{
		{[]int64{-5, 2, 2}, true},
		{[]int64{5, -2, -2}, false},
		{[]int64{0, 0, 0}, false},
		{[]int64{1 << 30, -(1 << 30), -1}, true},
	}
	for _, c := range cases {
		got, err := e.Compare(c.diffs)
		if err != nil {
			t.Fatal(err)
		}
		if got != c.want {
			t.Fatalf("Compare(%v) = %v, want %v", c.diffs, got, c.want)
		}
	}
	if p.Stats().Hits == 0 {
		t.Fatal("engine never drew from the attached pool")
	}
}

func TestAttachPoolPartyMismatch(t *testing.T) {
	p := NewPool(4, 4, 1, 18)
	defer p.Close()
	e, err := NewEngine(Params{Parties: 3, Mode: ModeProtocol, Seed: 19})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.AttachPool(p); err == nil {
		t.Fatal("attached a 4-party pool to a 3-party engine")
	}
}

func TestEngineForkIndependence(t *testing.T) {
	root, err := NewEngine(Params{Parties: 3, Mode: ModeProtocol, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	f1, f2 := root.Fork(), root.Fork()
	defer f1.Close()
	defer f2.Close()

	// Forks share the root's calibration without re-running it.
	rb, _, _ := root.PerCompareCost()
	fb, _, _ := f1.PerCompareCost()
	if rb == 0 || rb != fb {
		t.Fatalf("fork calibration %d, root %d", fb, rb)
	}

	// Stats are per-engine.
	if _, err := f1.Compare([]int64{-1, 0, 0}); err != nil {
		t.Fatal(err)
	}
	if f1.Stats().Compares != 1 || f2.Stats().Compares != 0 || root.Stats().Compares != 0 {
		t.Fatalf("stats leaked across forks: root=%d f1=%d f2=%d",
			root.Stats().Compares, f1.Stats().Compares, f2.Stats().Compares)
	}
}

func TestEngineForksConcurrent(t *testing.T) {
	// Many forks run full protocol comparisons in parallel; all must agree
	// with the plaintext sign. This is the core guarantee behind concurrent
	// query sessions.
	root, err := NewEngine(Params{Parties: 3, Mode: ModeProtocol, Seed: 22})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			e := root.Fork()
			defer e.Close()
			for i := 0; i < 25; i++ {
				d := int64((w*25+i)%7) - 3
				got, err := e.Compare([]int64{d, int64(w), -int64(w)})
				if err != nil {
					t.Error(err)
					return
				}
				if got != (d < 0) {
					t.Errorf("fork %d: Compare sign wrong for d=%d", w, d)
					return
				}
			}
		}(w)
	}
	wg.Wait()
}

func TestRealDelaySlowsProtocol(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test")
	}
	fast, err := NewEngine(Params{Parties: 2, Mode: ModeProtocol, Seed: 23})
	if err != nil {
		t.Fatal(err)
	}
	slow := fast.Fork()
	defer slow.Close()
	slow.netm = NetworkModel{Latency: 3 * time.Millisecond, Bandwidth: 1e9}
	slow.SetRealDelay(true)

	start := time.Now()
	if _, err := slow.Compare([]int64{-1, 0}); err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	// The protocol needs multiple sequential rounds; with 3ms one-way latency
	// a comparison cannot complete in under one round trip.
	if elapsed < 3*time.Millisecond {
		t.Fatalf("real-delay comparison took %v, want >= 3ms", elapsed)
	}

	start = time.Now()
	if _, err := fast.Compare([]int64{-1, 0}); err != nil {
		t.Fatal(err)
	}
	if fastElapsed := time.Since(start); fastElapsed > elapsed {
		t.Fatalf("delay-free comparison (%v) slower than delayed one (%v)", fastElapsed, elapsed)
	}
}

func TestPoolCloseSemantics(t *testing.T) {
	p := NewPool(3, 8, 2, 16)
	waitForBuffer(t, p, 8)
	p.Close()
	p.Close() // double close must not panic or deadlock

	// Every tuple set buffered before Close stays takeable after it.
	buffered := p.Stats().Buffered
	if buffered != 8 {
		t.Fatalf("buffered after close = %d, want 8", buffered)
	}
	for i := 0; i < buffered; i++ {
		if tuples := p.TakeTuples(); len(tuples) != 3 {
			t.Fatalf("take %d after close: tuple set of size %d", i, len(tuples))
		}
	}

	// Once dry, TakeTuples reports a miss immediately — it must never block,
	// even with the replenishers gone.
	done := make(chan []CmpTuple, 1)
	go func() { done <- p.TakeTuples() }()
	select {
	case tuples := <-done:
		if tuples != nil {
			t.Fatalf("dry closed pool returned tuples: %v", tuples)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("TakeTuples blocked on a dry closed pool")
	}
	st := p.Stats()
	if st.Hits != int64(buffered) || st.Misses != 1 {
		t.Fatalf("stats after drain = %+v, want %d hits / 1 miss", st, buffered)
	}
	p.Close() // close after drain is still safe
}
