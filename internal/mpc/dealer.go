package mpc

import (
	"encoding/binary"
	"math/rand/v2"
)

// CmpTuple is one party's slice of the correlated randomness consumed by a
// single secure comparison: an additive share of the mask R, XOR shares of
// R's bits, and this party's shares of the Beaver bit triples the borrow
// circuit consumes.
type CmpTuple struct {
	RShare  uint64
	RBits   [K]Bit
	Triples []BitTriple
}

// TriplesPerCompare is the number of Beaver bit triples one comparison
// consumes: two ANDs per carry-combine node of a binary tree over NumLeaves
// leaves.
var TriplesPerCompare = 2 * combinesFor(NumLeaves)

// combinesFor counts the combine nodes of a binary reduction tree.
func combinesFor(leaves int) int {
	total := 0
	for leaves > 1 {
		total += leaves / 2
		leaves = leaves/2 + leaves%2
	}
	return total
}

// circuitLevels counts the rounds the borrow circuit needs.
func circuitLevels(leaves int) int {
	levels := 0
	for leaves > 1 {
		leaves = leaves/2 + leaves%2
		levels++
	}
	return levels
}

// RoundsPerCompare is the number of communication rounds of one comparison:
// fused masked opening (the inputs are already an additive sharing, so no
// separate input-sharing round exists), one per circuit level, result
// opening.
var RoundsPerCompare = 2 + circuitLevels(NumLeaves)

// Dealer produces correlated randomness for the online protocol. It models
// the offline/preprocessing phase of the underlying MPC stack (Temi's
// threshold-HE preprocessing in the paper's implementation): a
// non-colluding party that never sees inputs, outputs, or transcripts.
//
// A Dealer is deterministic in its seed, which keeps protocol-mode runs
// reproducible. It is not safe for concurrent use.
type Dealer struct {
	n   int
	rng *rand.Rand
}

// NewDealer creates a dealer for n parties with a deterministic ChaCha8
// stream derived from seed.
func NewDealer(n int, seed uint64) *Dealer {
	if n < 2 {
		panic("mpc: dealer needs at least 2 parties")
	}
	var key [32]byte
	binary.LittleEndian.PutUint64(key[0:], seed)
	binary.LittleEndian.PutUint64(key[8:], seed^0xa5a5a5a5a5a5a5a5)
	binary.LittleEndian.PutUint64(key[16:], 0x466564526f616421) // "FedRoad!"
	binary.LittleEndian.PutUint64(key[24:], ^seed)
	return &Dealer{n: n, rng: rand.New(rand.NewChaCha8(key))}
}

// CmpTuples generates the per-party randomness for one comparison. The
// returned slice has one tuple per party.
func (d *Dealer) CmpTuples() []CmpTuple {
	tuples := make([]CmpTuple, d.n)
	for p := range tuples {
		tuples[p].Triples = make([]BitTriple, TriplesPerCompare)
	}

	r := d.rng.Uint64()
	rShares := ShareAdditive(d.rng, r, d.n)
	for p := range tuples {
		tuples[p].RShare = rShares[p]
	}
	for i := 0; i < K; i++ {
		bitShares := ShareBit(d.rng, Bit(r>>i), d.n)
		for p := range tuples {
			tuples[p].RBits[i] = bitShares[p]
		}
	}
	for t := 0; t < TriplesPerCompare; t++ {
		a := Bit(d.rng.Uint64() & 1)
		b := Bit(d.rng.Uint64() & 1)
		c := a & b
		as := ShareBit(d.rng, a, d.n)
		bs := ShareBit(d.rng, b, d.n)
		cs := ShareBit(d.rng, c, d.n)
		for p := range tuples {
			tuples[p].Triples[t] = BitTriple{A: as[p], B: bs[p], C: cs[p]}
		}
	}
	return tuples
}
