package mpc

import (
	"math/rand/v2"
	"sync"
	"testing"

	"repro/internal/transport"
)

// runBatchDirect executes one batched comparison at the party-protocol level
// over a fresh in-process mesh, returning the joint result bits and the
// measured transport stats. diffs is [instance][party]; the dealer seed
// fixes the correlated randomness, so two runs with the same seed consume
// identical tuples regardless of wire layout.
func runBatchDirect(t *testing.T, n int, seed uint64, diffs [][]int64, packed bool) ([]bool, transport.Stats) {
	t.Helper()
	k := len(diffs)
	mem := transport.NewMem(n)
	dealer := NewDealer(n, seed)
	tuples := make([][]CmpTuple, n)
	for p := range tuples {
		tuples[p] = make([]CmpTuple, k)
	}
	for i := 0; i < k; i++ {
		ts := dealer.CmpTuples()
		for p := 0; p < n; p++ {
			tuples[p][i] = ts[p]
		}
	}
	party := compareBatchParty
	if packed {
		party = compareBatchPackedParty
	}
	outs := make([][]bool, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for p := 0; p < n; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			ud := make([]uint64, k)
			for i := range ud {
				ud[i] = uint64(diffs[i][p])
			}
			outs[p], errs[p] = party(mem.Conn(p), ud, tuples[p])
		}(p)
	}
	wg.Wait()
	for p, err := range errs {
		if err != nil {
			t.Fatalf("party %d: %v", p, err)
		}
	}
	for p := 1; p < n; p++ {
		for i := 0; i < k; i++ {
			if outs[p][i] != outs[0][i] {
				t.Fatalf("parties disagree on instance %d", i)
			}
		}
	}
	return outs[0], mem.Stats()
}

func randomBatch(rng *rand.Rand, n, k int) ([][]int64, []bool) {
	diffs := make([][]int64, k)
	want := make([]bool, k)
	for i := range diffs {
		diffs[i] = make([]int64, n)
		var sum int64
		for p := range diffs[i] {
			diffs[i][p] = rng.Int64N(1<<40) - (1 << 39)
			sum += diffs[i][p]
		}
		want[i] = sum < 0
	}
	return diffs, want
}

// TestPackedBatchMatchesUnpackedAllLaneCounts: for every lane count 1..64
// and a set of ragged multi-word sizes, the word-packed protocol and the
// unpacked protocol — consuming identical dealer randomness — must produce
// the plaintext-correct bits. This is the lane-level differential oracle
// for the packed circuit (full-word, partial-word and multi-word shapes,
// including the in-place combine and the odd most-significant leftovers).
func TestPackedBatchMatchesUnpackedAllLaneCounts(t *testing.T) {
	rng := rand.New(rand.NewPCG(11, 11))
	sizes := make([]int, 0, 70)
	for k := 1; k <= 64; k++ {
		sizes = append(sizes, k)
	}
	sizes = append(sizes, 65, 67, 100, 128)
	for _, k := range sizes {
		diffs, want := randomBatch(rng, 3, k)
		seed := uint64(1000 + k)
		packed, _ := runBatchDirect(t, 3, seed, diffs, true)
		unpacked, _ := runBatchDirect(t, 3, seed, diffs, false)
		for i := 0; i < k; i++ {
			if packed[i] != want[i] {
				t.Fatalf("k=%d: packed[%d] = %v, plaintext %v", k, i, packed[i], want[i])
			}
			if unpacked[i] != want[i] {
				t.Fatalf("k=%d: unpacked[%d] = %v, plaintext %v", k, i, unpacked[i], want[i])
			}
		}
	}
}

// TestPackedBatchMatchesScalarCompare: a packed CompareBatch and k scalar
// Compares over the same engine-level inputs return identical bits.
func TestPackedBatchMatchesScalarCompare(t *testing.T) {
	rng := rand.New(rand.NewPCG(12, 12))
	for _, k := range []int{1, 5, 64, 70} {
		batchEng := newTestEngine(t, 3, ModeProtocol)
		scalarEng := newTestEngine(t, 3, ModeProtocol)
		diffs, _ := randomBatch(rng, 3, k)
		got, err := batchEng.CompareBatch(diffs)
		if err != nil {
			t.Fatal(err)
		}
		for i, d := range diffs {
			single, err := scalarEng.Compare(d)
			if err != nil {
				t.Fatal(err)
			}
			if single != got[i] {
				t.Fatalf("k=%d: batch[%d]=%v, scalar=%v", k, i, got[i], single)
			}
		}
	}
}

// TestBatchWireCostMatchesMeasured pins the analytic cost model to reality:
// for both layouts, several lane counts (full, ragged, multi-word) and
// party counts, batchWireCost must equal the byte/message totals the
// transport actually accounted. The engine's ideal-mode accounting — and
// the monotone batching guarantee built on it — is exactly as trustworthy
// as this equality.
func TestBatchWireCostMatchesMeasured(t *testing.T) {
	rng := rand.New(rand.NewPCG(13, 13))
	for _, n := range []int{2, 3} {
		for _, k := range []int{1, 3, 8, 16, 33, 64, 65, 100} {
			for _, packed := range []bool{true, false} {
				diffs, _ := randomBatch(rng, n, k)
				_, st := runBatchDirect(t, n, uint64(n*1000+k), diffs, packed)
				wantBytes, wantMsgs := batchWireCost(n, k, packed)
				if st.Bytes != wantBytes || st.Messages != wantMsgs {
					t.Fatalf("n=%d k=%d packed=%v: measured %d B / %d msgs, model %d B / %d msgs",
						n, k, packed, st.Bytes, st.Messages, wantBytes, wantMsgs)
				}
			}
		}
	}
}

// TestPackedBatchNeverCostsMoreThanSequential: the analytic model makes
// batching monotone in the round-dominated costs — a packed k-batch always
// pays RoundsPerCompare rounds once (strictly fewer messages than k scalar
// comparisons), and at full byte lanes (k ≡ 0 mod 8, 16 ≤ k) it also costs
// no more bytes. Ragged tails waste up to 7 lanes per gate vector, so their
// byte totals can exceed the scalar layout's global bit-packing — but
// rounds, the term latency multiplies, never regress at any size. This is
// the "batching can never regress" invariant the engine's cost accounting
// promises.
func TestPackedBatchNeverCostsMoreThanSequential(t *testing.T) {
	for _, n := range []int{2, 3, 5, 8} {
		scalarBytes, scalarMsgs := batchWireCost(n, 1, false)
		for k := 2; k <= 256; k++ {
			bytes, msgs := batchWireCost(n, k, true)
			if msgs >= scalarMsgs*int64(k) {
				t.Fatalf("n=%d k=%d: packed batch %d msgs, sequential %d", n, k, msgs, scalarMsgs*int64(k))
			}
			if k >= 16 && k%8 == 0 && bytes > scalarBytes*int64(k) {
				t.Fatalf("n=%d k=%d: packed batch %d B > %d sequential B", n, k, bytes, scalarBytes*int64(k))
			}
		}
	}
}

// TestPackedVecRoundTrip: serialize/deserialize of lane vectors is lossless
// on the live lanes and zeroes the padding.
func TestPackedVecRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewPCG(14, 14))
	for _, k := range []int{1, 7, 8, 9, 63, 64, 65, 100, 128, 200} {
		W := wordsFor(k)
		src := make([]uint64, W)
		for w := range src {
			src[w] = rng.Uint64()
		}
		// Mask source to live lanes: that is the contract packWordVec keeps.
		if k&63 != 0 {
			src[W-1] &= ^uint64(0) >> (64 - k&63)
		}
		buf := make([]byte, packedVecBytes(k))
		packWordVec(buf, src, k)
		back := make([]uint64, W)
		unpackWordVec(back, buf, k)
		for w := range src {
			if back[w] != src[w] {
				t.Fatalf("k=%d word %d: %x != %x", k, w, back[w], src[w])
			}
		}
		// XOR-accumulate twice must cancel.
		acc := make([]uint64, W)
		xorWordVec(acc, buf, k)
		xorWordVec(acc, buf, k)
		for w := range acc {
			if acc[w] != 0 {
				t.Fatalf("k=%d: xorWordVec does not self-cancel", k)
			}
		}
	}
}

// TestPackedTransposeMatchesScalarTuples: the lane transposes agree with the
// per-instance tuples bit for bit.
func TestPackedTransposeMatchesScalarTuples(t *testing.T) {
	dealer := NewDealer(3, 21)
	const k = 70
	tups := make([]CmpTuple, k)
	for i := range tups {
		tups[i] = dealer.CmpTuples()[1]
	}
	W := wordsFor(k)
	rb := packRBitLanes(tups, W)
	wt := packTripleLanes(tups, W)
	for i := 0; i < k; i++ {
		for b := 0; b < K; b++ {
			want := uint64(tups[i].RBits[b] & 1)
			if rb[b*W+i>>6]>>(uint(i)&63)&1 != want {
				t.Fatalf("RBits lane mismatch at instance %d bit %d", i, b)
			}
		}
		for tr := 0; tr < TriplesPerCompare; tr++ {
			w := &wt[tr*W+i>>6]
			bit := uint(i) & 63
			if w.A>>bit&1 != uint64(tups[i].Triples[tr].A&1) ||
				w.B>>bit&1 != uint64(tups[i].Triples[tr].B&1) ||
				w.C>>bit&1 != uint64(tups[i].Triples[tr].C&1) {
				t.Fatalf("triple lane mismatch at instance %d triple %d", i, tr)
			}
		}
	}
}

// FuzzPackedVecCodec fuzzes the packed share codec: any byte string,
// interpreted as a k-lane vector, must survive unpack→pack with its live
// lanes intact and its padding bits zeroed.
func FuzzPackedVecCodec(f *testing.F) {
	f.Add([]byte{0xff}, uint16(1))
	f.Add([]byte{0xab, 0xcd}, uint16(13))
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9}, uint16(65))
	f.Fuzz(func(t *testing.T, data []byte, kRaw uint16) {
		k := 1 + int(kRaw%256)
		vb := packedVecBytes(k)
		in := make([]byte, vb)
		copy(in, data)
		words := make([]uint64, wordsFor(k))
		unpackWordVec(words, in, k)
		out := make([]byte, vb)
		packWordVec(out, words, k)
		// out must equal in with padding bits of the last byte masked off.
		mask := byte(0xff)
		if k&7 != 0 {
			mask = 0xff >> (8 - k&7)
		}
		for i := range in {
			want := in[i]
			if i == vb-1 {
				want &= mask
			}
			if out[i] != want {
				t.Fatalf("k=%d byte %d: %02x != %02x", k, i, out[i], want)
			}
		}
		// Lanes beyond k must be zero in the unpacked words.
		if k&63 != 0 {
			if words[len(words)-1]&^(^uint64(0)>>(64-k&63)) != 0 {
				t.Fatalf("k=%d: padding lanes nonzero", k)
			}
		}
	})
}
