package mpc

import (
	"errors"
	"math/rand/v2"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/transport"
)

// armedWrap builds a Params.Wrap that leaves endpoints clean until armed is
// set, then wraps the given party's NEXT created endpoint (i.e. the next
// Fork) with a FaultConn on the given plan. Arming after NewEngine keeps the
// calibration run clean; the returned getter exposes the installed wrapper.
func armedWrap(party int, plan transport.FaultPlan) (wrap func(int, transport.Conn) transport.Conn, arm *atomic.Bool, installed *atomic.Pointer[transport.FaultConn]) {
	arm = new(atomic.Bool)
	installed = new(atomic.Pointer[transport.FaultConn])
	wrap = func(p int, c transport.Conn) transport.Conn {
		if !arm.Load() || p != party {
			return c
		}
		fc := transport.NewFaultConn(c, plan)
		installed.Store(fc)
		return fc
	}
	return wrap, arm, installed
}

func TestChaosRetryRecoversTransientFault(t *testing.T) {
	// Party 0's first protocol operation fails with a transient fault; the
	// engine's retry budget must absorb it and still produce the right bit.
	wrap, arm, installed := armedWrap(0, transport.FaultPlan{Script: []transport.FaultKind{transport.FaultError}})
	root, err := NewEngine(Params{
		Parties:      3,
		Mode:         ModeProtocol,
		Seed:         31,
		RoundTimeout: 500 * time.Millisecond,
		Retry:        RetryPolicy{Attempts: 2, Backoff: time.Millisecond},
		Wrap:         wrap,
	})
	if err != nil {
		t.Fatal(err)
	}
	arm.Store(true)
	e := root.Fork()
	defer e.Close()

	got, err := e.Compare([]int64{-7, 2, 1}) // sum -4 < 0
	if err != nil {
		t.Fatalf("retry did not absorb the transient fault: %v", err)
	}
	if !got {
		t.Fatal("comparison bit wrong after retry")
	}
	if e.Poisoned() {
		t.Fatal("engine poisoned by a recovered fault")
	}
	if inj := installed.Load().Injected(); len(inj) != 1 || inj[0] != transport.FaultError {
		t.Fatalf("injected log = %v, want one injected error", inj)
	}

	// The engine keeps working after the recovered round.
	if got, err := e.Compare([]int64{5, -2, 1}); err != nil || got {
		t.Fatalf("comparison after recovery = %v, %v", got, err)
	}
}

func TestChaosTimeoutWithoutRetryPoisons(t *testing.T) {
	// Party 0 silently drops a frame. With no retry budget the round times
	// out at the starved peer, and the engine must poison itself: its
	// streams may hold half a round's frames.
	wrap, arm, _ := armedWrap(0, transport.FaultPlan{Script: []transport.FaultKind{transport.FaultDrop}})
	root, err := NewEngine(Params{
		Parties:      3,
		Mode:         ModeProtocol,
		Seed:         32,
		RoundTimeout: 100 * time.Millisecond,
		Wrap:         wrap,
	})
	if err != nil {
		t.Fatal(err)
	}
	arm.Store(true)
	e := root.Fork()
	defer e.Close()

	start := time.Now()
	_, err = e.Compare([]int64{-1, 0, 0})
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("comparison with a dropped frame succeeded")
	}
	if !errors.Is(err, ErrPoisoned) {
		t.Fatalf("error does not wrap ErrPoisoned: %v", err)
	}
	if !transport.IsTimeout(err) {
		t.Fatalf("error does not surface the round timeout: %v", err)
	}
	if elapsed > 5*time.Second {
		t.Fatalf("timed-out round took %v, round timeout is 100ms", elapsed)
	}
	if !e.Poisoned() {
		t.Fatal("engine not poisoned after unrecoverable timeout")
	}

	// Poisoned engines fail fast, without touching the transport again.
	start = time.Now()
	if _, err := e.Compare([]int64{-1, 0, 0}); !errors.Is(err, ErrPoisoned) {
		t.Fatalf("poisoned compare = %v", err)
	}
	if time.Since(start) > time.Second {
		t.Fatal("poisoned compare did not fail fast")
	}

	// The root and fresh forks are unaffected.
	arm.Store(false)
	if got, err := root.Compare([]int64{-1, 0, 0}); err != nil || !got {
		t.Fatalf("root compare after fork poisoning = %v, %v", got, err)
	}
	f := root.Fork()
	defer f.Close()
	if got, err := f.Compare([]int64{-1, 0, 0}); err != nil || !got {
		t.Fatalf("fresh fork compare = %v, %v", got, err)
	}
}

func TestChaosCloseMidRoundPoisonsDespiteRetries(t *testing.T) {
	// A crashed party (closed endpoint mid-round) is not transient: even a
	// generous retry budget must not replay against it, and the failure must
	// surface promptly rather than burning backoff sleeps.
	wrap, arm, _ := armedWrap(1, transport.FaultPlan{After: 2, Script: []transport.FaultKind{transport.FaultClose}})
	root, err := NewEngine(Params{
		Parties:      3,
		Mode:         ModeProtocol,
		Seed:         33,
		RoundTimeout: 100 * time.Millisecond,
		Retry:        RetryPolicy{Attempts: 5, Backoff: time.Second},
		Wrap:         wrap,
	})
	if err != nil {
		t.Fatal(err)
	}
	arm.Store(true)
	e := root.Fork()
	defer e.Close()

	start := time.Now()
	_, err = e.Compare([]int64{-1, 0, 0})
	if err == nil {
		t.Fatal("comparison with a crashed party succeeded")
	}
	if !errors.Is(err, ErrPoisoned) || !errors.Is(err, transport.ErrClosed) {
		t.Fatalf("crash error classification: %v", err)
	}
	if elapsed := time.Since(start); elapsed > 900*time.Millisecond {
		t.Fatalf("non-transient failure burned retries: took %v with 1s backoff configured", elapsed)
	}
	if !e.Poisoned() {
		t.Fatal("engine not poisoned after crash")
	}
}

func TestChaosBatchCompare(t *testing.T) {
	// The batched protocol path shares the retry/poison machinery.
	wrap, arm, _ := armedWrap(2, transport.FaultPlan{Script: []transport.FaultKind{transport.FaultError}})
	root, err := NewEngine(Params{
		Parties:      3,
		Mode:         ModeProtocol,
		Seed:         34,
		RoundTimeout: 500 * time.Millisecond,
		Retry:        RetryPolicy{Attempts: 2, Backoff: time.Millisecond},
		Wrap:         wrap,
	})
	if err != nil {
		t.Fatal(err)
	}
	diffs := [][]int64{{-3, 1, 1}, {4, -1, -1}, {-9, 4, 4}} // sums -1, 2, -1
	want := []bool{true, false, true}

	arm.Store(true)
	e := root.Fork()
	defer e.Close()
	got, err := e.CompareBatch(diffs)
	if err != nil {
		t.Fatalf("batched retry did not absorb the transient fault: %v", err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("batch bits = %v, want %v", got, want)
		}
	}
	if e.Poisoned() {
		t.Fatal("engine poisoned by a recovered batched fault")
	}

	// A crash mid-batch poisons, exactly like the scalar path.
	arm.Store(false)
	wrap2, arm2, _ := armedWrap(0, transport.FaultPlan{Script: []transport.FaultKind{transport.FaultClose}})
	root2, err := NewEngine(Params{
		Parties: 3, Mode: ModeProtocol, Seed: 35,
		RoundTimeout: 100 * time.Millisecond, Wrap: wrap2,
	})
	if err != nil {
		t.Fatal(err)
	}
	arm2.Store(true)
	e2 := root2.Fork()
	defer e2.Close()
	if _, err := e2.CompareBatch(diffs); !errors.Is(err, ErrPoisoned) {
		t.Fatalf("batched crash error = %v", err)
	}
	if !e2.Poisoned() {
		t.Fatal("engine not poisoned after batched crash")
	}
}

func TestChaosPackedRaggedBatch(t *testing.T) {
	// Word-packed rounds under fault injection: a transient fault mid-batch
	// on a ragged (non-multiple-of-8) lane count must be absorbed by retry
	// with every lane still correct, on both wire layouts.
	rng := rand.New(rand.NewPCG(77, 77))
	diffs, want := randomBatch(rng, 3, 13)
	for _, noPack := range []bool{false, true} {
		wrap, arm, _ := armedWrap(1, transport.FaultPlan{After: 1, Script: []transport.FaultKind{transport.FaultError}})
		root, err := NewEngine(Params{
			Parties:      3,
			Mode:         ModeProtocol,
			Seed:         36,
			NoPack:       noPack,
			RoundTimeout: 500 * time.Millisecond,
			Retry:        RetryPolicy{Attempts: 2, Backoff: time.Millisecond},
			Wrap:         wrap,
		})
		if err != nil {
			t.Fatal(err)
		}
		arm.Store(true)
		e := root.Fork()
		got, err := e.CompareBatch(diffs)
		if err != nil {
			t.Fatalf("noPack=%v: retry did not absorb the fault: %v", noPack, err)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("noPack=%v: lane %d wrong after retry", noPack, i)
			}
		}
		if e.Poisoned() {
			t.Fatalf("noPack=%v: engine poisoned by a recovered fault", noPack)
		}
		e.Close()
		root.Close()
	}
}

func TestChaosRandomizedSoak(t *testing.T) {
	// Seeded random fault schedules (drops, delays, transient errors and the
	// occasional crash — no duplicates, which desynchronize FIFO streams and
	// are exercised separately) hammer the scalar protocol. The invariants:
	// never a panic or a hang, every error is classified (poisoned or
	// transient-but-recovered), and every successful comparison returns the
	// right bit.
	if testing.Short() {
		t.Skip("soak test")
	}
	for seed := uint64(0); seed < 4; seed++ {
		plan := transport.FaultPlan{
			Seed:   seed,
			PDelay: 0.05, PDrop: 0.02, PError: 0.05, PClose: 0.005,
			Delay: 200 * time.Microsecond,
		}
		wrap, arm, _ := armedWrap(int(seed)%3, plan)
		root, err := NewEngine(Params{
			Parties:      3,
			Mode:         ModeProtocol,
			Seed:         seed + 100,
			RoundTimeout: 50 * time.Millisecond,
			Retry:        RetryPolicy{Attempts: 1, Backoff: time.Millisecond},
			Wrap:         wrap,
		})
		if err != nil {
			t.Fatal(err)
		}
		arm.Store(true)
		e := root.Fork()

		inputs := [][]int64{{-5, 2, 1}, {3, -1, -1}, {0, 0, -1}, {7, -3, -3}}
		wantBits := []bool{true, false, true, false}
		for i := 0; i < 25; i++ {
			in := inputs[i%len(inputs)]
			got, err := e.Compare(in)
			if err != nil {
				if !errors.Is(err, ErrPoisoned) {
					t.Fatalf("seed %d compare %d: unclassified failure: %v", seed, i, err)
				}
				e.Close()
				e = root.Fork() // a poisoned session is discarded, not reused
				continue
			}
			if got != wantBits[i%len(inputs)] {
				t.Fatalf("seed %d compare %d: wrong bit under faults", seed, i)
			}
		}
		e.Close()
	}
}
