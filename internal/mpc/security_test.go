package mpc

import (
	"math/rand/v2"
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/transport"
)

// recordingConn wraps a Conn and keeps every frame it sends, so tests can
// inspect one party's view of the transcript.
type recordingConn struct {
	transport.Conn
	sent [][]byte
}

func (r *recordingConn) Send(to int, data []byte) error {
	cp := make([]byte, len(data))
	copy(cp, data)
	r.sent = append(r.sent, cp)
	return r.Conn.Send(to, data)
}

// runRecorded executes one comparison over an in-memory mesh with party 0's
// outgoing frames recorded. The dealer seed determines the masking
// randomness, so different seeds give independently masked runs.
func runRecorded(t *testing.T, diffs []int64, dealerSeed uint64) (bool, [][]byte) {
	t.Helper()
	n := len(diffs)
	mem := transport.NewMem(n)
	tuples := NewDealer(n, dealerSeed).CmpTuples()
	rec := &recordingConn{Conn: mem.Conn(0)}
	results := make([]bool, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for p := 0; p < n; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			conn := transport.Conn(mem.Conn(p))
			if p == 0 {
				conn = rec
			}
			results[p], errs[p] = RunCompareParty(conn, diffs[p], &tuples[p])
		}(p)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	for p := 1; p < n; p++ {
		if results[p] != results[0] {
			t.Fatal("parties disagree")
		}
	}
	return results[0], rec.sent
}

// TestTranscriptIsMasked: running the protocol twice on the *same inputs*
// with fresh randomness must produce entirely different wire frames (except
// the final 1-bit result opening) — the transcript is uniformly masked, so
// an observer of one run learns nothing about the inputs.
func TestTranscriptIsMasked(t *testing.T) {
	diffs := []int64{123456, -99999, -30000}
	res1, sent1 := runRecorded(t, diffs, 1)
	res2, sent2 := runRecorded(t, diffs, 2)
	if res1 != res2 {
		t.Fatal("same inputs produced different comparison results")
	}
	if len(sent1) != len(sent2) {
		t.Fatalf("frame counts differ: %d vs %d", len(sent1), len(sent2))
	}
	identical := 0
	for i := range sent1 {
		if len(sent1[i]) == len(sent2[i]) {
			same := true
			for j := range sent1[i] {
				if sent1[i][j] != sent2[i][j] {
					same = false
					break
				}
			}
			if same {
				identical++
			}
		}
	}
	// Only the trailing result-bit frames (n-1 of them, 1 byte each) may
	// coincide by chance; every masked frame must differ.
	if identical > len(diffs) {
		t.Fatalf("%d of %d frames identical across independently masked runs", identical, len(sent1))
	}
}

// TestInputSharesDoNotRevealInput: the fused masked opening party 0 sends in
// round 1 is m = d_0 + r_0; it must not equal the raw input, and must change
// across runs (r_0 is a fresh uniform mask per dealer stream).
func TestInputSharesDoNotRevealInput(t *testing.T) {
	diffs := []int64{424242, 0, 0}
	_, sent1 := runRecorded(t, diffs, 3)
	_, sent2 := runRecorded(t, diffs, 4)
	// Round 1 frames are the first n-1 sends, 8 bytes each.
	for i := 0; i < 2; i++ {
		v1 := getU64(sent1[i])
		v2 := getU64(sent2[i])
		if v1 == uint64(diffs[0]) || v2 == uint64(diffs[0]) {
			t.Fatal("raw input appeared on the wire")
		}
		if v1 == v2 {
			t.Fatal("masked openings did not change across runs")
		}
	}
}

// TestComparisonResultDataIndependentCost: the wire cost must not depend on
// the input values (data-obliviousness — a cost side channel would leak).
func TestComparisonResultDataIndependentCost(t *testing.T) {
	count := func(diffs []int64, seed uint64) int {
		_, sent := runRecorded(t, diffs, seed)
		total := 0
		for _, f := range sent {
			total += len(f)
		}
		return total
	}
	a := count([]int64{0, 0, 0}, 5)
	b := count([]int64{1 << 44, -(1 << 44), 12345}, 6)
	if a != b {
		t.Fatalf("wire bytes depend on inputs: %d vs %d", a, b)
	}
}

// TestProtocolOverRealTCP runs the comparison across a real localhost TCP
// mesh — the integration path a multi-machine deployment would use.
func TestProtocolOverRealTCP(t *testing.T) {
	const n = 3
	addrs := make([]string, n)
	for i := range addrs {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		addrs[i] = l.Addr().String()
		l.Close()
	}
	tuples := NewDealer(n, 77).CmpTuples()
	diffs := []int64{-500, 200, 200} // sum -100 < 0
	results := make([]bool, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for p := 0; p < n; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			conn, err := transport.DialMesh(p, n, addrs, 5*time.Second)
			if err != nil {
				errs[p] = err
				return
			}
			defer conn.Close()
			results[p], errs[p] = RunCompareParty(conn, diffs[p], &tuples[p])
		}(p)
	}
	wg.Wait()
	for p, err := range errs {
		if err != nil {
			t.Fatalf("party %d: %v", p, err)
		}
	}
	for p := 0; p < n; p++ {
		if !results[p] {
			t.Fatalf("party %d got false, want true", p)
		}
	}
}

// TestProtocolManyComparisonsOverTCP stresses frame ordering: many
// back-to-back comparisons over the same mesh.
func TestProtocolManyComparisonsOverTCP(t *testing.T) {
	const n = 3
	addrs := make([]string, n)
	for i := range addrs {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		addrs[i] = l.Addr().String()
		l.Close()
	}
	dealer := NewDealer(n, 78)
	const rounds = 20
	batches := make([][]CmpTuple, rounds)
	inputs := make([][]int64, rounds)
	wants := make([]bool, rounds)
	rng := rand.New(rand.NewPCG(6, 6))
	for r := 0; r < rounds; r++ {
		batches[r] = dealer.CmpTuples()
		inputs[r] = make([]int64, n)
		var sum int64
		for p := 0; p < n; p++ {
			inputs[r][p] = rng.Int64N(2_000_001) - 1_000_000
			sum += inputs[r][p]
		}
		wants[r] = sum < 0
	}
	errs := make([]error, n)
	var wg sync.WaitGroup
	for p := 0; p < n; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			conn, err := transport.DialMesh(p, n, addrs, 5*time.Second)
			if err != nil {
				errs[p] = err
				return
			}
			defer conn.Close()
			for r := 0; r < rounds; r++ {
				got, err := RunCompareParty(conn, inputs[r][p], &batches[r][p])
				if err != nil {
					errs[p] = err
					return
				}
				if got != wants[r] {
					errs[p] = &mismatchError{round: r}
					return
				}
			}
		}(p)
	}
	wg.Wait()
	for p, err := range errs {
		if err != nil {
			t.Fatalf("party %d: %v", p, err)
		}
	}
}

type mismatchError struct{ round int }

func (e *mismatchError) Error() string { return "comparison result mismatch" }
