package mpc

import (
	"fmt"

	"repro/internal/transport"
)

// RunCompareParty executes one party's role of the secure comparison over an
// arbitrary transport (e.g. a TCP mesh spanning real processes): the party
// contributes the private difference diff = a_p − b_p and learns only
// whether Σ_p diff_p < 0. The party's tuple must come from the same dealer
// batch as every other party's (the preprocessing phase).
func RunCompareParty(conn transport.Conn, diff int64, tup *CmpTuple) (bool, error) {
	return compareParty(conn, uint64(diff), tup)
}

// compareParty runs one party's role in the secure comparison protocol.
// diff is the party's private input d_p; the protocol decides whether
// D = Σ_p d_p (interpreted as a two's-complement signed value) is negative,
// i.e. whether the first joint operand is smaller. Every party learns the
// same single output bit.
//
// tup is this party's slice of the dealer's correlated randomness.
func compareParty(conn transport.Conn, diff uint64, tup *CmpTuple) (bool, error) {
	me, n := conn.Party(), conn.N()

	// Round 1 — fused masked opening of C = D + R. The inputs d_p already
	// form an additive sharing of D, so instead of a separate input-sharing
	// round each party broadcasts m_p = d_p + r_p directly, where r_p is its
	// additive share of the dealer's uniform mask R. Any n−1 of the m_p are
	// jointly uniform (each is masked by an r_p the observer does not hold),
	// and their sum opens only C = D + R — exactly what the old two-round
	// share-then-open sequence revealed, one round cheaper.
	var buf8 [8]byte
	putU64(buf8[:], diff+tup.RShare)
	opened, err := broadcast(conn, buf8[:])
	if err != nil {
		return false, err
	}
	c := uint64(0)
	for q := 0; q < n; q++ {
		c += getU64(opened[q])
	}

	// Borrow circuit over bits 0..K-2 of C − R. Locally derive the XOR shares
	// of the generate/propagate pair of every bit from the public bits of C
	// and the shared bits of R:
	//
	//	g_i = ¬c_i ∧ r_i          (borrow generated at bit i)
	//	p_i = ¬(c_i ⊕ r_i)        (borrow propagated through bit i)
	//
	// Constants fold into party 0's share.
	g := make([]Bit, NumLeaves)
	p := make([]Bit, NumLeaves)
	for i := 0; i < NumLeaves; i++ {
		ci := Bit(c>>uint(i)) & 1
		ri := tup.RBits[i]
		if ci == 0 {
			g[i] = ri
		}
		p[i] = ri
		if me == 0 {
			p[i] ^= 1 ^ ci
		}
	}

	// Log-depth tree reduction of (g, p) segments, ascending significance:
	// (G, P) = (g_hi ⊕ (p_hi ∧ g_lo), p_hi ∧ p_lo). Each level batches all
	// its AND gates into one opening round.
	triples := tup.Triples
	for len(g) > 1 {
		half := len(g) / 2
		xs := make([]Bit, 0, 2*half)
		ys := make([]Bit, 0, 2*half)
		for k := 0; k < half; k++ {
			lo, hi := 2*k, 2*k+1
			xs = append(xs, p[hi], p[hi])
			ys = append(ys, g[lo], p[lo])
		}
		if len(triples) < 2*half {
			return false, fmt.Errorf("mpc: out of bit triples")
		}
		zs, err := andBatch(conn, me, xs, ys, triples[:2*half])
		if err != nil {
			return false, err
		}
		triples = triples[2*half:]
		ng := make([]Bit, 0, half+1)
		np := make([]Bit, 0, half+1)
		for k := 0; k < half; k++ {
			ng = append(ng, g[2*k+1]^zs[2*k])
			np = append(np, zs[2*k+1])
		}
		if len(g)%2 == 1 { // odd element is most significant: stays last
			ng = append(ng, g[len(g)-1])
			np = append(np, p[len(p)-1])
		}
		g, p = ng, np
	}

	// Sign bit of D: d_{K-1} = c_{K-1} ⊕ r_{K-1} ⊕ borrow_{K-1}, where the
	// borrow into the top bit is the tree's total generate G.
	resShare := tup.RBits[K-1] ^ g[0]
	if me == 0 {
		resShare ^= Bit(c>>(K-1)) & 1
	}

	// Final round — open the comparison bit.
	openedBits, err := broadcast(conn, []byte{resShare & 1})
	if err != nil {
		return false, err
	}
	var result Bit
	for q := 0; q < n; q++ {
		result ^= openedBits[q][0]
	}
	return result&1 == 1, nil
}

// andBatch evaluates z_i = x_i ∧ y_i over XOR-shared bit vectors using one
// Beaver bit triple each and a single opening round. Masked values e = x ⊕ a
// and f = y ⊕ b for the whole batch are packed into one broadcast frame.
func andBatch(conn transport.Conn, me int, xs, ys []Bit, trip []BitTriple) ([]Bit, error) {
	k := len(xs)
	masked := make([]Bit, 2*k)
	for i := 0; i < k; i++ {
		masked[2*i] = (xs[i] ^ trip[i].A) & 1
		masked[2*i+1] = (ys[i] ^ trip[i].B) & 1
	}
	frame := make([]byte, (2*k+7)/8)
	packBits(frame, masked)
	opened, err := broadcast(conn, frame)
	if err != nil {
		return nil, err
	}
	zs := make([]Bit, k)
	for i := 0; i < k; i++ {
		var e, f Bit
		for q := 0; q < conn.N(); q++ {
			e ^= unpackBit(opened[q], 2*i)
			f ^= unpackBit(opened[q], 2*i+1)
		}
		z := trip[i].C ^ (f & trip[i].A) ^ (e & trip[i].B)
		if me == 0 {
			z ^= e & f
		}
		zs[i] = z & 1
	}
	return zs, nil
}

// broadcast sends data to every peer and collects every peer's frame for the
// same round. The returned slice is indexed by party; the caller's own frame
// sits at its own index.
func broadcast(conn transport.Conn, data []byte) ([][]byte, error) {
	me, n := conn.Party(), conn.N()
	out := make([][]byte, n)
	out[me] = data
	for q := 0; q < n; q++ {
		if q == me {
			continue
		}
		if err := conn.Send(q, data); err != nil {
			return nil, fmt.Errorf("mpc: broadcast to %d: %w", q, err)
		}
	}
	for q := 0; q < n; q++ {
		if q == me {
			continue
		}
		msg, err := conn.Recv(q)
		if err != nil {
			return nil, fmt.Errorf("mpc: broadcast from %d: %w", q, err)
		}
		if len(msg) != len(data) {
			return nil, fmt.Errorf("mpc: broadcast frame size mismatch from %d: %d != %d", q, len(msg), len(data))
		}
		out[q] = msg
	}
	return out, nil
}
