package mpc

import (
	"fmt"
	"math/rand/v2"
	"sync"
	"time"

	"repro/internal/transport"
)

// The batched comparison runs k independent comparisons inside ONE
// RoundsPerCompare-round protocol instance: input shares, masked openings,
// circuit-level AND openings and result bits of all k instances travel in
// the same frames. Communication rounds — the latency-dominated cost on real
// networks — are paid once per batch instead of once per comparison.
//
// FedRoad uses this for the TM-tree's tournament build, whose level-wise
// comparisons are independent by construction (§VI): a batch push of n items
// costs n−1 comparisons in only ⌈log₂ n⌉ batched protocol instances.

// RunCompareBatchParty executes one party's role for k comparisons at once.
// diffs[i] is the party's private difference of instance i; tups[i] its
// dealer tuple for instance i. Every party learns the k comparison bits.
func RunCompareBatchParty(conn transport.Conn, rng *rand.Rand, diffs []int64, tups []CmpTuple) ([]bool, error) {
	ud := make([]uint64, len(diffs))
	for i, d := range diffs {
		ud[i] = uint64(d)
	}
	return compareBatchParty(conn, rng, ud, tups)
}

func compareBatchParty(conn transport.Conn, rng *rand.Rand, diffs []uint64, tups []CmpTuple) ([]bool, error) {
	me, n := conn.Party(), conn.N()
	k := len(diffs)
	if len(tups) != k {
		return nil, fmt.Errorf("mpc: %d tuples for %d comparisons", len(tups), k)
	}
	if k == 0 {
		return nil, nil
	}

	// Round 1 — share all k inputs in one frame per peer.
	frame := make([]byte, 8*k)
	kept := make([]uint64, k)
	peerFrames := make([][]byte, n)
	for q := 0; q < n; q++ {
		if q != me {
			peerFrames[q] = make([]byte, 8*k)
		}
	}
	for i, d := range diffs {
		shares := ShareAdditive(rng, d, n)
		kept[i] = shares[me]
		for q := 0; q < n; q++ {
			if q != me {
				putU64(peerFrames[q][8*i:], shares[q])
			}
		}
	}
	for q := 0; q < n; q++ {
		if q == me {
			continue
		}
		if err := conn.Send(q, peerFrames[q]); err != nil {
			return nil, fmt.Errorf("mpc: batch input share to %d: %w", q, err)
		}
	}
	shareD := kept
	for q := 0; q < n; q++ {
		if q == me {
			continue
		}
		msg, err := conn.Recv(q)
		if err != nil {
			return nil, fmt.Errorf("mpc: batch input share from %d: %w", q, err)
		}
		if len(msg) != 8*k {
			return nil, fmt.Errorf("mpc: batch share frame size %d != %d", len(msg), 8*k)
		}
		for i := 0; i < k; i++ {
			shareD[i] += getU64(msg[8*i:])
		}
	}

	// Round 2 — masked openings C_i = D_i + R_i, all in one frame.
	for i := 0; i < k; i++ {
		putU64(frame[8*i:], shareD[i]+tups[i].RShare)
	}
	opened, err := broadcast(conn, frame)
	if err != nil {
		return nil, err
	}
	cs := make([]uint64, k)
	for q := 0; q < n; q++ {
		for i := 0; i < k; i++ {
			cs[i] += getU64(opened[q][8*i:])
		}
	}

	// Borrow circuits of all instances evaluated level-synchronously; the
	// AND gates of a level are opened in one frame across instances.
	gs := make([][]Bit, k)
	ps := make([][]Bit, k)
	for i := 0; i < k; i++ {
		g := make([]Bit, NumLeaves)
		p := make([]Bit, NumLeaves)
		for b := 0; b < NumLeaves; b++ {
			cb := Bit(cs[i]>>uint(b)) & 1
			rb := tups[i].RBits[b]
			if cb == 0 {
				g[b] = rb
			}
			p[b] = rb
			if me == 0 {
				p[b] ^= 1 ^ cb
			}
		}
		gs[i], ps[i] = g, p
	}
	triplesUsed := 0
	for len(gs[0]) > 1 {
		half := len(gs[0]) / 2
		var xs, ys []Bit
		var trip []BitTriple
		for i := 0; i < k; i++ {
			for pr := 0; pr < half; pr++ {
				lo, hi := 2*pr, 2*pr+1
				xs = append(xs, ps[i][hi], ps[i][hi])
				ys = append(ys, gs[i][lo], ps[i][lo])
			}
			trip = append(trip, tups[i].Triples[triplesUsed:triplesUsed+2*half]...)
		}
		zs, err := andBatch(conn, me, xs, ys, trip)
		if err != nil {
			return nil, err
		}
		triplesUsed += 2 * half
		off := 0
		for i := 0; i < k; i++ {
			ng := make([]Bit, 0, half+1)
			np := make([]Bit, 0, half+1)
			for pr := 0; pr < half; pr++ {
				ng = append(ng, gs[i][2*pr+1]^zs[off+2*pr])
				np = append(np, zs[off+2*pr+1])
			}
			if len(gs[i])%2 == 1 {
				ng = append(ng, gs[i][len(gs[i])-1])
				np = append(np, ps[i][len(ps[i])-1])
			}
			gs[i], ps[i] = ng, np
			off += 2 * half
		}
	}

	// Final round — open all k result bits in one packed frame.
	resShares := make([]Bit, k)
	for i := 0; i < k; i++ {
		resShares[i] = tups[i].RBits[K-1] ^ gs[i][0]
		if me == 0 {
			resShares[i] ^= Bit(cs[i]>>(K-1)) & 1
		}
	}
	resFrame := make([]byte, (k+7)/8)
	packBits(resFrame, resShares)
	openedBits, err := broadcast(conn, resFrame)
	if err != nil {
		return nil, err
	}
	out := make([]bool, k)
	for i := 0; i < k; i++ {
		var bit Bit
		for q := 0; q < n; q++ {
			bit ^= unpackBit(openedBits[q], i)
		}
		out[i] = bit == 1
	}
	return out, nil
}

// batchCost is the calibrated wire cost of one batched comparison run.
type batchCost struct {
	bytes int64
	msgs  int64
}

// CompareBatch decides, for each instance i, whether Σ_p diffs[i][p] < 0 —
// k secure comparisons in a single RoundsPerCompare-round protocol run.
// In ideal mode the per-batch-size wire cost is calibrated lazily against
// one protocol-mode execution and cached.
func (e *Engine) CompareBatch(diffs [][]int64) ([]bool, error) {
	k := len(diffs)
	if k == 0 {
		return nil, nil
	}
	for i, d := range diffs {
		if len(d) != e.n {
			return nil, fmt.Errorf("mpc: instance %d has %d inputs for %d parties", i, len(d), e.n)
		}
	}
	cost, err := e.batchCostFor(k)
	if err != nil {
		return nil, err
	}
	var out []bool
	switch e.mode {
	case ModeIdeal:
		out = make([]bool, k)
		for i, d := range diffs {
			var sum int64
			for _, v := range d {
				sum += v
			}
			out[i] = sum < 0
		}
	case ModeProtocol:
		out, err = e.runBatchProtocol(diffs)
		if err != nil {
			return nil, err
		}
		e.mem.ResetStats()
	default:
		return nil, fmt.Errorf("mpc: unknown mode %d", e.mode)
	}
	e.stats.Compares += int64(k)
	e.stats.Rounds += int64(RoundsPerCompare)
	e.stats.Bytes += cost.bytes
	e.stats.Messages += cost.msgs
	e.stats.SimNet += e.simNetFor(cost.bytes)
	e.instr.record(int64(k), int64(RoundsPerCompare), cost.bytes, cost.msgs)
	return out, nil
}

// simNetFor applies the paper's cost model to a protocol run's total bytes.
func (e *Engine) simNetFor(totalBytes int64) time.Duration {
	perParty := float64(totalBytes) / float64(e.n)
	return time.Duration(float64(RoundsPerCompare)*float64(e.netm.Latency) +
		perParty/e.netm.Bandwidth*float64(time.Second))
}

// batchCostFor returns (calibrating on first use) the wire cost of a k-batch.
// The cache is shared across the engine's fork family with single-flight
// admission: concurrent forks missing on the same size elect one leader to
// calibrate while the others wait for its result.
func (e *Engine) batchCostFor(k int) (batchCost, error) {
	c, ok, _ := e.calib.begin(k)
	if ok {
		return c, nil
	}
	// This engine is the calibration leader for size k.
	// Calibration: run one protocol-mode batch of size k on zero inputs.
	zero := make([][]int64, k)
	for i := range zero {
		zero[i] = make([]int64, e.n)
	}
	if _, err := e.runBatchProtocol(zero); err != nil {
		err = fmt.Errorf("mpc: batch calibration (k=%d): %w", k, err)
		e.calib.finish(k, batchCost{}, err)
		return batchCost{}, err
	}
	st := e.mem.Stats()
	c = batchCost{bytes: st.Bytes, msgs: st.Messages}
	e.mem.ResetStats()
	e.calib.finish(k, c, nil)
	return c, nil
}

// runBatchProtocol executes a batched comparison under the engine's failure
// policy (transient-failure retry with drained transport, poisoning on
// unrecoverable errors — see retryProtocol).
func (e *Engine) runBatchProtocol(diffs [][]int64) ([]bool, error) {
	var result []bool
	err := e.retryProtocol(func() error {
		var err error
		result, err = e.runBatchProtocolOnce(diffs)
		return err
	})
	if err != nil {
		return nil, err
	}
	return result, nil
}

// runBatchProtocolOnce executes one batched comparison across party
// goroutines.
func (e *Engine) runBatchProtocolOnce(diffs [][]int64) ([]bool, error) {
	k := len(diffs)
	tuples := make([][]CmpTuple, e.n) // [party][instance]
	for p := 0; p < e.n; p++ {
		tuples[p] = make([]CmpTuple, k)
	}
	for i := 0; i < k; i++ {
		ts := e.tuplesForCompare()
		for p := 0; p < e.n; p++ {
			tuples[p][i] = ts[p]
		}
	}
	results := make([][]bool, e.n)
	errs := make([]error, e.n)
	var wg sync.WaitGroup
	for p := 0; p < e.n; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			ud := make([]uint64, k)
			for i := 0; i < k; i++ {
				ud[i] = uint64(diffs[i][p])
			}
			results[p], errs[p] = compareBatchParty(e.conns[p], e.rngs[p], ud, tuples[p])
		}(p)
	}
	wg.Wait()
	for p, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("mpc: party %d: %w", p, err)
		}
	}
	for p := 1; p < e.n; p++ {
		for i := 0; i < k; i++ {
			if results[p][i] != results[0][i] {
				return nil, fmt.Errorf("mpc: parties disagree on batch instance %d", i)
			}
		}
	}
	return results[0], nil
}
