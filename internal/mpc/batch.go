package mpc

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/transport"
)

// The batched comparison runs k independent comparisons inside ONE
// RoundsPerCompare-round protocol instance: masked openings, circuit-level
// AND openings and result bits of all k instances travel in the same frames.
// Communication rounds — the latency-dominated cost on real networks — are
// paid once per batch instead of once per comparison.
//
// The default path is word-packed (see pack.go): each circuit wire holds one
// bit of every instance in machine-word lanes, so the level-synchronous
// Beaver evaluation is 64-way SIMD in plain uint64 arithmetic and each
// gate's masked bits serialize as a dense ⌈k/8⌉-byte vector. The unpacked
// byte-per-bit path is retained (Params.NoPack / FEDROAD_MPC_NOPACK) as a
// differential oracle for the packed one; both produce bit-identical
// results and round counts, differing only in frame layout and CPU cost.
//
// FedRoad uses batching for the TM-tree's tournament build, the SPSP
// frontier's μ-updates and the CH builder's witness searches, whose
// level-wise comparisons are independent by construction (§VI).

// RunCompareBatchParty executes one party's role for k comparisons at once
// over an arbitrary transport, using the word-packed wire format. diffs[i]
// is the party's private difference of instance i; tups[i] its dealer tuple
// for instance i. Every party learns the k comparison bits.
func RunCompareBatchParty(conn transport.Conn, diffs []int64, tups []CmpTuple) ([]bool, error) {
	ud := make([]uint64, len(diffs))
	for i, d := range diffs {
		ud[i] = uint64(d)
	}
	return compareBatchPackedParty(conn, ud, tups)
}

// compareBatchPackedParty is the word-packed batched comparison protocol.
// Its transcript carries, per round, one dense bit-vector per circuit gate
// (lane i = instance i); its round count and comparison results are
// identical to the unpacked path's.
func compareBatchPackedParty(conn transport.Conn, diffs []uint64, tups []CmpTuple) ([]bool, error) {
	me, n := conn.Party(), conn.N()
	k := len(diffs)
	if len(tups) != k {
		return nil, fmt.Errorf("mpc: %d tuples for %d comparisons", len(tups), k)
	}
	if k == 0 {
		return nil, nil
	}
	W := wordsFor(k)
	vb := packedVecBytes(k)

	// Round 1 — fused masked openings C_i = D_i + R_i, all in one frame.
	// As in the scalar protocol, the inputs d_p already form an additive
	// sharing of each D_i, so each party broadcasts d_p + r_p directly.
	frame := getFrame(8 * k)
	for i, d := range diffs {
		putU64(frame[8*i:], d+tups[i].RShare)
	}
	opened, err := broadcast(conn, frame)
	if err != nil {
		putFrame(frame)
		return nil, err
	}
	cs := make([]uint64, k)
	for q := 0; q < n; q++ {
		for i := 0; i < k; i++ {
			cs[i] += getU64(opened[q][8*i:])
		}
	}
	putFrame(frame)

	// Transpose the correlated randomness and the public C bits into word
	// lanes. rb[b*W+w] is this party's packed XOR share of bit b of R across
	// instances 64w..64w+63; cb likewise holds the (public) bits of C.
	rb := packRBitLanes(tups, W)
	wt := packTripleLanes(tups, W)
	cb := getWords(K * W)
	defer putWords(cb)
	for i, c := range cs {
		wi, bit := i>>6, uint(i&63)
		for b := 0; b < K; b++ {
			if c>>uint(b)&1 == 1 {
				cb[b*W+wi] |= 1 << bit
			}
		}
	}

	// Leaf shares, word-parallel over instances:
	//
	//	g_b = ¬c_b ∧ r_b          (borrow generated at bit b)
	//	p_b = ¬(c_b ⊕ r_b)        (borrow propagated through bit b)
	//
	// Constants fold into party 0's share. Lanes ≥ k hold garbage derived
	// from public values only; serialization masks them to zero.
	g := getWords(NumLeaves * W)
	p := getWords(NumLeaves * W)
	defer putWords(g)
	defer putWords(p)
	for b := 0; b < NumLeaves; b++ {
		for w := 0; w < W; w++ {
			cw := cb[b*W+w]
			rw := rb[b*W+w]
			g[b*W+w] = rw &^ cw
			pv := rw
			if me == 0 {
				pv ^= ^cw
			}
			p[b*W+w] = pv
		}
	}

	// Log-depth tree reduction of (g, p) segments, ascending significance:
	// (G, P) = (g_hi ⊕ (p_hi ∧ g_lo), p_hi ∧ p_lo). Each level opens all its
	// gates' masked vectors in one frame; gate t consumes word triple t, the
	// same triple the unpacked path spends on that gate of every instance.
	ew := getWords(W)
	fw := getWords(W)
	zw := getWords(2 * W) // z of the pair's two gates
	defer putWords(ew)
	defer putWords(fw)
	defer putWords(zw)
	triplesUsed := 0
	leaves := NumLeaves
	for leaves > 1 {
		half := leaves / 2
		gates := 2 * half
		frame := getFrame(gates * 2 * vb)
		for pr := 0; pr < half; pr++ {
			lo, hi := 2*pr, 2*pr+1
			for sub := 0; sub < 2; sub++ {
				// Gate 2pr: (p_hi ∧ g_lo); gate 2pr+1: (p_hi ∧ p_lo).
				t := triplesUsed + 2*pr + sub
				y := g
				if sub == 1 {
					y = p
				}
				off := (2*pr + sub) * 2 * vb
				for w := 0; w < W; w++ {
					tr := &wt[t*W+w]
					ew[w] = p[hi*W+w] ^ tr.A
					fw[w] = y[lo*W+w] ^ tr.B
				}
				packWordVec(frame[off:], ew, k)
				packWordVec(frame[off+vb:], fw, k)
			}
		}
		opened, err := broadcast(conn, frame)
		if err != nil {
			putFrame(frame)
			return nil, err
		}
		for pr := 0; pr < half; pr++ {
			for sub := 0; sub < 2; sub++ {
				t := triplesUsed + 2*pr + sub
				off := (2*pr + sub) * 2 * vb
				for w := 0; w < W; w++ {
					ew[w], fw[w] = 0, 0
				}
				for q := 0; q < n; q++ {
					xorWordVec(ew, opened[q][off:off+vb], k)
					xorWordVec(fw, opened[q][off+vb:off+2*vb], k)
				}
				for w := 0; w < W; w++ {
					tr := &wt[t*W+w]
					z := tr.C ^ (fw[w] & tr.A) ^ (ew[w] & tr.B)
					if me == 0 {
						z ^= ew[w] & fw[w]
					}
					zw[sub*W+w] = z
				}
			}
			// Combine in place: pair pr writes index pr, reads 2pr/2pr+1 —
			// always at or beyond the write cursor.
			hi := 2*pr + 1
			for w := 0; w < W; w++ {
				g[pr*W+w] = g[hi*W+w] ^ zw[w]
				p[pr*W+w] = zw[W+w]
			}
		}
		if leaves%2 == 1 { // odd element is most significant: stays last
			copy(g[half*W:(half+1)*W], g[(leaves-1)*W:leaves*W])
			copy(p[half*W:(half+1)*W], p[(leaves-1)*W:leaves*W])
		}
		putFrame(frame)
		triplesUsed += gates
		leaves = half + leaves%2
	}

	// Final round — open all k result bits in one packed vector:
	// d_{K-1} = c_{K-1} ⊕ r_{K-1} ⊕ G.
	res := getWords(W)
	defer putWords(res)
	for w := 0; w < W; w++ {
		res[w] = rb[(K-1)*W+w] ^ g[w]
		if me == 0 {
			res[w] ^= cb[(K-1)*W+w]
		}
	}
	resFrame := getFrame(vb)
	packWordVec(resFrame, res, k)
	openedBits, err := broadcast(conn, resFrame)
	if err != nil {
		putFrame(resFrame)
		return nil, err
	}
	for w := 0; w < W; w++ {
		res[w] = 0
	}
	for q := 0; q < n; q++ {
		xorWordVec(res, openedBits[q], k)
	}
	putFrame(resFrame)
	out := make([]bool, k)
	for i := 0; i < k; i++ {
		out[i] = res[i>>6]>>(uint(i)&63)&1 == 1
	}
	return out, nil
}

// compareBatchParty is the unpacked (byte-per-bit) batched comparison,
// retained as the differential twin of the packed path: same rounds, same
// triple consumption, same results, different frame layout.
func compareBatchParty(conn transport.Conn, diffs []uint64, tups []CmpTuple) ([]bool, error) {
	me, n := conn.Party(), conn.N()
	k := len(diffs)
	if len(tups) != k {
		return nil, fmt.Errorf("mpc: %d tuples for %d comparisons", len(tups), k)
	}
	if k == 0 {
		return nil, nil
	}

	// Round 1 — fused masked openings C_i = D_i + R_i, all in one frame.
	frame := make([]byte, 8*k)
	for i, d := range diffs {
		putU64(frame[8*i:], d+tups[i].RShare)
	}
	opened, err := broadcast(conn, frame)
	if err != nil {
		return nil, err
	}
	cs := make([]uint64, k)
	for q := 0; q < n; q++ {
		for i := 0; i < k; i++ {
			cs[i] += getU64(opened[q][8*i:])
		}
	}

	// Borrow circuits of all instances evaluated level-synchronously; the
	// AND gates of a level are opened in one frame across instances.
	gs := make([][]Bit, k)
	ps := make([][]Bit, k)
	for i := 0; i < k; i++ {
		g := make([]Bit, NumLeaves)
		p := make([]Bit, NumLeaves)
		for b := 0; b < NumLeaves; b++ {
			cb := Bit(cs[i]>>uint(b)) & 1
			rb := tups[i].RBits[b]
			if cb == 0 {
				g[b] = rb
			}
			p[b] = rb
			if me == 0 {
				p[b] ^= 1 ^ cb
			}
		}
		gs[i], ps[i] = g, p
	}
	triplesUsed := 0
	for len(gs[0]) > 1 {
		half := len(gs[0]) / 2
		var xs, ys []Bit
		var trip []BitTriple
		for i := 0; i < k; i++ {
			for pr := 0; pr < half; pr++ {
				lo, hi := 2*pr, 2*pr+1
				xs = append(xs, ps[i][hi], ps[i][hi])
				ys = append(ys, gs[i][lo], ps[i][lo])
			}
			trip = append(trip, tups[i].Triples[triplesUsed:triplesUsed+2*half]...)
		}
		zs, err := andBatch(conn, me, xs, ys, trip)
		if err != nil {
			return nil, err
		}
		triplesUsed += 2 * half
		off := 0
		for i := 0; i < k; i++ {
			ng := make([]Bit, 0, half+1)
			np := make([]Bit, 0, half+1)
			for pr := 0; pr < half; pr++ {
				ng = append(ng, gs[i][2*pr+1]^zs[off+2*pr])
				np = append(np, zs[off+2*pr+1])
			}
			if len(gs[i])%2 == 1 {
				ng = append(ng, gs[i][len(gs[i])-1])
				np = append(np, ps[i][len(ps[i])-1])
			}
			gs[i], ps[i] = ng, np
			off += 2 * half
		}
	}

	// Final round — open all k result bits in one packed frame.
	resShares := make([]Bit, k)
	for i := 0; i < k; i++ {
		resShares[i] = tups[i].RBits[K-1] ^ gs[i][0]
		if me == 0 {
			resShares[i] ^= Bit(cs[i]>>(K-1)) & 1
		}
	}
	resFrame := make([]byte, (k+7)/8)
	packBits(resFrame, resShares)
	openedBits, err := broadcast(conn, resFrame)
	if err != nil {
		return nil, err
	}
	out := make([]bool, k)
	for i := 0; i < k; i++ {
		var bit Bit
		for q := 0; q < n; q++ {
			bit ^= unpackBit(openedBits[q], i)
		}
		out[i] = bit == 1
	}
	return out, nil
}

// batchWireCost is the analytic wire cost of one k-batch comparison among n
// parties: exact payload bytes and message count as transport.Mem would
// account them (every byte counted once, at its sender). Both protocol paths
// are data-oblivious, so the cost is a pure function of (n, k, layout):
//
//	masked open   n(n−1) frames of 8k bytes
//	circuit level n(n−1) frames of gates·2·⌈k/8⌉ (packed) or
//	              ⌈gates·2·k/8⌉ (unpacked global bit-packing)
//	result open   n(n−1) frames of ⌈k/8⌉ bytes
//
// This replaces the old per-size protocol-run calibration: the model is
// exact by construction (validated against measured transport stats in
// pack_test.go), costs nothing at query time, and makes the batching
// decision monotone — a k-batch never costs more rounds than k sequential
// comparisons, so batching can no longer regress below unbatched.
func batchWireCost(n, k int, packed bool) (bytes, msgs int64) {
	if k == 0 {
		return 0, 0
	}
	per := 8 * k // masked open
	vb := packedVecBytes(k)
	leaves := NumLeaves
	for leaves > 1 {
		half := leaves / 2
		gates := 2 * half
		if packed {
			per += gates * 2 * vb
		} else {
			per += (gates*2*k + 7) / 8
		}
		leaves = half + leaves%2
	}
	per += vb // result open
	pairs := int64(n) * int64(n-1)
	return pairs * int64(per), pairs * int64(RoundsPerCompare)
}

// CompareBatch decides, for each instance i, whether Σ_p diffs[i][p] < 0 —
// k secure comparisons in a single RoundsPerCompare-round protocol run.
// Wire costs are accounted analytically via batchWireCost.
func (e *Engine) CompareBatch(diffs [][]int64) ([]bool, error) {
	k := len(diffs)
	if k == 0 {
		return nil, nil
	}
	for i, d := range diffs {
		if len(d) != e.n {
			return nil, fmt.Errorf("mpc: instance %d has %d inputs for %d parties", i, len(d), e.n)
		}
	}
	bytes, msgs := batchWireCost(e.n, k, !e.noPack)
	var out []bool
	var err error
	switch e.mode {
	case ModeIdeal:
		out = make([]bool, k)
		for i, d := range diffs {
			var sum int64
			for _, v := range d {
				sum += v
			}
			out[i] = sum < 0
		}
	case ModeProtocol:
		out, err = e.runBatchProtocol(diffs)
		if err != nil {
			return nil, err
		}
		if e.mem != nil {
			e.mem.ResetStats()
		}
	default:
		return nil, fmt.Errorf("mpc: unknown mode %d", e.mode)
	}
	e.stats.Compares += int64(k)
	e.stats.Rounds += int64(RoundsPerCompare)
	e.stats.Bytes += bytes
	e.stats.Messages += msgs
	e.stats.SimNet += e.simNetFor(bytes)
	e.instr.record(int64(k), int64(RoundsPerCompare), bytes, msgs)
	return out, nil
}

// simNetFor applies the paper's cost model to a protocol run's total bytes.
func (e *Engine) simNetFor(totalBytes int64) time.Duration {
	perParty := float64(totalBytes) / float64(e.n)
	return time.Duration(float64(RoundsPerCompare)*float64(e.netm.Latency) +
		perParty/e.netm.Bandwidth*float64(time.Second))
}

// runBatchProtocol executes a batched comparison under the engine's failure
// policy (transient-failure retry with drained transport, poisoning on
// unrecoverable errors — see retryProtocol).
func (e *Engine) runBatchProtocol(diffs [][]int64) ([]bool, error) {
	var result []bool
	err := e.retryProtocol(func() error {
		var err error
		result, err = e.runBatchProtocolOnce(diffs)
		return err
	})
	if err != nil {
		return nil, err
	}
	return result, nil
}

// runBatchProtocolOnce executes one batched comparison across party
// goroutines, on the packed or unpacked path per the engine's config.
func (e *Engine) runBatchProtocolOnce(diffs [][]int64) ([]bool, error) {
	k := len(diffs)
	tuples := make([][]CmpTuple, e.n) // [party][instance]
	for p := 0; p < e.n; p++ {
		tuples[p] = make([]CmpTuple, k)
	}
	for i := 0; i < k; i++ {
		ts := e.tuplesForCompare()
		for p := 0; p < e.n; p++ {
			tuples[p][i] = ts[p]
		}
	}
	party := compareBatchPackedParty
	if e.noPack {
		party = compareBatchParty
	}
	start := time.Now()
	results := make([][]bool, e.n)
	errs := make([]error, e.n)
	var wg sync.WaitGroup
	for p := 0; p < e.n; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			ud := make([]uint64, k)
			for i := 0; i < k; i++ {
				ud[i] = uint64(diffs[i][p])
			}
			results[p], errs[p] = party(e.conns[p], ud, tuples[p])
		}(p)
	}
	wg.Wait()
	for p, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("mpc: party %d: %w", p, err)
		}
	}
	e.observeRounds(time.Since(start), RoundsPerCompare)
	for p := 1; p < e.n; p++ {
		for i := 0; i < k; i++ {
			if results[p][i] != results[0][i] {
				return nil, fmt.Errorf("mpc: parties disagree on batch instance %d", i)
			}
		}
	}
	return results[0], nil
}
