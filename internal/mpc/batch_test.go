package mpc

import (
	"math/rand/v2"
	"testing"
)

func TestCompareBatchMatchesPlaintext(t *testing.T) {
	for _, mode := range []Mode{ModeIdeal, ModeProtocol} {
		for _, n := range []int{2, 3, 5} {
			e, err := NewEngine(Params{Parties: n, Mode: mode, Seed: 11})
			if err != nil {
				t.Fatal(err)
			}
			rng := rand.New(rand.NewPCG(7, 7))
			for _, k := range []int{1, 2, 3, 7, 16, 33} {
				diffs := make([][]int64, k)
				want := make([]bool, k)
				for i := range diffs {
					diffs[i] = make([]int64, n)
					var sum int64
					for p := range diffs[i] {
						diffs[i][p] = rng.Int64N(1<<40) - (1 << 39)
						sum += diffs[i][p]
					}
					want[i] = sum < 0
				}
				got, err := e.CompareBatch(diffs)
				if err != nil {
					t.Fatal(err)
				}
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("mode %v n=%d k=%d instance %d: got %v want %v",
							mode, n, k, i, got[i], want[i])
					}
				}
			}
		}
	}
}

func TestCompareBatchEdgeCases(t *testing.T) {
	e, err := NewEngine(Params{Parties: 3, Mode: ModeProtocol, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	out, err := e.CompareBatch(nil)
	if err != nil || out != nil {
		t.Fatalf("empty batch: %v %v", out, err)
	}
	cases := [][]int64{
		{0, 0, 0},                            // equal -> false (strict)
		{-1, 0, 0},                           // barely less
		{1, 0, 0},                            // barely greater
		{1 << 44, -(1 << 44), -1},            // cancellation
		{-(1 << 45), 1 << 44, (1 << 44) - 1}, // large magnitudes, sum -1
	}
	got, err := e.CompareBatch(cases)
	if err != nil {
		t.Fatal(err)
	}
	want := []bool{false, true, false, true, true}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("case %d: got %v want %v", i, got[i], want[i])
		}
	}
	if _, err := e.CompareBatch([][]int64{{1, 2}}); err == nil {
		t.Fatal("mis-sized instance accepted")
	}
}

func TestCompareBatchRoundEconomy(t *testing.T) {
	// The whole point: a k-batch pays RoundsPerCompare rounds once, while k
	// sequential comparisons pay it k times. Bytes stay roughly linear.
	e, err := NewEngine(Params{Parties: 3, Mode: ModeIdeal, Seed: 17})
	if err != nil {
		t.Fatal(err)
	}
	const k = 16
	diffs := make([][]int64, k)
	for i := range diffs {
		diffs[i] = []int64{int64(i) - 8, 1, 1}
	}
	if _, err := e.CompareBatch(diffs); err != nil {
		t.Fatal(err)
	}
	batchStats := e.Stats()
	e.ResetStats()
	for _, d := range diffs {
		if _, err := e.Compare(d); err != nil {
			t.Fatal(err)
		}
	}
	seqStats := e.Stats()
	if batchStats.Compares != seqStats.Compares {
		t.Fatalf("comparison counts differ: %d vs %d", batchStats.Compares, seqStats.Compares)
	}
	if batchStats.Rounds*k != seqStats.Rounds {
		t.Fatalf("batch rounds %d, sequential %d (want factor %d)",
			batchStats.Rounds, seqStats.Rounds, k)
	}
	if batchStats.SimNet >= seqStats.SimNet/4 {
		t.Fatalf("batching should slash simulated network time: %v vs %v",
			batchStats.SimNet, seqStats.SimNet)
	}
	// Bytes within 2x of sequential (framing overhead shrinks, packing helps).
	if batchStats.Bytes > seqStats.Bytes {
		t.Fatalf("batch bytes %d exceed sequential %d", batchStats.Bytes, seqStats.Bytes)
	}
}

func TestCompareBatchIdealAccountingMatchesProtocol(t *testing.T) {
	mk := func(mode Mode) Stats {
		e, err := NewEngine(Params{Parties: 3, Mode: mode, Seed: 19})
		if err != nil {
			t.Fatal(err)
		}
		diffs := [][]int64{{-5, 2, 2}, {7, -3, -3}, {1, 1, 1}}
		if _, err := e.CompareBatch(diffs); err != nil {
			t.Fatal(err)
		}
		return e.Stats()
	}
	if a, b := mk(ModeIdeal), mk(ModeProtocol); a != b {
		t.Fatalf("batch stats diverge:\nideal:    %+v\nprotocol: %+v", a, b)
	}
}

func TestCompareBatchOfOneMatchesSingle(t *testing.T) {
	e, err := NewEngine(Params{Parties: 3, Mode: ModeProtocol, Seed: 23})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(3, 3))
	for trial := 0; trial < 30; trial++ {
		d := []int64{rng.Int64N(1001) - 500, rng.Int64N(1001) - 500, rng.Int64N(1001) - 500}
		single, err := e.Compare(d)
		if err != nil {
			t.Fatal(err)
		}
		batch, err := e.CompareBatch([][]int64{d})
		if err != nil {
			t.Fatal(err)
		}
		if single != batch[0] {
			t.Fatalf("trial %d: single %v != batch-of-one %v", trial, single, batch[0])
		}
	}
}
