package mpc

import (
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func testRNG(seed uint64) *rand.Rand {
	return rand.New(rand.NewPCG(seed, seed^77))
}

func TestShareAdditiveRoundTrip(t *testing.T) {
	rng := testRNG(1)
	f := func(secret uint64, nRaw uint8) bool {
		n := 2 + int(nRaw%7)
		shares := ShareAdditive(rng, secret, n)
		if len(shares) != n {
			return false
		}
		return ReconstructAdditive(shares) == secret
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestShareAdditiveSharesVary(t *testing.T) {
	rng := testRNG(2)
	a := ShareAdditive(rng, 42, 3)
	b := ShareAdditive(rng, 42, 3)
	if a[0] == b[0] && a[1] == b[1] && a[2] == b[2] {
		t.Fatal("two sharings of the same secret produced identical shares")
	}
}

func TestShareBitRoundTrip(t *testing.T) {
	rng := testRNG(3)
	for n := 2; n <= 6; n++ {
		for bit := Bit(0); bit <= 1; bit++ {
			for i := 0; i < 50; i++ {
				shares := ShareBit(rng, bit, n)
				if got := ReconstructBit(shares); got != bit {
					t.Fatalf("n=%d bit=%d reconstructed %d", n, bit, got)
				}
			}
		}
	}
}

func TestShareUniformity(t *testing.T) {
	// Any n-1 additive shares of a fixed secret must look uniform: count
	// high-bit frequency of the non-constant shares over many sharings.
	rng := testRNG(4)
	const trials = 4000
	ones := 0
	for i := 0; i < trials; i++ {
		shares := ShareAdditive(rng, 12345, 3)
		if shares[1]>>63 == 1 {
			ones++
		}
	}
	if ones < trials/2-200 || ones > trials/2+200 {
		t.Fatalf("share high bit frequency %d/%d far from uniform", ones, trials)
	}
}

func TestPackUnpackBits(t *testing.T) {
	bits := []Bit{1, 0, 1, 1, 0, 0, 1, 0, 1, 1, 1}
	buf := make([]byte, (len(bits)+7)/8)
	packBits(buf, bits)
	for i, b := range bits {
		if got := unpackBit(buf, i); got != b {
			t.Fatalf("bit %d: got %d want %d", i, got, b)
		}
	}
}

func TestDealerTupleConsistency(t *testing.T) {
	for _, n := range []int{2, 3, 5} {
		d := NewDealer(n, 99)
		for trial := 0; trial < 10; trial++ {
			tuples := d.CmpTuples()
			if len(tuples) != n {
				t.Fatalf("n=%d: got %d tuples", n, len(tuples))
			}
			// Additive shares of R must agree with the XOR-shared bits of R.
			var r uint64
			for _, tp := range tuples {
				r += tp.RShare
			}
			for i := 0; i < K; i++ {
				var bit Bit
				for _, tp := range tuples {
					bit ^= tp.RBits[i]
				}
				if bit != Bit(r>>uint(i))&1 {
					t.Fatalf("n=%d: R bit %d inconsistent with additive sharing", n, i)
				}
			}
			// Every triple must satisfy c = a AND b jointly.
			for idx := 0; idx < TriplesPerCompare; idx++ {
				var a, b, c Bit
				for _, tp := range tuples {
					a ^= tp.Triples[idx].A
					b ^= tp.Triples[idx].B
					c ^= tp.Triples[idx].C
				}
				if c != a&b {
					t.Fatalf("n=%d: triple %d violated: a=%d b=%d c=%d", n, idx, a, b, c)
				}
			}
		}
	}
}

func TestDealerDeterministic(t *testing.T) {
	a := NewDealer(3, 7).CmpTuples()
	b := NewDealer(3, 7).CmpTuples()
	if a[0].RShare != b[0].RShare || a[1].RBits != b[1].RBits {
		t.Fatal("same seed produced different tuples")
	}
	c := NewDealer(3, 8).CmpTuples()
	if a[0].RShare == c[0].RShare && a[0].RBits == c[0].RBits {
		t.Fatal("different seeds produced identical tuples")
	}
}

func TestCircuitSizeConstants(t *testing.T) {
	if combinesFor(63) != 62 {
		t.Fatalf("combinesFor(63) = %d, want 62", combinesFor(63))
	}
	if circuitLevels(63) != 6 {
		t.Fatalf("circuitLevels(63) = %d, want 6", circuitLevels(63))
	}
	// Fused masked opening + 6 circuit levels + result opening.
	if RoundsPerCompare != 8 {
		t.Fatalf("RoundsPerCompare = %d, want 8", RoundsPerCompare)
	}
	if TriplesPerCompare != 124 {
		t.Fatalf("TriplesPerCompare = %d, want 124", TriplesPerCompare)
	}
}

func newTestEngine(t *testing.T, n int, mode Mode) *Engine {
	t.Helper()
	e, err := NewEngine(Params{Parties: n, Mode: mode, Seed: 1234})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestProtocolCompareBasic(t *testing.T) {
	e := newTestEngine(t, 3, ModeProtocol)
	cases := []struct {
		diffs []int64
		want  bool
	}{
		{[]int64{-1, 0, 0}, true},
		{[]int64{1, 0, 0}, false},
		{[]int64{0, 0, 0}, false}, // strict comparison: equal is not less
		{[]int64{-100, 50, 49}, true},
		{[]int64{-100, 50, 51}, false},
		{[]int64{1 << 40, -(1 << 40), -1}, true},
		{[]int64{1 << 40, -(1 << 40), 1}, false},
		{[]int64{-(1 << 44), 1 << 40, 1 << 40}, true},
	}
	for _, c := range cases {
		got, err := e.Compare(c.diffs)
		if err != nil {
			t.Fatal(err)
		}
		if got != c.want {
			t.Fatalf("Compare(%v) = %v, want %v", c.diffs, got, c.want)
		}
	}
}

func TestProtocolCompareRandomAllPartyCounts(t *testing.T) {
	for n := 2; n <= 5; n++ {
		e := newTestEngine(t, n, ModeProtocol)
		rng := testRNG(uint64(n) * 31)
		for trial := 0; trial < 60; trial++ {
			diffs := make([]int64, n)
			var sum int64
			for p := range diffs {
				diffs[p] = rng.Int64N(1<<42) - (1 << 41)
				sum += diffs[p]
			}
			got, err := e.Compare(diffs)
			if err != nil {
				t.Fatal(err)
			}
			if got != (sum < 0) {
				t.Fatalf("n=%d trial %d: Compare(%v) = %v, sum=%d", n, trial, diffs, got, sum)
			}
		}
	}
}

func TestCompareSums(t *testing.T) {
	e := newTestEngine(t, 3, ModeProtocol)
	less, err := e.CompareSums([]int64{10, 20, 30}, []int64{30, 20, 11})
	if err != nil {
		t.Fatal(err)
	}
	if !less {
		t.Fatal("60 < 61 should be true")
	}
	less, err = e.CompareSums([]int64{10, 20, 31}, []int64{30, 20, 11})
	if err != nil {
		t.Fatal(err)
	}
	if less {
		t.Fatal("61 < 61 should be false")
	}
	if _, err := e.CompareSums([]int64{1}, []int64{1, 2, 3}); err == nil {
		t.Fatal("mis-sized partials accepted")
	}
}

func TestIdealMatchesProtocol(t *testing.T) {
	proto := newTestEngine(t, 3, ModeProtocol)
	ideal := newTestEngine(t, 3, ModeIdeal)
	rng := testRNG(5)
	for trial := 0; trial < 100; trial++ {
		diffs := []int64{
			rng.Int64N(1<<40) - (1 << 39),
			rng.Int64N(1<<40) - (1 << 39),
			rng.Int64N(1<<40) - (1 << 39),
		}
		a, err := proto.Compare(diffs)
		if err != nil {
			t.Fatal(err)
		}
		b, err := ideal.Compare(diffs)
		if err != nil {
			t.Fatal(err)
		}
		if a != b {
			t.Fatalf("trial %d: protocol=%v ideal=%v for %v", trial, a, b, diffs)
		}
	}
}

func TestIdealAccountingMatchesProtocol(t *testing.T) {
	// The whole point of ModeIdeal: identical cost counters without traffic.
	proto := newTestEngine(t, 4, ModeProtocol)
	ideal := newTestEngine(t, 4, ModeIdeal)
	for i := 0; i < 5; i++ {
		if _, err := proto.Compare([]int64{-3, 1, 1, 0}); err != nil {
			t.Fatal(err)
		}
		if _, err := ideal.Compare([]int64{-3, 1, 1, 0}); err != nil {
			t.Fatal(err)
		}
	}
	ps, is := proto.Stats(), ideal.Stats()
	if ps != is {
		t.Fatalf("stats diverge:\nprotocol: %+v\nideal:    %+v", ps, is)
	}
	if ps.Compares != 5 || ps.Rounds != 5*int64(RoundsPerCompare) {
		t.Fatalf("unexpected counts: %+v", ps)
	}
	if ps.Bytes <= 0 || ps.SimNet <= 0 {
		t.Fatalf("cost counters empty: %+v", ps)
	}
}

func TestStatsScaleWithParties(t *testing.T) {
	e2 := newTestEngine(t, 2, ModeIdeal)
	e6 := newTestEngine(t, 6, ModeIdeal)
	e2.Compare([]int64{-1, 0})
	e6.Compare([]int64{-1, 0, 0, 0, 0, 0})
	b2 := e2.Stats().Bytes
	b6 := e6.Stats().Bytes
	// Total bytes grow ~quadratically in parties (every party talks to every
	// other); at minimum they must strictly grow.
	if b6 <= b2 {
		t.Fatalf("bytes did not grow with parties: n=2 %d, n=6 %d", b2, b6)
	}
}

func TestEngineDeterministicResults(t *testing.T) {
	// Same seed, same inputs: protocol-mode comparisons are reproducible.
	e1 := newTestEngine(t, 3, ModeProtocol)
	e2 := newTestEngine(t, 3, ModeProtocol)
	rng := testRNG(6)
	for i := 0; i < 30; i++ {
		diffs := []int64{rng.Int64N(2001) - 1000, rng.Int64N(2001) - 1000, rng.Int64N(2001) - 1000}
		a, err1 := e1.Compare(diffs)
		b, err2 := e2.Compare(diffs)
		if err1 != nil || err2 != nil {
			t.Fatal(err1, err2)
		}
		if a != b {
			t.Fatalf("engines with same seed disagree on %v", diffs)
		}
	}
}

func TestCompareQuickProperty(t *testing.T) {
	e := newTestEngine(t, 3, ModeProtocol)
	f := func(a0, a1, a2, b0, b1, b2 int32) bool {
		a := []int64{int64(a0), int64(a1), int64(a2)}
		b := []int64{int64(b0), int64(b1), int64(b2)}
		got, err := e.CompareSums(a, b)
		if err != nil {
			return false
		}
		return got == (a[0]+a[1]+a[2] < b[0]+b[1]+b[2])
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestEngineRejectsBadInput(t *testing.T) {
	e := newTestEngine(t, 3, ModeIdeal)
	if _, err := e.Compare([]int64{1, 2}); err == nil {
		t.Fatal("short input accepted")
	}
	if _, err := NewEngine(Params{Parties: 1}); err == nil {
		t.Fatal("single-party engine accepted")
	}
}

func TestResetStats(t *testing.T) {
	e := newTestEngine(t, 2, ModeIdeal)
	e.Compare([]int64{-1, 0})
	if e.Stats().Compares != 1 {
		t.Fatal("comparison not counted")
	}
	e.ResetStats()
	if e.Stats() != (Stats{}) {
		t.Fatal("reset failed")
	}
}

func TestStatsAddSub(t *testing.T) {
	a := Stats{Compares: 1, Rounds: 9, Bytes: 100, Messages: 10, SimNet: 5}
	b := Stats{Compares: 2, Rounds: 18, Bytes: 200, Messages: 20, SimNet: 10}
	var acc Stats
	acc.Add(a)
	acc.Add(b)
	if acc.Compares != 3 || acc.Bytes != 300 {
		t.Fatalf("Add wrong: %+v", acc)
	}
	d := b.Sub(a)
	if d != a {
		t.Fatalf("Sub wrong: %+v", d)
	}
}
