package mpc

import (
	"errors"
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/metrics"
	"repro/internal/transport"
)

// ErrPoisoned is returned (wrapped) by every comparison after the engine has
// suffered an unrecoverable transport failure. A poisoned engine's transport
// streams are in an unknown state — possibly desynchronized mid-round — so
// continuing could produce silently wrong comparison bits; the engine
// instead fails fast and its owner must discard it (sessions: close the
// session and open a fresh one).
var ErrPoisoned = errors.New("mpc: engine poisoned by unrecoverable transport failure")

// Mode selects how the engine executes comparisons.
type Mode int

const (
	// ModeIdeal evaluates the ideal functionality directly (same outputs as
	// the protocol, no messages) and accounts communication analytically:
	// the protocols are data-oblivious, so their wire cost is an exact
	// closed-form function of (parties, batch size, frame layout) — see
	// batchWireCost. The benchmark harness uses this mode so that large
	// parameter sweeps stay tractable while byte, round and message counts
	// remain exact.
	ModeIdeal Mode = iota
	// ModeProtocol runs the full secret-sharing protocol between party
	// goroutines over an in-process network. Tests, examples and
	// (optionally) benchmarks use this mode.
	ModeProtocol
)

// NetworkModel carries the parameters of the paper's communication cost
// model for a secure operation: R·(L + S/B) with R rounds, S bytes per round
// per party, latency L and bandwidth B (§VIII-B).
type NetworkModel struct {
	Latency   time.Duration // one-way latency L
	Bandwidth float64       // bytes per second B
}

// DefaultLAN mirrors the paper's testbed: ~0.2 ms LAN latency, 1 GB/s links.
func DefaultLAN() NetworkModel {
	return NetworkModel{Latency: 200 * time.Microsecond, Bandwidth: 1e9}
}

// RetryPolicy bounds protocol-round retries after transient transport
// failures (timeouts, injected faults). The zero value disables retry.
type RetryPolicy struct {
	// Attempts is how many times a failed protocol run is retried (so a
	// comparison executes at most Attempts+1 times).
	Attempts int
	// Backoff is the sleep before the first retry; it doubles per retry.
	Backoff time.Duration
}

// Params configures an Engine.
type Params struct {
	Parties int
	Mode    Mode
	Seed    uint64 // deterministic randomness for dealer and parties
	Net     NetworkModel
	// RealDelay applies Net as actual delivery delays on the in-process
	// transport (protocol mode): every message is receivable only after the
	// modeled latency plus serialization time, so wall-clock measurements
	// reflect the paper's cost model and concurrent engine forks overlap
	// their network waits.
	RealDelay bool

	// NoPack selects the unpacked byte-per-bit batched protocol instead of
	// the word-packed default. Results and round counts are identical; the
	// flag exists so the differential oracle and the chaos/race CI matrix
	// can exercise both wire layouts. The FEDROAD_MPC_NOPACK environment
	// variable (any non-empty value but "0") forces it on.
	NoPack bool

	// RoundTimeout bounds how long any party waits for a single frame during
	// a protocol round (protocol mode; 0 = wait forever). With it set, a
	// slow or dead peer turns into a clean wrapped transport.ErrRoundTimeout
	// instead of a goroutine blocked for the life of the process.
	RoundTimeout time.Duration

	// Retry re-runs a protocol round after a transient failure (see
	// transport.Transient). Non-transient failures — and transient ones that
	// outlive the retry budget — poison the engine.
	Retry RetryPolicy

	// Wrap, when set, wraps every party endpoint the engine creates (root
	// and forks). Chaos tests install transport.FaultConn here to drive the
	// protocols through drops, delays, duplicates, errors and mid-round
	// closes without touching protocol code.
	Wrap func(party int, c transport.Conn) transport.Conn

	// Dial, when set, supplies the engine's party endpoints instead of the
	// default in-process Mem network (protocol mode). NewEngine and every
	// Fork call it once to obtain a session-private ConnSet — e.g.
	// multiplexed lanes over a real TCP/mTLS mesh (transport.LocalMesh) —
	// so each fork's rounds travel an actual socket instead of a channel.
	// A Fork whose dial fails starts pre-poisoned (Fork cannot return an
	// error); callers observe the standard ErrPoisoned fast-fail and retry
	// on a fresh session.
	Dial func() (ConnSet, error)

	// Instr, when set, mirrors the engine's cost counters into a process-wide
	// metrics registry, shared by the whole fork family. Per-engine Stats
	// stay authoritative for per-query accounting; Instr feeds the /metrics
	// trajectory across all engines.
	Instr *Instruments
}

// ConnSet is one session-private set of party endpoints produced by a
// Params.Dial factory: conns[p] belongs to party p. Drain, when non-nil,
// discards every in-flight frame of the set (e.g. by rotating multiplexed
// lanes) and is invoked between protocol-retry attempts so a replayed round
// never reads stale frames of the aborted one. A set with a nil Drain is
// not retry-safe: the engine poisons on the first transport failure instead
// of replaying against possibly desynchronized streams.
type ConnSet struct {
	Conns []transport.Conn
	Drain func()
}

// Instruments is the MPC layer's hookup into a metrics registry: global
// monotonic counters aggregated across every engine of a fork family. The
// counter names follow the paper's cost model — compares is the Fed-SAC
// invocation count, rounds and bytes are the R and S of R·(L + S/B).
type Instruments struct {
	Compares   *metrics.Counter
	Rounds     *metrics.Counter
	Bytes      *metrics.Counter
	Messages   *metrics.Counter
	Retries    *metrics.Counter
	Poisonings *metrics.Counter
	Forks      *metrics.Counter
}

// NewInstruments registers (or rebinds, idempotently) the MPC counter set on
// a registry.
func NewInstruments(reg *metrics.Registry) *Instruments {
	return &Instruments{
		Compares:   reg.Counter("fedroad_mpc_compares_total", "Fed-SAC secure comparisons executed", nil),
		Rounds:     reg.Counter("fedroad_mpc_rounds_total", "MPC communication rounds (R in the paper's R·(L+S/B) cost model)", nil),
		Bytes:      reg.Counter("fedroad_mpc_bytes_total", "MPC wire bytes across all silos (S, summed over rounds)", nil),
		Messages:   reg.Counter("fedroad_mpc_messages_total", "MPC wire messages across all silos", nil),
		Retries:    reg.Counter("fedroad_mpc_retries_total", "Fed-SAC protocol rounds re-run after transient transport failures", nil),
		Poisonings: reg.Counter("fedroad_mpc_poisonings_total", "engines disabled by unrecoverable transport failures", nil),
		Forks:      reg.Counter("fedroad_mpc_engine_forks_total", "per-session engine forks created", nil),
	}
}

// record mirrors one comparison run's cost into the registry counters.
func (in *Instruments) record(compares, rounds, bytes, msgs int64) {
	if in == nil {
		return
	}
	in.Compares.Add(float64(compares))
	in.Rounds.Add(float64(rounds))
	in.Bytes.Add(float64(bytes))
	in.Messages.Add(float64(msgs))
}

// Stats aggregates the cost of all comparisons executed by an engine.
type Stats struct {
	Compares int64         // secure comparisons executed
	Rounds   int64         // communication rounds, summed over comparisons
	Bytes    int64         // wire bytes, summed over all parties
	Messages int64         // wire messages, summed over all parties
	SimNet   time.Duration // simulated network time per the paper's cost model
}

// Add accumulates other into s.
func (s *Stats) Add(other Stats) {
	s.Compares += other.Compares
	s.Rounds += other.Rounds
	s.Bytes += other.Bytes
	s.Messages += other.Messages
	s.SimNet += other.SimNet
}

// Sub returns s minus other.
func (s Stats) Sub(other Stats) Stats {
	return Stats{
		Compares: s.Compares - other.Compares,
		Rounds:   s.Rounds - other.Rounds,
		Bytes:    s.Bytes - other.Bytes,
		Messages: s.Messages - other.Messages,
		SimNet:   s.SimNet - other.SimNet,
	}
}

// Engine executes secure comparisons for a fixed set of parties. It is the
// concrete carrier of the Fed-SAC operator: the federation layer feeds it
// per-silo cost differences and receives only the joint comparison bit.
//
// An Engine is not safe for concurrent use, but independent engines run
// concurrently: Fork gives each in-flight query its own engine instance
// (own transport lanes, dealer stream, party randomness and stat counters)
// sharing only its root's immutable configuration and the fork-family
// observed-RTT estimate (a single atomic).
type Engine struct {
	n      int
	mode   Mode
	netm   NetworkModel
	seed   uint64
	dealer *Dealer
	mem    *transport.Mem // nil when conns come from a Dial factory
	conns  []transport.Conn
	stats  Stats

	// dial/drain carry the pluggable endpoint factory (see Params.Dial);
	// dial is inherited by forks, drain belongs to this engine's ConnSet.
	dial  func() (ConnSet, error)
	drain func()

	// noPack switches CompareBatch to the unpacked wire layout; inherited by
	// forks. The analytic cost accounting follows the selected layout.
	noPack bool

	// realDelay mirrors whether mem currently applies netm in real time.
	realDelay bool

	// roundTimeout, retry and wrap carry the failure policy (see Params);
	// inherited by forks.
	roundTimeout time.Duration
	retry        RetryPolicy
	wrap         func(party int, c transport.Conn) transport.Conn

	// poisoned is set after an unrecoverable transport failure: the engine's
	// streams may be desynchronized, so every later comparison fails fast
	// with ErrPoisoned instead of risking a silently wrong bit.
	poisoned bool

	// pool, when attached, serves pre-generated correlated randomness to
	// runProtocol/runBatchProtocol ahead of the dealer.
	pool *Pool

	// instr, when set, mirrors cost counters into a shared metrics registry;
	// inherited by forks (nil-safe: all methods accept a nil receiver).
	instr *Instruments

	// forkCtr hands out distinct randomness streams to forks; shared by the
	// whole fork family.
	forkCtr *atomic.Uint64

	// analytic per-comparison costs (identical for every comparison: the
	// protocol's communication pattern is input-independent)
	cmpBytes  int64
	cmpMsgs   int64
	cmpSimNet time.Duration

	// rtt is the fork-family-shared EWMA of observed wall time per protocol
	// round, in nanoseconds — the measured component of the cost model
	// (analytic bytes/rounds × observed round time). Zero until the family
	// has completed a protocol-mode run.
	rtt *atomic.Int64
}

// envNoPack reports whether FEDROAD_MPC_NOPACK forces the unpacked batch
// layout, evaluated once per process.
var envNoPack = sync.OnceValue(func() bool {
	v := os.Getenv("FEDROAD_MPC_NOPACK")
	return v != "" && v != "0"
})

// NewEngine creates an engine. Per-comparison wire costs are computed
// analytically (the protocols are data-oblivious), so construction performs
// no protocol run.
func NewEngine(p Params) (*Engine, error) {
	if p.Parties < 2 {
		return nil, fmt.Errorf("mpc: need at least 2 parties, got %d", p.Parties)
	}
	if p.Net.Bandwidth == 0 {
		p.Net = DefaultLAN()
	}
	e := &Engine{
		n: p.Parties, mode: p.Mode, netm: p.Net, seed: p.Seed,
		dealer:       NewDealer(p.Parties, p.Seed),
		forkCtr:      new(atomic.Uint64),
		rtt:          new(atomic.Int64),
		noPack:       p.NoPack || envNoPack(),
		roundTimeout: p.RoundTimeout,
		retry:        p.Retry,
		wrap:         p.Wrap,
		dial:         p.Dial,
		instr:        p.Instr,
	}
	if err := e.installConns(); err != nil {
		return nil, err
	}

	// The scalar protocol always uses the bit-packed frame layout (word
	// packing only pays off across instances), so its cost is the unpacked
	// k=1 batch cost.
	e.cmpBytes, e.cmpMsgs = batchWireCost(e.n, 1, false)
	e.cmpSimNet = e.simNetFor(e.cmpBytes)
	e.SetRealDelay(p.RealDelay)
	return e, nil
}

// Fork returns an independent engine over the same parties and network
// model: fresh transport lanes, a fresh dealer stream and zeroed stats,
// sharing the root's preprocessing pool, wire layout, observed-RTT tracker
// and real-delay setting. Forks may run concurrently with each other and
// with their root; each individual engine remains single-goroutine.
func (e *Engine) Fork() *Engine {
	id := e.forkCtr.Add(1)
	seed := e.seed + id*0xd1342543de82ef95 // distinct odd-multiplier stream per fork
	f := &Engine{
		n: e.n, mode: e.mode, netm: e.netm, seed: e.seed,
		dealer:       NewDealer(e.n, seed),
		forkCtr:      e.forkCtr,
		rtt:          e.rtt,
		noPack:       e.noPack,
		pool:         e.pool,
		instr:        e.instr,
		roundTimeout: e.roundTimeout,
		retry:        e.retry,
		wrap:         e.wrap,
		dial:         e.dial,
		cmpBytes:     e.cmpBytes, cmpMsgs: e.cmpMsgs, cmpSimNet: e.cmpSimNet,
	}
	if e.instr != nil {
		e.instr.Forks.Inc()
	}
	if err := f.installConns(); err != nil {
		// Fork cannot return an error; a fork whose dial failed (e.g. its
		// mesh links are down mid-redial) starts poisoned and fails every
		// comparison fast — the caller's session retry path takes over.
		f.poisoned = true
		if f.instr != nil {
			f.instr.Poisonings.Inc()
		}
		return f
	}
	f.SetRealDelay(e.realDelay)
	return f
}

// installConns builds the engine's party endpoints: from the Dial factory
// when configured, else over a fresh in-process Mem network.
func (e *Engine) installConns() error {
	if e.dial != nil {
		cs, err := e.dial()
		if err != nil {
			return fmt.Errorf("mpc: dial party endpoints: %w", err)
		}
		if len(cs.Conns) != e.n {
			return fmt.Errorf("mpc: dial returned %d conns for %d parties", len(cs.Conns), e.n)
		}
		e.drain = cs.Drain
		e.conns = make([]transport.Conn, e.n)
		for i, c := range cs.Conns {
			if rt, ok := c.(interface{ SetRoundTimeout(time.Duration) }); ok {
				rt.SetRoundTimeout(e.roundTimeout)
			}
			e.conns[i] = e.wrapConn(i, c)
		}
		return nil
	}
	e.mem = transport.NewMem(e.n)
	e.mem.SetRecvTimeout(e.roundTimeout)
	e.conns = make([]transport.Conn, e.n)
	for i := range e.conns {
		e.conns[i] = e.wrapConn(i, e.mem.Conn(i))
	}
	return nil
}

// wrapConn applies the configured transport wrapper (fault injection), if any.
func (e *Engine) wrapConn(party int, c transport.Conn) transport.Conn {
	if e.wrap == nil {
		return c
	}
	return e.wrap(party, c)
}

// Poisoned reports whether the engine has been disabled by an unrecoverable
// transport failure. A poisoned engine fails every comparison fast with
// ErrPoisoned; its owner should close it and fork a fresh one from the root.
func (e *Engine) Poisoned() bool { return e.poisoned }

// Close releases the engine's in-process transport endpoints. Optional: an
// unclosed engine is reclaimed by the garbage collector.
func (e *Engine) Close() {
	for _, c := range e.conns {
		c.Close()
	}
}

// AttachPool directs the engine (and subsequent forks) to draw correlated
// randomness from a shared preprocessing pool, falling back to the local
// dealer when the pool is dry.
func (e *Engine) AttachPool(p *Pool) error {
	if p != nil && p.Parties() != e.n {
		return fmt.Errorf("mpc: pool dealt for %d parties, engine has %d", p.Parties(), e.n)
	}
	e.pool = p
	return nil
}

// Pool returns the attached preprocessing pool, if any.
func (e *Engine) Pool() *Pool { return e.pool }

// SetRealDelay switches real-time simulation of the network model on or off
// for this engine's transport (protocol mode only; ideal-mode comparisons
// exchange no messages).
func (e *Engine) SetRealDelay(on bool) {
	e.realDelay = on
	if e.mem == nil {
		// Dialed endpoints are real sockets: latency is physical, not
		// simulated, so the flag only records intent.
		return
	}
	if on {
		e.mem.SetDelay(e.netm.Latency, e.netm.Bandwidth)
	} else {
		e.mem.SetDelay(0, 0)
	}
}

// tuplesForCompare returns one comparison's correlated randomness, preferring
// the preprocessing pool over on-demand dealer generation.
func (e *Engine) tuplesForCompare() []CmpTuple {
	if e.pool != nil {
		if t := e.pool.TakeTuples(); t != nil {
			return t
		}
	}
	return e.dealer.CmpTuples()
}

// N returns the number of parties.
func (e *Engine) N() int { return e.n }

// Mode returns the execution mode.
func (e *Engine) Mode() Mode { return e.mode }

// PerCompareCost reports the analytic per-comparison cost: total wire
// bytes (all parties), rounds, and simulated network time.
func (e *Engine) PerCompareCost() (bytes int64, rounds int, simNet time.Duration) {
	return e.cmpBytes, RoundsPerCompare, e.cmpSimNet
}

// observeRounds folds one protocol run's wall time into the fork-family
// EWMA of per-round latency (weight 1/8). Protocol paths call it after each
// successful run; the tracker is shared, so any fork's runs inform the
// whole family.
func (e *Engine) observeRounds(elapsed time.Duration, rounds int) {
	if rounds <= 0 {
		return
	}
	sample := int64(elapsed) / int64(rounds)
	prev := e.rtt.Load()
	if prev == 0 {
		e.rtt.Store(sample)
		return
	}
	e.rtt.Store(prev + (sample-prev)/8)
}

// ObservedRoundTime reports the fork-family EWMA of measured wall time per
// protocol round — the empirical counterpart of the network model's
// latency term. Zero when no protocol-mode run has completed yet (e.g. in
// ideal mode, where rounds are only accounted, not executed).
func (e *Engine) ObservedRoundTime() time.Duration {
	return time.Duration(e.rtt.Load())
}

// Compare decides whether Σ diffs < 0, where diffs[p] is party p's private
// difference a_p − b_p. In terms of Fed-SAC: it returns [Σ a_p] < [Σ b_p],
// revealing only that bit. |Σ diffs| must stay below MaxMagnitude.
func (e *Engine) Compare(diffs []int64) (bool, error) {
	if len(diffs) != e.n {
		return false, fmt.Errorf("mpc: %d inputs for %d parties", len(diffs), e.n)
	}
	var result bool
	switch e.mode {
	case ModeIdeal:
		var sum int64
		for _, d := range diffs {
			sum += d
		}
		result = sum < 0
	case ModeProtocol:
		var err error
		result, err = e.runProtocol(diffs)
		if err != nil {
			return false, err
		}
		if e.mem != nil {
			e.mem.ResetStats()
		}
	default:
		return false, fmt.Errorf("mpc: unknown mode %d", e.mode)
	}
	e.stats.Compares++
	e.stats.Rounds += int64(RoundsPerCompare)
	e.stats.Bytes += e.cmpBytes
	e.stats.Messages += e.cmpMsgs
	e.stats.SimNet += e.cmpSimNet
	e.instr.record(1, int64(RoundsPerCompare), e.cmpBytes, e.cmpMsgs)
	return result, nil
}

// CompareSums is Fed-SAC in its natural form: partials a[p] and b[p] are the
// per-party path costs; the result is whether the joint cost of a is
// strictly smaller than the joint cost of b.
func (e *Engine) CompareSums(a, b []int64) (bool, error) {
	if len(a) != e.n || len(b) != e.n {
		return false, fmt.Errorf("mpc: partial vectors sized %d/%d for %d parties", len(a), len(b), e.n)
	}
	diffs := make([]int64, e.n)
	for p := range diffs {
		diffs[p] = a[p] - b[p]
	}
	return e.Compare(diffs)
}

// runProtocol executes a full protocol comparison, retrying transient
// transport failures under the engine's retry policy. A failure that
// survives the retry budget — or is not transient at all — poisons the
// engine.
func (e *Engine) runProtocol(diffs []int64) (bool, error) {
	var result bool
	err := e.retryProtocol(func() error {
		var err error
		result, err = e.runProtocolOnce(diffs)
		return err
	})
	if err != nil {
		return false, err
	}
	return result, nil
}

// retryProtocol runs one protocol execution under the engine's failure
// policy: transient failures (timeouts, injected faults — see
// transport.Transient) are retried with exponential backoff up to the retry
// budget, with the in-process transport drained between attempts so a replay
// never reads stale frames of the aborted round. Any other failure, or a
// transient one that exhausts the budget, poisons the engine: its party
// streams may be desynchronized mid-round, and replaying against them could
// open garbage as a comparison bit.
func (e *Engine) retryProtocol(run func() error) error {
	if e.poisoned {
		return ErrPoisoned
	}
	// Retry requires a drain primitive (Mem.Drain, or the ConnSet's Drain —
	// lane rotation on a mux mesh); without one, a replay could read stale
	// frames of the aborted round, so the first failure poisons instead.
	canDrain := e.mem != nil || e.drain != nil
	var err error
	for attempt := 0; ; attempt++ {
		err = run()
		if err == nil {
			return nil
		}
		if attempt >= e.retry.Attempts || !transport.Transient(err) || !canDrain {
			break
		}
		if e.instr != nil {
			e.instr.Retries.Inc()
		}
		if e.mem != nil {
			e.mem.Drain()
			e.mem.ResetStats()
		} else {
			e.drain()
		}
		if e.retry.Backoff > 0 {
			time.Sleep(e.retry.Backoff << min(attempt, 16))
		}
	}
	e.poisoned = true
	if e.instr != nil {
		e.instr.Poisonings.Inc()
	}
	return fmt.Errorf("%w: %w", ErrPoisoned, err)
}

// runProtocolOnce executes one full protocol comparison across party
// goroutines.
func (e *Engine) runProtocolOnce(diffs []int64) (bool, error) {
	tuples := e.tuplesForCompare()
	start := time.Now()
	results := make([]bool, e.n)
	errs := make([]error, e.n)
	var wg sync.WaitGroup
	for p := 0; p < e.n; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			results[p], errs[p] = compareParty(e.conns[p], uint64(diffs[p]), &tuples[p])
		}(p)
	}
	wg.Wait()
	for p, err := range errs {
		if err != nil {
			return false, fmt.Errorf("mpc: party %d: %w", p, err)
		}
	}
	e.observeRounds(time.Since(start), RoundsPerCompare)
	for p := 1; p < e.n; p++ {
		if results[p] != results[0] {
			return false, fmt.Errorf("mpc: parties disagree on comparison result")
		}
	}
	return results[0], nil
}

// Stats returns the accumulated cost counters.
func (e *Engine) Stats() Stats { return e.stats }

// ResetStats zeroes the accumulated cost counters.
func (e *Engine) ResetStats() { e.stats = Stats{} }
