package mpc

import "sync"

// Word-packed bit-sharing: the batched comparison protocol keeps one bit of
// every batch instance in the same machine-word lane, so a 64-lane XOR, AND
// or Beaver masking step costs one uint64 operation instead of 64 byte
// operations, and a frame carries each gate's masked bits as a dense
// bit-vector. The dealer still deals per-instance CmpTuples (so the
// preprocessing pool and its correctness tests are unchanged); the packed
// protocol transposes k tuples into word lanes at batch start.
//
// Lane layout: instance i of a k-batch lives in bit i%64 of word i/64. A
// "vector" is one logical bit per instance — []uint64 of wordsFor(k) words —
// and travels on the wire as packedVecBytes(k) = ⌈k/8⌉ bytes (little-endian
// words truncated to the lane count, padding bits zeroed).

// WordTriple is one party's share of 64 Beaver bit triples packed into word
// lanes: lane i of (A, B, C) is the party's share of triple i's (a, b, c).
type WordTriple struct {
	A, B, C uint64
}

// wordsFor returns the number of 64-bit words holding k lanes.
func wordsFor(k int) int { return (k + 63) / 64 }

// packedVecBytes returns the wire size of one k-lane bit vector.
func packedVecBytes(k int) int { return (k + 7) / 8 }

// packWordVec serializes the low k lanes of src into dst (little-endian,
// ⌈k/8⌉ bytes, padding bits of the last byte zeroed). dst must have length ≥
// packedVecBytes(k).
func packWordVec(dst []byte, src []uint64, k int) {
	nb := packedVecBytes(k)
	for bi := 0; bi < nb; bi++ {
		dst[bi] = byte(src[bi>>3] >> (8 * (bi & 7)))
	}
	if k&7 != 0 {
		dst[nb-1] &= byte(0xff) >> (8 - k&7)
	}
}

// unpackWordVec deserializes a k-lane bit vector into dst (wordsFor(k)
// words), zeroing lanes ≥ k.
func unpackWordVec(dst []uint64, src []byte, k int) {
	nw := wordsFor(k)
	for w := 0; w < nw; w++ {
		dst[w] = 0
	}
	for bi := 0; bi < packedVecBytes(k) && bi < len(src); bi++ {
		dst[bi>>3] |= uint64(src[bi]) << (8 * (bi & 7))
	}
	if k&63 != 0 {
		dst[nw-1] &= ^uint64(0) >> (64 - k&63)
	}
}

// xorWordVec XOR-accumulates a serialized k-lane vector into dst without
// materializing the intermediate words.
func xorWordVec(dst []uint64, src []byte, k int) {
	for bi := 0; bi < packedVecBytes(k) && bi < len(src); bi++ {
		dst[bi>>3] ^= uint64(src[bi]) << (8 * (bi & 7))
	}
}

// packRBitLanes transposes the k instances' R-bit shares into word lanes:
// the returned slab holds K vectors of W words each; vector b is the packed
// XOR share of bit b of every instance's mask R.
func packRBitLanes(tups []CmpTuple, W int) []uint64 {
	out := make([]uint64, K*W)
	for i := range tups {
		wi, bit := i>>6, uint(i&63)
		for b := 0; b < K; b++ {
			if tups[i].RBits[b]&1 == 1 {
				out[b*W+wi] |= 1 << bit
			}
		}
	}
	return out
}

// packTripleLanes transposes the k instances' Beaver bit triples into word
// triples: entry t*W+w packs lane shares of triple t for instances
// 64w..64w+63. Triple t serves the same circuit gate in every instance, so
// the packed circuit consumes randomness in exactly the per-instance order.
func packTripleLanes(tups []CmpTuple, W int) []WordTriple {
	out := make([]WordTriple, TriplesPerCompare*W)
	for i := range tups {
		wi, bit := i>>6, uint(i&63)
		for t := 0; t < TriplesPerCompare; t++ {
			tr := &tups[i].Triples[t]
			wt := &out[t*W+wi]
			if tr.A&1 == 1 {
				wt.A |= 1 << bit
			}
			if tr.B&1 == 1 {
				wt.B |= 1 << bit
			}
			if tr.C&1 == 1 {
				wt.C |= 1 << bit
			}
		}
	}
	return out
}

// framePool recycles wire-frame buffers across protocol rounds: the batched
// circuit allocates one frame per level per party, and without pooling those
// short-lived buffers dominated the allocation profile of index builds
// (fedbench -profile).
var framePool = sync.Pool{New: func() any { return []byte(nil) }}

// getFrame returns a zeroed frame of length n from the pool.
func getFrame(n int) []byte {
	buf := framePool.Get().([]byte)
	if cap(buf) < n {
		buf = make([]byte, n)
	}
	buf = buf[:n]
	for i := range buf {
		buf[i] = 0
	}
	return buf
}

// putFrame returns a frame to the pool. Callers must not retain the slice.
// Frames handed to transport.Conn.Send are safe to recycle immediately: Send
// copies (Mem) or fully writes (TCP) before returning.
func putFrame(buf []byte) { framePool.Put(buf[:0]) } //nolint:staticcheck // slice header boxing is fine here

// wordPool recycles []uint64 scratch slabs of the packed circuit.
var wordPool = sync.Pool{New: func() any { return []uint64(nil) }}

// getWords returns a zeroed word slab of length n from the pool.
func getWords(n int) []uint64 {
	buf := wordPool.Get().([]uint64)
	if cap(buf) < n {
		buf = make([]uint64, n)
	}
	buf = buf[:n]
	for i := range buf {
		buf[i] = 0
	}
	return buf
}

// putWords returns a word slab to the pool.
func putWords(buf []uint64) { wordPool.Put(buf[:0]) } //nolint:staticcheck
