// Package core implements FedRoad's federated shortest-path query engines:
// Fed-SSSP (Alg. 1, including kNN) and Fed-SPSP with the paper's full
// optimization stack — bidirectional search, the federated shortcut index
// (§IV), federated A* lower bounds (§V) and the TM-tree priority queue (§VI).
//
// Every cost comparison between secret joint values goes through Fed-SAC;
// the engines never materialize a joint cost. Per-query statistics expose
// the counters the paper's evaluation reports: settled vertices, secure
// comparisons, communication bytes/rounds and the simulated network time.
package core

import (
	"fmt"
	"time"

	"repro/internal/ch"
	"repro/internal/fed"
	"repro/internal/graph"
	"repro/internal/lb"
	"repro/internal/mpc"
	"repro/internal/pq"
)

// Options configures a query engine. The zero value is the paper's
// Naive-Dijk baseline: flat bidirectional Dijkstra, binary heap, no
// estimator.
type Options struct {
	// Queue selects the priority-queue structure (default: binary heap).
	Queue pq.Kind
	// Alpha is the TM-tree balance factor (default 4, the paper's setting).
	Alpha int
	// Estimator selects the federated lower bound for A* pruning.
	Estimator lb.Kind
	// Landmarks must be pre-computed for the Fed-ALT / Fed-ALT-Max kinds.
	Landmarks *lb.Landmarks
	// Index enables hierarchical search over the federated shortcut index.
	Index *ch.Index
	// BatchedMPC executes the TM-tree's tournament-build comparisons as
	// batched secure comparisons: one protocol instance (one set of
	// communication rounds) per tournament level instead of one per
	// comparison. Requires Queue == tm-tree.
	BatchedMPC bool
}

func (o Options) withDefaults() Options {
	if o.Queue == "" {
		o.Queue = pq.KindHeap
	}
	if o.Alpha == 0 {
		o.Alpha = 4
	}
	if o.Estimator == "" {
		o.Estimator = lb.None
	}
	return o
}

// comparator is the secure-comparison dependency of the search loops. In
// production it is the federation's Fed-SAC handle; the test suite swaps in
// recording/replaying comparators to make the paper's §VII simulation
// argument executable (a query's entire behavior is a deterministic function
// of the public topology and the comparison bits).
type comparator interface {
	Less(a, b fed.Partial) bool
	LessBatch(pairs [][2]fed.Partial) []bool
	Err() error
}

// Engine answers federated shortest-path queries for one federation.
type Engine struct {
	f   *fed.Federation
	opt Options
	// cmpHook, when set, wraps the per-query Fed-SAC handle (tests only).
	cmpHook func(*fed.SAC) comparator
}

// NewEngine validates the option set and builds an engine.
func NewEngine(f *fed.Federation, opt Options) (*Engine, error) {
	opt = opt.withDefaults()
	switch opt.Estimator {
	case lb.None, lb.FedAMPS:
	case lb.FedALT, lb.FedALTMax:
		if opt.Landmarks == nil {
			return nil, fmt.Errorf("core: estimator %s requires Options.Landmarks", opt.Estimator)
		}
	default:
		return nil, fmt.Errorf("core: unknown estimator %q", opt.Estimator)
	}
	switch opt.Queue {
	case pq.KindHeap, pq.KindLeftist, pq.KindTMTree:
	default:
		return nil, fmt.Errorf("core: unknown queue kind %q", opt.Queue)
	}
	if opt.Index != nil && opt.Index.Federation().Root() != f.Root() {
		return nil, fmt.Errorf("core: shortcut index belongs to a different federation")
	}
	if opt.BatchedMPC && opt.Queue != pq.KindTMTree {
		return nil, fmt.Errorf("core: BatchedMPC requires the tm-tree queue, got %q", opt.Queue)
	}
	return &Engine{f: f, opt: opt}, nil
}

// Federation returns the engine's federation.
func (e *Engine) Federation() *fed.Federation { return e.f }

// PhaseTimings breaks a query's local wall time down by search phase, the
// per-query trace behind the observability layer. SACWait overlaps Queue
// (queue comparisons are secure comparisons) and, rarely, Relax (cross-
// frontier μ updates in bidirectional search compare under the relax
// timer), so the three phases are reported side by side rather than
// summed: Queue − SACWait approximates pure queue-structure time.
type PhaseTimings struct {
	// Queue is time spent inside priority-queue operations (Push/PushBatch/
	// Pop), including the secure comparisons they trigger.
	Queue time.Duration
	// SACWait is time blocked inside Fed-SAC comparisons, wherever invoked.
	SACWait time.Duration
	// Relax is time spent on local edge relaxation: enumerating arcs and
	// building tentative-path batches from silo-local weights.
	Relax time.Duration
}

// Add accumulates other into p.
func (p *PhaseTimings) Add(other PhaseTimings) {
	p.Queue += other.Queue
	p.SACWait += other.SACWait
	p.Relax += other.Relax
}

// QueryStats reports the cost of one query.
type QueryStats struct {
	SettledVertices int       // search iterations (paper: explored vertices)
	HeuristicEvals  int       // federated lower-bound (A* potential) evaluations
	SAC             mpc.Stats // Fed-SAC usage: comparisons, rounds, bytes, simulated net time
	Queue           pq.Counts // priority-queue comparison breakdown (Fig. 12)
	Phases          PhaseTimings
	WallTime        time.Duration
}

// PathResult is a query answer. Partial is the per-silo partial cost vector
// of the returned path — each entry is private to its silo; the joint cost
// is their mean (callers in the evaluation harness may sum it, a real
// deployment would not).
type PathResult struct {
	Target  graph.Vertex
	Path    []graph.Vertex
	Partial fed.Partial
	Found   bool
}

// item is one frontier entry: a tentative path to v with per-silo partial
// cost g and queue key g+π (π = federated lower bound of the remaining
// distance). Entries are never decreased — duplicates are skipped at pop,
// exactly as Alg. 1 keeps Q as a set of explored paths.
type item struct {
	v      graph.Vertex
	key    fed.Partial
	g      fed.Partial
	parent graph.Vertex
	parc   int32 // arc into v (base arc ID, or overlay arc ID in CH search)
}

type label struct {
	g      fed.Partial
	parent graph.Vertex
	parc   int32
}

// newComparator builds the per-query comparator, honoring the test hook.
func (e *Engine) newComparator(sac *fed.SAC) comparator {
	if e.cmpHook != nil {
		return e.cmpHook(sac)
	}
	return sac
}

// timedCmp wraps a comparator and accumulates the wall time spent blocked in
// secure comparisons — the query's Fed-SAC wait phase.
type timedCmp struct {
	inner comparator
	wait  time.Duration
}

func (t *timedCmp) Less(a, b fed.Partial) bool {
	t0 := time.Now()
	r := t.inner.Less(a, b)
	t.wait += time.Since(t0)
	return r
}

func (t *timedCmp) LessBatch(pairs [][2]fed.Partial) []bool {
	t0 := time.Now()
	r := t.inner.LessBatch(pairs)
	t.wait += time.Since(t0)
	return r
}

func (t *timedCmp) Err() error { return t.inner.Err() }

// newQueue builds the configured priority queue over items with a Fed-SAC
// comparator: every queue comparison is one secure comparison. With
// BatchedMPC, the TM-tree additionally gets the batched Fed-SAC comparator
// for its tournament builds.
func (e *Engine) newQueue(sac comparator) pq.Queue[*item] {
	less := func(a, b *item) bool { return sac.Less(a.key, b.key) }
	if e.opt.BatchedMPC {
		q := pq.NewTMTree[*item](less, e.opt.Alpha)
		q.SetBatchLess(func(pairs [][2]*item) []bool {
			ps := make([][2]fed.Partial, len(pairs))
			for i, pr := range pairs {
				ps[i] = [2]fed.Partial{pr[0].key, pr[1].key}
			}
			return sac.LessBatch(ps)
		})
		return q
	}
	return pq.New[*item](e.opt.Queue, less, e.opt.Alpha)
}
