package core

import (
	"fmt"
	"time"

	"repro/internal/fed"
	"repro/internal/graph"
	"repro/internal/lb"
	"repro/internal/pq"
)

// expander abstracts the search graph: the flat road network for Naive-Dijk,
// or the federated shortcut overlay for hierarchical search.
type expander interface {
	// arcs lists the relaxable arcs at v: forward expansion follows arcs
	// out of v, backward expansion follows arcs into v.
	arcs(v graph.Vertex, forward bool) []arcTo
	// addWeight sets dst = src + w_p(arc) per silo.
	addWeight(dst, src fed.Partial, arc int32)
	// unpack expands an arc ID into its base-graph arc sequence.
	unpack(arc int32) []graph.Arc
}

// arcTo is one relaxable arc: the neighbor it leads to (in search direction)
// and its arc ID.
type arcTo struct {
	to  graph.Vertex
	arc int32
}

// flatExpander searches the plain shared topology.
type flatExpander struct {
	f   *fed.Federation
	buf []arcTo
}

func (x *flatExpander) arcs(v graph.Vertex, forward bool) []arcTo {
	g := x.f.Graph()
	x.buf = x.buf[:0]
	if forward {
		first := g.FirstOut(v)
		for i, u := range g.OutNeighbors(v) {
			x.buf = append(x.buf, arcTo{to: u, arc: int32(first) + int32(i)})
		}
	} else {
		in, arcs := g.InNeighbors(v)
		for i, u := range in {
			x.buf = append(x.buf, arcTo{to: u, arc: int32(arcs[i])})
		}
	}
	return x.buf
}

func (x *flatExpander) addWeight(dst, src fed.Partial, arc int32) {
	for p := range dst {
		dst[p] = src[p] + x.f.Silo(p).Weight(graph.Arc(arc))
	}
}

func (x *flatExpander) unpack(arc int32) []graph.Arc { return []graph.Arc{graph.Arc(arc)} }

// chExpander searches upward in the federated shortcut hierarchy: the
// forward side relaxes arcs to higher-ranked heads, the backward side arcs
// from higher-ranked tails.
type chExpander struct {
	f   *fed.Federation
	idx indexView
	buf []arcTo
}

// indexView is the slice of ch.Index the search needs (an interface so core
// tests can fake it).
type indexView interface {
	UpOut(v graph.Vertex) []int32
	DownIn(v graph.Vertex) []int32
	Head(a int32) graph.Vertex
	Tail(a int32) graph.Vertex
	SiloWeight(p int, a int32) int64
	UnpackArcs(a int32) []int32
}

func (x *chExpander) arcs(v graph.Vertex, forward bool) []arcTo {
	x.buf = x.buf[:0]
	if forward {
		for _, a := range x.idx.UpOut(v) {
			x.buf = append(x.buf, arcTo{to: x.idx.Head(a), arc: a})
		}
	} else {
		for _, a := range x.idx.DownIn(v) {
			x.buf = append(x.buf, arcTo{to: x.idx.Tail(a), arc: a})
		}
	}
	return x.buf
}

func (x *chExpander) addWeight(dst, src fed.Partial, arc int32) {
	for p := range dst {
		dst[p] = src[p] + x.idx.SiloWeight(p, arc)
	}
}

func (x *chExpander) unpack(arc int32) []graph.Arc {
	base := x.idx.UnpackArcs(arc)
	out := make([]graph.Arc, len(base))
	for i, a := range base {
		out[i] = graph.Arc(a)
	}
	return out
}

// side is one direction of the bidirectional search.
type side struct {
	forward bool
	q       pq.Queue[*item]
	settled map[graph.Vertex]*label
	est     lb.Estimator
	done    bool
}

// meeting records how the two searches touch: a forward-settled vertex, an
// optional crossing arc, and a backward-settled vertex.
type meeting struct {
	fv       graph.Vertex
	crossArc int32 // -1 when fv == bv
	bv       graph.Vertex
}

// SPSP answers a federated single-pair shortest-path query. The search
// strategy follows the engine options: flat bidirectional (Naive-Dijk) or
// hierarchical over the shortcut index, optionally A*-guided by a federated
// lower bound, with the configured priority queue. Termination is the
// classic sound rule: a side stops once its queue minimum cannot beat the
// best known joint cost μ (checked by Fed-SAC); the query stops when both
// sides stopped.
func (e *Engine) SPSP(s, t graph.Vertex) (PathResult, QueryStats, error) {
	start := time.Now()
	g := e.f.Graph()
	if int(s) < 0 || int(s) >= g.NumVertices() || int(t) < 0 || int(t) >= g.NumVertices() {
		return PathResult{}, QueryStats{}, fmt.Errorf("core: query (%d,%d) out of range", s, t)
	}
	if s == t {
		return PathResult{Target: t, Path: []graph.Vertex{s}, Partial: e.f.ZeroPartial(), Found: true},
			QueryStats{}, nil
	}
	rawSAC := e.f.NewSAC()
	sac := &timedCmp{inner: e.newComparator(rawSAC)}
	before := e.f.Engine().Stats()
	var phases PhaseTimings
	heuristicEvals := 0

	estF, estB, err := lb.NewPair(e.opt.Estimator, e.f, e.opt.Landmarks, rawSAC, s, t)
	if err != nil {
		return PathResult{}, QueryStats{}, err
	}
	var exp expander
	if e.opt.Index != nil {
		exp = &chExpander{f: e.f, idx: e.opt.Index}
	} else {
		exp = &flatExpander{f: e.f}
	}

	fwd := &side{forward: true, q: e.newQueue(sac), settled: make(map[graph.Vertex]*label), est: estF}
	bwd := &side{forward: false, q: e.newQueue(sac), settled: make(map[graph.Vertex]*label), est: estB}
	fwd.q.Push(&item{v: s, key: estF.Potential(s), g: e.f.ZeroPartial(), parent: graph.NoVertex, parc: -1})
	bwd.q.Push(&item{v: t, key: estB.Potential(t), g: e.f.ZeroPartial(), parent: graph.NoVertex, parc: -1})
	heuristicEvals += 2

	var mu fed.Partial
	var meet meeting
	updateMu := func(cand fed.Partial, m meeting) {
		if mu == nil {
			mu, meet = cand, m
			return
		}
		if sac.Less(cand, mu) {
			mu, meet = cand, m
		}
	}
	// flushMu folds all crossing candidates of one frontier expansion into μ
	// at once: an earliest-wins tournament (a later entry beats an earlier
	// one only when strictly smaller) picks the same winner as the
	// sequential left-to-right fold, but its per-level matches run as one
	// batched Fed-SAC instance — a few wide rounds per relax step instead of
	// a full comparison round per crossing arc.
	flushMu := func(cands []fed.Partial, meets []meeting) {
		if !e.opt.BatchedMPC || len(cands) < 2 {
			for i := range cands {
				updateMu(cands[i], meets[i])
			}
			return
		}
		slate, ms := cands, meets
		if mu != nil {
			slate = append([]fed.Partial{mu}, cands...)
			ms = append([]meeting{meet}, meets...)
		}
		idx := make([]int, len(slate))
		for i := range idx {
			idx[i] = i
		}
		for len(idx) > 1 {
			pairs := make([][2]fed.Partial, 0, len(idx)/2)
			for pi := 0; pi+1 < len(idx); pi += 2 {
				pairs = append(pairs, [2]fed.Partial{slate[idx[pi+1]], slate[idx[pi]]})
			}
			res := sac.LessBatch(pairs)
			next := make([]int, 0, (len(idx)+1)/2)
			for mi, r := range res {
				win := idx[2*mi]
				if r {
					win = idx[2*mi+1]
				}
				next = append(next, win)
			}
			if len(idx)%2 == 1 {
				next = append(next, idx[len(idx)-1])
			}
			idx = next
		}
		mu, meet = slate[idx[0]], ms[idx[0]]
	}

	settledTotal := 0
	for turn := 0; !fwd.done || !bwd.done; turn++ {
		sd, other := fwd, bwd
		if turn%2 == 1 {
			sd, other = bwd, fwd
		}
		if sd.done {
			sd, other = other, sd
		}
		t0 := time.Now()
		it, ok := sd.q.Pop()
		phases.Queue += time.Since(t0)
		if !ok {
			sd.done = true
			continue
		}
		if _, dup := sd.settled[it.v]; dup {
			continue
		}
		// Sound stopping rule: the frontier minimum cannot beat μ.
		if mu != nil && !sac.Less(it.key, mu) {
			sd.done = true
			continue
		}
		sd.settled[it.v] = &label{g: it.g, parent: it.parent, parc: it.parc}
		settledTotal++
		if lbl, both := other.settled[it.v]; both {
			cand := fed.SumPartial(it.g, lbl.g)
			m := meeting{fv: it.v, crossArc: -1, bv: it.v}
			updateMu(cand, m)
		}

		t0 = time.Now()
		var batch []*item
		var muCands []fed.Partial
		var muMeets []meeting
		for _, at := range exp.arcs(it.v, sd.forward) {
			if _, dup := sd.settled[at.to]; dup {
				continue
			}
			ng := make(fed.Partial, e.f.P())
			exp.addWeight(ng, it.g, at.arc)
			if lbl, crossed := other.settled[at.to]; crossed {
				cand := fed.SumPartial(ng, lbl.g)
				var m meeting
				if sd.forward {
					m = meeting{fv: it.v, crossArc: at.arc, bv: at.to}
				} else {
					m = meeting{fv: at.to, crossArc: at.arc, bv: it.v}
				}
				muCands = append(muCands, cand)
				muMeets = append(muMeets, m)
			}
			key := ng
			heuristicEvals++
			if pot := sd.est.Potential(at.to); pot != nil {
				key = fed.SumPartial(ng, pot)
			}
			batch = append(batch, &item{v: at.to, key: key, g: ng, parent: it.v, parc: at.arc})
		}
		flushMu(muCands, muMeets)
		phases.Relax += time.Since(t0)
		t0 = time.Now()
		sd.q.PushBatch(batch)
		phases.Queue += time.Since(t0)
		if err := sac.Err(); err != nil {
			return PathResult{}, QueryStats{}, err
		}
	}

	phases.SACWait = sac.wait
	stats := QueryStats{
		SettledVertices: settledTotal,
		HeuristicEvals:  heuristicEvals,
		SAC:             e.f.Engine().Stats().Sub(before),
		Phases:          phases,
		WallTime:        time.Since(start),
	}
	stats.Queue.Add(fwd.q.Counts())
	stats.Queue.Add(bwd.q.Counts())

	if mu == nil {
		return PathResult{Target: t, Found: false}, stats, nil
	}
	path := e.reconstruct(exp, fwd.settled, bwd.settled, meet)
	return PathResult{Target: t, Path: path, Partial: mu, Found: true}, stats, nil
}

// reconstruct expands the meeting record into the full base-graph vertex
// path from s to t, unpacking shortcuts as needed.
func (e *Engine) reconstruct(exp expander, fs, bs map[graph.Vertex]*label, m meeting) []graph.Vertex {
	// Collect arc IDs of the forward chain s → fv (reversed during walk).
	var fwdArcs []int32
	for v := m.fv; ; {
		lbl := fs[v]
		if lbl.parent == graph.NoVertex {
			break
		}
		fwdArcs = append(fwdArcs, lbl.parc)
		v = lbl.parent
	}
	for i, j := 0, len(fwdArcs)-1; i < j; i, j = i+1, j-1 {
		fwdArcs[i], fwdArcs[j] = fwdArcs[j], fwdArcs[i]
	}
	all := fwdArcs
	if m.crossArc >= 0 {
		all = append(all, m.crossArc)
	}
	// Backward chain bv → t: labels already point toward t.
	for v := m.bv; ; {
		lbl := bs[v]
		if lbl.parent == graph.NoVertex {
			break
		}
		all = append(all, lbl.parc)
		v = lbl.parent
	}

	g := e.f.Graph()
	var path []graph.Vertex
	for _, a := range all {
		for _, ba := range exp.unpack(a) {
			if len(path) == 0 {
				path = append(path, g.Tail(ba))
			}
			path = append(path, g.Head(ba))
		}
	}
	if len(path) == 0 { // s == fv == bv == t handled earlier; degenerate guard
		path = []graph.Vertex{m.fv}
	}
	return path
}
