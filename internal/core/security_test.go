package core

import (
	"math/rand/v2"
	"testing"

	"repro/internal/fed"
	"repro/internal/graph"
	"repro/internal/mpc"
	"repro/internal/pq"
	"repro/internal/traffic"
)

// recordingCmp wraps the real Fed-SAC and records every comparison outcome.
type recordingCmp struct {
	sac  *fed.SAC
	bits []bool
}

func (r *recordingCmp) Less(a, b fed.Partial) bool {
	v := r.sac.Less(a, b)
	r.bits = append(r.bits, v)
	return v
}

func (r *recordingCmp) LessBatch(pairs [][2]fed.Partial) []bool {
	vs := r.sac.LessBatch(pairs)
	r.bits = append(r.bits, vs...)
	return vs
}

func (r *recordingCmp) Err() error { return r.sac.Err() }

// replayCmp is the §VII simulator: it answers comparisons purely from a
// recorded bit sequence, never looking at the partial-cost inputs.
type replayCmp struct {
	t    *testing.T
	bits []bool
	pos  int
}

func (r *replayCmp) next() bool {
	if r.pos >= len(r.bits) {
		r.t.Fatalf("simulator ran out of recorded comparison bits at %d", r.pos)
	}
	v := r.bits[r.pos]
	r.pos++
	return v
}

func (r *replayCmp) Less(a, b fed.Partial) bool { return r.next() }

func (r *replayCmp) LessBatch(pairs [][2]fed.Partial) []bool {
	out := make([]bool, len(pairs))
	for i := range out {
		out[i] = r.next()
	}
	return out
}

func (r *replayCmp) Err() error { return nil }

// TestSimulationArgument makes §VII executable: the transcript a silo sees
// during Fed-SSSP/Fed-SPSP is fully determined by the public topology and
// the comparison bits. We record the comparison outcomes of a query on the
// real federation, then re-run the identical search logic on a federation
// whose private weights have been replaced by unrelated garbage, answering
// every comparison from the recorded bits. The simulated execution settles
// the same vertices in the same order and returns the same path — i.e., a
// simulator without any weight data reproduces everything observable, so
// the search leaks nothing beyond the comparison bits.
func TestSimulationArgument(t *testing.T) {
	g, w0 := graph.GenerateGrid(9, 9, 101)
	realSets := traffic.SiloWeights(w0, 3, traffic.Moderate, 102)
	realFed, err := fed.New(g, w0, realSets, mpc.Params{Mode: mpc.ModeIdeal, Seed: 103})
	if err != nil {
		t.Fatal(err)
	}

	// Garbage federation: same public topology and W0, silo weights replaced
	// by unrelated random values (what the simulator "knows" — nothing).
	rng := rand.New(rand.NewPCG(9, 9))
	garbageSets := make([]graph.Weights, 3)
	for p := range garbageSets {
		garbageSets[p] = make(graph.Weights, g.NumArcs())
		for a := range garbageSets[p] {
			garbageSets[p][a] = 1 + rng.Int64N(1_000_000)
		}
	}
	simFed, err := fed.New(g, w0, garbageSets, mpc.Params{Mode: mpc.ModeIdeal, Seed: 104})
	if err != nil {
		t.Fatal(err)
	}

	for _, queue := range []pq.Kind{pq.KindHeap, pq.KindTMTree} {
		// --- Fed-SSSP (Alg. 1) ---
		rec := &recordingCmp{}
		realEng, err := NewEngine(realFed, Options{Queue: queue})
		if err != nil {
			t.Fatal(err)
		}
		realEng.cmpHook = func(s *fed.SAC) comparator { rec.sac = s; return rec }
		realRes, _, err := realEng.SSSP(7, 20)
		if err != nil {
			t.Fatal(err)
		}

		rep := &replayCmp{t: t, bits: rec.bits}
		simEng, err := NewEngine(simFed, Options{Queue: queue})
		if err != nil {
			t.Fatal(err)
		}
		simEng.cmpHook = func(*fed.SAC) comparator { return rep }
		simRes, _, err := simEng.SSSP(7, 20)
		if err != nil {
			t.Fatal(err)
		}
		if rep.pos != len(rep.bits) {
			t.Fatalf("queue %s: simulator consumed %d of %d bits", queue, rep.pos, len(rep.bits))
		}
		if len(simRes) != len(realRes) {
			t.Fatalf("queue %s: simulator found %d results, real %d", queue, len(simRes), len(realRes))
		}
		for i := range realRes {
			if simRes[i].Target != realRes[i].Target {
				t.Fatalf("queue %s: result %d target %d != %d — execution depends on more than comparison bits",
					queue, i, simRes[i].Target, realRes[i].Target)
			}
			if len(simRes[i].Path) != len(realRes[i].Path) {
				t.Fatalf("queue %s: result %d path lengths differ", queue, i)
			}
			for j := range realRes[i].Path {
				if simRes[i].Path[j] != realRes[i].Path[j] {
					t.Fatalf("queue %s: result %d paths diverge at %d", queue, i, j)
				}
			}
		}

		// --- Fed-SPSP (bidirectional, no estimator: Alg. 1's setting) ---
		rec2 := &recordingCmp{}
		realEng.cmpHook = func(s *fed.SAC) comparator { rec2.sac = s; return rec2 }
		realPath, _, err := realEng.SPSP(0, 80)
		if err != nil {
			t.Fatal(err)
		}
		rep2 := &replayCmp{t: t, bits: rec2.bits}
		simEng.cmpHook = func(*fed.SAC) comparator { return rep2 }
		simPath, _, err := simEng.SPSP(0, 80)
		if err != nil {
			t.Fatal(err)
		}
		if rep2.pos != len(rep2.bits) {
			t.Fatalf("queue %s: SPSP simulator consumed %d of %d bits", queue, rep2.pos, len(rep2.bits))
		}
		if simPath.Found != realPath.Found || len(simPath.Path) != len(realPath.Path) {
			t.Fatalf("queue %s: SPSP simulation diverged: %v vs %v", queue, simPath.Path, realPath.Path)
		}
		for j := range realPath.Path {
			if simPath.Path[j] != realPath.Path[j] {
				t.Fatalf("queue %s: SPSP paths diverge at %d", queue, j)
			}
		}
	}
}
