package core

import (
	"math/rand/v2"
	"testing"

	"repro/internal/graph"
	"repro/internal/lb"
	"repro/internal/mpc"
	"repro/internal/pq"
)

func TestBatchedMPCQueriesExact(t *testing.T) {
	for _, mode := range []mpc.Mode{mpc.ModeIdeal, mpc.ModeProtocol} {
		kind := "grid"
		if mode == mpc.ModeProtocol {
			kind = "tiny"
		}
		fx := newFixture(t, kind, 91, mode)
		e := fx.engine(t, Options{
			Queue:      pq.KindTMTree,
			Estimator:  lb.FedAMPS,
			Index:      fx.idx,
			BatchedMPC: true,
		})
		rng := rand.New(rand.NewPCG(uint64(mode)+1, 8))
		n := fx.f.Graph().NumVertices()
		trials := 30
		if mode == mpc.ModeProtocol {
			trials = 6
		}
		for trial := 0; trial < trials; trial++ {
			s := graph.Vertex(rng.IntN(n))
			tt := graph.Vertex(rng.IntN(n))
			res, _, err := e.SPSP(s, tt)
			if err != nil {
				t.Fatal(err)
			}
			fx.checkSPSP(t, res, s, tt)
		}
	}
}

func TestBatchedMPCReducesRounds(t *testing.T) {
	fx := newFixture(t, "grid", 93, mpc.ModeIdeal)
	run := func(batched bool) (rounds, compares int64) {
		e := fx.engine(t, Options{
			Queue:      pq.KindTMTree,
			Estimator:  lb.FedAMPS,
			Index:      fx.idx,
			BatchedMPC: batched,
		})
		var r, c int64
		rng := rand.New(rand.NewPCG(4, 4))
		n := fx.f.Graph().NumVertices()
		for trial := 0; trial < 20; trial++ {
			s := graph.Vertex(rng.IntN(n))
			tt := graph.Vertex(rng.IntN(n))
			_, stats, err := e.SPSP(s, tt)
			if err != nil {
				t.Fatal(err)
			}
			r += stats.SAC.Rounds
			c += stats.SAC.Compares
		}
		return r, c
	}
	seqRounds, seqCmp := run(false)
	batRounds, batCmp := run(true)
	if batRounds >= seqRounds {
		t.Fatalf("batching did not reduce rounds: %d vs %d", batRounds, seqRounds)
	}
	// The comparison work itself must stay in the same ballpark (batching
	// changes rounds, not the number of comparisons needed; tiny differences
	// come from tie-order effects of identical keys).
	if batCmp > seqCmp*3/2 || seqCmp > batCmp*3/2 {
		t.Fatalf("comparison counts diverged: batched %d vs sequential %d", batCmp, seqCmp)
	}
}

func TestBatchedMPCRequiresTMTree(t *testing.T) {
	fx := newFixture(t, "tiny", 95, mpc.ModeIdeal)
	if _, err := NewEngine(fx.f, Options{Queue: pq.KindHeap, BatchedMPC: true}); err == nil {
		t.Fatal("BatchedMPC with heap accepted")
	}
	if _, err := NewEngine(fx.f, Options{BatchedMPC: true}); err == nil {
		t.Fatal("BatchedMPC with default heap accepted")
	}
	if _, err := NewEngine(fx.f, Options{Queue: pq.KindTMTree, BatchedMPC: true}); err != nil {
		t.Fatal(err)
	}
}

func TestBatchedSSSP(t *testing.T) {
	fx := newFixture(t, "grid", 97, mpc.ModeIdeal)
	e := fx.engine(t, Options{Queue: pq.KindTMTree, BatchedMPC: true})
	results, stats, err := e.SSSP(3, 15)
	if err != nil {
		t.Fatal(err)
	}
	full := graph.Dijkstra(fx.f.Graph(), fx.joint, 3)
	for _, r := range results {
		if jointSum(r.Partial) != full.Dist[r.Target] {
			t.Fatalf("batched SSSP dist to %d = %d, want %d",
				r.Target, jointSum(r.Partial), full.Dist[r.Target])
		}
	}
	// On flat grids expansion batches are small (≤4 neighbors), so there is
	// little to batch — but batching must never cost extra rounds. The round
	// reduction itself is asserted on hierarchical searches (larger batches)
	// in TestBatchedMPCReducesRounds.
	if stats.SAC.Rounds > stats.SAC.Compares*int64(mpc.RoundsPerCompare) {
		t.Fatal("batching increased rounds")
	}
}
