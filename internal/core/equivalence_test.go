package core

import (
	"math/rand/v2"
	"testing"

	"repro/internal/ch"
	"repro/internal/fed"
	"repro/internal/graph"
	"repro/internal/lb"
	"repro/internal/mpc"
	"repro/internal/pq"
	"repro/internal/traffic"
)

// TestLandmarkPrecomputeMatchesFederatedSSSP validates the ideal-functionality
// claim of lb.PrecomputeLandmarks: the partial cost matrices it derives must
// equal what an actual federated SSSP (Alg. 1, running through Fed-SAC)
// computes from each landmark.
func TestLandmarkPrecomputeMatchesFederatedSSSP(t *testing.T) {
	g, w0 := graph.GenerateGrid(7, 7, 83)
	sets := traffic.SiloWeights(w0, 3, traffic.Moderate, 84)
	f, err := fed.New(g, w0, sets, mpc.Params{Mode: mpc.ModeIdeal, Seed: 85})
	if err != nil {
		t.Fatal(err)
	}
	landmarks := lb.SelectLandmarks(g, w0, 3, 2)
	lm := lb.PrecomputeLandmarks(f, landmarks, 0)

	e, err := NewEngine(f, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for li, l := range landmarks {
		// The matrices store distances v→l; on our symmetric-topology grids
		// with per-direction weights we verify against a federated SSSP on
		// the reversed direction by querying each vertex pair directly.
		for v := 0; v < g.NumVertices(); v += 5 {
			res, _, err := e.SPSP(graph.Vertex(v), l)
			if err != nil {
				t.Fatal(err)
			}
			var gotJoint, wantJoint int64
			for p := 0; p < f.P(); p++ {
				gotJoint += res.Partial[p]
				wantJoint += lm.Phi[p][li][v]
			}
			if gotJoint != wantJoint {
				t.Fatalf("landmark %d vertex %d: federated SPSP joint %d != precomputed %d",
					l, v, gotJoint, wantJoint)
			}
		}
	}
}

// TestSSSPTreeMatchesFederatedQueries cross-checks Alg. 1 against repeated
// SPSP queries: the k-th nearest vertex's distance from SSSP must equal an
// independent SPSP to that vertex.
func TestSSSPTreeMatchesFederatedQueries(t *testing.T) {
	g, w0 := graph.GenerateRoadLike(150, 87)
	sets := traffic.SiloWeights(w0, 4, traffic.Heavy, 88)
	f, err := fed.New(g, w0, sets, mpc.Params{Mode: mpc.ModeIdeal, Seed: 89})
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewEngine(f, Options{Queue: pq.KindTMTree})
	if err != nil {
		t.Fatal(err)
	}
	results, _, err := e.SSSP(9, 12)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range results[1:] {
		spsp, _, err := e.SPSP(9, r.Target)
		if err != nil {
			t.Fatal(err)
		}
		var a, b int64
		for p := 0; p < f.P(); p++ {
			a += r.Partial[p]
			b += spsp.Partial[p]
		}
		if a != b {
			t.Fatalf("SSSP dist to %d (%d) != SPSP dist (%d)", r.Target, a, b)
		}
	}
}

// TestDirectedRandomGraphs exercises the full stack on adversarial directed
// topologies (not road-like at all): correctness must not depend on
// symmetry, planarity or hierarchy.
func TestDirectedRandomGraphs(t *testing.T) {
	for seed := uint64(1); seed <= 4; seed++ {
		g, base := graph.GenerateRandomDirected(70, 280, 5000, seed*97)
		// Derive silo weights by congesting the random base weights.
		sets := traffic.SiloWeights(base, 3, traffic.Moderate, seed)
		f, err := fed.New(g, base, sets, mpc.Params{Mode: mpc.ModeIdeal, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		idx, err := ch.Build(f)
		if err != nil {
			t.Fatal(err)
		}
		lm := lb.PrecomputeLandmarks(f, lb.SelectLandmarks(g, base, 4, seed), 0)
		joint := f.JointWeights()
		rng := rand.New(rand.NewPCG(seed, 3))
		for _, opt := range []Options{
			{},
			{Index: idx},
			{Index: idx, Estimator: lb.FedAMPS, Queue: pq.KindTMTree},
			{Estimator: lb.FedALTMax, Landmarks: lm},
		} {
			e, err := NewEngine(f, opt)
			if err != nil {
				t.Fatal(err)
			}
			for trial := 0; trial < 8; trial++ {
				s := graph.Vertex(rng.IntN(g.NumVertices()))
				tt := graph.Vertex(rng.IntN(g.NumVertices()))
				res, _, err := e.SPSP(s, tt)
				if err != nil {
					t.Fatal(err)
				}
				want, _ := graph.DijkstraTo(g, joint, s, tt)
				var got int64
				for p := 0; p < f.P(); p++ {
					got += res.Partial[p]
				}
				if res.Found != (want < graph.InfCost) {
					t.Fatalf("seed %d: found=%v want dist %d", seed, res.Found, want)
				}
				if res.Found && got != want {
					t.Fatalf("seed %d opt %+v: dist(%d,%d) = %d, want %d", seed, opt, s, tt, got, want)
				}
			}
		}
	}
}

// TestAsymmetricPerDirectionWeights verifies that per-direction weights on
// the same road are honored: congesting only one direction must leave the
// reverse query unaffected.
func TestAsymmetricPerDirectionWeights(t *testing.T) {
	b := graph.NewBuilder(3)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	g := b.Build()
	w0 := make(graph.Weights, g.NumArcs())
	for a := range w0 {
		w0[a] = 1000
	}
	mk := func() graph.Weights {
		w := make(graph.Weights, len(w0))
		copy(w, w0)
		return w
	}
	s0, s1 := mk(), mk()
	// Jam only the 0->1 direction on both silos.
	s0[g.FindArc(0, 1)] = 9000
	s1[g.FindArc(0, 1)] = 11000
	f, err := fed.New(g, w0, []graph.Weights{s0, s1}, mpc.Params{Mode: mpc.ModeIdeal, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewEngine(f, Options{})
	if err != nil {
		t.Fatal(err)
	}
	fwd, _, err := e.SPSP(0, 2)
	if err != nil {
		t.Fatal(err)
	}
	rev, _, err := e.SPSP(2, 0)
	if err != nil {
		t.Fatal(err)
	}
	sum := func(p fed.Partial) int64 {
		var s int64
		for _, v := range p {
			s += v
		}
		return s
	}
	if sum(fwd.Partial) != 9000+11000+2000 {
		t.Fatalf("forward cost %d", sum(fwd.Partial))
	}
	if sum(rev.Partial) != 4000 {
		t.Fatalf("reverse cost %d, congestion leaked into the reverse direction", sum(rev.Partial))
	}
}
