package core

import (
	"testing"

	"repro/internal/ch"
	"repro/internal/fed"
	"repro/internal/graph"
	"repro/internal/lb"
	"repro/internal/mpc"
	"repro/internal/pq"
	"repro/internal/traffic"
)

// disconnectedFederation builds two islands (0-1-2 and 3-4-5) with no arcs
// between them.
func disconnectedFederation(t *testing.T) *fed.Federation {
	t.Helper()
	b := graph.NewBuilder(6)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(3, 4)
	b.AddEdge(4, 5)
	g := b.Build()
	w0 := make(graph.Weights, g.NumArcs())
	for a := range w0 {
		w0[a] = 1000
	}
	sets := traffic.SiloWeights(w0, 3, traffic.Moderate, 7)
	f, err := fed.New(g, w0, sets, mpc.Params{Mode: mpc.ModeIdeal, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestUnreachableTargetAllConfigs(t *testing.T) {
	f := disconnectedFederation(t)
	idx, err := ch.Build(f)
	if err != nil {
		t.Fatal(err)
	}
	for _, opt := range []Options{
		{},
		{Index: idx},
		{Estimator: lb.FedAMPS, Queue: pq.KindTMTree},
		{Index: idx, Estimator: lb.FedAMPS, Queue: pq.KindTMTree},
		{Index: idx, Estimator: lb.FedAMPS, Queue: pq.KindTMTree, BatchedMPC: true},
	} {
		e, err := NewEngine(f, opt)
		if err != nil {
			t.Fatal(err)
		}
		res, _, err := e.SPSP(0, 5)
		if err != nil {
			t.Fatal(err)
		}
		if res.Found {
			t.Fatalf("opt %+v: found a path between islands: %v", opt, res.Path)
		}
		// Reachable pair on the same island still works.
		res, _, err = e.SPSP(0, 2)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Found || jointSum(res.Partial) == 0 {
			t.Fatalf("opt %+v: intra-island query broken: %+v", opt, res)
		}
	}
}

func TestSSSPOnDisconnectedGraph(t *testing.T) {
	f := disconnectedFederation(t)
	e, err := NewEngine(f, Options{Queue: pq.KindTMTree})
	if err != nil {
		t.Fatal(err)
	}
	// Asking for more results than the island holds returns just the island.
	results, _, err := e.SSSP(0, 6)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("SSSP crossed islands: %d results", len(results))
	}
	for _, r := range results {
		if r.Target > 2 {
			t.Fatalf("vertex %d reached across the gap", r.Target)
		}
	}
}

// TestProtocolModeIndexBuild runs the ENTIRE federated index construction —
// ordering, witness searches, shortcut decisions — through the full MPC
// protocol on a small network, then checks queries.
func TestProtocolModeIndexBuild(t *testing.T) {
	g, w0 := graph.GenerateGrid(4, 4, 201)
	sets := traffic.SiloWeights(w0, 3, traffic.Moderate, 202)
	f, err := fed.New(g, w0, sets, mpc.Params{Mode: mpc.ModeProtocol, Seed: 203})
	if err != nil {
		t.Fatal(err)
	}
	idx, err := ch.Build(f)
	if err != nil {
		t.Fatal(err)
	}
	if idx.BuildStatistics().SAC.Bytes == 0 {
		t.Fatal("protocol-mode build produced no traffic")
	}
	e, err := NewEngine(f, Options{Index: idx, Estimator: lb.FedAMPS, Queue: pq.KindTMTree})
	if err != nil {
		t.Fatal(err)
	}
	joint := f.JointWeights()
	for s := graph.Vertex(0); s < 4; s++ {
		for tt := graph.Vertex(12); tt < 16; tt++ {
			res, _, err := e.SPSP(s, tt)
			if err != nil {
				t.Fatal(err)
			}
			want, _ := graph.DijkstraTo(g, joint, s, tt)
			if jointSum(res.Partial) != want {
				t.Fatalf("protocol-built index: dist(%d,%d) = %d, want %d",
					s, tt, jointSum(res.Partial), want)
			}
		}
	}
}

// TestEqualWeightTies: identical weights everywhere create maximal ties in
// every comparison — tie-breaking must stay consistent between the index,
// the estimators and the queues.
func TestEqualWeightTies(t *testing.T) {
	g, _ := graph.GenerateGrid(7, 7, 205)
	w := make(graph.Weights, g.NumArcs())
	for a := range w {
		w[a] = 5000
	}
	sets := []graph.Weights{w, append(graph.Weights{}, w...), append(graph.Weights{}, w...)}
	f, err := fed.New(g, w, sets, mpc.Params{Mode: mpc.ModeIdeal, Seed: 206})
	if err != nil {
		t.Fatal(err)
	}
	idx, err := ch.Build(f)
	if err != nil {
		t.Fatal(err)
	}
	joint := f.JointWeights()
	e, err := NewEngine(f, Options{Index: idx, Estimator: lb.FedAMPS, Queue: pq.KindTMTree})
	if err != nil {
		t.Fatal(err)
	}
	for _, pair := range [][2]graph.Vertex{{0, 48}, {6, 42}, {3, 45}, {0, 1}} {
		res, _, err := e.SPSP(pair[0], pair[1])
		if err != nil {
			t.Fatal(err)
		}
		want, _ := graph.DijkstraTo(g, joint, pair[0], pair[1])
		if jointSum(res.Partial) != want {
			t.Fatalf("ties: dist(%d,%d) = %d, want %d", pair[0], pair[1], jointSum(res.Partial), want)
		}
	}
}

// TestExtremeWeightSkew: one silo observes 1000x heavier traffic than the
// others — partial magnitudes diverge wildly but joint queries stay exact.
func TestExtremeWeightSkew(t *testing.T) {
	g, w0 := graph.GenerateGrid(6, 6, 207)
	heavy := make(graph.Weights, len(w0))
	light := make(graph.Weights, len(w0))
	for a := range w0 {
		heavy[a] = w0[a] * 1000
		light[a] = 1 + w0[a]/10
	}
	f, err := fed.New(g, w0, []graph.Weights{heavy, light}, mpc.Params{Mode: mpc.ModeIdeal, Seed: 208})
	if err != nil {
		t.Fatal(err)
	}
	idx, err := ch.Build(f)
	if err != nil {
		t.Fatal(err)
	}
	joint := f.JointWeights()
	e, err := NewEngine(f, Options{Index: idx, Estimator: lb.FedAMPS})
	if err != nil {
		t.Fatal(err)
	}
	for _, pair := range [][2]graph.Vertex{{0, 35}, {5, 30}} {
		res, _, err := e.SPSP(pair[0], pair[1])
		if err != nil {
			t.Fatal(err)
		}
		want, _ := graph.DijkstraTo(g, joint, pair[0], pair[1])
		if jointSum(res.Partial) != want {
			t.Fatalf("skew: dist(%d,%d) = %d, want %d", pair[0], pair[1], jointSum(res.Partial), want)
		}
	}
}
