package core

import (
	"fmt"
	"time"

	"repro/internal/fed"
	"repro/internal/graph"
)

// SSSP answers the federated single-source shortest-path query of Alg. 1:
// the k nearest vertices to s on the weighted joint road network (k = kNN
// query size; pass the vertex count for a full SSSP). The source itself is
// the first result. Runs on the flat road network (the paper's SSSP is the
// building block used inside index construction and kNN services).
func (e *Engine) SSSP(s graph.Vertex, k int) ([]PathResult, QueryStats, error) {
	start := time.Now()
	g := e.f.Graph()
	if int(s) < 0 || int(s) >= g.NumVertices() {
		return nil, QueryStats{}, fmt.Errorf("core: source %d out of range", s)
	}
	if k < 1 {
		return nil, QueryStats{}, fmt.Errorf("core: query size %d must be positive", k)
	}
	if k > g.NumVertices() {
		k = g.NumVertices()
	}
	sac := &timedCmp{inner: e.newComparator(e.f.NewSAC())}
	before := e.f.Engine().Stats()
	q := e.newQueue(sac)
	settled := make(map[graph.Vertex]*label)
	var phases PhaseTimings

	q.Push(&item{v: s, key: e.f.ZeroPartial(), g: e.f.ZeroPartial(), parent: graph.NoVertex, parc: -1})
	var results []PathResult

	for len(results) < k {
		t0 := time.Now()
		it, ok := q.Pop()
		phases.Queue += time.Since(t0)
		if !ok {
			break
		}
		if _, done := settled[it.v]; done {
			continue
		}
		// Local step (Alg. 1 lines 4-8): settle v, record the shortest path,
		// extend by all neighbors and batch-push the new tentative paths.
		settled[it.v] = &label{g: it.g, parent: it.parent, parc: it.parc}
		results = append(results, PathResult{
			Target:  it.v,
			Path:    e.reconstructFlat(settled, it.v),
			Partial: fed.ClonePartial(it.g),
			Found:   true,
		})
		t0 = time.Now()
		first := g.FirstOut(it.v)
		var batch []*item
		for i, u := range g.OutNeighbors(it.v) {
			if _, done := settled[u]; done {
				continue
			}
			a := first + graph.Arc(i)
			ng := make(fed.Partial, e.f.P())
			for p := range ng {
				ng[p] = it.g[p] + e.f.Silo(p).Weight(a)
			}
			batch = append(batch, &item{v: u, key: ng, g: ng, parent: it.v, parc: int32(a)})
		}
		phases.Relax += time.Since(t0)
		// MPC step (Alg. 1 lines 9-13) happens inside the queue: the batch
		// push and the next pop use only Fed-SAC comparisons.
		t0 = time.Now()
		q.PushBatch(batch)
		phases.Queue += time.Since(t0)
		if err := sac.Err(); err != nil {
			return nil, QueryStats{}, err
		}
	}

	phases.SACWait = sac.wait
	stats := QueryStats{
		SettledVertices: len(settled),
		SAC:             e.f.Engine().Stats().Sub(before),
		Queue:           q.Counts(),
		Phases:          phases,
		WallTime:        time.Since(start),
	}
	return results, stats, nil
}

// reconstructFlat walks parent labels back to the source.
func (e *Engine) reconstructFlat(settled map[graph.Vertex]*label, t graph.Vertex) []graph.Vertex {
	var rev []graph.Vertex
	for v := t; v != graph.NoVertex; {
		rev = append(rev, v)
		v = settled[v].parent
	}
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev
}
