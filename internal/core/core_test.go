package core

import (
	"math/rand/v2"
	"sort"
	"testing"

	"repro/internal/ch"
	"repro/internal/fed"
	"repro/internal/graph"
	"repro/internal/lb"
	"repro/internal/mpc"
	"repro/internal/pq"
	"repro/internal/traffic"
)

type fixture struct {
	f     *fed.Federation
	joint graph.Weights
	lm    *lb.Landmarks
	idx   *ch.Index
}

func newFixture(t *testing.T, kind string, seed uint64, mode mpc.Mode) *fixture {
	t.Helper()
	var g *graph.Graph
	var w0 graph.Weights
	switch kind {
	case "grid":
		g, w0 = graph.GenerateGrid(10, 10, seed)
	case "roadlike":
		g, w0 = graph.GenerateRoadLike(300, seed)
	case "tiny":
		g, w0 = graph.GenerateGrid(4, 4, seed)
	default:
		t.Fatalf("unknown fixture kind %s", kind)
	}
	sets := traffic.SiloWeights(w0, 3, traffic.Moderate, seed+1)
	f, err := fed.New(g, w0, sets, mpc.Params{Mode: mode, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	fx := &fixture{f: f, joint: f.JointWeights()}
	fx.lm = lb.PrecomputeLandmarks(f, lb.SelectLandmarks(g, w0, 8, 3), 0)
	fx.idx, err = ch.Build(f)
	if err != nil {
		t.Fatal(err)
	}
	return fx
}

func (fx *fixture) engine(t *testing.T, opt Options) *Engine {
	t.Helper()
	e, err := NewEngine(fx.f, opt)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func jointSum(p fed.Partial) int64 {
	var s int64
	for _, v := range p {
		s += v
	}
	return s
}

// checkSPSP verifies one query result against plaintext Dijkstra on the
// materialized WJRN: the joint cost matches, the path is a real path whose
// joint cost equals the reported cost, and the endpoints are right.
func (fx *fixture) checkSPSP(t *testing.T, res PathResult, s, tt graph.Vertex) {
	t.Helper()
	want, _ := graph.DijkstraTo(fx.f.Graph(), fx.joint, s, tt)
	if !res.Found {
		if want < graph.InfCost {
			t.Fatalf("query (%d,%d): not found, want dist %d", s, tt, want)
		}
		return
	}
	got := jointSum(res.Partial)
	if got != want {
		t.Fatalf("query (%d,%d): joint cost %d, want %d", s, tt, got, want)
	}
	if res.Path[0] != s || res.Path[len(res.Path)-1] != tt {
		t.Fatalf("query (%d,%d): path endpoints %v", s, tt, res.Path)
	}
	pc, err := graph.PathCost(fx.f.Graph(), fx.joint, res.Path)
	if err != nil {
		t.Fatalf("query (%d,%d): invalid path: %v", s, tt, err)
	}
	if pc != want {
		t.Fatalf("query (%d,%d): path cost %d, want %d", s, tt, pc, want)
	}
}

func TestSPSPAllConfigurationsMatchWJRN(t *testing.T) {
	for _, kind := range []string{"grid", "roadlike"} {
		fx := newFixture(t, kind, 51, mpc.ModeIdeal)
		rng := rand.New(rand.NewPCG(1, 1))
		n := fx.f.Graph().NumVertices()
		for _, useIdx := range []bool{false, true} {
			for _, est := range []lb.Kind{lb.None, lb.FedALT, lb.FedALTMax, lb.FedAMPS} {
				for _, q := range []pq.Kind{pq.KindHeap, pq.KindLeftist, pq.KindTMTree} {
					opt := Options{Queue: q, Estimator: est, Landmarks: fx.lm}
					if useIdx {
						opt.Index = fx.idx
					}
					e := fx.engine(t, opt)
					for trial := 0; trial < 6; trial++ {
						s := graph.Vertex(rng.IntN(n))
						tt := graph.Vertex(rng.IntN(n))
						res, _, err := e.SPSP(s, tt)
						if err != nil {
							t.Fatalf("%s idx=%v est=%s q=%s: %v", kind, useIdx, est, q, err)
						}
						fx.checkSPSP(t, res, s, tt)
					}
				}
			}
		}
	}
}

func TestSPSPManyRandomQueriesDefaultStack(t *testing.T) {
	// The paper's full stack (shortcuts + Fed-AMPS + TM-tree), hammered.
	fx := newFixture(t, "grid", 53, mpc.ModeIdeal)
	e := fx.engine(t, Options{Queue: pq.KindTMTree, Estimator: lb.FedAMPS, Index: fx.idx})
	rng := rand.New(rand.NewPCG(2, 2))
	n := fx.f.Graph().NumVertices()
	for trial := 0; trial < 120; trial++ {
		s := graph.Vertex(rng.IntN(n))
		tt := graph.Vertex(rng.IntN(n))
		res, _, err := e.SPSP(s, tt)
		if err != nil {
			t.Fatal(err)
		}
		fx.checkSPSP(t, res, s, tt)
	}
}

func TestSPSPSelfQuery(t *testing.T) {
	fx := newFixture(t, "tiny", 55, mpc.ModeIdeal)
	e := fx.engine(t, Options{})
	res, st, err := e.SPSP(5, 5)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Found || len(res.Path) != 1 || res.Path[0] != 5 || jointSum(res.Partial) != 0 {
		t.Fatalf("self query: %+v", res)
	}
	if st.SAC.Compares != 0 {
		t.Fatal("self query used comparisons")
	}
}

func TestSPSPRejectsBadInput(t *testing.T) {
	fx := newFixture(t, "tiny", 57, mpc.ModeIdeal)
	e := fx.engine(t, Options{})
	if _, _, err := e.SPSP(-1, 2); err == nil {
		t.Fatal("negative source accepted")
	}
	if _, _, err := e.SPSP(0, 9999); err == nil {
		t.Fatal("out-of-range target accepted")
	}
}

func TestSSSPMatchesPlaintextTopK(t *testing.T) {
	fx := newFixture(t, "grid", 59, mpc.ModeIdeal)
	g := fx.f.Graph()
	full := graph.Dijkstra(g, fx.joint, 7)
	dists := append([]int64(nil), full.Dist...)
	sort.Slice(dists, func(i, j int) bool { return dists[i] < dists[j] })

	for _, q := range []pq.Kind{pq.KindHeap, pq.KindTMTree} {
		e := fx.engine(t, Options{Queue: q})
		const k = 25
		results, stats, err := e.SSSP(7, k)
		if err != nil {
			t.Fatal(err)
		}
		if len(results) != k {
			t.Fatalf("got %d results, want %d", len(results), k)
		}
		if results[0].Target != 7 || jointSum(results[0].Partial) != 0 {
			t.Fatalf("first result must be the source: %+v", results[0])
		}
		prev := int64(0)
		for i, r := range results {
			d := jointSum(r.Partial)
			if d != full.Dist[r.Target] {
				t.Fatalf("result %d: dist %d != Dijkstra %d for target %d", i, d, full.Dist[r.Target], r.Target)
			}
			if d != dists[i] {
				t.Fatalf("result %d: dist %d is not the %d-th smallest (%d)", i, d, i, dists[i])
			}
			if d < prev {
				t.Fatalf("results not in ascending distance order at %d", i)
			}
			prev = d
			pc, err := graph.PathCost(g, fx.joint, r.Path)
			if err != nil || pc != d {
				t.Fatalf("result %d: bad path (cost %d, err %v, want %d)", i, pc, err, d)
			}
		}
		if stats.SettledVertices != k {
			t.Fatalf("settled %d vertices for k=%d", stats.SettledVertices, k)
		}
	}
}

func TestSSSPFullGraph(t *testing.T) {
	fx := newFixture(t, "tiny", 61, mpc.ModeIdeal)
	g := fx.f.Graph()
	e := fx.engine(t, Options{})
	results, _, err := e.SSSP(0, g.NumVertices()+100) // k clamped
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != g.NumVertices() {
		t.Fatalf("full SSSP returned %d of %d vertices", len(results), g.NumVertices())
	}
	if _, _, err := e.SSSP(0, 0); err == nil {
		t.Fatal("k=0 accepted")
	}
}

func TestShortcutIndexReducesComparisons(t *testing.T) {
	// Fig. 7 shape: shortcuts + Fed-AMPS slash the Fed-SAC count of long
	// queries by a large factor, and TM-tree reduces it further.
	fx := newFixture(t, "grid", 63, mpc.ModeIdeal)
	n := fx.f.Graph().NumVertices()
	s, tt := graph.Vertex(0), graph.Vertex(n-1) // opposite grid corners

	run := func(opt Options) int64 {
		e := fx.engine(t, opt)
		res, stats, err := e.SPSP(s, tt)
		if err != nil {
			t.Fatal(err)
		}
		fx.checkSPSP(t, res, s, tt)
		return stats.SAC.Compares
	}
	naive := run(Options{Queue: pq.KindHeap})
	withIdx := run(Options{Queue: pq.KindHeap, Index: fx.idx})
	withAMPS := run(Options{Queue: pq.KindHeap, Index: fx.idx, Estimator: lb.FedAMPS})
	withTM := run(Options{Queue: pq.KindTMTree, Index: fx.idx, Estimator: lb.FedAMPS})
	if withIdx >= naive {
		t.Fatalf("shortcut index did not reduce comparisons: %d vs %d", withIdx, naive)
	}
	if withAMPS >= withIdx {
		t.Fatalf("Fed-AMPS did not reduce comparisons: %d vs %d", withAMPS, withIdx)
	}
	if withTM >= withAMPS {
		t.Fatalf("TM-tree did not reduce comparisons: %d vs %d", withTM, withAMPS)
	}
}

func TestProtocolModeEndToEnd(t *testing.T) {
	// Full MPC protocol under the complete optimization stack on a small
	// network: the ultimate integration test.
	fx := newFixture(t, "tiny", 65, mpc.ModeProtocol)
	e := fx.engine(t, Options{Queue: pq.KindTMTree, Estimator: lb.FedAMPS, Index: fx.idx})
	rng := rand.New(rand.NewPCG(4, 4))
	n := fx.f.Graph().NumVertices()
	for trial := 0; trial < 8; trial++ {
		s := graph.Vertex(rng.IntN(n))
		tt := graph.Vertex(rng.IntN(n))
		res, stats, err := e.SPSP(s, tt)
		if err != nil {
			t.Fatal(err)
		}
		fx.checkSPSP(t, res, s, tt)
		if s != tt && stats.SAC.Bytes == 0 {
			t.Fatal("protocol mode produced no traffic")
		}
	}
}

func TestQueryStatsPopulated(t *testing.T) {
	fx := newFixture(t, "grid", 67, mpc.ModeIdeal)
	e := fx.engine(t, Options{Queue: pq.KindTMTree, Estimator: lb.FedAMPS, Index: fx.idx})
	_, stats, err := e.SPSP(0, graph.Vertex(fx.f.Graph().NumVertices()-1))
	if err != nil {
		t.Fatal(err)
	}
	if stats.SettledVertices == 0 || stats.SAC.Compares == 0 || stats.Queue.Pushes == 0 {
		t.Fatalf("stats incomplete: %+v", stats)
	}
	if stats.SAC.Rounds == 0 || stats.SAC.Bytes == 0 || stats.SAC.SimNet == 0 {
		t.Fatalf("communication accounting missing: %+v", stats.SAC)
	}
}

func TestNewEngineValidation(t *testing.T) {
	fx := newFixture(t, "tiny", 69, mpc.ModeIdeal)
	if _, err := NewEngine(fx.f, Options{Estimator: lb.FedALT}); err == nil {
		t.Fatal("Fed-ALT without landmarks accepted")
	}
	if _, err := NewEngine(fx.f, Options{Estimator: lb.Kind("zzz")}); err == nil {
		t.Fatal("unknown estimator accepted")
	}
	if _, err := NewEngine(fx.f, Options{Queue: pq.Kind("zzz")}); err == nil {
		t.Fatal("unknown queue accepted")
	}
	// Index bound to a different federation is rejected.
	other := newFixture(t, "tiny", 71, mpc.ModeIdeal)
	if _, err := NewEngine(fx.f, Options{Index: other.idx}); err == nil {
		t.Fatal("foreign index accepted")
	}
}

func TestSPSPAfterDynamicUpdate(t *testing.T) {
	// End-to-end: traffic changes, the index updates, queries stay exact.
	fx := newFixture(t, "grid", 73, mpc.ModeIdeal)
	g := fx.f.Graph()
	rng := rand.New(rand.NewPCG(5, 5))
	var changed []graph.Arc
	for _, ai := range rng.Perm(g.NumArcs())[:g.NumArcs()/20] {
		a := graph.Arc(ai)
		changed = append(changed, a)
		for p := 0; p < fx.f.P(); p++ {
			fx.f.Silo(p).SetWeight(a, fx.f.StaticWeights()[a]*2+int64(rng.IntN(5000)))
		}
	}
	if _, err := fx.idx.Update(changed); err != nil {
		t.Fatal(err)
	}
	fx.joint = fx.f.JointWeights()
	e := fx.engine(t, Options{Queue: pq.KindTMTree, Estimator: lb.FedAMPS, Index: fx.idx})
	n := g.NumVertices()
	for trial := 0; trial < 40; trial++ {
		s := graph.Vertex(rng.IntN(n))
		tt := graph.Vertex(rng.IntN(n))
		res, _, err := e.SPSP(s, tt)
		if err != nil {
			t.Fatal(err)
		}
		fx.checkSPSP(t, res, s, tt)
	}
}
