package soak

import (
	"testing"
	"time"
)

// A short full soak: the mixed phase must serve queries with zero oracle
// violations and exact admission accounting, and the throughput phase must
// show the warm cache beating the uncached engine on repeated OD pairs.
func TestSoakSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("soak takes a second of wall time")
	}
	rep, err := Run(Config{
		Vertices: 150,
		Duration: 600 * time.Millisecond,
		Workers:  6,
	})
	if err != nil {
		t.Fatal(err)
	}
	if vs := rep.Violations(); len(vs) != 0 {
		t.Fatalf("soak violations: %v", vs)
	}
	if rep.Queries == 0 || rep.TrafficBatches == 0 {
		t.Fatalf("soak did nothing: %+v", rep)
	}
	if rep.OracleChecks != rep.Queries {
		t.Fatalf("checked %d of %d responses", rep.OracleChecks, rep.Queries)
	}
	if rep.CacheHits+rep.CacheMisses+rep.CacheCoalesced != rep.Queries {
		t.Fatalf("cache accounting: %d+%d+%d != %d queries",
			rep.CacheHits, rep.CacheMisses, rep.CacheCoalesced, rep.Queries)
	}
	if rep.WarmCacheQPS <= rep.UncachedQPS {
		t.Fatalf("warm cache %.0f qps not faster than uncached %.0f qps", rep.WarmCacheQPS, rep.UncachedQPS)
	}
}
