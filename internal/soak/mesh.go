// Cross-process mesh chaos: the deployment-shaped counterpart of the
// in-process soak. RunMeshChaos spawns one OS process per silo (the fedmesh
// binary re-executing itself), connects them into a resilient multiplexed
// TCP mesh — mTLS when configured — and drives a stream of federated
// shortest-path queries while links are broken mid-round and one silo is
// killed and restarted. Every query must either complete with the plaintext
// Dijkstra answer or fail with a typed transport error; hangs are caught by
// a hard wall-clock deadline, and the coordinator's mesh counters must show
// at least one automatic reconnection.
//
// The query protocol is a replicated-control-flow federated Dijkstra: each
// silo holds its private additive share of every arc weight, all silos run
// the same public Dijkstra control flow, and every branch decision (frontier
// argmin, relaxation test) is one secure comparison via mpc.RunCompareParty
// over a per-query mux lane. The per-query dealer is re-seeded from
// Seed⊕query, so a silo process restarted mid-run regenerates exactly the
// correlated randomness its peers hold — no offline state survives a crash.
package soak

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand/v2"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"time"

	fedroad "repro"
	"repro/internal/graph"
	"repro/internal/mpc"
	"repro/internal/transport"
)

// Mesh lane allocation. Lane 0 is the mux control lane; lane 1 carries the
// query rendezvous (BEGIN/ACK/END); query q runs its MPC rounds on lane
// 16+q, fresh per query so an aborted attempt can never feed stale frames
// into a later one.
const (
	laneRendezvous uint32 = 1
	queryLaneBase  uint32 = 16
	endQuery       uint32 = ^uint32(0)
)

// MeshPartyConfig configures one silo process of the chaos mesh.
type MeshPartyConfig struct {
	Party    int
	Silos    int
	Addrs    []string // addrs[i] = silo i's mesh listen address
	CertDir  string   // throwaway PKI dir ("" = plaintext links)
	Seed     uint64
	Vertices int
	Queries  int // coordinator only: queries to drive

	RoundTimeout time.Duration // per-lane MPC round bound
	Heartbeat    time.Duration // mesh liveness ping interval
	ChaosBreak   time.Duration // self-inject a random link break this often (0 = off)
	IdleExit     time.Duration // follower exits after this long without a BEGIN

	Out io.Writer // result stream (JSON lines); coordinator's goes to the driver
	Log io.Writer // human progress log
}

func (c MeshPartyConfig) withDefaults() MeshPartyConfig {
	if c.Vertices == 0 {
		c.Vertices = 24
	}
	if c.Queries == 0 {
		c.Queries = 200
	}
	// 1s comfortably bounds an 8-round loopback compare (normally <5ms) and
	// caps the dead time when a break between two OTHER silos aborts them
	// mid-round: this party's Recv then has nothing coming and must wait the
	// full round timeout before failing the query typed.
	if c.RoundTimeout == 0 {
		c.RoundTimeout = time.Second
	}
	if c.Heartbeat == 0 {
		c.Heartbeat = 100 * time.Millisecond
	}
	if c.IdleExit == 0 {
		c.IdleExit = 30 * time.Second
	}
	if c.Out == nil {
		c.Out = io.Discard
	}
	if c.Log == nil {
		c.Log = io.Discard
	}
	return c
}

// MeshQueryResult is one query outcome emitted by the coordinator, one JSON
// line each. ErrKind is the typed-failure classification; an empty ErrKind
// with a non-empty Err is an untyped failure and counts as a violation.
type MeshQueryResult struct {
	Q       int    `json:"q"`
	Src     int    `json:"src"`
	Dst     int    `json:"dst"`
	Found   bool   `json:"found"`
	Joint   int64  `json:"joint"`
	Settled int    `json:"settled"`
	Err     string `json:"err,omitempty"`
	ErrKind string `json:"err_kind,omitempty"`
}

// meshRunSummary is the final JSON line each party emits: its mesh counters.
type meshRunSummary struct {
	Done    bool                `json:"done"`
	Party   int                 `json:"party"`
	Queries int                 `json:"queries"`
	Stats   transport.MeshStats `json:"stats"`
}

// classifyMeshErr maps a query failure onto the typed taxonomy. "untyped"
// marks an error outside the closed set — protocol desync, share corruption
// — which the chaos driver treats as a correctness violation.
func classifyMeshErr(err error) string {
	switch {
	case err == nil:
		return ""
	case errors.Is(err, transport.ErrPeerDown):
		return "peer_down"
	case transport.IsTimeout(err):
		return "timeout"
	case errors.Is(err, transport.ErrLaneClosed):
		return "lane_closed"
	case errors.Is(err, errRendezvous):
		return "rendezvous"
	}
	return "untyped"
}

// errRendezvous marks a query that never got all silos to the starting line
// (a peer was down or had already burned its attempt). Typed and expected
// under chaos.
var errRendezvous = errors.New("soak: query rendezvous failed")

// meshParty is one silo's runtime state.
type meshParty struct {
	cfg  MeshPartyConfig
	mesh *transport.Mesh
	rdv  *transport.LaneConn
	g    *fedroad.Graph
	mine fedroad.Weights // this silo's private weight share
}

// RunMeshParty runs one silo process of the chaos mesh until the query
// stream ends (or, for followers, the coordinator goes silent past
// IdleExit). It always emits a final summary line with the mesh counters.
func RunMeshParty(cfg MeshPartyConfig) error {
	cfg = cfg.withDefaults()
	if cfg.Silos < 2 || cfg.Party < 0 || cfg.Party >= cfg.Silos {
		return fmt.Errorf("soak: party %d of %d silos out of range", cfg.Party, cfg.Silos)
	}
	if len(cfg.Addrs) != cfg.Silos {
		return fmt.Errorf("soak: %d addrs for %d silos", len(cfg.Addrs), cfg.Silos)
	}

	// Every process derives the identical federation deterministically; only
	// silosW[Party] is "its" private data.
	g, w0 := fedroad.GenerateRoadNetwork(cfg.Vertices, cfg.Seed)
	silosW := fedroad.SimulateCongestion(w0, cfg.Silos, fedroad.Moderate, cfg.Seed+1)

	opts := transport.MeshOptions{Heartbeat: cfg.Heartbeat}
	if cfg.CertDir != "" {
		opts.TLS = transport.TestCertConfig(cfg.CertDir, cfg.Party)
	}
	mesh, err := transport.DialMeshMux(cfg.Party, cfg.Silos, cfg.Addrs, opts)
	if err != nil {
		return fmt.Errorf("soak: party %d mesh: %w", cfg.Party, err)
	}
	defer mesh.Close()
	fmt.Fprintf(cfg.Log, "party %d: mesh up (%d silos, tls=%v)\n", cfg.Party, cfg.Silos, opts.TLS.Enabled())

	// Self-injected link breaks: mid-round disconnects the redial machinery
	// must absorb. Deterministic per (seed, party).
	if cfg.ChaosBreak > 0 {
		stop := make(chan struct{})
		defer close(stop)
		go func() {
			rng := rand.New(rand.NewPCG(cfg.Seed, uint64(cfg.Party)+0xc4a05))
			t := time.NewTicker(cfg.ChaosBreak)
			defer t.Stop()
			for {
				select {
				case <-stop:
					return
				case <-t.C:
					peer := rng.IntN(cfg.Silos)
					if peer != cfg.Party {
						mesh.BreakLink(peer)
					}
				}
			}
		}()
	}

	p := &meshParty{cfg: cfg, mesh: mesh, g: g, mine: silosW[cfg.Party]}
	p.rdv = mesh.Lane(laneRendezvous)
	p.rdv.SetRoundTimeout(200 * time.Millisecond) // rendezvous loops poll past link flaps
	var queries int
	if cfg.Party == 0 {
		queries, err = p.coordinate()
	} else {
		queries, err = p.follow()
	}

	sum := meshRunSummary{Done: true, Party: cfg.Party, Queries: queries, Stats: mesh.Stats()}
	if b, merr := json.Marshal(sum); merr == nil {
		fmt.Fprintf(cfg.Out, "%s\n", b)
	}
	return err
}

// encodeBegin packs a BEGIN frame: query number, source, target.
func encodeBegin(q uint32, src, dst fedroad.Vertex) []byte {
	b := make([]byte, 12)
	binary.LittleEndian.PutUint32(b[0:], q)
	binary.LittleEndian.PutUint32(b[4:], uint32(src))
	binary.LittleEndian.PutUint32(b[8:], uint32(dst))
	return b
}

// coordinate drives the query stream from silo 0: per query, a reliable
// BEGIN/ACK rendezvous (retried across link flaps until a deadline), then
// the federated Dijkstra on the query's own lane, then one result line.
func (p *meshParty) coordinate() (int, error) {
	nV := p.g.NumVertices()
	rng := rand.New(rand.NewPCG(p.cfg.Seed+17, 0))
	rdvBudget := 4 * p.cfg.RoundTimeout
	if rdvBudget < 8*time.Second {
		rdvBudget = 8 * time.Second
	}
	enc := json.NewEncoder(p.cfg.Out)
	for q := 0; q < p.cfg.Queries; q++ {
		src := fedroad.Vertex(rng.IntN(nV))
		dst := fedroad.Vertex(rng.IntN(nV))
		res := MeshQueryResult{Q: q, Src: int(src), Dst: int(dst)}
		if err := p.rendezvous(uint32(q), src, dst, time.Now().Add(rdvBudget)); err != nil {
			res.Err, res.ErrKind = err.Error(), classifyMeshErr(err)
		} else {
			found, joint, settled, err := p.runQuery(uint32(q), src, dst)
			res.Found, res.Joint, res.Settled = found, joint, settled
			if err != nil {
				res.Found, res.Joint = false, 0
				res.Err, res.ErrKind = err.Error(), classifyMeshErr(err)
			}
		}
		if err := enc.Encode(res); err != nil {
			return q, fmt.Errorf("soak: emit result: %w", err)
		}
	}
	p.broadcastEnd()
	return p.cfg.Queries, nil
}

// rendezvous gets every follower to the starting line of query q. BEGIN
// sends are retried across down links until the deadline; ACKs carry the
// query number (stale ones are discarded) and an accept flag — a follower
// that already burned its attempt on q NACKs, failing the query typed.
func (p *meshParty) rendezvous(q uint32, src, dst fedroad.Vertex, deadline time.Time) error {
	begin := encodeBegin(q, src, dst)
	for peer := 1; peer < p.cfg.Silos; peer++ {
		for {
			err := p.rdv.Send(peer, begin)
			if err == nil {
				break
			}
			if time.Now().After(deadline) {
				return fmt.Errorf("%w: begin to silo %d: %v", errRendezvous, peer, err)
			}
			time.Sleep(25 * time.Millisecond)
		}
	}
	for peer := 1; peer < p.cfg.Silos; peer++ {
		for {
			msg, err := p.rdv.Recv(peer)
			if err != nil {
				if time.Now().After(deadline) {
					return fmt.Errorf("%w: ack from silo %d: %v", errRendezvous, peer, err)
				}
				time.Sleep(10 * time.Millisecond)
				continue
			}
			if len(msg) < 5 {
				return fmt.Errorf("%w: malformed ack from silo %d", errRendezvous, peer)
			}
			aq := binary.LittleEndian.Uint32(msg)
			if aq != q {
				continue // stale ack of an earlier, already-failed query
			}
			if msg[4] == 0 {
				return fmt.Errorf("%w: silo %d already attempted query %d", errRendezvous, peer, q)
			}
			break
		}
	}
	return nil
}

// broadcastEnd tells the followers the stream is over; best-effort with a
// short retry window (a follower that misses it exits on IdleExit).
func (p *meshParty) broadcastEnd() {
	end := encodeBegin(endQuery, 0, 0)
	deadline := time.Now().Add(2 * time.Second)
	for peer := 1; peer < p.cfg.Silos; peer++ {
		for p.rdv.Send(peer, end) != nil && time.Now().Before(deadline) {
			time.Sleep(25 * time.Millisecond)
		}
	}
}

// follow is the follower loop: wait for BEGIN, ACK, run the query, repeat.
// A follower never re-runs a query number — a duplicate BEGIN (its first
// ACK was lost to a link flap) is NACKed, because the first attempt may
// already have put frames on the query lane.
func (p *meshParty) follow() (int, error) {
	lastQ := -1
	ran := 0
	idle := time.Now()
	for {
		msg, err := p.rdv.Recv(0)
		if err != nil {
			if time.Since(idle) > p.cfg.IdleExit {
				return ran, fmt.Errorf("soak: party %d: no BEGIN for %v, assuming coordinator gone", p.cfg.Party, p.cfg.IdleExit)
			}
			time.Sleep(10 * time.Millisecond)
			continue
		}
		idle = time.Now()
		if len(msg) < 12 {
			continue
		}
		q := binary.LittleEndian.Uint32(msg)
		if q == endQuery {
			return ran, nil
		}
		src := fedroad.Vertex(binary.LittleEndian.Uint32(msg[4:]))
		dst := fedroad.Vertex(binary.LittleEndian.Uint32(msg[8:]))
		ack := []byte{0, 0, 0, 0, 1}
		binary.LittleEndian.PutUint32(ack, q)
		if int(q) <= lastQ {
			ack[4] = 0 // duplicate: refuse, the lane may hold attempt-one frames
			p.rdv.Send(0, ack)
			continue
		}
		lastQ = int(q)
		if p.rdv.Send(0, ack) != nil {
			continue // coordinator will time the rendezvous out
		}
		if _, _, _, err := p.runQuery(q, src, dst); err != nil {
			fmt.Fprintf(p.cfg.Log, "party %d: query %d failed: %v\n", p.cfg.Party, q, err)
		}
		ran++
	}
}

// runQuery executes this party's role of federated Dijkstra for query q:
// public control flow, private additive weight shares, one secure
// comparison per branch decision. On success the followers open their
// distance share of dst toward the coordinator, which returns the joint
// cost. settled counts settled vertices (identical at every party).
func (p *meshParty) runQuery(q uint32, src, dst fedroad.Vertex) (found bool, joint int64, settled int, err error) {
	lane := p.mesh.Lane(queryLaneBase + q)
	lane.SetRoundTimeout(p.cfg.RoundTimeout)
	defer lane.Close()

	// Per-query dealer: every party regenerates the full correlated
	// randomness from the shared seed and keeps only its own slice — the
	// offline phase modeled as a deterministic function, so a restarted
	// process is instantly back in sync.
	dealer := mpc.NewDealer(p.cfg.Silos, p.cfg.Seed^(0x6d657368+uint64(q)*0x9e3779b97f4a7c15))
	me := p.cfg.Party
	cmp := func(diff int64) (bool, error) {
		tuples := dealer.CmpTuples()
		return mpc.RunCompareParty(lane, diff, &tuples[me])
	}

	nV := p.g.NumVertices()
	const (
		unseen = iota
		inFrontier
		done
	)
	dist := make([]int64, nV) // this party's additive share of each label
	state := make([]byte, nV)
	frontier := []fedroad.Vertex{src}
	state[src] = inFrontier
	for len(frontier) > 0 {
		// Secure argmin over the frontier by linear scan: same comparison
		// bits at every party, hence the same settle order.
		best := 0
		for i := 1; i < len(frontier); i++ {
			less, cerr := cmp(dist[frontier[i]] - dist[frontier[best]])
			if cerr != nil {
				return false, 0, settled, cerr
			}
			if less {
				best = i
			}
		}
		u := frontier[best]
		frontier[best] = frontier[len(frontier)-1]
		frontier = frontier[:len(frontier)-1]
		state[u] = done
		settled++
		if u == dst {
			found = true
			break
		}
		arc := p.g.FirstOut(u)
		for _, v := range p.g.OutNeighbors(u) {
			if state[v] != done {
				cand := dist[u] + int64(p.mine[arc])
				if state[v] == unseen {
					dist[v] = cand
					state[v] = inFrontier
					frontier = append(frontier, v)
				} else {
					less, cerr := cmp(cand - dist[v])
					if cerr != nil {
						return false, 0, settled, cerr
					}
					if less {
						dist[v] = cand
					}
				}
			}
			arc++
		}
	}

	if !found {
		return false, 0, settled, nil
	}
	// Open the result toward the coordinator: the route cost is the query's
	// public output, the per-arc shares never leave their silo.
	var share [8]byte
	if me != 0 {
		binary.LittleEndian.PutUint64(share[:], uint64(dist[dst]))
		if serr := lane.Send(0, share[:]); serr != nil {
			return false, 0, settled, serr
		}
		return true, 0, settled, nil
	}
	joint = dist[dst]
	for peer := 1; peer < p.cfg.Silos; peer++ {
		msg, rerr := lane.Recv(peer)
		if rerr != nil {
			return false, 0, settled, rerr
		}
		if len(msg) != 8 {
			return false, 0, settled, fmt.Errorf("soak: bad share frame from silo %d", peer)
		}
		joint += int64(binary.LittleEndian.Uint64(msg))
	}
	return true, joint, settled, nil
}

// ---------------------------------------------------------------------------
// Driver side: spawn, kill, restart, verify.

// MeshChaosConfig sizes the cross-process chaos run. Bin is the fedmesh
// binary (usually the driver's own executable, re-exec'd in -party mode).
type MeshChaosConfig struct {
	Bin      string
	Silos    int
	Queries  int
	Vertices int
	Seed     uint64
	WorkDir  string // logs + throwaway certs; temp dir when empty
	TLS      bool   // mTLS on every link (throwaway in-run PKI)
	Kill     bool   // kill + restart the highest silo once, mid-run
	// ChaosBreak is the per-silo self-injected link-break interval.
	ChaosBreak   time.Duration
	RoundTimeout time.Duration
	Heartbeat    time.Duration
	Timeout      time.Duration // hard wall-clock bound; exceeding it is a hang
	Log          io.Writer
}

func (c MeshChaosConfig) withDefaults() MeshChaosConfig {
	if c.Silos == 0 {
		c.Silos = 3
	}
	if c.Queries == 0 {
		c.Queries = 200
	}
	if c.Vertices == 0 {
		c.Vertices = 24
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	// Break links often enough that a meaningful share of queries race a
	// redial, but not so often that third-party round timeouts (see
	// MeshPartyConfig.RoundTimeout) dominate wall time and starve the run.
	if c.ChaosBreak == 0 {
		c.ChaosBreak = 400 * time.Millisecond
	}
	if c.RoundTimeout == 0 {
		c.RoundTimeout = time.Second
	}
	if c.Heartbeat == 0 {
		c.Heartbeat = 100 * time.Millisecond
	}
	if c.Timeout == 0 {
		c.Timeout = 5 * time.Minute
	}
	if c.Log == nil {
		c.Log = io.Discard
	}
	return c
}

// MeshChaosReport is the verified outcome of a chaos run.
type MeshChaosReport struct {
	Silos         int            `json:"silos"`
	Queries       int            `json:"queries"`
	Results       int            `json:"results"`
	Succeeded     int            `json:"succeeded"`
	Unreachable   int            `json:"unreachable"`
	FailedTyped   int            `json:"failed_typed"`
	FailedUntyped int            `json:"failed_untyped"`
	Incorrect     int            `json:"incorrect"`
	FailureKinds  map[string]int `json:"failure_kinds,omitempty"`
	Kills         int            `json:"kills"`
	Restarts      int            `json:"restarts"`
	Reconnects    int64          `json:"reconnects"`
	HeartbeatMiss int64          `json:"heartbeat_misses"`
	WallMs        int64          `json:"wall_ms"`
}

// Violations summarizes why a run is unacceptable ("" = clean): incorrect
// results, untyped failures, a short result stream, or zero observed
// reconnections.
func (r *MeshChaosReport) Violations() string {
	var v []string
	if r.Incorrect > 0 {
		v = append(v, fmt.Sprintf("%d incorrect results", r.Incorrect))
	}
	if r.FailedUntyped > 0 {
		v = append(v, fmt.Sprintf("%d untyped failures", r.FailedUntyped))
	}
	if r.Results < r.Queries {
		v = append(v, fmt.Sprintf("only %d/%d results (coordinator died early)", r.Results, r.Queries))
	}
	if r.Reconnects == 0 {
		v = append(v, "no automatic reconnection observed")
	}
	return strings.Join(v, "; ")
}

// reserveAddrs picks a loopback port per silo by bind-and-release. The
// window between release and the silo process binding is the usual
// ephemeral-port race; acceptable for a test harness.
func reserveAddrs(n int) ([]string, error) {
	addrs := make([]string, n)
	for i := range addrs {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		addrs[i] = ln.Addr().String()
		ln.Close()
	}
	return addrs, nil
}

// meshProcs tracks the silo processes across kill/restart.
type meshProcs struct {
	mu    sync.Mutex
	cmds  []*exec.Cmd
	files []*os.File
}

func (mp *meshProcs) set(i int, c *exec.Cmd) {
	mp.mu.Lock()
	mp.cmds[i] = c
	mp.mu.Unlock()
}

// killAll force-kills every live silo process and closes the log files.
func (mp *meshProcs) killAll() {
	mp.mu.Lock()
	defer mp.mu.Unlock()
	for _, c := range mp.cmds {
		if c != nil && c.Process != nil {
			c.Process.Kill()
			c.Wait()
		}
	}
	for _, f := range mp.files {
		if f != nil {
			f.Close()
		}
	}
}

// RunMeshChaos executes the full cross-process chaos scenario and verifies
// every emitted result against plaintext Dijkstra on the joint weights. The
// returned report is valid even when err != nil describes a violation;
// operational failures (spawn, certs) return a nil report.
func RunMeshChaos(cfg MeshChaosConfig) (*MeshChaosReport, error) {
	cfg = cfg.withDefaults()
	if cfg.Bin == "" {
		return nil, fmt.Errorf("soak: mesh chaos needs the fedmesh binary path")
	}
	if cfg.Silos < 3 {
		return nil, fmt.Errorf("soak: mesh chaos needs at least 3 silos")
	}
	workDir := cfg.WorkDir
	if workDir == "" {
		d, err := os.MkdirTemp("", "fedmesh-chaos-")
		if err != nil {
			return nil, err
		}
		defer os.RemoveAll(d)
		workDir = d
	}
	certDir := ""
	if cfg.TLS {
		certDir = filepath.Join(workDir, "certs")
		if err := os.MkdirAll(certDir, 0o700); err != nil {
			return nil, err
		}
		if err := transport.GenerateTestCerts(certDir, cfg.Silos); err != nil {
			return nil, err
		}
	}
	addrs, err := reserveAddrs(cfg.Silos)
	if err != nil {
		return nil, err
	}

	// Plaintext oracle: the driver holds what no silo does — the joint
	// weights — and replays every answer against them.
	g, w0 := fedroad.GenerateRoadNetwork(cfg.Vertices, cfg.Seed)
	silosW := fedroad.SimulateCongestion(w0, cfg.Silos, fedroad.Moderate, cfg.Seed+1)
	joint := jointOf(silosW, g.NumArcs())

	procs := &meshProcs{cmds: make([]*exec.Cmd, cfg.Silos), files: make([]*os.File, cfg.Silos)}
	defer procs.killAll()
	spawn := func(party int) (io.ReadCloser, error) {
		args := []string{
			"-party", strconv.Itoa(party),
			"-silos", strconv.Itoa(cfg.Silos),
			"-addrs", strings.Join(addrs, ","),
			"-seed", strconv.FormatUint(cfg.Seed, 10),
			"-queries", strconv.Itoa(cfg.Queries),
			"-vertices", strconv.Itoa(cfg.Vertices),
			"-round-timeout", cfg.RoundTimeout.String(),
			"-heartbeat", cfg.Heartbeat.String(),
			"-chaos-break", cfg.ChaosBreak.String(),
		}
		if certDir != "" {
			args = append(args, "-cert-dir", certDir)
		}
		cmd := exec.Command(cfg.Bin, args...)
		lf := procs.files[party]
		if lf == nil {
			lf, err = os.Create(filepath.Join(workDir, fmt.Sprintf("silo%d.log", party)))
			if err != nil {
				return nil, err
			}
			procs.files[party] = lf
		}
		cmd.Stderr = lf
		var out io.ReadCloser
		if party == 0 {
			out, err = cmd.StdoutPipe()
			if err != nil {
				return nil, err
			}
		} else {
			cmd.Stdout = lf
		}
		if err := cmd.Start(); err != nil {
			return nil, err
		}
		procs.set(party, cmd)
		return out, nil
	}

	start := time.Now()
	deadline := time.After(cfg.Timeout)
	var coordOut io.ReadCloser
	for party := cfg.Silos - 1; party >= 0; party-- {
		out, serr := spawn(party)
		if serr != nil {
			return nil, fmt.Errorf("soak: spawn silo %d: %w", party, serr)
		}
		if party == 0 {
			coordOut = out
		}
	}
	fmt.Fprintf(cfg.Log, "chaos: %d silo processes up (tls=%v), %d queries, kill=%v\n",
		cfg.Silos, cfg.TLS, cfg.Queries, cfg.Kill)

	// Stream the coordinator's result lines with the hang deadline armed.
	lines := make(chan string, 64)
	readErr := make(chan error, 1)
	go func() {
		sc := bufio.NewScanner(coordOut)
		sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
		for sc.Scan() {
			lines <- sc.Text()
		}
		readErr <- sc.Err()
		close(lines)
	}()

	rep := &MeshChaosReport{Silos: cfg.Silos, Queries: cfg.Queries, FailureKinds: map[string]int{}}
	victim := cfg.Silos - 1 // highest silo: pure dialer, so its restart re-binds no port
	killAt := cfg.Queries / 3
	killed := false
	var summary *meshRunSummary
stream:
	for {
		select {
		case <-deadline:
			rep.WallMs = time.Since(start).Milliseconds()
			return rep, fmt.Errorf("soak: chaos run exceeded %v — hang (logs in %s)", cfg.Timeout, workDir)
		case line, ok := <-lines:
			if !ok {
				break stream
			}
			if strings.Contains(line, `"done"`) {
				var s meshRunSummary
				if json.Unmarshal([]byte(line), &s) == nil && s.Done {
					summary = &s
				}
				continue
			}
			var res MeshQueryResult
			if err := json.Unmarshal([]byte(line), &res); err != nil {
				continue
			}
			rep.Results++
			verifyMeshResult(rep, g, joint, res)
			if cfg.Kill && !killed && rep.Results >= killAt {
				killed = true
				rep.Kills++
				procs.mu.Lock()
				vc := procs.cmds[victim]
				procs.mu.Unlock()
				if vc != nil && vc.Process != nil {
					fmt.Fprintf(cfg.Log, "chaos: killing silo %d after %d results\n", victim, rep.Results)
					vc.Process.Kill()
					vc.Wait()
				}
				// Synchronous restart after a dead window: the coordinator keeps
				// failing queries typed meanwhile; its result lines buffer in
				// the pipe.
				time.Sleep(400 * time.Millisecond)
				if _, rerr := spawn(victim); rerr == nil {
					rep.Restarts++
					fmt.Fprintf(cfg.Log, "chaos: restarted silo %d\n", victim)
				} else {
					fmt.Fprintf(cfg.Log, "chaos: restart of silo %d failed: %v\n", victim, rerr)
				}
			}
		}
	}
	<-readErr
	procs.mu.Lock()
	coord := procs.cmds[0]
	procs.mu.Unlock()
	if coord != nil {
		coord.Wait()
	}

	rep.WallMs = time.Since(start).Milliseconds()
	if summary != nil {
		rep.Reconnects = summary.Stats.Reconnects
		rep.HeartbeatMiss = summary.Stats.HeartbeatMisses
	}
	fmt.Fprintf(cfg.Log, "chaos: %d results (%d ok, %d unreachable, %d typed failures %v), %d reconnects, %dms\n",
		rep.Results, rep.Succeeded, rep.Unreachable, rep.FailedTyped, rep.FailureKinds, rep.Reconnects, rep.WallMs)
	if v := rep.Violations(); v != "" {
		return rep, fmt.Errorf("soak: chaos violations: %s (logs in %s)", v, workDir)
	}
	return rep, nil
}

// verifyMeshResult scores one coordinator result line against the oracle.
func verifyMeshResult(rep *MeshChaosReport, g *fedroad.Graph, joint fedroad.Weights, res MeshQueryResult) {
	if res.Err != "" {
		if res.ErrKind == "" || res.ErrKind == "untyped" {
			rep.FailedUntyped++
		} else {
			rep.FailedTyped++
			rep.FailureKinds[res.ErrKind]++
		}
		return
	}
	want, _ := graph.DijkstraTo(g, joint, fedroad.Vertex(res.Src), fedroad.Vertex(res.Dst))
	reachable := want < graph.InfCost
	switch {
	case res.Found != reachable, res.Found && res.Joint != want:
		rep.Incorrect++
	case reachable:
		rep.Succeeded++
	default:
		rep.Unreachable++
	}
}
