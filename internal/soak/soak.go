// Package soak drives the serving-tier mixed-workload soak: concurrent
// queries racing traffic updates racing index rebuilds, all flowing through
// the admission gate and the traffic-version-keyed result cache — the exact
// contention fedserver sees in production, compressed into seconds. Every
// response is replayed against plaintext Dijkstra at the traffic version it
// echoed (the staleness oracle), and the admission counters are checked for
// exact accounting. A second phase measures repeated-OD throughput with a
// warm cache against the uncached engine. fedbench's soak subcommand writes
// the result as BENCH_soak.json (see internal/expr.SoakReport).
package soak

import (
	"errors"
	"fmt"
	"math/rand/v2"
	"sync"
	"sync/atomic"
	"time"

	fedroad "repro"
	"repro/internal/admit"
	"repro/internal/expr"
	"repro/internal/graph"
)

// Config sizes the soak. The zero value is not runnable; use Defaults.
type Config struct {
	Vertices int           // road-network size
	Silos    int           // private weight shards
	Seed     uint64        // deterministic topology + workload
	Duration time.Duration // mixed-phase length (the throughput phase reuses it, split in half per leg)
	Workers  int           // concurrent query workers
	// AdmitLimit bounds the in-system query population. Deliberately below
	// Workers so overload is real and the shed path gets exercised — the
	// accounting invariant is vacuous if nothing ever sheds.
	AdmitLimit int
	CacheCap   int // result-cache entries
	Pairs      int // OD-pair pool size (small ⇒ cache pressure is real)
}

// Defaults fills unset fields with the CI smoke scale.
func Defaults(c Config) Config {
	if c.Vertices == 0 {
		c.Vertices = 300
	}
	if c.Silos == 0 {
		c.Silos = 3
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Duration == 0 {
		c.Duration = 2 * time.Second
	}
	if c.Workers == 0 {
		c.Workers = 8
	}
	if c.AdmitLimit == 0 {
		c.AdmitLimit = c.Workers/2 + 1
	}
	if c.CacheCap == 0 {
		c.CacheCap = 1024
	}
	if c.Pairs == 0 {
		c.Pairs = 12
	}
	return c
}

// observation is one served response awaiting its oracle replay.
type observation struct {
	src, dst fedroad.Vertex
	route    fedroad.Route
	ver      uint64
}

// Run executes the soak and returns the report. It is deterministic in
// workload shape (topology, update stream, OD pairs) but not in interleaving
// — that is the point.
func Run(cfg Config) (*expr.SoakReport, error) {
	cfg = Defaults(cfg)
	g, w0 := fedroad.GenerateRoadNetwork(cfg.Vertices, cfg.Seed)
	silos := fedroad.SimulateCongestion(w0, cfg.Silos, fedroad.Moderate, cfg.Seed+1)
	f, err := fedroad.New(g, w0, silos, fedroad.Config{Seed: cfg.Seed + 2})
	if err != nil {
		return nil, err
	}
	defer f.Close()
	if err := f.BuildIndex(); err != nil {
		return nil, err
	}
	qc := f.NewQueryCache(cfg.CacheCap)
	gate := admit.New(cfg.AdmitLimit, nil)

	rep := &expr.SoakReport{
		Experiment: "soak",
		Vertices:   g.NumVertices(),
		Silos:      cfg.Silos,
		DurationMs: cfg.Duration.Milliseconds(),
	}

	// Shadow staleness oracle: traffic version → plaintext joint weights.
	// The federation never exposes the private silo weights, so the soak
	// tracks its own copy — the initial congestion sets plus every update the
	// (single) updater applies — and records the summed joint per version.
	shadow := make([]fedroad.Weights, len(silos))
	for p, set := range silos {
		shadow[p] = append(fedroad.Weights(nil), set...)
	}
	oracle := map[uint64]fedroad.Weights{f.TrafficVersion(): jointOf(shadow, g.NumArcs())}
	var oracleMu sync.Mutex

	pairs := make([][2]fedroad.Vertex, cfg.Pairs)
	prng := rand.New(rand.NewPCG(cfg.Seed+3, 0))
	for i := range pairs {
		pairs[i] = [2]fedroad.Vertex{
			fedroad.Vertex(prng.IntN(g.NumVertices())),
			fedroad.Vertex(prng.IntN(g.NumVertices())),
		}
	}

	var (
		stop     atomic.Bool
		attempts atomic.Int64
		queries  atomic.Int64
		batches  atomic.Int64
		rebuilds atomic.Int64
		conflict atomic.Int64
		errCh    = make(chan error, cfg.Workers+2)
		obs      = make([][]observation, cfg.Workers)
		wg       sync.WaitGroup
	)

	// Query workers: gate → cache → session. Shed attempts retry after a
	// beat, exactly like a client honoring Retry-After.
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			s := f.Session()
			defer s.Close()
			rng := rand.New(rand.NewPCG(cfg.Seed+4, uint64(w)))
			for !stop.Load() {
				p := pairs[rng.IntN(len(pairs))]
				attempts.Add(1)
				if err := gate.Acquire(); err != nil {
					time.Sleep(200 * time.Microsecond)
					continue
				}
				route, _, ver, _, qerr := qc.ShortestPath(p[0], p[1], fedroad.QueryOptions{},
					func() (fedroad.Route, fedroad.Stats, uint64, error) {
						return s.ShortestPathAt(p[0], p[1])
					})
				gate.Release()
				if qerr != nil {
					errCh <- fmt.Errorf("soak query: %w", qerr)
					return
				}
				queries.Add(1)
				obs[w] = append(obs[w], observation{p[0], p[1], route, ver})
			}
		}(w)
	}

	// Updater: small traffic batches, each recorded in the oracle.
	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewPCG(cfg.Seed+5, 0))
		for !stop.Load() {
			n := 1 + rng.IntN(3)
			ups := make([]fedroad.TrafficUpdate, n)
			for i := range ups {
				ups[i] = fedroad.TrafficUpdate{
					Silo:     rng.IntN(cfg.Silos),
					Arc:      fedroad.Arc(rng.IntN(g.NumArcs())),
					TravelMs: int64(1 + rng.IntN(120000)),
				}
			}
			if _, uerr := f.ApplyTraffic(ups); uerr != nil {
				errCh <- fmt.Errorf("soak traffic: %w", uerr)
				return
			}
			oracleMu.Lock()
			for _, u := range ups {
				shadow[u.Silo][u.Arc] = u.TravelMs
			}
			oracle[f.TrafficVersion()] = jointOf(shadow, g.NumArcs())
			oracleMu.Unlock()
			batches.Add(1)
			time.Sleep(2 * time.Millisecond)
		}
	}()

	// Rebuilder: full off-lock index rebuilds racing everything. A build that
	// loses the race to a traffic update is abandoned with ErrBuildConflict —
	// expected, counted, not fatal.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for !stop.Load() {
			switch err := f.BuildIndex(); {
			case err == nil:
				rebuilds.Add(1)
			case errors.Is(err, fedroad.ErrBuildConflict):
				conflict.Add(1)
			default:
				errCh <- fmt.Errorf("soak rebuild: %w", err)
				return
			}
			time.Sleep(20 * time.Millisecond)
		}
	}()

	time.Sleep(cfg.Duration)
	stop.Store(true)
	wg.Wait()
	close(errCh)
	for err := range errCh {
		return nil, err
	}

	rep.Queries = queries.Load()
	rep.TrafficBatches = batches.Load()
	rep.Rebuilds = rebuilds.Load()
	rep.BuildConflicts = conflict.Load()

	// Replay every response against the oracle at its echoed version.
	for _, list := range obs {
		for _, o := range list {
			joint, ok := oracle[o.ver]
			if !ok {
				rep.OracleViolations++ // echoed a version that never existed
				continue
			}
			rep.OracleChecks++
			want, _ := graph.DijkstraTo(g, joint, o.src, o.dst)
			switch {
			case want >= graph.InfCost:
				if o.route.Found {
					rep.OracleViolations++
				}
			case !o.route.Found, fedroad.JointCost(o.route) != want:
				rep.OracleViolations++
			}
		}
	}

	gs := gate.Stats()
	rep.Admitted = gs.Admitted
	rep.Shed = gs.Shed
	rep.AccountingOK = gs.Admitted+gs.Shed == attempts.Load() && gs.Depth == 0

	cs := qc.Stats()
	rep.CacheHits = int64(cs.Hits)
	rep.CacheMisses = int64(cs.Misses)
	rep.CacheCoalesced = int64(cs.Coalesced)

	// Throughput phase: repeated-OD serving, warm cache vs no cache. The
	// traffic is quiet now, so the cache stays warm after one priming pass.
	leg := cfg.Duration / 2
	if leg < 250*time.Millisecond {
		leg = 250 * time.Millisecond
	}
	uncached, err := measureQPS(f, pairs, leg, nil)
	if err != nil {
		return nil, err
	}
	warm, err := measureQPS(f, pairs, leg, qc)
	if err != nil {
		return nil, err
	}
	rep.UncachedQPS = uncached
	rep.WarmCacheQPS = warm
	if uncached > 0 {
		rep.CacheSpeedup = warm / uncached
	}
	return rep, nil
}

// measureQPS hammers the OD pool round-robin for the window from one
// goroutine per two pairs, counting completed queries. With qc non-nil every
// query flows through the cache (primed by its first pass); with qc nil each
// runs the engine.
func measureQPS(f *fedroad.Federation, pairs [][2]fedroad.Vertex, window time.Duration, qc *fedroad.QueryCache) (float64, error) {
	workers := len(pairs)/2 + 1
	var (
		stop  atomic.Bool
		count atomic.Int64
		wg    sync.WaitGroup
		errCh = make(chan error, workers)
	)
	start := time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			s := f.Session()
			defer s.Close()
			for i := w; !stop.Load(); i++ {
				p := pairs[i%len(pairs)]
				var err error
				if qc != nil {
					_, _, _, _, err = qc.ShortestPath(p[0], p[1], fedroad.QueryOptions{},
						func() (fedroad.Route, fedroad.Stats, uint64, error) {
							return s.ShortestPathAt(p[0], p[1])
						})
				} else {
					_, _, err = s.ShortestPath(p[0], p[1])
				}
				if err != nil {
					errCh <- err
					return
				}
				count.Add(1)
			}
		}(w)
	}
	time.Sleep(window)
	stop.Store(true)
	wg.Wait()
	close(errCh)
	for err := range errCh {
		return 0, err
	}
	return float64(count.Load()) / time.Since(start).Seconds(), nil
}

// jointOf sums the shadow silo weights into the plaintext joint vector the
// oracle compares against. Callers must hold oracleMu (or the single-updater
// role before workers start).
func jointOf(shadow []fedroad.Weights, numArcs int) fedroad.Weights {
	joint := make(fedroad.Weights, numArcs)
	for _, w := range shadow {
		for a := range joint {
			joint[a] += w[a]
		}
	}
	return joint
}
