package metrics

import (
	"bufio"
	"math"
	"strconv"
	"strings"
	"sync"
	"testing"
)

func TestCounter(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(2.5)
	c.Add(-7) // dropped: counters are monotonic
	if got := c.Value(); got != 3.5 {
		t.Fatalf("counter value %v, want 3.5", got)
	}
}

func TestRegistryIdempotent(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("x_total", "h", nil)
	b := r.Counter("x_total", "h", nil)
	if a != b {
		t.Fatal("same name+labels returned distinct counters")
	}
	l1 := r.Counter("y_total", "h", Labels{"path": "/route"})
	l2 := r.Counter("y_total", "h", Labels{"path": "/knn"})
	if l1 == l2 {
		t.Fatal("distinct labels returned the same counter")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("type clash did not panic")
		}
	}()
	r.Histogram("x_total", "h", nil, nil)
}

func TestHistogram(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_seconds", "h", []float64{0.01, 0.1, 1}, nil)
	for _, v := range []float64{0.005, 0.005, 0.05, 0.5, 5} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count %d, want 5", h.Count())
	}
	if math.Abs(h.Sum()-5.56) > 1e-9 {
		t.Fatalf("sum %v, want 5.56", h.Sum())
	}
	// Median falls in the first bucket (2 of 5 observations <= 0.01, the
	// interpolated estimate sits within (0, 0.01]).
	if q := h.Quantile(0.5); q <= 0 || q > 0.1 {
		t.Fatalf("p50 estimate %v outside (0, 0.1]", q)
	}

	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	text := b.String()
	for _, want := range []string{
		"# TYPE lat_seconds histogram",
		`lat_seconds_bucket{le="0.01"} 2`,
		`lat_seconds_bucket{le="0.1"} 3`,
		`lat_seconds_bucket{le="1"} 4`,
		`lat_seconds_bucket{le="+Inf"} 5`,
		"lat_seconds_count 5",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("exposition missing %q:\n%s", want, text)
		}
	}
}

func TestExpositionParsesAndSnapshots(t *testing.T) {
	r := NewRegistry()
	r.Counter("a_total", "counts a", nil).Add(7)
	r.Counter("b_total", "counts b", Labels{"kind": "x", "phase": "q"}).Add(2)
	r.GaugeFunc("depth", "current depth", nil, func() float64 { return 4 })
	r.Histogram("h_seconds", "hist", []float64{1}, nil).Observe(0.5)

	vals := ParseText(t, exposition(t, r))
	for k, want := range map[string]float64{
		"a_total":                     7,
		`b_total{kind="x",phase="q"}`: 2,
		"depth":                       4,
		"h_seconds_count":             1,
		"h_seconds_sum":               0.5,
	} {
		if got, ok := vals[k]; !ok || got != want {
			t.Fatalf("parsed %q = %v (present %v), want %v\nfull: %v", k, got, ok, want, vals)
		}
	}

	snap := r.Snapshot()
	if snap["a_total"] != 7 || snap["h_seconds_sum"] != 0.5 {
		t.Fatalf("bad snapshot: %v", snap)
	}
}

func TestConcurrentUse(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := r.Counter("hits_total", "", nil)
			h := r.Histogram("obs_seconds", "", nil, nil)
			for j := 0; j < 1000; j++ {
				c.Inc()
				h.Observe(0.001)
			}
		}()
	}
	var b strings.Builder
	r.WriteText(&b) // scrape concurrently with writers
	wg.Wait()
	if got := r.Counter("hits_total", "", nil).Value(); got != 8000 {
		t.Fatalf("counter %v, want 8000", got)
	}
	if got := r.Histogram("obs_seconds", "", nil, nil).Count(); got != 8000 {
		t.Fatalf("histogram count %v, want 8000", got)
	}
}

func exposition(t *testing.T, r *Registry) string {
	t.Helper()
	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	return b.String()
}

// ParseText parses Prometheus text exposition into a name{labels}→value map,
// failing the test on any malformed line. Exported for reuse by the server
// tests (via a copy — packages don't import each other's tests).
func ParseText(t *testing.T, text string) map[string]float64 {
	t.Helper()
	out := make(map[string]float64)
	sc := bufio.NewScanner(strings.NewReader(text))
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			t.Fatalf("malformed exposition line %q", line)
		}
		v, err := strconv.ParseFloat(line[sp+1:], 64)
		if err != nil {
			t.Fatalf("malformed value in %q: %v", line, err)
		}
		out[line[:sp]] = v
	}
	return out
}
