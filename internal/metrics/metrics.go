// Package metrics is a dependency-free metrics registry with Prometheus
// text exposition. The repo's go.mod has zero dependencies by design, so the
// registry hand-rolls the small subset of the Prometheus data model FedRoad
// needs: monotonic counters, callback gauges and fixed-bucket histograms,
// optionally carrying a constant label set.
//
// Counters and histograms are lock-free on the hot path (atomic CAS on
// float64 bit patterns); registration and scraping take the registry mutex.
// Registration is idempotent: asking for an existing name+labels pair
// returns the existing metric, so independent subsystems (the MPC engine,
// the query layer, an HTTP server) can share one registry without
// coordinating initialization order.
//
// The metric names exposed by the library map onto the paper's §VIII cost
// model R·(L + S/B); see DESIGN.md, "Observability".
package metrics

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Labels is a constant label set attached to a metric at registration.
type Labels map[string]string

// render produces the canonical {k="v",...} form, keys sorted, or "" for an
// empty set — the identity of a metric within its family.
func (l Labels) render() string {
	if len(l) == 0 {
		return ""
	}
	keys := make([]string, 0, len(l))
	for k := range l {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", k, l[k])
	}
	b.WriteByte('}')
	return b.String()
}

// Counter is a monotonically increasing float64 value.
type Counter struct {
	bits atomic.Uint64
}

// Add increases the counter by v (v must be >= 0; negative adds are dropped
// to preserve monotonicity).
func (c *Counter) Add(v float64) {
	if v < 0 {
		return
	}
	for {
		old := c.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if c.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Inc increases the counter by 1.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count.
func (c *Counter) Value() float64 { return math.Float64frombits(c.bits.Load()) }

// Histogram is a fixed-bucket cumulative histogram (Prometheus semantics:
// bucket le=B counts observations <= B, plus a +Inf bucket, _sum and _count).
type Histogram struct {
	bounds  []float64 // strictly increasing upper bounds, excluding +Inf
	buckets []atomic.Uint64
	count   atomic.Uint64
	sumBits atomic.Uint64
}

// Observe records one observation.
func (h *Histogram) Observe(v float64) {
	// Buckets are few (tens); linear scan beats binary search at this size.
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.buckets[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observations.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// Quantile estimates the q-quantile (0 <= q <= 1) from the bucket counts by
// linear interpolation within the owning bucket — the standard Prometheus
// histogram_quantile estimate. Returns NaN when empty.
func (h *Histogram) Quantile(q float64) float64 {
	total := h.count.Load()
	if total == 0 {
		return math.NaN()
	}
	rank := q * float64(total)
	var cum float64
	for i := range h.buckets {
		c := float64(h.buckets[i].Load())
		if cum+c >= rank && c > 0 {
			lo := 0.0
			if i > 0 {
				lo = h.bounds[i-1]
			}
			hi := lo
			if i < len(h.bounds) {
				hi = h.bounds[i]
			}
			return lo + (hi-lo)*(rank-cum)/c
		}
		cum += c
	}
	return h.bounds[len(h.bounds)-1]
}

// DefBuckets are the default latency buckets in seconds: 50µs .. 10s, a
// 1-2.5-5 ladder wide enough for both analytic-mode (~µs) and protocol-mode
// (~ms-s) queries.
var DefBuckets = []float64{
	50e-6, 100e-6, 250e-6, 500e-6,
	1e-3, 2.5e-3, 5e-3, 10e-3, 25e-3, 50e-3, 100e-3, 250e-3, 500e-3,
	1, 2.5, 5, 10,
}

// metric is anything the registry can expose.
type metric interface {
	// write emits the exposition lines for one child (name already includes
	// the family name; labels the rendered constant label set).
	write(w io.Writer, name, labels string)
	// snapshot contributes flat name→value pairs (histograms contribute
	// _count and _sum).
	snapshot(dst map[string]float64, name, labels string)
}

func (c *Counter) write(w io.Writer, name, labels string) {
	fmt.Fprintf(w, "%s%s %s\n", name, labels, formatFloat(c.Value()))
}

func (c *Counter) snapshot(dst map[string]float64, name, labels string) {
	dst[name+labels] = c.Value()
}

func (h *Histogram) write(w io.Writer, name, labels string) {
	// Cumulative buckets with the le label merged into the constant labels.
	var cum uint64
	for i, b := range h.bounds {
		cum += h.buckets[i].Load()
		fmt.Fprintf(w, "%s_bucket%s %d\n", name, mergeLabel(labels, "le", formatFloat(b)), cum)
	}
	cum += h.buckets[len(h.bounds)].Load()
	fmt.Fprintf(w, "%s_bucket%s %d\n", name, mergeLabel(labels, "le", "+Inf"), cum)
	fmt.Fprintf(w, "%s_sum%s %s\n", name, labels, formatFloat(h.Sum()))
	fmt.Fprintf(w, "%s_count%s %d\n", name, labels, h.count.Load())
}

func (h *Histogram) snapshot(dst map[string]float64, name, labels string) {
	dst[name+"_count"+labels] = float64(h.Count())
	dst[name+"_sum"+labels] = h.Sum()
}

// funcMetric evaluates a callback at scrape time (gauges over external
// state, e.g. pool depth or free-list length).
type funcMetric struct {
	fn func() float64
}

func (f *funcMetric) write(w io.Writer, name, labels string) {
	fmt.Fprintf(w, "%s%s %s\n", name, labels, formatFloat(f.fn()))
}

func (f *funcMetric) snapshot(dst map[string]float64, name, labels string) {
	dst[name+labels] = f.fn()
}

// mergeLabel inserts k="v" into an already-rendered label set.
func mergeLabel(labels, k, v string) string {
	extra := fmt.Sprintf("%s=%q", k, v)
	if labels == "" {
		return "{" + extra + "}"
	}
	return labels[:len(labels)-1] + "," + extra + "}"
}

// formatFloat renders a float the way Prometheus clients do: integral values
// without an exponent or trailing zeros.
func formatFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}

// child is one labeled instance within a family.
type child struct {
	labels string
	m      metric
}

// family groups all children sharing a metric name (one HELP/TYPE header).
type family struct {
	name     string
	help     string
	typ      string // "counter", "gauge", "histogram"
	children []*child
}

// Registry holds metric families and serves scrapes. The zero value is not
// usable; call NewRegistry.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
	order    []string // registration order, for stable exposition
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// lookup finds or creates the family and the labeled child, enforcing that a
// name is never reused with a different type.
func (r *Registry) lookup(name, help, typ string, labels Labels, make func() metric) metric {
	r.mu.Lock()
	defer r.mu.Unlock()
	fam, ok := r.families[name]
	if !ok {
		fam = &family{name: name, help: help, typ: typ}
		r.families[name] = fam
		r.order = append(r.order, name)
	}
	if fam.typ != typ {
		panic(fmt.Sprintf("metrics: %s registered as %s, requested as %s", name, fam.typ, typ))
	}
	ls := labels.render()
	for _, c := range fam.children {
		if c.labels == ls {
			return c.m
		}
	}
	m := make()
	fam.children = append(fam.children, &child{labels: ls, m: m})
	return m
}

// Counter returns the counter name+labels, creating it on first use.
func (r *Registry) Counter(name, help string, labels Labels) *Counter {
	return r.lookup(name, help, "counter", labels, func() metric { return &Counter{} }).(*Counter)
}

// Histogram returns the histogram name+labels with the given bucket upper
// bounds (nil selects DefBuckets), creating it on first use. Buckets are
// fixed at creation; later calls with different bounds return the original.
func (r *Registry) Histogram(name, help string, buckets []float64, labels Labels) *Histogram {
	if buckets == nil {
		buckets = DefBuckets
	}
	return r.lookup(name, help, "histogram", labels, func() metric {
		h := &Histogram{bounds: append([]float64(nil), buckets...)}
		h.buckets = make([]atomic.Uint64, len(h.bounds)+1)
		return h
	}).(*Histogram)
}

// GaugeFunc registers a callback gauge evaluated at scrape time. Like all
// registrations it is idempotent: the first callback registered for a
// name+labels pair wins.
func (r *Registry) GaugeFunc(name, help string, labels Labels, fn func() float64) {
	r.lookup(name, help, "gauge", labels, func() metric { return &funcMetric{fn: fn} })
}

// CounterFunc registers a callback counter (for externally-accumulated
// monotonic values, e.g. preprocessing-pool hit counts).
func (r *Registry) CounterFunc(name, help string, labels Labels, fn func() float64) {
	r.lookup(name, help, "counter", labels, func() metric { return &funcMetric{fn: fn} })
}

// WriteText writes the registry in the Prometheus text exposition format
// (version 0.0.4), families in registration order.
func (r *Registry) WriteText(w io.Writer) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, name := range r.order {
		fam := r.families[name]
		if fam.help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", fam.name, fam.help); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", fam.name, fam.typ); err != nil {
			return err
		}
		for _, c := range fam.children {
			c.m.write(w, fam.name, c.labels)
		}
	}
	return nil
}

// Snapshot returns a flat name{labels}→value map of every metric (histograms
// contribute name_count and name_sum), for folding into JSON status
// endpoints.
func (r *Registry) Snapshot() map[string]float64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]float64)
	for _, name := range r.order {
		fam := r.families[name]
		for _, c := range fam.children {
			c.m.snapshot(out, fam.name, c.labels)
		}
	}
	return out
}
