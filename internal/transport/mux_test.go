package transport

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"
)

// twoMesh builds a 2-endpoint loopback mux mesh (one physical link) and
// tears it down with the test.
func twoMesh(t *testing.T, opts MeshOptions) *LocalMesh {
	t.Helper()
	lm, err := NewLocalMesh(2, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { lm.Close() })
	return lm
}

// TestMuxThousandLanes is the lane-scalability acceptance test: 1024
// concurrent session lanes between one silo pair, all multiplexed over the
// single physical TCP connection, each running an independent tagged
// ping-pong stream. Run under -race in CI.
func TestMuxThousandLanes(t *testing.T) {
	lm := twoMesh(t, MeshOptions{})
	const (
		lanes = 1024
		msgs  = 8
	)
	recvBudget := 30 * time.Second // generous: -race serializes heavily

	var wg sync.WaitGroup
	errCh := make(chan error, 2*lanes)
	for i := 0; i < lanes; i++ {
		id := uint32(1000 + i)
		a := lm.Mesh(0).Lane(id)
		b := lm.Mesh(1).Lane(id)
		a.SetRoundTimeout(recvBudget)
		b.SetRoundTimeout(recvBudget)
		wg.Add(2)
		go func(id uint32, a *LaneConn) {
			defer wg.Done()
			for m := 0; m < msgs; m++ {
				payload := fmt.Sprintf("lane %d msg %d", id, m)
				if err := a.Send(1, []byte(payload)); err != nil {
					errCh <- fmt.Errorf("lane %d send: %w", id, err)
					return
				}
				got, err := a.Recv(1)
				if err != nil {
					errCh <- fmt.Errorf("lane %d recv: %w", id, err)
					return
				}
				if string(got) != payload+"/echo" {
					errCh <- fmt.Errorf("lane %d cross-talk: got %q, want %q/echo", id, got, payload)
					return
				}
			}
		}(id, a)
		go func(id uint32, b *LaneConn) {
			defer wg.Done()
			for m := 0; m < msgs; m++ {
				got, err := b.Recv(0)
				if err != nil {
					errCh <- fmt.Errorf("lane %d echo recv: %w", id, err)
					return
				}
				if err := b.Send(0, append(got, "/echo"...)); err != nil {
					errCh <- fmt.Errorf("lane %d echo send: %w", id, err)
					return
				}
			}
		}(id, b)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}

	// All of it rode ONE physical connection: one link up, generation 1,
	// zero reconnects.
	for p := 0; p < 2; p++ {
		st := lm.Mesh(p).Stats()
		if st.LinksUp != 1 || st.Reconnects != 0 {
			t.Fatalf("party %d: links=%d reconnects=%d, want 1/0 (lanes leaked onto extra connections?)",
				p, st.LinksUp, st.Reconnects)
		}
		for _, ps := range st.Peers {
			if ps.Up && ps.Generation != 1 {
				t.Fatalf("party %d peer %d: generation %d, want 1", p, ps.Peer, ps.Generation)
			}
		}
	}
}

// realPair names one real-socket transport construction the fault matrix
// runs against: the plain framed TCP mesh and the multiplexed mesh lane.
type realPair struct {
	name  string
	build func(t *testing.T) (a, b Conn, setTimeout func(time.Duration))
}

func realPairs() []realPair {
	return []realPair{
		{"tcp", func(t *testing.T) (Conn, Conn, func(time.Duration)) {
			t.Helper()
			addrs := make([]string, 2)
			for i := range addrs {
				ln, err := net.Listen("tcp", "127.0.0.1:0")
				if err != nil {
					t.Fatal(err)
				}
				addrs[i] = ln.Addr().String()
				ln.Close()
			}
			var conns [2]*TCPConn
			var wg sync.WaitGroup
			errs := make([]error, 2)
			for p := 0; p < 2; p++ {
				wg.Add(1)
				go func(p int) {
					defer wg.Done()
					conns[p], errs[p] = DialMesh(p, 2, addrs, 5*time.Second)
				}(p)
			}
			wg.Wait()
			for _, err := range errs {
				if err != nil {
					t.Fatal(err)
				}
			}
			t.Cleanup(func() { conns[0].Close(); conns[1].Close() })
			return conns[0], conns[1], func(d time.Duration) {
				conns[0].SetRoundTimeout(d)
				conns[1].SetRoundTimeout(d)
			}
		}},
		{"mux", func(t *testing.T) (Conn, Conn, func(time.Duration)) {
			t.Helper()
			lm := twoMesh(t, MeshOptions{})
			a := lm.Mesh(0).Lane(77)
			b := lm.Mesh(1).Lane(77)
			return a, b, func(d time.Duration) {
				a.SetRoundTimeout(d)
				b.SetRoundTimeout(d)
			}
		}},
	}
}

// TestFaultMatrixOverRealSockets replays the PR-2 fault matrix — delay,
// drop, duplicate, transient error, close — against real TCP sockets and
// against multiplexed mesh lanes, asserting each fault surfaces with the
// same typed semantics the in-memory transport established: drops become
// round timeouts, duplicates stay FIFO-visible, injected errors are
// Transient, closes are terminal.
func TestFaultMatrixOverRealSockets(t *testing.T) {
	for _, pair := range realPairs() {
		pair := pair
		t.Run(pair.name, func(t *testing.T) {
			t.Run("delay", func(t *testing.T) {
				a, b, setTO := pair.build(t)
				setTO(5 * time.Second)
				fc := NewFaultConn(a, FaultPlan{Script: []FaultKind{FaultDelay}, Delay: 30 * time.Millisecond})
				start := time.Now()
				if err := fc.Send(1, []byte("slow")); err != nil {
					t.Fatal(err)
				}
				if got, err := b.Recv(0); err != nil || string(got) != "slow" {
					t.Fatalf("recv after delay: %q, %v", got, err)
				}
				if time.Since(start) < 30*time.Millisecond {
					t.Fatal("delay not applied")
				}
			})
			t.Run("drop", func(t *testing.T) {
				a, b, setTO := pair.build(t)
				setTO(150 * time.Millisecond)
				fc := NewFaultConn(a, FaultPlan{Script: []FaultKind{FaultDrop}})
				if err := fc.Send(1, []byte("lost")); err != nil {
					t.Fatal(err)
				}
				_, err := b.Recv(0)
				if !IsTimeout(err) {
					t.Fatalf("recv of dropped frame: %v, want round timeout", err)
				}
				if !Transient(err) {
					t.Fatalf("dropped-frame timeout must be transient (retryable): %v", err)
				}
			})
			t.Run("duplicate", func(t *testing.T) {
				a, b, setTO := pair.build(t)
				setTO(5 * time.Second)
				fc := NewFaultConn(a, FaultPlan{Script: []FaultKind{FaultDuplicate}})
				if err := fc.Send(1, []byte("twice")); err != nil {
					t.Fatal(err)
				}
				for i := 0; i < 2; i++ {
					got, err := b.Recv(0)
					if err != nil || string(got) != "twice" {
						t.Fatalf("dup copy %d: %q, %v", i, got, err)
					}
				}
			})
			t.Run("error", func(t *testing.T) {
				a, _, setTO := pair.build(t)
				setTO(5 * time.Second)
				fc := NewFaultConn(a, FaultPlan{Script: []FaultKind{FaultError}})
				err := fc.Send(1, []byte("x"))
				if !Transient(err) || IsTimeout(err) {
					t.Fatalf("injected fault: %v, want transient non-timeout", err)
				}
			})
			t.Run("close", func(t *testing.T) {
				a, b, setTO := pair.build(t)
				setTO(300 * time.Millisecond)
				fc := NewFaultConn(a, FaultPlan{Script: []FaultKind{FaultClose}})
				if err := fc.Send(1, []byte("dying")); err == nil {
					t.Fatal("send through injected close succeeded")
				}
				// The victim's endpoint is gone: the peer must fail typed —
				// never hang. A TCP close tears the socket (read error); a
				// closed mux lane starves the peer into its round timeout.
				if _, err := b.Recv(0); err == nil {
					t.Fatal("recv from closed endpoint succeeded")
				}
			})
		})
	}
}

// TestMuxLinkBreakRecovery exercises the transport-level break/redial loop:
// an in-flight Recv wakes immediately with ErrPeerDown (not a slow
// timeout), the dialer re-establishes the link in the background, and a
// fresh lane over the new generation carries traffic. The reconnect shows
// up in the counters on both sides.
func TestMuxLinkBreakRecovery(t *testing.T) {
	lm := twoMesh(t, MeshOptions{RedialMin: 10 * time.Millisecond})
	a := lm.Mesh(0).Lane(20)
	b := lm.Mesh(1).Lane(20)
	a.SetRoundTimeout(2 * time.Second)
	b.SetRoundTimeout(2 * time.Second)
	if err := a.Send(1, []byte("pre")); err != nil {
		t.Fatal(err)
	}
	if got, err := b.Recv(0); err != nil || string(got) != "pre" {
		t.Fatalf("pre-break: %q, %v", got, err)
	}

	// Break under a blocked Recv: it must fail fast with ErrPeerDown.
	done := make(chan error, 1)
	go func() {
		_, err := b.Recv(0)
		done <- err
	}()
	time.Sleep(20 * time.Millisecond)
	lm.Mesh(1).BreakLink(0)
	select {
	case err := <-done:
		if !errors.Is(err, ErrPeerDown) {
			t.Fatalf("recv across break: %v, want ErrPeerDown", err)
		}
		if Transient(err) {
			t.Fatalf("ErrPeerDown must not be transient (poison, don't replay): %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("recv did not wake on link break")
	}

	// The mesh heals itself; a fresh lane rides the new generation.
	deadline := time.Now().Add(5 * time.Second)
	for !(lm.Mesh(0).LinkUp(1) && lm.Mesh(1).LinkUp(0)) {
		if time.Now().After(deadline) {
			t.Fatal("link did not re-establish")
		}
		time.Sleep(5 * time.Millisecond)
	}
	a2 := lm.Mesh(0).Lane(21)
	b2 := lm.Mesh(1).Lane(21)
	a2.SetRoundTimeout(2 * time.Second)
	b2.SetRoundTimeout(2 * time.Second)
	if err := a2.Send(1, []byte("post")); err != nil {
		t.Fatal(err)
	}
	if got, err := b2.Recv(0); err != nil || string(got) != "post" {
		t.Fatalf("post-reconnect: %q, %v", got, err)
	}
	if st := lm.Mesh(1).Stats(); st.Reconnects == 0 {
		t.Fatalf("reconnect not counted: %+v", st)
	}
}
