package transport

import (
	"errors"
	"testing"
	"time"
)

// faultPair wires party 0's endpoint of a 2-party Mem through a FaultConn.
func faultPair(plan FaultPlan) (*Mem, *FaultConn, Conn) {
	m := NewMem(2)
	return m, NewFaultConn(m.Conn(0), plan), m.Conn(1)
}

func TestFaultConnScriptSchedule(t *testing.T) {
	plan := FaultPlan{
		After:  1,
		Script: []FaultKind{FaultDrop, FaultDuplicate, FaultError, FaultNone},
	}
	m, fc, peer := faultPair(plan)
	m.SetRecvTimeout(30 * time.Millisecond)

	if fc.Party() != 0 || fc.N() != 2 {
		t.Fatalf("wrapper identity wrong: %d/%d", fc.Party(), fc.N())
	}

	// Op 0 is inside the After window: clean.
	if err := fc.Send(1, []byte("clean")); err != nil {
		t.Fatal(err)
	}
	if got, err := peer.Recv(0); err != nil || string(got) != "clean" {
		t.Fatalf("clean op = %q, %v", got, err)
	}

	// Op 1: dropped — the peer only sees its round timeout.
	if err := fc.Send(1, []byte("dropped")); err != nil {
		t.Fatal(err)
	}
	if _, err := peer.Recv(0); !errors.Is(err, ErrRoundTimeout) {
		t.Fatalf("dropped frame delivered: %v", err)
	}

	// Op 2: duplicated — the peer sees the frame twice.
	if err := fc.Send(1, []byte("twice")); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if got, err := peer.Recv(0); err != nil || string(got) != "twice" {
			t.Fatalf("duplicate copy %d = %q, %v", i, got, err)
		}
	}

	// Op 3: injected transient error.
	err := fc.Send(1, []byte("failed"))
	if !errors.Is(err, ErrTransient) || !Transient(err) {
		t.Fatalf("injected fault not transient: %v", err)
	}

	// Op 4 (explicit FaultNone) and ops past the script end: clean again.
	for i := 0; i < 2; i++ {
		if err := fc.Send(1, []byte("tail")); err != nil {
			t.Fatal(err)
		}
		if got, err := peer.Recv(0); err != nil || string(got) != "tail" {
			t.Fatalf("post-script op = %q, %v", got, err)
		}
	}

	want := []FaultKind{FaultDrop, FaultDuplicate, FaultError}
	got := fc.Injected()
	if len(got) != len(want) {
		t.Fatalf("injected log = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("injected log = %v, want %v", got, want)
		}
	}
	if fc.Ops() != 6 {
		t.Fatalf("ops = %d, want 6", fc.Ops())
	}
}

func TestFaultConnCloseKillsEndpoint(t *testing.T) {
	_, fc, peer := faultPair(FaultPlan{Script: []FaultKind{FaultClose}})
	err := fc.Send(1, []byte("x"))
	if !errors.Is(err, ErrClosed) {
		t.Fatalf("injected close not classified closed: %v", err)
	}
	if Transient(err) {
		t.Fatalf("injected close classified transient: %v", err)
	}
	// The inner endpoint really is closed: the peer observes it and further
	// sends fail without fault injection's help.
	if _, err := peer.Recv(0); !errors.Is(err, ErrClosed) {
		t.Fatalf("peer after injected close: %v", err)
	}
	if err := fc.Send(1, []byte("y")); !errors.Is(err, ErrClosed) {
		t.Fatalf("send after injected close: %v", err)
	}
}

func TestFaultConnRecvFaults(t *testing.T) {
	m, fc, peer := faultPair(FaultPlan{Script: []FaultKind{FaultError, FaultNone, FaultClose}})
	for i := 0; i < 3; i++ {
		if err := peer.Send(0, []byte("frame")); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := fc.Recv(1); !errors.Is(err, ErrTransient) {
		t.Fatalf("injected recv fault: %v", err)
	}
	if got, err := fc.Recv(1); err != nil || string(got) != "frame" {
		t.Fatalf("clean recv = %q, %v", got, err)
	}
	if _, err := fc.Recv(1); !errors.Is(err, ErrClosed) {
		t.Fatalf("injected recv close: %v", err)
	}
	_ = m
}

func TestFaultConnDeterministicProbabilities(t *testing.T) {
	run := func() []FaultKind {
		plan := FaultPlan{Seed: 99, PDrop: 0.2, PError: 0.2, PDelay: 0.1, Delay: time.Microsecond}
		_, fc, _ := faultPair(plan)
		for i := 0; i < 200; i++ {
			fc.Send(1, []byte{byte(i)})
		}
		return fc.Injected()
	}
	a, b := run(), run()
	if len(a) == 0 {
		t.Fatal("probability plan injected nothing in 200 ops")
	}
	if len(a) != len(b) {
		t.Fatalf("same seed, different injection counts: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed, different schedule at op %d: %v vs %v", i, a[i], b[i])
		}
	}

	// A different seed draws a different schedule (overwhelmingly likely
	// over 200 ops at these rates).
	plan := FaultPlan{Seed: 100, PDrop: 0.2, PError: 0.2, PDelay: 0.1, Delay: time.Microsecond}
	_, fc, _ := faultPair(plan)
	for i := 0; i < 200; i++ {
		fc.Send(1, []byte{byte(i)})
	}
	c := fc.Injected()
	same := len(a) == len(c)
	if same {
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical fault schedules")
	}
}

func TestFaultConnDelay(t *testing.T) {
	_, fc, peer := faultPair(FaultPlan{Script: []FaultKind{FaultDelay}, Delay: 20 * time.Millisecond})
	start := time.Now()
	if err := fc.Send(1, []byte("slow")); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 20*time.Millisecond {
		t.Fatalf("delayed send returned after %v, want >= 20ms", elapsed)
	}
	if got, err := peer.Recv(0); err != nil || string(got) != "slow" {
		t.Fatalf("delayed frame = %q, %v", got, err)
	}
}
