package transport

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"net"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestMemBasicExchange(t *testing.T) {
	m := NewMem(3)
	c0, c1, c2 := m.Conn(0), m.Conn(1), m.Conn(2)
	if c0.Party() != 0 || c0.N() != 3 {
		t.Fatalf("endpoint identity wrong: %d/%d", c0.Party(), c0.N())
	}
	if err := c0.Send(1, []byte("hello")); err != nil {
		t.Fatal(err)
	}
	if err := c2.Send(1, []byte("world")); err != nil {
		t.Fatal(err)
	}
	got, err := c1.Recv(0)
	if err != nil || string(got) != "hello" {
		t.Fatalf("Recv(0) = %q, %v", got, err)
	}
	got, err = c1.Recv(2)
	if err != nil || string(got) != "world" {
		t.Fatalf("Recv(2) = %q, %v", got, err)
	}
	st := m.Stats()
	if st.Bytes != 10 || st.Messages != 2 {
		t.Fatalf("stats = %+v, want 10 bytes / 2 messages", st)
	}
	m.ResetStats()
	if st := m.Stats(); st.Bytes != 0 || st.Messages != 0 {
		t.Fatalf("reset failed: %+v", st)
	}
}

func TestMemFIFOPerPair(t *testing.T) {
	m := NewMem(2)
	c0, c1 := m.Conn(0), m.Conn(1)
	for i := 0; i < 100; i++ {
		if err := c0.Send(1, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 100; i++ {
		got, err := c1.Recv(0)
		if err != nil || got[0] != byte(i) {
			t.Fatalf("message %d out of order: %v %v", i, got, err)
		}
	}
}

func TestMemSendDoesNotAliasCallerBuffer(t *testing.T) {
	m := NewMem(2)
	c0, c1 := m.Conn(0), m.Conn(1)
	buf := []byte{1, 2, 3}
	if err := c0.Send(1, buf); err != nil {
		t.Fatal(err)
	}
	buf[0] = 99
	got, _ := c1.Recv(0)
	if !bytes.Equal(got, []byte{1, 2, 3}) {
		t.Fatalf("message corrupted by caller mutation: %v", got)
	}
}

func TestMemInvalidEndpoints(t *testing.T) {
	m := NewMem(2)
	c0 := m.Conn(0)
	if err := c0.Send(0, nil); err == nil {
		t.Fatal("self-send accepted")
	}
	if err := c0.Send(5, nil); err == nil {
		t.Fatal("out-of-range send accepted")
	}
	if _, err := c0.Recv(0); err == nil {
		t.Fatal("self-recv accepted")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range Conn must panic")
		}
	}()
	m.Conn(9)
}

func TestMemClose(t *testing.T) {
	m := NewMem(2)
	c0, c1 := m.Conn(0), m.Conn(1)
	c0.Send(1, []byte("x"))
	if err := c0.Close(); err != nil {
		t.Fatal(err)
	}
	// Buffered message still deliverable, then closed.
	if got, err := c1.Recv(0); err != nil || string(got) != "x" {
		t.Fatalf("buffered delivery after close: %q %v", got, err)
	}
	if _, err := c1.Recv(0); err != ErrClosed {
		t.Fatalf("want ErrClosed, got %v", err)
	}
	if err := c0.Send(1, []byte("y")); err != ErrClosed {
		t.Fatalf("send after close: %v", err)
	}
	if err := c0.Close(); err != nil { // double close is fine
		t.Fatal(err)
	}
}

func TestMemConcurrentParties(t *testing.T) {
	const n = 4
	const rounds = 200
	m := NewMem(n)
	var wg sync.WaitGroup
	errs := make(chan error, n)
	for p := 0; p < n; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			c := m.Conn(p)
			for r := 0; r < rounds; r++ {
				for q := 0; q < n; q++ {
					if q != p {
						if err := c.Send(q, []byte{byte(p), byte(r)}); err != nil {
							errs <- err
							return
						}
					}
				}
				for q := 0; q < n; q++ {
					if q == p {
						continue
					}
					got, err := c.Recv(q)
					if err != nil {
						errs <- err
						return
					}
					if got[0] != byte(q) || got[1] != byte(r) {
						errs <- fmt.Errorf("party %d round %d: got %v from %d", p, r, got, q)
						return
					}
				}
			}
		}(p)
	}
	wg.Wait()
	select {
	case err := <-errs:
		t.Fatal(err)
	default:
	}
	st := m.Stats()
	wantMsgs := int64(n * (n - 1) * rounds)
	if st.Messages != wantMsgs {
		t.Fatalf("messages = %d, want %d", st.Messages, wantMsgs)
	}
}

func freeAddrs(t *testing.T, n int) []string {
	t.Helper()
	addrs := make([]string, n)
	for i := range addrs {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		addrs[i] = l.Addr().String()
		l.Close()
	}
	return addrs
}

func TestTCPMeshExchange(t *testing.T) {
	const n = 3
	addrs := freeAddrs(t, n)
	conns := make([]*TCPConn, n)
	var wg sync.WaitGroup
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c, err := DialMesh(i, n, addrs, 5*time.Second)
			if err != nil {
				errs <- err
				return
			}
			conns[i] = c
		}(i)
	}
	wg.Wait()
	select {
	case err := <-errs:
		t.Fatal(err)
	default:
	}
	defer func() {
		for _, c := range conns {
			c.Close()
		}
	}()

	// Round-trip: every party sends a tagged frame to every other party.
	for p := 0; p < n; p++ {
		for q := 0; q < n; q++ {
			if q != p {
				if err := conns[p].Send(q, []byte(fmt.Sprintf("msg-%d-%d", p, q))); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	for q := 0; q < n; q++ {
		for p := 0; p < n; p++ {
			if p == q {
				continue
			}
			got, err := conns[q].Recv(p)
			if err != nil {
				t.Fatal(err)
			}
			want := fmt.Sprintf("msg-%d-%d", p, q)
			if string(got) != want {
				t.Fatalf("party %d got %q from %d, want %q", q, got, p, want)
			}
		}
	}
	if st := conns[0].Stats(); st.Messages != n-1 {
		t.Fatalf("party 0 sent %d messages, want %d", st.Messages, n-1)
	}
}

func TestTCPLargeFrame(t *testing.T) {
	addrs := freeAddrs(t, 2)
	conns := make([]*TCPConn, 2)
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c, err := DialMesh(i, 2, addrs, 5*time.Second)
			if err == nil {
				conns[i] = c
			}
		}(i)
	}
	wg.Wait()
	if conns[0] == nil || conns[1] == nil {
		t.Fatal("mesh setup failed")
	}
	defer conns[0].Close()
	defer conns[1].Close()

	payload := make([]byte, 1<<16)
	for i := range payload {
		payload[i] = byte(i * 31)
	}
	done := make(chan error, 1)
	go func() {
		done <- conns[0].Send(1, payload)
	}()
	got, err := conns[1].Recv(0)
	if err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("large frame corrupted")
	}
}

func TestTCPOversizedFrameRejected(t *testing.T) {
	addrs := freeAddrs(t, 2)
	conns := make([]*TCPConn, 2)
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c, err := DialMesh(i, 2, addrs, 5*time.Second)
			if err == nil {
				conns[i] = c
			}
		}(i)
	}
	wg.Wait()
	if conns[0] == nil || conns[1] == nil {
		t.Fatal("mesh setup failed")
	}
	defer conns[0].Close()
	defer conns[1].Close()
	// Forge a frame header claiming 1 GiB directly on the socket.
	raw := conns[0].peers[1]
	hdr := []byte{0, 0, 0, 0x40} // 0x40000000 little-endian
	if _, err := raw.Write(hdr); err != nil {
		t.Fatal(err)
	}
	if _, err := conns[1].Recv(0); err == nil {
		t.Fatal("oversized frame accepted")
	}
}

func TestTCPDialMeshValidation(t *testing.T) {
	if _, err := DialMesh(0, 3, []string{"x"}, time.Second); err == nil {
		t.Fatal("wrong addr count accepted")
	}
	// Nobody listening on the peer: the dial side must time out.
	start := time.Now()
	_, err := DialMesh(2, 3, []string{"127.0.0.1:1", "127.0.0.1:1", "127.0.0.1:0"}, 300*time.Millisecond)
	if err == nil {
		t.Fatal("dial to dead peers succeeded")
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("timeout not honored")
	}
}

func TestTCPSendRecvValidation(t *testing.T) {
	addrs := freeAddrs(t, 2)
	conns := make([]*TCPConn, 2)
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c, err := DialMesh(i, 2, addrs, 5*time.Second)
			if err == nil {
				conns[i] = c
			}
		}(i)
	}
	wg.Wait()
	if conns[0] == nil {
		t.Fatal("mesh setup failed")
	}
	defer conns[0].Close()
	defer conns[1].Close()
	if err := conns[0].Send(0, nil); err == nil {
		t.Fatal("self-send accepted")
	}
	if err := conns[0].Send(5, nil); err == nil {
		t.Fatal("out-of-range send accepted")
	}
	if _, err := conns[0].Recv(0); err == nil {
		t.Fatal("self-recv accepted")
	}
	if conns[0].Party() != 0 || conns[0].N() != 2 {
		t.Fatal("identity wrong")
	}
}

func TestMemDelayedDelivery(t *testing.T) {
	m := NewMem(2)
	m.SetDelay(5*time.Millisecond, 0)
	a, b := m.Conn(0), m.Conn(1)
	start := time.Now()
	if err := a.Send(1, []byte("hi")); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Recv(0); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 5*time.Millisecond {
		t.Fatalf("delayed message delivered after %v, want >= 5ms", elapsed)
	}

	// Bandwidth term: 1000 bytes at 100 kB/s is another 10ms.
	m.SetDelay(0, 100e3)
	start = time.Now()
	if err := a.Send(1, make([]byte, 1000)); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Recv(0); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 10*time.Millisecond {
		t.Fatalf("bandwidth-delayed message delivered after %v, want >= 10ms", elapsed)
	}

	// SetDelay(0, 0) restores immediate delivery.
	m.SetDelay(0, 0)
	start = time.Now()
	if err := a.Send(1, []byte("fast")); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Recv(0); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("immediate message took %v", elapsed)
	}
}

func TestErrorClassification(t *testing.T) {
	if Transient(nil) || IsTimeout(nil) {
		t.Fatal("nil error classified as a fault")
	}
	if Transient(ErrClosed) {
		t.Fatal("closed endpoint classified as transient")
	}
	if !Transient(ErrTransient) || !Transient(ErrRoundTimeout) {
		t.Fatal("transient sentinels not classified as transient")
	}
	if !IsTimeout(ErrRoundTimeout) || IsTimeout(ErrTransient) {
		t.Fatal("timeout classification wrong on sentinels")
	}
	// Classification must survive wrapping through protocol layers.
	wrapped := fmt.Errorf("mpc: party 1: %w", fmt.Errorf("transport: recv from 0: %w", ErrRoundTimeout))
	if !Transient(wrapped) || !IsTimeout(wrapped) {
		t.Fatalf("wrapped timeout not classified: %v", wrapped)
	}
}

func TestMemRecvTimeout(t *testing.T) {
	m := NewMem(2)
	m.SetRecvTimeout(50 * time.Millisecond)
	c0, c1 := m.Conn(0), m.Conn(1)

	start := time.Now()
	_, err := c0.Recv(1) // nobody sends: the wait must expire, not block
	if err == nil {
		t.Fatal("recv with no sender succeeded")
	}
	if !errors.Is(err, ErrRoundTimeout) || !IsTimeout(err) || !Transient(err) {
		t.Fatalf("timeout not classified: %v", err)
	}
	if elapsed := time.Since(start); elapsed > 3*time.Second {
		t.Fatalf("bounded recv took %v", elapsed)
	}

	// An expired wait does not damage the endpoint.
	if err := c1.Send(0, []byte("late")); err != nil {
		t.Fatal(err)
	}
	if got, err := c0.Recv(1); err != nil || string(got) != "late" {
		t.Fatalf("recv after timeout = %q, %v", got, err)
	}

	// Zero disables the bound again.
	m.SetRecvTimeout(0)
	if err := c1.Send(0, []byte("x")); err != nil {
		t.Fatal(err)
	}
	if _, err := c0.Recv(1); err != nil {
		t.Fatal(err)
	}
}

func TestMemDrain(t *testing.T) {
	m := NewMem(3)
	c0, c1, c2 := m.Conn(0), m.Conn(1), m.Conn(2)
	c0.Send(1, []byte("stale-a"))
	c2.Send(1, []byte("stale-b"))
	c1.Send(0, []byte("stale-c"))
	m.Drain()

	m.SetRecvTimeout(20 * time.Millisecond)
	for _, probe := range []struct {
		conn Conn
		from int
	}{{c1, 0}, {c1, 2}, {c0, 1}} {
		if _, err := probe.conn.Recv(probe.from); !errors.Is(err, ErrRoundTimeout) {
			t.Fatalf("stale frame survived drain at party %d from %d: %v",
				probe.conn.Party(), probe.from, err)
		}
	}

	// Fresh traffic flows after a drain.
	if err := c0.Send(1, []byte("fresh")); err != nil {
		t.Fatal(err)
	}
	if got, err := c1.Recv(0); err != nil || string(got) != "fresh" {
		t.Fatalf("recv after drain = %q, %v", got, err)
	}

	// Draining a network with a closed endpoint must not panic.
	c2.Close()
	m.Drain()
}

func TestTCPRoundTimeout(t *testing.T) {
	addrs := freeAddrs(t, 2)
	conns := make([]*TCPConn, 2)
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c, err := DialMesh(i, 2, addrs, 5*time.Second)
			if err == nil {
				conns[i] = c
			}
		}(i)
	}
	wg.Wait()
	if conns[0] == nil || conns[1] == nil {
		t.Fatal("mesh setup failed")
	}
	defer conns[0].Close()
	defer conns[1].Close()

	conns[0].SetRoundTimeout(100 * time.Millisecond)
	start := time.Now()
	_, err := conns[0].Recv(1) // peer silent: the read deadline must fire
	if err == nil {
		t.Fatal("recv from a silent peer succeeded")
	}
	if !errors.Is(err, ErrRoundTimeout) || !IsTimeout(err) || !Transient(err) {
		t.Fatalf("socket timeout not classified: %v", err)
	}
	if elapsed := time.Since(start); elapsed > 3*time.Second {
		t.Fatalf("bounded recv took %v", elapsed)
	}

	// The socket survives an expired deadline; later rounds proceed.
	if err := conns[1].Send(0, []byte("late")); err != nil {
		t.Fatal(err)
	}
	if got, err := conns[0].Recv(1); err != nil || string(got) != "late" {
		t.Fatalf("recv after timeout = %q, %v", got, err)
	}
	conns[0].SetRoundTimeout(0)
	if err := conns[1].Send(0, []byte("unbounded")); err != nil {
		t.Fatal(err)
	}
	if _, err := conns[0].Recv(1); err != nil {
		t.Fatal(err)
	}
}

func TestTCPDialMeshMidHandshakeFailure(t *testing.T) {
	// Party 1 of 3 accepts from party 2 and dials party 0. We play both of
	// its peers and fail the handshake on the accept side while the dial side
	// is still working. The setup must cancel and join the dial goroutine
	// before tearing the half-built mesh down — the old implementation closed
	// the mesh while the dialer could still be installing peer sockets (a
	// race, and with an unreachable peer it kept retrying until the full
	// setup timeout). The error must surface promptly, well inside the
	// generous 30s mesh timeout.
	for round := 0; round < 8; round++ {
		deadDialPeer := round%2 == 0
		addrs := freeAddrs(t, 3)

		var party0 net.Listener
		if deadDialPeer {
			addrs[0] = "127.0.0.1:1" // refused: the dial loop retries until cancelled
		} else {
			var err error
			party0, err = net.Listen("tcp", addrs[0])
			if err != nil {
				t.Fatal(err)
			}
			go func() { // complete party 1's dial-side handshake, then idle
				conn, err := party0.Accept()
				if err != nil {
					return
				}
				var hello [4]byte
				io.ReadFull(conn, hello[:])
			}()
		}

		done := make(chan error, 1)
		go func() {
			c, err := DialMesh(1, 3, addrs, 30*time.Second)
			if c != nil {
				c.Close()
			}
			done <- err
		}()

		// Fake party 2: connect to party 1's listener and send a malformed
		// hello claiming to be party 0 (only higher-numbered parties may
		// introduce themselves on the accept side).
		var bad net.Conn
		var err error
		for i := 0; ; i++ {
			bad, err = net.Dial("tcp", addrs[1])
			if err == nil {
				break
			}
			if i > 2000 {
				t.Fatal("party 1 never started listening")
			}
			time.Sleep(2 * time.Millisecond)
		}
		var hello [4]byte // hello for "party 0"
		if _, err := bad.Write(hello[:]); err != nil {
			t.Fatal(err)
		}

		select {
		case err := <-done:
			if err == nil {
				t.Fatal("mesh setup with a malformed hello succeeded")
			}
			if !strings.Contains(err.Error(), "bad hello") {
				t.Fatalf("unexpected setup error: %v", err)
			}
		case <-time.After(10 * time.Second):
			t.Fatal("DialMesh did not cancel the surviving setup goroutine")
		}
		bad.Close()
		if party0 != nil {
			party0.Close()
		}
	}
}
