package transport

import (
	"bytes"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"
)

func TestMemBasicExchange(t *testing.T) {
	m := NewMem(3)
	c0, c1, c2 := m.Conn(0), m.Conn(1), m.Conn(2)
	if c0.Party() != 0 || c0.N() != 3 {
		t.Fatalf("endpoint identity wrong: %d/%d", c0.Party(), c0.N())
	}
	if err := c0.Send(1, []byte("hello")); err != nil {
		t.Fatal(err)
	}
	if err := c2.Send(1, []byte("world")); err != nil {
		t.Fatal(err)
	}
	got, err := c1.Recv(0)
	if err != nil || string(got) != "hello" {
		t.Fatalf("Recv(0) = %q, %v", got, err)
	}
	got, err = c1.Recv(2)
	if err != nil || string(got) != "world" {
		t.Fatalf("Recv(2) = %q, %v", got, err)
	}
	st := m.Stats()
	if st.Bytes != 10 || st.Messages != 2 {
		t.Fatalf("stats = %+v, want 10 bytes / 2 messages", st)
	}
	m.ResetStats()
	if st := m.Stats(); st.Bytes != 0 || st.Messages != 0 {
		t.Fatalf("reset failed: %+v", st)
	}
}

func TestMemFIFOPerPair(t *testing.T) {
	m := NewMem(2)
	c0, c1 := m.Conn(0), m.Conn(1)
	for i := 0; i < 100; i++ {
		if err := c0.Send(1, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 100; i++ {
		got, err := c1.Recv(0)
		if err != nil || got[0] != byte(i) {
			t.Fatalf("message %d out of order: %v %v", i, got, err)
		}
	}
}

func TestMemSendDoesNotAliasCallerBuffer(t *testing.T) {
	m := NewMem(2)
	c0, c1 := m.Conn(0), m.Conn(1)
	buf := []byte{1, 2, 3}
	if err := c0.Send(1, buf); err != nil {
		t.Fatal(err)
	}
	buf[0] = 99
	got, _ := c1.Recv(0)
	if !bytes.Equal(got, []byte{1, 2, 3}) {
		t.Fatalf("message corrupted by caller mutation: %v", got)
	}
}

func TestMemInvalidEndpoints(t *testing.T) {
	m := NewMem(2)
	c0 := m.Conn(0)
	if err := c0.Send(0, nil); err == nil {
		t.Fatal("self-send accepted")
	}
	if err := c0.Send(5, nil); err == nil {
		t.Fatal("out-of-range send accepted")
	}
	if _, err := c0.Recv(0); err == nil {
		t.Fatal("self-recv accepted")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range Conn must panic")
		}
	}()
	m.Conn(9)
}

func TestMemClose(t *testing.T) {
	m := NewMem(2)
	c0, c1 := m.Conn(0), m.Conn(1)
	c0.Send(1, []byte("x"))
	if err := c0.Close(); err != nil {
		t.Fatal(err)
	}
	// Buffered message still deliverable, then closed.
	if got, err := c1.Recv(0); err != nil || string(got) != "x" {
		t.Fatalf("buffered delivery after close: %q %v", got, err)
	}
	if _, err := c1.Recv(0); err != ErrClosed {
		t.Fatalf("want ErrClosed, got %v", err)
	}
	if err := c0.Send(1, []byte("y")); err != ErrClosed {
		t.Fatalf("send after close: %v", err)
	}
	if err := c0.Close(); err != nil { // double close is fine
		t.Fatal(err)
	}
}

func TestMemConcurrentParties(t *testing.T) {
	const n = 4
	const rounds = 200
	m := NewMem(n)
	var wg sync.WaitGroup
	errs := make(chan error, n)
	for p := 0; p < n; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			c := m.Conn(p)
			for r := 0; r < rounds; r++ {
				for q := 0; q < n; q++ {
					if q != p {
						if err := c.Send(q, []byte{byte(p), byte(r)}); err != nil {
							errs <- err
							return
						}
					}
				}
				for q := 0; q < n; q++ {
					if q == p {
						continue
					}
					got, err := c.Recv(q)
					if err != nil {
						errs <- err
						return
					}
					if got[0] != byte(q) || got[1] != byte(r) {
						errs <- fmt.Errorf("party %d round %d: got %v from %d", p, r, got, q)
						return
					}
				}
			}
		}(p)
	}
	wg.Wait()
	select {
	case err := <-errs:
		t.Fatal(err)
	default:
	}
	st := m.Stats()
	wantMsgs := int64(n * (n - 1) * rounds)
	if st.Messages != wantMsgs {
		t.Fatalf("messages = %d, want %d", st.Messages, wantMsgs)
	}
}

func freeAddrs(t *testing.T, n int) []string {
	t.Helper()
	addrs := make([]string, n)
	for i := range addrs {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		addrs[i] = l.Addr().String()
		l.Close()
	}
	return addrs
}

func TestTCPMeshExchange(t *testing.T) {
	const n = 3
	addrs := freeAddrs(t, n)
	conns := make([]*TCPConn, n)
	var wg sync.WaitGroup
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c, err := DialMesh(i, n, addrs, 5*time.Second)
			if err != nil {
				errs <- err
				return
			}
			conns[i] = c
		}(i)
	}
	wg.Wait()
	select {
	case err := <-errs:
		t.Fatal(err)
	default:
	}
	defer func() {
		for _, c := range conns {
			c.Close()
		}
	}()

	// Round-trip: every party sends a tagged frame to every other party.
	for p := 0; p < n; p++ {
		for q := 0; q < n; q++ {
			if q != p {
				if err := conns[p].Send(q, []byte(fmt.Sprintf("msg-%d-%d", p, q))); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	for q := 0; q < n; q++ {
		for p := 0; p < n; p++ {
			if p == q {
				continue
			}
			got, err := conns[q].Recv(p)
			if err != nil {
				t.Fatal(err)
			}
			want := fmt.Sprintf("msg-%d-%d", p, q)
			if string(got) != want {
				t.Fatalf("party %d got %q from %d, want %q", q, got, p, want)
			}
		}
	}
	if st := conns[0].Stats(); st.Messages != n-1 {
		t.Fatalf("party 0 sent %d messages, want %d", st.Messages, n-1)
	}
}

func TestTCPLargeFrame(t *testing.T) {
	addrs := freeAddrs(t, 2)
	conns := make([]*TCPConn, 2)
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c, err := DialMesh(i, 2, addrs, 5*time.Second)
			if err == nil {
				conns[i] = c
			}
		}(i)
	}
	wg.Wait()
	if conns[0] == nil || conns[1] == nil {
		t.Fatal("mesh setup failed")
	}
	defer conns[0].Close()
	defer conns[1].Close()

	payload := make([]byte, 1<<16)
	for i := range payload {
		payload[i] = byte(i * 31)
	}
	done := make(chan error, 1)
	go func() {
		done <- conns[0].Send(1, payload)
	}()
	got, err := conns[1].Recv(0)
	if err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("large frame corrupted")
	}
}

func TestTCPOversizedFrameRejected(t *testing.T) {
	addrs := freeAddrs(t, 2)
	conns := make([]*TCPConn, 2)
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c, err := DialMesh(i, 2, addrs, 5*time.Second)
			if err == nil {
				conns[i] = c
			}
		}(i)
	}
	wg.Wait()
	if conns[0] == nil || conns[1] == nil {
		t.Fatal("mesh setup failed")
	}
	defer conns[0].Close()
	defer conns[1].Close()
	// Forge a frame header claiming 1 GiB directly on the socket.
	raw := conns[0].peers[1]
	hdr := []byte{0, 0, 0, 0x40} // 0x40000000 little-endian
	if _, err := raw.Write(hdr); err != nil {
		t.Fatal(err)
	}
	if _, err := conns[1].Recv(0); err == nil {
		t.Fatal("oversized frame accepted")
	}
}

func TestTCPDialMeshValidation(t *testing.T) {
	if _, err := DialMesh(0, 3, []string{"x"}, time.Second); err == nil {
		t.Fatal("wrong addr count accepted")
	}
	// Nobody listening on the peer: the dial side must time out.
	start := time.Now()
	_, err := DialMesh(2, 3, []string{"127.0.0.1:1", "127.0.0.1:1", "127.0.0.1:0"}, 300*time.Millisecond)
	if err == nil {
		t.Fatal("dial to dead peers succeeded")
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("timeout not honored")
	}
}

func TestTCPSendRecvValidation(t *testing.T) {
	addrs := freeAddrs(t, 2)
	conns := make([]*TCPConn, 2)
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c, err := DialMesh(i, 2, addrs, 5*time.Second)
			if err == nil {
				conns[i] = c
			}
		}(i)
	}
	wg.Wait()
	if conns[0] == nil {
		t.Fatal("mesh setup failed")
	}
	defer conns[0].Close()
	defer conns[1].Close()
	if err := conns[0].Send(0, nil); err == nil {
		t.Fatal("self-send accepted")
	}
	if err := conns[0].Send(5, nil); err == nil {
		t.Fatal("out-of-range send accepted")
	}
	if _, err := conns[0].Recv(0); err == nil {
		t.Fatal("self-recv accepted")
	}
	if conns[0].Party() != 0 || conns[0].N() != 2 {
		t.Fatal("identity wrong")
	}
}

func TestMemDelayedDelivery(t *testing.T) {
	m := NewMem(2)
	m.SetDelay(5*time.Millisecond, 0)
	a, b := m.Conn(0), m.Conn(1)
	start := time.Now()
	if err := a.Send(1, []byte("hi")); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Recv(0); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 5*time.Millisecond {
		t.Fatalf("delayed message delivered after %v, want >= 5ms", elapsed)
	}

	// Bandwidth term: 1000 bytes at 100 kB/s is another 10ms.
	m.SetDelay(0, 100e3)
	start = time.Now()
	if err := a.Send(1, make([]byte, 1000)); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Recv(0); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 10*time.Millisecond {
		t.Fatalf("bandwidth-delayed message delivered after %v, want >= 10ms", elapsed)
	}

	// SetDelay(0, 0) restores immediate delivery.
	m.SetDelay(0, 0)
	start = time.Now()
	if err := a.Send(1, []byte("fast")); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Recv(0); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("immediate message took %v", elapsed)
	}
}
