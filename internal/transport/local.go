package transport

import (
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// LocalMesh runs all P parties' Mesh endpoints in one process over real
// loopback TCP (optionally mTLS): the deployment-shaped wire path — framed
// lanes multiplexed over P·(P−1)/2 physical sockets — without separate
// processes. The engine uses it in protocol mode so every secret share
// genuinely crosses a socket; tests use it to exercise the mux under -race.
//
// Listener ports are pre-bound before any endpoint dials, so concurrent
// setup never races on port availability.
type LocalMesh struct {
	n      int
	meshes []*Mesh
	lanes  atomic.Uint32
}

// NewLocalMesh builds the P-endpoint loopback mesh. opts applies to every
// endpoint (opts.Listener is overridden per party).
func NewLocalMesh(n int, opts MeshOptions) (*LocalMesh, error) {
	if n < 2 {
		return nil, fmt.Errorf("transport: need at least 2 parties, got %d", n)
	}
	addrs := make([]string, n)
	lns := make([]net.Listener, n)
	for i := 0; i < n-1; i++ { // party n-1 accepts nothing
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			for _, l := range lns {
				if l != nil {
					l.Close()
				}
			}
			return nil, fmt.Errorf("transport: local mesh listen: %w", err)
		}
		lns[i] = ln
		addrs[i] = ln.Addr().String()
	}
	addrs[n-1] = "127.0.0.1:0" // never dialed

	lm := &LocalMesh{n: n, meshes: make([]*Mesh, n)}
	lm.lanes.Store(15) // lanes 0..15 reserved, matching Mesh.OpenLane

	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			o := opts
			o.Listener = lns[i]
			lm.meshes[i], errs[i] = DialMeshMux(i, n, addrs, o)
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			lm.Close()
			return nil, err
		}
	}
	return lm, nil
}

func (lm *LocalMesh) N() int { return lm.n }

// Mesh returns party p's endpoint (for stats, chaos hooks, lane control).
func (lm *LocalMesh) Mesh(p int) *Mesh { return lm.meshes[p] }

// SetRoundTimeout bounds lane Recvs on every endpoint.
func (lm *LocalMesh) SetRoundTimeout(d time.Duration) {
	for _, m := range lm.meshes {
		m.SetRoundTimeout(d)
	}
}

// SessionConns opens one multiplexed lane per party, all sharing a fresh
// lane ID, so the P returned Conns form a session-private mesh over the
// shared physical links. The returned drain rotates the session onto
// another fresh lane ID, tombstoning the old one everywhere — the retry
// primitive: a replayed protocol round can never read stale frames of the
// aborted attempt. Neither the conns nor drain may be used concurrently
// with each other.
func (lm *LocalMesh) SessionConns() (conns []Conn, drain func()) {
	id := lm.lanes.Add(1)
	lcs := make([]*LaneConn, lm.n)
	conns = make([]Conn, lm.n)
	for p := 0; p < lm.n; p++ {
		lcs[p] = lm.meshes[p].Lane(id)
		conns[p] = lcs[p]
	}
	drain = func() {
		next := lm.lanes.Add(1)
		for _, lc := range lcs {
			lc.Rebind(next)
		}
	}
	return conns, drain
}

// Stats aggregates all endpoints' mesh counters.
func (lm *LocalMesh) Stats() []MeshStats {
	out := make([]MeshStats, 0, lm.n)
	for _, m := range lm.meshes {
		if m != nil {
			out = append(out, m.Stats())
		}
	}
	return out
}

// Close tears down every endpoint.
func (lm *LocalMesh) Close() error {
	var first error
	for _, m := range lm.meshes {
		if m != nil {
			if err := m.Close(); err != nil && first == nil {
				first = err
			}
		}
	}
	return first
}

// PerForkDialer reproduces the pre-mux behavior — one fresh TCP mesh
// (P·(P−1)/2 sockets) dialed per session fork — as the fd-hungry baseline
// the mux's throughput is gated against in fedbench.
type PerForkDialer struct {
	n       int
	timeout time.Duration
	tls     *TLSConfig
}

// NewPerForkDialer builds the baseline dialer for n parties.
func NewPerForkDialer(n int, timeout time.Duration, tc *TLSConfig) *PerForkDialer {
	if timeout <= 0 {
		timeout = 10 * time.Second
	}
	return &PerForkDialer{n: n, timeout: timeout, tls: tc}
}

// Dial establishes one fresh full mesh on ephemeral loopback ports and
// returns its P endpoints. There is no drain (frames die with the session
// sockets), so callers treat any transport failure as final for the mesh.
func (d *PerForkDialer) Dial() ([]Conn, error) {
	var lastErr error
	for attempt := 0; attempt < 3; attempt++ {
		conns, err := d.dialOnce()
		if err == nil {
			return conns, nil
		}
		lastErr = err
	}
	return nil, lastErr
}

func (d *PerForkDialer) dialOnce() ([]Conn, error) {
	// Reserve ephemeral ports by binding and releasing; the window between
	// release and DialMesh's own bind is the classic reuse race, which the
	// caller's bounded retry absorbs.
	addrs := make([]string, d.n)
	for i := 0; i < d.n-1; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		addrs[i] = ln.Addr().String()
		ln.Close()
	}
	addrs[d.n-1] = "127.0.0.1:0"

	conns := make([]Conn, d.n)
	errs := make([]error, d.n)
	var wg sync.WaitGroup
	for i := 0; i < d.n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c, err := DialMeshTLS(i, d.n, addrs, d.timeout, d.tls)
			if err != nil {
				errs[i] = err
				return
			}
			conns[i] = c
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			for _, c := range conns {
				if c != nil {
					c.Close()
				}
			}
			return nil, err
		}
	}
	return conns, nil
}
