package transport

import (
	"crypto/ecdsa"
	"crypto/elliptic"
	"crypto/rand"
	"crypto/tls"
	"crypto/x509"
	"crypto/x509/pkix"
	"encoding/pem"
	"fmt"
	"math/big"
	"net"
	"os"
	"path/filepath"
	"time"
)

// SiloServerName is the DNS SAN every silo certificate carries and the name
// peers verify against. Silos authenticate as members of the federation, not
// as individual hosts: deployments move silos between machines without
// re-issuing certificates, and the CA (not the name) is the trust anchor —
// only certificates signed by the federation CA pass mutual verification.
const SiloServerName = "fedroad-silo"

// TLSConfig names the PEM material for mutual-auth TLS between silos. Every
// inter-silo link is authenticated in BOTH directions: the acceptor verifies
// the dialer's client certificate and the dialer verifies the acceptor's
// server certificate, each against CAFile. A zero value (all paths empty)
// means plaintext; partially filled configs are rejected — accidentally
// unauthenticated meshes must not start.
type TLSConfig struct {
	CertFile string // this silo's certificate (PEM)
	KeyFile  string // this silo's private key (PEM)
	CAFile   string // the federation CA bundle both directions verify against
	// ServerName overrides the expected peer certificate name
	// (default SiloServerName).
	ServerName string
}

// Enabled reports whether any field is set (i.e. the mesh should use TLS).
func (c *TLSConfig) Enabled() bool {
	return c != nil && (c.CertFile != "" || c.KeyFile != "" || c.CAFile != "")
}

// load parses the certificate pair and CA pool.
func (c *TLSConfig) load() (tls.Certificate, *x509.CertPool, error) {
	if c.CertFile == "" || c.KeyFile == "" || c.CAFile == "" {
		return tls.Certificate{}, nil, fmt.Errorf("transport: mTLS requires cert, key AND ca files (got cert=%q key=%q ca=%q)",
			c.CertFile, c.KeyFile, c.CAFile)
	}
	cert, err := tls.LoadX509KeyPair(c.CertFile, c.KeyFile)
	if err != nil {
		return tls.Certificate{}, nil, fmt.Errorf("transport: load silo certificate: %w", err)
	}
	caPEM, err := os.ReadFile(c.CAFile)
	if err != nil {
		return tls.Certificate{}, nil, fmt.Errorf("transport: load CA: %w", err)
	}
	pool := x509.NewCertPool()
	if !pool.AppendCertsFromPEM(caPEM) {
		return tls.Certificate{}, nil, fmt.Errorf("transport: CA file %s holds no usable certificate", c.CAFile)
	}
	return cert, pool, nil
}

func (c *TLSConfig) serverName() string {
	if c.ServerName != "" {
		return c.ServerName
	}
	return SiloServerName
}

// ServerTLS builds the acceptor-side config: present our certificate,
// require and verify the dialer's certificate against the federation CA.
func (c *TLSConfig) ServerTLS() (*tls.Config, error) {
	cert, pool, err := c.load()
	if err != nil {
		return nil, err
	}
	return &tls.Config{
		Certificates: []tls.Certificate{cert},
		ClientCAs:    pool,
		ClientAuth:   tls.RequireAndVerifyClientCert,
		MinVersion:   tls.VersionTLS13,
	}, nil
}

// ClientTLS builds the dialer-side config: present our certificate, verify
// the acceptor's certificate against the federation CA.
func (c *TLSConfig) ClientTLS() (*tls.Config, error) {
	cert, pool, err := c.load()
	if err != nil {
		return nil, err
	}
	return &tls.Config{
		Certificates: []tls.Certificate{cert},
		RootCAs:      pool,
		ServerName:   c.serverName(),
		MinVersion:   tls.VersionTLS13,
	}, nil
}

// GenerateTestCerts writes a throwaway federation PKI into dir: a self-signed
// CA (ca.pem) and one certificate + key per silo (silo<i>.pem, silo<i>.key),
// each signed by the CA with the SiloServerName SAN and loopback IP SANs.
// This is the self-signed quickstart for local meshes, the cross-process
// chaos harness and CI — production deployments bring their own CA.
func GenerateTestCerts(dir string, silos int) error {
	if silos < 2 {
		return fmt.Errorf("transport: need at least 2 silos, got %d", silos)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	caKey, err := ecdsa.GenerateKey(elliptic.P256(), rand.Reader)
	if err != nil {
		return err
	}
	caTmpl := &x509.Certificate{
		SerialNumber:          big.NewInt(1),
		Subject:               pkix.Name{CommonName: "fedroad test federation CA"},
		NotBefore:             time.Now().Add(-time.Hour),
		NotAfter:              time.Now().Add(24 * time.Hour),
		IsCA:                  true,
		KeyUsage:              x509.KeyUsageCertSign | x509.KeyUsageDigitalSignature,
		BasicConstraintsValid: true,
	}
	caDER, err := x509.CreateCertificate(rand.Reader, caTmpl, caTmpl, &caKey.PublicKey, caKey)
	if err != nil {
		return err
	}
	if err := writePEM(filepath.Join(dir, "ca.pem"), "CERTIFICATE", caDER, 0o644); err != nil {
		return err
	}
	caCert, err := x509.ParseCertificate(caDER)
	if err != nil {
		return err
	}
	for i := 0; i < silos; i++ {
		key, err := ecdsa.GenerateKey(elliptic.P256(), rand.Reader)
		if err != nil {
			return err
		}
		tmpl := &x509.Certificate{
			SerialNumber: big.NewInt(int64(i) + 2),
			Subject:      pkix.Name{CommonName: fmt.Sprintf("fedroad silo %d", i)},
			NotBefore:    time.Now().Add(-time.Hour),
			NotAfter:     time.Now().Add(24 * time.Hour),
			KeyUsage:     x509.KeyUsageDigitalSignature,
			ExtKeyUsage:  []x509.ExtKeyUsage{x509.ExtKeyUsageServerAuth, x509.ExtKeyUsageClientAuth},
			DNSNames:     []string{SiloServerName},
			IPAddresses:  []net.IP{net.IPv4(127, 0, 0, 1), net.IPv6loopback},
		}
		der, err := x509.CreateCertificate(rand.Reader, tmpl, caCert, &key.PublicKey, caKey)
		if err != nil {
			return err
		}
		if err := writePEM(filepath.Join(dir, fmt.Sprintf("silo%d.pem", i)), "CERTIFICATE", der, 0o644); err != nil {
			return err
		}
		keyDER, err := x509.MarshalECPrivateKey(key)
		if err != nil {
			return err
		}
		if err := writePEM(filepath.Join(dir, fmt.Sprintf("silo%d.key", i)), "EC PRIVATE KEY", keyDER, 0o600); err != nil {
			return err
		}
	}
	return nil
}

// TestCertConfig returns the TLSConfig for silo i under a GenerateTestCerts
// directory.
func TestCertConfig(dir string, silo int) *TLSConfig {
	return &TLSConfig{
		CertFile: filepath.Join(dir, fmt.Sprintf("silo%d.pem", silo)),
		KeyFile:  filepath.Join(dir, fmt.Sprintf("silo%d.key", silo)),
		CAFile:   filepath.Join(dir, "ca.pem"),
	}
}

func writePEM(path, typ string, der []byte, mode os.FileMode) error {
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, mode)
	if err != nil {
		return err
	}
	if err := pem.Encode(f, &pem.Block{Type: typ, Bytes: der}); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
