// Package transport provides the party-to-party messaging substrate for the
// MPC engine. Two implementations exist: an in-process network with exact
// byte/message accounting (used by tests and the benchmark harness) and a
// real TCP mesh over the standard library's net package (used by the
// multi-process federation example and integration tests).
//
// The paper runs silos on separate machines connected by a LAN; the paper's
// own cost model for a secure comparison is R·(L + S/B) with R communication
// rounds, S bytes per round, latency L and bandwidth B (§VIII-B). The
// in-process network records R and S exactly so the harness can apply that
// model with configurable L and B.
package transport

import (
	"errors"
	"fmt"
	"math"
	"net"
	"sync/atomic"
	"time"
)

// Conn is one party's endpoint into the network. Party IDs are dense in
// [0, N). Send and Recv between a fixed (from, to) pair are FIFO-ordered;
// messages between different pairs are independent.
//
// A Conn may be used by a single goroutine at a time.
type Conn interface {
	// Party returns this endpoint's party ID.
	Party() int
	// N returns the number of parties in the network.
	N() int
	// Send transmits data to party `to`. The data slice is not retained.
	Send(to int, data []byte) error
	// Recv blocks until a message from party `from` arrives.
	Recv(from int) ([]byte, error)
	// Close releases the endpoint. Pending Recvs fail afterwards.
	Close() error
}

// ErrClosed is returned by operations on a closed endpoint.
var ErrClosed = errors.New("transport: endpoint closed")

// ErrRoundTimeout is returned (wrapped) when a Send or Recv exceeds the
// endpoint's configured per-round timeout: the peer is slow or dead, but the
// endpoint itself may still be usable. Callers decide whether to retry the
// round or tear the session down.
var ErrRoundTimeout = errors.New("transport: round timeout")

// ErrTransient tags injected or environmental faults that a bounded retry of
// the protocol round may clear (in contrast to ErrClosed, which is final).
var ErrTransient = errors.New("transport: transient fault")

// Transient reports whether err is worth retrying at the protocol-round
// level: explicit transient faults and timeouts (a slow peer may catch up on
// the next round) qualify; closed endpoints and structural errors do not.
func Transient(err error) bool {
	if err == nil {
		return false
	}
	if errors.Is(err, ErrClosed) {
		return false
	}
	if errors.Is(err, ErrTransient) || errors.Is(err, ErrRoundTimeout) {
		return true
	}
	var ne net.Error
	return errors.As(err, &ne) && ne.Timeout()
}

// IsTimeout reports whether err stems from a per-round deadline expiring —
// either the in-process ErrRoundTimeout or a net.Error deadline on a real
// socket.
func IsTimeout(err error) bool {
	if errors.Is(err, ErrRoundTimeout) {
		return true
	}
	var ne net.Error
	return errors.As(err, &ne) && ne.Timeout()
}

// Stats aggregates traffic over a network. Counters are totals across all
// parties (every byte is counted once, at the sender).
type Stats struct {
	Bytes    int64 // payload bytes sent
	Messages int64 // messages sent
}

// memMsg is one in-flight message. readyAt is the simulated delivery time;
// the zero value means "deliver immediately".
type memMsg struct {
	data    []byte
	readyAt time.Time
}

// Mem is an in-process network of N parties backed by buffered channels,
// with atomic traffic accounting.
//
// By default delivery is immediate. SetDelay switches the network into
// real-time simulation: each message becomes receivable only after the
// modeled one-way latency plus its serialization time has elapsed, so a
// protocol run's wall time reflects the paper's R·(L + S/B) cost model and
// concurrent protocol instances genuinely overlap their waits.
type Mem struct {
	n      int
	chans  [][]chan memMsg // chans[from][to]
	closed []atomic.Bool
	bytes  atomic.Int64
	msgs   atomic.Int64

	latencyNs atomic.Int64  // one-way latency, nanoseconds (0 = off)
	invBW     atomic.Uint64 // float64 bits of seconds-per-byte (0 = off)

	recvTimeoutNs atomic.Int64 // per-Recv wait bound, nanoseconds (0 = none)
}

// NewMem creates an in-process network for n parties.
func NewMem(n int) *Mem {
	if n < 2 {
		panic("transport: need at least 2 parties")
	}
	m := &Mem{n: n, chans: make([][]chan memMsg, n), closed: make([]atomic.Bool, n)}
	for i := range m.chans {
		m.chans[i] = make([]chan memMsg, n)
		for j := range m.chans[i] {
			if i != j {
				m.chans[i][j] = make(chan memMsg, 1024)
			}
		}
	}
	return m
}

// SetDelay configures real-time delivery delays: every message becomes
// receivable latency + len/bytesPerSec after it is sent. Zero values disable
// the respective term; SetDelay(0, 0) restores immediate delivery. Safe to
// call between protocol runs; concurrent calls with in-flight messages only
// affect messages sent afterwards.
func (m *Mem) SetDelay(latency time.Duration, bytesPerSec float64) {
	m.latencyNs.Store(int64(latency))
	var inv float64
	if bytesPerSec > 0 {
		inv = 1 / bytesPerSec
	}
	m.invBW.Store(math.Float64bits(inv))
}

// SetRecvTimeout bounds how long any Recv on this network waits for a frame
// to arrive (0 disables the bound). An expired wait fails with a wrapped
// ErrRoundTimeout instead of blocking forever, so one dead party degrades a
// protocol round into a clean error at its peers. The bound covers waiting
// for a frame to be sent; the simulated delivery delay of SetDelay is paid
// afterwards (it is bounded by the network model, not by peer liveness).
func (m *Mem) SetRecvTimeout(d time.Duration) {
	m.recvTimeoutNs.Store(int64(d))
}

// Drain discards every buffered in-flight message. Protocol-round retry uses
// this between attempts: a failed round can leave stale frames mid-stream,
// and replaying against them would desynchronize every later round. Callers
// must ensure no party goroutine is mid-protocol when draining.
func (m *Mem) Drain() {
	for i := range m.chans {
		for j, ch := range m.chans[i] {
			if i == j {
				continue
			}
			drainChan(ch)
		}
	}
}

func drainChan(ch chan memMsg) {
	for {
		select {
		case _, ok := <-ch:
			if !ok {
				return
			}
		default:
			return
		}
	}
}

// Stats returns a snapshot of total traffic.
func (m *Mem) Stats() Stats {
	return Stats{Bytes: m.bytes.Load(), Messages: m.msgs.Load()}
}

// ResetStats zeroes the traffic counters.
func (m *Mem) ResetStats() {
	m.bytes.Store(0)
	m.msgs.Store(0)
}

// Conn returns party p's endpoint.
func (m *Mem) Conn(p int) Conn {
	if p < 0 || p >= m.n {
		panic(fmt.Sprintf("transport: party %d out of range [0,%d)", p, m.n))
	}
	return &memConn{net: m, id: p}
}

type memConn struct {
	net *Mem
	id  int
}

func (c *memConn) Party() int { return c.id }
func (c *memConn) N() int     { return c.net.n }

func (c *memConn) Send(to int, data []byte) error {
	if c.net.closed[c.id].Load() {
		return ErrClosed
	}
	if to == c.id || to < 0 || to >= c.net.n {
		return fmt.Errorf("transport: invalid destination %d", to)
	}
	cp := make([]byte, len(data))
	copy(cp, data)
	c.net.bytes.Add(int64(len(data)))
	c.net.msgs.Add(1)
	msg := memMsg{data: cp}
	lat := c.net.latencyNs.Load()
	inv := math.Float64frombits(c.net.invBW.Load())
	if lat > 0 || inv > 0 {
		d := time.Duration(lat) + time.Duration(float64(len(data))*inv*float64(time.Second))
		msg.readyAt = time.Now().Add(d)
	}
	c.net.chans[c.id][to] <- msg
	return nil
}

func (c *memConn) Recv(from int) ([]byte, error) {
	if from == c.id || from < 0 || from >= c.net.n {
		return nil, fmt.Errorf("transport: invalid source %d", from)
	}
	var msg memMsg
	var ok bool
	if to := time.Duration(c.net.recvTimeoutNs.Load()); to > 0 {
		timer := time.NewTimer(to)
		defer timer.Stop()
		select {
		case msg, ok = <-c.net.chans[from][c.id]:
		case <-timer.C:
			return nil, fmt.Errorf("transport: recv from %d: %w", from, ErrRoundTimeout)
		}
	} else {
		msg, ok = <-c.net.chans[from][c.id]
	}
	if !ok {
		return nil, ErrClosed
	}
	if !msg.readyAt.IsZero() {
		if d := time.Until(msg.readyAt); d > 0 {
			time.Sleep(d)
		}
	}
	return msg.data, nil
}

func (c *memConn) Close() error {
	if c.net.closed[c.id].CompareAndSwap(false, true) {
		for to := 0; to < c.net.n; to++ {
			if to != c.id {
				close(c.net.chans[c.id][to])
			}
		}
	}
	return nil
}
