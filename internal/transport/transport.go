// Package transport provides the party-to-party messaging substrate for the
// MPC engine. Two implementations exist: an in-process network with exact
// byte/message accounting (used by tests and the benchmark harness) and a
// real TCP mesh over the standard library's net package (used by the
// multi-process federation example and integration tests).
//
// The paper runs silos on separate machines connected by a LAN; the paper's
// own cost model for a secure comparison is R·(L + S/B) with R communication
// rounds, S bytes per round, latency L and bandwidth B (§VIII-B). The
// in-process network records R and S exactly so the harness can apply that
// model with configurable L and B.
package transport

import (
	"errors"
	"fmt"
	"sync/atomic"
)

// Conn is one party's endpoint into the network. Party IDs are dense in
// [0, N). Send and Recv between a fixed (from, to) pair are FIFO-ordered;
// messages between different pairs are independent.
//
// A Conn may be used by a single goroutine at a time.
type Conn interface {
	// Party returns this endpoint's party ID.
	Party() int
	// N returns the number of parties in the network.
	N() int
	// Send transmits data to party `to`. The data slice is not retained.
	Send(to int, data []byte) error
	// Recv blocks until a message from party `from` arrives.
	Recv(from int) ([]byte, error)
	// Close releases the endpoint. Pending Recvs fail afterwards.
	Close() error
}

// ErrClosed is returned by operations on a closed endpoint.
var ErrClosed = errors.New("transport: endpoint closed")

// Stats aggregates traffic over a network. Counters are totals across all
// parties (every byte is counted once, at the sender).
type Stats struct {
	Bytes    int64 // payload bytes sent
	Messages int64 // messages sent
}

// Mem is an in-process network of N parties backed by buffered channels,
// with atomic traffic accounting.
type Mem struct {
	n      int
	chans  [][]chan []byte // chans[from][to]
	closed []atomic.Bool
	bytes  atomic.Int64
	msgs   atomic.Int64
}

// NewMem creates an in-process network for n parties.
func NewMem(n int) *Mem {
	if n < 2 {
		panic("transport: need at least 2 parties")
	}
	m := &Mem{n: n, chans: make([][]chan []byte, n), closed: make([]atomic.Bool, n)}
	for i := range m.chans {
		m.chans[i] = make([]chan []byte, n)
		for j := range m.chans[i] {
			if i != j {
				m.chans[i][j] = make(chan []byte, 1024)
			}
		}
	}
	return m
}

// Stats returns a snapshot of total traffic.
func (m *Mem) Stats() Stats {
	return Stats{Bytes: m.bytes.Load(), Messages: m.msgs.Load()}
}

// ResetStats zeroes the traffic counters.
func (m *Mem) ResetStats() {
	m.bytes.Store(0)
	m.msgs.Store(0)
}

// Conn returns party p's endpoint.
func (m *Mem) Conn(p int) Conn {
	if p < 0 || p >= m.n {
		panic(fmt.Sprintf("transport: party %d out of range [0,%d)", p, m.n))
	}
	return &memConn{net: m, id: p}
}

type memConn struct {
	net *Mem
	id  int
}

func (c *memConn) Party() int { return c.id }
func (c *memConn) N() int     { return c.net.n }

func (c *memConn) Send(to int, data []byte) error {
	if c.net.closed[c.id].Load() {
		return ErrClosed
	}
	if to == c.id || to < 0 || to >= c.net.n {
		return fmt.Errorf("transport: invalid destination %d", to)
	}
	cp := make([]byte, len(data))
	copy(cp, data)
	c.net.bytes.Add(int64(len(data)))
	c.net.msgs.Add(1)
	c.net.chans[c.id][to] <- cp
	return nil
}

func (c *memConn) Recv(from int) ([]byte, error) {
	if from == c.id || from < 0 || from >= c.net.n {
		return nil, fmt.Errorf("transport: invalid source %d", from)
	}
	data, ok := <-c.net.chans[from][c.id]
	if !ok {
		return nil, ErrClosed
	}
	return data, nil
}

func (c *memConn) Close() error {
	if c.net.closed[c.id].CompareAndSwap(false, true) {
		for to := 0; to < c.net.n; to++ {
			if to != c.id {
				close(c.net.chans[c.id][to])
			}
		}
	}
	return nil
}
