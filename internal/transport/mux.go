package transport

import (
	"bufio"
	"crypto/tls"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// ErrPeerDown is returned (wrapped) by lane operations when the physical
// link to the peer is down — declared dead by the heartbeat monitor, torn by
// a socket error, or not yet (re-)established. It is deliberately NOT
// transient: an in-flight protocol round on a dead link cannot be resumed
// (frames may be lost mid-round), so the MPC engine poisons itself fast and
// its owner retries on a fresh session, whose lanes transparently use the
// redialed link.
var ErrPeerDown = errors.New("transport: peer link down")

// ErrLaneClosed is returned by operations on a closed lane.
var ErrLaneClosed = errors.New("transport: lane closed")

// Mux wire format. Every frame is
//
//	[4B lane ID][4B sequence][4B payload length][payload]
//
// on one physical connection per peer pair. Lane 0 is the control lane
// carrying heartbeat pings and pongs; all other lanes are independent
// FIFO-ordered byte-message streams. The sequence number counts frames per
// (lane, direction) within one link generation; a gap or repeat means the
// stream was corrupted (e.g. by a retransmitting middlebox), and the
// receiver kills the link rather than deliver desynchronized protocol
// frames.
const (
	muxHeaderLen = 12
	muxMaxFrame  = 1 << 24
	laneControl  = 0

	hbPing byte = 1
	hbPong byte = 2

	// muxHelloMagic opens every connection: magic, protocol version and the
	// dialer's party ID, so an acceptor can pair (and re-pair, after a
	// reconnect) sockets to parties.
	muxHelloMagic   = 0x4652_4d58 // "FRMX"
	muxHelloVersion = 1
	muxHelloLen     = 12
)

// MeshOptions tunes a Mesh. The zero value gives production-ish defaults
// suitable for LAN deployments and loopback tests.
type MeshOptions struct {
	// TLS enables mutual-auth TLS on every inter-silo link (nil = plaintext).
	TLS *TLSConfig
	// Heartbeat is the control-ping interval per link; a link with no
	// inbound traffic for Heartbeat×HeartbeatMisses is declared dead.
	// Default 250ms. Negative disables heartbeats (deterministic tests).
	Heartbeat time.Duration
	// HeartbeatMisses is the dead-peer threshold in heartbeat intervals
	// (default 4).
	HeartbeatMisses int
	// RedialMin/RedialMax bound the exponential backoff between redial
	// attempts after a link dies (defaults 50ms / 2s).
	RedialMin, RedialMax time.Duration
	// LaneQueue caps buffered inbound frames per lane per peer (default 64).
	// A full queue exerts TCP backpressure: the link reader blocks, the
	// peer's socket writes stall, and — if the stall outlives the heartbeat
	// deadline — the link is declared dead and redialed clean.
	LaneQueue int
	// DialTimeout bounds the initial full-mesh establishment (default 10s).
	DialTimeout time.Duration
	// Listener, when set, is used instead of listening on addrs[id]
	// (callers that pre-bind ports to avoid races, e.g. the loopback mesh).
	Listener net.Listener
}

func (o MeshOptions) withDefaults() MeshOptions {
	if o.Heartbeat == 0 {
		o.Heartbeat = 250 * time.Millisecond
	}
	if o.HeartbeatMisses <= 0 {
		o.HeartbeatMisses = 4
	}
	if o.RedialMin <= 0 {
		o.RedialMin = 50 * time.Millisecond
	}
	if o.RedialMax <= 0 {
		o.RedialMax = 2 * time.Second
	}
	if o.LaneQueue <= 0 {
		o.LaneQueue = 64
	}
	if o.DialTimeout <= 0 {
		o.DialTimeout = 10 * time.Second
	}
	return o
}

// muxFrame is one queued inbound payload.
type muxFrame struct {
	data []byte
}

// laneState is one lane's inbound queue on one link, plus the reader-side
// sequence expectation. recvSeq/haveSeq are touched only by the link's
// single reader goroutine; the map holding the struct is guarded by qmu.
type laneState struct {
	q       chan muxFrame
	recvSeq uint32
	haveSeq bool
}

// link is one live physical connection to a peer. A link is immutable once
// installed; reconnection installs a NEW link (next generation) and fails
// the old one, so every lane operation is pinned to the generation it
// observed — an operation never silently migrates mid-round onto a redialed
// socket.
type link struct {
	m    *Mesh
	peer int
	gen  uint64
	conn net.Conn
	rd   *bufio.Reader

	wmu sync.Mutex

	dead     chan struct{}
	deadOnce sync.Once
	lastRecv atomic.Int64 // unix nanos of the last inbound frame

	qmu         sync.Mutex
	lanes       map[uint32]*laneState
	closedLanes map[uint32]struct{}
	closedFIFO  []uint32
}

// maxTombstones bounds the closed-lane set per link: lanes close mostly in
// allocation order, so a bounded FIFO keeps the common stale-frame window
// covered without unbounded growth on long-lived links.
const maxTombstones = 4096

// maxLanesPerLink bounds concurrently buffered lanes; beyond it the peer is
// misbehaving (or leaking lanes) and the link is killed.
const maxLanesPerLink = 1 << 17

// fail declares the link dead exactly once: the socket closes, every lane
// waiter wakes with ErrPeerDown, and the mesh's redial machinery takes over.
func (l *link) fail() {
	l.deadOnce.Do(func() {
		close(l.dead)
		l.conn.Close()
		l.m.links[l.peer].CompareAndSwap(l, nil)
	})
}

func (l *link) isDead() bool {
	select {
	case <-l.dead:
		return true
	default:
		return false
	}
}

// laneFor returns the lane's inbound queue, creating it on demand (frames
// legitimately arrive before the local goroutine registers the lane — the
// peer may simply be a step ahead). Returns nil for tombstoned lanes.
func (l *link) laneFor(lane uint32) *laneState {
	l.qmu.Lock()
	defer l.qmu.Unlock()
	if _, closed := l.closedLanes[lane]; closed {
		return nil
	}
	ls := l.lanes[lane]
	if ls == nil {
		if len(l.lanes) >= maxLanesPerLink {
			return nil // treated as protocol insanity by the caller
		}
		ls = &laneState{q: make(chan muxFrame, l.m.opts.LaneQueue)}
		l.lanes[lane] = ls
	}
	return ls
}

// closeLane tombstones a lane: its queue is dropped and late frames for it
// are discarded instead of accumulating.
func (l *link) closeLane(lane uint32) {
	l.qmu.Lock()
	defer l.qmu.Unlock()
	if _, done := l.closedLanes[lane]; done {
		return
	}
	delete(l.lanes, lane)
	l.closedLanes[lane] = struct{}{}
	l.closedFIFO = append(l.closedFIFO, lane)
	if len(l.closedFIFO) > maxTombstones {
		evict := l.closedFIFO[0]
		l.closedFIFO = l.closedFIFO[1:]
		delete(l.closedLanes, evict)
	}
}

// writeFrame serializes one frame onto the socket under the link's write
// mutex (the fair writer: goroutines queue on the mutex in roughly FIFO
// order, and no lane can starve others beyond one frame). The write deadline
// is the heartbeat budget: a peer that stops draining its socket turns into
// a dead link, not a parked goroutine.
func (l *link) writeFrame(lane, seq uint32, payload []byte) error {
	if len(payload) > muxMaxFrame {
		return fmt.Errorf("transport: mux frame to party %d oversized: %d", l.peer, len(payload))
	}
	buf := make([]byte, muxHeaderLen+len(payload))
	binary.LittleEndian.PutUint32(buf[0:], lane)
	binary.LittleEndian.PutUint32(buf[4:], seq)
	binary.LittleEndian.PutUint32(buf[8:], uint32(len(payload)))
	copy(buf[muxHeaderLen:], payload)

	l.wmu.Lock()
	defer l.wmu.Unlock()
	if l.isDead() {
		return fmt.Errorf("transport: send to party %d: %w", l.peer, ErrPeerDown)
	}
	if hb := l.m.heartbeatDeadline(); hb > 0 {
		l.conn.SetWriteDeadline(time.Now().Add(hb))
	}
	if _, err := l.conn.Write(buf); err != nil {
		l.fail()
		return opError("send to", l.peer, err)
	}
	l.m.pstats[l.peer].bytesSent.Add(int64(len(payload)))
	l.m.pstats[l.peer].msgsSent.Add(1)
	return nil
}

// readLoop demultiplexes inbound frames into lane queues, answers heartbeat
// pings, enforces per-lane sequence continuity and keeps the liveness clock.
func (l *link) readLoop() {
	defer l.fail()
	var hdr [muxHeaderLen]byte
	for {
		if hb := l.m.heartbeatDeadline(); hb > 0 {
			l.conn.SetReadDeadline(time.Now().Add(hb))
		}
		if _, err := io.ReadFull(l.rd, hdr[:]); err != nil {
			l.noteReadFailure(err)
			return
		}
		lane := binary.LittleEndian.Uint32(hdr[0:])
		seq := binary.LittleEndian.Uint32(hdr[4:])
		size := binary.LittleEndian.Uint32(hdr[8:])
		if size > muxMaxFrame {
			return // corrupt stream: kill the link
		}
		payload := make([]byte, size)
		if _, err := io.ReadFull(l.rd, payload); err != nil {
			l.noteReadFailure(err)
			return
		}
		l.lastRecv.Store(time.Now().UnixNano())
		l.m.pstats[l.peer].bytesRecv.Add(int64(size))
		l.m.pstats[l.peer].msgsRecv.Add(1)

		if lane == laneControl {
			if size == 1 && payload[0] == hbPing {
				// Best-effort pong; a write failure kills the link anyway.
				l.writeFrame(laneControl, 0, []byte{hbPong})
			}
			continue
		}
		ls := l.laneFor(lane)
		if ls == nil {
			continue // tombstoned (or insane lane count): drop late frame
		}
		if ls.haveSeq && seq != ls.recvSeq {
			return // sequence break: desynchronized stream, kill the link
		}
		ls.recvSeq = seq + 1
		ls.haveSeq = true
		select {
		case ls.q <- muxFrame{data: payload}:
		case <-l.dead:
			return
		}
	}
}

// noteReadFailure distinguishes a heartbeat-deadline expiry (counted as a
// miss) from other socket errors.
func (l *link) noteReadFailure(err error) {
	var ne net.Error
	if errors.As(err, &ne) && ne.Timeout() {
		l.m.pstats[l.peer].hbMisses.Add(1)
	}
}

// peerCounters is the per-peer atomic counter block (scrape-safe under
// -race: no lock is shared with the data path).
type peerCounters struct {
	bytesSent, msgsSent atomic.Int64
	bytesRecv, msgsRecv atomic.Int64
	reconnects          atomic.Int64
	hbMisses            atomic.Int64
	dialFailures        atomic.Int64
}

// MeshPeerStats is one peer's traffic and liveness counters.
type MeshPeerStats struct {
	Peer       int
	Up         bool
	Generation uint64 // link generations installed (1 = never reconnected)
	BytesSent  int64
	MsgsSent   int64
	BytesRecv  int64
	MsgsRecv   int64
	// Reconnects counts link REPLACEMENTS (generations beyond the first).
	Reconnects int64
	// HeartbeatMisses counts liveness deadline expiries that killed a link.
	HeartbeatMisses int64
	// DialFailures counts failed redial attempts (backoff retries).
	DialFailures int64
}

// MeshStats aggregates a mesh endpoint's counters.
type MeshStats struct {
	Party           int
	Peers           []MeshPeerStats
	LinksUp         int
	Reconnects      int64
	HeartbeatMisses int64
	BytesSent       int64
	MsgsSent        int64
}

// Mesh is one party's endpoint into a resilient multiplexed TCP mesh:
// exactly one physical connection per peer (mTLS when configured), any
// number of concurrent session lanes multiplexed over it, heartbeat-based
// failure detection and automatic redial with bounded exponential backoff.
//
// Lanes opened while a link is down (or that outlive their link) fail fast
// with ErrPeerDown; lanes opened after the redial transparently use the new
// link. The pairing protocol follows DialMesh: party i accepts from every
// j > i and dials every j < i, and keeps those roles for reconnection — the
// higher-numbered party redials, the lower-numbered party re-accepts.
type Mesh struct {
	id, n int
	addrs []string
	opts  MeshOptions

	srvTLS *tls.Config
	cliTLS *tls.Config

	ln    net.Listener
	stop  chan struct{}
	stopO sync.Once
	wg    sync.WaitGroup

	links []atomic.Pointer[link]
	gens  []atomic.Uint64

	laneCtr        atomic.Uint32
	roundTimeoutNs atomic.Int64

	pstats []peerCounters
}

// DialMeshMux establishes a resilient multiplexed mesh among n parties;
// addrs[i] is party i's listen address (unused for i == n−1, which accepts
// nothing). All parties must start concurrently; opts.DialTimeout bounds the
// initial full-mesh establishment. After that, individual link failures are
// repaired automatically in the background for the life of the mesh.
func DialMeshMux(id, n int, addrs []string, opts MeshOptions) (*Mesh, error) {
	if len(addrs) != n {
		return nil, fmt.Errorf("transport: %d addrs for %d parties", len(addrs), n)
	}
	if id < 0 || id >= n {
		return nil, fmt.Errorf("transport: party %d out of range [0,%d)", id, n)
	}
	opts = opts.withDefaults()
	m := &Mesh{
		id: id, n: n, addrs: addrs, opts: opts,
		stop:   make(chan struct{}),
		links:  make([]atomic.Pointer[link], n),
		gens:   make([]atomic.Uint64, n),
		pstats: make([]peerCounters, n),
	}
	m.laneCtr.Store(15) // lanes 0..15 reserved (control + rendezvous)
	if opts.TLS.Enabled() {
		var err error
		if m.srvTLS, err = opts.TLS.ServerTLS(); err != nil {
			return nil, err
		}
		if m.cliTLS, err = opts.TLS.ClientTLS(); err != nil {
			return nil, err
		}
	}
	if id < n-1 { // parties that accept at least one connection
		ln := opts.Listener
		if ln == nil {
			var err error
			ln, err = net.Listen("tcp", addrs[id])
			if err != nil {
				return nil, fmt.Errorf("transport: listen %s: %w", addrs[id], err)
			}
		}
		m.ln = ln
		m.wg.Add(1)
		go m.acceptLoop()
	}
	for peer := 0; peer < id; peer++ { // dial lower-numbered parties, forever
		m.wg.Add(1)
		go m.dialLoop(peer)
	}
	if err := m.waitReady(opts.DialTimeout); err != nil {
		m.Close()
		return nil, err
	}
	return m, nil
}

func (m *Mesh) Party() int { return m.id }
func (m *Mesh) N() int     { return m.n }

// SetRoundTimeout bounds every lane Recv on this mesh that has no per-lane
// override (0 = wait forever, except for link death, which always wakes
// waiters).
func (m *Mesh) SetRoundTimeout(d time.Duration) { m.roundTimeoutNs.Store(int64(d)) }

// heartbeatDeadline is the I/O stall budget: Heartbeat×Misses (0 when
// heartbeats are disabled).
func (m *Mesh) heartbeatDeadline() time.Duration {
	if m.opts.Heartbeat < 0 {
		return 0
	}
	return m.opts.Heartbeat * time.Duration(m.opts.HeartbeatMisses)
}

// waitReady blocks until every peer link is up (initial mesh establishment).
func (m *Mesh) waitReady(timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		ready := true
		for p := 0; p < m.n; p++ {
			if p != m.id && m.links[p].Load() == nil {
				ready = false
				break
			}
		}
		if ready {
			return nil
		}
		if time.Now().After(deadline) {
			var down []int
			for p := 0; p < m.n; p++ {
				if p != m.id && m.links[p].Load() == nil {
					down = append(down, p)
				}
			}
			return fmt.Errorf("transport: mesh setup timeout: party %d has no link to %v: %w", m.id, down, ErrPeerDown)
		}
		select {
		case <-m.stop:
			return fmt.Errorf("transport: mesh closed during setup")
		case <-time.After(5 * time.Millisecond):
		}
	}
}

func (m *Mesh) stopped() bool {
	select {
	case <-m.stop:
		return true
	default:
		return false
	}
}

// acceptLoop pairs inbound connections (initial and re-established) to
// higher-numbered peers by their hello, replacing any previous link.
func (m *Mesh) acceptLoop() {
	defer m.wg.Done()
	for {
		conn, err := m.ln.Accept()
		if err != nil {
			if m.stopped() {
				return
			}
			// Transient accept failure (e.g. fd pressure): brief pause, retry.
			time.Sleep(10 * time.Millisecond)
			continue
		}
		m.wg.Add(1)
		go func() {
			defer m.wg.Done()
			m.handleInbound(conn)
		}()
	}
}

// handleInbound runs the acceptor-side handshake: optional TLS, then the
// hello identifying the dialing party.
func (m *Mesh) handleInbound(conn net.Conn) {
	hsDeadline := time.Now().Add(m.opts.DialTimeout)
	if m.srvTLS != nil {
		tconn := tls.Server(conn, m.srvTLS)
		tconn.SetDeadline(hsDeadline)
		if err := tconn.Handshake(); err != nil {
			tconn.Close()
			return
		}
		tconn.SetDeadline(time.Time{})
		conn = tconn
	}
	conn.SetReadDeadline(hsDeadline)
	var hello [muxHelloLen]byte
	if _, err := io.ReadFull(conn, hello[:]); err != nil {
		conn.Close()
		return
	}
	conn.SetReadDeadline(time.Time{})
	if binary.LittleEndian.Uint32(hello[0:]) != muxHelloMagic ||
		binary.LittleEndian.Uint32(hello[4:]) != muxHelloVersion {
		conn.Close()
		return
	}
	peer := int(binary.LittleEndian.Uint32(hello[8:]))
	if peer <= m.id || peer >= m.n {
		conn.Close()
		return
	}
	m.install(peer, conn)
}

// dialLoop owns the link to one lower-numbered peer for the mesh lifetime:
// dial (with hello), then sleep until the link dies, then redial under
// bounded exponential backoff. Backoff resets after every successful dial.
func (m *Mesh) dialLoop(peer int) {
	defer m.wg.Done()
	backoff := m.opts.RedialMin
	for {
		if m.stopped() {
			return
		}
		if m.links[peer].Load() == nil {
			conn, err := m.dialPeer(peer)
			if err != nil {
				m.pstats[peer].dialFailures.Add(1)
				select {
				case <-m.stop:
					return
				case <-time.After(backoff):
				}
				backoff *= 2
				if backoff > m.opts.RedialMax {
					backoff = m.opts.RedialMax
				}
				continue
			}
			m.install(peer, conn)
			backoff = m.opts.RedialMin
		}
		l := m.links[peer].Load()
		if l == nil {
			continue
		}
		select {
		case <-m.stop:
			return
		case <-l.dead:
		}
	}
}

// dialPeer performs one outbound connection attempt: TCP dial, optional TLS
// handshake, hello.
func (m *Mesh) dialPeer(peer int) (net.Conn, error) {
	d := net.Dialer{Timeout: m.opts.DialTimeout}
	conn, err := d.Dial("tcp", m.addrs[peer])
	if err != nil {
		return nil, err
	}
	hsDeadline := time.Now().Add(m.opts.DialTimeout)
	if m.cliTLS != nil {
		tconn := tls.Client(conn, m.cliTLS)
		tconn.SetDeadline(hsDeadline)
		if err := tconn.Handshake(); err != nil {
			tconn.Close()
			return nil, err
		}
		tconn.SetDeadline(time.Time{})
		conn = tconn
	}
	var hello [muxHelloLen]byte
	binary.LittleEndian.PutUint32(hello[0:], muxHelloMagic)
	binary.LittleEndian.PutUint32(hello[4:], muxHelloVersion)
	binary.LittleEndian.PutUint32(hello[8:], uint32(m.id))
	conn.SetWriteDeadline(hsDeadline)
	if _, err := conn.Write(hello[:]); err != nil {
		conn.Close()
		return nil, err
	}
	conn.SetWriteDeadline(time.Time{})
	return conn, nil
}

// install activates a fresh link to peer (next generation), failing and
// replacing any previous one, and starts its reader and heartbeat sender.
func (m *Mesh) install(peer int, conn net.Conn) {
	if m.stopped() {
		conn.Close()
		return
	}
	gen := m.gens[peer].Add(1)
	l := &link{
		m: m, peer: peer, gen: gen, conn: conn,
		rd:          bufio.NewReader(conn),
		dead:        make(chan struct{}),
		lanes:       make(map[uint32]*laneState),
		closedLanes: make(map[uint32]struct{}),
	}
	l.lastRecv.Store(time.Now().UnixNano())
	if old := m.links[peer].Swap(l); old != nil {
		old.fail()
	}
	if gen > 1 {
		m.pstats[peer].reconnects.Add(1)
	}
	m.wg.Add(1)
	go func() {
		defer m.wg.Done()
		l.readLoop()
	}()
	if m.opts.Heartbeat > 0 {
		m.wg.Add(1)
		go m.heartbeatLoop(l)
	}
}

// heartbeatLoop pings the peer every interval. Liveness is enforced by the
// read deadline in readLoop (no inbound traffic for Heartbeat×Misses kills
// the link); the sender's job is to guarantee there IS periodic traffic on
// an otherwise idle healthy link, and to detect a peer that stopped
// draining its socket via the write deadline.
func (m *Mesh) heartbeatLoop(l *link) {
	defer m.wg.Done()
	t := time.NewTicker(m.opts.Heartbeat)
	defer t.Stop()
	for {
		select {
		case <-l.dead:
			return
		case <-m.stop:
			return
		case <-t.C:
			if err := l.writeFrame(laneControl, 0, []byte{hbPing}); err != nil {
				return // writeFrame already failed the link
			}
		}
	}
}

// link returns the current live link to peer, or nil.
func (m *Mesh) link(peer int) *link {
	l := m.links[peer].Load()
	if l == nil || l.isDead() {
		return nil
	}
	return l
}

// LinkUp reports whether the physical link to peer is currently live.
func (m *Mesh) LinkUp(peer int) bool { return m.link(peer) != nil }

// BreakLink force-closes the current physical link to peer (chaos hook: a
// mid-round disconnect indistinguishable from a yanked cable). The mesh's
// redial machinery repairs it in the background.
func (m *Mesh) BreakLink(peer int) {
	if l := m.links[peer].Load(); l != nil {
		l.fail()
	}
}

// Stats snapshots the mesh endpoint's per-peer counters.
func (m *Mesh) Stats() MeshStats {
	st := MeshStats{Party: m.id}
	for p := 0; p < m.n; p++ {
		if p == m.id {
			continue
		}
		c := &m.pstats[p]
		ps := MeshPeerStats{
			Peer:            p,
			Up:              m.LinkUp(p),
			Generation:      m.gens[p].Load(),
			BytesSent:       c.bytesSent.Load(),
			MsgsSent:        c.msgsSent.Load(),
			BytesRecv:       c.bytesRecv.Load(),
			MsgsRecv:        c.msgsRecv.Load(),
			Reconnects:      c.reconnects.Load(),
			HeartbeatMisses: c.hbMisses.Load(),
			DialFailures:    c.dialFailures.Load(),
		}
		if ps.Up {
			st.LinksUp++
		}
		st.Reconnects += ps.Reconnects
		st.HeartbeatMisses += ps.HeartbeatMisses
		st.BytesSent += ps.BytesSent
		st.MsgsSent += ps.MsgsSent
		st.Peers = append(st.Peers, ps)
	}
	return st
}

// Lane binds a session lane with an explicit ID (cross-process callers
// derive lane IDs in lockstep, e.g. from a query sequence number). IDs must
// be ≥ 1; lane 0 is the control lane. Reusing a closed lane ID on the same
// link generation delivers no frames (it is tombstoned); across generations
// it starts clean.
func (m *Mesh) Lane(id uint32) *LaneConn {
	if id == laneControl {
		panic("transport: lane 0 is reserved for mesh control")
	}
	return &LaneConn{m: m, lane: id, sendSeq: make([]laneSeq, m.n)}
}

// OpenLane binds a fresh auto-numbered session lane (single-process use;
// IDs from an endpoint-local counter).
func (m *Mesh) OpenLane() *LaneConn { return m.Lane(m.laneCtr.Add(1)) }

// Close tears the mesh down: all links fail, lane waiters wake with
// ErrPeerDown, background goroutines exit.
func (m *Mesh) Close() error {
	m.stopO.Do(func() {
		close(m.stop)
		if m.ln != nil {
			m.ln.Close()
		}
		for p := range m.links {
			if l := m.links[p].Load(); l != nil {
				l.fail()
			}
		}
	})
	m.wg.Wait()
	return nil
}

// laneSeq tracks the outbound sequence toward one peer, reset per link
// generation (the receiver's expectations are per-generation too).
type laneSeq struct {
	gen uint64
	seq uint32
}

// LaneConn is one multiplexed session lane over a Mesh: a full Conn
// (Party/N/Send/Recv/Close) whose frames share the P−1 physical links with
// every other lane. Like every Conn it is driven by one goroutine at a
// time. Operations fail fast with a wrapped ErrPeerDown when the link to
// the addressed peer is down; a lane handle remains usable across link
// generations (sequence numbering restarts with each generation), so
// long-lived rendezvous lanes can simply retry after reconnection.
type LaneConn struct {
	m       *Mesh
	lane    uint32
	sendSeq []laneSeq
	closed  atomic.Bool

	timeoutNs atomic.Int64 // per-lane Recv bound override (0 = mesh default)
}

func (c *LaneConn) Party() int { return c.m.id }
func (c *LaneConn) N() int     { return c.m.n }

// ID returns the lane's mux ID.
func (c *LaneConn) ID() uint32 { return c.lane }

// SetRoundTimeout overrides the mesh-wide Recv bound for this lane.
func (c *LaneConn) SetRoundTimeout(d time.Duration) { c.timeoutNs.Store(int64(d)) }

func (c *LaneConn) recvTimeout() time.Duration {
	if d := c.timeoutNs.Load(); d != 0 {
		return time.Duration(d)
	}
	return time.Duration(c.m.roundTimeoutNs.Load())
}

// Send transmits one frame to party `to` over the shared link.
func (c *LaneConn) Send(to int, data []byte) error {
	if c.closed.Load() {
		return fmt.Errorf("transport: send on lane %d: %w", c.lane, ErrLaneClosed)
	}
	if to < 0 || to >= c.m.n || to == c.m.id {
		return fmt.Errorf("transport: invalid destination %d", to)
	}
	l := c.m.link(to)
	if l == nil {
		return fmt.Errorf("transport: send to party %d (lane %d): %w", to, c.lane, ErrPeerDown)
	}
	st := &c.sendSeq[to]
	if st.gen != l.gen {
		st.gen, st.seq = l.gen, 0
	}
	seq := st.seq
	if err := l.writeFrame(c.lane, seq, data); err != nil {
		return err
	}
	st.seq++
	return nil
}

// Recv blocks for one frame from party `from` on this lane, bounded by the
// lane (or mesh) round timeout. Link death during the wait fails the
// receive immediately with a wrapped ErrPeerDown.
func (c *LaneConn) Recv(from int) ([]byte, error) {
	if c.closed.Load() {
		return nil, fmt.Errorf("transport: recv on lane %d: %w", c.lane, ErrLaneClosed)
	}
	if from < 0 || from >= c.m.n || from == c.m.id {
		return nil, fmt.Errorf("transport: invalid source %d", from)
	}
	l := c.m.link(from)
	if l == nil {
		return nil, fmt.Errorf("transport: recv from party %d (lane %d): %w", from, c.lane, ErrPeerDown)
	}
	ls := l.laneFor(c.lane)
	if ls == nil {
		return nil, fmt.Errorf("transport: recv from party %d: %w", from, ErrLaneClosed)
	}
	// Fast path: a frame is already queued.
	select {
	case f := <-ls.q:
		return f.data, nil
	default:
	}
	var timer *time.Timer
	var timeoutC <-chan time.Time
	if d := c.recvTimeout(); d > 0 {
		timer = time.NewTimer(d)
		defer timer.Stop()
		timeoutC = timer.C
	}
	select {
	case f := <-ls.q:
		return f.data, nil
	case <-l.dead:
		return nil, fmt.Errorf("transport: recv from party %d (lane %d, link gen %d): %w", from, c.lane, l.gen, ErrPeerDown)
	case <-timeoutC:
		return nil, fmt.Errorf("transport: recv from party %d (lane %d): %w", from, c.lane, ErrRoundTimeout)
	}
}

// Close tombstones the lane on every live link; late frames for it are
// discarded.
func (c *LaneConn) Close() error {
	if !c.closed.CompareAndSwap(false, true) {
		return nil
	}
	for p := 0; p < c.m.n; p++ {
		if p == c.m.id {
			continue
		}
		if l := c.m.links[p].Load(); l != nil {
			l.closeLane(c.lane)
		}
	}
	return nil
}

// Rebind atomically moves the lane handle onto a fresh lane ID: the old
// lane is tombstoned everywhere (discarding any stale in-flight frames) and
// sequence tracking restarts. The MPC engine uses this as the
// drain-between-retries primitive — a replayed protocol round must never
// read frames of the aborted attempt. The caller must not have concurrent
// operations in flight on the lane.
func (c *LaneConn) Rebind(newLane uint32) {
	for p := 0; p < c.m.n; p++ {
		if p == c.m.id {
			continue
		}
		if l := c.m.links[p].Load(); l != nil {
			l.closeLane(c.lane)
		}
	}
	c.lane = newLane
	for i := range c.sendSeq {
		c.sendSeq[i] = laneSeq{}
	}
	c.closed.Store(false)
}
