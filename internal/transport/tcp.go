package transport

import (
	"bufio"
	"crypto/tls"
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// tcpPeerCounters holds one peer's traffic counters. Atomics, not a shared
// mutex: Stats() is scraped concurrently with Send/Recv (metrics handlers,
// bench reporters) and must never race or contend with the data path.
type tcpPeerCounters struct {
	bytesSent, msgsSent atomic.Int64
	bytesRecv, msgsRecv atomic.Int64
}

// TCPPeerStats is the per-peer traffic breakdown of one TCPConn endpoint.
type TCPPeerStats struct {
	Peer      int
	BytesSent int64
	MsgsSent  int64
	BytesRecv int64
	MsgsRecv  int64
}

// TCPConn is a party endpoint over a real TCP mesh: one socket per peer pair,
// length-prefixed frames. It satisfies Conn.
type TCPConn struct {
	id    int
	n     int
	peers []net.Conn // peers[j] is the socket to party j (nil at j==id)
	rds   []*bufio.Reader
	wmu   []sync.Mutex
	stats []tcpPeerCounters

	opTimeoutNs atomic.Int64 // per-operation deadline budget (0 = none)
}

// DialMesh establishes a full plaintext TCP mesh among n parties; see
// DialMeshTLS for the pairing protocol and failure semantics.
func DialMesh(id, n int, addrs []string, timeout time.Duration) (*TCPConn, error) {
	return DialMeshTLS(id, n, addrs, timeout, nil)
}

// DialMeshTLS establishes a full TCP mesh among n parties, with mutual-auth
// TLS on every link when tc is enabled (nil or zero tc = plaintext).
// addrs[i] is the listen address of party i (e.g. "127.0.0.1:9001"). Party i
// accepts connections from all j > i and dials all j < i; a 4-byte hello
// carrying the dialer's party ID pairs sockets to parties (sent inside the
// TLS channel when enabled). All parties must call this concurrently. The
// timeout bounds the whole mesh setup, including TLS handshakes and every
// hello read and write.
//
// On any setup failure both setup goroutines are cancelled and joined before
// any established socket is closed, so a half-built mesh never races its own
// teardown.
func DialMeshTLS(id, n int, addrs []string, timeout time.Duration, tc *TLSConfig) (*TCPConn, error) {
	if len(addrs) != n {
		return nil, fmt.Errorf("transport: %d addrs for %d parties", len(addrs), n)
	}
	if id < 0 || id >= n {
		return nil, fmt.Errorf("transport: party %d out of range [0,%d)", id, n)
	}
	var srvTLS, cliTLS *tls.Config
	if tc.Enabled() {
		var err error
		if srvTLS, err = tc.ServerTLS(); err != nil {
			return nil, err
		}
		if cliTLS, err = tc.ClientTLS(); err != nil {
			return nil, err
		}
	}
	c := &TCPConn{
		id:    id,
		n:     n,
		peers: make([]net.Conn, n),
		rds:   make([]*bufio.Reader, n),
		wmu:   make([]sync.Mutex, n),
		stats: make([]tcpPeerCounters, n),
	}
	deadline := time.Now().Add(timeout)

	var ln net.Listener
	if id < n-1 { // parties that accept at least one connection
		var err error
		ln, err = net.Listen("tcp", addrs[id])
		if err != nil {
			return nil, fmt.Errorf("transport: listen %s: %w", addrs[id], err)
		}
		defer ln.Close()
	}

	// stop cancels the side that is still running when the other side fails:
	// closing the listener unblocks a pending Accept, and the dial retry loop
	// polls the channel. Hello reads and writes are already bounded by the
	// setup deadline, so a cancelled goroutine exits promptly either way.
	stop := make(chan struct{})
	var stopOnce sync.Once
	cancel := func() {
		stopOnce.Do(func() {
			close(stop)
			if ln != nil {
				ln.Close()
			}
		})
	}

	errc := make(chan error, 2)
	go func() { // accept from higher-numbered parties
		need := n - 1 - id
		if need == 0 {
			errc <- nil
			return
		}
		for i := 0; i < need; i++ {
			if tl, ok := ln.(*net.TCPListener); ok {
				tl.SetDeadline(deadline)
			}
			conn, err := ln.Accept()
			if err != nil {
				errc <- fmt.Errorf("transport: accept: %w", err)
				return
			}
			if srvTLS != nil {
				tconn := tls.Server(conn, srvTLS)
				tconn.SetDeadline(deadline)
				if err := tconn.Handshake(); err != nil {
					tconn.Close()
					errc <- fmt.Errorf("transport: TLS accept: %w", err)
					return
				}
				tconn.SetDeadline(time.Time{})
				conn = tconn
			}
			conn.SetReadDeadline(deadline)
			var hello [4]byte
			if _, err := io.ReadFull(conn, hello[:]); err != nil {
				conn.Close()
				errc <- fmt.Errorf("transport: hello: %w", err)
				return
			}
			conn.SetReadDeadline(time.Time{})
			peer := int(binary.LittleEndian.Uint32(hello[:]))
			if peer <= id || peer >= n || c.peers[peer] != nil {
				conn.Close()
				errc <- fmt.Errorf("transport: bad hello from party %d", peer)
				return
			}
			c.peers[peer] = conn
			c.rds[peer] = bufio.NewReader(conn)
		}
		errc <- nil
	}()
	go func() { // dial lower-numbered parties
		for j := 0; j < id; j++ {
			var conn net.Conn
			var err error
			for {
				select {
				case <-stop:
					errc <- fmt.Errorf("transport: dial %s: mesh setup cancelled", addrs[j])
					return
				default:
				}
				d := net.Dialer{Deadline: deadline}
				conn, err = d.Dial("tcp", addrs[j])
				if err == nil {
					break
				}
				if time.Now().After(deadline) {
					errc <- fmt.Errorf("transport: dial %s: %w", addrs[j], err)
					return
				}
				time.Sleep(10 * time.Millisecond)
			}
			if cliTLS != nil {
				tconn := tls.Client(conn, cliTLS)
				tconn.SetDeadline(deadline)
				if err := tconn.Handshake(); err != nil {
					tconn.Close()
					errc <- fmt.Errorf("transport: TLS dial %s: %w", addrs[j], err)
					return
				}
				tconn.SetDeadline(time.Time{})
				conn = tconn
			}
			var hello [4]byte
			binary.LittleEndian.PutUint32(hello[:], uint32(id))
			conn.SetWriteDeadline(deadline)
			if _, err := conn.Write(hello[:]); err != nil {
				conn.Close()
				errc <- fmt.Errorf("transport: hello write: %w", err)
				return
			}
			conn.SetWriteDeadline(time.Time{})
			c.peers[j] = conn
			c.rds[j] = bufio.NewReader(conn)
		}
		errc <- nil
	}()

	// Join BOTH goroutines before touching any socket: the first failure
	// cancels the surviving goroutine, and only after it has exited is the
	// half-built mesh torn down. Closing earlier would race the goroutines'
	// writes to c.peers/c.rds.
	var firstErr error
	for i := 0; i < 2; i++ {
		if err := <-errc; err != nil && firstErr == nil {
			firstErr = err
			cancel()
		}
	}
	if firstErr != nil {
		c.Close()
		return nil, firstErr
	}
	return c, nil
}

func (c *TCPConn) Party() int { return c.id }
func (c *TCPConn) N() int     { return c.n }

// SetRoundTimeout bounds every subsequent Send and Recv on this endpoint
// (0 disables the bound). An expired deadline surfaces as a wrapped
// ErrRoundTimeout, so a slow or dead peer degrades a protocol round into a
// clean error instead of blocking the party forever.
func (c *TCPConn) SetRoundTimeout(d time.Duration) {
	c.opTimeoutNs.Store(int64(d))
}

// opError normalizes a socket error: deadline expiries additionally wrap
// ErrRoundTimeout so callers can classify without poking at net internals.
func opError(verb string, peer int, err error) error {
	if ne, ok := err.(net.Error); ok && ne.Timeout() {
		return fmt.Errorf("transport: %s party %d: %w: %w", verb, peer, ErrRoundTimeout, err)
	}
	return fmt.Errorf("transport: %s party %d: %w", verb, peer, err)
}

// Send writes a length-prefixed frame to party `to`.
func (c *TCPConn) Send(to int, data []byte) error {
	if to < 0 || to >= c.n || to == c.id || c.peers[to] == nil {
		return fmt.Errorf("transport: invalid destination %d", to)
	}
	c.wmu[to].Lock()
	defer c.wmu[to].Unlock()
	if d := time.Duration(c.opTimeoutNs.Load()); d > 0 {
		c.peers[to].SetWriteDeadline(time.Now().Add(d))
	}
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(data)))
	if _, err := c.peers[to].Write(hdr[:]); err != nil {
		return opError("send to", to, err)
	}
	if _, err := c.peers[to].Write(data); err != nil {
		return opError("send to", to, err)
	}
	c.stats[to].bytesSent.Add(int64(len(data)))
	c.stats[to].msgsSent.Add(1)
	return nil
}

// Recv reads one frame from party `from`.
func (c *TCPConn) Recv(from int) ([]byte, error) {
	if from < 0 || from >= c.n || from == c.id || c.rds[from] == nil {
		return nil, fmt.Errorf("transport: invalid source %d", from)
	}
	if d := time.Duration(c.opTimeoutNs.Load()); d > 0 {
		c.peers[from].SetReadDeadline(time.Now().Add(d))
	}
	var hdr [4]byte
	if _, err := io.ReadFull(c.rds[from], hdr[:]); err != nil {
		return nil, opError("recv from", from, err)
	}
	size := binary.LittleEndian.Uint32(hdr[:])
	if size > 1<<24 {
		return nil, fmt.Errorf("transport: oversized frame %d", size)
	}
	data := make([]byte, size)
	if _, err := io.ReadFull(c.rds[from], data); err != nil {
		return nil, opError("recv from", from, err)
	}
	c.stats[from].bytesRecv.Add(int64(size))
	c.stats[from].msgsRecv.Add(1)
	return data, nil
}

// Stats reports bytes/messages sent by this endpoint. Counters are atomic:
// safe to scrape concurrently with in-flight Send/Recv.
func (c *TCPConn) Stats() Stats {
	var s Stats
	for i := range c.stats {
		s.Bytes += c.stats[i].bytesSent.Load()
		s.Messages += c.stats[i].msgsSent.Load()
	}
	return s
}

// PeerStats reports the per-peer traffic breakdown (both directions).
func (c *TCPConn) PeerStats() []TCPPeerStats {
	out := make([]TCPPeerStats, 0, c.n-1)
	for p := 0; p < c.n; p++ {
		if p == c.id {
			continue
		}
		out = append(out, TCPPeerStats{
			Peer:      p,
			BytesSent: c.stats[p].bytesSent.Load(),
			MsgsSent:  c.stats[p].msgsSent.Load(),
			BytesRecv: c.stats[p].bytesRecv.Load(),
			MsgsRecv:  c.stats[p].msgsRecv.Load(),
		})
	}
	return out
}

// Close shuts down all peer sockets.
func (c *TCPConn) Close() error {
	var first error
	for _, p := range c.peers {
		if p != nil {
			if err := p.Close(); err != nil && first == nil {
				first = err
			}
		}
	}
	return first
}
