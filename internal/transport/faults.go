package transport

import (
	"fmt"
	"math/rand/v2"
	"sync"
	"time"
)

// FaultKind names one injectable transport fault.
type FaultKind int

const (
	// FaultNone passes the operation through untouched.
	FaultNone FaultKind = iota
	// FaultDelay sleeps Plan.Delay before performing the operation — a slow
	// peer or congested link.
	FaultDelay
	// FaultDrop silently swallows a Send: the peer never sees the frame and
	// must rely on its round timeout. Ignored on Recv.
	FaultDrop
	// FaultDuplicate sends the frame twice, desynchronizing the FIFO stream —
	// a retransmitting middlebox. Ignored on Recv.
	FaultDuplicate
	// FaultError fails the operation with a wrapped ErrTransient (the kind of
	// failure a bounded retry should clear).
	FaultError
	// FaultClose closes the underlying endpoint mid-round and fails the
	// operation — a crashed party. Subsequent operations fail with the inner
	// endpoint's closed error.
	FaultClose
)

func (k FaultKind) String() string {
	switch k {
	case FaultNone:
		return "none"
	case FaultDelay:
		return "delay"
	case FaultDrop:
		return "drop"
	case FaultDuplicate:
		return "duplicate"
	case FaultError:
		return "error"
	case FaultClose:
		return "close"
	}
	return fmt.Sprintf("FaultKind(%d)", int(k))
}

// FaultPlan is a seeded schedule of faults for one endpoint. When Script is
// non-nil, operation i (counting Sends and Recvs together, after skipping the
// first After operations) suffers Script[i] and operations past the end pass
// through — fully deterministic, for targeted regression tests. Otherwise
// each operation independently draws one fault from the probabilities, using
// a PRNG seeded by Seed — deterministic chaos for randomized soak tests.
type FaultPlan struct {
	Seed   uint64
	After  int         // clean operations before any fault is considered
	Script []FaultKind // explicit per-operation schedule (overrides probabilities)

	// Per-operation probabilities, each in [0,1]; evaluated in this order.
	PDelay, PDrop, PDuplicate, PError, PClose float64

	Delay time.Duration // sleep applied by FaultDelay (default 1ms)
}

// FaultConn wraps a Conn with fault injection governed by a FaultPlan. It is
// the chaos-testing harness for the real-network path: protocol code runs
// unmodified while the wrapper drops, delays, duplicates, errors or kills the
// link on a reproducible schedule.
//
// Like any Conn, a FaultConn is driven by one goroutine at a time; the
// internal mutex only makes the injection log safely readable from the test
// goroutine after the protocol run.
type FaultConn struct {
	inner Conn
	plan  FaultPlan
	rng   *rand.Rand

	mu       sync.Mutex
	ops      int
	injected []FaultKind // log of non-FaultNone injections, in order
}

// NewFaultConn wraps inner with the given plan.
func NewFaultConn(inner Conn, plan FaultPlan) *FaultConn {
	if plan.Delay == 0 {
		plan.Delay = time.Millisecond
	}
	return &FaultConn{
		inner: inner,
		plan:  plan,
		rng:   rand.New(rand.NewPCG(plan.Seed, 0x6b796368616f73)),
	}
}

// next draws the fault for the current operation and advances the schedule.
func (f *FaultConn) next() FaultKind {
	f.mu.Lock()
	defer f.mu.Unlock()
	op := f.ops
	f.ops++
	if op < f.plan.After {
		return FaultNone
	}
	var k FaultKind
	if f.plan.Script != nil {
		if i := op - f.plan.After; i < len(f.plan.Script) {
			k = f.plan.Script[i]
		}
	} else {
		r := f.rng.Float64()
		switch {
		case r < f.plan.PDelay:
			k = FaultDelay
		case r < f.plan.PDelay+f.plan.PDrop:
			k = FaultDrop
		case r < f.plan.PDelay+f.plan.PDrop+f.plan.PDuplicate:
			k = FaultDuplicate
		case r < f.plan.PDelay+f.plan.PDrop+f.plan.PDuplicate+f.plan.PError:
			k = FaultError
		case r < f.plan.PDelay+f.plan.PDrop+f.plan.PDuplicate+f.plan.PError+f.plan.PClose:
			k = FaultClose
		}
	}
	if k != FaultNone {
		f.injected = append(f.injected, k)
	}
	return k
}

// Injected returns the log of injected faults so far, in order.
func (f *FaultConn) Injected() []FaultKind {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]FaultKind, len(f.injected))
	copy(out, f.injected)
	return out
}

// Ops returns how many operations (Sends + Recvs) have passed through.
func (f *FaultConn) Ops() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.ops
}

func (f *FaultConn) Party() int { return f.inner.Party() }
func (f *FaultConn) N() int     { return f.inner.N() }

// Send injects the scheduled fault, then forwards to the inner endpoint.
func (f *FaultConn) Send(to int, data []byte) error {
	switch f.next() {
	case FaultDelay:
		time.Sleep(f.plan.Delay)
	case FaultDrop:
		return nil // swallowed: the peer must time the round out
	case FaultDuplicate:
		if err := f.inner.Send(to, data); err != nil {
			return err
		}
	case FaultError:
		return fmt.Errorf("transport: injected send fault to %d: %w", to, ErrTransient)
	case FaultClose:
		f.inner.Close()
		return fmt.Errorf("transport: injected close during send to %d: %w", to, ErrClosed)
	}
	return f.inner.Send(to, data)
}

// Recv injects the scheduled fault, then forwards to the inner endpoint.
// Drop and duplicate are send-side faults and pass through.
func (f *FaultConn) Recv(from int) ([]byte, error) {
	switch f.next() {
	case FaultDelay:
		time.Sleep(f.plan.Delay)
	case FaultError:
		return nil, fmt.Errorf("transport: injected recv fault from %d: %w", from, ErrTransient)
	case FaultClose:
		f.inner.Close()
		return nil, fmt.Errorf("transport: injected close during recv from %d: %w", from, ErrClosed)
	}
	return f.inner.Recv(from)
}

// Close closes the inner endpoint.
func (f *FaultConn) Close() error { return f.inner.Close() }
