// Package cache is the serving tier's traffic-version-keyed result cache: a
// sharded LRU with request coalescing. Repeated-OD and kNN queries are highly
// cacheable between traffic updates — every avoided recomputation is an MPC
// query (and therefore a whole Fed-SAC round budget) that never runs — and
// invalidation is trivial because the federation already counts silo-weight
// mutations: callers fold the traffic version into the key, so a traffic
// update simply makes every older entry unreachable. Unreachable entries age
// out of the LRU; they are never served.
//
// The coalescing (singleflight) path is what survives a thundering herd: any
// number of concurrent requests for the same key run ONE miss function — one
// MPC query — and share its result. Waiters consume no session, no semaphore
// slot and no admission ticket while they wait.
//
// Values are shared between all readers of an entry and must be treated as
// immutable by callers.
package cache

import (
	"sync"
)

// Outcome classifies how one Do call was served.
type Outcome int

const (
	// Miss: this call ran the miss function itself (the flight leader).
	Miss Outcome = iota
	// Hit: served from a stored entry.
	Hit
	// Coalesced: waited on a concurrent leader's in-flight computation and
	// shared its result without running anything.
	Coalesced
)

// String renders the outcome for responses and logs.
func (o Outcome) String() string {
	switch o {
	case Hit:
		return "hit"
	case Coalesced:
		return "coalesced"
	default:
		return "miss"
	}
}

// Stats is a point-in-time aggregate of the cache's counters.
type Stats struct {
	Hits      uint64
	Misses    uint64
	Coalesced uint64
	// EvictedCapacity counts LRU evictions of entries still at the current
	// traffic version (genuine capacity pressure); EvictedStale counts
	// evictions of entries whose version a traffic update had already made
	// unreachable (bookkeeping, not capacity pressure).
	EvictedCapacity uint64
	EvictedStale    uint64
	Entries         int
}

// numShards keeps lock contention negligible at serving concurrency; a power
// of two so the shard pick is a mask.
const numShards = 16

// Cache is a sharded LRU with per-key request coalescing. The zero value is
// not usable; call New.
type Cache struct {
	shards [numShards]shard
	perCap int // per-shard entry capacity
}

// entry is one cached value on a shard's intrusive LRU list.
type entry struct {
	key        string
	val        any
	ver        uint64 // traffic version the value was computed at
	prev, next *entry
}

// flight is one in-progress miss computation; waiters block on done.
type flight struct {
	done chan struct{}
	val  any
	ver  uint64
	err  error
}

type shard struct {
	mu       sync.Mutex
	m        map[string]*entry
	inflight map[string]*flight
	// LRU list: head is most recently used, tail is the eviction victim.
	head, tail *entry

	hits, misses, coalesced, evCap, evStale uint64
}

// New builds a cache holding at most capacity entries (rounded up to a
// multiple of the shard count; capacity < 1 is clamped to the shard count).
func New(capacity int) *Cache {
	perCap := (capacity + numShards - 1) / numShards
	if perCap < 1 {
		perCap = 1
	}
	c := &Cache{perCap: perCap}
	for i := range c.shards {
		c.shards[i].m = make(map[string]*entry)
		c.shards[i].inflight = make(map[string]*flight)
	}
	return c
}

// shardFor picks a shard by FNV-1a of the key.
func (c *Cache) shardFor(key string) *shard {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= prime64
	}
	return &c.shards[h&(numShards-1)]
}

// Do returns the value stored under key, running miss (once, even under
// concurrent callers of the same key) to compute it when absent. cur is the
// caller's current traffic version, used only to classify evictions as
// capacity-driven versus stale; callers MUST also fold the version into the
// key itself — that is what makes invalidation free. The returned version is
// the traffic version the value was actually computed at (>= the keyed
// version: a computation that raced a traffic update observed the newer
// weights, never older ones). Errors are never cached; every waiter of a
// failed flight receives the leader's error.
func (c *Cache) Do(key string, cur uint64, miss func() (any, uint64, error)) (any, uint64, Outcome, error) {
	s := c.shardFor(key)
	s.mu.Lock()
	if e, ok := s.m[key]; ok {
		s.moveToFront(e)
		s.hits++
		s.mu.Unlock()
		return e.val, e.ver, Hit, nil
	}
	if fl, ok := s.inflight[key]; ok {
		s.coalesced++
		s.mu.Unlock()
		<-fl.done
		return fl.val, fl.ver, Coalesced, fl.err
	}
	fl := &flight{done: make(chan struct{})}
	s.inflight[key] = fl
	s.misses++
	s.mu.Unlock()

	fl.val, fl.ver, fl.err = miss()

	s.mu.Lock()
	delete(s.inflight, key)
	if fl.err == nil {
		s.insert(&entry{key: key, val: fl.val, ver: fl.ver}, c.perCap, cur)
	}
	s.mu.Unlock()
	close(fl.done)
	return fl.val, fl.ver, Miss, fl.err
}

// Get is the lock-only fast path: a stored value or nothing, never a wait.
func (c *Cache) Get(key string) (any, uint64, bool) {
	s := c.shardFor(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.m[key]
	if !ok {
		return nil, 0, false
	}
	s.moveToFront(e)
	s.hits++
	return e.val, e.ver, true
}

// insert stores e at the LRU front and evicts from the tail while the shard
// is over capacity; the caller holds s.mu.
func (s *shard) insert(e *entry, perCap int, cur uint64) {
	s.m[e.key] = e
	s.pushFront(e)
	for len(s.m) > perCap {
		victim := s.tail
		s.unlink(victim)
		delete(s.m, victim.key)
		if victim.ver < cur {
			s.evStale++
		} else {
			s.evCap++
		}
	}
}

func (s *shard) pushFront(e *entry) {
	e.prev = nil
	e.next = s.head
	if s.head != nil {
		s.head.prev = e
	}
	s.head = e
	if s.tail == nil {
		s.tail = e
	}
}

func (s *shard) unlink(e *entry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		s.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		s.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

func (s *shard) moveToFront(e *entry) {
	if s.head == e {
		return
	}
	s.unlink(e)
	s.pushFront(e)
}

// Stats aggregates the per-shard counters.
func (c *Cache) Stats() Stats {
	var st Stats
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		st.Hits += s.hits
		st.Misses += s.misses
		st.Coalesced += s.coalesced
		st.EvictedCapacity += s.evCap
		st.EvictedStale += s.evStale
		st.Entries += len(s.m)
		s.mu.Unlock()
	}
	return st
}

// Len returns the number of stored entries.
func (c *Cache) Len() int {
	n := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		n += len(s.m)
		s.mu.Unlock()
	}
	return n
}
