package cache

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

func TestDoMissThenHit(t *testing.T) {
	c := New(64)
	calls := 0
	miss := func() (any, uint64, error) { calls++; return "route", 7, nil }

	v, ver, out, err := c.Do("k", 7, miss)
	if err != nil || v != "route" || ver != 7 || out != Miss {
		t.Fatalf("first call: %v %d %v %v", v, ver, out, err)
	}
	v, ver, out, err = c.Do("k", 7, miss)
	if err != nil || v != "route" || ver != 7 || out != Hit {
		t.Fatalf("second call: %v %d %v %v", v, ver, out, err)
	}
	if calls != 1 {
		t.Fatalf("miss function ran %d times, want 1", calls)
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Entries != 1 {
		t.Fatalf("stats %+v", st)
	}
}

func TestErrorsAreNeverCached(t *testing.T) {
	c := New(8)
	boom := errors.New("boom")
	calls := 0
	_, _, _, err := c.Do("k", 0, func() (any, uint64, error) { calls++; return nil, 0, boom })
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	_, _, out, err := c.Do("k", 0, func() (any, uint64, error) { calls++; return "ok", 1, nil })
	if err != nil || out != Miss {
		t.Fatalf("retry after error: out=%v err=%v", out, err)
	}
	if calls != 2 {
		t.Fatalf("miss ran %d times, want 2 (errors must not stick)", calls)
	}
	if c.Len() != 1 {
		t.Fatalf("len = %d", c.Len())
	}
}

// TestSingleflight proves the thundering-herd guarantee: G concurrent callers
// of one key run the miss function exactly once and all receive its result.
func TestSingleflight(t *testing.T) {
	c := New(64)
	const G = 32
	var running atomic.Int32
	gate := make(chan struct{})
	var calls atomic.Int32
	miss := func() (any, uint64, error) {
		calls.Add(1)
		<-gate // hold every waiter in the coalesced path
		return "v", 3, nil
	}
	var wg sync.WaitGroup
	outcomes := make([]Outcome, G)
	for i := 0; i < G; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			running.Add(1)
			v, ver, out, err := c.Do("hot", 3, miss)
			if err != nil || v != "v" || ver != 3 {
				t.Errorf("goroutine %d: %v %d %v", i, v, ver, err)
			}
			outcomes[i] = out
		}(i)
	}
	// Wait until the leader is inside miss and the rest have piled up, then
	// release. (The pile-up is not strictly guaranteed before gate closes,
	// but calls==1 is guaranteed regardless of interleaving.)
	for running.Load() < G {
	}
	close(gate)
	wg.Wait()
	if calls.Load() != 1 {
		t.Fatalf("miss ran %d times under %d concurrent callers", calls.Load(), G)
	}
	nMiss := 0
	for _, o := range outcomes {
		if o == Miss {
			nMiss++
		}
	}
	if nMiss != 1 {
		t.Fatalf("%d leaders, want exactly 1", nMiss)
	}
}

func TestLRUEvictionAndStaleClassification(t *testing.T) {
	c := New(1) // one entry per shard
	// Two keys in the same shard: insert A, then B with a newer current
	// version — A (version 1 < cur 2) must be evicted as stale.
	var a, b string
	for i := 0; ; i++ {
		k := fmt.Sprintf("k%d", i)
		if c.shardFor(k) == &c.shards[0] {
			if a == "" {
				a = k
			} else {
				b = k
				break
			}
		}
	}
	if _, _, _, err := c.Do(a, 1, func() (any, uint64, error) { return 1, 1, nil }); err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := c.Do(b, 2, func() (any, uint64, error) { return 2, 2, nil }); err != nil {
		t.Fatal(err)
	}
	st := c.Stats()
	if st.EvictedStale != 1 || st.EvictedCapacity != 0 {
		t.Fatalf("evictions: stale=%d capacity=%d, want 1/0", st.EvictedStale, st.EvictedCapacity)
	}
	// A third key at the SAME version as the victim counts as capacity.
	var d string
	for i := 1000; ; i++ {
		k := fmt.Sprintf("k%d", i)
		if c.shardFor(k) == &c.shards[0] && k != a && k != b {
			d = k
			break
		}
	}
	if _, _, _, err := c.Do(d, 2, func() (any, uint64, error) { return 3, 2, nil }); err != nil {
		t.Fatal(err)
	}
	st = c.Stats()
	if st.EvictedCapacity != 1 {
		t.Fatalf("evictions after same-version insert: %+v", st)
	}
}

func TestVersionedKeysCoexist(t *testing.T) {
	c := New(64)
	old, _, _, _ := c.Do("spsp|1|2|v1", 1, func() (any, uint64, error) { return "old", 1, nil })
	nw, _, _, _ := c.Do("spsp|1|2|v2", 2, func() (any, uint64, error) { return "new", 2, nil })
	if old != "old" || nw != "new" {
		t.Fatalf("versioned entries collided: %v %v", old, nw)
	}
	if v, _, ok := c.Get("spsp|1|2|v2"); !ok || v != "new" {
		t.Fatalf("Get: %v %v", v, ok)
	}
}

// TestConcurrentMixedLoad shakes the cache under -race: many goroutines,
// overlapping keys, rolling versions.
func TestConcurrentMixedLoad(t *testing.T) {
	c := New(32)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 400; i++ {
				ver := uint64(i / 40)
				key := fmt.Sprintf("od|%d|%d", i%17, ver)
				v, _, _, err := c.Do(key, ver, func() (any, uint64, error) { return i % 17, ver, nil })
				if err != nil {
					t.Errorf("Do: %v", err)
					return
				}
				if v.(int) != i%17 {
					t.Errorf("key %s returned %v, want %d", key, v, i%17)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	st := c.Stats()
	if st.Hits+st.Misses+st.Coalesced != 8*400 {
		t.Fatalf("accounting: hits+misses+coalesced = %d, want %d", st.Hits+st.Misses+st.Coalesced, 8*400)
	}
}
