// Command fedmesh is the cross-process mesh test harness: it runs one silo
// of the federated query protocol over a real TCP (optionally mTLS) mesh,
// or drives the full chaos scenario by re-executing itself once per silo,
// killing and restarting one of them mid-run while every silo self-injects
// link breaks.
//
// Usage:
//
//	fedmesh -gencerts DIR -silos 3          # write a throwaway mTLS PKI
//	fedmesh -chaos -silos 3 -queries 200    # full chaos run (spawns itself)
//	fedmesh -party 1 -silos 3 -addrs ...    # one silo process (internal)
//
// A chaos run exits non-zero if any query returns an incorrect result or an
// untyped error, if the coordinator dies early, or if no automatic link
// reconnection was observed — the CI mesh-chaos gate.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/soak"
	"repro/internal/transport"
)

func main() {
	var (
		gencerts = flag.String("gencerts", "", "write a throwaway federation PKI (CA + per-silo certs) to this directory and exit")
		chaos    = flag.Bool("chaos", false, "drive the full cross-process chaos scenario (spawns one fedmesh -party process per silo)")
		party    = flag.Int("party", -1, "run as silo N of the mesh (internal: spawned by -chaos)")

		silos    = flag.Int("silos", 3, "number of silo processes")
		queries  = flag.Int("queries", 200, "federated shortest-path queries to drive")
		vertices = flag.Int("vertices", 24, "road-network size (all silos derive it deterministically)")
		seed     = flag.Uint64("seed", 1, "deterministic topology, weights, workload and chaos schedule")

		addrs   = flag.String("addrs", "", "comma-separated silo mesh addresses (internal)")
		certDir = flag.String("cert-dir", "", "PKI directory for mTLS links (empty = plaintext)")
		workDir = flag.String("workdir", "", "chaos: directory for silo logs + generated certs (default: temp dir)")
		noTLS   = flag.Bool("no-tls", false, "chaos: plaintext links instead of generated mTLS certs")
		noKill  = flag.Bool("no-kill", false, "chaos: skip the silo kill+restart")

		roundTimeout = flag.Duration("round-timeout", time.Second, "per-lane MPC round bound")
		heartbeat    = flag.Duration("heartbeat", 100*time.Millisecond, "mesh liveness ping interval")
		chaosBreak   = flag.Duration("chaos-break", 400*time.Millisecond, "per-silo self-injected link-break interval (0 = off)")
		timeout      = flag.Duration("timeout", 5*time.Minute, "chaos: hard wall-clock bound; exceeding it is a hang")
	)
	flag.Parse()

	switch {
	case *gencerts != "":
		if err := os.MkdirAll(*gencerts, 0o700); err != nil {
			fail(err)
		}
		if err := transport.GenerateTestCerts(*gencerts, *silos); err != nil {
			fail(err)
		}
		fmt.Printf("wrote ca.pem + %d silo certs to %s\n", *silos, *gencerts)

	case *party >= 0:
		err := soak.RunMeshParty(soak.MeshPartyConfig{
			Party:        *party,
			Silos:        *silos,
			Addrs:        strings.Split(*addrs, ","),
			CertDir:      *certDir,
			Seed:         *seed,
			Vertices:     *vertices,
			Queries:      *queries,
			RoundTimeout: *roundTimeout,
			Heartbeat:    *heartbeat,
			ChaosBreak:   *chaosBreak,
			Out:          os.Stdout,
			Log:          os.Stderr,
		})
		if err != nil {
			fail(err)
		}

	case *chaos:
		bin, err := os.Executable()
		if err != nil {
			fail(err)
		}
		rep, err := soak.RunMeshChaos(soak.MeshChaosConfig{
			Bin:          bin,
			Silos:        *silos,
			Queries:      *queries,
			Vertices:     *vertices,
			Seed:         *seed,
			WorkDir:      *workDir,
			TLS:          !*noTLS,
			Kill:         !*noKill,
			ChaosBreak:   *chaosBreak,
			RoundTimeout: *roundTimeout,
			Heartbeat:    *heartbeat,
			Timeout:      *timeout,
			Log:          os.Stderr,
		})
		if rep != nil {
			fmt.Printf("chaos: %d/%d queries answered (%d correct, %d unreachable, %d typed failures), "+
				"%d kill / %d restart, %d reconnects, %d heartbeat misses, %dms\n",
				rep.Results, rep.Queries, rep.Succeeded, rep.Unreachable, rep.FailedTyped,
				rep.Kills, rep.Restarts, rep.Reconnects, rep.HeartbeatMiss, rep.WallMs)
		}
		if err != nil {
			fail(err)
		}
		fmt.Println("chaos: clean — every query correct or failed typed, mesh self-healed")

	default:
		fmt.Fprintln(os.Stderr, "fedmesh: pick a mode: -chaos, -party N, or -gencerts DIR")
		flag.Usage()
		os.Exit(2)
	}
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "fedmesh: %v\n", err)
	os.Exit(1)
}
