package main

import (
	"os"
	"os/exec"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/soak"
)

// buildFedmesh compiles the harness binary once per test run.
func buildFedmesh(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "fedmesh")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	cmd.Env = os.Environ()
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go build fedmesh: %v\n%s", err, out)
	}
	return bin
}

// TestMeshChaosSmall is the scaled-down cross-process chaos scenario: three
// real silo processes over TCP+mTLS, queries racing self-injected link
// breaks and one kill+restart of the highest silo. Every query must either
// match plaintext Dijkstra or fail with a typed error, and at least one
// automatic reconnection must show up in the coordinator's counters. The CI
// mesh-chaos job runs the full-size version of exactly this via
// `fedmesh -chaos`.
func TestMeshChaosSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("cross-process chaos run")
	}
	bin := buildFedmesh(t)
	rep, err := soak.RunMeshChaos(soak.MeshChaosConfig{
		Bin:      bin,
		Silos:    3,
		Queries:  24,
		Vertices: 16,
		Seed:     7,
		WorkDir:  t.TempDir(),
		TLS:      true,
		Kill:     true,
		// Break links often relative to the ~24-query stream so reconnection
		// is exercised even on a fast machine. The tight round timeout keeps
		// third-party stalls (a break between the OTHER two silos) cheap.
		ChaosBreak:   200 * time.Millisecond,
		RoundTimeout: time.Second,
		Timeout:      2 * time.Minute,
	})
	if err != nil {
		t.Fatalf("chaos run: %v (report: %+v)", err, rep)
	}
	if rep.Results != rep.Queries {
		t.Fatalf("coordinator answered %d/%d queries", rep.Results, rep.Queries)
	}
	if rep.Succeeded == 0 {
		t.Fatalf("no query succeeded under chaos: %+v", rep)
	}
	if rep.Kills != 1 || rep.Restarts != 1 {
		t.Fatalf("kill/restart not exercised: %+v", rep)
	}
	if rep.Reconnects == 0 {
		t.Fatalf("no automatic reconnection observed: %+v", rep)
	}
	t.Logf("chaos: %d ok, %d unreachable, %d typed failures %v, %d reconnects, %dms",
		rep.Succeeded, rep.Unreachable, rep.FailedTyped, rep.FailureKinds, rep.Reconnects, rep.WallMs)
}

// TestGencerts covers the standalone PKI mode the CI job and the README
// quickstart use.
func TestGencerts(t *testing.T) {
	if testing.Short() {
		t.Skip("builds the binary")
	}
	bin := buildFedmesh(t)
	dir := filepath.Join(t.TempDir(), "pki")
	out, err := exec.Command(bin, "-gencerts", dir, "-silos", "4").CombinedOutput()
	if err != nil {
		t.Fatalf("gencerts: %v\n%s", err, out)
	}
	for _, f := range []string{"ca.pem", "silo0.pem", "silo0.key", "silo3.pem", "silo3.key"} {
		if _, err := os.Stat(filepath.Join(dir, f)); err != nil {
			t.Fatalf("missing %s: %v", f, err)
		}
	}
}
