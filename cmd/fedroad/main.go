// Command fedroad answers ad-hoc federated shortest-path queries on a
// generated or loaded road network, printing the route and the secure
// computation cost.
//
// Usage:
//
//	fedroad [flags]
//
// Examples:
//
//	fedroad -n 2000 -s 3 -t 1500                # SPSP on a generated network
//	fedroad -dataset BJ-S -s 10 -t 7000         # SPSP on a named dataset
//	fedroad -n 2000 -s 3 -knn 8                 # kNN from vertex 3
//	fedroad -graph net.gr -s 0 -t 99 -protocol  # full MPC over a file graph
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	fedroad "repro"
	"repro/internal/graph"
	"repro/internal/traffic"
)

func main() {
	var (
		dataset   = flag.String("dataset", "", "named dataset (CAL-S, BJ-S, FLA-S)")
		n         = flag.Int("n", 1000, "generated network size when no dataset/graph is given")
		graphFile = flag.String("graph", "", "load a road network from a file (binary snapshot or DIMACS-like text)")
		silos     = flag.Int("silos", 3, "number of data silos")
		level     = flag.String("level", "moderate", "congestion level: free|slight|moderate|heavy")
		seed      = flag.Uint64("seed", 1, "random seed")
		src       = flag.Int("s", 0, "source vertex")
		dst       = flag.Int("t", -1, "target vertex (SPSP)")
		knn       = flag.Int("knn", 0, "k nearest neighbors from -s instead of SPSP")
		estimator = flag.String("estimator", "fed-amps", "lower bound: none|fed-alt|fed-alt-max|fed-amps")
		queue     = flag.String("queue", "tm-tree", "priority queue: heap|l-heap|tm-tree")
		noIndex   = flag.Bool("no-index", false, "skip the federated shortcut index (Naive-Dijk)")
		protocol  = flag.Bool("protocol", false, "run the full MPC protocol per comparison")

		roundTimeout = flag.Duration("round-timeout", 0, "per-frame MPC round timeout; a slow/dead silo fails the query instead of hanging it (protocol mode; 0 = no timeout)")
		sacRetries   = flag.Int("sac-retries", 0, "bounded retries of a Fed-SAC round after a transient transport failure")
		sacBackoff   = flag.Duration("sac-retry-backoff", 10*time.Millisecond, "backoff before the first Fed-SAC retry, doubled per retry")

		meshTCP = flag.Bool("mesh-tcp", false, "run MPC rounds over a loopback TCP mesh with multiplexed lanes and automatic redial (requires -protocol)")
		tlsCert = flag.String("tls-cert", "", "silo certificate PEM for mutual-auth TLS on mesh links (requires -mesh-tcp, -tls-key and -tls-ca)")
		tlsKey  = flag.String("tls-key", "", "silo private key PEM for mesh mTLS")
		tlsCA   = flag.String("tls-ca", "", "federation CA PEM both directions of every mesh link verify against")
	)
	flag.Parse()

	lvl, err := parseLevel(*level)
	fail(err)

	var g *fedroad.Graph
	var w0 fedroad.Weights
	switch {
	case *graphFile != "":
		g, w0, err = fedroad.LoadGraphFile(*graphFile)
		fail(err)
		if w0 == nil { // weightless snapshot: unit weights
			w0 = make(fedroad.Weights, g.NumArcs())
			for a := range w0 {
				w0[a] = 1
			}
		}
	case *dataset != "":
		// GenerateDataset panics on unknown names; fail with a clean error
		// for a user-supplied -dataset instead.
		if _, ok := graph.FindDataset(*dataset); !ok {
			fail(fmt.Errorf("unknown dataset %q (available: CAL-S, BJ-S, FLA-S)", *dataset))
		}
		g, w0, _ = graph.GenerateDataset(*dataset)
	default:
		g, w0 = fedroad.GenerateRoadNetwork(*n, *seed)
	}
	fmt.Printf("road network: %d vertices, %d arcs\n", g.NumVertices(), g.NumArcs())

	cfg := fedroad.Config{
		Seed:            *seed,
		RoundTimeout:    *roundTimeout,
		SACRetries:      *sacRetries,
		SACRetryBackoff: *sacBackoff,
	}
	if *protocol {
		cfg.Mode = fedroad.ModeProtocol
	}
	if *meshTCP {
		if !*protocol {
			fail(fmt.Errorf("-mesh-tcp requires -protocol (ideal mode exchanges no messages)"))
		}
		cfg.MeshTCP = true
	}
	if *tlsCert != "" || *tlsKey != "" || *tlsCA != "" {
		cfg.MeshTLS = &fedroad.TLSConfig{CertFile: *tlsCert, KeyFile: *tlsKey, CAFile: *tlsCA}
	}
	silosW := fedroad.SimulateCongestion(w0, *silos, lvl, *seed+1)
	fed, err := fedroad.New(g, w0, silosW, cfg)
	fail(err)
	defer fed.Close()

	if !*noIndex {
		start := time.Now()
		fail(fed.BuildIndex())
		st := fed.IndexStats()
		fmt.Printf("federated shortcut index: %d shortcuts, %d Fed-SACs, built in %v\n",
			st.Shortcuts, st.SAC.Compares, time.Since(start).Round(time.Millisecond))
	}

	opt := fedroad.QueryOptions{
		Estimator: fedroad.Estimator(*estimator),
		Queue:     fedroad.QueueKind(*queue),
		NoIndex:   *noIndex,
	}

	if *knn > 0 {
		// kNN runs Fed-SSSP toward no fixed target: estimator options don't
		// apply (the library rejects them), so pass only the queue choice.
		// The -estimator flag default would otherwise turn every kNN query
		// into a validation error.
		knnOpt := fedroad.QueryOptions{Queue: opt.Queue}
		routes, stats, err := fed.NearestNeighbors(fedroad.Vertex(*src), *knn, knnOpt)
		fail(err)
		fmt.Printf("\n%d nearest vertices to %d on the joint road network:\n", *knn, *src)
		for i, r := range routes {
			fmt.Printf("  %2d. vertex %-6d joint cost %s  path %s\n",
				i+1, r.Path[len(r.Path)-1], fmtJoint(fed, r), fmtPath(r.Path))
		}
		printStats(stats)
		return
	}

	if *dst < 0 {
		*dst = g.NumVertices() - 1
	}
	route, stats, err := fed.ShortestPath(fedroad.Vertex(*src), fedroad.Vertex(*dst), opt)
	fail(err)
	if !route.Found {
		fmt.Printf("no route from %d to %d\n", *src, *dst)
		return
	}
	fmt.Printf("\njoint shortest path %d -> %d (%d segments), joint cost %s\n",
		*src, *dst, len(route.Path)-1, fmtJoint(fed, route))
	fmt.Printf("path: %s\n", fmtPath(route.Path))
	printStats(stats)
}

func parseLevel(s string) (traffic.Level, error) {
	switch strings.ToLower(s) {
	case "free":
		return traffic.Free, nil
	case "slight":
		return traffic.Slight, nil
	case "moderate":
		return traffic.Moderate, nil
	case "heavy":
		return traffic.Heavy, nil
	}
	return traffic.Level{}, fmt.Errorf("unknown congestion level %q", s)
}

func fmtJoint(fed *fedroad.Federation, r fedroad.Route) string {
	mean := float64(fedroad.JointCost(r)) / float64(fed.Silos()) / 1000
	return fmt.Sprintf("%.1fs travel time", mean)
}

func fmtPath(p []fedroad.Vertex) string {
	if len(p) <= 12 {
		return fmt.Sprint(p)
	}
	return fmt.Sprintf("%v ... %v (%d vertices)", p[:6], p[len(p)-6:], len(p))
}

func printStats(st fedroad.Stats) {
	fmt.Printf("cost: %d settled vertices, %d Fed-SACs, %d MPC rounds, %d bytes, %v local + %v simulated network\n",
		st.SettledVertices, st.SAC.Compares, st.SAC.Rounds, st.SAC.Bytes,
		st.WallTime.Round(time.Microsecond), st.SAC.SimNet.Round(time.Microsecond))
	fmt.Printf("phases: %v queue, %v sac-wait, %v relax (sac-wait overlaps queue)\n",
		st.Phases.Queue.Round(time.Microsecond), st.Phases.SACWait.Round(time.Microsecond),
		st.Phases.Relax.Round(time.Microsecond))
}

func fail(err error) {
	if err != nil {
		fmt.Fprintf(os.Stderr, "fedroad: %v\n", err)
		os.Exit(1)
	}
}
