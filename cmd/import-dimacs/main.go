// Command import-dimacs ingests standard 9th-DIMACS-challenge road networks
// (http://www.diag.uniroma1.it/challenge9/download.shtml) into this repo's
// graph formats. It streams the .gr arc file twice (count, then place), so
// peak memory stays near the final CSR size even for the USA network.
//
// Usage:
//
//	import-dimacs -gr USA-road-d.USA.gr [-co USA-road-d.USA.co] -out usa.frgb
//	import-dimacs -gen grid -gen-n 1048576 -out big.frgb
//
// By default the output is the binary snapshot (fast to load, ~28 bytes per
// arc + 20 per vertex); -text writes the text interchange format instead.
// Real DIMACS graphs are not strongly connected; unless -keep-all is given,
// the largest strongly connected component is extracted so query engines
// and CH contraction get the mutual reachability they assume. Zero-weight
// arcs (coincident junctions) are clamped up to -clamp-min.
//
// -gen sidesteps the download: it generates a synthetic network ("grid" or
// "roadlike") of about -gen-n vertices, for CI and for sizing runs.
package main

import (
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"runtime"
	"time"

	"repro/internal/graph"
	"repro/internal/peakmem"
)

func main() {
	var (
		grPath   = flag.String("gr", "", "DIMACS .gr arc file (required unless -gen)")
		coPath   = flag.String("co", "", "optional DIMACS .co coordinate file")
		outPath  = flag.String("out", "", "output graph file (required)")
		textOut  = flag.Bool("text", false, "write the text format instead of the binary snapshot")
		maxV     = flag.Int("max-vertices", 0, "drop vertices with id beyond this cap (0 = unlimited)")
		maxA     = flag.Int("max-arcs", 0, "keep at most this many arcs, in file order (0 = unlimited)")
		clampMin = flag.Int64("clamp-min", 1, "raise arc weights below this floor (negative disables)")
		zeroB    = flag.Bool("zero-based", false, "input vertex ids are 0-based (this repo's text format)")
		keepAll  = flag.Bool("keep-all", false, "skip largest-SCC extraction")
		gen      = flag.String("gen", "", "generate a synthetic network instead of reading -gr: grid|roadlike")
		genN     = flag.Int("gen-n", 1<<20, "approximate vertex count for -gen")
		seed     = flag.Uint64("seed", 1, "seed for -gen")
		quiet    = flag.Bool("quiet", false, "suppress progress output")
	)
	flag.Parse()
	if *outPath == "" || (*grPath == "" && *gen == "") || (*grPath != "" && *gen != "") {
		fmt.Fprintln(os.Stderr, "usage: import-dimacs (-gr file.gr [-co file.co] | -gen grid|roadlike) -out graph.frgb")
		flag.PrintDefaults()
		os.Exit(2)
	}

	runtime.GC()
	tracker := peakmem.Start(0)
	start := time.Now()

	var (
		g     *graph.Graph
		w     graph.Weights
		stats graph.ImportStats
		err   error
	)
	if *gen != "" {
		g, w, stats, err = generate(*gen, *genN, *seed)
	} else {
		g, w, stats, err = importFiles(*grPath, *coPath, graph.ImportOptions{
			MaxVertices:    *maxV,
			MaxArcs:        *maxA,
			ZeroBased:      *zeroB,
			ClampMinWeight: *clampMin,
			KeepAll:        *keepAll,
			Progress:       progress(*quiet),
		})
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "import-dimacs: %v\n", err)
		os.Exit(1)
	}
	buildTime := time.Since(start)

	out, err := os.Create(*outPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "import-dimacs: %v\n", err)
		os.Exit(1)
	}
	if *textOut {
		err = graph.WriteTo(out, g, w)
	} else {
		err = graph.WriteBinary(out, g, w)
	}
	if err == nil {
		err = out.Close()
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "import-dimacs: %v\n", err)
		os.Exit(1)
	}
	peak := tracker.Stop()

	csr := g.MemoryFootprint() + int64(8*len(w))
	info, _ := os.Stat(*outPath)
	fmt.Printf("imported %s in %v\n", *outPath, time.Since(start).Round(time.Millisecond))
	fmt.Printf("  input:   %d vertices, %d arcs", stats.RawVertices, stats.RawArcs)
	if stats.OneBased {
		fmt.Printf(" (1-based ids)")
	}
	fmt.Println()
	if stats.KeptVertices != stats.RawVertices || stats.KeptArcs != stats.RawArcs {
		fmt.Printf("  capped:  %d vertices, %d arcs\n", stats.KeptVertices, stats.KeptArcs)
	}
	if stats.Components > 1 {
		fmt.Printf("  SCC:     kept largest of %d components\n", stats.Components)
	}
	if stats.Clamped > 0 {
		fmt.Printf("  clamped: %d zero/low weights raised to %d\n", stats.Clamped, *clampMin)
	}
	fmt.Printf("  output:  %d vertices, %d arcs", g.NumVertices(), g.NumArcs())
	if g.HasCoordinates() {
		fmt.Printf(", with coordinates")
	}
	fmt.Println()
	if info != nil {
		fmt.Printf("  file:    %s\n", fmtBytes(info.Size()))
	}
	fmt.Printf("  memory:  CSR %s, peak heap %s (%.2fx CSR), build %v\n",
		fmtBytes(csr), fmtBytes(int64(peak)), float64(peak)/float64(csr), buildTime.Round(time.Millisecond))
}

// importFiles wires the file paths into the streaming importer: the .gr file
// is opened once per pass, the .co file once.
func importFiles(grPath, coPath string, opt graph.ImportOptions) (*graph.Graph, graph.Weights, graph.ImportStats, error) {
	open := func() (io.ReadCloser, error) { return os.Open(grPath) }
	var co io.Reader
	if coPath != "" {
		f, err := os.Open(coPath)
		if err != nil {
			return nil, nil, graph.ImportStats{}, err
		}
		defer f.Close()
		co = f
	}
	return graph.ImportDIMACS(open, co, opt)
}

// generate produces a synthetic network of about n vertices in place of a
// downloaded file. Stats are filled in so the summary reads the same.
func generate(kind string, n int, seed uint64) (*graph.Graph, graph.Weights, graph.ImportStats, error) {
	var g *graph.Graph
	var w graph.Weights
	switch kind {
	case "grid":
		side := int(math.Round(math.Sqrt(float64(n))))
		g, w = graph.GenerateGrid(side, side, seed)
	case "roadlike":
		g, w = graph.GenerateRoadLike(n, seed)
	default:
		return nil, nil, graph.ImportStats{}, fmt.Errorf("unknown generator %q (want grid or roadlike)", kind)
	}
	stats := graph.ImportStats{
		RawVertices: g.NumVertices(), RawArcs: g.NumArcs(),
		KeptVertices: g.NumVertices(), KeptArcs: g.NumArcs(),
		SCCVertices: g.NumVertices(), SCCArcs: g.NumArcs(),
	}
	return g, w, stats, nil
}

// progress returns a stderr progress reporter, or a no-op when quiet.
func progress(quiet bool) func(stage string, done, total int64) {
	if quiet {
		return nil
	}
	return func(stage string, done, total int64) {
		if total > 0 {
			fmt.Fprintf(os.Stderr, "  %-6s %d/%d (%.0f%%)\n", stage, done, total, 100*float64(done)/float64(total))
		} else {
			fmt.Fprintf(os.Stderr, "  %-6s %d\n", stage, done)
		}
	}
}

func fmtBytes(b int64) string {
	switch {
	case b >= 1<<30:
		return fmt.Sprintf("%.2fGB", float64(b)/(1<<30))
	case b >= 1<<20:
		return fmt.Sprintf("%.1fMB", float64(b)/(1<<20))
	case b >= 1<<10:
		return fmt.Sprintf("%.1fKB", float64(b)/(1<<10))
	default:
		return fmt.Sprintf("%dB", b)
	}
}
