package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	fedroad "repro"
)

// Regression: an unknown -dataset used to panic deep inside GenerateDataset
// (its other callers hard-wire names); a user typo must produce a clean error
// that lists what IS available.
func TestLoadNetworkUnknownDataset(t *testing.T) {
	defer func() {
		if r := recover(); r != nil {
			t.Fatalf("loadNetwork panicked on unknown dataset: %v", r)
		}
	}()
	_, _, _, err := loadNetwork("CAL-XXL", "", 100, 1)
	if err == nil {
		t.Fatal("unknown dataset accepted")
	}
	if !strings.Contains(err.Error(), "CAL-XXL") || !strings.Contains(err.Error(), "CAL-S") {
		t.Fatalf("error %q neither names the bad dataset nor lists the available ones", err)
	}
}

func TestLoadNetworkKnownDataset(t *testing.T) {
	g, w0, unit, err := loadNetwork("CAL-S", "", 100, 1)
	if err != nil {
		t.Fatal(err)
	}
	if g == nil || len(w0) != g.NumArcs() || unit {
		t.Fatalf("CAL-S load: g=%v len(w0)=%d unit=%v", g != nil, len(w0), unit)
	}
}

func TestLoadNetworkGenerated(t *testing.T) {
	g, w0, unit, err := loadNetwork("", "", 80, 7)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 80 || len(w0) != g.NumArcs() || unit {
		t.Fatalf("generated load: n=%d len(w0)=%d unit=%v", g.NumVertices(), len(w0), unit)
	}
}

// A weightless binary snapshot gets unit travel times fabricated — and the
// fabrication must be reported so main can warn and /stats can surface it.
func TestLoadNetworkWeightlessGraphFile(t *testing.T) {
	g, _ := fedroad.GenerateRoadNetwork(50, 11)
	path := filepath.Join(t.TempDir(), "g.snap")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := fedroad.SaveGraphBinary(f, g, nil); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	lg, w0, unit, err := loadNetwork("", path, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !unit {
		t.Fatal("weightless graph file did not report fabricated unit weights")
	}
	if lg.NumArcs() != g.NumArcs() || len(w0) != g.NumArcs() {
		t.Fatalf("loaded %d arcs with %d weights, want %d", lg.NumArcs(), len(w0), g.NumArcs())
	}
	for a, w := range w0 {
		if w != 1 {
			t.Fatalf("fabricated weight w0[%d] = %d, want 1", a, w)
		}
	}
}

// A weighted graph file must NOT be flagged.
func TestLoadNetworkWeightedGraphFile(t *testing.T) {
	g, w := fedroad.GenerateRoadNetwork(50, 13)
	path := filepath.Join(t.TempDir(), "g.gr")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := fedroad.SaveGraph(f, g, w); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	_, w0, unit, err := loadNetwork("", path, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if unit {
		t.Fatal("weighted graph file flagged as unit weights")
	}
	if len(w0) != g.NumArcs() {
		t.Fatalf("loaded %d weights, want %d", len(w0), g.NumArcs())
	}
}
