package main

import (
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	fedroad "repro"
	"repro/internal/ch"
	"repro/internal/wal"
)

// persister gives fedserver a restart path that skips the MPC index rebuild:
// a full state snapshot (silo weights + traffic version + shortcut index,
// written atomically) plus a traffic-delta WAL for everything applied since.
// Restore = read snapshot, replay deltas, reopen the log. The recovery
// sequence tolerates exactly the crashes that happen in practice — between a
// snapshot and the next delta, or mid-append (torn tail) — see
// internal/wal and DESIGN.md, "Serving tier".
type persister struct {
	fed *fedroad.Federation
	dir string

	// mu serializes snapshots against apply+append so the WAL can never hold
	// a delta the snapshot both misses and Reset discards: Apply holds it
	// across ApplyTraffic and the WAL append (record order = version order),
	// Snapshot holds it across SaveState and the WAL reset.
	mu  sync.Mutex
	wal *wal.WAL

	restoredIndex  bool
	restoreMs      int64
	replayedDeltas int
	walAppends     atomic.Int64
}

func (p *persister) snapPath() string { return filepath.Join(p.dir, "state.snap") }
func (p *persister) walPath() string  { return filepath.Join(p.dir, "traffic.wal") }

// newPersister prepares the persistence directory (creating it if needed).
// Call Restore before serving and Snapshot after the index is ready.
func newPersister(fed *fedroad.Federation, dir string) (*persister, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("persist: %w", err)
	}
	return &persister{fed: fed, dir: dir}, nil
}

// Restore loads the snapshot (when one exists), replays the traffic WAL on
// top of it, truncates any torn tail, and opens the log for appending. It
// returns whether the snapshot carried a shortcut index — when true the
// caller skips the MPC index build entirely.
func (p *persister) Restore() (restoredIndex bool, err error) {
	start := time.Now()
	f, err := os.Open(p.snapPath())
	switch {
	case err == nil:
		restoredIndex, err = p.fed.RestoreState(f)
		f.Close()
		if err != nil {
			return false, fmt.Errorf("persist: snapshot: %w", err)
		}
	case os.IsNotExist(err):
		// First boot (or crash before the first snapshot): the WAL alone
		// replays onto the freshly constructed federation.
	default:
		return false, fmt.Errorf("persist: %w", err)
	}
	// Deltas at or below the snapshot's version are already baked into the
	// snapshot; everything newer is replayed in order.
	snapVer := p.fed.TrafficVersion()
	applied := 0
	_, goodOff, truncated, err := wal.Replay(p.walPath(), func(payload []byte) error {
		ver, updates, derr := decodeTrafficRecord(payload)
		if derr != nil {
			return derr
		}
		if ver <= snapVer {
			return nil
		}
		if _, aerr := p.fed.ApplyTraffic(updates); aerr != nil {
			return aerr
		}
		applied++
		return nil
	})
	if err != nil {
		return false, fmt.Errorf("persist: wal replay: %w", err)
	}
	if truncated {
		// The torn tail is a crash artifact, not corruption; cut it so new
		// appends land at a record boundary.
		if terr := os.Truncate(p.walPath(), goodOff); terr != nil && !os.IsNotExist(terr) {
			return false, fmt.Errorf("persist: wal truncate: %w", terr)
		}
	}
	p.wal, err = wal.Open(p.walPath())
	if err != nil {
		return false, err
	}
	p.restoredIndex = restoredIndex
	p.replayedDeltas = applied
	p.restoreMs = time.Since(start).Milliseconds()
	return restoredIndex, nil
}

// Snapshot atomically writes the full federation state and then resets the
// WAL (every logged delta is now inside the snapshot). A crash between the
// two steps leaves a snapshot plus a WAL of older deltas — Restore's version
// check skips them, so recovery stays exact.
func (p *persister) Snapshot() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if err := wal.WriteFileAtomic(p.snapPath(), p.fed.SaveState); err != nil {
		return fmt.Errorf("persist: snapshot: %w", err)
	}
	return p.wal.Reset()
}

// Apply runs a traffic batch through the federation and logs it durably,
// holding mu so the record order in the WAL matches the version order the
// federation assigned. An empty batch neither bumps the version nor logs.
func (p *persister) Apply(updates []fedroad.TrafficUpdate) (ch.UpdateStats, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	stats, err := p.fed.ApplyTraffic(updates)
	if err != nil || len(updates) == 0 {
		return stats, err
	}
	if werr := p.wal.Append(encodeTrafficRecord(p.fed.TrafficVersion(), updates)); werr != nil {
		// The update is live but not durable; surface it as a server error so
		// the operator notices before a restart silently loses the delta.
		return stats, fmt.Errorf("persist: wal append: %w", werr)
	}
	p.walAppends.Add(1)
	return stats, nil
}

// Close closes the WAL handle.
func (p *persister) Close() {
	if p.wal != nil {
		p.wal.Close()
	}
}

// persistStats is the /stats block for -persist mode.
type persistStats struct {
	Dir            string `json:"dir"`
	RestoredIndex  bool   `json:"restored_index"`
	RestoreMs      int64  `json:"restore_ms"`
	ReplayedDeltas int    `json:"replayed_deltas"`
	WALAppends     int64  `json:"wal_appends"`
}

func (p *persister) Stats() persistStats {
	return persistStats{
		Dir:            p.dir,
		RestoredIndex:  p.restoredIndex,
		RestoreMs:      p.restoreMs,
		ReplayedDeltas: p.replayedDeltas,
		WALAppends:     p.walAppends.Load(),
	}
}

// A traffic WAL record: the post-apply traffic version, then the batch.
//
//	[u64 version][u32 count] count × ([u32 silo][u32 arc][i64 travel_ms])
func encodeTrafficRecord(ver uint64, updates []fedroad.TrafficUpdate) []byte {
	buf := make([]byte, 12+16*len(updates))
	binary.LittleEndian.PutUint64(buf[0:8], ver)
	binary.LittleEndian.PutUint32(buf[8:12], uint32(len(updates)))
	off := 12
	for _, u := range updates {
		binary.LittleEndian.PutUint32(buf[off:], uint32(u.Silo))
		binary.LittleEndian.PutUint32(buf[off+4:], uint32(u.Arc))
		binary.LittleEndian.PutUint64(buf[off+8:], uint64(u.TravelMs))
		off += 16
	}
	return buf
}

func decodeTrafficRecord(payload []byte) (uint64, []fedroad.TrafficUpdate, error) {
	if len(payload) < 12 {
		return 0, nil, fmt.Errorf("traffic record too short (%d bytes)", len(payload))
	}
	ver := binary.LittleEndian.Uint64(payload[0:8])
	count := binary.LittleEndian.Uint32(payload[8:12])
	if int64(len(payload)) != 12+16*int64(count) {
		return 0, nil, fmt.Errorf("traffic record count %d disagrees with length %d", count, len(payload))
	}
	updates := make([]fedroad.TrafficUpdate, count)
	off := 12
	for i := range updates {
		updates[i] = fedroad.TrafficUpdate{
			Silo:     int(binary.LittleEndian.Uint32(payload[off:])),
			Arc:      fedroad.Arc(binary.LittleEndian.Uint32(payload[off+4:])),
			TravelMs: int64(binary.LittleEndian.Uint64(payload[off+8:])),
		}
		off += 16
	}
	return ver, updates, nil
}
