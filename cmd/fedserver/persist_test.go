package main

import (
	"math/rand/v2"
	"os"
	"testing"

	fedroad "repro"
	"repro/internal/graph"
	"repro/internal/wal"
)

// persistFed builds the deterministic federation every persistence test
// shares: same seed ⇒ same topology and silo weights, standing in for the
// same -dataset/-seed flags across a server restart. The returned shadow is
// the test's own copy of the private silo weights — the federation never
// exposes them, so the oracle tracks them alongside every update it applies.
func persistFed(t *testing.T) (*fedroad.Federation, []fedroad.Weights) {
	t.Helper()
	g, w0 := fedroad.GenerateRoadNetwork(100, 401)
	silosW := fedroad.SimulateCongestion(w0, 3, fedroad.Moderate, 402)
	shadow := make([]fedroad.Weights, len(silosW))
	for p, set := range silosW {
		shadow[p] = append(fedroad.Weights(nil), set...)
	}
	f, err := fedroad.New(g, w0, silosW, fedroad.Config{Seed: 403})
	if err != nil {
		t.Fatal(err)
	}
	return f, shadow
}

// applyRandomTraffic pushes deterministic single-update batches through the
// persister, mirroring each into shadow when non-nil.
func applyRandomTraffic(t *testing.T, p *persister, shadow []fedroad.Weights, seed uint64, batches int) {
	t.Helper()
	rng := rand.New(rand.NewPCG(seed, 0))
	numArcs := p.fed.Graph().NumArcs()
	for i := 0; i < batches; i++ {
		ups := []fedroad.TrafficUpdate{{
			Silo:     rng.IntN(3),
			Arc:      fedroad.Arc(rng.IntN(numArcs)),
			TravelMs: int64(1 + rng.IntN(100000)),
		}}
		if _, err := p.Apply(ups); err != nil {
			t.Fatal(err)
		}
		if shadow != nil {
			shadow[ups[0].Silo][ups[0].Arc] = ups[0].TravelMs
		}
	}
}

// The headline restart path: snapshot with index, more deltas in the WAL,
// process dies, fresh process restores — index back without an MPC rebuild,
// deltas replayed, and queries agree with plaintext Dijkstra.
func TestPersistRestartRestoresIndexWithoutRebuild(t *testing.T) {
	dir := t.TempDir()
	fed, shadow := persistFed(t)
	p, err := newPersister(fed, dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Restore(); err != nil { // first boot: nothing on disk
		t.Fatal(err)
	}
	if err := fed.BuildIndex(); err != nil {
		t.Fatal(err)
	}
	if err := p.Snapshot(); err != nil {
		t.Fatal(err)
	}
	applyRandomTraffic(t, p, shadow, 404, 5) // WAL-only deltas after the snapshot
	wantVer := fed.TrafficVersion()
	p.Close()

	// "Restart": fresh federation, no index, same persistence directory.
	fed2, _ := persistFed(t)
	p2, err := newPersister(fed2, dir)
	if err != nil {
		t.Fatal(err)
	}
	restored, err := p2.Restore()
	if err != nil {
		t.Fatal(err)
	}
	defer p2.Close()
	if !restored || !fed2.HasIndex() {
		t.Fatal("restart did not restore the shortcut index from the snapshot")
	}
	ps := p2.Stats()
	if ps.ReplayedDeltas != 5 {
		t.Fatalf("replayed %d deltas, want 5", ps.ReplayedDeltas)
	}
	if !ps.RestoredIndex || ps.RestoreMs < 0 {
		t.Fatalf("persist stats %+v", ps)
	}
	if got := fed2.TrafficVersion(); got != wantVer {
		t.Fatalf("traffic version %d after restart, want %d", got, wantVer)
	}

	// Restored index answers exactly like plaintext Dijkstra on the shadow
	// joint weights (which include the replayed deltas).
	g := fed2.Graph()
	joint := make(fedroad.Weights, g.NumArcs())
	for _, set := range shadow {
		for a, w := range set {
			joint[a] += w
		}
	}
	rng := rand.New(rand.NewPCG(405, 0))
	for trial := 0; trial < 15; trial++ {
		s := fedroad.Vertex(rng.IntN(g.NumVertices()))
		d := fedroad.Vertex(rng.IntN(g.NumVertices()))
		want, _ := graph.DijkstraTo(g, joint, s, d)
		route, _, err := fed2.ShortestPath(s, d)
		if err != nil {
			t.Fatal(err)
		}
		if want >= graph.InfCost {
			if route.Found {
				t.Fatalf("route %d→%d found, oracle unreachable", s, d)
			}
			continue
		}
		if got := fedroad.JointCost(route); got != want {
			t.Fatalf("restored route %d→%d cost %d, oracle %d", s, d, got, want)
		}
	}
}

// Crash between writing a snapshot and resetting the WAL: the log still holds
// deltas the snapshot already includes. Restore must skip them by version —
// replaying them would double-apply nothing here (last-write-wins), but the
// count must show zero so the invariant is visible.
func TestPersistCrashBetweenSnapshotAndWALReset(t *testing.T) {
	dir := t.TempDir()
	fed, _ := persistFed(t)
	p, err := newPersister(fed, dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Restore(); err != nil {
		t.Fatal(err)
	}
	applyRandomTraffic(t, p, nil, 406, 3)
	// Simulate the torn Snapshot(): state file written, crash before Reset.
	if err := wal.WriteFileAtomic(p.snapPath(), fed.SaveState); err != nil {
		t.Fatal(err)
	}
	wantVer := fed.TrafficVersion()
	p.Close()

	fed2, _ := persistFed(t)
	p2, err := newPersister(fed2, dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p2.Restore(); err != nil {
		t.Fatal(err)
	}
	defer p2.Close()
	if ps := p2.Stats(); ps.ReplayedDeltas != 0 {
		t.Fatalf("replayed %d deltas already inside the snapshot, want 0", ps.ReplayedDeltas)
	}
	if got := fed2.TrafficVersion(); got != wantVer {
		t.Fatalf("traffic version %d, want %d", got, wantVer)
	}
}

// Crash mid-append: the WAL ends in a torn record. Restore applies every
// complete record, truncates the tail, and the log keeps accepting appends.
func TestPersistTornWALTail(t *testing.T) {
	dir := t.TempDir()
	fed, _ := persistFed(t)
	p, err := newPersister(fed, dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Restore(); err != nil {
		t.Fatal(err)
	}
	applyRandomTraffic(t, p, nil, 407, 4)
	wantVer := fed.TrafficVersion()
	p.Close()

	// Tear the tail: append half a record's worth of garbage.
	f, err := os.OpenFile(p.walPath(), os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{9, 0, 0, 0, 0xde, 0xad}); err != nil {
		t.Fatal(err)
	}
	f.Close()
	before, err := os.Stat(p.walPath())
	if err != nil {
		t.Fatal(err)
	}

	fed2, _ := persistFed(t)
	p2, err := newPersister(fed2, dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p2.Restore(); err != nil {
		t.Fatal(err)
	}
	if ps := p2.Stats(); ps.ReplayedDeltas != 4 {
		t.Fatalf("replayed %d deltas, want 4", ps.ReplayedDeltas)
	}
	if got := fed2.TrafficVersion(); got != wantVer {
		t.Fatalf("traffic version %d, want %d", got, wantVer)
	}
	after, err := os.Stat(p2.walPath())
	if err != nil {
		t.Fatal(err)
	}
	if after.Size() >= before.Size() {
		t.Fatalf("torn tail not truncated: %d → %d bytes", before.Size(), after.Size())
	}
	// And the recovered log must still be appendable at the record boundary.
	applyRandomTraffic(t, p2, nil, 408, 1)
	p2.Close()

	fed3, _ := persistFed(t)
	p3, err := newPersister(fed3, dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p3.Restore(); err != nil {
		t.Fatal(err)
	}
	defer p3.Close()
	if ps := p3.Stats(); ps.ReplayedDeltas != 5 {
		t.Fatalf("replayed %d deltas after recovery append, want 5", ps.ReplayedDeltas)
	}
}

// A durable apply that fails to log must say so: the update is live in
// memory but a restart would lose it.
func TestPersistApplySurfacesWALFailure(t *testing.T) {
	dir := t.TempDir()
	fed, _ := persistFed(t)
	p, err := newPersister(fed, dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Restore(); err != nil {
		t.Fatal(err)
	}
	p.wal.Close() // simulate the log handle dying under the server
	_, err = p.Apply([]fedroad.TrafficUpdate{{Silo: 0, Arc: 1, TravelMs: 5000}})
	if err == nil {
		t.Fatal("apply with a dead WAL reported success")
	}
}
