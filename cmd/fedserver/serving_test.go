package main

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"strconv"
	"testing"

	fedroad "repro"
)

// servingServer is testServer with access to the server struct, for tests
// that flip serving-tier knobs (cache, admission gate) directly.
func servingServer(t *testing.T, maxConcurrent int) (*httptest.Server, *server) {
	t.Helper()
	g, w0 := fedroad.GenerateRoadNetwork(150, 91)
	silosW := fedroad.SimulateCongestion(w0, 3, fedroad.Moderate, 92)
	fed, err := fedroad.New(g, w0, silosW, fedroad.Config{Seed: 93})
	if err != nil {
		t.Fatal(err)
	}
	if err := fed.BuildIndex(); err != nil {
		t.Fatal(err)
	}
	srv := newServer(fed, maxConcurrent)
	ts := httptest.NewServer(srv.routes())
	t.Cleanup(ts.Close)
	t.Cleanup(srv.Close)
	return ts, srv
}

type servingStats struct {
	TrafficVersion uint64          `json:"traffic_version"`
	UnitWeights    bool            `json:"unit_weights"`
	Admission      admitStatsJSON  `json:"admission"`
	Cache          *cacheStatsJSON `json:"cache"`
	Persist        *persistStats   `json:"persist"`
}

func TestRouteCacheHitMissLifecycle(t *testing.T) {
	ts, srv := servingServer(t, 4)
	srv.enableCache(64)

	var first, second, third routeResponse
	if r := getJSON(t, ts.URL+"/route?s=3&t=120", &first); r.StatusCode != http.StatusOK {
		t.Fatalf("first route: %d", r.StatusCode)
	}
	if first.Cached != "miss" {
		t.Fatalf("first call cached=%q, want miss", first.Cached)
	}
	if r := getJSON(t, ts.URL+"/route?s=3&t=120", &second); r.StatusCode != http.StatusOK {
		t.Fatalf("second route: %d", r.StatusCode)
	}
	if second.Cached != "hit" {
		t.Fatalf("second call cached=%q, want hit", second.Cached)
	}
	if first.TrafficVersion != second.TrafficVersion {
		t.Fatalf("hit echoed version %d, miss echoed %d", second.TrafficVersion, first.TrafficVersion)
	}
	if len(second.Path) != len(first.Path) || second.MeanTravelSec != first.MeanTravelSec {
		t.Fatal("cache hit returned a different route")
	}

	// A traffic update moves the version: the next identical query misses and
	// echoes the new version.
	body := bytes.NewBufferString(`[{"silo":0,"arc":9,"travel_ms":180000}]`)
	resp, err := http.Post(ts.URL+"/traffic", "application/json", body)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("traffic update: %d", resp.StatusCode)
	}
	if r := getJSON(t, ts.URL+"/route?s=3&t=120", &third); r.StatusCode != http.StatusOK {
		t.Fatalf("post-update route: %d", r.StatusCode)
	}
	if third.Cached != "miss" {
		t.Fatalf("post-update call cached=%q, want miss", third.Cached)
	}
	if third.TrafficVersion != first.TrafficVersion+1 {
		t.Fatalf("post-update version %d, want %d", third.TrafficVersion, first.TrafficVersion+1)
	}

	// kNN rides the same cache.
	var k1, k2 knnResponse
	getJSON(t, ts.URL+"/knn?s=10&k=3", &k1)
	getJSON(t, ts.URL+"/knn?s=10&k=3", &k2)
	if k1.Cached != "miss" || k2.Cached != "hit" {
		t.Fatalf("knn cached=%q then %q, want miss then hit", k1.Cached, k2.Cached)
	}

	// The counters are visible on /stats and /metrics.
	var st servingStats
	if r := getJSON(t, ts.URL+"/stats", &st); r.StatusCode != http.StatusOK {
		t.Fatalf("stats: %d", r.StatusCode)
	}
	if st.Cache == nil {
		t.Fatal("/stats has no cache block with the cache enabled")
	}
	if st.Cache.Hits != 2 || st.Cache.Misses != 3 {
		t.Fatalf("cache stats %+v, want 2 hits / 3 misses", st.Cache)
	}
	m := scrape(t, ts.URL)
	if m[`fedroad_cache_hits_total`] != 2 || m[`fedroad_cache_misses_total`] != 3 {
		t.Fatalf("metrics hits=%v misses=%v, want 2/3",
			m[`fedroad_cache_hits_total`], m[`fedroad_cache_misses_total`])
	}
}

// TestCacheOffByDefault: without enableCache the response carries no cached
// field and /stats no cache block.
func TestCacheOffByDefault(t *testing.T) {
	ts, _ := servingServer(t, 4)
	var resp routeResponse
	getJSON(t, ts.URL+"/route?s=3&t=120", &resp)
	if resp.Cached != "" {
		t.Fatalf("cached=%q with the cache off", resp.Cached)
	}
	var st servingStats
	getJSON(t, ts.URL+"/stats", &st)
	if st.Cache != nil {
		t.Fatal("/stats has a cache block with the cache off")
	}
}

// Shedding: with the in-system population at its limit, the next query gets
// 429 plus a Retry-After hint — it never blocks. The gate is exercised
// directly (deterministic) and then through HTTP.
func TestAdmissionShedsWith429(t *testing.T) {
	ts, srv := servingServer(t, 2)
	srv.setMaxQueue(1) // in-system limit: 2 running + 1 queued

	// Fill the gate as three in-flight queries would.
	for i := 0; i < 3; i++ {
		if err := srv.gate.Acquire(); err != nil {
			t.Fatalf("acquire %d: %v", i, err)
		}
	}
	resp, err := http.Get(ts.URL + "/route?s=3&t=120")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d at the admission limit, want 429", resp.StatusCode)
	}
	ra, err := strconv.Atoi(resp.Header.Get("Retry-After"))
	if err != nil || ra < 1 || ra > 30 {
		t.Fatalf("Retry-After %q, want an integer in [1,30]", resp.Header.Get("Retry-After"))
	}

	// Released capacity admits again.
	for i := 0; i < 3; i++ {
		srv.gate.Release()
	}
	if r := getJSON(t, ts.URL+"/route?s=3&t=120", nil); r.StatusCode != http.StatusOK {
		t.Fatalf("status %d after release, want 200", r.StatusCode)
	}

	// Accounting is visible on /stats and /metrics and adds up.
	var st servingStats
	getJSON(t, ts.URL+"/stats", &st)
	if st.Admission.Limit != 3 || st.Admission.Shed != 1 {
		t.Fatalf("admission stats %+v, want limit 3, shed 1", st.Admission)
	}
	if st.Admission.Depth != 0 {
		t.Fatalf("queue depth %d with nothing in flight", st.Admission.Depth)
	}
	m := scrape(t, ts.URL)
	if m[`fedserver_shed_total`] != 1 {
		t.Fatalf("fedserver_shed_total = %v, want 1", m[`fedserver_shed_total`])
	}
	if m[`fedserver_admitted_total`] < 4 {
		t.Fatalf("fedserver_admitted_total = %v, want >= 4", m[`fedserver_admitted_total`])
	}
}

// With -max-queue 0 (the default) nothing sheds; the gate only counts.
func TestNoSheddingByDefault(t *testing.T) {
	ts, srv := servingServer(t, 1)
	for i := 0; i < 10; i++ {
		if err := srv.gate.Acquire(); err != nil {
			t.Fatalf("acquire %d shed with shedding disabled: %v", i, err)
		}
	}
	for i := 0; i < 10; i++ {
		srv.gate.Release()
	}
	if r := getJSON(t, ts.URL+"/route?s=3&t=120", nil); r.StatusCode != http.StatusOK {
		t.Fatalf("status %d, want 200", r.StatusCode)
	}
}

// The unit-weights warning is surfaced in /stats.
func TestUnitWeightsSurfacedInStats(t *testing.T) {
	ts, srv := servingServer(t, 2)
	srv.unitWeights = true
	var st servingStats
	getJSON(t, ts.URL+"/stats", &st)
	if !st.UnitWeights {
		t.Fatal("unit_weights not surfaced in /stats")
	}
}
