package main

import (
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	fedroad "repro"
	"repro/internal/transport"
)

// gateConn turns one party's endpoint into a controllable failure: kill
// closes the endpoint mid-round (a crashed silo), mute silently swallows
// sends (a silo that stops responding, detectable only by round timeout).
// Both gates are checked per operation, so already-pooled sessions are hit
// too — exactly the scenario the server's discard logic must handle.
type gateConn struct {
	transport.Conn
	kill *atomic.Bool
	mute *atomic.Bool
}

func (g gateConn) Send(to int, data []byte) error {
	if g.kill != nil && g.kill.Load() {
		g.Conn.Close()
		return fmt.Errorf("chaos: killed during send: %w", transport.ErrClosed)
	}
	if g.mute != nil && g.mute.Load() {
		return nil // swallowed: the peer's round timeout must fire
	}
	return g.Conn.Send(to, data)
}

func (g gateConn) Recv(from int) ([]byte, error) {
	if g.kill != nil && g.kill.Load() {
		g.Conn.Close()
		return nil, fmt.Errorf("chaos: killed during recv: %w", transport.ErrClosed)
	}
	return g.Conn.Recv(from)
}

// chaosServer serves a small protocol-mode federation whose party 1 runs
// through a gateConn, over a real HTTP listener.
func chaosServer(t *testing.T, kill, mute *atomic.Bool) (*httptest.Server, *server) {
	t.Helper()
	g, w0 := fedroad.GenerateGridNetwork(5, 5, 61)
	silosW := fedroad.SimulateCongestion(w0, 3, fedroad.Moderate, 62)
	fed, err := fedroad.New(g, w0, silosW, fedroad.Config{
		Seed:         63,
		Mode:         fedroad.ModeProtocol,
		RoundTimeout: 150 * time.Millisecond,
		TransportWrap: func(p int, c transport.Conn) transport.Conn {
			if p != 1 {
				return c
			}
			return gateConn{Conn: c, kill: kill, mute: mute}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(fed.Close)
	srv := newServer(fed, 4)
	t.Cleanup(srv.Close)
	ts := httptest.NewServer(srv.routes())
	t.Cleanup(ts.Close)
	return ts, srv
}

func TestServerKilledSiloGives503ThenRecovers(t *testing.T) {
	kill := new(atomic.Bool)
	ts, srv := chaosServer(t, kill, nil)

	// Healthy query first — its session lands in the free-list.
	var resp routeResponse
	if r := getJSON(t, ts.URL+"/route?s=0&t=24", &resp); r.StatusCode != http.StatusOK || !resp.Found {
		t.Fatalf("healthy route: %d %+v", r.StatusCode, resp)
	}
	if n := srv.pooledIdle(); n != 1 {
		t.Fatalf("pooled sessions after healthy query = %d, want 1", n)
	}

	// Kill the silo: the query — on the reused, now-poisoned session — must
	// answer 503, and the session must be discarded, not repooled.
	kill.Store(true)
	if r := getJSON(t, ts.URL+"/route?s=0&t=24", nil); r.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("killed-silo route status %d, want 503", r.StatusCode)
	}
	if n := srv.pooledIdle(); n != 0 {
		t.Fatalf("poisoned session repooled: %d idle", n)
	}
	if d := srv.discarded.Load(); d != 1 {
		t.Fatalf("discarded = %d, want 1", d)
	}

	// Silo back: the next query forks a fresh session and succeeds.
	kill.Store(false)
	if r := getJSON(t, ts.URL+"/route?s=0&t=24", &resp); r.StatusCode != http.StatusOK || !resp.Found {
		t.Fatalf("post-recovery route: %d %+v", r.StatusCode, resp)
	}
}

func TestServerSilentSiloGives504(t *testing.T) {
	mute := new(atomic.Bool)
	ts, _ := chaosServer(t, nil, mute)

	mute.Store(true)
	start := time.Now()
	if r := getJSON(t, ts.URL+"/route?s=0&t=24", nil); r.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("silent-silo route status %d, want 504", r.StatusCode)
	}
	if elapsed := time.Since(start); elapsed > 15*time.Second {
		t.Fatalf("silent-silo query took %v, round timeout is 150ms", elapsed)
	}

	mute.Store(false)
	var resp routeResponse
	if r := getJSON(t, ts.URL+"/route?s=0&t=24", &resp); r.StatusCode != http.StatusOK || !resp.Found {
		t.Fatalf("post-recovery route: %d %+v", r.StatusCode, resp)
	}
}

func TestServerFreeListLifecycle(t *testing.T) {
	g, w0 := fedroad.GenerateRoadNetwork(80, 71)
	silosW := fedroad.SimulateCongestion(w0, 3, fedroad.Moderate, 72)
	fed, err := fedroad.New(g, w0, silosW, fedroad.Config{Seed: 73})
	if err != nil {
		t.Fatal(err)
	}
	defer fed.Close()
	srv := newServer(fed, 2) // free-list capacity 2
	ts := httptest.NewServer(srv.routes())
	defer ts.Close()

	// Three sessions in flight, all released: two pooled, one evicted (and
	// closed — eviction never leaks transport endpoints).
	var sessions []*fedroad.Session
	for i := 0; i < 3; i++ {
		sess, err := srv.checkout()
		if err != nil {
			t.Fatal(err)
		}
		sessions = append(sessions, sess)
	}
	for _, sess := range sessions {
		srv.release(sess)
	}
	if n := srv.pooledIdle(); n != 2 {
		t.Fatalf("pooled = %d, want capacity 2", n)
	}

	// Checkout reuses a pooled session instead of forking.
	sess, err := srv.checkout()
	if err != nil {
		t.Fatal(err)
	}
	if n := srv.pooledIdle(); n != 1 {
		t.Fatalf("pooled after checkout = %d, want 1", n)
	}

	// Close drains the free-list; releasing the in-flight session afterwards
	// closes it instead of repooling, and further checkouts are refused.
	srv.Close()
	if n := srv.pooledIdle(); n != 0 {
		t.Fatalf("pooled after Close = %d, want 0", n)
	}
	srv.release(sess)
	if n := srv.pooledIdle(); n != 0 {
		t.Fatalf("release after Close repooled: %d idle", n)
	}
	if _, err := srv.checkout(); !errors.Is(err, errServerClosed) {
		t.Fatalf("checkout after Close: %v", err)
	}
	srv.Close() // double close is safe

	// And at the HTTP layer a closed server answers 503, not 400.
	if r := getJSON(t, ts.URL+"/route?s=0&t=79", nil); r.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("route on closed server: status %d, want 503", r.StatusCode)
	}
}
