// Command fedserver runs a federated routing service over HTTP: it assembles
// a traffic data federation, builds the federated shortcut index and serves
// secure shortest-path, kNN and traffic-update requests.
//
//	fedserver -n 2000 -silos 3 -addr :8080
//
//	curl 'localhost:8080/route?s=12&t=1780'
//	curl 'localhost:8080/knn?s=12&k=5'
//	curl -X POST localhost:8080/traffic -d '[{"silo":0,"arc":17,"travel_ms":90000}]'
//	curl 'localhost:8080/stats'
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"time"

	fedroad "repro"
	"repro/internal/graph"
)

func main() {
	var (
		addr     = flag.String("addr", "127.0.0.1:8080", "listen address")
		dataset  = flag.String("dataset", "", "named dataset (CAL-S, BJ-S, FLA-S)")
		graphF   = flag.String("graph", "", "serve an imported graph file (binary snapshot or text)")
		n        = flag.Int("n", 2000, "generated network size when no dataset/graph is given")
		silos    = flag.Int("silos", 3, "number of data silos")
		seed     = flag.Uint64("seed", 1, "random seed")
		noIndex  = flag.Bool("no-index", false, "skip building the shortcut index")
		idxWkrs  = flag.Int("index-workers", 0, "contraction workers for the parallel index build (0 = GOMAXPROCS)")
		protocol = flag.Bool("protocol", false, "run the full MPC protocol per comparison (default: ideal mode with analytic cost accounting)")
		maxConc  = flag.Int("max-concurrent", 0, "max in-flight queries (0 = 4x GOMAXPROCS)")
		pprofOn  = flag.Bool("pprof", false, "mount /debug/pprof/* profiling handlers")
		prepool  = flag.Int("prepool", 0, "preprocessing pool capacity in comparisons (0 = off)")
		poolWkrs = flag.Int("prepool-workers", 1, "preprocessing pool replenisher goroutines")

		roundTimeout = flag.Duration("round-timeout", 0, "per-frame MPC round timeout; a slow/dead silo fails the query with 503/504 instead of hanging it (protocol mode; 0 = no timeout)")
		sacRetries   = flag.Int("sac-retries", 0, "bounded retries of a Fed-SAC round after a transient transport failure")
		sacBackoff   = flag.Duration("sac-retry-backoff", 10*time.Millisecond, "backoff before the first Fed-SAC retry, doubled per retry")
	)
	flag.Parse()

	var g *fedroad.Graph
	var w0 fedroad.Weights
	switch {
	case *graphF != "":
		var err error
		g, w0, err = fedroad.LoadGraphFile(*graphF)
		if err != nil {
			fmt.Fprintf(os.Stderr, "fedserver: %v\n", err)
			os.Exit(1)
		}
		if w0 == nil {
			w0 = make(fedroad.Weights, g.NumArcs())
			for a := range w0 {
				w0[a] = 1
			}
		}
	case *dataset != "":
		g, w0, _ = graph.GenerateDataset(*dataset)
	default:
		g, w0 = fedroad.GenerateRoadNetwork(*n, *seed)
	}
	silosW := fedroad.SimulateCongestion(w0, *silos, fedroad.Moderate, *seed+1)
	cfg := fedroad.Config{
		Seed:              *seed,
		PreprocessPool:    *prepool,
		PreprocessWorkers: *poolWkrs,
		RoundTimeout:      *roundTimeout,
		SACRetries:        *sacRetries,
		SACRetryBackoff:   *sacBackoff,
	}
	if *protocol {
		cfg.Mode = fedroad.ModeProtocol
	}
	fed, err := fedroad.New(g, w0, silosW, cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "fedserver: %v\n", err)
		os.Exit(1)
	}
	defer fed.Close()
	log.Printf("federation: %d vertices, %d arcs, %d silos", g.NumVertices(), g.NumArcs(), *silos)
	if !*noIndex {
		start := time.Now()
		if err := fed.BuildIndexWith(fedroad.IndexParams{Workers: *idxWkrs}); err != nil {
			fmt.Fprintf(os.Stderr, "fedserver: %v\n", err)
			os.Exit(1)
		}
		st := fed.IndexStats()
		log.Printf("index: %d shortcuts in %v (%d workers, %d contraction rounds)",
			st.Shortcuts, time.Since(start).Round(time.Millisecond), st.Workers, st.Rounds)
	}

	srv := newServer(fed, *maxConc)
	srv.pprof = *pprofOn
	defer srv.Close()
	if srv.pprof {
		log.Printf("pprof enabled at /debug/pprof/")
	}
	log.Printf("serving up to %d concurrent queries", cap(srv.sem))
	log.Printf("listening on http://%s", *addr)
	if err := http.ListenAndServe(*addr, srv.routes()); err != nil {
		log.Fatal(err)
	}
}
